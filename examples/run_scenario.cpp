// run_scenario: a command-line experiment driver over the full library —
// pick a scenario preset, override the knobs, and get method comparisons
// plus optional per-link CSV dumps.  This is the binary a downstream user
// scripts parameter studies with.
//
//   ./build/examples/run_scenario --scenario dynamic --nodes 120 --trials 3
//   ./build/examples/run_scenario --scenario bursty --dump-links links.csv
//   ./build/examples/run_scenario --help

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "dophy/common/table.hpp"
#include "dophy/eval/report.hpp"
#include "dophy/eval/runner.hpp"
#include "dophy/eval/scenario.hpp"
#include "dophy/net/energy.hpp"

namespace {

void usage() {
  std::cout <<
      "usage: run_scenario [options]\n"
      "  --scenario NAME    static | dynamic | bursty | drifting | churn (default dynamic)\n"
      "  --nodes N          network size (default 80)\n"
      "  --seed S           base RNG seed (default 1)\n"
      "  --trials T         Monte-Carlo trials (default 2)\n"
      "  --measure-s SECS   measurement window (default 1800)\n"
      "  --k K              symbol-aggregation threshold (default 4)\n"
      "  --hash-path        use 24-bit path-hash mode instead of id coding\n"
      "  --no-baselines     skip the traditional-tomography comparison\n"
      "  --dump-links FILE  write per-link estimate-vs-truth CSV (first trial)\n"
      "  --csv              print the summary as CSV\n"
      "  (to export raw packet traces, see dophy::eval::write_trace /\n"
      "   examples in tests/integration/test_trace_io.cpp)\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name = "dynamic";
  std::size_t nodes = 80;
  std::uint64_t seed = 1;
  std::size_t trials = 2;
  double measure_s = 1800.0;
  std::uint32_t k = 4;
  bool hash_path = false;
  bool baselines = true;
  bool csv = false;
  std::string dump_links;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--scenario") scenario_name = value();
    else if (a == "--nodes") nodes = std::strtoul(value(), nullptr, 10);
    else if (a == "--seed") seed = std::strtoull(value(), nullptr, 10);
    else if (a == "--trials") trials = std::strtoul(value(), nullptr, 10);
    else if (a == "--measure-s") measure_s = std::strtod(value(), nullptr);
    else if (a == "--k") k = static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    else if (a == "--hash-path") hash_path = true;
    else if (a == "--no-baselines") baselines = false;
    else if (a == "--dump-links") dump_links = value();
    else if (a == "--csv") csv = true;
    else if (a == "--help" || a == "-h") { usage(); return 0; }
    else {
      std::cerr << "unknown argument: " << a << "\n";
      usage();
      return 2;
    }
  }

  dophy::tomo::PipelineConfig config;
  bool found = false;
  for (auto& s : dophy::eval::summary_scenarios(nodes, seed)) {
    if (s.name == scenario_name) {
      config = std::move(s.config);
      found = true;
      break;
    }
  }
  if (!found) {
    std::cerr << "unknown scenario '" << scenario_name << "'\n";
    usage();
    return 2;
  }
  config.measure_s = measure_s;
  config.dophy.censor_threshold = k;
  config.run_baselines = baselines;
  if (hash_path) config.dophy.path_mode = dophy::tomo::PathMode::kHashPath;

  std::cerr << "Running scenario '" << scenario_name << "', " << nodes << " nodes, "
            << trials << " trial(s), " << measure_s << "s windows...\n";
  const auto agg = dophy::eval::run_trials(config, trials, seed, /*keep_runs=*/true);

  dophy::common::Table summary({"method", "mae", "rmse", "p90_abs_err", "spearman",
                                "coverage"});
  for (const auto& name : dophy::eval::method_order(agg)) {
    const auto& m = agg.method(name);
    summary.row()
        .cell(name)
        .cell(dophy::eval::format_ci(m.mae))
        .cell(dophy::eval::format_ci(m.rmse))
        .cell(dophy::eval::format_ci(m.p90_abs))
        .cell(dophy::eval::format_ci(m.spearman, 3))
        .cell(dophy::eval::format_ci(m.coverage, 3));
  }
  if (csv) summary.write_csv(std::cout);
  else summary.print(std::cout, "Per-link loss estimation accuracy");

  const auto& first = agg.runs.front();
  const auto energy = dophy::net::estimate_energy(first.net_stats);
  dophy::common::Table netinfo({"metric", "value"});
  netinfo.row().cell("packets measured").cell(first.packets_measured);
  netinfo.row().cell("delivery ratio").cell(first.delivery_ratio_in_window, 4);
  netinfo.row().cell("mean path length").cell(first.mean_path_length, 2);
  netinfo.row().cell("measurement bytes/packet").cell(first.mean_bits_per_packet / 8.0, 2);
  netinfo.row().cell("parent changes / node-hour").cell(first.parent_changes_per_node_hour, 2);
  netinfo.row().cell("model updates published").cell(first.manager_stats.updates_published);
  netinfo.row().cell("decode failures").cell(first.decoder_stats.decode_failures);
  netinfo.row().cell("radio energy (mJ, est.)").cell(energy.total_mj(), 1);
  netinfo.row().cell("measurement share of energy").cell(energy.measurement_fraction(), 4);
  std::cout << '\n';
  if (csv) netinfo.write_csv(std::cout);
  else netinfo.print(std::cout, "Network / overhead (first trial)");

  if (!dump_links.empty()) {
    std::ofstream out(dump_links);
    if (!out) {
      std::cerr << "cannot open " << dump_links << "\n";
      return 1;
    }
    dophy::common::Table links({"method", "from", "to", "estimated", "truth",
                                "abs_err", "truth_attempts"});
    for (const auto& method : first.methods) {
      for (const auto& s : method.scores) {
        links.row()
            .cell(method.name)
            .cell(s.link.from)
            .cell(s.link.to)
            .cell(s.estimated, 6)
            .cell(s.truth, 6)
            .cell(s.abs_error(), 6)
            .cell(s.truth_attempts);
      }
    }
    links.write_csv(out);
    std::cerr << "wrote per-link scores to " << dump_links << "\n";
  }
  return 0;
}
