// Quickstart: run Dophy loss tomography on a 60-node dynamic sensor network
// and print per-link loss estimates against simulator ground truth.
//
//   ./build/examples/quickstart [node_count] [seed]

#include <cstdlib>
#include <iostream>

#include "dophy/common/table.hpp"
#include "dophy/eval/scenario.hpp"
#include "dophy/tomo/pipeline.hpp"

int main(int argc, char** argv) {
  const std::size_t node_count = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  // A mildly dynamic network: link qualities re-randomize every ~5 minutes,
  // so nodes keep switching parents — the regime classic tomography cannot
  // handle.
  auto config = dophy::eval::default_pipeline(node_count, seed);
  dophy::eval::add_dynamics(config, /*interval_s=*/300.0, /*spread=*/0.12);
  config.measure_s = 1800.0;

  std::cout << "Running " << node_count << "-node dynamic WSN for "
            << config.measure_s << " simulated seconds...\n";
  const auto result = dophy::tomo::run_pipeline(config);

  std::cout << "\nDelivered " << result.packets_measured << " packets ("
            << dophy::common::format_double(100.0 * result.delivery_ratio_in_window, 1)
            << "% end-to-end), mean path " << dophy::common::format_double(result.mean_path_length, 2)
            << " hops, measurement overhead "
            << dophy::common::format_double(result.mean_bits_per_packet / 8.0, 1)
            << " bytes/packet, " << result.parent_changes_in_window
            << " parent changes during the window.\n\n";

  // The ten busiest links, estimate vs truth.
  const auto& dophy_scores = result.method("dophy").scores;
  auto sorted = dophy_scores;
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.truth_attempts > b.truth_attempts;
  });
  dophy::common::Table table({"link", "est_loss", "true_loss", "abs_err", "attempts"});
  for (std::size_t i = 0; i < sorted.size() && i < 10; ++i) {
    const auto& s = sorted[i];
    table.row()
        .cell(std::to_string(s.link.from) + "->" + std::to_string(s.link.to))
        .cell(s.estimated)
        .cell(s.truth)
        .cell(s.abs_error())
        .cell(s.truth_attempts);
  }
  table.print(std::cout, "Busiest links: Dophy estimate vs ground truth");

  std::cout << '\n';
  dophy::common::Table summary({"method", "links", "mae", "p90_abs_err", "spearman"});
  for (const auto& m : result.methods) {
    summary.row()
        .cell(m.name)
        .cell(m.summary.links_scored)
        .cell(m.summary.mae)
        .cell(m.summary.p90_abs)
        .cell(m.summary.spearman, 3);
  }
  summary.print(std::cout, "Method comparison (lower MAE is better)");
  return 0;
}
