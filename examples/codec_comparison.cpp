// Codec comparison: harvest the genuine per-hop transmission-count stream
// from a simulated deployment and compare every entropy coder in the library
// on it — the quickest way to see why Dophy chose arithmetic coding.
//
//   ./build/examples/codec_comparison [nodes] [seed]

#include <cstdlib>
#include <iostream>

#include "dophy/coding/codec.hpp"
#include "dophy/common/stats.hpp"
#include "dophy/common/table.hpp"
#include "dophy/eval/scenario.hpp"
#include "dophy/tomo/pipeline.hpp"
#include "dophy/tomo/symbol_mapper.hpp"

int main(int argc, char** argv) {
  const std::size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  auto cfg = dophy::eval::default_pipeline(nodes, seed);
  cfg.measure_s = 1200.0;
  cfg.run_baselines = false;
  cfg.collect_attempt_stream = true;

  std::cout << "Simulating a " << nodes << "-node network to harvest real "
            << "retransmission counts...\n";
  const auto result = dophy::tomo::run_pipeline(cfg);

  const dophy::tomo::SymbolMapper mapper(cfg.dophy.censor_threshold);
  std::vector<std::uint32_t> symbols;
  symbols.reserve(result.attempt_stream.size());
  for (const auto attempts : result.attempt_stream) {
    symbols.push_back(mapper.to_symbol(attempts));
  }
  std::vector<std::uint64_t> counts(mapper.alphabet_size(), 0);
  for (const auto s : symbols) ++counts[s];

  std::cout << "Harvested " << symbols.size() << " per-hop counts; distribution:";
  for (std::size_t s = 0; s < counts.size(); ++s) {
    std::cout << " [" << (s + 1 == counts.size() ? ">=" : "") << s + 1 << "]="
              << dophy::common::format_double(
                     100.0 * static_cast<double>(counts[s]) /
                         static_cast<double>(symbols.size()),
                     1)
              << "%";
  }
  std::cout << "\nEntropy: "
            << dophy::common::format_double(dophy::common::entropy_bits(counts), 3)
            << " bits/hop\n\n";

  std::vector<std::unique_ptr<dophy::coding::Codec>> codecs;
  codecs.push_back(dophy::coding::make_fixed_width_codec(mapper.alphabet_size()));
  codecs.push_back(dophy::coding::make_elias_gamma_codec());
  codecs.push_back(dophy::coding::make_rice_codec(0));
  codecs.push_back(dophy::coding::make_huffman_codec(counts));
  codecs.push_back(dophy::coding::make_static_arith_codec(counts));
  codecs.push_back(dophy::coding::make_adaptive_arith_codec(mapper.alphabet_size()));

  dophy::common::Table table({"codec", "bits_per_hop", "total_bytes", "vs_fixed"});
  std::vector<std::uint8_t> buf;
  double fixed_bits = 0.0;
  for (const auto& codec : codecs) {
    const auto bits = static_cast<double>(codec->encode(symbols, buf));
    if (fixed_bits == 0.0) fixed_bits = bits;
    // Round-trip check while we're at it.
    if (codec->decode(buf, symbols.size()) != symbols) {
      std::cerr << "round-trip failure in " << codec->name() << "\n";
      return 1;
    }
    table.row()
        .cell(codec->name())
        .cell(bits / static_cast<double>(symbols.size()), 3)
        .cell(static_cast<std::uint64_t>(bits / 8.0))
        .cell(dophy::common::format_double(100.0 * bits / fixed_bits, 1) + "%");
  }
  table.print(std::cout, "Entropy coders on the harvested count stream (K=4)");
  return 0;
}
