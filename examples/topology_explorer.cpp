// Topology explorer: generate a deployment, render an ASCII field map, and
// print the structural statistics (degree/hop histograms, link-quality
// distribution) that determine how hard the tomography problem is.
//
//   ./build/examples/topology_explorer [nodes] [seed]

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "dophy/common/histogram.hpp"
#include "dophy/common/rng.hpp"
#include "dophy/common/table.hpp"
#include "dophy/net/loss_model.hpp"
#include "dophy/net/topology.hpp"

using dophy::net::NodeId;

int main(int argc, char** argv) {
  const std::size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 80;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  dophy::net::TopologyConfig cfg;
  cfg.node_count = nodes;
  cfg.comm_range = 40.0;
  cfg.field_size = std::sqrt(static_cast<double>(nodes) * 3.14159265 * 1600.0 / 8.0);

  dophy::common::Rng rng(seed);
  const auto topo = dophy::net::Topology::generate(cfg, rng);

  // ASCII field map: S = sink, o = node (digit = hop distance mod 10).
  constexpr int kCols = 64;
  constexpr int kRows = 24;
  std::vector<std::string> canvas(kRows, std::string(kCols, '.'));
  const auto hops = topo.hops_to_sink();
  for (std::size_t i = 0; i < topo.node_count(); ++i) {
    const auto& p = topo.position(static_cast<NodeId>(i));
    const int col = std::min(kCols - 1, static_cast<int>(p.x / cfg.field_size * kCols));
    const int row = std::min(kRows - 1, static_cast<int>(p.y / cfg.field_size * kRows));
    canvas[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
        i == 0 ? 'S' : static_cast<char>('0' + hops[i] % 10);
  }
  std::cout << "Field map (" << dophy::common::format_double(cfg.field_size, 0) << "m square, "
            << "S = sink, digits = BFS hops to sink mod 10):\n";
  for (const auto& line : canvas) std::cout << "  " << line << '\n';

  dophy::common::Histogram degree(31), hop_hist(31);
  for (std::size_t i = 0; i < topo.node_count(); ++i) {
    degree.add(topo.neighbors(static_cast<NodeId>(i)).size());
    if (i > 0) hop_hist.add(hops[i]);
  }
  std::cout << "\nDegree histogram:   " << degree.to_string() << '\n';
  std::cout << "Hop histogram:      " << hop_hist.to_string() << '\n';
  std::cout << "Mean degree " << dophy::common::format_double(degree.mean(), 2)
            << ", max hops " << hop_hist.quantile(1.0) << ", directed links "
            << topo.directed_links().size() << "\n\n";

  // Link-quality distribution under the distance-PRR curve.
  dophy::common::Histogram loss_deciles(9);
  for (const auto& key : topo.directed_links()) {
    const double p = dophy::net::distance_loss(topo.distance(key.from, key.to),
                                               cfg.comm_range, 0.0);
    loss_deciles.add(static_cast<std::uint64_t>(p * 10.0));
  }
  dophy::common::Table table({"loss_decile", "links"});
  for (std::uint64_t d = 0; d <= 9; ++d) {
    if (loss_deciles.count(d) == 0) continue;
    table.row()
        .cell(dophy::common::format_double(static_cast<double>(d) / 10.0, 1) + "-" +
              dophy::common::format_double(static_cast<double>(d + 1) / 10.0, 1))
        .cell(loss_deciles.count(d));
  }
  table.print(std::cout, "Per-attempt loss distribution across links (distance curve)");
  return 0;
}
