// Dynamic monitoring: watch link quality in real time and raise alarms when
// a link degrades — with the streaming SinkService as the online alarm
// source, fed live from the simulator through LiveSinkFeed.
//
// The scenario scripts a mid-run quality collapse on the whole network
// (Gilbert-Elliott style bursts via drifting re-randomization) and shows how
// quickly the sink-side tracker notices per-link degradations that raw
// end-to-end delivery would hide behind ARQ.  Deliveries flow through the
// service's bounded ingest queue and are decoded + folded by a consumer
// group off the simulation thread; the alarm loop only ever queries the
// service (wait_idle() for a quiescent view, then all_estimates()).
//
// The same service can stream crash-recovery snapshots while it runs — see
// `dophy_sink live --snapshot-dir` and docs/SINK.md for the durable setup.
//
//   ./build/examples/dynamic_monitoring [seed]

#include <cstdlib>
#include <iostream>
#include <map>

#include "dophy/common/table.hpp"
#include "dophy/eval/scenario.hpp"
#include "dophy/net/network.hpp"
#include "dophy/sink/live_feed.hpp"
#include "dophy/sink/service.hpp"
#include "dophy/tomo/dophy_encoder.hpp"

using dophy::net::LinkKey;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 21;
  constexpr double kAlarmThreshold = 0.35;  // per-attempt loss considered bad
  constexpr double kEpochSeconds = 120.0;

  // A 50-node network whose link qualities re-randomize every ~10 minutes.
  auto cfg = dophy::eval::default_pipeline(50, seed);
  dophy::eval::add_dynamics(cfg, 600.0, 0.25);
  cfg.net.traffic.data_interval_s = 5.0;

  // Wire the measurement plane by hand — this is the library's public API.
  const dophy::tomo::SymbolMapper mapper(cfg.dophy.censor_threshold);
  dophy::tomo::DophyInstrumentation instrumentation(cfg.net.topology.node_count, mapper);
  dophy::net::Network net(cfg.net, &instrumentation);

  // The standing sink service: two ingest lanes drained by two consumers,
  // each owning a private decoder + estimator partition.  decay < 1 turns
  // the incremental MLE into a tracker that follows moving loss levels.
  dophy::sink::SinkServiceConfig sink_cfg;
  sink_cfg.node_count = cfg.net.topology.node_count;
  sink_cfg.censor_threshold = cfg.dophy.censor_threshold;
  sink_cfg.producers = 2;
  sink_cfg.consumers = 2;
  sink_cfg.decay = 0.6;
  dophy::sink::SinkService service(sink_cfg);
  service.start();
  dophy::sink::LiveSinkFeed feed(service);

  net.set_delivery_handler([&](const dophy::net::Packet& packet, dophy::net::SimTime now) {
    feed.on_delivery(packet, now, /*in_measure=*/true);
  });

  std::map<LinkKey, bool> alarmed;
  std::uint64_t alarms_raised = 0;
  std::uint64_t alarms_correct = 0;

  net.add_periodic(kEpochSeconds, [&](dophy::net::SimTime now) {
    service.wait_idle();  // quiescent view: everything delivered is folded
    service.end_epoch();
    for (const auto& [link, est] : service.all_estimates()) {
      if (est.samples < 20) continue;  // too thin to alarm on
      const bool bad = est.loss > kAlarmThreshold;
      bool& state = alarmed[link];
      if (bad && !state) {
        state = true;
        ++alarms_raised;
        const double truth = net.link(link.from, link.to).empirical_loss(now);
        alarms_correct += truth > kAlarmThreshold * 0.7;
        std::cout << "[t=" << now / 1000000 << "s] ALARM link " << link.from << "->"
                  << link.to << ": est loss "
                  << dophy::common::format_double(est.loss, 3) << " (±"
                  << dophy::common::format_double(2 * est.stderr_, 3) << "), recent truth "
                  << dophy::common::format_double(truth, 3) << "\n";
      } else if (!bad && state && est.loss < 0.8 * kAlarmThreshold) {
        state = false;
        std::cout << "[t=" << now / 1000000 << "s] clear link " << link.from << "->"
                  << link.to << " (est "
                  << dophy::common::format_double(est.loss, 3) << ")\n";
      }
    }
  });

  std::cout << "Monitoring a 50-node dynamic network for 40 simulated minutes...\n\n";
  net.run_for(2400.0);
  service.wait_idle();
  service.stop();

  const auto stats = net.stats();
  const auto sink_stats = service.stats();
  const auto feed_stats = feed.stats();
  std::cout << "\nRun summary: " << stats.packets_delivered << "/" << stats.packets_generated
            << " packets delivered ("
            << dophy::common::format_double(100.0 * stats.delivery_ratio(), 1)
            << "%), " << alarms_raised << " alarms raised, " << alarms_correct
            << " matched ground truth at alarm time.\n";
  std::cout << "Sink service: " << feed_stats.reports_submitted << " reports fed live, "
            << sink_stats.reports_decoded << " decoded across "
            << service.config().consumers << " consumers, " << service.link_count()
            << " links tracked.\n";
  std::cout << "Note the delivery ratio barely moves when links degrade — ARQ hides\n"
               "loss from end-to-end metrics, which is exactly why per-hop\n"
               "retransmission counts are needed to see it.\n";
  return 0;
}
