// F6 — THE headline comparison: accuracy vs. routing dynamics.
//
// Claim (abstract): "Comparative studies show that Dophy significantly
// outperforms traditional loss tomography approaches in terms of accuracy"
// — in dynamic WSNs "where each node dynamically selects the forwarding
// nodes towards the sink".
//
// Link qualities re-randomize with increasing intensity, driving parent
// churn from near-zero to many changes per node-hour.  Dophy decodes the
// exact per-packet path, so churn barely touches it; the baselines' snapshot
// paths go stale and their error climbs.

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dophy/eval/runner.hpp"
#include "dophy/eval/scenario.hpp"

int main(int argc, char** argv) {
  const auto args = dophy::bench::BenchArgs::parse(argc, argv, /*trials=*/3, /*nodes=*/80);

  struct Level {
    std::string label;
    double interval_s;  // 0 = static
    double spread;
  };
  const std::vector<Level> levels = {
      {"static", 0.0, 0.0},        {"mild", 600.0, 0.08},  {"moderate", 300.0, 0.12},
      {"high", 150.0, 0.18},       {"extreme", 60.0, 0.25},
  };

  dophy::common::Table table({"dynamics", "parent_chg_per_node_h", "dophy_mae",
                              "delivery_ratio_mae", "nnls_mae", "em_mae",
                              "dophy_spearman", "best_baseline_spearman"});

  for (const auto& level : levels) {
    auto cfg = dophy::eval::default_pipeline(args.nodes, 90);
    if (level.interval_s > 0.0) {
      dophy::eval::add_dynamics(cfg, level.interval_s, level.spread);
      cfg.dophy.tracker_decay = 0.85;  // track moving link qualities
    }
    cfg.warmup_s = args.quick ? 150.0 : 300.0;
    cfg.measure_s = args.quick ? 900.0 : 3600.0;

    const auto agg = dophy::eval::run_trials(cfg, args.trials, 900);
    const double best_baseline_rho =
        std::max({agg.method("delivery-ratio").spearman.mean(),
                  agg.method("nnls").spearman.mean(), agg.method("em").spearman.mean()});
    table.row()
        .cell(level.label)
        .cell(agg.parent_changes_per_node_hour.mean(), 2)
        .cell(agg.method("dophy").mae.mean(), 4)
        .cell(agg.method("delivery-ratio").mae.mean(), 4)
        .cell(agg.method("nnls").mae.mean(), 4)
        .cell(agg.method("em").mae.mean(), 4)
        .cell(agg.method("dophy").spearman.mean(), 3)
        .cell(best_baseline_rho, 3);
  }

  dophy::bench::emit(table, args, "F6: accuracy vs routing dynamics (headline comparison)");
  std::cout << "\nExpected shape: dophy stays flat and accurate across the whole sweep\n"
               "(it never assumes a path); every traditional method is already poor on\n"
               "the static network (ARQ masks loss from end-to-end outcomes) and\n"
               "degrades further as parent churn invalidates its snapshot paths.\n";
  return 0;
}
