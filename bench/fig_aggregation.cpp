// F3 — Symbol-aggregation ablation.
//
// Claim (abstract): "Dophy intelligently reduces the size of symbol set by
// aggregating the number of retransmissions, reducing the encoding overhead
// significantly."
//
// Sweep the censoring threshold K.  Small K means a tiny alphabet (cheap
// symbols, small disseminated models) but more censored observations for the
// MLE; large K means exact counts at higher cost.  The censored-geometric
// estimator keeps accuracy essentially flat, which is what makes the
// optimization free.

#include <iostream>

#include "bench_util.hpp"
#include "dophy/eval/runner.hpp"
#include "dophy/eval/scenario.hpp"
#include "dophy/tomo/measurement.hpp"

int main(int argc, char** argv) {
  const auto args = dophy::bench::BenchArgs::parse(argc, argv, /*trials=*/3, /*nodes=*/80);

  dophy::common::Table table({"K", "alphabet", "model_bytes", "count_bits_per_hop",
                              "total_bits_per_hop", "bytes_per_pkt", "mae", "p90_abs_err",
                              "spearman"});

  for (const std::uint32_t k : {2u, 3u, 4u, 6u, 8u}) {
    auto cfg = dophy::eval::default_pipeline(args.nodes, 60);
    cfg.dophy.censor_threshold = k;
    cfg.warmup_s = args.quick ? 150.0 : 300.0;
    cfg.measure_s = args.quick ? 600.0 : 2400.0;
    cfg.run_baselines = false;

    const auto agg = dophy::eval::run_trials(cfg, args.trials, 600 + k, /*keep_runs=*/true);
    const auto& dophy = agg.method("dophy");

    // Wire size of a representative learned model set at this K.
    const auto model_bytes =
        dophy::tomo::ModelSet::bootstrap(args.nodes, k).wire_size();

    table.row()
        .cell(k)
        .cell(k)
        .cell(model_bytes)
        .cell(agg.retx_bits_per_hop.mean(), 3)
        .cell(agg.bits_per_hop.mean(), 2)
        .cell(agg.bits_per_packet.mean() / 8.0, 2)
        .cell(dophy.mae.mean(), 4)
        .cell(dophy.p90_abs.mean(), 4)
        .cell(dophy.spearman.mean(), 3);
  }

  dophy::bench::emit(table, args, "F3: symbol-aggregation threshold K ablation");
  std::cout << "\nExpected shape: bits/hop and model size fall as K shrinks while MAE\n"
               "stays nearly flat — the censored MLE compensates for aggregation, so\n"
               "small symbol sets are (almost) free accuracy-wise.\n";
  return 0;
}
