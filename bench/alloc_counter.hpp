#pragma once

// Process-wide heap-allocation counters, fed by the interposed global
// operator new/delete in alloc_counter.cpp.  Link that TU into a benchmark
// binary and every heap allocation in the process is counted (lock-free,
// relaxed atomics — negligible overhead next to the allocation itself).
//
// Intended use: snapshot around a measured region and report the delta.
// The simulator hot path is designed to reach a zero-allocation steady
// state; these counters are how the benchmarks prove it.

#include <cstdint>

namespace dophy::bench {

struct AllocSnapshot {
  std::uint64_t allocs = 0;  ///< operator new calls
  std::uint64_t frees = 0;   ///< operator delete calls
  std::uint64_t bytes = 0;   ///< total bytes requested from operator new
};

/// Current process-wide totals since start.
[[nodiscard]] AllocSnapshot alloc_snapshot() noexcept;

/// Allocations made between two snapshots (a taken before b).
[[nodiscard]] inline std::uint64_t allocs_between(const AllocSnapshot& a,
                                                  const AllocSnapshot& b) noexcept {
  return b.allocs - a.allocs;
}

}  // namespace dophy::bench
