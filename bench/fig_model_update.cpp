// F4 — Probability-model update-policy ablation.
//
// Claim (abstract): "Dophy periodically updates the probability model to
// minimize the overall transmission overhead."
//
// A drifting network shifts the symbol distribution over time.  We compare:
// never updating (bootstrap model forever), periodic updates at several
// cadences, and the KL-triggered adaptive policy.  "Total overhead" counts
// both the measurement bytes carried in data packets over the air and the
// bytes flooded to disseminate models.

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dophy/eval/runner.hpp"
#include "dophy/eval/scenario.hpp"

int main(int argc, char** argv) {
  const auto args = dophy::bench::BenchArgs::parse(argc, argv, /*trials=*/3, /*nodes=*/80);

  struct Policy {
    std::string label;
    dophy::tomo::ModelUpdateConfig::Policy policy;
    double interval_s;
  };
  const std::vector<Policy> policies = {
      {"static(never)", dophy::tomo::ModelUpdateConfig::Policy::kStatic, 120.0},
      {"periodic-60s", dophy::tomo::ModelUpdateConfig::Policy::kPeriodic, 60.0},
      {"periodic-240s", dophy::tomo::ModelUpdateConfig::Policy::kPeriodic, 240.0},
      {"periodic-960s", dophy::tomo::ModelUpdateConfig::Policy::kPeriodic, 960.0},
      {"adaptive-kl", dophy::tomo::ModelUpdateConfig::Policy::kAdaptive, 120.0},
  };

  dophy::common::Table table({"policy", "updates", "bits_per_hop", "data_overhead_kb",
                              "flood_kb", "total_kb", "mae"});

  for (const auto& policy : policies) {
    auto cfg = dophy::eval::default_pipeline(args.nodes, 70);
    dophy::eval::make_drifting(cfg, 0.08, 900.0);
    cfg.net.traffic.data_interval_s = 5.0;  // busier network: updates matter
    cfg.dophy.update.policy = policy.policy;
    cfg.dophy.update.check_interval_s = policy.interval_s;
    cfg.warmup_s = args.quick ? 150.0 : 300.0;
    cfg.measure_s = args.quick ? 900.0 : 3600.0;
    cfg.run_baselines = false;

    const auto agg = dophy::eval::run_trials(cfg, args.trials, 700);
    const double data_kb = agg.measurement_air_kb.mean();
    const double flood_kb = agg.control_flood_kb.mean();
    table.row()
        .cell(policy.label)
        .cell(agg.model_updates.mean(), 1)
        .cell(agg.bits_per_hop.mean(), 2)
        .cell(data_kb, 1)
        .cell(flood_kb, 1)
        .cell(data_kb + flood_kb, 1)
        .cell(agg.method("dophy").mae.mean(), 4);
  }

  dophy::bench::emit(table, args, "F4: model-update policy vs total transmission overhead");
  std::cout << "\nExpected shape: never updating leaves bits/hop at the bootstrap-model\n"
               "ceiling; very frequent updates buy little extra coding efficiency but\n"
               "pay a growing flood bill; the adaptive policy lands near the best total\n"
               "overhead without hand-tuning the period.  MAE is identical by design:\n"
               "decoding is exact under every model, so updates trade overhead only.\n";
  return 0;
}
