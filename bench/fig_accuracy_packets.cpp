// F5 — Estimation accuracy vs. number of collected packets.
//
// Claim (abstract): "Dophy achieves ... high estimation accuracy."
//
// The measurement window is swept so the sink decodes progressively more
// packets; per-link MAE for every method is reported against the packets
// actually measured.  Dophy's error falls like a parametric estimator
// (each hop is a full geometric observation); the end-to-end baselines
// starve because ARQ leaves almost no signal in delivery outcomes.

#include <iostream>

#include "bench_util.hpp"
#include "dophy/eval/report.hpp"
#include "dophy/eval/runner.hpp"
#include "dophy/eval/scenario.hpp"

int main(int argc, char** argv) {
  const auto args = dophy::bench::BenchArgs::parse(argc, argv, /*trials=*/3, /*nodes=*/80);

  dophy::common::Table table({"measure_s", "packets", "dophy_mae", "delivery_ratio_mae",
                              "nnls_mae", "em_mae", "dophy_spearman", "em_spearman"});

  for (const double measure_s : {300.0, 600.0, 1200.0, 2400.0, 4800.0}) {
    auto cfg = dophy::eval::default_pipeline(args.nodes, 80);
    cfg.warmup_s = 300.0;
    cfg.measure_s = args.quick ? measure_s / 4.0 : measure_s;

    const auto agg = dophy::eval::run_trials(cfg, args.trials, 800, /*keep_runs=*/true);
    dophy::common::RunningStats packets;
    for (const auto& run : agg.runs) packets.add(static_cast<double>(run.packets_measured));

    table.row()
        .cell(cfg.measure_s, 0)
        .cell(packets.mean(), 0)
        .cell(agg.method("dophy").mae.mean(), 4)
        .cell(agg.method("delivery-ratio").mae.mean(), 4)
        .cell(agg.method("nnls").mae.mean(), 4)
        .cell(agg.method("em").mae.mean(), 4)
        .cell(agg.method("dophy").spearman.mean(), 3)
        .cell(agg.method("em").spearman.mean(), 3);
  }

  dophy::bench::emit(table, args, "F5: per-link MAE vs collected packets");
  std::cout << "\nExpected shape: dophy's MAE shrinks steadily with more packets\n"
               "(roughly 1/sqrt(n) per link) and sits ~10x below every baseline at\n"
               "every budget; baselines barely improve because end-to-end outcomes\n"
               "carry almost no per-attempt information under ARQ.\n";
  return 0;
}
