// F5b — Within-run convergence: Dophy per-link MAE over time after
// deployment start (complements F5, which compares whole-window budgets).
// Classic "accuracy settles within minutes" deployment figure.

#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "dophy/common/stats.hpp"
#include "dophy/eval/scenario.hpp"
#include "dophy/tomo/pipeline.hpp"

int main(int argc, char** argv) {
  const auto args = dophy::bench::BenchArgs::parse(argc, argv, /*trials=*/3, /*nodes=*/80);

  // time bucket -> per-trial values
  std::map<std::uint64_t, dophy::common::RunningStats> mae_at, links_at, packets_at;
  for (std::size_t trial = 0; trial < args.trials; ++trial) {
    auto cfg = dophy::eval::default_pipeline(args.nodes, 190 + trial);
    cfg.warmup_s = 300.0;
    cfg.measure_s = args.quick ? 1200.0 : 3600.0;
    cfg.snapshot_interval_s = 120.0;
    cfg.collect_epoch_series = true;
    cfg.run_baselines = false;
    const auto result = dophy::tomo::run_pipeline(cfg);
    for (const auto& point : result.epoch_series) {
      const auto bucket = static_cast<std::uint64_t>(point.t_s + 0.5);
      mae_at[bucket].add(point.mae);
      links_at[bucket].add(static_cast<double>(point.links_scored));
      packets_at[bucket].add(static_cast<double>(point.packets));
    }
  }

  dophy::common::Table table({"t_since_start_s", "packets", "links_scored", "dophy_mae"});
  for (const auto& [t, mae] : mae_at) {
    table.row()
        .cell(t)
        .cell(packets_at[t].mean(), 0)
        .cell(links_at[t].mean(), 0)
        .cell(mae.mean(), 4);
  }
  dophy::bench::emit(table, args, "F5b: Dophy accuracy vs time since deployment");
  std::cout << "\nExpected shape: MAE drops steeply over the first few hundred seconds\n"
               "as every link accumulates geometric samples, then improves slowly\n"
               "(~1/sqrt(t)); the scored-link count rises as thin links cross the\n"
               "ground-truth support threshold.\n";
  return 0;
}
