// A4 — Model-dissemination substrate ablation: abstract depth-latency flood
// vs the real Trickle protocol over the lossy control plane.
//
// Quantifies what the abstraction hides: Trickle pays maintenance traffic
// and delivers updates with stochastic multi-hop latency, which can leave
// forwarders briefly stale (missing-model hops -> dropped samples) — yet the
// tomography results must stay essentially unchanged, validating that the
// flood abstraction used by the headline figures is safe.

#include <iostream>

#include "bench_util.hpp"
#include "dophy/eval/runner.hpp"
#include "dophy/eval/scenario.hpp"

int main(int argc, char** argv) {
  const auto args = dophy::bench::BenchArgs::parse(argc, argv, /*trials=*/3, /*nodes=*/80);

  dophy::common::Table table({"dissemination", "updates", "dissem_kb", "install_lat_s",
                              "missing_model_hops", "decode_fail_pct", "mae"});

  for (const bool use_trickle : {false, true}) {
    auto cfg = dophy::eval::default_pipeline(args.nodes, 170);
    dophy::eval::make_drifting(cfg, 0.08, 900.0);
    cfg.dophy.update.policy = dophy::tomo::ModelUpdateConfig::Policy::kPeriodic;
    cfg.dophy.update.check_interval_s = 240.0;
    cfg.dophy.use_trickle_dissemination = use_trickle;
    cfg.warmup_s = args.quick ? 150.0 : 300.0;
    cfg.measure_s = args.quick ? 900.0 : 3600.0;
    cfg.run_baselines = false;

    const auto agg = dophy::eval::run_trials(cfg, args.trials, 1700, /*keep_runs=*/true);
    dophy::common::RunningStats dissem_kb, latency, missing;
    for (const auto& run : agg.runs) {
      if (use_trickle) {
        dissem_kb.add(static_cast<double>(run.trickle_stats.bytes_sent) / 1024.0);
        latency.add(run.trickle_stats.install_latency_s.mean());
      } else {
        dissem_kb.add(static_cast<double>(run.net_stats.control_flood_bytes) / 1024.0);
        latency.add(0.05 * 5.0);  // the abstraction's fixed per-depth delay
      }
      missing.add(static_cast<double>(run.encoder_stats.missing_model_hops));
    }
    table.row()
        .cell(use_trickle ? "trickle-rfc6206" : "abstract-flood")
        .cell(agg.model_updates.mean(), 1)
        .cell(dissem_kb.mean(), 1)
        .cell(latency.mean(), 2)
        .cell(missing.mean(), 1)
        .cell(100.0 * agg.decode_failure_rate.mean(), 3)
        .cell(agg.method("dophy").mae.mean(), 4);
  }

  dophy::bench::emit(table, args,
                     "A4: dissemination substrate — abstract flood vs Trickle");
  std::cout << "\nExpected shape: Trickle spends more bytes (maintenance gossip) and\n"
               "delivers updates in seconds rather than instantly, occasionally leaving\n"
               "a forwarder stale; decode failures stay near zero and MAE unchanged,\n"
               "so the abstract flood used elsewhere does not distort the results.\n";
  return 0;
}
