// T2c — Streaming-sink microbenchmarks (google-benchmark): incremental MLE
// update rate on raw hop observations, the full decode+update path over
// pre-encoded packets, ingest-queue push/drain throughput, and the
// end-to-end SinkService ingest rate (bounded queue, consumer thread,
// batched decode).  Rows are pinned into bench/BENCH_sim.json and gated by
// scripts/bench_compare.py like the simulator/codec suites.

#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "dophy/common/rng.hpp"
#include "dophy/sink/incremental_mle.hpp"
#include "dophy/sink/ingest_queue.hpp"
#include "dophy/sink/service.hpp"
#include "dophy/tomo/dophy_encoder.hpp"
#include "dophy/tomo/link_inference.hpp"

namespace {

using dophy::common::Rng;
using dophy::net::kSinkId;
using dophy::net::LinkKey;
using dophy::net::NodeId;

constexpr std::size_t kNodes = 50;
constexpr std::uint32_t kK = 4;

std::vector<std::pair<LinkKey, dophy::tomo::HopObservation>> make_observations(
    std::size_t count) {
  Rng rng(17);
  std::vector<std::pair<LinkKey, dophy::tomo::HopObservation>> obs;
  obs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const LinkKey link{static_cast<NodeId>(1 + rng.next_below(kNodes - 1)),
                       static_cast<NodeId>(rng.next_below(kNodes - 1))};
    const auto t = 1 + static_cast<std::uint32_t>(rng.next_below(kK + 3));
    obs.push_back({link, {t >= kK ? kK : t, t >= kK}});
  }
  return obs;
}

/// Delivered packets encoded through the real instrumentation, outside the
/// timed region.
std::vector<dophy::sink::StreamRecord> make_reports(dophy::tomo::DophyInstrumentation& instr,
                                                    std::size_t count) {
  Rng rng(23);
  std::vector<dophy::sink::StreamRecord> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    dophy::net::Packet packet;
    const auto origin = static_cast<NodeId>(1 + rng.next_below(kNodes - 1));
    packet.origin = origin;
    packet.seq = static_cast<std::uint16_t>(i);
    instr.on_origin(packet, origin, 0);
    NodeId sender = origin;
    const std::size_t len = 1 + rng.next_below(5);
    for (std::size_t h = 0; h < len; ++h) {
      const NodeId receiver =
          h + 1 == len ? kSinkId : static_cast<NodeId>(1 + rng.next_below(kNodes - 1));
      instr.on_hop_received(packet, receiver, sender,
                            1 + static_cast<std::uint32_t>(rng.next_below(kK + 3)), 0);
      sender = receiver;
    }
    dophy::sink::StreamRecord rec;
    rec.kind = dophy::sink::StreamRecord::Kind::kReport;
    rec.report.packet = std::move(packet);
    records.push_back(std::move(rec));
  }
  return records;
}

// Pure estimator arithmetic: one sharded-map update per hop observation.
void SinkMleUpdate(benchmark::State& state) {
  const auto obs = make_observations(4096);
  dophy::sink::ShardedLinkEstimator est(kK);
  std::size_t i = 0;
  for (auto _ : state) {
    for (int n = 0; n < 64; ++n) {
      est.observe(obs[i].first, obs[i].second);
      i = (i + 1) % obs.size();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
  benchmark::DoNotOptimize(est.link_count());
}
BENCHMARK(SinkMleUpdate);

// The consumer's per-report work: decode the in-packet stream, fold every
// hop into the estimator.  This bounds single-thread sink throughput.
void SinkDecodeAndUpdate(benchmark::State& state) {
  const dophy::tomo::SymbolMapper mapper(kK);
  dophy::tomo::DophyInstrumentation instr(kNodes, mapper);
  const auto records = make_reports(instr, 1024);
  dophy::tomo::DophyDecoder decoder(instr.store(kSinkId), mapper);
  dophy::sink::ShardedLinkEstimator est(kK);
  std::size_t i = 0;
  std::uint64_t failures = 0;
  for (auto _ : state) {
    for (int n = 0; n < 16; ++n) {
      const auto decoded = decoder.decode(records[i].report.packet);
      if (decoded) {
        est.observe_path(*decoded);
      } else {
        ++failures;
      }
      i = (i + 1) % records.size();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
  if (failures > 0) state.SkipWithError("decode failures in benchmark stream");
}
BENCHMARK(SinkDecodeAndUpdate);

// Queue transport alone: SPSC push + batched drain, no decode behind it.
void SinkIngestQueuePushDrain(benchmark::State& state) {
  dophy::sink::IngestQueue queue(4096, 1);
  dophy::sink::StreamRecord rec;
  std::vector<dophy::sink::StreamRecord> batch;
  batch.reserve(64);
  for (auto _ : state) {
    for (int n = 0; n < 64; ++n) (void)queue.push(0, rec);
    batch.clear();
    benchmark::DoNotOptimize(queue.drain_into(batch, 64));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(SinkIngestQueuePushDrain);

// End to end: producer thread (this one) submitting into a running service —
// queue handoff + batched decode + estimator update on the consumer thread.
void SinkServiceIngest(benchmark::State& state) {
  const dophy::tomo::SymbolMapper mapper(kK);
  dophy::tomo::DophyInstrumentation instr(kNodes, mapper);
  const auto records = make_reports(instr, 1024);

  dophy::sink::SinkServiceConfig config;
  config.node_count = kNodes;
  config.censor_threshold = kK;
  dophy::sink::SinkService service(config);
  service.start();
  std::size_t i = 0;
  for (auto _ : state) {
    for (int n = 0; n < 64; ++n) {
      (void)service.submit(0, records[i]);
      i = (i + 1) % records.size();
    }
  }
  service.wait_idle();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
  service.stop();
  if (service.stats().decode_failures > 0) {
    state.SkipWithError("decode failures in benchmark stream");
  }
}
BENCHMARK(SinkServiceIngest);

// Consumer scaling: N producer threads submitting into N lanes drained by N
// consumers (shard-affine partitions, no estimator locks).  Each iteration
// pushes one burst and waits for it to be fully decoded + folded, so the
// rate is end-to-end ingest throughput, not queue acceptance.  Real time:
// the work happens on the consumer threads.  scripts/bench_compare.py reads
// the C4/C1 ratio as the sink_scaling gate (>= 8-core hosts only).
void SinkServiceScaling(benchmark::State& state) {
  const auto consumers = static_cast<std::size_t>(state.range(0));
  const dophy::tomo::SymbolMapper mapper(kK);
  dophy::tomo::DophyInstrumentation instr(kNodes, mapper);
  const auto records = make_reports(instr, 2048);

  dophy::sink::SinkServiceConfig config;
  config.node_count = kNodes;
  config.censor_threshold = kK;
  config.producers = consumers;
  config.consumers = consumers;
  dophy::sink::SinkService service(config);
  service.start();

  constexpr std::size_t kBurst = 4096;
  const std::size_t per_lane = kBurst / consumers;
  for (auto _ : state) {
    std::vector<std::thread> producers;
    producers.reserve(consumers);
    for (std::size_t lane = 0; lane < consumers; ++lane) {
      producers.emplace_back([&, lane] {
        std::size_t i = lane;  // disjoint per-lane strides over the corpus
        for (std::size_t n = 0; n < per_lane; ++n) {
          (void)service.submit(lane, records[i]);
          i = (i + consumers) % records.size();
        }
      });
    }
    for (auto& t : producers) t.join();
    service.wait_idle();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(per_lane * consumers));
  service.stop();
  if (service.stats().decode_failures > 0) {
    state.SkipWithError("decode failures in benchmark stream");
  }
}
BENCHMARK(SinkServiceScaling)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
