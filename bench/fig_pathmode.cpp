// A3 — Path-recording mode ablation: arithmetic-coded hop ids (Dophy's
// choice) vs a fixed 24-bit path hash with sink-side graph search
// (PathZip-style).
//
// The hash is cheaper on the wire for long paths but turns decoding into a
// search that can fail or mis-resolve under big/ dense topologies; id-coding
// costs a few bits per hop but decodes exactly, always.  This bench
// quantifies the trade across network sizes, with dynamics on.

#include <iostream>

#include "bench_util.hpp"
#include "dophy/eval/runner.hpp"
#include "dophy/eval/scenario.hpp"

int main(int argc, char** argv) {
  const auto args = dophy::bench::BenchArgs::parse(argc, argv, /*trials=*/2);

  dophy::common::Table table({"nodes", "mode", "bytes_per_pkt", "decode_fail_pct",
                              "mae", "spearman", "search_per_pkt"});

  for (const std::size_t nodes : {40u, 80u, 160u}) {
    for (const bool hash_mode : {false, true}) {
      auto cfg = dophy::eval::default_pipeline(nodes, 160);
      dophy::eval::add_dynamics(cfg, 300.0, 0.1);
      cfg.dophy.tracker_decay = 0.85;
      cfg.dophy.path_mode =
          hash_mode ? dophy::tomo::PathMode::kHashPath : dophy::tomo::PathMode::kIdCoding;
      cfg.warmup_s = args.quick ? 150.0 : 300.0;
      cfg.measure_s = args.quick ? 600.0 : 1800.0;
      cfg.run_baselines = false;

      const auto agg = dophy::eval::run_trials(cfg, args.trials, 1600 + nodes,
                                               /*keep_runs=*/true);
      dophy::common::RunningStats search_per_pkt;
      for (const auto& run : agg.runs) search_per_pkt.add(run.hash_candidates_per_packet);

      table.row()
          .cell(nodes)
          .cell(hash_mode ? "hash-24bit" : "id-coding")
          .cell(agg.bits_per_packet.mean() / 8.0, 2)
          .cell(100.0 * agg.decode_failure_rate.mean(), 2)
          .cell(agg.method("dophy").mae.mean(), 4)
          .cell(agg.method("dophy").spearman.mean(), 3)
          .cell(search_per_pkt.mean(), 1);
    }
  }

  dophy::bench::emit(table, args, "A3: path-recording mode — id coding vs path hash");
  std::cout << "\nExpected shape: the hash mode's wire cost is smaller and flat-ish in\n"
               "network size while id-coding grows ~log N per hop; but hash decoding\n"
               "needs a growing graph search and its failure/mis-resolution rate rises\n"
               "with density and path length, which is why Dophy encodes ids.\n";
  return 0;
}
