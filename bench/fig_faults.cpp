// F9 — accuracy and accounting under injected faults (chaos sweep).
//
// The F6 sweep stresses routing dynamics; this one stresses *infrastructure*
// faults: node crashes, sink outages, link blackout bursts, clock skew, and
// hostile report corruption/truncation/drop, all driven by a deterministic
// dophy::fault::FaultPlan.  Two claims under test:
//
//   1. Robustness: a corrupted or truncated report surfaces as a counted,
//      typed decode failure — never a crash and never garbage hops poisoning
//      the estimates — so Dophy's accuracy degrades gracefully (it loses
//      samples, not correctness).
//   2. Observability: every injected fault is visible in the run report
//      (fault.* counters) and the event trace (fault_inject events).

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dophy/eval/runner.hpp"
#include "dophy/eval/scenario.hpp"

int main(int argc, char** argv) {
  const auto args = dophy::bench::BenchArgs::parse(argc, argv, /*trials=*/3, /*nodes=*/80);

  struct Level {
    std::string label;
    double intensity;
  };
  const std::vector<Level> levels = {
      {"off", 0.0}, {"low", 0.25}, {"moderate", 0.5}, {"high", 0.75}, {"extreme", 1.0},
  };

  dophy::common::Table table({"faults", "fault_events", "reports_mutated",
                              "delivery_ratio", "decode_fail_rate", "dophy_mae",
                              "delivery_ratio_mae", "em_mae"});

  for (const auto& level : levels) {
    auto cfg = dophy::eval::default_pipeline(args.nodes, 90);
    cfg.warmup_s = args.quick ? 150.0 : 300.0;
    cfg.measure_s = args.quick ? 900.0 : 3600.0;
    dophy::eval::add_faults(cfg, level.intensity);

    const auto agg = dophy::eval::run_trials(cfg, args.trials, 900, /*keep_runs=*/true);
    std::uint64_t fault_events = 0;
    std::uint64_t reports_mutated = 0;
    for (const auto& run : agg.runs) {
      fault_events += run.fault_stats.events_executed;
      reports_mutated += run.fault_stats.reports_mutated();
    }
    table.row()
        .cell(level.label)
        .cell(fault_events)
        .cell(reports_mutated)
        .cell(agg.delivery_ratio.mean(), 3)
        .cell(agg.decode_failure_rate.mean(), 4)
        .cell(agg.method("dophy").mae.mean(), 4)
        .cell(agg.method("delivery-ratio").mae.mean(), 4)
        .cell(agg.method("em").mae.mean(), 4);
  }

  dophy::bench::emit(table, args, "F9: accuracy under injected faults (chaos sweep)");
  std::cout << "\nExpected shape: delivery ratio falls and the decode-failure rate rises\n"
               "monotonically with fault intensity, while Dophy's MAE on the links it\n"
               "still observes degrades only gently — mutated reports are rejected with\n"
               "typed errors instead of contributing garbage hop observations.\n";
  return 0;
}
