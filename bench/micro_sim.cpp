// T2b — Simulator microbenchmarks (google-benchmark): raw event-queue
// throughput and whole-network simulation rate with/without Dophy
// instrumentation.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "dophy/net/event_queue.hpp"
#include "dophy/net/network.hpp"
#include "dophy/tomo/dophy_encoder.hpp"

namespace {

void EventQueuePushPop(benchmark::State& state) {
  dophy::net::EventQueue q;
  std::uint64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.push(static_cast<dophy::net::SimTime>((t * 2654435761u) % 100000), [] {});
      ++t;
    }
    for (int i = 0; i < 64; ++i) (void)q.pop();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(EventQueuePushPop);

dophy::net::NetworkConfig bench_net_config(std::uint64_t seed) {
  dophy::net::NetworkConfig cfg;
  cfg.topology.node_count = 60;
  cfg.topology.field_size = 160.0;
  cfg.topology.comm_range = 40.0;
  cfg.traffic.data_interval_s = 5.0;
  cfg.seed = seed;
  cfg.collect_outcomes = false;
  return cfg;
}

void NetworkSimulatedSecondsPlain(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    dophy::net::Network net(bench_net_config(seed++));
    net.run_for(120.0);
    benchmark::DoNotOptimize(net.stats().packets_delivered);
  }
  state.counters["sim_s_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()) * 120.0,
                         benchmark::Counter::kIsRate);
}
BENCHMARK(NetworkSimulatedSecondsPlain)->Unit(benchmark::kMillisecond);

void NetworkSimulatedSecondsWithDophy(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto cfg = bench_net_config(seed++);
    const dophy::tomo::SymbolMapper mapper(4);
    dophy::tomo::DophyInstrumentation instr(cfg.topology.node_count, mapper);
    dophy::net::Network net(cfg, &instr);
    net.run_for(120.0);
    benchmark::DoNotOptimize(instr.stats().hops_encoded);
  }
  state.counters["sim_s_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()) * 120.0,
                         benchmark::Counter::kIsRate);
}
BENCHMARK(NetworkSimulatedSecondsWithDophy)->Unit(benchmark::kMillisecond);

}  // namespace

// Like BENCHMARK_MAIN(), but accepts --metrics-json (which the benchmark
// arg parser would reject) and writes an obs::RunReport when given.
int main(int argc, char** argv) {
  const std::string report_path = dophy::bench::extract_metrics_json(argc, argv);
  const std::string bench_name = dophy::bench::detail::basename_of(argc > 0 ? argv[0] : nullptr);
  // Without --metrics-json this binary measures the simulator, not the
  // instrumentation: turn metric recording off (call sites become a relaxed
  // load + branch).
  if (report_path.empty()) dophy::obs::Registry::global().set_enabled(false);
  const auto baseline = dophy::obs::Registry::global().snapshot();
  const auto start = std::chrono::steady_clock::now();

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!report_path.empty()) {
    const double total_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (!dophy::bench::write_micro_report(report_path, bench_name, baseline, total_s)) {
      return 1;
    }
  }
  return 0;
}
