// T2b — Simulator microbenchmarks (google-benchmark): raw event-queue
// throughput (typed events and the slab-backed callback escape hatch),
// whole-network simulation rate with/without Dophy instrumentation, and
// heap-allocation counts from the interposed counting allocator
// (alloc_counter.cpp) proving the zero-allocation steady state.

#include <benchmark/benchmark.h>

#include <array>

#include "alloc_counter.hpp"
#include "bench_util.hpp"
#include "dophy/net/event_queue.hpp"
#include "dophy/net/network.hpp"
#include "dophy/tomo/dophy_encoder.hpp"

namespace {

// Pseudo-random schedule times, generated OUTSIDE the timed region: a
// 64-bit modulo costs ~20 cycles, which is pure harness noise next to a
// ~20 ns push/pop pair.
std::array<dophy::net::SimTime, 4096> make_times() {
  std::array<dophy::net::SimTime, 4096> times;
  for (std::uint64_t t = 0; t < times.size(); ++t) {
    times[t] = static_cast<dophy::net::SimTime>((t * 2654435761u) % 100000);
  }
  return times;
}

// The engine hot path: trivially-copyable typed events through the 4-ary
// heap.  Zero allocations per push/pop once the heap vector reaches its
// high-water mark.
void EventQueuePushPop(benchmark::State& state) {
  dophy::net::EventQueue q;
  const auto noop = [](void*, const dophy::net::Event&) {};
  const auto times = make_times();
  const auto ev = dophy::net::Event::node_event(dophy::net::EventKind::kBeaconSend,
                                                noop, nullptr, 0);
  std::size_t t = 0;
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const auto before = dophy::bench::alloc_snapshot();
    for (int i = 0; i < 64; ++i) {
      q.push_event(times[t], ev);
      t = (t + 1) % times.size();
    }
    for (int i = 0; i < 64; ++i) (void)q.pop();
    allocs += dophy::bench::allocs_between(before, dophy::bench::alloc_snapshot());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
  state.counters["allocs_per_item"] = benchmark::Counter(
      static_cast<double>(allocs) /
      (static_cast<double>(state.iterations()) * 64.0));
}
BENCHMARK(EventQueuePushPop);

// The escape hatch: std::function callbacks parked in the free-listed slab.
void EventQueuePushPopCallback(benchmark::State& state) {
  dophy::net::EventQueue q;
  const auto times = make_times();
  std::size_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.push(times[t], [] {});
      t = (t + 1) % times.size();
    }
    for (int i = 0; i < 64; ++i) {
      const auto entry = q.pop();
      q.run_callback(entry.event);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(EventQueuePushPopCallback);

dophy::net::NetworkConfig bench_net_config(std::uint64_t seed) {
  dophy::net::NetworkConfig cfg;
  cfg.topology.node_count = 60;
  cfg.topology.field_size = 160.0;
  cfg.topology.comm_range = 40.0;
  cfg.traffic.data_interval_s = 5.0;
  cfg.seed = seed;
  cfg.collect_outcomes = false;
  return cfg;
}

void NetworkSimulatedSecondsPlain(benchmark::State& state) {
  std::uint64_t seed = 1;
  std::uint64_t events = 0;
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const auto before = dophy::bench::alloc_snapshot();
    dophy::net::Network net(bench_net_config(seed++));
    net.run_for(120.0);
    benchmark::DoNotOptimize(net.stats().packets_delivered);
    events += net.sim().executed_count();
    allocs += dophy::bench::allocs_between(before, dophy::bench::alloc_snapshot());
  }
  state.counters["sim_s_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()) * 120.0,
                         benchmark::Counter::kIsRate);
  state.counters["events_per_s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  // Whole-run figure (construction included); the steady-state benchmark
  // below isolates the post-warmup rate.
  state.counters["allocs_per_sim_s"] = benchmark::Counter(
      static_cast<double>(allocs) /
      (static_cast<double>(state.iterations()) * 120.0));
}
BENCHMARK(NetworkSimulatedSecondsPlain)->Unit(benchmark::kMillisecond);

void NetworkSimulatedSecondsWithDophy(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto cfg = bench_net_config(seed++);
    const dophy::tomo::SymbolMapper mapper(4);
    dophy::tomo::DophyInstrumentation instr(cfg.topology.node_count, mapper);
    dophy::net::Network net(cfg, &instr);
    net.run_for(120.0);
    benchmark::DoNotOptimize(instr.stats().hops_encoded);
  }
  state.counters["sim_s_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()) * 120.0,
                         benchmark::Counter::kIsRate);
}
BENCHMARK(NetworkSimulatedSecondsWithDophy)->Unit(benchmark::kMillisecond);

// PDES scaling: one 1024-node grid partitioned into 8 LPs, executed with T
// worker threads (arg 0 = the serial engine on the same topology).  The
// events_per_s counter is the scaling headline; bench_compare.py gates the
// T=8 / T=1 ratio on hosts with enough cores and records it informationally
// elsewhere (a 1-core box measures synchronization overhead, not scaling).
dophy::net::NetworkConfig parallel_net_config(std::uint64_t seed, std::int64_t threads) {
  dophy::net::NetworkConfig cfg;
  cfg.topology.node_count = 1024;
  cfg.topology.field_size = 640.0;
  cfg.topology.comm_range = 45.0;
  cfg.topology.layout = dophy::net::Layout::kGrid;
  cfg.traffic.data_interval_s = 2.0;
  cfg.traffic.max_hops = 96;  // 32x32 corner-sink grid: diameter ~62 hops
  cfg.seed = seed;
  cfg.collect_outcomes = false;
  if (threads > 0) {
    cfg.pdes.lp_count = 8;
    cfg.pdes.threads = static_cast<std::size_t>(threads);
  }
  return cfg;
}

void NetworkPdesGrid(benchmark::State& state) {
  const std::int64_t threads = state.range(0);
  std::uint64_t seed = 1;
  std::uint64_t events = 0;
  double sim_s = 0.0;
  for (auto _ : state) {
    dophy::net::Network net(parallel_net_config(seed++, threads));
    net.run_for(30.0);
    benchmark::DoNotOptimize(net.stats().packets_delivered);
    events += net.executed_events();
    sim_s += 30.0;
  }
  state.counters["events_per_s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["sim_s_per_s"] =
      benchmark::Counter(sim_s, benchmark::Counter::kIsRate);
}
BENCHMARK(NetworkPdesGrid)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Steady-state allocation audit: run the 60-node network past its warm-up
// (every pool, slab, ring and heap at high-water mark), then count heap
// allocations across a further simulated minute.  The engine contract is
// zero allocations per event in steady state.
void NetworkSteadyStateAllocs(benchmark::State& state) {
  std::uint64_t allocs = 0;
  std::uint64_t events = 0;
  double sim_s = 0.0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    dophy::net::Network net(bench_net_config(seed++));
    net.run_for(300.0);  // warm-up: reach capacity high-water everywhere
    const std::uint64_t events_before = net.sim().executed_count();
    const auto before = dophy::bench::alloc_snapshot();
    net.run_for(60.0);
    allocs += dophy::bench::allocs_between(before, dophy::bench::alloc_snapshot());
    events += net.sim().executed_count() - events_before;
    sim_s += 60.0;
  }
  state.counters["steady_allocs_per_event"] =
      benchmark::Counter(static_cast<double>(allocs) /
                         static_cast<double>(events == 0 ? 1 : events));
  state.counters["steady_allocs_per_sim_s"] =
      benchmark::Counter(static_cast<double>(allocs) / sim_s);
}
BENCHMARK(NetworkSteadyStateAllocs)->Unit(benchmark::kMillisecond);

}  // namespace

// Like BENCHMARK_MAIN(), but accepts --metrics-json (which the benchmark
// arg parser would reject) and writes an obs::RunReport when given.
int main(int argc, char** argv) {
  const std::string report_path = dophy::bench::extract_metrics_json(argc, argv);
  const std::string bench_name = dophy::bench::detail::basename_of(argc > 0 ? argv[0] : nullptr);
  // Without --metrics-json this binary measures the simulator, not the
  // instrumentation: turn metric recording off (call sites become a relaxed
  // load + branch).
  if (report_path.empty()) dophy::obs::Registry::global().set_enabled(false);
  const auto baseline = dophy::obs::Registry::global().snapshot();
  const auto start = std::chrono::steady_clock::now();

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!report_path.empty()) {
    const double total_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (!dophy::bench::write_micro_report(report_path, bench_name, baseline, total_s)) {
      return 1;
    }
  }
  return 0;
}
