// T1 — Summary table across the four canonical scenarios
// (static / dynamic / bursty / drifting).
//
// For each scenario: accuracy of every method, Dophy's wire overhead, the
// window delivery ratio (shows ARQ masking), and routing churn.

#include <iostream>

#include "bench_util.hpp"
#include "dophy/eval/report.hpp"
#include "dophy/eval/runner.hpp"
#include "dophy/eval/scenario.hpp"

int main(int argc, char** argv) {
  const auto args = dophy::bench::BenchArgs::parse(argc, argv, /*trials=*/3, /*nodes=*/80);

  dophy::common::Table table({"scenario", "method", "mae", "p90_abs_err", "spearman",
                              "coverage", "bytes_per_pkt", "delivery", "parent_chg_per_node_h",
                              "model_updates"});

  for (auto& scenario : dophy::eval::summary_scenarios(args.nodes, 130)) {
    auto cfg = scenario.config;
    cfg.warmup_s = args.quick ? 150.0 : 300.0;
    cfg.measure_s = args.quick ? 900.0 : 3600.0;
    const auto agg = dophy::eval::run_trials(cfg, args.trials, 1300);

    bool first = true;
    for (const auto& name : dophy::eval::method_order(agg)) {
      const auto& m = agg.method(name);
      table.row()
          .cell(first ? scenario.name : "")
          .cell(name)
          .cell(m.mae.mean(), 4)
          .cell(m.p90_abs.mean(), 4)
          .cell(m.spearman.mean(), 3)
          .cell(m.coverage.mean(), 3)
          .cell(first ? dophy::common::format_double(agg.bits_per_packet.mean() / 8.0, 2)
                      : std::string(""))
          .cell(first ? dophy::common::format_double(agg.delivery_ratio.mean(), 3)
                      : std::string(""))
          .cell(first ? dophy::common::format_double(agg.parent_changes_per_node_hour.mean(), 2)
                      : std::string(""))
          .cell(first ? dophy::common::format_double(agg.model_updates.mean(), 1)
                      : std::string(""));
      first = false;
    }
  }

  dophy::bench::emit(table, args, "T1: summary across scenarios (80 nodes, 1h windows)");
  std::cout << "\nExpected shape: dophy's MAE stays in the low hundredths and its rank\n"
               "correlation above ~0.9 in every scenario; traditional methods sit an\n"
               "order of magnitude worse even on the static network, and churn/burst\n"
               "scenarios widen the gap.\n";
  return 0;
}
