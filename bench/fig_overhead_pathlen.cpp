// F1 — Encoding overhead vs. path length.
//
// Claim (abstract): "Dophy employs arithmetic encoding to compactly encode
// the number of retransmissions along the paths ... reducing the encoding
// overhead significantly."
//
// Setup: synthetic multi-hop paths whose per-hop transmission counts are
// Geometric in heterogeneous per-link losses (drawn from the same
// distance-curve regime the simulator produces).  Each scheme encodes the
// per-packet count sequence (aggregated at K=4); node ids cost the same for
// every scheme and are excluded.  Reported: mean measurement bytes/packet.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "dophy/coding/codec.hpp"
#include "dophy/common/rng.hpp"
#include "dophy/common/stats.hpp"
#include "dophy/tomo/symbol_mapper.hpp"

namespace {

using dophy::common::Rng;

constexpr std::uint32_t kCensorK = 4;
constexpr std::uint32_t kMaxAttempts = 8;

/// Per-hop losses for a path: mixture of mostly-good and some bad links.
std::vector<double> draw_path_losses(Rng& rng, std::size_t hops) {
  std::vector<double> losses(hops);
  for (auto& p : losses) {
    p = rng.bernoulli(0.25) ? rng.uniform(0.2, 0.5) : rng.uniform(0.02, 0.15);
  }
  return losses;
}

std::vector<std::uint32_t> draw_packet_symbols(Rng& rng, const std::vector<double>& losses,
                                               const dophy::tomo::SymbolMapper& mapper) {
  std::vector<std::uint32_t> symbols;
  symbols.reserve(losses.size());
  for (const double p : losses) {
    const std::uint32_t attempts = std::min(rng.geometric_trials(1.0 - p), kMaxAttempts);
    symbols.push_back(mapper.to_symbol(attempts));
  }
  return symbols;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = dophy::bench::BenchArgs::parse(argc, argv, /*trials=*/5);
  const std::size_t packets = args.quick ? 2000 : 10000;
  const dophy::tomo::SymbolMapper mapper(kCensorK);

  dophy::common::Table table({"path_len", "raw8bit_B", "fixed2bit_B", "gamma_B", "rice0_B",
                              "huffman_B", "dophy_arith_B", "entropy_B"});

  for (const std::size_t hops : {1u, 2u, 4u, 6u, 8u, 10u, 12u}) {
    dophy::common::RunningStats raw8, fixed2, gamma, rice0, huffman, arith, entropy;
    for (std::size_t trial = 0; trial < args.trials; ++trial) {
      Rng rng(1000 + trial * 77 + hops);
      // Train Huffman/arithmetic on a training corpus from the same regime.
      std::vector<std::uint64_t> counts(kCensorK, 0);
      for (int i = 0; i < 5000; ++i) {
        const auto losses = draw_path_losses(rng, hops);
        for (const auto s : draw_packet_symbols(rng, losses, mapper)) ++counts[s];
      }
      auto huffman_codec = dophy::coding::make_huffman_codec(counts);
      auto arith_codec = dophy::coding::make_static_arith_codec(counts);
      auto fixed_codec = dophy::coding::make_fixed_width_codec(kCensorK);
      auto gamma_codec = dophy::coding::make_elias_gamma_codec();
      auto rice_codec = dophy::coding::make_rice_codec(0);
      const double h_bits = dophy::common::entropy_bits(counts);

      std::vector<std::uint8_t> buf;
      for (std::size_t pkt = 0; pkt < packets; ++pkt) {
        const auto losses = draw_path_losses(rng, hops);
        const auto symbols = draw_packet_symbols(rng, losses, mapper);
        raw8.add(static_cast<double>(symbols.size()));  // 1 byte/hop baseline
        fixed2.add(static_cast<double>(fixed_codec->encode(symbols, buf)) / 8.0);
        gamma.add(static_cast<double>(gamma_codec->encode(symbols, buf)) / 8.0);
        rice0.add(static_cast<double>(rice_codec->encode(symbols, buf)) / 8.0);
        huffman.add(static_cast<double>(huffman_codec->encode(symbols, buf)) / 8.0);
        arith.add(static_cast<double>(arith_codec->encode(symbols, buf)) / 8.0);
        entropy.add(h_bits * static_cast<double>(hops) / 8.0);
      }
    }
    table.row()
        .cell(hops)
        .cell(raw8.mean(), 3)
        .cell(fixed2.mean(), 3)
        .cell(gamma.mean(), 3)
        .cell(rice0.mean(), 3)
        .cell(huffman.mean(), 3)
        .cell(arith.mean(), 3)
        .cell(entropy.mean(), 3);
  }

  dophy::bench::emit(table, args,
                     "F1: measurement bytes/packet vs path length (retx counts, K=4)");
  std::cout << "\nExpected shape: dophy_arith tracks the entropy bound and undercuts\n"
               "every prefix code; the gap widens with path length because arithmetic\n"
               "coding amortizes sub-bit symbols while Huffman/Rice pay >= 1 bit/hop.\n";
  return 0;
}
