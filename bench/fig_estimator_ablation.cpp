// A1 — Sink-estimator design ablation (DESIGN.md design-choice bench).
//
// Compares the cumulative censored-geometric MLE, the count-decay tracker at
// two decay levels, and the Beta-prior Bayesian posterior mean, on a static
// network and on a drifting one.  Shows why the library defaults to the
// plain MLE for stationary links and decay ~0.85 for moving ones.

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dophy/eval/runner.hpp"
#include "dophy/eval/scenario.hpp"

int main(int argc, char** argv) {
  const auto args = dophy::bench::BenchArgs::parse(argc, argv, /*trials=*/3, /*nodes=*/80);

  struct Variant {
    std::string label;
    double decay;
    double prior_a;
    double prior_b;
  };
  const std::vector<Variant> variants = {
      {"mle-cumulative", 1.0, 0.0, 0.0},
      {"tracker-d0.85", 0.85, 0.0, 0.0},
      {"tracker-d0.60", 0.60, 0.0, 0.0},
      {"bayes-beta(2,0.4)", 1.0, 2.0, 0.4},
      {"bayes+track-d0.85", 0.85, 2.0, 0.4},
  };

  dophy::common::Table table({"estimator", "static_mae", "static_p90", "drift_mae",
                              "drift_p90", "drift_spearman"});

  for (const auto& v : variants) {
    auto run_one = [&](bool drifting) {
      auto cfg = dophy::eval::default_pipeline(args.nodes, 140);
      if (drifting) {
        // Re-randomizing link qualities plus RECENT-truth scoring: the fair
        // target for a tracker is what the link does now, not the window
        // average (which would structurally favor the cumulative MLE).
        dophy::eval::add_dynamics(cfg, 600.0, 0.2);
        cfg.truth_tail_fraction = 0.25;
      }
      cfg.dophy.tracker_decay = v.decay;
      cfg.dophy.prior_successes = v.prior_a;
      cfg.dophy.prior_failures = v.prior_b;
      cfg.warmup_s = args.quick ? 150.0 : 300.0;
      cfg.measure_s = args.quick ? 900.0 : 2400.0;
      cfg.run_baselines = false;
      return dophy::eval::run_trials(cfg, args.trials, 1400);
    };
    const auto st = run_one(false);
    const auto dr = run_one(true);
    table.row()
        .cell(v.label)
        .cell(st.method("dophy").mae.mean(), 4)
        .cell(st.method("dophy").p90_abs.mean(), 4)
        .cell(dr.method("dophy").mae.mean(), 4)
        .cell(dr.method("dophy").p90_abs.mean(), 4)
        .cell(dr.method("dophy").spearman.mean(), 3);
  }

  dophy::bench::emit(table, args, "A1: sink estimator variants, static vs drifting links");
  std::cout << "\nExpected shape: the cumulative MLE wins on static links (uses all\n"
               "data) but anchors to stale history when link qualities re-randomize\n"
               "and truth is scored on the recent window; moderate decay trades a\n"
               "little static accuracy for tracking; the Beta prior mainly tightens\n"
               "thin links (tail/p90).\n";
  return 0;
}
