// F7 — Accuracy and overhead vs. network size.
//
// Claim (abstract): "evaluate its performance extensively using large-scale
// simulations."
//
// Node count is swept at constant density (the field grows with N).  Paths
// get longer, per-packet streams carry more hops, and the id alphabet grows
// — Dophy's accuracy and per-hop cost must stay stable.

#include <iostream>

#include "bench_util.hpp"
#include "dophy/eval/runner.hpp"
#include "dophy/eval/scenario.hpp"

int main(int argc, char** argv) {
  const auto args = dophy::bench::BenchArgs::parse(argc, argv, /*trials=*/2);

  dophy::common::Table table({"nodes", "mean_path_len", "bits_per_hop", "bytes_per_pkt",
                              "dophy_mae", "em_mae", "dophy_coverage",
                              "parent_chg_per_node_h"});

  for (const std::size_t nodes : {25u, 50u, 100u, 200u, 400u}) {
    auto cfg = dophy::eval::default_pipeline(nodes, 110);
    dophy::eval::add_dynamics(cfg, 300.0, 0.1);  // mildly dynamic throughout
    cfg.dophy.tracker_decay = 0.85;
    cfg.warmup_s = args.quick ? 150.0 : 300.0;
    cfg.measure_s = args.quick ? 600.0 : 1800.0;

    const auto agg = dophy::eval::run_trials(cfg, args.trials, 1100 + nodes);
    table.row()
        .cell(nodes)
        .cell(agg.path_length.mean(), 2)
        .cell(agg.bits_per_hop.mean(), 2)
        .cell(agg.bits_per_packet.mean() / 8.0, 2)
        .cell(agg.method("dophy").mae.mean(), 4)
        .cell(agg.method("em").mae.mean(), 4)
        .cell(agg.method("dophy").coverage.mean(), 3)
        .cell(agg.parent_changes_per_node_hour.mean(), 2);
  }

  dophy::bench::emit(table, args, "F7: scaling with network size (constant density)");
  std::cout << "\nExpected shape: dophy's MAE and bits/hop stay roughly flat as the\n"
               "network grows (the id model learns the relay distribution, offsetting\n"
               "the log N alphabet); bytes/packet grows only with path length.\n";
  return 0;
}
