// Interposed global operator new/delete: counts every heap allocation in
// the process.  Linked only into benchmark binaries — the library proper
// never depends on this TU.

#include "alloc_counter.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<std::uint64_t> g_bytes{0};

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size);
}

void counted_free(void* ptr) noexcept {
  if (ptr != nullptr) g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(ptr);
}

}  // namespace

namespace dophy::bench {

AllocSnapshot alloc_snapshot() noexcept {
  AllocSnapshot s;
  s.allocs = g_allocs.load(std::memory_order_relaxed);
  s.frees = g_frees.load(std::memory_order_relaxed);
  s.bytes = g_bytes.load(std::memory_order_relaxed);
  return s;
}

}  // namespace dophy::bench

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               (size + static_cast<std::size_t>(align) - 1) &
                                   ~(static_cast<std::size_t>(align) - 1));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* ptr) noexcept { counted_free(ptr); }
void operator delete[](void* ptr) noexcept { counted_free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { counted_free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { counted_free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept { counted_free(ptr); }
void operator delete[](void* ptr, const std::nothrow_t&) noexcept { counted_free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { counted_free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { counted_free(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  counted_free(ptr);
}
