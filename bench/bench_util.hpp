#pragma once

// Shared helpers for the figure/table harness binaries.  Every binary
// supports:
//   --trials N            Monte-Carlo trials per sweep point (default per-bench)
//   --nodes N             network size where applicable
//   --quick               cut simulated durations ~4x for smoke runs
//   --csv                 emit CSV instead of the aligned table
//   --metrics-json PATH   write a machine-readable run report (obs::RunReport)
//   --trace-jsonl PATH    stream structured simulation events to a JSONL file
//   --check               arm the dophy::check invariant oracle in every
//                         pipeline run (slower; aborts-free but exits 2 if a
//                         run reports violations via the pipeline result)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "dophy/check/check.hpp"
#include "dophy/common/table.hpp"
#include "dophy/obs/report.hpp"
#include "dophy/obs/timer.hpp"
#include "dophy/obs/trace.hpp"

namespace dophy::bench {

namespace detail {

/// Report accumulated across emit() calls; rewritten to disk on each call so
/// a partially-completed sweep still leaves a valid (truncated) report.
struct ReportState {
  bool active = false;
  std::string path;
  dophy::obs::RunReport report;
  dophy::obs::MetricsSnapshot baseline;  ///< registry state at parse time
  std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
};

inline ReportState& report_state() {
  static ReportState state;
  return state;
}

inline std::string basename_of(const char* argv0) {
  std::string name = argv0 == nullptr ? "bench" : argv0;
  const auto slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  return name.empty() ? "bench" : name;
}

}  // namespace detail

struct BenchArgs {
  std::size_t trials = 3;
  std::size_t nodes = 100;
  bool quick = false;
  bool csv = false;
  bool check = false;  ///< invariant oracle armed process-wide
  std::string bench_name = "bench";
  std::string metrics_json;  ///< empty = no report
  std::string trace_jsonl;   ///< empty = no event trace

  static BenchArgs parse(int argc, char** argv, std::size_t default_trials = 3,
                         std::size_t default_nodes = 100) {
    BenchArgs args;
    args.trials = default_trials;
    args.nodes = default_nodes;
    args.bench_name = detail::basename_of(argc > 0 ? argv[0] : nullptr);
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next_arg = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::cerr << "missing value for " << a << "\n";
          std::exit(2);
        }
        return argv[++i];
      };
      auto next_value = [&]() -> std::uint64_t {
        return std::strtoull(next_arg(), nullptr, 10);
      };
      if (a == "--trials") {
        args.trials = static_cast<std::size_t>(next_value());
      } else if (a == "--nodes") {
        args.nodes = static_cast<std::size_t>(next_value());
      } else if (a == "--quick") {
        args.quick = true;
      } else if (a == "--csv") {
        args.csv = true;
      } else if (a == "--check") {
        args.check = true;
        dophy::check::set_global_enabled(true);
        // Bench mains only print tables; make a failed oracle fatal at
        // process end (the pipeline already printed each FAIL summary).
        std::atexit([] {
          if (const auto failures = dophy::check::global_failure_count()) {
            std::fprintf(stderr, "--check: %llu pipeline run(s) failed invariant checks\n",
                         static_cast<unsigned long long>(failures));
            std::_Exit(1);
          }
        });
      } else if (a == "--metrics-json") {
        args.metrics_json = next_arg();
      } else if (a == "--trace-jsonl") {
        args.trace_jsonl = next_arg();
      } else if (a == "--help" || a == "-h") {
        std::cout << "usage: bench [--trials N] [--nodes N] [--quick] [--csv] [--check]\n"
                     "             [--metrics-json PATH] [--trace-jsonl PATH]\n";
        std::exit(0);
      } else {
        std::cerr << "unknown argument: " << a << "\n";
        std::exit(2);
      }
    }

    if (!args.trace_jsonl.empty()) {
      auto& trace = dophy::obs::EventTrace::global();
      if (!trace.open_file(args.trace_jsonl)) {
        std::cerr << "cannot open trace file: " << args.trace_jsonl << "\n";
        std::exit(2);
      }
      trace.enable_all();
    }

    if (!args.metrics_json.empty()) {
      auto& state = detail::report_state();
      state.active = true;
      state.path = args.metrics_json;
      state.baseline = dophy::obs::Registry::global().snapshot();
      state.start = std::chrono::steady_clock::now();
      state.report.bench = args.bench_name;
      state.report.config["trials"] = std::to_string(args.trials);
      state.report.config["nodes"] = std::to_string(args.nodes);
      state.report.config["quick"] = args.quick ? "1" : "0";
      dophy::obs::reset_global_phases();
    }
    return args;
  }
};

/// Prints the table and, when --metrics-json was given, folds it into the
/// run report and rewrites the report file.
inline void emit(const dophy::common::Table& table, const BenchArgs& args,
                 const std::string& title) {
  if (args.csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout, title);
  }

  auto& state = detail::report_state();
  if (!state.active) return;
  dophy::obs::TableSection section;
  section.title = title;
  section.columns = table.headers();
  section.rows = table.rows();
  state.report.tables.push_back(std::move(section));
  state.report.title = title;
  state.report.phase_seconds = dophy::obs::global_phases().seconds();
  state.report.phase_seconds["bench.total"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - state.start).count();
  state.report.metrics =
      dophy::obs::Registry::global().snapshot().delta_since(state.baseline);
  if (!dophy::obs::write_report_file(state.report, state.path)) {
    std::cerr << "cannot write report: " << state.path << "\n";
    std::exit(2);
  }
}

/// For google-benchmark binaries: removes `--metrics-json PATH` (which the
/// benchmark arg parser would reject) from argv and returns the path.
inline std::string extract_metrics_json(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      path = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return path;
}

/// Minimal report for the micro benches (no result tables; phase timings and
/// the metrics delta accumulated over the benchmark run).
inline bool write_micro_report(const std::string& path, const std::string& bench_name,
                               const dophy::obs::MetricsSnapshot& baseline,
                               double total_seconds) {
  dophy::obs::RunReport report;
  report.bench = bench_name;
  report.title = bench_name;
  report.phase_seconds = dophy::obs::global_phases().seconds();
  report.phase_seconds["bench.total"] = total_seconds;
  report.metrics = dophy::obs::Registry::global().snapshot().delta_since(baseline);
  return dophy::obs::write_report_file(report, path);
}

}  // namespace dophy::bench
