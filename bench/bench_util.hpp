#pragma once

// Shared helpers for the google-benchmark micro binaries (micro_codec,
// micro_sim).  The figure/table sweeps that used to live next to them are now
// declarative specs in src/dophy/eval/experiments/ driven by tools/dophy_bench.

#include <cstring>
#include <string>

#include "dophy/obs/report.hpp"
#include "dophy/obs/timer.hpp"

namespace dophy::bench {

namespace detail {

inline std::string basename_of(const char* argv0) {
  std::string name = argv0 == nullptr ? "bench" : argv0;
  const auto slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  return name.empty() ? "bench" : name;
}

}  // namespace detail

/// For google-benchmark binaries: removes `--metrics-json PATH` (which the
/// benchmark arg parser would reject) from argv and returns the path.
inline std::string extract_metrics_json(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      path = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return path;
}

/// Minimal report for the micro benches (no result tables; phase timings and
/// the metrics delta accumulated over the benchmark run).
inline bool write_micro_report(const std::string& path, const std::string& bench_name,
                               const dophy::obs::MetricsSnapshot& baseline,
                               double total_seconds) {
  dophy::obs::RunReport report;
  report.bench = bench_name;
  report.title = bench_name;
  report.phase_seconds = dophy::obs::global_phases().seconds();
  report.phase_seconds["bench.total"] = total_seconds;
  report.metrics = dophy::obs::Registry::global().snapshot().delta_since(baseline);
  return dophy::obs::write_report_file(report, path);
}

}  // namespace dophy::bench
