#pragma once

// Shared helpers for the figure/table harness binaries.  Every binary
// supports:
//   --trials N    Monte-Carlo trials per sweep point (default per-bench)
//   --nodes N     network size where applicable
//   --quick       cut simulated durations ~4x for smoke runs
//   --csv         emit CSV instead of the aligned table

#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>

#include "dophy/common/table.hpp"

namespace dophy::bench {

struct BenchArgs {
  std::size_t trials = 3;
  std::size_t nodes = 100;
  bool quick = false;
  bool csv = false;

  static BenchArgs parse(int argc, char** argv, std::size_t default_trials = 3,
                         std::size_t default_nodes = 100) {
    BenchArgs args;
    args.trials = default_trials;
    args.nodes = default_nodes;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next_value = [&]() -> std::uint64_t {
        if (i + 1 >= argc) {
          std::cerr << "missing value for " << a << "\n";
          std::exit(2);
        }
        return std::strtoull(argv[++i], nullptr, 10);
      };
      if (a == "--trials") {
        args.trials = static_cast<std::size_t>(next_value());
      } else if (a == "--nodes") {
        args.nodes = static_cast<std::size_t>(next_value());
      } else if (a == "--quick") {
        args.quick = true;
      } else if (a == "--csv") {
        args.csv = true;
      } else if (a == "--help" || a == "-h") {
        std::cout << "usage: bench [--trials N] [--nodes N] [--quick] [--csv]\n";
        std::exit(0);
      } else {
        std::cerr << "unknown argument: " << a << "\n";
        std::exit(2);
      }
    }
    return args;
  }
};

inline void emit(const dophy::common::Table& table, const BenchArgs& args,
                 const std::string& title) {
  if (args.csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout, title);
  }
}

}  // namespace dophy::bench
