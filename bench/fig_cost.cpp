// A2 — What Dophy costs the network (DESIGN.md design-cost bench).
//
// Runs the same network with and without the in-packet measurement plane
// and compares delivery, latency, and estimated radio energy.  The blob adds
// bytes to every data frame (per-byte tx energy) and model floods add
// control traffic; nothing else changes (the simulator's frame timing is
// size-independent, as is typical for slotted WSN MACs).

#include <iostream>

#include "bench_util.hpp"
#include "dophy/common/stats.hpp"
#include "dophy/eval/scenario.hpp"
#include "dophy/net/energy.hpp"
#include "dophy/tomo/dophy_encoder.hpp"

int main(int argc, char** argv) {
  const auto args = dophy::bench::BenchArgs::parse(argc, argv, /*trials=*/3, /*nodes=*/80);
  const double duration_s = args.quick ? 1200.0 : 3600.0;

  dophy::common::Table table({"config", "delivered", "delivery", "latency_ms_mean",
                              "energy_mj", "meas_energy_pct"});

  for (const bool with_dophy : {false, true}) {
    dophy::common::RunningStats delivered, delivery, latency, energy, meas_pct;
    for (std::size_t trial = 0; trial < args.trials; ++trial) {
      const auto cfg = dophy::eval::default_pipeline(args.nodes, 150 + trial);
      const dophy::tomo::SymbolMapper mapper(cfg.dophy.censor_threshold);
      dophy::tomo::DophyInstrumentation instr(args.nodes, mapper);
      dophy::net::Network net(cfg.net, with_dophy ? &instr : nullptr);
      net.run_for(duration_s);

      const auto stats = net.stats();
      const auto e = dophy::net::estimate_energy(stats);
      delivered.add(static_cast<double>(stats.packets_delivered));
      delivery.add(stats.delivery_ratio());
      latency.add(net.traces().latency().mean() * 1000.0);
      energy.add(e.total_mj());
      meas_pct.add(100.0 * e.measurement_fraction());
    }
    table.row()
        .cell(with_dophy ? "with-dophy" : "plain-ctp")
        .cell(delivered.mean(), 0)
        .cell(delivery.mean(), 4)
        .cell(latency.mean(), 1)
        .cell(energy.mean(), 1)
        .cell(meas_pct.mean(), 2);
  }

  dophy::bench::emit(table, args, "A2: network cost of the Dophy measurement plane");
  std::cout << "\nExpected shape: delivery and latency are identical (the blob rides\n"
               "existing frames, and seeds match so the runs are event-for-event the\n"
               "same); the energy delta is the per-byte cost of the measurement field\n"
               "— dominated by the 10-byte in-flight coder trailer, ~10% of the radio\n"
               "budget at this traffic rate.\n";
  return 0;
}
