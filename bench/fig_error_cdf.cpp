// F8 — CDF of per-link absolute estimation error.
//
// One moderately dynamic scenario; all four estimators' per-link absolute
// errors are pooled across trials and tabulated at fixed CDF levels.

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dophy/common/stats.hpp"
#include "dophy/eval/runner.hpp"
#include "dophy/eval/scenario.hpp"
#include "dophy/tomo/metrics.hpp"

int main(int argc, char** argv) {
  const auto args = dophy::bench::BenchArgs::parse(argc, argv, /*trials=*/3, /*nodes=*/80);

  auto cfg = dophy::eval::default_pipeline(args.nodes, 120);
  dophy::eval::add_dynamics(cfg, 300.0, 0.12);
  cfg.dophy.tracker_decay = 0.85;
  cfg.warmup_s = args.quick ? 150.0 : 300.0;
  cfg.measure_s = args.quick ? 900.0 : 3600.0;

  const auto agg = dophy::eval::run_trials(cfg, args.trials, 1200, /*keep_runs=*/true);

  std::map<std::string, std::vector<double>> errors;
  for (const auto& run : agg.runs) {
    for (const auto& method : run.methods) {
      const auto errs = dophy::tomo::abs_errors(method.scores);
      auto& pool = errors[method.name];
      pool.insert(pool.end(), errs.begin(), errs.end());
    }
  }

  dophy::common::Table table({"cdf_level", "dophy", "delivery-ratio", "nnls", "em"});
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    auto row_cell = [&](const std::string& name) {
      const auto it = errors.find(name);
      return (it == errors.end() || it->second.empty())
                 ? std::string("-")
                 : dophy::common::format_double(dophy::common::quantile(it->second, q), 4);
    };
    table.row()
        .cell(q, 2)
        .cell(row_cell("dophy"))
        .cell(row_cell("delivery-ratio"))
        .cell(row_cell("nnls"))
        .cell(row_cell("em"));
  }

  dophy::bench::emit(table, args, "F8: abs-error CDF quantiles per method (dynamic, 80 nodes)");
  std::cout << "\nExpected shape: dophy's error curve is an order of magnitude to the\n"
               "left of every baseline across the entire distribution, not just at the\n"
               "median — fine-grained per-hop counts help worst-case links too.\n";
  return 0;
}
