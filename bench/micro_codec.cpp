// T2a — Codec microbenchmarks (google-benchmark): ns/symbol for encode and
// decode across the coding library, on a geometric retransmission-count
// stream (K = 4 aggregation, ~10% link loss regime).

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.hpp"
#include "dophy/coding/arith.hpp"
#include "dophy/coding/codec.hpp"
#include "dophy/common/rng.hpp"
#include "dophy/mote/mote_encoder.hpp"
#include "dophy/tomo/symbol_mapper.hpp"

namespace {

using dophy::coding::Codec;

constexpr std::size_t kStreamLength = 4096;
constexpr std::uint32_t kCorpusSeed = 4242;

/// One corpus shared by every benchmark: encode and decode measure the exact
/// same randomized symbol stream, so A/B pairs (legacy vs range coder) are
/// apples-to-apples.  The seed is recorded in the bench JSON context.
const std::vector<std::uint32_t>& corpus() {
  static const std::vector<std::uint32_t> symbols = [] {
    dophy::common::Rng rng(kCorpusSeed);
    const dophy::tomo::SymbolMapper mapper(4);
    std::vector<std::uint32_t> s;
    s.reserve(kStreamLength);
    for (std::size_t i = 0; i < kStreamLength; ++i) {
      s.push_back(mapper.to_symbol(std::min(rng.geometric_trials(0.9), 8u)));
    }
    return s;
  }();
  return symbols;
}

std::vector<std::uint64_t> stream_counts(const std::vector<std::uint32_t>& symbols) {
  std::vector<std::uint64_t> counts(4, 0);
  for (const auto s : symbols) ++counts[s];
  return counts;
}

void bench_encode(benchmark::State& state, Codec& codec) {
  const auto& symbols = corpus();
  std::vector<std::uint8_t> buf;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(symbols, buf));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(symbols.size()));
}

void bench_decode(benchmark::State& state, Codec& codec) {
  const auto& symbols = corpus();
  std::vector<std::uint8_t> buf;
  (void)codec.encode(symbols, buf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(buf, symbols.size()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(symbols.size()));
}

#define DOPHY_CODEC_BENCH(name, maker)                                  \
  void Encode_##name(benchmark::State& state) {                         \
    auto codec = (maker);                                               \
    bench_encode(state, *codec);                                        \
  }                                                                     \
  BENCHMARK(Encode_##name);                                             \
  void Decode_##name(benchmark::State& state) {                         \
    auto codec = (maker);                                               \
    bench_decode(state, *codec);                                        \
  }                                                                     \
  BENCHMARK(Decode_##name)

DOPHY_CODEC_BENCH(Fixed2Bit, dophy::coding::make_fixed_width_codec(4));
DOPHY_CODEC_BENCH(EliasGamma, dophy::coding::make_elias_gamma_codec());
DOPHY_CODEC_BENCH(Rice0, dophy::coding::make_rice_codec(0));
DOPHY_CODEC_BENCH(Huffman, dophy::coding::make_huffman_codec(stream_counts(corpus())));
DOPHY_CODEC_BENCH(ArithStatic,
                  dophy::coding::make_static_arith_codec(stream_counts(corpus())));
DOPHY_CODEC_BENCH(ArithAdaptive, dophy::coding::make_adaptive_arith_codec(4));
// Wire-v1 bit-at-a-time coder, kept for A/B comparison against the range
// coder above (same models, same corpus).
DOPHY_CODEC_BENCH(LegacyArithStatic,
                  dophy::coding::make_legacy_static_arith_codec(stream_counts(corpus())));
DOPHY_CODEC_BENCH(LegacyArithAdaptive, dophy::coding::make_legacy_adaptive_arith_codec(4));

/// The TinyOS-constrained reference encoder's per-hop operation (no heap,
/// fixed buffers) — the cycle budget a real mote pays per forwarded packet.
void MotePerHopAppend(benchmark::State& state) {
  const dophy::coding::StaticModel ids(std::vector<std::uint64_t>(100, 1));
  const dophy::coding::StaticModel retx(std::vector<std::uint64_t>{90, 7, 2, 1});
  const auto ids_wire = ids.serialize();
  const auto retx_wire = retx.serialize();
  dophy::mote::MoteModel mote_ids{}, mote_retx{};
  (void)mote_ids.load(ids_wire.data(), ids_wire.size());
  (void)mote_retx.load(retx_wire.data(), retx_wire.size());
  for (auto _ : state) {
    dophy::mote::MotePacketState pkt{};
    dophy::mote::mote_on_origin(pkt, 1);
    for (std::uint16_t hop = 0; hop < 6; ++hop) {
      benchmark::DoNotOptimize(
          dophy::mote::mote_append_hop(pkt, mote_ids, mote_retx,
                                       static_cast<std::uint16_t>(hop + 1), 0));
    }
    benchmark::DoNotOptimize(pkt.byte_len);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 6);
}
BENCHMARK(MotePerHopAppend);

/// The per-hop path: resume coder state, append two symbols, re-suspend —
/// the exact work a forwarding mote performs per packet.
void PerHopResumeAppendSuspend(benchmark::State& state) {
  const dophy::coding::StaticModel ids(std::vector<std::uint64_t>(100, 1));
  const dophy::coding::StaticModel retx(std::vector<std::uint64_t>{90, 7, 2, 1});
  for (auto _ : state) {
    std::vector<std::uint8_t> bytes;
    dophy::coding::RangeCoderState st;
    for (int hop = 0; hop < 6; ++hop) {
      dophy::coding::RangeEncoder enc(bytes, st);
      enc.encode(ids, static_cast<std::size_t>(hop + 1));
      enc.encode(retx, 0);
      st = enc.suspend();
    }
    benchmark::DoNotOptimize(bytes.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 6);
}
BENCHMARK(PerHopResumeAppendSuspend);

}  // namespace

// Like BENCHMARK_MAIN(), but accepts --metrics-json (which the benchmark
// arg parser would reject) and writes an obs::RunReport when given.
int main(int argc, char** argv) {
  const std::string report_path = dophy::bench::extract_metrics_json(argc, argv);
  const std::string bench_name = dophy::bench::detail::basename_of(argc > 0 ? argv[0] : nullptr);
  // Without --metrics-json this binary measures the codecs, not the
  // instrumentation: turn metric recording off (call sites become a relaxed
  // load + branch).
  if (report_path.empty()) dophy::obs::Registry::global().set_enabled(false);
  const auto baseline = dophy::obs::Registry::global().snapshot();
  const auto start = std::chrono::steady_clock::now();

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // Pin the corpus provenance into the benchmark JSON context so a baseline
  // recorded with one corpus is never compared against another.
  benchmark::AddCustomContext("corpus_seed", "4242");
  benchmark::AddCustomContext("stream_length", "4096");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!report_path.empty()) {
    const double total_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (!dophy::bench::write_micro_report(report_path, bench_name, baseline, total_s)) {
      return 1;
    }
  }
  return 0;
}
