// dophy_trace — offline analyzer for dophy observability artifacts.
//
//   dophy_trace summary TRACE.jsonl [--links N]
//       Drop-cause table, end-to-end latency percentiles per hop count, and
//       per-link ARQ retry distributions from a JSONL event trace
//       (dophy_bench run ... --trace-jsonl TRACE.jsonl).
//
//   dophy_trace diff BEFORE.json AFTER.json [--threshold PCT]
//       Compares two --metrics-json run reports (counters, phase timings,
//       histogram totals).  Exit 1 when any relative change exceeds the
//       threshold (default 10%) — wired for perf-triage scripts.
//
//   dophy_trace perfetto TRACE.jsonl OUT.json
//       Converts a JSONL trace to Chrome-trace-event JSON loadable at
//       ui.perfetto.dev.

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "dophy/obs/perfetto.hpp"
#include "dophy/obs/trace_analysis.hpp"

namespace {

int usage(int code) {
  auto& os = code == 0 ? std::cout : std::cerr;
  os << "usage: dophy_trace summary TRACE.jsonl [--links N]\n"
        "       dophy_trace diff BEFORE.json AFTER.json [--threshold PCT]\n"
        "       dophy_trace perfetto TRACE.jsonl OUT.json\n";
  return code;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in.is_open()) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

int cmd_summary(int argc, char** argv) {
  std::string path;
  std::size_t links = 10;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--links") {
      if (i + 1 >= argc) {
        std::cerr << "missing value for --links\n";
        return 2;
      }
      links = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (!a.empty() && a.front() == '-') {
      std::cerr << "unknown argument: " << a << "\n";
      return usage(2);
    } else if (path.empty()) {
      path = a;
    } else {
      return usage(2);
    }
  }
  if (path.empty()) return usage(2);
  std::ifstream in(path);
  if (!in.is_open()) {
    std::cerr << "cannot open trace: " << path << "\n";
    return 2;
  }
  const auto summary = dophy::obs::summarize_trace(in);
  dophy::obs::print_trace_summary(std::cout, summary, links);
  return 0;
}

int cmd_diff(int argc, char** argv) {
  std::string before_path, after_path;
  dophy::obs::ReportDiffOptions opts;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threshold") {
      if (i + 1 >= argc) {
        std::cerr << "missing value for --threshold\n";
        return 2;
      }
      opts.threshold_pct = std::strtod(argv[++i], nullptr);
    } else if (!a.empty() && a.front() == '-') {
      std::cerr << "unknown argument: " << a << "\n";
      return usage(2);
    } else if (before_path.empty()) {
      before_path = a;
    } else if (after_path.empty()) {
      after_path = a;
    } else {
      return usage(2);
    }
  }
  if (before_path.empty() || after_path.empty()) return usage(2);

  std::string before_json, after_json;
  if (!read_file(before_path, before_json)) {
    std::cerr << "cannot open report: " << before_path << "\n";
    return 2;
  }
  if (!read_file(after_path, after_json)) {
    std::cerr << "cannot open report: " << after_path << "\n";
    return 2;
  }
  const auto diff = dophy::obs::diff_reports(before_json, after_json, opts);
  dophy::obs::print_report_diff(std::cout, diff);
  if (!diff.error.empty()) return 2;
  return diff.any_exceeded ? 1 : 0;
}

int cmd_perfetto(int argc, char** argv) {
  if (argc != 2) return usage(2);
  const std::string in_path = argv[0];
  const std::string out_path = argv[1];
  if (!dophy::obs::export_perfetto_file(in_path, out_path)) {
    std::cerr << "cannot convert " << in_path << " -> " << out_path << "\n";
    return 2;
  }
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(2);
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") return usage(0);
  if (command == "summary") return cmd_summary(argc - 2, argv + 2);
  if (command == "diff") return cmd_diff(argc - 2, argv + 2);
  if (command == "perfetto") return cmd_perfetto(argc - 2, argv + 2);
  std::cerr << "unknown command: " << command << "\n";
  return usage(2);
}
