// dophy_sink — record, replay, verify, recover, and live-run sink report
// streams.
//
//   dophy_sink record --out FILE [--nodes N] [--seed S] [--warmup-s X]
//                     [--measure-s X] [--k K]
//       Runs the simulation pipeline with a stream tap armed and writes the
//       sink's exact input (model installs + delivered packets, in arrival
//       order) to FILE.
//
//   dophy_sink replay --in FILE [--rate R] [--repeat N] [--producers P]
//                     [--consumers C] [--queue-capacity Q]
//                     [--policy block|drop] [--batch B] [--report FILE]
//                     [--snapshot-dir DIR] [--snapshot-interval-s X]
//                     [--retain K]
//       Feeds a recorded stream through the SinkService at a target rate
//       (reports/s across all producers; 0 = unpaced) and reports achieved
//       throughput, decode counters, and ingest-latency percentiles.  With
//       --snapshot-dir, a SnapshotWriter streams durable snapshots on a
//       timer (and once at the end), so a killed replay can be resumed with
//       `recover`.
//
//   dophy_sink verify --in FILE [--snapshot-at FRAC] [--batch B]
//                     [--producers P] [--consumers C]
//       Differential check: replays the stream through the incremental
//       service (optionally snapshotting at FRAC of the reports, restoring
//       into a fresh service, and continuing there) and through the batch
//       tomo::LinkLossEstimator, then requires identical link sets, exactly
//       equal sufficient statistics, and estimates within 1e-12.  Exit 0 on
//       agreement, 2 on divergence.
//
//   dophy_sink recover --in FILE --snapshot-dir DIR [--batch B]
//                      [--consumers C] [--verify]
//       Crash recovery: loads the newest complete snapshot from DIR,
//       restores it into a fresh service, and replays only the stream tail
//       (each lane resumes after the snapshot's per-lane cursor).  With
//       --verify, the recovered state is differentially checked against a
//       full batch decode of the stream.  Exit 2 on failure/divergence.
//
//   dophy_sink live --nodes N [--seed S] [--warmup-s X] [--measure-s X]
//                   [--k K] [--producers P] [--consumers C]
//                   [--snapshot-dir DIR] [--snapshot-interval-s X]
//                   [--retain K] [--verify]
//       Live mode: runs the simulation with the sink tap feeding an
//       in-process SinkService through the ingest queue (no recorded
//       stream).  With --verify, the run is recorded simultaneously and the
//       live service is differentially checked against a batch decode of
//       the recording.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dophy/eval/scenario.hpp"
#include "dophy/obs/metrics.hpp"
#include "dophy/obs/report.hpp"
#include "dophy/sink/live_feed.hpp"
#include "dophy/sink/service.hpp"
#include "dophy/sink/snapshot_writer.hpp"
#include "dophy/sink/stream_feed.hpp"
#include "dophy/tomo/link_inference.hpp"
#include "dophy/tomo/pipeline.hpp"

namespace {

using dophy::sink::OverflowPolicy;
using dophy::sink::ReportStream;
using dophy::sink::SinkService;
using dophy::sink::SinkServiceConfig;
using dophy::sink::SnapshotWriter;
using dophy::sink::SnapshotWriterConfig;
using dophy::sink::StreamFeedOptions;
using dophy::sink::StreamRecord;

int usage() {
  std::fprintf(
      stderr,
      "usage: dophy_sink record --out FILE [--nodes N] [--seed S] [--warmup-s X]\n"
      "                         [--measure-s X] [--k K]\n"
      "       dophy_sink replay --in FILE [--rate R] [--repeat N] [--producers P]\n"
      "                         [--consumers C] [--queue-capacity Q]\n"
      "                         [--policy block|drop] [--batch B] [--report FILE]\n"
      "                         [--snapshot-dir DIR] [--snapshot-interval-s X]\n"
      "                         [--retain K]\n"
      "       dophy_sink verify --in FILE [--snapshot-at FRAC] [--batch B]\n"
      "                         [--producers P] [--consumers C]\n"
      "       dophy_sink recover --in FILE --snapshot-dir DIR [--batch B]\n"
      "                          [--consumers C] [--verify]\n"
      "       dophy_sink live --nodes N [--seed S] [--warmup-s X] [--measure-s X]\n"
      "                       [--k K] [--producers P] [--consumers C]\n"
      "                       [--snapshot-dir DIR] [--snapshot-interval-s X]\n"
      "                       [--retain K] [--verify]\n");
  return 1;
}

/// Captures the sink-side stream during a pipeline run.
class RecordingTap final : public dophy::tomo::SinkReportTap {
 public:
  void on_sink_install(const dophy::tomo::ModelSet& set) override {
    StreamRecord rec;
    rec.kind = StreamRecord::Kind::kModelInstall;
    rec.model_bytes = set.serialize();
    stream.records.push_back(std::move(rec));
  }

  void on_delivery(const dophy::net::Packet& packet, dophy::net::SimTime now,
                   bool in_measure) override {
    StreamRecord rec;
    rec.kind = StreamRecord::Kind::kReport;
    rec.report.packet = packet;
    rec.report.packet.true_hops.clear();  // simulator-only ground truth
    rec.report.packet.span = 0;
    rec.report.recv_time = now;
    rec.report.in_measure = in_measure;
    stream.records.push_back(std::move(rec));
  }

  ReportStream stream;
};

struct Args {
  std::string in_path;
  std::string out_path;
  std::string report_path;
  std::string snapshot_dir;
  std::size_t nodes = 50;
  std::uint64_t seed = 1;
  double warmup_s = -1.0;
  double measure_s = -1.0;
  std::uint32_t k = 0;
  double rate = 0.0;
  std::size_t repeat = 1;
  std::size_t producers = 1;
  std::size_t consumers = 1;
  std::size_t queue_capacity = 4096;
  OverflowPolicy policy = OverflowPolicy::kBlock;
  std::size_t batch = 64;
  double snapshot_at = -1.0;
  double snapshot_interval_s = 30.0;
  std::size_t retain = 4;
  bool verify = false;
};

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string_view flag = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* v = nullptr;
    if (flag == "--in" && (v = next())) {
      args.in_path = v;
    } else if (flag == "--out" && (v = next())) {
      args.out_path = v;
    } else if (flag == "--report" && (v = next())) {
      args.report_path = v;
    } else if (flag == "--snapshot-dir" && (v = next())) {
      args.snapshot_dir = v;
    } else if (flag == "--nodes" && (v = next())) {
      args.nodes = std::strtoull(v, nullptr, 10);
    } else if (flag == "--seed" && (v = next())) {
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--warmup-s" && (v = next())) {
      args.warmup_s = std::strtod(v, nullptr);
    } else if (flag == "--measure-s" && (v = next())) {
      args.measure_s = std::strtod(v, nullptr);
    } else if (flag == "--k" && (v = next())) {
      args.k = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (flag == "--rate" && (v = next())) {
      args.rate = std::strtod(v, nullptr);
    } else if (flag == "--repeat" && (v = next())) {
      args.repeat = std::strtoull(v, nullptr, 10);
    } else if (flag == "--producers" && (v = next())) {
      args.producers = std::strtoull(v, nullptr, 10);
    } else if (flag == "--consumers" && (v = next())) {
      args.consumers = std::strtoull(v, nullptr, 10);
    } else if (flag == "--queue-capacity" && (v = next())) {
      args.queue_capacity = std::strtoull(v, nullptr, 10);
    } else if (flag == "--batch" && (v = next())) {
      args.batch = std::strtoull(v, nullptr, 10);
    } else if (flag == "--snapshot-at" && (v = next())) {
      args.snapshot_at = std::strtod(v, nullptr);
    } else if (flag == "--snapshot-interval-s" && (v = next())) {
      args.snapshot_interval_s = std::strtod(v, nullptr);
    } else if (flag == "--retain" && (v = next())) {
      args.retain = std::strtoull(v, nullptr, 10);
    } else if (flag == "--verify") {
      args.verify = true;
    } else if (flag == "--policy" && (v = next())) {
      if (std::strcmp(v, "block") == 0) {
        args.policy = OverflowPolicy::kBlock;
      } else if (std::strcmp(v, "drop") == 0) {
        args.policy = OverflowPolicy::kDropNewest;
      } else {
        std::fprintf(stderr, "dophy_sink: unknown --policy %s\n", v);
        return std::nullopt;
      }
    } else {
      std::fprintf(stderr, "dophy_sink: unknown or incomplete flag %s\n",
                   std::string(flag).c_str());
      return std::nullopt;
    }
  }
  return args;
}

SinkServiceConfig service_config(const ReportStream& stream, const Args& args) {
  SinkServiceConfig cfg;
  cfg.node_count = stream.node_count;
  cfg.censor_threshold = stream.censor_threshold;
  cfg.max_hops = stream.max_hops;
  cfg.producers = args.producers;
  cfg.consumers = args.consumers;
  cfg.queue_capacity = args.queue_capacity;
  cfg.overflow_policy = args.policy;
  cfg.decode_batch = args.batch;
  return cfg;
}

/// Whole-stream batch decode: the reference every differential mode (verify,
/// recover --verify, live --verify) compares the incremental service against.
dophy::tomo::LinkLossEstimator batch_reference(const ReportStream& stream) {
  dophy::tomo::ModelStore store;
  const dophy::tomo::SymbolMapper mapper(stream.censor_threshold);
  store.install(dophy::tomo::ModelSet::bootstrap(stream.node_count, mapper.alphabet_size()));
  dophy::tomo::DophyDecoder decoder(store, mapper, stream.max_hops);
  dophy::tomo::LinkLossEstimator batch(stream.censor_threshold);
  for (const StreamRecord& rec : stream.records) {
    if (rec.kind == StreamRecord::Kind::kModelInstall) {
      store.install(dophy::tomo::ModelSet::deserialize(rec.model_bytes));
      continue;
    }
    auto decoded = decoder.decode(rec.report.packet);
    if (decoded && rec.report.in_measure) batch.observe_path(*decoded);
  }
  return batch;
}

/// Identical link sets, exactly equal sufficient statistics, estimates
/// within 1e-12.  Returns 0 on agreement, 2 on divergence.
int compare_with_batch(const dophy::tomo::LinkLossEstimator& batch, const SinkService& service,
                       const char* label) {
  const auto batch_links = batch.all_estimates();
  const auto inc_links = service.all_estimates();
  if (batch_links.size() != inc_links.size()) {
    std::fprintf(stderr, "%s: link count diverged (batch %zu, incremental %zu)\n", label,
                 batch_links.size(), inc_links.size());
    return 2;
  }
  double max_delta = 0.0;
  for (std::size_t i = 0; i < batch_links.size(); ++i) {
    const auto& [bk, be] = batch_links[i];
    const auto& [ik, ie] = inc_links[i];
    if (bk != ik) {
      std::fprintf(stderr, "%s: link set diverged at index %zu\n", label, i);
      return 2;
    }
    const auto bs = batch.stats(bk);
    const auto is = service.link_stats(ik);
    if (bs == nullptr || !is || !(*bs == *is)) {
      std::fprintf(stderr, "%s: sufficient statistics diverged on link %u->%u\n", label,
                   static_cast<unsigned>(bk.from), static_cast<unsigned>(bk.to));
      return 2;
    }
    max_delta = std::max({max_delta, std::fabs(be.loss - ie.loss),
                          std::fabs(be.stderr_ - ie.stderr_),
                          std::fabs(be.samples - ie.samples)});
  }
  if (max_delta > 1e-12) {
    std::fprintf(stderr, "%s: estimate divergence %.3e exceeds 1e-12\n", label, max_delta);
    return 2;
  }
  std::printf("%s: %zu links agree (max |delta| %.3e)\n", label, batch_links.size(),
              max_delta);
  return 0;
}

int cmd_record(const Args& args) {
  if (args.out_path.empty()) return usage();
  dophy::tomo::PipelineConfig config = dophy::eval::default_pipeline(args.nodes, args.seed);
  if (args.warmup_s >= 0.0) config.warmup_s = args.warmup_s;
  if (args.measure_s >= 0.0) config.measure_s = args.measure_s;
  if (args.k >= 2) config.dophy.censor_threshold = args.k;
  config.run_baselines = false;  // the stream only needs the Dophy path

  RecordingTap tap;
  tap.stream.node_count = config.net.topology.node_count;
  tap.stream.censor_threshold = config.dophy.censor_threshold;
  tap.stream.max_hops = static_cast<std::uint16_t>(config.net.traffic.max_hops + 2);
  config.report_tap = &tap;

  const auto result = dophy::tomo::run_pipeline(config);
  if (!tap.stream.save(args.out_path)) {
    std::fprintf(stderr, "dophy_sink: cannot write %s\n", args.out_path.c_str());
    return 2;
  }
  std::printf("recorded %zu records (%zu reports, %zu installs) from %zu-node run to %s\n",
              tap.stream.records.size(), tap.stream.report_count(),
              tap.stream.records.size() - tap.stream.report_count(),
              config.net.topology.node_count, args.out_path.c_str());
  std::printf("pipeline decoded %llu packets, measured %llu\n",
              static_cast<unsigned long long>(result.decoder_stats.packets_decoded),
              static_cast<unsigned long long>(result.packets_measured));
  return 0;
}

int cmd_replay(const Args& args) {
  if (args.in_path.empty()) return usage();
  auto stream = ReportStream::load(args.in_path);
  if (!stream) {
    std::fprintf(stderr, "dophy_sink: cannot load %s\n", args.in_path.c_str());
    return 2;
  }
  if (args.producers == 0 || args.consumers == 0 || args.repeat == 0) return usage();

  SinkService service(service_config(*stream, args));
  service.start();

  std::unique_ptr<SnapshotWriter> writer;
  if (!args.snapshot_dir.empty()) {
    writer = std::make_unique<SnapshotWriter>(
        service,
        SnapshotWriterConfig{args.snapshot_dir, args.snapshot_interval_s, args.retain});
    writer->start();
  }

  auto& registry = dophy::obs::Registry::global();
  const auto base = registry.snapshot();
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> lane_sent(args.producers, 0);
  std::uint64_t submitted = 0;
  for (std::size_t pass = 0; pass < args.repeat; ++pass) {
    StreamFeedOptions options;
    options.rate = args.rate;
    options.include_installs = pass == 0;
    submitted +=
        dophy::sink::feed_stream(service, *stream, args.producers, lane_sent, start, options);
  }
  service.wait_idle();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (writer) {
    (void)writer->write_now();  // shutdown checkpoint: recover becomes a no-op tail
    writer->stop();
  }
  service.stop();

  const auto stats = service.stats();
  const auto delta = registry.snapshot().delta_since(base);
  const auto lat = delta.histograms.find("sink.ingest.latency_us");
  const double p50 = lat != delta.histograms.end() ? lat->second.quantile(0.50) : 0.0;
  const double p95 = lat != delta.histograms.end() ? lat->second.quantile(0.95) : 0.0;
  const double p99 = lat != delta.histograms.end() ? lat->second.quantile(0.99) : 0.0;
  const double rate_achieved =
      elapsed > 0.0 ? static_cast<double>(stats.reports_processed) / elapsed : 0.0;

  std::printf("replayed %llu reports in %.3f s: %.0f reports/s (target %s)\n",
              static_cast<unsigned long long>(stats.reports_processed), elapsed,
              rate_achieved, args.rate > 0.0 ? std::to_string(args.rate).c_str() : "unpaced");
  std::printf("  decoded %llu, decode failures %llu, queue dropped %llu, block waits %llu\n",
              static_cast<unsigned long long>(stats.reports_decoded),
              static_cast<unsigned long long>(stats.decode_failures),
              static_cast<unsigned long long>(stats.queue.dropped),
              static_cast<unsigned long long>(stats.queue.block_waits));
  std::printf("  ingest latency p50 %.1f us, p95 %.1f us, p99 %.1f us\n", p50, p95, p99);
  std::printf("  links tracked %zu, consumers %zu, estimator batches %llu\n",
              service.link_count(), service.config().consumers,
              static_cast<unsigned long long>(stats.batches));

  if (!args.report_path.empty()) {
    dophy::obs::RunReport report;
    report.bench = "dophy_sink";
    report.title = "sink replay";
    report.config = {{"stream", args.in_path},
                     {"producers", std::to_string(args.producers)},
                     {"consumers", std::to_string(service.config().consumers)},
                     {"queue_capacity", std::to_string(args.queue_capacity)},
                     {"policy", args.policy == OverflowPolicy::kBlock ? "block" : "drop"},
                     {"rate_target", std::to_string(args.rate)},
                     {"repeat", std::to_string(args.repeat)},
                     {"decode_batch", std::to_string(args.batch)}};
    dophy::obs::TableSection table;
    table.title = "sink replay";
    table.columns = {"reports", "elapsed_s", "reports_per_s", "decoded", "decode_failures",
                     "dropped", "p50_us", "p95_us", "p99_us"};
    char num[64];
    auto fmt = [&num](double v) {
      std::snprintf(num, sizeof(num), "%.6g", v);
      return std::string(num);
    };
    table.rows.push_back({std::to_string(stats.reports_processed), fmt(elapsed),
                          fmt(rate_achieved), std::to_string(stats.reports_decoded),
                          std::to_string(stats.decode_failures),
                          std::to_string(stats.queue.dropped), fmt(p50), fmt(p95), fmt(p99)});
    report.tables.push_back(std::move(table));
    report.metrics = delta;
    if (!dophy::obs::write_report_file(report, args.report_path)) {
      std::fprintf(stderr, "dophy_sink: cannot write %s\n", args.report_path.c_str());
      return 2;
    }
  }
  // feed_stream counts installs it submitted; the service tallies them
  // separately from reports.
  const bool lossless_shortfall =
      args.policy == OverflowPolicy::kBlock &&
      stats.reports_processed + stats.models_installed != submitted;
  return lossless_shortfall ? 2 : 0;
}

int cmd_verify(const Args& args) {
  if (args.in_path.empty()) return usage();
  auto stream = ReportStream::load(args.in_path);
  if (!stream) {
    std::fprintf(stderr, "dophy_sink: cannot load %s\n", args.in_path.c_str());
    return 2;
  }
  if (args.producers == 0 || args.consumers == 0) return usage();

  const auto batch = batch_reference(*stream);

  // Incremental service, optionally split across a snapshot/restore.  The
  // feed is the canonical assignment (round-robin reports, bracketed
  // installs) done inline so the snapshot point can fall mid-stream.
  Args service_args = args;
  service_args.policy = OverflowPolicy::kBlock;
  const std::size_t total_reports = stream->report_count();
  const std::size_t snapshot_after =
      args.snapshot_at > 0.0 && args.snapshot_at < 1.0
          ? static_cast<std::size_t>(args.snapshot_at * static_cast<double>(total_reports))
          : 0;

  auto service = std::make_unique<SinkService>(service_config(*stream, service_args));
  service->start();
  std::size_t reports_fed = 0;
  std::size_t next_lane = 0;
  bool restored = false;
  for (const StreamRecord& rec : stream->records) {
    if (rec.kind == StreamRecord::Kind::kModelInstall) {
      service->wait_idle();  // bracket: order the install across every lane
      (void)service->submit(0, rec);
      service->wait_idle();
      continue;
    }
    if (snapshot_after > 0 && !restored && reports_fed == snapshot_after) {
      service->wait_idle();
      const std::string snap = service->snapshot_json();
      service->stop();
      auto fresh = std::make_unique<SinkService>(service_config(*stream, service_args));
      if (!fresh->restore_snapshot(snap)) {
        std::fprintf(stderr, "verify: snapshot restore failed\n");
        return 2;
      }
      fresh->start();
      service = std::move(fresh);
      restored = true;
    }
    (void)service->submit(next_lane, rec);
    next_lane = (next_lane + 1) % args.producers;
    ++reports_fed;
  }
  service->wait_idle();
  service->stop();

  const int rc = compare_with_batch(batch, *service, "verify");
  if (rc == 0 && restored) {
    std::printf("verify: agreement held through a mid-stream snapshot/restore\n");
  }
  return rc;
}

int cmd_recover(const Args& args) {
  if (args.in_path.empty() || args.snapshot_dir.empty()) return usage();
  auto stream = ReportStream::load(args.in_path);
  if (!stream) {
    std::fprintf(stderr, "dophy_sink: cannot load %s\n", args.in_path.c_str());
    return 2;
  }
  const auto snapshot = dophy::sink::load_latest_snapshot(args.snapshot_dir);
  if (!snapshot) {
    std::fprintf(stderr, "dophy_sink: no usable snapshot in %s\n", args.snapshot_dir.c_str());
    return 2;
  }

  // The lane layout is dictated by the snapshot (the cursor only identifies
  // per-lane prefixes under the same assignment); recovery is lossless by
  // construction, so the policy is pinned to kBlock.
  Args service_args = args;
  service_args.producers = snapshot->producers;
  service_args.policy = OverflowPolicy::kBlock;
  SinkService service(service_config(*stream, service_args));
  if (!service.restore_snapshot(snapshot->json)) {
    std::fprintf(stderr, "dophy_sink: snapshot %s does not match stream %s\n",
                 snapshot->path.c_str(), args.in_path.c_str());
    return 2;
  }
  std::uint64_t already = 0;
  for (const auto count : snapshot->lane_processed) already += count;

  service.start();
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> lane_sent(snapshot->producers, 0);
  StreamFeedOptions options;
  options.lane_skip = &snapshot->lane_processed;
  const std::uint64_t tail = dophy::sink::feed_stream(service, *stream, snapshot->producers,
                                                      lane_sent, start, options);
  service.wait_idle();
  service.stop();

  std::printf("recovered from %s: %llu records in snapshot, %llu replayed from tail, "
              "%zu links tracked\n",
              snapshot->path.c_str(), static_cast<unsigned long long>(already),
              static_cast<unsigned long long>(tail), service.link_count());
  if (!args.verify) return 0;
  return compare_with_batch(batch_reference(*stream), service, "recover");
}

int cmd_live(const Args& args) {
  if (args.producers == 0 || args.consumers == 0) return usage();
  dophy::tomo::PipelineConfig config = dophy::eval::default_pipeline(args.nodes, args.seed);
  if (args.warmup_s >= 0.0) config.warmup_s = args.warmup_s;
  if (args.measure_s >= 0.0) config.measure_s = args.measure_s;
  if (args.k >= 2) config.dophy.censor_threshold = args.k;
  config.run_baselines = false;

  SinkServiceConfig cfg;
  cfg.node_count = config.net.topology.node_count;
  cfg.censor_threshold = config.dophy.censor_threshold;
  cfg.max_hops = static_cast<std::uint16_t>(config.net.traffic.max_hops + 2);
  cfg.producers = args.producers;
  cfg.consumers = args.consumers;
  cfg.queue_capacity = args.queue_capacity;
  cfg.overflow_policy = args.policy;
  cfg.decode_batch = args.batch;
  SinkService service(cfg);
  service.start();
  dophy::sink::LiveSinkFeed feed(service);
  config.live_sink = &feed;

  RecordingTap tap;  // --verify: record simultaneously as the reference
  if (args.verify) {
    tap.stream.node_count = cfg.node_count;
    tap.stream.censor_threshold = cfg.censor_threshold;
    tap.stream.max_hops = cfg.max_hops;
    config.report_tap = &tap;
  }

  std::unique_ptr<SnapshotWriter> writer;
  if (!args.snapshot_dir.empty()) {
    writer = std::make_unique<SnapshotWriter>(
        service,
        SnapshotWriterConfig{args.snapshot_dir, args.snapshot_interval_s, args.retain});
    writer->start();
  }

  const auto start = std::chrono::steady_clock::now();
  (void)dophy::tomo::run_pipeline(config);
  service.wait_idle();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (writer) {
    (void)writer->write_now();
    writer->stop();
  }
  service.stop();

  const auto stats = service.stats();
  const auto& feed_stats = feed.stats();
  std::printf("live run: %llu reports fed (%llu shed), %llu installs, %.3f s wall\n",
              static_cast<unsigned long long>(feed_stats.reports_submitted),
              static_cast<unsigned long long>(feed_stats.reports_shed),
              static_cast<unsigned long long>(feed_stats.installs), elapsed);
  std::printf("  decoded %llu, decode failures %llu, links tracked %zu, consumers %zu\n",
              static_cast<unsigned long long>(stats.reports_decoded),
              static_cast<unsigned long long>(stats.decode_failures), service.link_count(),
              service.config().consumers);
  if (writer) {
    const auto wstats = writer->stats();
    std::printf("  snapshots written %llu (last %s)\n",
                static_cast<unsigned long long>(wstats.written), wstats.last_path.c_str());
  }
  if (!args.verify) return 0;
  return compare_with_batch(batch_reference(tap.stream), service, "live");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string_view cmd = argv[1];
  const auto args = parse_args(argc, argv);
  if (!args) return 1;
  if (cmd == "record") return cmd_record(*args);
  if (cmd == "replay") return cmd_replay(*args);
  if (cmd == "verify") return cmd_verify(*args);
  if (cmd == "recover") return cmd_recover(*args);
  if (cmd == "live") return cmd_live(*args);
  return usage();
}
