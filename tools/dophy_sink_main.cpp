// dophy_sink — record, replay, and verify sink-side report streams.
//
//   dophy_sink record --out FILE [--nodes N] [--seed S] [--warmup-s X]
//                     [--measure-s X] [--k K]
//       Runs the simulation pipeline with a stream tap armed and writes the
//       sink's exact input (model installs + delivered packets, in arrival
//       order) to FILE.
//
//   dophy_sink replay --in FILE [--rate R] [--repeat N] [--producers P]
//                     [--queue-capacity C] [--policy block|drop] [--batch B]
//                     [--report FILE]
//       Feeds a recorded stream through the SinkService at a target rate
//       (reports/s across all producers; 0 = unpaced) and reports achieved
//       throughput, decode counters, and ingest-latency percentiles.
//
//   dophy_sink verify --in FILE [--snapshot-at FRAC] [--batch B]
//       Differential check: replays the stream through the incremental
//       service (optionally snapshotting at FRAC of the reports, restoring
//       into a fresh service, and continuing there) and through the batch
//       tomo::LinkLossEstimator, then requires identical link sets, exactly
//       equal sufficient statistics, and estimates within 1e-12.  Exit 0 on
//       agreement, 2 on divergence.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cmath>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dophy/eval/scenario.hpp"
#include "dophy/obs/metrics.hpp"
#include "dophy/obs/report.hpp"
#include "dophy/sink/service.hpp"
#include "dophy/tomo/link_inference.hpp"
#include "dophy/tomo/pipeline.hpp"

namespace {

using dophy::sink::OverflowPolicy;
using dophy::sink::ReportStream;
using dophy::sink::SinkService;
using dophy::sink::SinkServiceConfig;
using dophy::sink::StreamRecord;

int usage() {
  std::fprintf(stderr,
               "usage: dophy_sink record --out FILE [--nodes N] [--seed S] [--warmup-s X]\n"
               "                         [--measure-s X] [--k K]\n"
               "       dophy_sink replay --in FILE [--rate R] [--repeat N] [--producers P]\n"
               "                         [--queue-capacity C] [--policy block|drop]\n"
               "                         [--batch B] [--report FILE]\n"
               "       dophy_sink verify --in FILE [--snapshot-at FRAC] [--batch B]\n");
  return 1;
}

/// Captures the sink-side stream during a pipeline run.
class RecordingTap final : public dophy::tomo::SinkReportTap {
 public:
  void on_sink_install(const dophy::tomo::ModelSet& set) override {
    StreamRecord rec;
    rec.kind = StreamRecord::Kind::kModelInstall;
    rec.model_bytes = set.serialize();
    stream.records.push_back(std::move(rec));
  }

  void on_delivery(const dophy::net::Packet& packet, dophy::net::SimTime now,
                   bool in_measure) override {
    StreamRecord rec;
    rec.kind = StreamRecord::Kind::kReport;
    rec.report.packet = packet;
    rec.report.packet.true_hops.clear();  // simulator-only ground truth
    rec.report.packet.span = 0;
    rec.report.recv_time = now;
    rec.report.in_measure = in_measure;
    stream.records.push_back(std::move(rec));
  }

  ReportStream stream;
};

struct Args {
  std::string in_path;
  std::string out_path;
  std::string report_path;
  std::size_t nodes = 50;
  std::uint64_t seed = 1;
  double warmup_s = -1.0;
  double measure_s = -1.0;
  std::uint32_t k = 0;
  double rate = 0.0;
  std::size_t repeat = 1;
  std::size_t producers = 1;
  std::size_t queue_capacity = 4096;
  OverflowPolicy policy = OverflowPolicy::kBlock;
  std::size_t batch = 64;
  double snapshot_at = -1.0;
};

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string_view flag = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* v = nullptr;
    if (flag == "--in" && (v = next())) {
      args.in_path = v;
    } else if (flag == "--out" && (v = next())) {
      args.out_path = v;
    } else if (flag == "--report" && (v = next())) {
      args.report_path = v;
    } else if (flag == "--nodes" && (v = next())) {
      args.nodes = std::strtoull(v, nullptr, 10);
    } else if (flag == "--seed" && (v = next())) {
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--warmup-s" && (v = next())) {
      args.warmup_s = std::strtod(v, nullptr);
    } else if (flag == "--measure-s" && (v = next())) {
      args.measure_s = std::strtod(v, nullptr);
    } else if (flag == "--k" && (v = next())) {
      args.k = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (flag == "--rate" && (v = next())) {
      args.rate = std::strtod(v, nullptr);
    } else if (flag == "--repeat" && (v = next())) {
      args.repeat = std::strtoull(v, nullptr, 10);
    } else if (flag == "--producers" && (v = next())) {
      args.producers = std::strtoull(v, nullptr, 10);
    } else if (flag == "--queue-capacity" && (v = next())) {
      args.queue_capacity = std::strtoull(v, nullptr, 10);
    } else if (flag == "--batch" && (v = next())) {
      args.batch = std::strtoull(v, nullptr, 10);
    } else if (flag == "--snapshot-at" && (v = next())) {
      args.snapshot_at = std::strtod(v, nullptr);
    } else if (flag == "--policy" && (v = next())) {
      if (std::strcmp(v, "block") == 0) {
        args.policy = OverflowPolicy::kBlock;
      } else if (std::strcmp(v, "drop") == 0) {
        args.policy = OverflowPolicy::kDropNewest;
      } else {
        std::fprintf(stderr, "dophy_sink: unknown --policy %s\n", v);
        return std::nullopt;
      }
    } else {
      std::fprintf(stderr, "dophy_sink: unknown or incomplete flag %s\n",
                   std::string(flag).c_str());
      return std::nullopt;
    }
  }
  return args;
}

SinkServiceConfig service_config(const ReportStream& stream, const Args& args) {
  SinkServiceConfig cfg;
  cfg.node_count = stream.node_count;
  cfg.censor_threshold = stream.censor_threshold;
  cfg.max_hops = stream.max_hops;
  cfg.producers = args.producers;
  cfg.queue_capacity = args.queue_capacity;
  cfg.overflow_policy = args.policy;
  cfg.decode_batch = args.batch;
  return cfg;
}

int cmd_record(const Args& args) {
  if (args.out_path.empty()) return usage();
  dophy::tomo::PipelineConfig config = dophy::eval::default_pipeline(args.nodes, args.seed);
  if (args.warmup_s >= 0.0) config.warmup_s = args.warmup_s;
  if (args.measure_s >= 0.0) config.measure_s = args.measure_s;
  if (args.k >= 2) config.dophy.censor_threshold = args.k;
  config.run_baselines = false;  // the stream only needs the Dophy path

  RecordingTap tap;
  tap.stream.node_count = config.net.topology.node_count;
  tap.stream.censor_threshold = config.dophy.censor_threshold;
  tap.stream.max_hops = static_cast<std::uint16_t>(config.net.traffic.max_hops + 2);
  config.report_tap = &tap;

  const auto result = dophy::tomo::run_pipeline(config);
  if (!tap.stream.save(args.out_path)) {
    std::fprintf(stderr, "dophy_sink: cannot write %s\n", args.out_path.c_str());
    return 2;
  }
  std::printf("recorded %zu records (%zu reports, %zu installs) from %zu-node run to %s\n",
              tap.stream.records.size(), tap.stream.report_count(),
              tap.stream.records.size() - tap.stream.report_count(),
              config.net.topology.node_count, args.out_path.c_str());
  std::printf("pipeline decoded %llu packets, measured %llu\n",
              static_cast<unsigned long long>(result.decoder_stats.packets_decoded),
              static_cast<unsigned long long>(result.packets_measured));
  return 0;
}

/// Pushes `stream` through `service` once: reports fan out round-robin over
/// the producer lanes (each lane pushed by its own thread, paced to
/// rate/producers), with an idle barrier at every model install so the
/// install/report order matches the recording.  Returns submitted reports.
std::uint64_t feed_stream(SinkService& service, const ReportStream& stream, double rate,
                          std::size_t producers,
                          std::vector<std::uint64_t>& lane_sent,
                          std::chrono::steady_clock::time_point start,
                          bool include_installs = true) {
  std::uint64_t submitted = 0;
  std::vector<std::vector<const StreamRecord*>> segment(producers);
  std::size_t next_lane = 0;

  auto flush_segment = [&] {
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (std::size_t lane = 0; lane < producers; ++lane) {
      if (segment[lane].empty()) continue;
      threads.emplace_back([&, lane] {
        const double lane_rate = rate > 0.0 ? rate / static_cast<double>(producers) : 0.0;
        for (const StreamRecord* rec : segment[lane]) {
          if (lane_rate > 0.0) {
            const auto due =
                start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                static_cast<double>(lane_sent[lane]) / lane_rate));
            std::this_thread::sleep_until(due);
          }
          (void)service.submit(lane, *rec);  // drop policy may shed; accounted
          ++lane_sent[lane];
        }
      });
    }
    for (auto& t : threads) t.join();
    for (auto& lane : segment) {
      submitted += lane.size();
      lane.clear();
    }
  };

  for (const StreamRecord& rec : stream.records) {
    if (rec.kind == StreamRecord::Kind::kModelInstall) {
      if (!include_installs) continue;  // repeat passes: versions already live
      flush_segment();
      service.wait_idle();  // keep install ordered after every prior report
      (void)service.submit(0, rec);
      // ...and processed before any later report: per-lane FIFO alone would
      // let another lane's report (encoded with the just-published version)
      // drain ahead of the install and fail decode.
      service.wait_idle();
      continue;
    }
    segment[next_lane].push_back(&rec);
    next_lane = (next_lane + 1) % producers;
  }
  flush_segment();
  return submitted;
}

int cmd_replay(const Args& args) {
  if (args.in_path.empty()) return usage();
  auto stream = ReportStream::load(args.in_path);
  if (!stream) {
    std::fprintf(stderr, "dophy_sink: cannot load %s\n", args.in_path.c_str());
    return 2;
  }
  if (args.producers == 0 || args.repeat == 0) return usage();

  SinkService service(service_config(*stream, args));
  service.start();

  auto& registry = dophy::obs::Registry::global();
  const auto base = registry.snapshot();
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> lane_sent(args.producers, 0);
  std::uint64_t submitted = 0;
  for (std::size_t pass = 0; pass < args.repeat; ++pass) {
    submitted += feed_stream(service, *stream, args.rate, args.producers, lane_sent, start,
                             /*include_installs=*/pass == 0);
  }
  service.wait_idle();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  service.stop();

  const auto stats = service.stats();
  const auto delta = registry.snapshot().delta_since(base);
  const auto lat = delta.histograms.find("sink.ingest.latency_us");
  const double p50 = lat != delta.histograms.end() ? lat->second.quantile(0.50) : 0.0;
  const double p95 = lat != delta.histograms.end() ? lat->second.quantile(0.95) : 0.0;
  const double p99 = lat != delta.histograms.end() ? lat->second.quantile(0.99) : 0.0;
  const double rate_achieved =
      elapsed > 0.0 ? static_cast<double>(stats.reports_processed) / elapsed : 0.0;

  std::printf("replayed %llu reports in %.3f s: %.0f reports/s (target %s)\n",
              static_cast<unsigned long long>(stats.reports_processed), elapsed,
              rate_achieved, args.rate > 0.0 ? std::to_string(args.rate).c_str() : "unpaced");
  std::printf("  decoded %llu, decode failures %llu, queue dropped %llu, block waits %llu\n",
              static_cast<unsigned long long>(stats.reports_decoded),
              static_cast<unsigned long long>(stats.decode_failures),
              static_cast<unsigned long long>(stats.queue.dropped),
              static_cast<unsigned long long>(stats.queue.block_waits));
  std::printf("  ingest latency p50 %.1f us, p95 %.1f us, p99 %.1f us\n", p50, p95, p99);
  std::printf("  links tracked %zu, estimator batches %llu\n", service.estimator().link_count(),
              static_cast<unsigned long long>(stats.batches));

  if (!args.report_path.empty()) {
    dophy::obs::RunReport report;
    report.bench = "dophy_sink";
    report.title = "sink replay";
    report.config = {{"stream", args.in_path},
                     {"producers", std::to_string(args.producers)},
                     {"queue_capacity", std::to_string(args.queue_capacity)},
                     {"policy", args.policy == OverflowPolicy::kBlock ? "block" : "drop"},
                     {"rate_target", std::to_string(args.rate)},
                     {"repeat", std::to_string(args.repeat)},
                     {"decode_batch", std::to_string(args.batch)}};
    dophy::obs::TableSection table;
    table.title = "sink replay";
    table.columns = {"reports", "elapsed_s", "reports_per_s", "decoded", "decode_failures",
                     "dropped", "p50_us", "p95_us", "p99_us"};
    char num[64];
    auto fmt = [&num](double v) {
      std::snprintf(num, sizeof(num), "%.6g", v);
      return std::string(num);
    };
    table.rows.push_back({std::to_string(stats.reports_processed), fmt(elapsed),
                          fmt(rate_achieved), std::to_string(stats.reports_decoded),
                          std::to_string(stats.decode_failures),
                          std::to_string(stats.queue.dropped), fmt(p50), fmt(p95), fmt(p99)});
    report.tables.push_back(std::move(table));
    report.metrics = delta;
    if (!dophy::obs::write_report_file(report, args.report_path)) {
      std::fprintf(stderr, "dophy_sink: cannot write %s\n", args.report_path.c_str());
      return 2;
    }
  }
  const bool lossless_shortfall = args.policy == OverflowPolicy::kBlock &&
                                  stats.reports_processed != submitted;
  return lossless_shortfall ? 2 : 0;
}

int cmd_verify(const Args& args) {
  if (args.in_path.empty()) return usage();
  auto stream = ReportStream::load(args.in_path);
  if (!stream) {
    std::fprintf(stderr, "dophy_sink: cannot load %s\n", args.in_path.c_str());
    return 2;
  }

  // Batch reference: same decoder stack, whole stream at once.
  dophy::tomo::ModelStore store;
  const dophy::tomo::SymbolMapper mapper(stream->censor_threshold);
  store.install(
      dophy::tomo::ModelSet::bootstrap(stream->node_count, mapper.alphabet_size()));
  dophy::tomo::DophyDecoder decoder(store, mapper, stream->max_hops);
  dophy::tomo::LinkLossEstimator batch(stream->censor_threshold);
  for (const StreamRecord& rec : stream->records) {
    if (rec.kind == StreamRecord::Kind::kModelInstall) {
      store.install(dophy::tomo::ModelSet::deserialize(rec.model_bytes));
      continue;
    }
    auto decoded = decoder.decode(rec.report.packet);
    if (decoded && rec.report.in_measure) batch.observe_path(*decoded);
  }

  // Incremental service, optionally split across a snapshot/restore.
  Args service_args = args;
  service_args.producers = 1;
  service_args.policy = OverflowPolicy::kBlock;
  const std::size_t total_reports = stream->report_count();
  const std::size_t snapshot_after =
      args.snapshot_at > 0.0 && args.snapshot_at < 1.0
          ? static_cast<std::size_t>(args.snapshot_at * static_cast<double>(total_reports))
          : 0;

  auto service = std::make_unique<SinkService>(service_config(*stream, service_args));
  service->start();
  std::size_t reports_fed = 0;
  bool restored = false;
  for (const StreamRecord& rec : stream->records) {
    if (snapshot_after > 0 && !restored && reports_fed == snapshot_after &&
        rec.kind == StreamRecord::Kind::kReport) {
      service->wait_idle();
      const std::string snap = service->snapshot_json();
      service->stop();
      auto next = std::make_unique<SinkService>(service_config(*stream, service_args));
      if (!next->restore_snapshot(snap)) {
        std::fprintf(stderr, "verify: snapshot restore failed\n");
        return 2;
      }
      next->start();
      service = std::move(next);
      restored = true;
    }
    (void)service->submit(0, rec);
    if (rec.kind == StreamRecord::Kind::kReport) ++reports_fed;
  }
  service->wait_idle();
  service->stop();

  // Compare: identical link sets, exact sufficient statistics, estimates
  // within 1e-12.
  const auto batch_links = batch.all_estimates();
  const auto inc_links = service->all_estimates();
  if (batch_links.size() != inc_links.size()) {
    std::fprintf(stderr, "verify: link count diverged (batch %zu, incremental %zu)\n",
                 batch_links.size(), inc_links.size());
    return 2;
  }
  double max_delta = 0.0;
  for (std::size_t i = 0; i < batch_links.size(); ++i) {
    const auto& [bk, be] = batch_links[i];
    const auto& [ik, ie] = inc_links[i];
    if (bk != ik) {
      std::fprintf(stderr, "verify: link set diverged at index %zu\n", i);
      return 2;
    }
    const auto bs = batch.stats(bk);
    const auto is = service->estimator().stats(ik);
    if (bs == nullptr || !is || !(*bs == *is)) {
      std::fprintf(stderr, "verify: sufficient statistics diverged on link %u->%u\n",
                   static_cast<unsigned>(bk.from), static_cast<unsigned>(bk.to));
      return 2;
    }
    max_delta = std::max({max_delta, std::fabs(be.loss - ie.loss),
                          std::fabs(be.stderr_ - ie.stderr_),
                          std::fabs(be.samples - ie.samples)});
  }
  if (max_delta > 1e-12) {
    std::fprintf(stderr, "verify: estimate divergence %.3e exceeds 1e-12\n", max_delta);
    return 2;
  }
  std::printf("verify: %zu links agree (max |delta| %.3e%s)\n", batch_links.size(), max_delta,
              restored ? ", through mid-stream snapshot/restore" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string_view cmd = argv[1];
  const auto args = parse_args(argc, argv);
  if (!args) return 1;
  if (cmd == "record") return cmd_record(*args);
  if (cmd == "replay") return cmd_replay(*args);
  if (cmd == "verify") return cmd_verify(*args);
  return usage();
}
