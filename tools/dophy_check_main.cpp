// dophy_check: randomized invariant-checking campaign driver.
//
// Runs N seeded scenarios through the full pipeline with the dophy::check
// oracle armed.  Any failure is shrunk to a minimal spec and printed as a
// copy-pasteable `--repro` command line.  `--selftest` proves the oracle has
// teeth by planting a retransmission-accounting off-by-one and demanding the
// campaign catch and shrink it.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dophy/check/campaign.hpp"
#include "dophy/check/scenario_gen.hpp"
#include "dophy/tomo/pipeline.hpp"

namespace {

using dophy::check::CampaignOptions;
using dophy::check::CampaignResult;
using dophy::check::ScenarioSpec;

void print_help() {
  std::printf(
      "dophy_check — randomized invariant campaign for the dophy pipeline\n"
      "\n"
      "usage: dophy_check [options]\n"
      "  --seeds N        scenarios to run (default 50)\n"
      "  --start-seed S   first seed (default 1)\n"
      "  --profile P      scenario bias: default | codec (codec = bursty\n"
      "                   losses, high censor K, tight wire budgets — the\n"
      "                   range-coder stress regime)\n"
      "  --no-shrink      report failures without shrinking them\n"
      "  --repro SPEC     run one scenario from its spec string and print the\n"
      "                   full violation list (SPEC is the quoted string a\n"
      "                   failing campaign printed)\n"
      "  --list           print the specs the campaign would run, then exit\n"
      "  --selftest       plant a retx-accounting off-by-one via the oracle's\n"
      "                   debug bias and verify the campaign catches + shrinks\n"
      "                   it, then verify a clean run passes\n"
      "  --help           this text\n"
      "\n"
      "exit status: 0 when every scenario passes, 1 otherwise.\n");
}

void print_failures(const CampaignResult& result) {
  for (const auto& repro : result.repros) {
    std::printf("FAIL %s\n", to_string(repro.original).c_str());
    std::printf("     %s\n", repro.first_violation.c_str());
    std::printf("     repro: dophy_check --repro \"%s\"  (shrunk in %zu runs)\n",
                to_string(repro.shrunk).c_str(), repro.shrink_runs);
  }
}

int run_repro(const std::string& spec_text) {
  ScenarioSpec spec;
  if (!dophy::check::parse_spec(spec_text, spec)) {
    std::fprintf(stderr, "dophy_check: malformed spec: %s\n", spec_text.c_str());
    return 2;
  }
  std::printf("running %s\n", to_string(spec).c_str());
  auto config = dophy::check::make_config(spec);
  const auto result = dophy::tomo::run_pipeline(config);
  const auto& report = result.check_report;
  std::printf("%s\n", report.summary().c_str());
  for (const auto& v : report.violations) {
    std::printf("  [%s] t=%lldus %s\n", v.kind.c_str(),
                static_cast<long long>(v.at_us), v.message.c_str());
  }
  if (report.violation_count > report.violations.size()) {
    std::printf("  ... %llu more (capped at %zu recorded)\n",
                static_cast<unsigned long long>(report.violation_count -
                                                report.violations.size()),
                report.violations.size());
  }
  return report.passed() ? 0 : 1;
}

int run_selftest(std::uint64_t start_seed) {
  // A benign spec guarantees transmissions flow through the biased ledger
  // path, so the attempt-conservation audit must fire on every run.
  std::printf("selftest: planting retx off-by-one (ledger bias +1)...\n");
  CampaignOptions broken;
  broken.start_seed = start_seed;
  broken.num_seeds = 2;
  broken.check.debug_retx_bias = 1;
  broken.max_shrink_runs = 12;
  broken.log = [](const std::string& line) { std::printf("  %s\n", line.c_str()); };
  const CampaignResult caught = run_campaign(broken);
  if (caught.failures != caught.scenarios_run) {
    std::fprintf(stderr,
                 "selftest FAILED: planted bug escaped (%zu/%zu runs flagged)\n",
                 caught.failures, caught.scenarios_run);
    return 1;
  }
  for (const auto& repro : caught.repros) {
    if (repro.first_violation.find("link.attempts.mismatch") == std::string::npos) {
      std::fprintf(stderr, "selftest FAILED: wrong violation kind: %s\n",
                   repro.first_violation.c_str());
      return 1;
    }
  }
  print_failures(caught);

  std::printf("selftest: rerunning the same seeds without the bias...\n");
  CampaignOptions clean = broken;
  clean.check.debug_retx_bias = 0;
  const CampaignResult ok = run_campaign(clean);
  if (!ok.passed()) {
    std::fprintf(stderr, "selftest FAILED: clean rerun still fails\n");
    print_failures(ok);
    return 1;
  }
  std::printf("selftest PASSED: %zu/%zu biased runs caught and shrunk, "
              "clean rerun green\n",
              caught.failures, caught.scenarios_run);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CampaignOptions options;
  bool list_only = false;
  bool selftest = false;
  std::string repro_spec;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dophy_check: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      options.num_seeds = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--start-seed") {
      options.start_seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--profile") {
      const char* name = next();
      if (!dophy::check::parse_profile(name, options.profile)) {
        std::fprintf(stderr, "dophy_check: unknown profile %s (default|codec)\n", name);
        return 2;
      }
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--repro") {
      repro_spec = next();
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--selftest") {
      selftest = true;
    } else if (arg == "--help" || arg == "-h") {
      print_help();
      return 0;
    } else {
      std::fprintf(stderr, "dophy_check: unknown option %s (try --help)\n", arg.c_str());
      return 2;
    }
  }

  if (!repro_spec.empty()) return run_repro(repro_spec);
  if (selftest) return run_selftest(options.start_seed);
  if (list_only) {
    for (std::size_t i = 0; i < options.num_seeds; ++i) {
      const auto spec =
          dophy::check::generate_scenario(options.start_seed + i, options.profile);
      std::printf("%s\n", to_string(spec).c_str());
    }
    return 0;
  }

  options.log = [](const std::string& line) { std::printf("%s\n", line.c_str()); };
  const auto wall_start = std::chrono::steady_clock::now();
  const CampaignResult result = run_campaign(options);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();

  print_failures(result);
  std::printf("campaign: %zu scenarios, %zu failures, digest=%016llx, %.1fs\n",
              result.scenarios_run, result.failures,
              static_cast<unsigned long long>(result.digest), wall_s);
  return result.passed() ? 0 : 1;
}
