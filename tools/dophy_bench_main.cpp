// dophy_bench — one driver for every reproduced figure/table.
//
//   dophy_bench list [--markdown]
//   dophy_bench run [ID...] [--all] [options]
//
// `run` executes the selected experiments through the sweep engine
// (src/dophy/eval/sweep.hpp): grid cells are content-address cached under
// --cache-dir, sharded across processes with --shard i/N, and parallelized
// across the thread pool.  A single experiment with no --out-dir prints to
// stdout exactly what the legacy bench/fig_* binary printed; multi-experiment
// runs write <output_stem>.{txt|csv} plus a <output_stem>.json run report and
// a manifest.json into --out-dir.
//
// Options (run):
//   --trials N            Monte-Carlo trials per sweep point (default per-spec)
//   --nodes N             network size where applicable (default per-spec)
//   --sim-threads N       run each simulation on the PDES engine with N
//                         LPs/threads; shrinks cell-level parallelism to
//                         hw/N and bypasses the result cache (parallel-engine
//                         results are lp_count-dependent)
//   --quick               cut simulated durations ~4x for smoke runs
//   --csv                 emit CSV instead of the aligned table
//   --out-dir DIR         write per-experiment files instead of stdout
//   --cache-dir DIR       content-addressed result store (default .dophy-cache)
//   --no-cache            compute everything; do not read or write the store
//   --force               ignore cached results but refresh the store
//   --resume              explicit alias for the default cache-reuse behavior
//   --shard I/N           own only grid cells with index % N == I
//   --manifest PATH       write the run manifest (default <out-dir>/manifest.json)
//   --metrics-json PATH   single-experiment run report (legacy --metrics-json)
//   --trace-jsonl PATH    stream simulation events to JSONL (implies --force)
//   --perfetto PATH       write a Chrome-trace-event/Perfetto JSON trace; spans
//                         are enabled and events stream to PATH.jsonl unless
//                         --trace-jsonl names the stream (implies --force)
//   --check               arm the invariant oracle in every run (implies --force)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "dophy/check/check.hpp"
#include "dophy/common/table.hpp"
#include "dophy/eval/sweep.hpp"
#include "dophy/obs/metrics.hpp"
#include "dophy/obs/perfetto.hpp"
#include "dophy/obs/span.hpp"
#include "dophy/obs/timer.hpp"
#include "dophy/obs/trace.hpp"

namespace {

using dophy::eval::ExperimentRegistry;

int usage(int code) {
  auto& os = code == 0 ? std::cout : std::cerr;
  os << "usage: dophy_bench list [--markdown]\n"
        "       dophy_bench run [ID...] [--all] [--trials N] [--nodes N]\n"
        "                       [--sim-threads N] [--quick]\n"
        "                       [--csv] [--out-dir DIR] [--cache-dir DIR] [--no-cache]\n"
        "                       [--force] [--resume] [--shard I/N] [--manifest PATH]\n"
        "                       [--metrics-json PATH] [--trace-jsonl PATH]\n"
        "                       [--perfetto PATH] [--check]\n"
        "\n"
        "Experiments are addressed by id (e.g. f6-accuracy-dynamics) or by the\n"
        "legacy output stem (e.g. fig_accuracy_dynamics).  `dophy_bench list`\n"
        "prints the catalog.\n";
  return code;
}

struct CliOptions {
  std::vector<std::string> ids;
  bool all = false;
  std::size_t trials = 0;
  std::size_t nodes = 0;
  std::size_t sim_threads = 0;
  bool quick = false;
  bool csv = false;
  bool check = false;
  bool no_cache = false;
  bool force = false;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::string out_dir;
  std::string cache_dir = ".dophy-cache";
  std::string manifest_path;
  std::string metrics_json;
  std::string trace_jsonl;
  std::string perfetto;
};

bool parse_shard(const std::string& value, CliOptions& opts) {
  const auto slash = value.find('/');
  if (slash == std::string::npos) return false;
  char* end = nullptr;
  opts.shard_index = std::strtoull(value.c_str(), &end, 10);
  if (end != value.c_str() + slash) return false;
  opts.shard_count = std::strtoull(value.c_str() + slash + 1, &end, 10);
  if (*end != '\0') return false;
  return opts.shard_count > 0 && opts.shard_index < opts.shard_count;
}

int run_command(const CliOptions& opts) {
  const auto& registry = ExperimentRegistry::builtin();

  std::vector<const dophy::eval::ExperimentSpec*> selected;
  if (opts.all) {
    for (const auto& spec : registry.all()) selected.push_back(&spec);
  } else {
    for (const auto& id : opts.ids) {
      const auto* spec = registry.find(id);
      if (spec == nullptr) {
        std::cerr << "unknown experiment: " << id << " (see `dophy_bench list`)\n";
        return 2;
      }
      selected.push_back(spec);
    }
  }
  if (selected.empty()) {
    std::cerr << "no experiments selected (pass ids or --all)\n";
    return 2;
  }

  // Cached cells skip the oracle and emit no events, so checking/tracing
  // forces fresh computes (results are still stored for later reuse).
  const bool force =
      opts.force || opts.check || !opts.trace_jsonl.empty() || !opts.perfetto.empty();
  if (force && !opts.force) {
    std::string reasons;
    auto add = [&](const char* flag) {
      if (!reasons.empty()) reasons += "/";
      reasons += flag;
    };
    if (opts.check) add("--check");
    if (!opts.trace_jsonl.empty()) add("--trace-jsonl");
    if (!opts.perfetto.empty()) add("--perfetto");
    std::cerr << "note: " << reasons
              << " implies --force: cached cells emit no events, so every owned "
                 "cell is recomputed (the result store is still refreshed)\n";
  }

  std::optional<dophy::eval::ResultCache> cache;
  if (!opts.no_cache) cache.emplace(opts.cache_dir);

  dophy::eval::SweepOptions sweep;
  sweep.trials = opts.trials;
  sweep.nodes = opts.nodes;
  sweep.quick = opts.quick;
  sweep.shard_index = opts.shard_index;
  sweep.shard_count = opts.shard_count;
  sweep.cache = cache ? &*cache : nullptr;
  sweep.force = force;
  sweep.sim_threads = opts.sim_threads;
  if (opts.sim_threads > 1 && cache) {
    std::cerr << "note: --sim-threads > 1 bypasses the result cache "
                 "(parallel-engine results are lp_count-dependent)\n";
  }

  const bool to_files = !opts.out_dir.empty() || selected.size() > 1;
  const std::string out_dir = opts.out_dir.empty() ? "results" : opts.out_dir;
  if (to_files) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
      std::cerr << "cannot create out dir: " << out_dir << "\n";
      return 2;
    }
  }

  const auto sweep_start = std::chrono::steady_clock::now();
  const auto metrics_baseline = dophy::obs::Registry::global().snapshot();
  std::vector<dophy::eval::ExperimentRun> runs;

  for (const auto* spec : selected) {
    const auto baseline = dophy::obs::Registry::global().snapshot();
    dophy::obs::reset_global_phases();
    const auto run_start = std::chrono::steady_clock::now();

    auto run = dophy::eval::run_experiment(*spec, sweep);

    auto report = dophy::eval::make_run_report(run);
    report.phase_seconds = dophy::obs::global_phases().seconds();
    report.phase_seconds["bench.total"] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start)
            .count();
    report.metrics = dophy::obs::Registry::global().snapshot().delta_since(baseline);

    if (to_files) {
      const auto stem = out_dir + "/" + spec->output_stem;
      const auto table_path = stem + (opts.csv ? ".csv" : ".txt");
      std::ofstream out(table_path);
      dophy::eval::print_run(out, run, opts.csv);
      if (!out) {
        std::cerr << "cannot write " << table_path << "\n";
        return 2;
      }
      if (!dophy::obs::write_report_file(report, stem + ".json")) {
        std::cerr << "cannot write report: " << stem << ".json\n";
        return 2;
      }
      std::cerr << spec->id << ": " << run.cells_owned << " cells ("
                << run.cache_hits << " cached, " << run.cells_computed
                << " computed) in " << dophy::common::format_double(run.wall_seconds, 1)
                << "s -> " << table_path << "\n";
    } else {
      dophy::eval::print_run(std::cout, run, opts.csv);
      if (!opts.metrics_json.empty() &&
          !dophy::obs::write_report_file(report, opts.metrics_json)) {
        std::cerr << "cannot write report: " << opts.metrics_json << "\n";
        return 2;
      }
    }
    runs.push_back(std::move(run));
  }

  std::string manifest_path = opts.manifest_path;
  if (manifest_path.empty() && to_files) manifest_path = out_dir + "/manifest.json";
  if (!manifest_path.empty()) {
    const auto metrics =
        dophy::obs::Registry::global().snapshot().delta_since(metrics_baseline);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start)
            .count();
    std::ofstream out(manifest_path);
    out << dophy::eval::manifest_json(runs, sweep, metrics, wall);
    if (!out) {
      std::cerr << "cannot write manifest: " << manifest_path << "\n";
      return 2;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(2);

  std::string command = argv[1];
  int first_arg = 2;
  // `--list` is accepted as a command alias for scripts.
  if (command == "--list") command = "list";
  if (command == "--help" || command == "-h" || command == "help") return usage(0);
  if (command != "list" && command != "run") {
    // Allow `dophy_bench <id>` as shorthand for `dophy_bench run <id>`.
    if (ExperimentRegistry::builtin().find(command) != nullptr) {
      command = "run";
      first_arg = 1;
    } else {
      std::cerr << "unknown command: " << command << "\n";
      return usage(2);
    }
  }

  if (command == "list") {
    bool markdown = false;
    for (int i = first_arg; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--markdown") {
        markdown = true;
      } else {
        std::cerr << "unknown argument: " << a << "\n";
        return usage(2);
      }
    }
    const auto& registry = ExperimentRegistry::builtin();
    std::cout << (markdown ? dophy::eval::catalog_markdown(registry)
                           : dophy::eval::catalog_text(registry));
    return 0;
  }

  CliOptions opts;
  for (int i = first_arg; i < argc; ++i) {
    const std::string a = argv[i];
    auto next_arg = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    auto next_value = [&]() -> std::size_t {
      return static_cast<std::size_t>(std::strtoull(next_arg(), nullptr, 10));
    };
    if (a == "--all") {
      opts.all = true;
    } else if (a == "--trials") {
      opts.trials = next_value();
    } else if (a == "--nodes") {
      opts.nodes = next_value();
    } else if (a == "--sim-threads") {
      opts.sim_threads = next_value();
    } else if (a == "--quick") {
      opts.quick = true;
    } else if (a == "--csv") {
      opts.csv = true;
    } else if (a == "--out-dir") {
      opts.out_dir = next_arg();
    } else if (a == "--cache-dir") {
      opts.cache_dir = next_arg();
    } else if (a == "--no-cache") {
      opts.no_cache = true;
    } else if (a == "--force") {
      opts.force = true;
    } else if (a == "--resume") {
      // Cache reuse is the default; the flag documents intent in scripts.
    } else if (a == "--shard") {
      if (!parse_shard(next_arg(), opts)) {
        std::cerr << "bad --shard value (want I/N with I < N)\n";
        return 2;
      }
    } else if (a == "--manifest") {
      opts.manifest_path = next_arg();
    } else if (a == "--metrics-json") {
      opts.metrics_json = next_arg();
    } else if (a == "--trace-jsonl") {
      opts.trace_jsonl = next_arg();
    } else if (a == "--perfetto") {
      opts.perfetto = next_arg();
    } else if (a == "--check") {
      opts.check = true;
    } else if (a == "--help" || a == "-h") {
      return usage(0);
    } else if (!a.empty() && a.front() == '-') {
      std::cerr << "unknown argument: " << a << "\n";
      return usage(2);
    } else {
      opts.ids.push_back(a);
    }
  }

  // --perfetto needs an event stream to convert: reuse --trace-jsonl when
  // given, otherwise stream to PATH.jsonl next to the output.
  std::string trace_path = opts.trace_jsonl;
  if (trace_path.empty() && !opts.perfetto.empty()) trace_path = opts.perfetto + ".jsonl";
  if (!trace_path.empty()) {
    // The sweep creates --out-dir lazily, but the trace file opens before
    // any sweep runs; create its parent up front so `--perfetto DIR/x.json`
    // works against a fresh directory.
    const auto parent = std::filesystem::path(trace_path).parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(parent, ec);
    }
    auto& trace = dophy::obs::EventTrace::global();
    if (!trace.open_file(trace_path)) {
      std::cerr << "cannot open trace file: " << trace_path << "\n";
      return 2;
    }
    trace.enable_all();
    // Lifecycle spans ride in the same stream; tracing runs want them.
    dophy::obs::SpanTrace::global().set_enabled(true);
  }
  if (opts.check) {
    dophy::check::set_global_enabled(true);
    // The pipeline prints each FAIL summary; make a failed oracle fatal at
    // process end.
    std::atexit([] {
      if (const auto failures = dophy::check::global_failure_count()) {
        std::fprintf(stderr, "--check: %llu pipeline run(s) failed invariant checks\n",
                     static_cast<unsigned long long>(failures));
        std::_Exit(1);
      }
    });
  }

  const int rc = run_command(opts);

  if (!opts.perfetto.empty()) {
    auto& trace = dophy::obs::EventTrace::global();
    trace.disable_all();
    trace.close();  // flush buffered lines before converting
    const auto phases = dophy::obs::global_phases();
    if (!dophy::obs::export_perfetto_file(trace_path, opts.perfetto, &phases)) {
      std::cerr << "cannot write perfetto trace: " << opts.perfetto << "\n";
      return rc == 0 ? 2 : rc;
    }
    std::cerr << "perfetto trace: " << opts.perfetto << " (events: " << trace_path
              << ")\n";
  }
  return rc;
}
