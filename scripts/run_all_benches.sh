#!/usr/bin/env bash
# Regenerates every reproduced figure/table into results/ (text + CSV +
# machine-readable JSON run reports) via the dophy_bench sweep driver, then
# runs the micro benchmarks and the perf-regression gate.
#
# Sweep cells are cached content-addressed in .dophy-cache/, so re-runs after
# an interrupted sweep (or with an unchanged tree) replay instantly.
# Usage: scripts/run_all_benches.sh [build_dir] [--quick]
set -euo pipefail

build_dir="${1:-build}"
quick_flag=""
if [[ "${2:-}" == "--quick" || "${1:-}" == "--quick" ]]; then
  quick_flag="--quick"
  [[ "${1:-}" == "--quick" ]] && build_dir="build"
fi

out_dir="results"
mkdir -p "$out_dir"

# Fails the run if a report is missing, empty, or unparseable JSON.
check_report() {
  local path="$1"
  if [[ ! -s "$path" ]]; then
    echo "error: $path missing or empty" >&2
    exit 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$path" >/dev/null || {
      echo "error: $path is not valid JSON" >&2
      exit 1
    }
  fi
}

echo ">>> figure/table sweeps (dophy_bench run --all)"
"$build_dir"/tools/dophy_bench run --all $quick_flag \
  --out-dir "$out_dir" --manifest "$out_dir/manifest.json"
check_report "$out_dir/manifest.json"
while read -r report; do
  check_report "$report"
done < <(find "$out_dir" -maxdepth 1 \( -name 'fig_*.json' -o -name 'table_*.json' \))

echo ">>> traced smoke sweep (Perfetto + latency summary)"
# One sim-backed sweep re-run with lifecycle spans enabled: produces a
# Perfetto/Chrome trace loadable at ui.perfetto.dev plus the dophy_trace
# latency/drop-cause summary.  Spans force recomputation (cached cells emit
# no events), so this stays a small dedicated run.
"$build_dir"/tools/dophy_bench run t1-summary $quick_flag --trials 1 --nodes 30 \
  --cache-dir .dophy-cache --out-dir "$out_dir/traced" \
  --perfetto "$out_dir/traced/t1.perfetto.json"
check_report "$out_dir/traced/t1.perfetto.json"
"$build_dir"/tools/dophy_trace summary "$out_dir/traced/t1.perfetto.json.jsonl" \
  | tee "$out_dir/traced/t1.summary.txt"

echo ">>> micro benchmarks"
# --quick shortens the per-benchmark measurement window; this is the mode the
# CI perf gate uses (see .github/workflows/ci.yml and scripts/bench_compare.py).
micro_args=()
[[ -n "$quick_flag" ]] && micro_args+=(--benchmark_min_time=0.1)
"$build_dir"/bench/micro_codec "${micro_args[@]}" \
  --metrics-json "$out_dir/micro_codec.json" | tee "$out_dir/micro_codec.txt"
check_report "$out_dir/micro_codec.json"
"$build_dir"/bench/micro_sim "${micro_args[@]}" \
  --metrics-json "$out_dir/micro_sim.json" | tee "$out_dir/micro_sim.txt"
check_report "$out_dir/micro_sim.json"

echo ">>> perf-regression gate (BENCH_sim.json)"
python3 "$(dirname "$0")/bench_compare.py" --build-dir "$build_dir" \
  $quick_flag --output "$out_dir/BENCH_sim.json"
check_report "$out_dir/BENCH_sim.json"

echo "All outputs in $out_dir/"
