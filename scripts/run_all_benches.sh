#!/usr/bin/env bash
# Regenerates every reproduced figure/table into results/ (text + CSV).
# Usage: scripts/run_all_benches.sh [build_dir] [--quick]
set -euo pipefail

build_dir="${1:-build}"
quick_flag=""
if [[ "${2:-}" == "--quick" || "${1:-}" == "--quick" ]]; then
  quick_flag="--quick"
  [[ "${1:-}" == "--quick" ]] && build_dir="build"
fi

out_dir="results"
mkdir -p "$out_dir"

for bench in "$build_dir"/bench/fig_* "$build_dir"/bench/table_summary; do
  name="$(basename "$bench")"
  echo ">>> $name"
  "$bench" $quick_flag | tee "$out_dir/$name.txt"
  "$bench" $quick_flag --csv > "$out_dir/$name.csv"
done

echo ">>> micro benchmarks"
"$build_dir"/bench/micro_codec | tee "$out_dir/micro_codec.txt"
"$build_dir"/bench/micro_sim | tee "$out_dir/micro_sim.txt"

echo "All outputs in $out_dir/"
