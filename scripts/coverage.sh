#!/usr/bin/env bash
# Line-coverage build + report (gcc --coverage + gcovr).
# Usage: scripts/coverage.sh [--strict] [build_dir]
#
# Configures a dedicated instrumented build, runs the unit/integration/
# property test labels, and writes results/coverage.{txt,xml,html}.  The
# dophy::check oracle carries a soft >= 80 % line floor: a plain run prints
# a warning when the floor is missed, --strict turns that into a failure
# (the CI knob).  See docs/TESTING.md.
set -euo pipefail

strict=0
build_dir="build-coverage"
for arg in "$@"; do
  case "$arg" in
    --strict) strict=1 ;;
    -h|--help)
      sed -n '2,9p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *) build_dir="$arg" ;;
  esac
done

if ! command -v gcovr >/dev/null 2>&1; then
  echo "error: gcovr not found (apt-get install gcovr); skipping coverage" >&2
  exit 3
fi

cmake -B "$build_dir" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DDOPHY_BUILD_BENCH=OFF -DDOPHY_BUILD_EXAMPLES=OFF \
  -DCMAKE_CXX_FLAGS="--coverage -O0"
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" -L 'unit|integration|property|coding' --output-on-failure

mkdir -p results
echo ">>> line coverage, src/dophy (tests excluded)"
gcovr --root . --filter 'src/dophy/' \
  --print-summary \
  --xml results/coverage.xml \
  --html-details results/coverage.html \
  --txt results/coverage.txt \
  "$build_dir"
tail -n 20 results/coverage.txt

echo ">>> dophy::check oracle line coverage (soft floor: 80 %)"
if gcovr --root . --filter 'src/dophy/check/' --fail-under-line 80 \
    --print-summary "$build_dir" > /dev/null; then
  echo "src/dophy/check line coverage >= 80 % (ok)"
else
  if [[ "$strict" -eq 1 ]]; then
    echo "error: src/dophy/check line coverage below the 80 % floor" >&2
    exit 1
  fi
  echo "warning: src/dophy/check line coverage below the 80 % soft floor" >&2
fi
