#!/usr/bin/env bash
# Line-coverage build + report (gcc --coverage + gcovr).
# Usage: scripts/coverage.sh [--strict] [build_dir]
#
# Configures a dedicated instrumented build, runs the unit/integration/
# property test labels, and writes results/coverage.{txt,xml,html}.  The
# dophy::check oracle carries a soft >= 80 % line floor and the tomography
# layer (src/dophy/tomo, shared MLE kernel included) a soft >= 75 % floor: a
# plain run prints a warning when a floor is missed, --strict turns that
# into a failure (the CI knob).  See docs/TESTING.md.
set -euo pipefail

strict=0
build_dir="build-coverage"
for arg in "$@"; do
  case "$arg" in
    --strict) strict=1 ;;
    -h|--help)
      sed -n '2,9p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *) build_dir="$arg" ;;
  esac
done

if ! command -v gcovr >/dev/null 2>&1; then
  echo "error: gcovr not found (apt-get install gcovr); skipping coverage" >&2
  exit 3
fi

cmake -B "$build_dir" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DDOPHY_BUILD_BENCH=OFF -DDOPHY_BUILD_EXAMPLES=OFF \
  -DCMAKE_CXX_FLAGS="--coverage -O0"
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" -L 'unit|integration|property|coding|sink' --output-on-failure

mkdir -p results
echo ">>> line coverage, src/dophy (tests excluded)"
gcovr --root . --filter 'src/dophy/' \
  --print-summary \
  --xml results/coverage.xml \
  --html-details results/coverage.html \
  --txt results/coverage.txt \
  "$build_dir"
tail -n 20 results/coverage.txt

# Soft per-subsystem floors; --strict promotes misses to failures.
check_floor() {
  local filter="$1" floor="$2"
  echo ">>> ${filter} line coverage (soft floor: ${floor} %)"
  if gcovr --root . --filter "$filter" --fail-under-line "$floor" \
      --print-summary "$build_dir" > /dev/null; then
    echo "${filter} line coverage >= ${floor} % (ok)"
  else
    if [[ "$strict" -eq 1 ]]; then
      echo "error: ${filter} line coverage below the ${floor} % floor" >&2
      exit 1
    fi
    echo "warning: ${filter} line coverage below the ${floor} % soft floor" >&2
  fi
}

check_floor 'src/dophy/check/' 80
check_floor 'src/dophy/tomo/' 75
check_floor 'src/dophy/sink/' 75
