#!/usr/bin/env bash
# Fails when any docs/*.md (or README.md) references something that does not
# exist: relative markdown link targets, or backticked repo paths such as
# `src/dophy/sink/service.hpp` (brace groups like service.{hpp,cpp} are
# expanded; `path:123` line suffixes are stripped).  CI wires this into the
# docs job next to check_experiments_doc.sh so renames cannot silently
# strand the documentation.
#
# Usage:
#   scripts/check_doc_links.sh              # check the repo's docs
#   scripts/check_doc_links.sh --self-test  # prove a planted stale link fails
#
# DOPHY_DOC_ROOT overrides the checked tree (used by the self-test).
set -euo pipefail

script_path="$(cd "$(dirname "$0")" && pwd)/$(basename "$0")"
repo_root="${DOPHY_DOC_ROOT:-$(cd "$(dirname "$0")/.." && pwd)}"

# Top-level entries a backticked token must start with to be treated as a
# repo path (keeps `ctest -L sink` and flag examples out of the check).
path_roots='src|tests|tools|bench|docs|scripts|examples|\.github'

failures=0

fail() {
  echo "stale reference: $1" >&2
  failures=$((failures + 1))
}

check_doc() {
  local doc="$1"
  local doc_dir
  doc_dir="$(dirname "$doc")"

  # 1. Relative markdown links: [text](target).  External URLs and pure
  #    in-page anchors are out of scope; #section suffixes are stripped.
  while IFS= read -r target; do
    [[ -z "$target" ]] && continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    local path="${target%%#*}"
    [[ -z "$path" ]] && continue
    if [[ ! -e "$doc_dir/$path" && ! -e "$repo_root/$path" ]]; then
      fail "$doc: link target '$target' does not exist"
    fi
  done < <(grep -oE '\[[^][]*\]\([^)[:space:]]+\)' "$doc" 2>/dev/null |
           sed -E 's/^\[[^][]*\]\(([^)]+)\)$/\1/')

  # 2. Backticked repo paths: `src/.../file.ext`, with optional {a,b} brace
  #    groups and :line suffixes.  Checked against the repo root.
  while IFS= read -r token; do
    [[ -z "$token" ]] && continue
    token="${token%\`}"
    token="${token#\`}"
    token="${token%%:[0-9]*}"            # file.cpp:123 -> file.cpp
    [[ "$token" =~ ^(${path_roots})/ ]] || continue
    [[ "$token" =~ ^[A-Za-z0-9_.{},/-]+$ ]] || continue
    local candidate
    # Safe to eval: the charset above excludes quoting/substitution chars.
    for candidate in $(eval echo "$token"); do
      candidate="${candidate%/}"
      if [[ ! -e "$repo_root/$candidate" ]]; then
        fail "$doc: path \`$candidate\` does not exist"
      fi
    done
  done < <(grep -oE '`[^` ]+`' "$doc" 2>/dev/null)
  return 0
}

if [[ "${1:-}" == "--self-test" ]]; then
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  mkdir -p "$tmp/docs"
  cat > "$tmp/docs/STALE.md" <<'EOF'
A [dangling link](no-such-page.md) and a dead path `src/dophy/gone/never.hpp`.
EOF
  if DOPHY_DOC_ROOT="$tmp" "$script_path" >/dev/null 2>&1; then
    echo "self-test FAILED: planted stale link was not rejected" >&2
    exit 1
  fi
  echo "self-test: planted stale link correctly rejected"
  # Fall through: the real tree must still pass.
fi

shopt -s nullglob
docs=("$repo_root"/docs/*.md)
[[ -f "$repo_root/README.md" ]] && docs+=("$repo_root/README.md")
if [[ ${#docs[@]} -eq 0 ]]; then
  echo "error: no docs found under $repo_root" >&2
  exit 1
fi
for doc in "${docs[@]}"; do
  check_doc "$doc"
done

if [[ "$failures" -gt 0 ]]; then
  echo "check_doc_links: $failures stale reference(s)" >&2
  exit 1
fi
echo "check_doc_links: all ${#docs[@]} doc(s) clean."
