#!/usr/bin/env bash
# Fails if the committed experiment catalog in EXPERIMENTS.md has drifted from
# the registry (`dophy_bench list --markdown`).  Run after a build; CI wires
# this into the build-test job.
# Usage: scripts/check_experiments_doc.sh [build_dir]
set -euo pipefail

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
doc="$repo_root/EXPERIMENTS.md"
bench="$build_dir/tools/dophy_bench"

if [[ ! -x "$bench" ]]; then
  echo "error: $bench not built (run cmake --build $build_dir first)" >&2
  exit 1
fi

committed="$(sed -n '/<!-- BEGIN dophy_bench catalog -->/,/<!-- END dophy_bench catalog -->/p' "$doc" |
  sed '1d;$d')"
if [[ -z "$committed" ]]; then
  echo "error: no '<!-- BEGIN dophy_bench catalog -->' section in $doc" >&2
  exit 1
fi

generated="$("$bench" list --markdown)"

if ! diff_out="$(diff -u <(printf '%s\n' "$committed") <(printf '%s\n' "$generated"))"; then
  echo "error: EXPERIMENTS.md catalog is stale; regenerate the marked section with:" >&2
  echo "  $bench list --markdown" >&2
  echo "$diff_out" >&2
  exit 1
fi

echo "EXPERIMENTS.md catalog matches the registry."
