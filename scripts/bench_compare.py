#!/usr/bin/env python3
"""Perf-regression harness for the simulator/codec/sink microbenchmarks.

Runs `micro_sim`, `micro_codec`, and `micro_sink` (google-benchmark
binaries), collects
throughput counters plus peak RSS and the counting-allocator metrics, writes
the combined `BENCH_sim.json`, and compares against the committed baseline
(`bench/BENCH_sim.json` by default).  Exits non-zero when any gated metric
regresses by more than the threshold (10 % by default).

Noise protocol: CI boxes and shared dev machines jitter by tens of percent,
and the jitter only ever makes code look *slower*.  Each benchmark binary is
run `--rounds` times; a gate run keeps the per-metric **best** value (max for
rates, min for allocation/RSS metrics — best-of-N converges on the machine's
capability), while `--update-baseline` stores the **median** round (the
typical value a healthy re-run comfortably beats).  Comparing best-of against
a best-of baseline false-fails whenever the baseline run got lucky; best
against median trips only on real regressions.  See docs/PERFORMANCE.md for
the full methodology, including how the committed baseline was measured
against the pre-engine tree.

Usage:
  scripts/bench_compare.py                       # run, write, gate
  scripts/bench_compare.py --quick               # short benchmark time (CI)
  scripts/bench_compare.py --update-baseline     # refresh committed baseline
  scripts/bench_compare.py --skip-gate           # measure only, never fail
"""

import argparse
import json
import os
import platform
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

BINARIES = ("micro_sim", "micro_codec", "micro_sink")

# google-benchmark entry fields / counters worth tracking.  Anything matching
# LOWER_IS_BETTER gates in the "must not grow" direction; everything else is
# a rate ("must not shrink").
RATE_FIELDS = ("items_per_second",)
COUNTER_PREFIXES_LOWER = ("alloc", "steady_alloc", "peak_rss")


def is_lower_better(metric: str) -> bool:
    return any(p in metric for p in COUNTER_PREFIXES_LOWER)


def run_binary(path: str, min_time: float):
    """Run one benchmark binary; return (parsed benchmark JSON, peak_rss_kb).

    Peak RSS comes from the child's rusage via os.wait4 — the whole-process
    high-water mark, which is what the zero-allocation engine work is trying
    to keep flat.
    """
    cmd = [
        path,
        f"--benchmark_min_time={min_time}",
        "--benchmark_format=json",
    ]
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL)
    out = proc.stdout.read()
    _, status, rusage = os.wait4(proc.pid, 0)
    proc.returncode = os.waitstatus_to_exitcode(status)
    if proc.returncode != 0:
        raise RuntimeError(f"{path} exited with {proc.returncode}")
    return json.loads(out), rusage.ru_maxrss  # ru_maxrss is KiB on Linux


def collect_round(build_dir: str, min_time: float):
    """One measurement round: {binary: {bench: {metric: value}, peak_rss_kb}}."""
    result = {}
    for name in BINARIES:
        path = os.path.join(build_dir, "bench", name)
        if not os.path.exists(path):
            raise FileNotFoundError(
                f"{path} not found — build with -DDOPHY_BUILD_BENCH=ON first")
        data, peak_rss_kb = run_binary(path, min_time)
        benches = {}
        for entry in data.get("benchmarks", []):
            metrics = {}
            for field in RATE_FIELDS:
                if field in entry:
                    metrics[field] = float(entry[field])
            for key, value in entry.items():
                # Custom counters appear as plain numeric fields.
                if key.endswith("_per_s") or key.endswith("_per_item") or \
                        key.endswith("_per_event") or key.endswith("_per_sim_s"):
                    metrics[key] = float(value)
            if metrics:
                benches[entry["name"]] = metrics
        # Custom AddCustomContext entries (e.g. micro_codec's corpus_seed)
        # ride along so a baseline records what corpus it was measured on.
        context = {k: v for k, v in data.get("context", {}).items()
                   if isinstance(v, str)}
        result[name] = {"benchmarks": benches, "peak_rss_kb": float(peak_rss_kb),
                        "context": context}
    return result


def _median(values):
    vs = sorted(values)
    mid = len(vs) // 2
    return vs[mid] if len(vs) % 2 else 0.5 * (vs[mid - 1] + vs[mid])


def merge_rounds(rounds, policy):
    """Fold rounds into one result set.

    policy "best": max for rates, min for cost metrics — estimates the
    machine's capability high-water (noise only ever lowers a rate).
    policy "median": the typical round — what a re-run should comfortably
    beat.  Baselines are stored as medians and gate runs measured as
    best-of, so the gate trips only when best-effort capability falls
    more than the threshold below the recorded *typical* value; comparing
    best against best false-fails whenever the baseline run got lucky.
    """
    acc = {}
    for rnd in rounds:
        for binary, payload in rnd.items():
            slot = acc.setdefault(binary, {"benchmarks": {}, "peak_rss_kb": [],
                                           "context": payload.get("context", {})})
            slot["peak_rss_kb"].append(payload["peak_rss_kb"])
            for bench, metrics in payload["benchmarks"].items():
                dst = slot["benchmarks"].setdefault(bench, {})
                for metric, value in metrics.items():
                    dst.setdefault(metric, []).append(value)

    def reduce(metric, values):
        if policy == "median":
            return _median(values)
        return min(values) if is_lower_better(metric) else max(values)

    merged = {}
    for binary, payload in acc.items():
        merged[binary] = {
            "peak_rss_kb": reduce("peak_rss_kb", payload["peak_rss_kb"]),
            "benchmarks": {
                bench: {m: reduce(m, vs) for m, vs in metrics.items()}
                for bench, metrics in payload["benchmarks"].items()
            },
        }
        if payload.get("context"):
            merged[binary]["context"] = payload["context"]
    return merged


def flatten(results):
    """{binary: ...} -> {"binary/bench/metric": value} for gating."""
    flat = {}
    for binary, payload in results.items():
        flat[f"{binary}/peak_rss_kb"] = payload["peak_rss_kb"]
        for bench, metrics in payload["benchmarks"].items():
            for metric, value in metrics.items():
                flat[f"{binary}/{bench}/{metric}"] = value
    return flat


def gate(current, baseline, threshold):
    """Return a list of human-readable regression strings (empty = green)."""
    failures = []
    cur = flatten(current)
    base = flatten(baseline)
    for key, base_val in sorted(base.items()):
        if key not in cur:
            failures.append(f"{key}: present in baseline but missing from this run")
            continue
        cur_val = cur[key]
        if is_lower_better(key):
            # Absolute slack of 1.0 keeps zero-baseline alloc metrics gateable
            # without tripping on a single stray allocation miscount.
            limit = base_val * (1.0 + threshold) + 1.0
            if cur_val > limit:
                failures.append(
                    f"{key}: {cur_val:.3f} exceeds baseline {base_val:.3f} "
                    f"(limit {limit:.3f})")
        else:
            limit = base_val * (1.0 - threshold)
            if cur_val < limit:
                failures.append(
                    f"{key}: {cur_val:.3e} below baseline {base_val:.3e} "
                    f"(-{(1.0 - cur_val / base_val) * 100.0:.1f} %, "
                    f"limit -{threshold * 100.0:.0f} %)")
    return failures


def pdes_scaling(current):
    """Thread-scaling summary from the NetworkPdesGrid rows.

    Returns (speedup_t8_over_t1, rows) or (None, {}) when the benchmark is
    absent.  Speedup compares the 8-LP engine against ITSELF at one thread —
    the same event stream, so the ratio isolates parallel efficiency from
    the PDES engine's extra cross-LP events.
    """
    sim = current.get("micro_sim", {}).get("benchmarks", {})
    rows = {}
    for threads in (0, 1, 2, 4, 8):
        rate = sim.get(f"NetworkPdesGrid/{threads}", {}).get("events_per_s")
        if rate:
            rows[threads] = rate
    if 1 not in rows or 8 not in rows:
        return None, rows
    return rows[8] / rows[1], rows


# The PDES speedup gate only means something on hardware that can actually
# run 8 LP workers; below this the rows measure synchronization overhead and
# the gate reports informationally instead of failing.
PDES_GATE_MIN_CORES = 8
PDES_GATE_MIN_SPEEDUP = 3.0


def sink_scaling(current):
    """Consumer-scaling summary from the SinkServiceScaling rows.

    Returns (speedup_c4_over_c1, rows) or (None, {}) when the benchmark is
    absent.  The ratio compares the service against ITSELF at one consumer —
    same decode + fold work per report, so it isolates the shard-affine
    consumer group's parallel efficiency.
    """
    sink = current.get("micro_sink", {}).get("benchmarks", {})
    rows = {}
    for consumers in (1, 2, 4):
        rate = sink.get(f"SinkServiceScaling/{consumers}/real_time",
                        {}).get("items_per_second")
        if rate:
            rows[consumers] = rate
    if 1 not in rows or 4 not in rows:
        return None, rows
    return rows[4] / rows[1], rows


# Like the PDES gate: a 4-consumer service (4 producer threads + 4 consumer
# threads) needs cores to scale on; below the floor the rows are contention
# measurements and the gate reports informationally instead of failing.
SINK_GATE_MIN_CORES = 8
SINK_GATE_MIN_SPEEDUP = 3.0


def speedups_vs_reference(current, reference):
    """Ratios of headline current metrics against the pre-engine reference."""
    out = {}
    sim = current.get("micro_sim", {}).get("benchmarks", {})
    mapping = {
        "EventQueuePushPop_items_per_second":
            sim.get("EventQueuePushPop", {}).get("items_per_second"),
        "NetworkSimulatedSecondsPlain_sim_s_per_s":
            sim.get("NetworkSimulatedSecondsPlain", {}).get("sim_s_per_s"),
        "NetworkSimulatedSecondsWithDophy_sim_s_per_s":
            sim.get("NetworkSimulatedSecondsWithDophy", {}).get("sim_s_per_s"),
    }
    for key, cur_val in mapping.items():
        ref_val = reference.get(key)
        if cur_val and ref_val:
            out[key] = round(cur_val / ref_val, 2)
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"))
    ap.add_argument("--baseline",
                    default=os.path.join(REPO_ROOT, "bench", "BENCH_sim.json"))
    ap.add_argument("--output",
                    default=os.path.join(REPO_ROOT, "results", "BENCH_sim.json"))
    ap.add_argument("--rounds", type=int, default=3,
                    help="measurement rounds; best-of-N per metric (default 3)")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative regression gate (default 0.10 = 10%%)")
    ap.add_argument("--quick", action="store_true",
                    help="short per-benchmark time (CI smoke / gate)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="write this run's results over the committed baseline")
    ap.add_argument("--skip-gate", action="store_true",
                    help="measure and write output, never fail")
    args = ap.parse_args()

    # 0.25 s quick windows: 0.1 s proved too short on a loaded 1-core box —
    # single-bench swings exceeded 20 %, which no best-of-3 can absorb.
    min_time = 0.25 if args.quick else 0.5
    rounds = []
    for i in range(max(1, args.rounds)):
        print(f">>> measurement round {i + 1}/{args.rounds}", flush=True)
        rounds.append(collect_round(args.build_dir, min_time))
    current = merge_rounds(rounds, policy="best")

    baseline = None
    if os.path.exists(args.baseline):
        with open(args.baseline) as fh:
            baseline = json.load(fh)

    report = {
        "schema": "dophy-bench-sim/1",
        "generated_by": "scripts/bench_compare.py",
        "rounds": len(rounds),
        "quick": args.quick,
        "host": {"machine": platform.machine(), "system": platform.system()},
        "results": current,
    }
    if baseline and "pre_engine_reference" in baseline:
        report["pre_engine_reference"] = baseline["pre_engine_reference"]
        report["speedup_vs_pre_engine"] = speedups_vs_reference(
            current, baseline["pre_engine_reference"]["metrics"])

    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if args.update_baseline:
        # The committed baseline stores the MEDIAN round (see merge_rounds):
        # gate runs measure best-of, so the stored value must be the typical
        # round a healthy re-run beats, not a lucky high-water mark.
        base_report = dict(report)
        base_report["results"] = merge_rounds(rounds, policy="median")
        base_report["baseline_policy"] = "median-of-rounds"
        with open(args.baseline, "w") as fh:
            json.dump(base_report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"updated baseline {args.baseline}")
        return 0

    if baseline is None:
        print(f"note: no baseline at {args.baseline}; gate skipped "
              "(run with --update-baseline to create one)")
        return 0

    failures = gate(current, baseline.get("results", {}), args.threshold)

    # Hardware-adaptive PDES scaling gate: enforce the 8-thread speedup only
    # where 8 workers have cores to run on.
    speedup, pdes_rows = pdes_scaling(current)
    if speedup is not None:
        cores = os.cpu_count() or 1
        row_text = ", ".join(f"T={t}: {r:.0f} ev/s" for t, r in sorted(pdes_rows.items()))
        print(f"  PDES scaling ({row_text}) -> T8/T1 = {speedup:.2f}x")
        if cores >= PDES_GATE_MIN_CORES:
            if speedup < PDES_GATE_MIN_SPEEDUP:
                failures.append(
                    f"micro_sim/NetworkPdesGrid: T8/T1 speedup {speedup:.2f}x below "
                    f"{PDES_GATE_MIN_SPEEDUP:.1f}x on a {cores}-core host")
        else:
            print(f"  (speedup gate skipped: {cores} core(s) < "
                  f"{PDES_GATE_MIN_CORES} needed to run 8 LP workers)")

    # Hardware-adaptive sink consumer-scaling gate, same shape: enforce the
    # 4-consumer ingest speedup only where the threads have cores to run on.
    sink_speedup, sink_rows = sink_scaling(current)
    if sink_speedup is not None:
        cores = os.cpu_count() or 1
        row_text = ", ".join(
            f"C={c}: {r:.0f} reports/s" for c, r in sorted(sink_rows.items()))
        print(f"  sink scaling ({row_text}) -> C4/C1 = {sink_speedup:.2f}x")
        if cores >= SINK_GATE_MIN_CORES:
            if sink_speedup < SINK_GATE_MIN_SPEEDUP:
                failures.append(
                    f"micro_sink/SinkServiceScaling: C4/C1 speedup "
                    f"{sink_speedup:.2f}x below {SINK_GATE_MIN_SPEEDUP:.1f}x "
                    f"on a {cores}-core host")
        else:
            print(f"  (sink scaling gate skipped: {cores} core(s) < "
                  f"{SINK_GATE_MIN_CORES} needed for a 4-consumer group)")

    if "speedup_vs_pre_engine" in report:
        for key, ratio in sorted(report["speedup_vs_pre_engine"].items()):
            print(f"  speedup vs pre-engine {key}: {ratio}x")
    if failures:
        print(f"PERF GATE: {len(failures)} regression(s) beyond "
              f"{args.threshold * 100.0:.0f} %:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        if args.skip_gate:
            print("(--skip-gate: reporting only, exit 0)")
            return 0
        return 1
    print(f"PERF GATE: green ({args.threshold * 100.0:.0f} % threshold, "
          f"best of {len(rounds)} round(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
