#include "dophy/net/trickle.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dophy::net {
namespace {

NetworkConfig trickle_net_config(std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.topology.node_count = 30;
  cfg.topology.field_size = 100.0;
  cfg.topology.comm_range = 40.0;
  cfg.seed = seed;
  return cfg;
}

TEST(Trickle, PublishReachesEveryNode) {
  Network net(trickle_net_config(1));
  std::set<NodeId> installed;
  TrickleDissemination trickle(net, TrickleConfig{},
                               [&](NodeId node, std::uint8_t version, SimTime) {
                                 if (version == 1) installed.insert(node);
                               });
  net.run_for(10.0);
  trickle.publish(1, 100);
  net.run_for(120.0);
  EXPECT_EQ(installed.size(), net.node_count());
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    EXPECT_EQ(trickle.installed_version(static_cast<NodeId>(i)), 1);
  }
  EXPECT_GT(trickle.stats().transmissions, net.node_count() / 2);
  EXPECT_GT(trickle.stats().install_latency_s.count(), 0u);
}

TEST(Trickle, NewerVersionSupersedes) {
  Network net(trickle_net_config(2));
  TrickleDissemination trickle(net, TrickleConfig{},
                               [](NodeId, std::uint8_t, SimTime) {});
  trickle.publish(1, 100);
  net.run_for(120.0);
  trickle.publish(2, 100);
  net.run_for(120.0);
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    EXPECT_EQ(trickle.installed_version(static_cast<NodeId>(i)), 2);
  }
}

TEST(Trickle, SuppressionLimitsSteadyStateTraffic) {
  Network net(trickle_net_config(3));
  TrickleConfig cfg;
  cfg.redundancy_k = 1;  // aggressive suppression
  TrickleDissemination trickle(net, cfg, [](NodeId, std::uint8_t, SimTime) {});
  trickle.publish(1, 100);
  net.run_for(120.0);
  const auto after_spread = trickle.stats().transmissions;
  net.run_for(600.0);
  const auto later = trickle.stats().transmissions;
  // Steady state: with I_max = 64s and k=1, dense neighborhoods suppress
  // most transmissions — well under one per node per interval.
  const double per_node_per_interval =
      static_cast<double>(later - after_spread) /
      (600.0 / cfg.i_max_s) / static_cast<double>(net.node_count());
  EXPECT_LT(per_node_per_interval, 0.9);
  EXPECT_GT(trickle.stats().suppressions, 0u);
}

TEST(Trickle, InstallLatencyScalesWithDepth) {
  Network net(trickle_net_config(4));
  dophy::common::RunningStats latency;
  TrickleDissemination trickle(net, TrickleConfig{},
                               [&](NodeId node, std::uint8_t, SimTime) {
                                 if (node != kSinkId) latency.add(0.0);
                               });
  net.run_for(5.0);
  trickle.publish(1, 64);
  net.run_for(120.0);
  const auto& stats = trickle.stats();
  // Multi-hop spread cannot be instantaneous, and with i_min = 1s it should
  // finish within a couple of minutes.
  EXPECT_GT(stats.install_latency_s.mean(), 0.2);
  EXPECT_LT(stats.install_latency_s.max(), 120.0);
}

TEST(Trickle, RevivedChurnNodesCatchUp) {
  auto cfg = trickle_net_config(7);
  cfg.churn.enabled = true;
  cfg.churn.churn_fraction = 0.3;
  cfg.churn.mean_up_s = 60.0;
  cfg.churn.mean_down_s = 20.0;
  Network net(cfg);
  TrickleDissemination trickle(net, TrickleConfig{},
                               [](NodeId, std::uint8_t, SimTime) {});
  trickle.publish(1, 80);
  net.run_for(600.0);
  // Gossip keeps running, so even nodes that were down during the initial
  // spread converge once they revive (they are alive most of the time).
  std::size_t current = 0;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    current += trickle.installed_version(static_cast<NodeId>(i)) == 1;
  }
  EXPECT_GE(current, net.node_count() - 3);
}

TEST(Trickle, RejectsBadConfig) {
  Network net(trickle_net_config(5));
  TrickleConfig bad;
  bad.i_min_s = 0.0;
  EXPECT_THROW(TrickleDissemination(net, bad, [](NodeId, std::uint8_t, SimTime) {}),
               std::invalid_argument);
  TrickleConfig inverted;
  inverted.i_min_s = 10.0;
  inverted.i_max_s = 1.0;
  EXPECT_THROW(
      TrickleDissemination(net, inverted, [](NodeId, std::uint8_t, SimTime) {}),
      std::invalid_argument);
  EXPECT_THROW(TrickleDissemination(net, TrickleConfig{}, nullptr), std::invalid_argument);
}

TEST(Trickle, BytesAccounted) {
  Network net(trickle_net_config(6));
  TrickleDissemination trickle(net, TrickleConfig{},
                               [](NodeId, std::uint8_t, SimTime) {});
  trickle.publish(1, 77);
  net.run_for(60.0);
  EXPECT_EQ(trickle.stats().bytes_sent, trickle.stats().transmissions * 77);
}

}  // namespace
}  // namespace dophy::net
