#include "dophy/net/routing.hpp"

#include <gtest/gtest.h>

namespace dophy::net {
namespace {

RoutingConfig default_cfg() { return RoutingConfig{}; }

TEST(RoutingState, SinkHasZeroPathEtx) {
  RoutingState sink(kSinkId, true, default_cfg());
  EXPECT_DOUBLE_EQ(sink.path_etx(), 0.0);
  EXPECT_TRUE(sink.has_route());
  EXPECT_FALSE(sink.select_parent(0));
}

TEST(RoutingState, NoBeaconsNoRoute) {
  RoutingState node(5, false, default_cfg());
  EXPECT_FALSE(node.has_route());
  EXPECT_EQ(node.path_etx(), kInfiniteEtx);
  EXPECT_FALSE(node.select_parent(0));
}

TEST(RoutingState, AdoptsBeaconingNeighbor) {
  RoutingState node(5, false, default_cfg());
  node.on_beacon(1, 0.0, 0, 0);  // neighbor 1 advertises sink-adjacent
  EXPECT_TRUE(node.select_parent(0));
  EXPECT_EQ(node.parent(), 1);
  EXPECT_TRUE(node.has_route());
  EXPECT_LT(node.path_etx(), kInfiniteEtx);
  EXPECT_EQ(node.parent_changes(), 1u);
}

TEST(RoutingState, PrefersLowerTotalMetric) {
  RoutingState node(5, false, default_cfg());
  node.on_beacon(1, 10.0, 0, 0);
  node.on_beacon(2, 1.0, 0, 0);
  (void)node.select_parent(0);
  EXPECT_EQ(node.parent(), 2);
}

TEST(RoutingState, HysteresisPreventsFlapping) {
  RoutingConfig cfg;
  cfg.switch_hysteresis = 1.5;
  RoutingState node(5, false, cfg);
  node.on_beacon(1, 2.0, 0, 0);
  (void)node.select_parent(0);
  ASSERT_EQ(node.parent(), 1);
  // Neighbor 2 is better by less than the hysteresis: keep the parent.
  node.on_beacon(2, 1.2, 0, 0);
  EXPECT_FALSE(node.select_parent(0));
  EXPECT_EQ(node.parent(), 1);
  // Much better candidate: switch.
  node.on_beacon(3, 0.0, 0, 0);
  EXPECT_TRUE(node.select_parent(0));
  EXPECT_EQ(node.parent(), 3);
  EXPECT_EQ(node.parent_changes(), 2u);
}

TEST(RoutingState, GradientRuleBlocksUphillParents) {
  RoutingState node(5, false, default_cfg());
  node.on_beacon(1, 3.0, 0, 0);
  (void)node.select_parent(0);
  const double own = node.path_etx();
  ASSERT_LT(own, kInfiniteEtx);
  // Neighbor advertising a worse path than our own position is not eligible,
  // even if its link looks great.
  node.on_beacon(2, own + 1.0, 0, 0);
  (void)node.select_parent(0);
  EXPECT_EQ(node.parent(), 1);
}

TEST(RoutingState, DataTxUpdatesPathEtx) {
  RoutingState node(5, false, default_cfg());
  node.on_beacon(1, 0.0, 0, 0);
  (void)node.select_parent(0);
  const double before = node.path_etx();
  for (int i = 0; i < 10; ++i) node.on_data_tx(1, 6, true);  // expensive link
  EXPECT_GT(node.path_etx(), before);
}

TEST(RoutingState, BadParentAbandonedForBetter) {
  RoutingConfig cfg;
  RoutingState node(5, false, cfg);
  node.on_beacon(1, 1.0, 0, 0);
  (void)node.select_parent(0);
  ASSERT_EQ(node.parent(), 1);
  // Parent's link deteriorates badly.
  for (int i = 0; i < 20; ++i) node.on_data_tx(1, 8, false);
  node.on_beacon(2, 1.0, 0, 0);
  (void)node.select_parent(0);
  EXPECT_EQ(node.parent(), 2);
}

TEST(RoutingState, StaleNeighborsExpire) {
  RoutingConfig cfg;
  cfg.neighbor_timeout_s = 10.0;
  RoutingState node(5, false, cfg);
  node.on_beacon(1, 0.0, 0, 0);
  node.on_beacon(2, 0.0, 0, /*now=*/0);
  (void)node.select_parent(0);
  // 2 minutes later, neither has beaconed again; the non-parent is dropped.
  (void)node.select_parent(static_cast<SimTime>(120e6));
  const auto known = node.known_neighbors();
  EXPECT_EQ(known.size(), 1u);
  EXPECT_EQ(known[0], node.parent());
}

TEST(RoutingState, FallbackJoinWithoutGradientCandidate) {
  // A node with no route must adopt *some* neighbor even when the gradient
  // rule has no strict-progress candidate.
  RoutingState node(5, false, default_cfg());
  node.on_beacon(7, 42.0, 0, 0);  // terrible but the only option
  EXPECT_TRUE(node.select_parent(0));
  EXPECT_EQ(node.parent(), 7);
}

TEST(RoutingState, NeighborPathEtxQueries) {
  RoutingState node(5, false, default_cfg());
  EXPECT_EQ(node.neighbor_path_etx(3), kInfiniteEtx);
  node.on_beacon(3, 4.5, 0, 0);
  EXPECT_DOUBLE_EQ(node.neighbor_path_etx(3), 4.5);
  EXPECT_DOUBLE_EQ(node.link_etx(99), default_cfg().estimator.initial_etx);
}

TEST(RoutingState, OpportunisticForwarderDefaultsToParent) {
  RoutingState node(5, false, default_cfg());  // fraction 0
  node.on_beacon(1, 0.0, 0, 0);
  node.on_beacon(2, 0.0, 0, 0);
  (void)node.select_parent(0);
  dophy::common::Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(node.select_forwarder(rng), node.parent());
}

TEST(RoutingState, OpportunisticForwarderUsesAlternates) {
  RoutingConfig cfg;
  cfg.opportunistic_fraction = 0.5;
  RoutingState node(5, false, cfg);
  node.on_beacon(1, 0.0, 0, 0);
  node.on_beacon(2, 0.1, 0, 0);  // near-equal alternate
  (void)node.select_parent(0);
  dophy::common::Rng rng(2);
  int parent_hits = 0, alt_hits = 0;
  for (int i = 0; i < 2000; ++i) {
    const NodeId f = node.select_forwarder(rng);
    if (f == node.parent()) ++parent_hits;
    else if (f == 1 || f == 2) ++alt_hits;
    else FAIL() << "forwarder outside candidate set";
  }
  EXPECT_GT(alt_hits, 500);
  EXPECT_GT(parent_hits, 500);
}

TEST(RoutingState, OpportunisticSkipsBadAlternates) {
  RoutingConfig cfg;
  cfg.opportunistic_fraction = 1.0;
  RoutingState node(5, false, cfg);
  node.on_beacon(1, 0.0, 0, 0);
  (void)node.select_parent(0);
  node.on_beacon(2, 40.0, 0, 0);  // way uphill: never a forwarder
  dophy::common::Rng rng(3);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(node.select_forwarder(rng), 1);
}

TEST(RoutingState, IgnoresSelfBeacons) {
  RoutingState node(5, false, default_cfg());
  node.on_beacon(5, 0.0, 0, 0);
  EXPECT_FALSE(node.select_parent(0));
  EXPECT_TRUE(node.known_neighbors().empty());
}

}  // namespace
}  // namespace dophy::net
