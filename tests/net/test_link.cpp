#include "dophy/net/link.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "dophy/common/rng.hpp"

namespace dophy::net {
namespace {

Link make_link(double p, std::uint64_t seed = 1) {
  return Link(LinkKey{1, 2}, std::make_unique<BernoulliLoss>(p),
              dophy::common::Rng(seed));
}

TEST(Link, CountsAttemptsAndLosses) {
  Link link = make_link(0.3);
  for (int i = 0; i < 10000; ++i) (void)link.attempt_data(0);
  EXPECT_EQ(link.data_attempts(), 10000u);
  EXPECT_NEAR(static_cast<double>(link.data_losses()) / 10000.0, 0.3, 0.02);
}

TEST(Link, EmpiricalLossMatchesCounters) {
  Link link = make_link(0.5);
  for (int i = 0; i < 5000; ++i) (void)link.attempt_data(0);
  EXPECT_DOUBLE_EQ(link.empirical_loss(0),
                   static_cast<double>(link.data_losses()) / 5000.0);
}

TEST(Link, NoAttemptsFallsBackToNominal) {
  Link link = make_link(0.25);
  EXPECT_DOUBLE_EQ(link.empirical_loss(0), 0.25);
}

TEST(Link, ControlAttemptsSeparate) {
  Link link = make_link(0.4);
  for (int i = 0; i < 100; ++i) (void)link.attempt_control(0);
  EXPECT_EQ(link.data_attempts(), 0u);
  EXPECT_EQ(link.control_attempts(), 100u);
}

TEST(Link, SnapshotWindowing) {
  Link link = make_link(0.8, 2);
  for (int i = 0; i < 1000; ++i) (void)link.attempt_data(0);
  const auto snap = link.snapshot();
  for (int i = 0; i < 5000; ++i) (void)link.attempt_data(0);
  const double window = link.empirical_loss_since(snap, 0);
  EXPECT_NEAR(window, 0.8, 0.03);
  // Window with no new attempts falls back to nominal.
  const auto snap2 = link.snapshot();
  EXPECT_DOUBLE_EQ(link.empirical_loss_since(snap2, 0), 0.8);
}

TEST(Link, KeyPreserved) {
  Link link = make_link(0.1);
  EXPECT_EQ(link.key().from, 1);
  EXPECT_EQ(link.key().to, 2);
}

TEST(Link, ReplaceLossProcessTakesEffect) {
  Link link = make_link(0.01, 4);
  for (int i = 0; i < 2000; ++i) (void)link.attempt_data(0);
  const auto before = link.snapshot();
  link.replace_loss_process(std::make_unique<BernoulliLoss>(0.7));
  for (int i = 0; i < 5000; ++i) (void)link.attempt_data(0);
  EXPECT_NEAR(link.empirical_loss_since(before, 0), 0.7, 0.03);
  EXPECT_THROW(link.replace_loss_process(nullptr), std::invalid_argument);
}

TEST(Link, AttemptOutcomeConsistentWithCounters) {
  Link link = make_link(0.5, 3);
  std::uint64_t successes = 0;
  for (int i = 0; i < 1000; ++i) successes += link.attempt_data(0);
  EXPECT_EQ(successes + link.data_losses(), link.data_attempts());
}

}  // namespace
}  // namespace dophy::net
