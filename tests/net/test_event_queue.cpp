#include "dophy/net/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "dophy/common/rng.hpp"

namespace dophy::net {
namespace {

/// Pops the earliest entry and runs it (callback entries only).
void pop_and_run(EventQueue& q) {
  const EventQueue::Scheduled entry = q.pop();
  ASSERT_EQ(entry.event.kind, EventKind::kCallback);
  q.run_callback(entry.event);
}

TEST(EventQueue, EmptyStateAndErrors) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_THROW((void)q.next_time(), std::logic_error);
  EXPECT_THROW((void)q.peek(), std::logic_error);
  EXPECT_THROW((void)q.pop(), std::logic_error);
}

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) pop_and_run(q);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) pop_and_run(q);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimePeeksWithoutPopping) {
  EventQueue q;
  q.push(7, [] {});
  EXPECT_EQ(q.next_time(), 7);
  EXPECT_EQ(q.peek().time, 7);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ClearEmptiesAndResetsPushedCount) {
  EventQueue q;
  q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.pushed_count(), 2u);
  q.clear();
  EXPECT_TRUE(q.empty());
  // Network reuse semantics: a cleared queue counts (and numbers sequence
  // tie-breakers) from scratch.
  EXPECT_EQ(q.pushed_count(), 0u);
  q.push(3, [] {});
  EXPECT_EQ(q.pushed_count(), 1u);
  EXPECT_EQ(q.peek().seq, 0u);
}

TEST(EventQueue, TypedEventsCarryPayloadAndOrder) {
  EventQueue q;
  std::vector<NodeId> order;
  const auto record = [](void* target, const Event& ev) {
    static_cast<std::vector<NodeId>*>(target)->push_back(ev.payload.node_ev.node);
  };
  q.push_event(20, Event::node_event(EventKind::kBeaconSend, record, &order, 2));
  q.push_event(10, Event::node_event(EventKind::kPacketGenerate, record, &order, 1));
  q.push_event(10, Event::node_event(EventKind::kBeaconTrigger, record, &order, 3));
  while (!q.empty()) {
    const EventQueue::Scheduled entry = q.pop();
    entry.event.fn(entry.event.target, entry.event);
  }
  EXPECT_EQ(order, (std::vector<NodeId>{1, 3, 2}));
}

TEST(EventQueue, MixedTypedAndCallbackPreserveGlobalFifo) {
  EventQueue q;
  std::vector<int> order;
  const auto record = [](void* target, const Event& ev) {
    static_cast<std::vector<int>*>(target)->push_back(
        static_cast<int>(ev.payload.node_ev.node));
  };
  q.push_event(5, Event::node_event(EventKind::kBeaconSend, record, &order, 0));
  q.push(5, [&order] { order.push_back(1); });
  q.push_event(5, Event::node_event(EventKind::kBeaconSend, record, &order, 2));
  q.push(5, [&order] { order.push_back(3); });
  while (!q.empty()) {
    const EventQueue::Scheduled entry = q.pop();
    if (entry.event.kind == EventKind::kCallback) {
      q.run_callback(entry.event);
    } else {
      entry.event.fn(entry.event.target, entry.event);
    }
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, RandomizedOrderingProperty) {
  dophy::common::Rng rng(7);
  EventQueue q;
  std::vector<std::pair<SimTime, std::uint64_t>> popped;  // (time, seq)
  std::uint64_t seq = 0;
  std::vector<std::pair<SimTime, std::uint64_t>> pushed;
  for (int i = 0; i < 1000; ++i) {
    const SimTime t = static_cast<SimTime>(rng.next_below(100));
    const std::uint64_t s = seq++;
    pushed.emplace_back(t, s);
    q.push(t, [&popped, t, s] { popped.emplace_back(t, s); });
  }
  while (!q.empty()) pop_and_run(q);
  ASSERT_EQ(popped.size(), pushed.size());
  for (std::size_t i = 1; i < popped.size(); ++i) {
    const bool ordered = popped[i - 1].first < popped[i].first ||
                         (popped[i - 1].first == popped[i].first &&
                          popped[i - 1].second < popped[i].second);
    EXPECT_TRUE(ordered) << "at index " << i;
  }
}

// Equal-timestamp FIFO must survive arbitrary interleavings of pushes and
// pops — the sequence tie-breaker is assigned at push time, so later pushes
// at the same timestamp always pop after earlier ones even when pops happen
// in between.
TEST(EventQueue, EqualTimestampFifoUnderInterleavedPushPop) {
  dophy::common::Rng rng(99);
  EventQueue q;
  std::vector<std::uint64_t> popped_seq;
  std::uint64_t pushed = 0;
  constexpr SimTime kT = 42;
  for (int round = 0; round < 200; ++round) {
    const std::size_t burst = 1 + rng.next_below(8);
    for (std::size_t i = 0; i < burst; ++i) {
      const std::uint64_t tag = pushed++;
      q.push(kT, [&popped_seq, tag] { popped_seq.push_back(tag); });
    }
    const std::size_t drains = rng.next_below(burst + 2);
    for (std::size_t i = 0; i < drains && !q.empty(); ++i) pop_and_run(q);
  }
  while (!q.empty()) pop_and_run(q);
  ASSERT_EQ(popped_seq.size(), pushed);
  for (std::size_t i = 0; i < popped_seq.size(); ++i) {
    EXPECT_EQ(popped_seq[i], i) << "FIFO violated at pop " << i;
  }
}

TEST(EventQueue, PushedCountMonotone) {
  EventQueue q;
  q.push(1, [] {});
  q.push(2, [] {});
  { const auto entry = q.pop(); q.run_callback(entry.event); }
  EXPECT_EQ(q.pushed_count(), 2u);
}

TEST(EventQueue, CallbackSlabSlotsAreRecycled) {
  EventQueue q;
  int fired = 0;
  // Interleave pushes and pops at increasing times; the slab should stay at
  // its high-water mark (slot indices recycle through the free list).
  for (int i = 0; i < 100; ++i) {
    q.push(i, [&fired] { ++fired; });
    pop_and_run(q);
  }
  EXPECT_EQ(fired, 100);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pushed_count(), 100u);
}

TEST(EventQueue, ShrinkToFitAfterClearKeepsWorking) {
  EventQueue q;
  for (int i = 0; i < 1000; ++i) q.push(i, [] {});
  q.clear();
  q.shrink_to_fit();
  int fired = 0;
  q.push(1, [&fired] { ++fired; });
  pop_and_run(q);
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace dophy::net
