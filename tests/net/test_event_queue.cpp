#include "dophy/net/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "dophy/common/rng.hpp"

namespace dophy::net {
namespace {

TEST(EventQueue, EmptyStateAndErrors) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_THROW((void)q.next_time(), std::logic_error);
  EXPECT_THROW((void)q.pop(), std::logic_error);
}

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop()();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop()();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimePeeksWithoutPopping) {
  EventQueue q;
  q.push(7, [] {});
  EXPECT_EQ(q.next_time(), 7);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ClearEmpties) {
  EventQueue q;
  q.push(1, [] {});
  q.push(2, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RandomizedOrderingProperty) {
  dophy::common::Rng rng(7);
  EventQueue q;
  std::vector<std::pair<SimTime, std::uint64_t>> popped;  // (time, seq)
  std::uint64_t seq = 0;
  std::vector<std::pair<SimTime, std::uint64_t>> pushed;
  for (int i = 0; i < 1000; ++i) {
    const SimTime t = static_cast<SimTime>(rng.next_below(100));
    const std::uint64_t s = seq++;
    pushed.emplace_back(t, s);
    q.push(t, [&popped, t, s] { popped.emplace_back(t, s); });
  }
  while (!q.empty()) q.pop()();
  ASSERT_EQ(popped.size(), pushed.size());
  for (std::size_t i = 1; i < popped.size(); ++i) {
    const bool ordered = popped[i - 1].first < popped[i].first ||
                         (popped[i - 1].first == popped[i].first &&
                          popped[i - 1].second < popped[i].second);
    EXPECT_TRUE(ordered) << "at index " << i;
  }
}

TEST(EventQueue, PushedCountMonotone) {
  EventQueue q;
  q.push(1, [] {});
  q.push(2, [] {});
  (void)q.pop();
  EXPECT_EQ(q.pushed_count(), 2u);
}

}  // namespace
}  // namespace dophy::net
