#include "dophy/net/pdes/worker_team.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

namespace dophy::net::pdes {
namespace {

TEST(WorkerTeam, RunsEveryJobExactlyOnce) {
  WorkerTeam team(4);
  std::vector<std::atomic<int>> hits(100);
  struct Ctx {
    std::vector<std::atomic<int>>* hits;
  } ctx{&hits};
  team.run(hits.size(), +[](void* c, std::size_t i) {
    (*static_cast<Ctx*>(c)->hits)[i].fetch_add(1, std::memory_order_relaxed);
  }, &ctx);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerTeam, SingleThreadRunsInline) {
  WorkerTeam team(1);
  EXPECT_EQ(team.thread_count(), 1u);
  std::atomic<int> total{0};
  team.run(10, +[](void* c, std::size_t) {
    static_cast<std::atomic<int>*>(c)->fetch_add(1, std::memory_order_relaxed);
  }, &total);
  EXPECT_EQ(total.load(), 10);
}

TEST(WorkerTeam, ZeroJobsReturnsImmediately) {
  WorkerTeam team(3);
  team.run(0, +[](void*, std::size_t) { FAIL() << "must not run"; }, nullptr);
  SUCCEED();
}

TEST(WorkerTeam, ReusableAcrossManyEpochs) {
  // Thousands of epochs exercise the spin/park handoff and the epoch
  // publication chain — the window-loop usage pattern.
  WorkerTeam team(3);
  std::atomic<std::uint64_t> total{0};
  for (int epoch = 0; epoch < 2000; ++epoch) {
    team.run(7, +[](void* c, std::size_t) {
      static_cast<std::atomic<std::uint64_t>*>(c)->fetch_add(1, std::memory_order_relaxed);
    }, &total);
  }
  EXPECT_EQ(total.load(), 7u * 2000u);
}

TEST(WorkerTeam, MoreJobsThanThreads) {
  WorkerTeam team(2);
  std::atomic<int> total{0};
  team.run(1000, +[](void* c, std::size_t) {
    static_cast<std::atomic<int>*>(c)->fetch_add(1, std::memory_order_relaxed);
  }, &total);
  EXPECT_EQ(total.load(), 1000);
}

TEST(WorkerTeam, DestructsCleanlyWithParkedWorkers) {
  // Workers park on the condvar after the spin budget; destruction must wake
  // and join them without a run() ever happening.
  WorkerTeam team(4);
  SUCCEED();
}

}  // namespace
}  // namespace dophy::net::pdes
