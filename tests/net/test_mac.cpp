#include "dophy/net/mac.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "dophy/common/rng.hpp"
#include "dophy/common/stats.hpp"

namespace dophy::net {
namespace {

Link make_link(double p, std::uint64_t seed) {
  return Link(LinkKey{1, 2}, std::make_unique<BernoulliLoss>(p),
              dophy::common::Rng(seed));
}

TEST(ArqMac, PerfectLinkOneAttempt) {
  MacConfig cfg;
  ArqMac mac(cfg);
  Link fwd = make_link(0.0, 1);
  dophy::common::Rng rng(2);
  const auto out = mac.transmit(fwd, nullptr, 0, rng);
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.attempts_to_first_rx, 1u);
  EXPECT_EQ(out.total_attempts, 1u);
  EXPECT_EQ(out.delay, cfg.attempt_duration);
}

TEST(ArqMac, DeadLinkExhaustsBudget) {
  MacConfig cfg;
  cfg.max_attempts = 5;
  ArqMac mac(cfg);
  Link fwd = make_link(1.0, 3);
  dophy::common::Rng rng(4);
  const auto out = mac.transmit(fwd, nullptr, 0, rng);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.total_attempts, 5u);
  EXPECT_EQ(out.delay, 5 * cfg.attempt_duration);
}

TEST(ArqMac, AttemptsToFirstRxIsGeometric) {
  // The distribution of attempts_to_first_rx must be Geometric(1-p)
  // truncated at the budget — this is the statistical foundation of the
  // whole tomography scheme.
  MacConfig cfg;
  cfg.max_attempts = 16;
  cfg.model_ack_loss = false;
  ArqMac mac(cfg);
  const double p = 0.4;
  Link fwd = make_link(p, 5);
  dophy::common::Rng rng(6);

  std::vector<std::uint64_t> hist(17, 0);
  const int n = 100000;
  int delivered = 0;
  for (int i = 0; i < n; ++i) {
    const auto out = mac.transmit(fwd, nullptr, 0, rng);
    if (out.delivered) {
      ++delivered;
      ++hist[out.attempts_to_first_rx];
    }
  }
  // P(T = t) = p^(t-1) (1-p); compare the first few mass points.
  for (std::uint32_t t = 1; t <= 4; ++t) {
    const double expected = std::pow(p, t - 1) * (1 - p);
    const double observed = static_cast<double>(hist[t]) / delivered;
    EXPECT_NEAR(observed, expected, 0.01) << "t=" << t;
  }
}

TEST(ArqMac, AckLossCausesExtraAttemptsNotBias) {
  MacConfig cfg;
  cfg.max_attempts = 16;
  cfg.model_ack_loss = true;
  ArqMac mac(cfg);
  const double p_fwd = 0.3;
  Link fwd = make_link(p_fwd, 7);
  Link rev = make_link(0.3, 8);  // lossy ACK channel
  dophy::common::Rng rng(9);

  dophy::common::RunningStats first_rx, total;
  for (int i = 0; i < 50000; ++i) {
    const auto out = mac.transmit(fwd, &rev, 0, rng);
    if (!out.delivered) continue;
    first_rx.add(out.attempts_to_first_rx);
    total.add(out.total_attempts);
  }
  // attempts_to_first_rx stays geometric in the forward loss only...
  EXPECT_NEAR(first_rx.mean(), 1.0 / (1.0 - p_fwd), 0.03);
  // ...while the sender pays extra attempts for lost ACKs.
  EXPECT_GT(total.mean(), first_rx.mean() + 0.1);
}

TEST(ArqMac, DeliveryProbabilityMatchesArqLaw) {
  MacConfig cfg;
  cfg.max_attempts = 4;
  cfg.model_ack_loss = false;
  ArqMac mac(cfg);
  const double p = 0.5;
  Link fwd = make_link(p, 10);
  dophy::common::Rng rng(11);
  int delivered = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) delivered += mac.transmit(fwd, nullptr, 0, rng).delivered;
  // P(delivered) = 1 - p^m.
  EXPECT_NEAR(static_cast<double>(delivered) / n, 1.0 - std::pow(p, 4), 0.005);
}

TEST(ArqMac, ZeroAttemptBudgetRejected) {
  MacConfig cfg;
  cfg.max_attempts = 0;
  EXPECT_THROW(ArqMac mac(cfg), std::invalid_argument);
}

TEST(ArqMac, DelayProportionalToAttempts) {
  MacConfig cfg;
  cfg.model_ack_loss = false;
  ArqMac mac(cfg);
  Link fwd = make_link(0.6, 12);
  dophy::common::Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const auto out = mac.transmit(fwd, nullptr, 0, rng);
    if (out.delivered) {
      EXPECT_EQ(out.delay,
                static_cast<SimTime>(out.total_attempts) * cfg.attempt_duration);
    }
  }
}

}  // namespace
}  // namespace dophy::net
