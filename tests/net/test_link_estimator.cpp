#include "dophy/net/link_estimator.hpp"

#include <gtest/gtest.h>

namespace dophy::net {
namespace {

TEST(LinkQualityEstimate, StartsAtPrior) {
  LinkEstimatorConfig cfg;
  LinkQualityEstimate est(cfg);
  EXPECT_DOUBLE_EQ(est.etx(), cfg.initial_etx);
  EXPECT_LT(est.beacon_prr(), 0.0);
}

TEST(LinkQualityEstimate, DataSamplesDominate) {
  LinkEstimatorConfig cfg;
  LinkQualityEstimate est(cfg);
  for (int i = 0; i < 20; ++i) est.on_data_tx(2, true);
  EXPECT_NEAR(est.etx(), 2.0, 0.2);
}

TEST(LinkQualityEstimate, FailureChargesPessimistic) {
  LinkEstimatorConfig cfg;
  LinkQualityEstimate est(cfg);
  for (int i = 0; i < 20; ++i) est.on_data_tx(8, false);
  EXPECT_DOUBLE_EQ(est.etx(), cfg.max_etx);  // 2x8 clamped to max
}

TEST(LinkQualityEstimate, EwmaConverges) {
  LinkEstimatorConfig cfg;
  LinkQualityEstimate est(cfg);
  for (int i = 0; i < 10; ++i) est.on_data_tx(1, true);
  const double good = est.etx();
  for (int i = 0; i < 100; ++i) est.on_data_tx(5, true);
  EXPECT_GT(est.etx(), good + 2.0);
  EXPECT_NEAR(est.etx(), 5.0, 0.5);
}

TEST(LinkQualityEstimate, BeaconPrrFromSeqGaps) {
  LinkEstimatorConfig cfg;
  LinkQualityEstimate est(cfg);
  // Every beacon received: PRR -> 1.
  for (std::uint16_t s = 0; s < 30; ++s) est.on_beacon(s);
  EXPECT_NEAR(est.beacon_prr(), 1.0, 0.05);
}

TEST(LinkQualityEstimate, BeaconLossLowersPrr) {
  LinkEstimatorConfig cfg;
  LinkQualityEstimate est(cfg);
  // Receive every other beacon: PRR ~ 0.5.
  for (std::uint16_t s = 0; s < 60; s = static_cast<std::uint16_t>(s + 2)) est.on_beacon(s);
  EXPECT_NEAR(est.beacon_prr(), 0.5, 0.12);
}

TEST(LinkQualityEstimate, BeaconEtxUsedBeforeData) {
  LinkEstimatorConfig cfg;
  LinkQualityEstimate est(cfg);
  for (std::uint16_t s = 0; s < 40; s = static_cast<std::uint16_t>(s + 2)) est.on_beacon(s);
  // PRR ~ 0.5 => ETX ~ 2 from beacons alone.
  EXPECT_NEAR(est.etx(), 2.0, 0.6);
}

TEST(LinkQualityEstimate, SeqWraparoundResets) {
  LinkEstimatorConfig cfg;
  LinkQualityEstimate est(cfg);
  est.on_beacon(65530);
  est.on_beacon(200);  // looks like a >100 jump: restart
  EXPECT_NEAR(est.beacon_prr(), 1.0, 1e-9);
}

TEST(LinkQualityEstimate, EtxCappedAtMax) {
  LinkEstimatorConfig cfg;
  cfg.max_etx = 10.0;
  LinkQualityEstimate est(cfg);
  for (int i = 0; i < 50; ++i) est.on_data_tx(30, true);
  EXPECT_LE(est.etx(), 10.0);
}

}  // namespace
}  // namespace dophy::net
