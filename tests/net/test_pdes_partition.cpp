#include "dophy/net/pdes/partition.hpp"

#include <gtest/gtest.h>

#include <set>

#include "dophy/common/rng.hpp"
#include "dophy/net/topology.hpp"

namespace dophy::net::pdes {
namespace {

Topology make_topology(std::size_t nodes, std::uint64_t seed = 7) {
  TopologyConfig cfg;
  cfg.node_count = nodes;
  cfg.field_size = 150.0;
  cfg.comm_range = 40.0;
  dophy::common::Rng rng(seed);
  return Topology::generate(cfg, rng);
}

TEST(Partition, SingleLpIsTrivial) {
  const Topology topo = make_topology(40);
  const Partition p = build_partition(topo, 1);
  EXPECT_EQ(p.lp_count, 1u);
  ASSERT_EQ(p.lp_of.size(), topo.node_count());
  for (const auto lp : p.lp_of) EXPECT_EQ(lp, 0);
  EXPECT_EQ(p.cut_edges, 0u);
  EXPECT_TRUE(p.boundary_nodes.empty());
  EXPECT_EQ(p.members[0].size(), topo.node_count());
}

TEST(Partition, EveryNodeAssignedExactlyOnce) {
  const Topology topo = make_topology(60);
  const Partition p = build_partition(topo, 4);
  ASSERT_EQ(p.lp_count, 4u);
  std::set<NodeId> seen;
  for (std::uint32_t lp = 0; lp < p.lp_count; ++lp) {
    for (const NodeId id : p.members[lp]) {
      EXPECT_TRUE(seen.insert(id).second) << "node " << id << " in two LPs";
      EXPECT_EQ(p.lp_of[id], lp);
    }
  }
  EXPECT_EQ(seen.size(), topo.node_count());
}

TEST(Partition, SinkSeedsLpZero) {
  const Topology topo = make_topology(50);
  const Partition p = build_partition(topo, 4);
  EXPECT_EQ(p.lp_of[kSinkId], 0);
}

TEST(Partition, BoundaryAndCutEdgesConsistent) {
  const Topology topo = make_topology(60);
  const Partition p = build_partition(topo, 4);
  std::size_t cut = 0;
  std::set<NodeId> boundary;
  for (std::size_t u = 0; u < topo.node_count(); ++u) {
    for (const NodeId v : topo.neighbors(static_cast<NodeId>(u))) {
      if (p.lp_of[u] == p.lp_of[v]) continue;
      boundary.insert(static_cast<NodeId>(u));
      if (v > u) ++cut;  // count each undirected pair once
    }
  }
  EXPECT_EQ(p.cut_edges, cut);
  EXPECT_EQ(std::set<NodeId>(p.boundary_nodes.begin(), p.boundary_nodes.end()), boundary);
}

TEST(Partition, RoughlyBalanced) {
  const Topology topo = make_topology(120);
  const Partition p = build_partition(topo, 4);
  // Greedy BFS growth with round-robin frontiers: no LP should end up empty,
  // and the largest should stay within a loose factor of ideal.
  for (std::uint32_t lp = 0; lp < p.lp_count; ++lp) {
    EXPECT_FALSE(p.members[lp].empty()) << "LP " << lp << " empty";
  }
  EXPECT_LE(p.largest_lp(), topo.node_count());
  EXPECT_LE(p.largest_lp(), 3 * topo.node_count() / p.lp_count);
}

TEST(Partition, DeterministicAcrossCalls) {
  const Topology topo = make_topology(80);
  const Partition a = build_partition(topo, 8);
  const Partition b = build_partition(topo, 8);
  EXPECT_EQ(a.lp_of, b.lp_of);
  EXPECT_EQ(a.cut_edges, b.cut_edges);
  EXPECT_EQ(a.boundary_nodes, b.boundary_nodes);
}

TEST(Partition, MoreLpsThanNodesClampsGracefully) {
  TopologyConfig cfg;
  cfg.node_count = 12;
  cfg.field_size = 60.0;
  cfg.comm_range = 40.0;
  dophy::common::Rng rng(7);
  const Topology topo = Topology::generate(cfg, rng);
  const Partition p = build_partition(topo, 8);
  std::size_t assigned = 0;
  for (const auto& m : p.members) assigned += m.size();
  EXPECT_EQ(assigned, topo.node_count());
}

}  // namespace
}  // namespace dophy::net::pdes
