#include "dophy/net/loss_model.hpp"

#include <gtest/gtest.h>

#include "dophy/common/rng.hpp"

namespace dophy::net {
namespace {

TEST(BernoulliLoss, EmpiricalRateMatches) {
  dophy::common::Rng rng(1);
  for (const double p : {0.05, 0.3, 0.7}) {
    BernoulliLoss loss(p);
    int lost = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) lost += loss.attempt_lost(0, rng);
    EXPECT_NEAR(static_cast<double>(lost) / n, p, 0.01);
    EXPECT_DOUBLE_EQ(loss.nominal_loss(123456), p);
  }
}

TEST(BernoulliLoss, RejectsOutOfRange) {
  EXPECT_THROW(BernoulliLoss(-0.1), std::invalid_argument);
  EXPECT_THROW(BernoulliLoss(1.1), std::invalid_argument);
}

TEST(GilbertElliott, StationaryLossMatchesNominal) {
  dophy::common::Rng seed_rng(2);
  GilbertElliottLoss::Params params;
  params.loss_good = 0.05;
  params.loss_bad = 0.6;
  params.mean_good_duration_s = 10.0;
  params.mean_bad_duration_s = 5.0;
  GilbertElliottLoss loss(params, seed_rng);

  dophy::common::Rng rng(3);
  int lost = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    // One attempt every 100ms: many sojourns are covered.
    lost += loss.attempt_lost(static_cast<SimTime>(i) * 100 * kMillisecond, rng);
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, loss.nominal_loss(0), 0.03);
}

TEST(GilbertElliott, BurstsCorrelateLosses) {
  dophy::common::Rng seed_rng(4);
  GilbertElliottLoss::Params params;
  params.loss_good = 0.01;
  params.loss_bad = 0.9;
  params.mean_good_duration_s = 50.0;
  params.mean_bad_duration_s = 50.0;
  GilbertElliottLoss loss(params, seed_rng);

  dophy::common::Rng rng(5);
  // Count P(loss | previous loss) vs unconditional P(loss): burstiness means
  // the conditional is much larger.
  int losses = 0, pairs_ll = 0, prev = 0, total = 0;
  for (int i = 0; i < 300000; ++i) {
    const int cur = loss.attempt_lost(static_cast<SimTime>(i) * 10 * kMillisecond, rng);
    losses += cur;
    pairs_ll += (cur && prev);
    prev = cur;
    ++total;
  }
  const double p_loss = static_cast<double>(losses) / total;
  const double p_ll = losses > 0 ? static_cast<double>(pairs_ll) / losses : 0.0;
  EXPECT_GT(p_ll, 1.5 * p_loss);
}

TEST(GilbertElliott, RejectsNonPositiveSojourns) {
  dophy::common::Rng rng(6);
  GilbertElliottLoss::Params params;
  params.mean_good_duration_s = 0.0;
  EXPECT_THROW(GilbertElliottLoss(params, rng), std::invalid_argument);
}

TEST(DriftingLoss, SinusoidMovesNominal) {
  dophy::common::Rng rng(7);
  DriftingLoss::Params params;
  params.base = 0.3;
  params.amplitude = 0.2;
  params.period_s = 100.0;
  params.phase = 0.0;
  DriftingLoss loss(params, rng);
  const double at_zero = loss.nominal_loss(0);
  const double at_quarter = loss.nominal_loss(static_cast<SimTime>(25e6));
  EXPECT_NEAR(at_zero, 0.3, 1e-9);
  EXPECT_NEAR(at_quarter, 0.5, 1e-6);
}

TEST(DriftingLoss, NominalStaysClamped) {
  dophy::common::Rng rng(8);
  DriftingLoss::Params params;
  params.base = 0.9;
  params.amplitude = 0.5;
  params.period_s = 10.0;
  DriftingLoss loss(params, rng);
  for (int i = 0; i < 100; ++i) {
    const double p = loss.nominal_loss(static_cast<SimTime>(i) * kSecond);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 0.95);
  }
}

TEST(DriftingLoss, ShuffleChangesBase) {
  dophy::common::Rng seed_rng(9);
  DriftingLoss::Params params;
  params.base = 0.3;
  params.amplitude = 0.0;
  params.shuffle_interval_s = 10.0;
  params.shuffle_spread = 0.25;
  DriftingLoss loss(params, seed_rng);

  dophy::common::Rng rng(10);
  const double before = loss.nominal_loss(0);
  // Force shuffles by attempting far in the future.
  (void)loss.attempt_lost(static_cast<SimTime>(1000e6), rng);
  const double after = loss.nominal_loss(static_cast<SimTime>(1000e6));
  EXPECT_NE(before, after);
}

TEST(DriftingLoss, EmpiricalTracksNominal) {
  dophy::common::Rng seed_rng(11);
  DriftingLoss::Params params;
  params.base = 0.4;
  params.amplitude = 0.0;
  DriftingLoss loss(params, seed_rng);
  dophy::common::Rng rng(12);
  int lost = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) lost += loss.attempt_lost(0, rng);
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.4, 0.01);
}

TEST(ScriptedLoss, FollowsSchedule) {
  ScriptedLoss loss({{0, 0.1}, {10 * kSecond, 0.5}, {20 * kSecond, 0.2}});
  EXPECT_NEAR(loss.nominal_loss(0), 0.1, 1e-12);
  EXPECT_NEAR(loss.nominal_loss(9 * kSecond), 0.1, 1e-12);
  EXPECT_NEAR(loss.nominal_loss(10 * kSecond), 0.5, 1e-12);
  EXPECT_NEAR(loss.nominal_loss(15 * kSecond), 0.5, 1e-12);
  EXPECT_NEAR(loss.nominal_loss(1000 * kSecond), 0.2, 1e-12);
}

TEST(ScriptedLoss, EmpiricalMatchesStep) {
  ScriptedLoss loss({{0, 0.05}, {kSecond, 0.6}});
  dophy::common::Rng rng(20);
  int lost = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) lost += loss.attempt_lost(2 * kSecond, rng);
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.6, 0.02);
}

TEST(ScriptedLoss, RejectsBadSchedules) {
  EXPECT_THROW(ScriptedLoss({}), std::invalid_argument);
  EXPECT_THROW(ScriptedLoss({{10, 0.1}, {5, 0.2}}), std::invalid_argument);
}

TEST(DistanceLoss, MonotoneInDistance) {
  double prev = 0.0;
  for (double d = 0.0; d <= 50.0; d += 5.0) {
    const double p = distance_loss(d, 40.0, 0.0);
    EXPECT_GE(p, prev - 1e-12);
    prev = p;
  }
}

TEST(DistanceLoss, NearLinksGoodFarLinksBad) {
  EXPECT_LT(distance_loss(5.0, 40.0, 0.0), 0.1);
  EXPECT_GT(distance_loss(40.0, 40.0, 0.0), 0.35);
}

TEST(DistanceLoss, ClampedToValidRange) {
  EXPECT_GE(distance_loss(0.0, 40.0, -1.0), 0.0);
  EXPECT_LE(distance_loss(100.0, 40.0, 1.0), 0.95);
}

}  // namespace
}  // namespace dophy::net
