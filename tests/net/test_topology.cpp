#include "dophy/net/topology.hpp"

#include <gtest/gtest.h>

#include "dophy/common/rng.hpp"

namespace dophy::net {
namespace {

TopologyConfig small_config() {
  TopologyConfig cfg;
  cfg.node_count = 50;
  cfg.field_size = 120.0;
  cfg.comm_range = 40.0;
  return cfg;
}

TEST(Topology, GeneratedConnected) {
  dophy::common::Rng rng(1);
  const auto topo = Topology::generate(small_config(), rng);
  EXPECT_TRUE(topo.is_connected());
  EXPECT_EQ(topo.node_count(), 50u);
}

TEST(Topology, SinkPlacementCorner) {
  dophy::common::Rng rng(2);
  auto cfg = small_config();
  cfg.sink_placement = SinkPlacement::kCorner;
  const auto topo = Topology::generate(cfg, rng);
  EXPECT_DOUBLE_EQ(topo.position(kSinkId).x, 0.0);
  EXPECT_DOUBLE_EQ(topo.position(kSinkId).y, 0.0);
}

TEST(Topology, SinkPlacementCenter) {
  dophy::common::Rng rng(3);
  auto cfg = small_config();
  cfg.sink_placement = SinkPlacement::kCenter;
  const auto topo = Topology::generate(cfg, rng);
  EXPECT_DOUBLE_EQ(topo.position(kSinkId).x, cfg.field_size / 2.0);
}

TEST(Topology, NeighborsWithinRange) {
  dophy::common::Rng rng(4);
  const auto topo = Topology::generate(small_config(), rng);
  for (std::size_t u = 0; u < topo.node_count(); ++u) {
    for (const NodeId v : topo.neighbors(static_cast<NodeId>(u))) {
      EXPECT_LE(topo.distance(static_cast<NodeId>(u), v), topo.comm_range());
      EXPECT_NE(static_cast<NodeId>(u), v);
    }
  }
}

TEST(Topology, NeighborSymmetry) {
  dophy::common::Rng rng(5);
  const auto topo = Topology::generate(small_config(), rng);
  for (std::size_t u = 0; u < topo.node_count(); ++u) {
    for (const NodeId v : topo.neighbors(static_cast<NodeId>(u))) {
      EXPECT_TRUE(topo.are_neighbors(v, static_cast<NodeId>(u)));
    }
  }
}

TEST(Topology, HopsToSinkMonotoneAcrossEdges) {
  dophy::common::Rng rng(6);
  const auto topo = Topology::generate(small_config(), rng);
  const auto hops = topo.hops_to_sink();
  EXPECT_EQ(hops[kSinkId], 0);
  for (std::size_t u = 0; u < topo.node_count(); ++u) {
    for (const NodeId v : topo.neighbors(static_cast<NodeId>(u))) {
      EXPECT_LE(static_cast<int>(hops[u]), hops[v] + 1);
    }
  }
}

TEST(Topology, DirectedLinksBothDirections) {
  dophy::common::Rng rng(7);
  const auto topo = Topology::generate(small_config(), rng);
  const auto links = topo.directed_links();
  std::size_t expected = 0;
  for (std::size_t u = 0; u < topo.node_count(); ++u) {
    expected += topo.neighbors(static_cast<NodeId>(u)).size();
  }
  EXPECT_EQ(links.size(), expected);
  for (const auto& key : links) {
    EXPECT_TRUE(topo.are_neighbors(key.from, key.to));
  }
}

TEST(Topology, GridLayoutConnected) {
  dophy::common::Rng rng(8);
  auto cfg = small_config();
  cfg.layout = Layout::kGrid;
  cfg.node_count = 49;
  const auto topo = Topology::generate(cfg, rng);
  EXPECT_TRUE(topo.is_connected());
}

TEST(Topology, ImpossibleConfigThrows) {
  dophy::common::Rng rng(9);
  TopologyConfig cfg;
  cfg.node_count = 100;
  cfg.field_size = 10000.0;  // hopelessly sparse
  cfg.comm_range = 5.0;
  cfg.max_generation_attempts = 3;
  EXPECT_THROW((void)Topology::generate(cfg, rng), std::runtime_error);
}

TEST(Topology, InvalidArgsRejected) {
  dophy::common::Rng rng(10);
  TopologyConfig cfg;
  cfg.node_count = 1;
  EXPECT_THROW((void)Topology::generate(cfg, rng), std::invalid_argument);
  cfg = small_config();
  cfg.comm_range = 0.0;
  EXPECT_THROW((void)Topology::generate(cfg, rng), std::invalid_argument);
}

TEST(Topology, DeterministicForSeed) {
  dophy::common::Rng rng_a(42), rng_b(42);
  const auto a = Topology::generate(small_config(), rng_a);
  const auto b = Topology::generate(small_config(), rng_b);
  for (std::size_t i = 0; i < a.node_count(); ++i) {
    EXPECT_DOUBLE_EQ(a.position(static_cast<NodeId>(i)).x,
                     b.position(static_cast<NodeId>(i)).x);
    EXPECT_DOUBLE_EQ(a.position(static_cast<NodeId>(i)).y,
                     b.position(static_cast<NodeId>(i)).y);
  }
}

TEST(LinkKey, PackedAndOrdering) {
  const LinkKey a{1, 2};
  const LinkKey b{1, 3};
  const LinkKey c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a.packed(), 0x00010002u);
  EXPECT_EQ(LinkKeyHash{}(a), LinkKeyHash{}(LinkKey{1, 2}));
}

}  // namespace
}  // namespace dophy::net
