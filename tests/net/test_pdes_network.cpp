// Multi-LP engine behavior at unit scale: thread-count invariance on one
// topology, barrier-hook timing, and parallel-vs-serial sanity.  The full
// fuzzed differential campaign lives in tests/pdes/ (ctest -L pdes).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dophy/check/ground_truth.hpp"
#include "dophy/net/network.hpp"

namespace dophy::net {
namespace {

NetworkConfig pdes_config(std::uint64_t seed, std::size_t lp_count, std::size_t threads) {
  NetworkConfig cfg;
  cfg.topology.node_count = 40;
  cfg.topology.field_size = 140.0;
  cfg.topology.comm_range = 40.0;
  cfg.traffic.data_interval_s = 4.0;
  cfg.traffic.start_delay_s = 15.0;
  cfg.seed = seed;
  cfg.collect_outcomes = false;
  cfg.pdes.lp_count = lp_count;
  cfg.pdes.threads = threads;
  return cfg;
}

/// Order-independent run ledger fed from observer callbacks; two runs that
/// executed the same simulation produce byte-identical ledgers regardless of
/// which thread ran which LP.
struct LedgerObserver final : NetworkObserver {
  dophy::check::GroundTruth ledger;
  void on_generated(const Packet&, SimTime) override { ledger.record_generated(); }
  void on_transmission(NodeId sender, NodeId receiver, std::uint32_t attempts,
                       std::uint32_t first_rx, bool delivered, bool channel_used,
                       SimTime) override {
    if (channel_used) {
      ledger.record_exchange(LinkKey{sender, receiver}, attempts, first_rx, delivered);
    }
  }
  void on_arrival(const Packet&, NodeId receiver, NodeId, std::uint64_t dedupe_key, bool,
                  SimTime) override {
    ledger.record_arrival(receiver, dedupe_key);
  }
  void on_parent_change(NodeId, SimTime) override {}
  void on_finished(const Packet&, PacketFate fate, SimTime) override {
    ledger.record_finished(fate);
  }
};

struct RunDigest {
  dophy::check::GroundTruth ledger;
  NetworkStats stats;
  std::uint64_t executed = 0;
  std::uint64_t windows = 0;
  std::uint64_t remote_msgs = 0;
  std::uint64_t traced_delivered = 0;
  std::uint64_t traced_dropped = 0;
  double latency_mean = 0.0;
};

RunDigest run_once(const NetworkConfig& cfg, double seconds) {
  Network net(cfg);
  LedgerObserver obs;
  net.set_observer(&obs);
  net.run_for(seconds);
  RunDigest d;
  d.ledger = std::move(obs.ledger);
  d.stats = net.stats();
  d.executed = net.executed_events();
  d.windows = net.window_count();
  d.remote_msgs = net.remote_message_count();
  auto& traces = net.traces();
  d.traced_delivered = traces.delivered_count();
  d.traced_dropped = traces.dropped_count();
  d.latency_mean = traces.latency().count() > 0 ? traces.latency().mean() : 0.0;
  return d;
}

void expect_identical(const RunDigest& a, const RunDigest& b) {
  EXPECT_EQ(a.ledger.generated(), b.ledger.generated());
  EXPECT_EQ(a.ledger.finished(), b.ledger.finished());
  EXPECT_EQ(a.ledger.total_attempts(), b.ledger.total_attempts());
  for (int fate = 0; fate < 5; ++fate) {
    EXPECT_EQ(a.ledger.fate_count(static_cast<PacketFate>(fate)),
              b.ledger.fate_count(static_cast<PacketFate>(fate)))
        << "fate " << fate;
  }
  ASSERT_EQ(a.ledger.links().size(), b.ledger.links().size());
  for (const auto& [key, tally] : a.ledger.links()) {
    const auto* other = b.ledger.find_link(key);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(tally.attempts, other->attempts);
    EXPECT_EQ(tally.exchanges, other->exchanges);
    EXPECT_EQ(tally.failed_exchanges, other->failed_exchanges);
    EXPECT_EQ(tally.min_losses, other->min_losses);
    EXPECT_EQ(tally.max_losses, other->max_losses);
  }
  EXPECT_EQ(a.stats.packets_generated, b.stats.packets_generated);
  EXPECT_EQ(a.stats.packets_delivered, b.stats.packets_delivered);
  EXPECT_EQ(a.stats.dropped_retries, b.stats.dropped_retries);
  EXPECT_EQ(a.stats.dropped_noroute, b.stats.dropped_noroute);
  EXPECT_EQ(a.stats.dropped_ttl, b.stats.dropped_ttl);
  EXPECT_EQ(a.stats.dropped_queue, b.stats.dropped_queue);
  EXPECT_EQ(a.stats.data_tx_attempts, b.stats.data_tx_attempts);
  EXPECT_EQ(a.stats.data_rx_frames, b.stats.data_rx_frames);
  EXPECT_EQ(a.stats.control_rx_frames, b.stats.control_rx_frames);
  EXPECT_EQ(a.stats.beacons_sent, b.stats.beacons_sent);
  EXPECT_EQ(a.stats.parent_changes, b.stats.parent_changes);
  EXPECT_EQ(a.stats.node_failures, b.stats.node_failures);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.remote_msgs, b.remote_msgs);
  EXPECT_EQ(a.traced_delivered, b.traced_delivered);
  EXPECT_EQ(a.traced_dropped, b.traced_dropped);
  EXPECT_DOUBLE_EQ(a.latency_mean, b.latency_mean);
}

TEST(PdesNetwork, ResultsIndependentOfThreadCount) {
  const RunDigest serial_lp = run_once(pdes_config(11, 4, 1), 120.0);
  const RunDigest two = run_once(pdes_config(11, 4, 2), 120.0);
  const RunDigest four = run_once(pdes_config(11, 4, 4), 120.0);
  expect_identical(serial_lp, two);
  expect_identical(serial_lp, four);
}

TEST(PdesNetwork, ParallelEngineActuallyEngages) {
  Network net(pdes_config(12, 4, 2));
  EXPECT_EQ(net.lp_count(), 4u);
  EXPECT_GT(net.lookahead(), 0);
  net.run_for(120.0);
  EXPECT_GT(net.window_count(), 0u);
  EXPECT_GT(net.remote_message_count(), 0u);  // cut edges must carry traffic
  EXPECT_GT(net.stats().packets_delivered, 0u);
}

TEST(PdesNetwork, DeliveryComparableToSerialEngine) {
  // The cut-edge semantics (lookahead-late beacons, shadow ACK channels) are
  // a documented approximation: parallel runs are statistically, not
  // bit-wise, equivalent to the serial engine.
  const RunDigest serial = run_once(pdes_config(13, 1, 1), 300.0);
  const RunDigest pdes = run_once(pdes_config(13, 4, 2), 300.0);
  ASSERT_GT(serial.stats.packets_generated, 0u);
  ASSERT_GT(pdes.stats.packets_generated, 0u);
  const double dr_serial = serial.stats.delivery_ratio();
  const double dr_pdes = pdes.stats.delivery_ratio();
  EXPECT_LT(std::abs(dr_serial - dr_pdes), 0.15)
      << "serial " << dr_serial << " vs pdes " << dr_pdes;
}

TEST(PdesNetwork, BarrierHooksFireAtExactDueTimes) {
  NetworkConfig cfg = pdes_config(14, 4, 2);
  Network net(cfg);
  std::vector<SimTime> ticks;
  net.add_periodic(10.0, [&](SimTime now) { ticks.push_back(now); });
  SimTime oneshot_at = -1;
  net.schedule_global_in(25 * SimTime{1000000}, [&] { oneshot_at = net.sim().now(); });
  net.run_for(95.0);
  ASSERT_EQ(ticks.size(), 9u);
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    EXPECT_EQ(ticks[i], static_cast<SimTime>((i + 1) * 10) * SimTime{1000000});
  }
  EXPECT_EQ(oneshot_at, 25 * SimTime{1000000});
}

TEST(PdesNetwork, SerialModeIgnoresPdesMachinery) {
  Network net(pdes_config(15, 1, 4));
  net.run_for(60.0);
  EXPECT_EQ(net.lp_count(), 1u);
  EXPECT_EQ(net.window_count(), 0u);
  EXPECT_EQ(net.remote_message_count(), 0u);
  EXPECT_EQ(net.executed_events(), net.sim().executed_count());
}

}  // namespace
}  // namespace dophy::net
