#include "dophy/net/network.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dophy::net {
namespace {

NetworkConfig small_config(std::uint64_t seed = 1) {
  NetworkConfig cfg;
  cfg.topology.node_count = 30;
  cfg.topology.field_size = 100.0;
  cfg.topology.comm_range = 40.0;
  cfg.traffic.data_interval_s = 5.0;
  cfg.traffic.start_delay_s = 20.0;
  cfg.seed = seed;
  return cfg;
}

TEST(Network, BuildsLinksForEveryNeighborPair) {
  Network net(small_config());
  const auto& topo = net.topology();
  for (std::size_t u = 0; u < topo.node_count(); ++u) {
    for (const NodeId v : topo.neighbors(static_cast<NodeId>(u))) {
      EXPECT_NE(net.find_link(static_cast<NodeId>(u), v), nullptr);
      EXPECT_NE(net.find_link(v, static_cast<NodeId>(u)), nullptr);
    }
  }
  EXPECT_THROW((void)net.link(0, 999), std::out_of_range);
}

TEST(Network, RoutingConvergesDuringWarmup) {
  Network net(small_config(2));
  net.run_for(120.0);
  std::size_t routed = 0;
  for (std::size_t i = 1; i < net.node_count(); ++i) {
    routed += net.node(static_cast<NodeId>(i)).routing().has_route();
  }
  EXPECT_GE(routed, net.node_count() - 2);  // nearly everyone joined
}

TEST(Network, RoutingTreeIsLoopFreeAfterConvergence) {
  Network net(small_config(3));
  net.run_for(300.0);
  // Follow parent pointers from every node; must reach the sink.
  for (std::size_t i = 1; i < net.node_count(); ++i) {
    NodeId cur = static_cast<NodeId>(i);
    std::set<NodeId> visited;
    while (cur != kSinkId) {
      ASSERT_TRUE(visited.insert(cur).second) << "routing loop at node " << cur;
      const NodeId parent = net.node(cur).routing().parent();
      ASSERT_NE(parent, kInvalidNode) << "node " << cur << " routeless";
      cur = parent;
    }
  }
}

TEST(Network, HighDeliveryWithArq) {
  Network net(small_config(4));
  net.run_for(600.0);
  const auto stats = net.stats();
  EXPECT_GT(stats.packets_generated, 1000u);
  EXPECT_GT(stats.delivery_ratio(), 0.9);
}

TEST(Network, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    Network net(small_config(seed));
    net.run_for(300.0);
    return net.stats();
  };
  const auto a = run(7);
  const auto b = run(7);
  EXPECT_EQ(a.packets_generated, b.packets_generated);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.data_tx_attempts, b.data_tx_attempts);
  EXPECT_EQ(a.parent_changes, b.parent_changes);
  const auto c = run(8);
  EXPECT_NE(a.data_tx_attempts, c.data_tx_attempts);
}

TEST(Network, TrueHopsChainFromOriginToSink) {
  auto cfg = small_config(5);
  Network net(cfg);
  net.run_for(300.0);
  std::size_t checked = 0;
  for (const auto& outcome : net.traces().outcomes()) {
    if (outcome.fate != PacketFate::kDelivered) continue;
    const auto& hops = outcome.packet.true_hops;
    ASSERT_FALSE(hops.empty());
    EXPECT_EQ(hops.front().sender, outcome.packet.origin);
    EXPECT_EQ(hops.back().receiver, kSinkId);
    for (std::size_t h = 1; h < hops.size(); ++h) {
      EXPECT_EQ(hops[h].sender, hops[h - 1].receiver);
    }
    for (const auto& hop : hops) {
      EXPECT_GE(hop.attempts_to_first_rx, 1u);
      EXPECT_LE(hop.attempts_to_first_rx, cfg.mac.max_attempts);
    }
    ++checked;
  }
  EXPECT_GT(checked, 500u);
}

TEST(Network, PerOriginTalliesConsistent) {
  Network net(small_config(6));
  net.run_for(400.0);
  const auto& per_origin = net.traces().per_origin();
  std::uint64_t generated = 0, delivered = 0;
  for (const auto& tally : per_origin) {
    EXPECT_LE(tally.delivered, tally.generated);
    generated += tally.generated;
    delivered += tally.delivered;
  }
  // Packets still queued/in flight at run end have not finished, so the
  // trace may lag the generation counter by at most the total queue capacity.
  EXPECT_LE(generated, net.stats().packets_generated);
  const std::uint64_t capacity =
      net.node_count() * (net.config().traffic.queue_capacity + 1);
  EXPECT_GE(generated + capacity, net.stats().packets_generated);
  EXPECT_EQ(delivered, net.stats().packets_delivered);
}

TEST(Network, BeaconsFlow) {
  Network net(small_config(7));
  net.run_for(100.0);
  EXPECT_GT(net.stats().beacons_sent, 100u);
}

TEST(Network, FloodReachesEveryNodeWithDepthDelay) {
  Network net(small_config(8));
  net.run_for(100.0);
  std::set<NodeId> installed;
  std::vector<SimTime> times;
  net.flood_from_sink(40, [&](NodeId node, SimTime at) {
    installed.insert(node);
    times.push_back(at);
  });
  net.run_for(30.0);
  EXPECT_EQ(installed.size(), net.node_count() - 1);
  EXPECT_EQ(net.stats().control_flood_bytes, 40 * net.node_count());
  for (const SimTime t : times) EXPECT_GT(t, 100.0 * 1e6);
}

TEST(Network, PeriodicHookFires) {
  Network net(small_config(9));
  int fires = 0;
  net.add_periodic(10.0, [&](SimTime) { ++fires; });
  net.run_for(95.0);
  EXPECT_EQ(fires, 9);
}

TEST(Network, MeasurementAirBytesZeroWithoutInstrumentation) {
  Network net(small_config(10));
  net.run_for(200.0);
  EXPECT_EQ(net.stats().measurement_air_bytes, 0u);
}

TEST(Network, GilbertElliottConfigRuns) {
  auto cfg = small_config(11);
  cfg.loss.kind = LossConfig::Kind::kGilbertElliott;
  Network net(cfg);
  net.run_for(900.0);
  // Bursty bad states (loss up to 4x the base) legitimately dent delivery;
  // the network must still move a majority of traffic once converged.
  EXPECT_GT(net.stats().delivery_ratio(), 0.5);
  EXPECT_GT(net.stats().packets_delivered, 1500u);
}

TEST(Network, ChurnKillsAndRevivesNodes) {
  auto cfg = small_config(20);
  cfg.churn.enabled = true;
  cfg.churn.churn_fraction = 0.4;
  cfg.churn.mean_up_s = 120.0;
  cfg.churn.mean_down_s = 30.0;
  Network net(cfg);
  net.run_for(1200.0);
  const auto stats = net.stats();
  EXPECT_GT(stats.node_failures, 5u);
  // Traffic keeps flowing around failures.
  EXPECT_GT(stats.delivery_ratio(), 0.6);
  EXPECT_GT(stats.packets_delivered, 1000u);
}

TEST(Network, ChurnDisabledByDefault) {
  Network net(small_config(21));
  net.run_for(600.0);
  EXPECT_EQ(net.stats().node_failures, 0u);
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    EXPECT_TRUE(net.node(static_cast<NodeId>(i)).alive());
  }
}

TEST(Network, TriggeredBeaconsCoalesce) {
  Network net(small_config(22));
  net.run_for(60.0);
  const auto before = net.stats().beacons_sent;
  // Many triggers in one instant must produce one extra beacon per node.
  for (int i = 0; i < 10; ++i) net.trigger_beacon(5);
  net.run_for(1.0);
  const auto after = net.stats().beacons_sent;
  EXPECT_LE(after - before, 3u);  // the coalesced trigger (+ maybe periodic)
}

TEST(Network, DriftingConfigCausesParentChurn) {
  auto base = small_config(12);
  Network net_static(base);
  net_static.run_for(900.0);

  auto dynamic_cfg = small_config(12);
  dynamic_cfg.loss.kind = LossConfig::Kind::kDrifting;
  dynamic_cfg.loss.drift_shuffle_interval_s = 120.0;
  dynamic_cfg.loss.drift_shuffle_spread = 0.2;
  Network net_dynamic(dynamic_cfg);
  net_dynamic.run_for(900.0);

  EXPECT_GT(net_dynamic.stats().parent_changes, net_static.stats().parent_changes);
}

// Regression: HopRecord::total_attempts once copied attempts_to_first_rx,
// erasing every retransmission that followed a lost ACK.  Pin the repaired
// semantics: total >= first-rx always, with strict inequality occurring on
// real lossy runs (the receiver heard an early frame but the ACK was lost,
// so the sender kept retrying).
TEST(Network, HopRecordsCountRetriesPastFirstReception) {
  Network net(small_config(5));
  std::uint64_t hops_seen = 0;
  std::uint64_t retries_past_first = 0;
  net.set_delivery_handler([&](const Packet& packet, SimTime) {
    for (const HopRecord& hop : packet.true_hops) {
      ++hops_seen;
      ASSERT_GE(hop.attempts_to_first_rx, 1u);
      ASSERT_GE(hop.total_attempts, hop.attempts_to_first_rx);
      retries_past_first += hop.total_attempts > hop.attempts_to_first_rx;
    }
  });
  net.run_for(600.0);
  ASSERT_GT(hops_seen, 1000u);
  EXPECT_GT(retries_past_first, 0u);
}

}  // namespace
}  // namespace dophy::net
