#include "dophy/net/pdes/spsc_mailbox.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

namespace dophy::net::pdes {
namespace {

TEST(SpscMailbox, FifoWithinCapacity) {
  SpscMailbox<int> box(16);
  for (int i = 0; i < 10; ++i) box.push(int{i});
  std::vector<int> out;
  box.drain_into(out);
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);
  EXPECT_TRUE(box.empty());
  EXPECT_EQ(box.spilled_count(), 0u);
}

TEST(SpscMailbox, OverflowSpillsWithoutLossOrReordering) {
  SpscMailbox<int> box(8);
  constexpr int kCount = 100;  // far beyond the ring
  for (int i = 0; i < kCount; ++i) box.push(int{i});
  EXPECT_GT(box.spilled_count(), 0u);
  std::vector<int> out;
  box.drain_into(out);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(out[i], i);
}

TEST(SpscMailbox, StaysFifoAcrossSpillAndRecovery) {
  SpscMailbox<int> box(4);
  int next = 0;
  std::vector<int> all;
  // Alternate bursts (forcing spill) with drains (resetting to the ring).
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 11; ++i) box.push(int{next++});
    std::vector<int> out;
    box.drain_into(out);
    all.insert(all.end(), out.begin(), out.end());
  }
  ASSERT_EQ(all.size(), static_cast<std::size_t>(next));
  for (int i = 0; i < next; ++i) EXPECT_EQ(all[i], i);
}

TEST(SpscMailbox, DrainOnEmptyIsNoop) {
  SpscMailbox<int> box(8);
  std::vector<int> out{42};
  box.drain_into(out);
  ASSERT_EQ(out.size(), 1u);  // appends, untouched when empty
  EXPECT_EQ(out[0], 42);
}

TEST(SpscMailbox, SingleProducerThreadThenDrain) {
  SpscMailbox<int> box(32);
  constexpr int kCount = 5000;
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) box.push(int{i});
  });
  producer.join();  // barrier stands in for the window barrier
  std::vector<int> out;
  box.drain_into(out);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(out[i], i);
}

TEST(SpscMailbox, MoveOnlyPayload) {
  SpscMailbox<std::unique_ptr<int>> box(4);
  for (int i = 0; i < 9; ++i) box.push(std::make_unique<int>(i));
  std::vector<std::unique_ptr<int>> out;
  box.drain_into(out);
  ASSERT_EQ(out.size(), 9u);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(*out[i], i);
}

}  // namespace
}  // namespace dophy::net::pdes
