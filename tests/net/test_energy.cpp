#include "dophy/net/energy.hpp"

#include <gtest/gtest.h>

namespace dophy::net {
namespace {

NetworkStats sample_stats() {
  NetworkStats s;
  s.data_tx_attempts = 1000;
  s.data_rx_frames = 800;
  s.control_rx_frames = 1200;  // 800 ACK rx + 400 beacon rx
  s.beacons_sent = 100;
  s.control_flood_bytes = 6400;
  s.measurement_air_bytes = 5000;
  return s;
}

TEST(Energy, ZeroStatsZeroEnergy) {
  const auto e = estimate_energy(NetworkStats{});
  EXPECT_DOUBLE_EQ(e.total_mj(), 0.0);
  EXPECT_DOUBLE_EQ(e.measurement_fraction(), 0.0);
}

TEST(Energy, ComponentsScaleWithCounters) {
  const EnergyModel m;
  const auto base = estimate_energy(sample_stats(), m);
  auto doubled_stats = sample_stats();
  doubled_stats.data_tx_attempts *= 2;
  const auto doubled = estimate_energy(doubled_stats, m);
  EXPECT_DOUBLE_EQ(doubled.data_tx_uj, 2.0 * base.data_tx_uj);
  EXPECT_DOUBLE_EQ(doubled.data_rx_uj, base.data_rx_uj);  // rx unchanged
}

TEST(Energy, KnownArithmetic) {
  EnergyModel m;
  m.tx_uj_per_frame = 10.0;
  m.rx_uj_per_frame = 20.0;
  m.tx_uj_per_byte = 1.0;
  const auto e = estimate_energy(sample_stats(), m);
  EXPECT_DOUBLE_EQ(e.data_tx_uj, 1000 * 10.0);
  EXPECT_DOUBLE_EQ(e.data_rx_uj, 800 * 20.0);
  EXPECT_DOUBLE_EQ(e.acks_uj, 800 * 30.0);
  // 100 beacon tx + (1200 - 800) beacon rx.
  EXPECT_DOUBLE_EQ(e.beacons_uj, 100 * 10.0 + 400 * 20.0);
  EXPECT_DOUBLE_EQ(e.measurement_uj, 5000 * 1.0);
  EXPECT_GT(e.flood_uj, 6400 * 1.0);  // bytes + frame overheads
}

TEST(Energy, MeasurementFractionBounded) {
  const auto e = estimate_energy(sample_stats());
  EXPECT_GT(e.measurement_fraction(), 0.0);
  EXPECT_LT(e.measurement_fraction(), 1.0);
}

TEST(Energy, ControlRxNeverNegative) {
  auto s = sample_stats();
  s.control_rx_frames = 100;  // fewer than ACK receptions implies clamping
  const auto e = estimate_energy(s);
  EXPECT_GE(e.beacons_uj, 0.0);
}

}  // namespace
}  // namespace dophy::net
