#include "dophy/net/node.hpp"

#include <gtest/gtest.h>

namespace dophy::net {
namespace {

Node make_node(NodeId id = 5, std::size_t queue_capacity = 4) {
  return Node(id, id == kSinkId, RoutingConfig{}, dophy::common::Rng(7), queue_capacity);
}

TEST(Node, QueueFifoOrder) {
  Node n = make_node();
  for (std::uint16_t s = 0; s < 3; ++s) {
    Packet p;
    p.origin = 1;
    p.seq = s;
    ASSERT_TRUE(n.enqueue(std::move(p)));
  }
  EXPECT_EQ(n.queue_depth(), 3u);
  for (std::uint16_t s = 0; s < 3; ++s) EXPECT_EQ(n.dequeue().seq, s);
  EXPECT_TRUE(n.queue_empty());
}

TEST(Node, QueueCapacityEnforced) {
  Node n = make_node(5, 2);
  Packet a, b, c;
  EXPECT_TRUE(n.enqueue(std::move(a)));
  EXPECT_TRUE(n.enqueue(std::move(b)));
  EXPECT_FALSE(n.enqueue(std::move(c)));
  // Rejected packet was not moved from.
  EXPECT_EQ(c.origin, kInvalidNode);
}

TEST(Node, DequeueEmptyThrows) {
  Node n = make_node();
  EXPECT_THROW((void)n.dequeue(), std::logic_error);
}

TEST(Node, DedupeKeySemantics) {
  Node n = make_node();
  EXPECT_FALSE(n.check_and_mark_seen(0xABCD0001));
  EXPECT_TRUE(n.check_and_mark_seen(0xABCD0001));
  // Same flow, different hop count (THL) is a distinct key -> not duplicate.
  EXPECT_FALSE(n.check_and_mark_seen(0xABCD0002));
}

TEST(Node, SeenCacheEvictsOldEntries) {
  Node n = make_node();
  for (std::uint64_t k = 0; k < 5000; ++k) (void)n.check_and_mark_seen(k);
  // Early keys were evicted from the bounded cache.
  EXPECT_FALSE(n.check_and_mark_seen(0));
  // Recent keys are still present.
  EXPECT_TRUE(n.check_and_mark_seen(4999));
}

TEST(Node, SequenceNumbersIncrement) {
  Node n = make_node();
  EXPECT_EQ(n.next_data_seq(), 0);
  EXPECT_EQ(n.next_data_seq(), 1);
  EXPECT_EQ(n.next_beacon_seq(), 0);
  EXPECT_EQ(n.next_beacon_seq(), 1);
}

TEST(Node, AliveAndBusyFlags) {
  Node n = make_node();
  EXPECT_TRUE(n.alive());
  EXPECT_FALSE(n.tx_busy());
  n.set_alive(false);
  n.set_tx_busy(true);
  EXPECT_FALSE(n.alive());
  EXPECT_TRUE(n.tx_busy());
}

TEST(Node, SinkFlagWired) {
  Node sink(kSinkId, true, RoutingConfig{}, dophy::common::Rng(1), 4);
  EXPECT_TRUE(sink.is_sink());
  EXPECT_TRUE(sink.routing().has_route());
  EXPECT_DOUBLE_EQ(sink.routing().path_etx(), 0.0);
}

}  // namespace
}  // namespace dophy::net
