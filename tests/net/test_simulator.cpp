#include "dophy/net/simulator.hpp"

#include "dophy/common/rng.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

namespace dophy::net {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
}

TEST(Simulator, RunUntilAdvancesClock) {
  Simulator sim;
  sim.run_until(1000);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulator, EventsSeeTheirOwnTimestamp) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.schedule_at(10, [&] { seen.push_back(sim.now()); });
  sim.schedule_at(25, [&] { seen.push_back(sim.now()); });
  sim.run_until(100);
  EXPECT_EQ(seen, (std::vector<SimTime>{10, 25}));
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  sim.run_until(50);
  SimTime fired = -1;
  sim.schedule_in(10, [&] { fired = sim.now(); });
  sim.run_until(100);
  EXPECT_EQ(fired, 60);
}

TEST(Simulator, PastSchedulingRejected) {
  Simulator sim;
  sim.run_until(100);
  EXPECT_THROW(sim.schedule_at(50, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-1, [] {}), std::invalid_argument);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] {
    ++fired;
    sim.schedule_in(5, [&] { ++fired; });
  });
  sim.run_until(20);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(11, [&] { ++fired; });
  sim.run_until(10);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 10);
  sim.run_until(11);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepExecutesOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] { ++fired; });
  sim.schedule_at(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StressManyEventsDeterministic) {
  // 200k self-scheduling events: order and final state must be identical
  // across runs (heap stability + deterministic tie-breaking).
  auto run = [] {
    Simulator sim;
    dophy::common::Rng rng(99);
    std::uint64_t checksum = 0;
    std::function<void(int)> spawn = [&](int depth) {
      checksum = checksum * 31 + static_cast<std::uint64_t>(sim.now());
      if (depth <= 0) return;
      const int fanout = 1 + static_cast<int>(rng.next_below(2));
      for (int i = 0; i < fanout; ++i) {
        sim.schedule_in(static_cast<SimTime>(rng.next_below(1000)),
                        [&spawn, depth] { spawn(depth - 1); });
      }
    };
    for (int i = 0; i < 2000; ++i) {
      sim.schedule_at(static_cast<SimTime>(rng.next_below(5000)), [&spawn] { spawn(6); });
    }
    sim.run_all();
    return std::make_pair(checksum, sim.executed_count());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.second, 50000u);
}

TEST(Simulator, RunAllDrains) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) sim.schedule_at(i, [&] { ++fired; });
  sim.run_all();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(sim.executed_count(), 10u);
}

}  // namespace
}  // namespace dophy::net
