// Determinism pins for the typed event engine.
//
// The golden hash below was captured from the pre-refactor engine (captured
// std::function callbacks + std::push_heap binary heap) on a fixed 25-node
// churn run, by hashing the time of every executed event with FNV-1a.  The
// typed engine must replay the exact same (time, seq) sequence — any change
// to tie-breaking, push order, or RNG draw order shows up here as a hash
// mismatch long before it would show up as a statistics drift.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dophy/net/network.hpp"

namespace dophy::net {
namespace {

// 25 nodes, field 100 m, range 35 m, seed 42, 5 s traffic, aggressive churn.
[[nodiscard]] NetworkConfig pinned_config() {
  NetworkConfig cfg;
  cfg.topology.node_count = 25;
  cfg.topology.field_size = 100.0;
  cfg.topology.comm_range = 35.0;
  cfg.seed = 42;
  cfg.traffic.data_interval_s = 5.0;
  cfg.churn.enabled = true;
  cfg.churn.churn_fraction = 0.3;
  cfg.churn.mean_up_s = 40.0;
  cfg.churn.mean_down_s = 10.0;
  cfg.collect_outcomes = false;
  return cfg;
}

struct TraceAccum {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis
  std::uint64_t count = 0;
  std::uint64_t last_time = 0;
  std::uint64_t last_seq = 0;
  bool order_ok = true;

  void note(SimTime time, std::uint64_t seq) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (static_cast<std::uint64_t>(time) >> (8 * i)) & 0xff;
      hash *= 1099511628211ULL;  // FNV prime
    }
    if (count > 0) {
      // Dispatch must follow the (time, seq) total order exactly.
      const bool ordered =
          last_time < static_cast<std::uint64_t>(time) ||
          (last_time == static_cast<std::uint64_t>(time) && last_seq < seq);
      order_ok = order_ok && ordered;
    }
    last_time = static_cast<std::uint64_t>(time);
    last_seq = seq;
    ++count;
  }

  static void hook(void* ctx, SimTime time, std::uint64_t seq, EventKind /*kind*/) {
    static_cast<TraceAccum*>(ctx)->note(time, seq);
  }
};

TEST(DeterminismTrace, TypedEngineReplaysLegacyEventSequence) {
  Network net(pinned_config());
  TraceAccum accum;
  net.sim().set_trace_hook(&TraceAccum::hook, &accum);
  net.run_for(120.0);

  // Pinned from the pre-refactor engine (same config, same seed).
  EXPECT_EQ(accum.hash, 0xa6190189d36b4a70ULL);
  EXPECT_EQ(accum.count, 2560u);
  EXPECT_TRUE(accum.order_ok);

  const NetworkStats stats = net.stats();
  EXPECT_EQ(stats.packets_generated, 398u);
  EXPECT_EQ(stats.packets_delivered, 370u);
  EXPECT_EQ(stats.beacons_sent, 385u);
  EXPECT_EQ(stats.node_failures, 18u);
}

TEST(DeterminismTrace, BackToBackRunsAreBitIdentical) {
  auto run_once = [] {
    Network net(pinned_config());
    TraceAccum accum;
    net.sim().set_trace_hook(&TraceAccum::hook, &accum);
    net.run_for(120.0);
    return std::pair<std::uint64_t, std::uint64_t>{accum.hash, accum.count};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(DeterminismTrace, TraceHookSeesEveryExecutedEvent) {
  Network net(pinned_config());
  TraceAccum accum;
  net.sim().set_trace_hook(&TraceAccum::hook, &accum);
  net.run_for(30.0);
  EXPECT_EQ(accum.count, net.sim().executed_count());
  EXPECT_TRUE(accum.order_ok);
}

}  // namespace
}  // namespace dophy::net
