// Mutation fuzzing for the hardened codec layer: every codec must survive
// seeded random round-trips plus byte-truncation and bit-flip sweeps without
// crashing or invoking UB — a hostile buffer either decodes exactly or fails
// with a typed CodecError.  Run under ASan/UBSan in CI (the sanitizers job);
// the whole file must stay well under 5 s of ctest time.

#include "dophy/coding/codec.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dophy/coding/varint.hpp"
#include "dophy/common/rng.hpp"

namespace dophy::coding {
namespace {

constexpr std::uint32_t kAlphabet = 8;
constexpr std::size_t kStreamLen = 256;
constexpr std::size_t kSeeds = 16;

std::vector<std::uint32_t> random_stream(dophy::common::Rng& rng, std::size_t n) {
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Skewed like aggregated retransmission counts: mostly 0, thin tail.
    const std::uint32_t attempts = rng.geometric_trials(0.7);
    out.push_back(std::min(attempts - 1, kAlphabet - 1));
  }
  return out;
}

std::vector<std::uint64_t> count_symbols(const std::vector<std::uint32_t>& symbols) {
  std::vector<std::uint64_t> counts(kAlphabet, 1);  // +1 smoothing: no zero freqs
  for (const auto s : symbols) ++counts[s];
  return counts;
}

struct FuzzCase {
  std::string label;
  std::function<std::unique_ptr<Codec>(const std::vector<std::uint64_t>&)> make;
  /// True when every decodable symbol is necessarily < kAlphabet (model- or
  /// table-driven codecs).  Universal codes (gamma/Rice) and fixed-width
  /// padding can legally decode to larger values.
  bool alphabet_bounded = false;
};

class CodecFuzz : public ::testing::TestWithParam<FuzzCase> {};

/// A decode attempt on a hostile buffer: must not crash; either clean
/// success (with the range invariant) or a typed error.
void expect_sane(Codec& codec, const std::vector<std::uint8_t>& bytes, std::size_t count,
                 bool alphabet_bounded, const std::string& context) {
  const DecodeOutcome outcome = codec.try_decode(bytes, count);
  if (outcome.ok()) {
    EXPECT_EQ(outcome.symbols.size(), count) << context;
    if (alphabet_bounded) {
      for (const std::uint32_t s : outcome.symbols) {
        ASSERT_LT(s, kAlphabet) << context << ": out-of-alphabet symbol leaked";
      }
    }
  } else {
    EXPECT_TRUE(outcome.error == CodecError::kTruncated ||
                outcome.error == CodecError::kMalformed)
        << context << ": untyped error";
  }
}

TEST_P(CodecFuzz, CleanRoundTripViaTryDecode) {
  for (std::size_t seed = 1; seed <= kSeeds; ++seed) {
    dophy::common::Rng rng(seed * 7919);
    const auto symbols = random_stream(rng, kStreamLen);
    auto codec = GetParam().make(count_symbols(symbols));
    std::vector<std::uint8_t> bytes;
    (void)codec->encode(symbols, bytes);
    const DecodeOutcome outcome = codec->try_decode(bytes, symbols.size());
    ASSERT_TRUE(outcome.ok()) << GetParam().label << " seed=" << seed
                              << " error=" << to_string(outcome.error);
    EXPECT_EQ(outcome.symbols, symbols) << GetParam().label << " seed=" << seed;
  }
}

TEST_P(CodecFuzz, TruncationSweep) {
  for (std::size_t seed = 1; seed <= kSeeds; ++seed) {
    dophy::common::Rng rng(seed * 104729);
    const auto symbols = random_stream(rng, kStreamLen);
    auto codec = GetParam().make(count_symbols(symbols));
    std::vector<std::uint8_t> bytes;
    (void)codec->encode(symbols, bytes);
    ASSERT_FALSE(bytes.empty());
    // Cut 1 byte, 2 bytes, ... then half, then almost everything.
    for (const std::size_t cut :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}, bytes.size() / 2,
          bytes.size() - 1, bytes.size()}) {
      if (cut > bytes.size()) continue;
      std::vector<std::uint8_t> mutated(bytes.begin(),
                                        bytes.end() - static_cast<std::ptrdiff_t>(cut));
      expect_sane(*codec, mutated, symbols.size(), GetParam().alphabet_bounded,
                  GetParam().label + " seed=" + std::to_string(seed) +
                      " cut=" + std::to_string(cut));
    }
  }
}

TEST_P(CodecFuzz, BitFlipSweep) {
  for (std::size_t seed = 1; seed <= kSeeds; ++seed) {
    dophy::common::Rng rng(seed * 1299709);
    const auto symbols = random_stream(rng, kStreamLen);
    auto codec = GetParam().make(count_symbols(symbols));
    std::vector<std::uint8_t> bytes;
    (void)codec->encode(symbols, bytes);
    ASSERT_FALSE(bytes.empty());
    for (int flip = 0; flip < 24; ++flip) {
      std::vector<std::uint8_t> mutated = bytes;
      const std::size_t bit = rng.next_below(mutated.size() * 8);
      mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      expect_sane(*codec, mutated, symbols.size(), GetParam().alphabet_bounded,
                  GetParam().label + " seed=" + std::to_string(seed) +
                      " bit=" + std::to_string(bit));
    }
  }
}

TEST_P(CodecFuzz, RandomGarbageBuffers) {
  dophy::common::Rng rng(4242);
  const auto symbols = random_stream(rng, kStreamLen);
  auto codec = GetParam().make(count_symbols(symbols));
  for (std::size_t trial = 0; trial < 32; ++trial) {
    std::vector<std::uint8_t> garbage(rng.next_below(64));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next_below(256));
    expect_sane(*codec, garbage, 1 + rng.next_below(64), GetParam().alphabet_bounded,
                GetParam().label + " garbage trial=" + std::to_string(trial));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecFuzz,
    ::testing::Values(
        FuzzCase{"fixed", [](const auto&) { return make_fixed_width_codec(kAlphabet); }, false},
        FuzzCase{"gamma", [](const auto&) { return make_elias_gamma_codec(); }, false},
        FuzzCase{"rice1", [](const auto&) { return make_rice_codec(1); }, false},
        FuzzCase{"huffman", [](const auto& c) { return make_huffman_codec(c); }, true},
        FuzzCase{"arith_static", [](const auto& c) { return make_static_arith_codec(c); },
                 true},
        FuzzCase{"arith_adaptive",
                 [](const auto&) { return make_adaptive_arith_codec(kAlphabet); }, true},
        FuzzCase{"legacy_arith_static",
                 [](const auto& c) { return make_legacy_static_arith_codec(c); }, true},
        FuzzCase{"legacy_arith_adaptive",
                 [](const auto&) { return make_legacy_adaptive_arith_codec(kAlphabet); },
                 true}),
    [](const auto& suite_info) { return suite_info.param.label; });

TEST(CodecFuzzDeterminism, SameSeedSameOutcomes) {
  // The harness itself must be reproducible: identical seeds yield identical
  // mutated buffers and identical outcomes across runs.
  auto run_once = [] {
    dophy::common::Rng rng(5);
    const auto symbols = random_stream(rng, kStreamLen);
    auto codec = make_static_arith_codec(count_symbols(symbols));
    std::vector<std::uint8_t> bytes;
    (void)codec->encode(symbols, bytes);
    std::vector<int> verdicts;
    for (int flip = 0; flip < 16; ++flip) {
      std::vector<std::uint8_t> mutated = bytes;
      const std::size_t bit = rng.next_below(mutated.size() * 8);
      mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      verdicts.push_back(static_cast<int>(codec->try_decode(mutated, symbols.size()).error));
    }
    return verdicts;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(VarintFuzz, TruncatedAndGarbageBuffersFailCleanly) {
  dophy::common::Rng rng(31337);
  for (std::size_t trial = 0; trial < 64; ++trial) {
    std::vector<std::uint8_t> bytes;
    const std::uint64_t value = rng.next_u64() >> rng.next_below(64);
    write_varint(bytes, value);
    // Clean round trip.
    std::size_t offset = 0;
    EXPECT_EQ(read_varint(bytes, offset), value);
    // Every strict prefix must throw (never read out of bounds).
    for (std::size_t cut = 1; cut <= bytes.size(); ++cut) {
      std::vector<std::uint8_t> mutated(bytes.begin(),
                                        bytes.end() - static_cast<std::ptrdiff_t>(cut));
      if (!mutated.empty() && (mutated.back() & 0x80u) == 0) continue;  // still terminated
      offset = 0;
      EXPECT_THROW((void)read_varint(mutated, offset), std::runtime_error);
    }
  }
  // Overlong encodings (ten continuation bytes) are rejected, not wrapped.
  std::vector<std::uint8_t> overlong(11, 0xFF);
  std::size_t offset = 0;
  EXPECT_THROW((void)read_varint(overlong, offset), std::runtime_error);
}

}  // namespace
}  // namespace dophy::coding
