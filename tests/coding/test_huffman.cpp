#include "dophy/coding/huffman.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dophy/common/rng.hpp"
#include "dophy/common/stats.hpp"

namespace dophy::coding {
namespace {

using dophy::common::BitReader;
using dophy::common::BitWriter;

TEST(Huffman, SingleSymbolAlphabet) {
  HuffmanCode code(std::vector<std::uint64_t>{42});
  EXPECT_EQ(code.length(0), 1u);
  BitWriter w;
  code.encode(w, 0);
  BitReader r(w.bytes(), w.bit_count());
  EXPECT_EQ(code.decode(r), 0u);
}

TEST(Huffman, TwoSymbolsOneBitEach) {
  HuffmanCode code(std::vector<std::uint64_t>{10, 90});
  EXPECT_EQ(code.length(0), 1u);
  EXPECT_EQ(code.length(1), 1u);
}

TEST(Huffman, SkewGivesShorterCodeToFrequent) {
  HuffmanCode code(std::vector<std::uint64_t>{1000, 100, 10, 1});
  EXPECT_LE(code.length(0), code.length(1));
  EXPECT_LE(code.length(1), code.length(2));
  EXPECT_LE(code.length(2), code.length(3));
}

TEST(Huffman, KraftEqualityHolds) {
  dophy::common::Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 2 + rng.next_below(64);
    std::vector<std::uint64_t> counts(n);
    for (auto& c : counts) c = rng.next_below(10000);
    HuffmanCode code(counts);
    double kraft = 0.0;
    for (std::size_t s = 0; s < n; ++s) kraft += std::pow(2.0, -double(code.length(s)));
    EXPECT_NEAR(kraft, 1.0, 1e-9) << "trial " << trial;
  }
}

TEST(Huffman, RoundTripRandomStreams) {
  dophy::common::Rng rng(10);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 2 + rng.next_below(40);
    std::vector<std::uint64_t> counts(n);
    for (auto& c : counts) c = 1 + rng.next_below(500);
    HuffmanCode code(counts);
    std::vector<std::size_t> symbols;
    BitWriter w;
    for (int i = 0; i < 500; ++i) {
      const std::size_t s = rng.next_below(n);
      symbols.push_back(s);
      code.encode(w, s);
    }
    BitReader r(w.bytes(), w.bit_count());
    for (const auto s : symbols) ASSERT_EQ(code.decode(r), s);
  }
}

TEST(Huffman, WithinOneBitOfEntropy) {
  // Huffman expected length is within 1 bit of the source entropy.
  const std::vector<std::uint64_t> counts{700, 150, 100, 30, 15, 5};
  HuffmanCode code(counts);
  const double h = dophy::common::entropy_bits(counts);
  const double el = code.expected_length(counts);
  EXPECT_GE(el, h - 1e-9);
  EXPECT_LE(el, h + 1.0);
}

TEST(Huffman, ZeroCountsStillCodable) {
  HuffmanCode code(std::vector<std::uint64_t>{100, 0, 0});
  for (std::size_t s = 0; s < 3; ++s) {
    BitWriter w;
    code.encode(w, s);
    BitReader r(w.bytes(), w.bit_count());
    EXPECT_EQ(code.decode(r), s);
  }
}

TEST(Huffman, EmptyCountsRejected) {
  EXPECT_THROW(HuffmanCode({}), std::invalid_argument);
}

TEST(Huffman, DecodeMalformedThrows) {
  HuffmanCode code(std::vector<std::uint64_t>{1, 1, 1});  // max length 2
  // A stream of bits that never matches a codeword within max length cannot
  // exist for a complete code, but a truncated stream throws from BitReader.
  const std::vector<std::uint8_t> empty;
  BitReader r(empty);
  EXPECT_THROW((void)code.decode(r), std::exception);
}

TEST(Huffman, ExpectedLengthSizeMismatchThrows) {
  HuffmanCode code(std::vector<std::uint64_t>{1, 1});
  EXPECT_THROW((void)code.expected_length({1, 2, 3}), std::invalid_argument);
}

TEST(Huffman, CanonicalDeterminism) {
  const std::vector<std::uint64_t> counts{5, 5, 3, 3, 2};
  HuffmanCode a(counts);
  HuffmanCode b(counts);
  EXPECT_EQ(a.lengths(), b.lengths());
}

}  // namespace
}  // namespace dophy::coding
