// Differential codec battery: the byte-oriented range coder (wire v2) is
// property-tested against the preserved bit-at-a-time arithmetic coder
// (wire v1, dophy::coding::legacy) on identical symbol streams.  The coders
// produce different bytes by construction — equivalence is VALUE-exact:
// both must round-trip every stream to the same symbols, and their
// compressed sizes must stay within the byte-alignment margin.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dophy/coding/arith.hpp"
#include "dophy/coding/legacy_arith.hpp"
#include "dophy/common/bitio.hpp"
#include "dophy/common/rng.hpp"
#include "dophy/tomo/symbol_mapper.hpp"

namespace dophy::coding {
namespace {

using dophy::common::BitWriter;
using dophy::common::Rng;

/// Samples `n` symbols from the distribution given by `counts`.
std::vector<std::uint32_t> sample_stream(Rng& rng, const std::vector<std::uint64_t>& counts,
                                         std::size_t n) {
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t r = rng.next_below(total);
    std::uint32_t s = 0;
    while (r >= counts[s]) r -= counts[s], ++s;
    out.push_back(s);
  }
  return out;
}

struct RoundTrips {
  std::vector<std::uint32_t> via_range;
  std::vector<std::uint32_t> via_legacy;
  std::size_t range_bits;
  std::size_t legacy_bits;
};

/// Encodes and decodes `symbols` through BOTH coders under the same static
/// model; returns the two decoded streams plus stream sizes.
RoundTrips round_trip_both(const StaticModel& model, const std::vector<std::uint32_t>& symbols) {
  RoundTrips rt;

  std::vector<std::uint8_t> range_bytes;
  RangeEncoder enc(range_bytes);
  for (const auto s : symbols) enc.encode(model, s);
  enc.finish();
  rt.range_bits = range_bytes.size() * 8;
  RangeDecoder dec(range_bytes);
  rt.via_range.reserve(symbols.size());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    rt.via_range.push_back(static_cast<std::uint32_t>(dec.decode(model)));
  }

  BitWriter w;
  legacy::ArithmeticEncoder lenc(w);
  for (const auto s : symbols) lenc.encode(model, s);
  lenc.finish();
  rt.legacy_bits = w.bit_count();
  legacy::ArithmeticDecoder ldec(w.bytes(), 0, w.bit_count());
  rt.via_legacy.reserve(symbols.size());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    rt.via_legacy.push_back(static_cast<std::uint32_t>(ldec.decode(model)));
  }
  return rt;
}

TEST(RangeDifferential, RandomizedStreamsRoundTripIdentically) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    Rng rng(seed * 6151);
    const std::size_t alphabet = 2 + rng.next_below(120);
    std::vector<std::uint64_t> counts(alphabet);
    for (auto& c : counts) c = 1 + rng.next_below(500);
    const StaticModel model(counts);
    const auto symbols = sample_stream(rng, counts, 200 + rng.next_below(800));

    const auto rt = round_trip_both(model, symbols);
    ASSERT_EQ(rt.via_range, symbols) << "range coder mismatch, seed=" << seed;
    ASSERT_EQ(rt.via_legacy, symbols) << "legacy coder mismatch, seed=" << seed;
    // Same model, same stream: both coders sit within a few bytes of the
    // entropy, so neither may drift from the other beyond alignment slack.
    EXPECT_LE(rt.range_bits, rt.legacy_bits + rt.legacy_bits / 100 + 64)
        << "range stream unexpectedly larger, seed=" << seed;
  }
}

TEST(RangeDifferential, AdversarialModelSkews) {
  // Near-zero frequencies next to saturating ones: after quantization the
  // rare symbols pin at frequency 1 while the heavy hitter absorbs nearly
  // the whole 2^16 coder total — the regime where renormalization clamps.
  const std::vector<std::vector<std::uint64_t>> skews = {
      {1, 1000000},
      {1000000, 1},
      {1, 1, 1, 10000000},
      {1, 5000000, 1, 5000000, 1},
      std::vector<std::uint64_t>(200, 1),  // flat tiny
      [] {
        std::vector<std::uint64_t> v(64, 1);
        v[0] = 1u << 30;  // one symbol takes ~all the mass
        return v;
      }(),
  };
  for (std::size_t which = 0; which < skews.size(); ++which) {
    const auto& counts = skews[which];
    const StaticModel model(counts);
    Rng rng(97 + which);
    // Force rare symbols into the stream regardless of their probability.
    auto symbols = sample_stream(rng, counts, 600);
    for (std::size_t i = 0; i < symbols.size(); i += 37) {
      symbols[i] = static_cast<std::uint32_t>(rng.next_below(counts.size()));
    }
    const auto rt = round_trip_both(model, symbols);
    ASSERT_EQ(rt.via_range, symbols) << "range coder mismatch, skew=" << which;
    ASSERT_EQ(rt.via_legacy, symbols) << "legacy coder mismatch, skew=" << which;
  }
}

TEST(RangeDifferential, AllCensoringLengths) {
  // The production alphabets: K-censored retransmission counts for every
  // K the pipeline supports.  Streams are geometric like real MAC retries.
  for (std::uint32_t k = 2; k <= 8; ++k) {
    const dophy::tomo::SymbolMapper mapper(k);
    Rng rng(1000 + k);
    std::vector<std::uint64_t> counts(mapper.alphabet_size(), 1);  // +1 smoothing
    std::vector<std::uint32_t> symbols;
    for (std::size_t i = 0; i < 2000; ++i) {
      const auto s = mapper.to_symbol(std::min(rng.geometric_trials(0.85), 12u));
      symbols.push_back(s);
      ++counts[s];
    }
    const StaticModel model(counts);
    const auto rt = round_trip_both(model, symbols);
    ASSERT_EQ(rt.via_range, symbols) << "range coder mismatch, K=" << k;
    ASSERT_EQ(rt.via_legacy, symbols) << "legacy coder mismatch, K=" << k;
  }
}

TEST(RangeDifferential, AdaptiveModelsStayInLockstep) {
  // Two independent adaptive models per coder (encoder side / decoder side),
  // updated after every symbol exactly as the codec layer does.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 7907);
    const std::size_t alphabet = 2 + rng.next_below(30);
    std::vector<std::uint64_t> counts(alphabet, 1);
    const auto symbols = sample_stream(rng, counts, 1500);

    std::vector<std::uint8_t> range_bytes;
    {
      AdaptiveModel m(alphabet);
      RangeEncoder enc(range_bytes);
      for (const auto s : symbols) {
        enc.encode(m, s);
        m.update(s);
      }
      enc.finish();
    }
    BitWriter w;
    {
      AdaptiveModel m(alphabet);
      legacy::ArithmeticEncoder enc(w);
      for (const auto s : symbols) {
        enc.encode(m, s);
        m.update(s);
      }
      enc.finish();
    }

    AdaptiveModel rm(alphabet);
    RangeDecoder rdec(range_bytes);
    AdaptiveModel lm(alphabet);
    legacy::ArithmeticDecoder ldec(w.bytes(), 0, w.bit_count());
    for (std::size_t i = 0; i < symbols.size(); ++i) {
      const auto via_range = rdec.decode(rm);
      rm.update(via_range);
      const auto via_legacy = ldec.decode(lm);
      lm.update(via_legacy);
      ASSERT_EQ(via_range, symbols[i]) << "range coder diverged at " << i << ", seed=" << seed;
      ASSERT_EQ(via_legacy, symbols[i]) << "legacy coder diverged at " << i << ", seed=" << seed;
    }
  }
}

TEST(RangeDifferential, SuspendResumeAgreesWithOneShot) {
  // Per-hop suspend/resume — the pattern the tomo encoder uses — must be a
  // pure refactoring of one-shot encoding for both coders.
  const StaticModel ids(std::vector<std::uint64_t>(50, 1));
  const StaticModel retx(std::vector<std::uint64_t>{900, 70, 20, 10});
  Rng rng(424243);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> hops;
    const std::size_t hop_count = 1 + rng.next_below(12);
    for (std::size_t h = 0; h < hop_count; ++h) {
      hops.emplace_back(rng.next_below(50), rng.next_below(4));
    }

    std::vector<std::uint8_t> one_shot;
    {
      RangeEncoder enc(one_shot);
      for (const auto& [id, rx] : hops) {
        enc.encode(ids, id);
        enc.encode(retx, rx);
      }
      enc.finish();
    }
    std::vector<std::uint8_t> resumed;
    {
      RangeCoderState st;
      for (const auto& [id, rx] : hops) {
        RangeEncoder enc(resumed, st);
        enc.encode(ids, id);
        enc.encode(retx, rx);
        st = enc.suspend();
      }
      RangeEncoder enc(resumed, st);
      enc.finish();
    }
    ASSERT_EQ(one_shot, resumed) << "trial=" << trial;

    // Legacy coder: same per-hop contract over its bit-granular stream.
    BitWriter lw_one;
    {
      legacy::ArithmeticEncoder enc(lw_one);
      for (const auto& [id, rx] : hops) {
        enc.encode(ids, id);
        enc.encode(retx, rx);
      }
      enc.finish();
    }
    BitWriter lw_res;
    {
      legacy::ArithCoderState st;
      for (const auto& [id, rx] : hops) {
        legacy::ArithmeticEncoder enc(lw_res, st);
        enc.encode(ids, id);
        enc.encode(retx, rx);
        st = enc.suspend();
      }
      legacy::ArithmeticEncoder enc(lw_res, st);
      enc.finish();
    }
    ASSERT_EQ(lw_one.bytes(), lw_res.bytes()) << "trial=" << trial;
  }
}

TEST(RangeDifferential, TruncationYieldsTypedFailureNotGarbageParity) {
  // Cutting bytes off either stream must never produce UB; the range coder
  // either throws or flags likely_truncated(), mirroring the legacy coder's
  // contract.  (The mutation-fuzz harness covers both codecs exhaustively;
  // this is the direct-API check.)
  const StaticModel model(std::vector<std::uint64_t>{500, 300, 150, 50});
  Rng rng(515151);
  const auto symbols = sample_stream(rng, {500, 300, 150, 50}, 400);

  std::vector<std::uint8_t> bytes;
  RangeEncoder enc(bytes);
  for (const auto s : symbols) enc.encode(model, s);
  enc.finish();

  for (std::size_t cut = 1; cut <= bytes.size(); cut += 3) {
    std::vector<std::uint8_t> mutated(bytes.begin(),
                                      bytes.end() - static_cast<std::ptrdiff_t>(cut));
    RangeDecoder dec(mutated);
    bool threw = false;
    try {
      for (std::size_t i = 0; i < symbols.size(); ++i) (void)dec.decode(model);
    } catch (const std::exception&) {
      threw = true;
    }
    EXPECT_TRUE(threw || dec.likely_truncated()) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace dophy::coding
