#include "dophy/coding/golomb.hpp"

#include <gtest/gtest.h>

#include "dophy/common/rng.hpp"

namespace dophy::coding {
namespace {

using dophy::common::BitReader;
using dophy::common::BitWriter;

TEST(Rice, KnownCodeword) {
  // value=5, k=2: q=1, r=01 -> "10" + "01" = 4 bits.
  BitWriter w;
  rice_encode(w, 5, 2);
  EXPECT_EQ(w.bit_count(), 4u);
  EXPECT_EQ(w.bytes()[0] >> 4, 0b1001u);
}

TEST(Rice, RoundTripSweep) {
  for (unsigned k = 0; k <= 6; ++k) {
    BitWriter w;
    for (std::uint64_t v = 0; v <= 200; ++v) rice_encode(w, v, k);
    BitReader r(w.bytes(), w.bit_count());
    for (std::uint64_t v = 0; v <= 200; ++v) {
      EXPECT_EQ(rice_decode(r, k), v) << "k=" << k;
    }
  }
}

TEST(Rice, BitsFormula) {
  EXPECT_EQ(rice_bits(0, 0), 1u);
  EXPECT_EQ(rice_bits(3, 0), 4u);
  EXPECT_EQ(rice_bits(5, 2), 4u);
  for (unsigned k = 0; k <= 5; ++k) {
    for (std::uint64_t v = 0; v < 50; ++v) {
      BitWriter w;
      rice_encode(w, v, k);
      EXPECT_EQ(w.bit_count(), rice_bits(v, k));
    }
  }
}

TEST(Rice, OptimalParamMonotone) {
  EXPECT_EQ(optimal_rice_param(0.5), 0u);
  EXPECT_LE(optimal_rice_param(1.5), optimal_rice_param(10.0));
  EXPECT_LE(optimal_rice_param(10.0), optimal_rice_param(1000.0));
}

TEST(Rice, GuardsMalformedUnary) {
  const std::vector<std::uint8_t> ones(1024, 0xFF);
  BitReader r(ones);
  EXPECT_THROW((void)rice_decode(r, 0), std::runtime_error);
}

TEST(Rice, RejectsHugeParameters) {
  BitWriter w;
  EXPECT_THROW(rice_encode(w, 1, 40), std::invalid_argument);
  EXPECT_THROW(rice_encode(w, 1ull << 40, 0), std::invalid_argument);
}

TEST(Golomb, RoundTripNonPowerOfTwo) {
  for (std::uint64_t m : {1ull, 3ull, 5ull, 7ull, 10ull, 100ull}) {
    BitWriter w;
    for (std::uint64_t v = 0; v <= 150; ++v) golomb_encode(w, v, m);
    BitReader r(w.bytes(), w.bit_count());
    for (std::uint64_t v = 0; v <= 150; ++v) {
      EXPECT_EQ(golomb_decode(r, m), v) << "m=" << m;
    }
  }
}

TEST(Golomb, TruncatedBinaryRemaindersTight) {
  // m=5: remainders 0..2 use 2 bits, 3..4 use 3 bits.
  EXPECT_EQ(golomb_bits(0, 5), 3u);   // q=0 (1 bit) + r=0 (2 bits)
  EXPECT_EQ(golomb_bits(3, 5), 4u);   // q=0 + r=3 (3 bits)
  EXPECT_EQ(golomb_bits(5, 5), 4u);   // q=1 (2 bits) + r=0 (2 bits)
}

TEST(Golomb, BitsFormulaMatchesEncoding) {
  for (std::uint64_t m : {2ull, 3ull, 6ull, 9ull}) {
    for (std::uint64_t v = 0; v < 60; ++v) {
      BitWriter w;
      golomb_encode(w, v, m);
      EXPECT_EQ(w.bit_count(), golomb_bits(v, m)) << "m=" << m << " v=" << v;
    }
  }
}

TEST(Golomb, RiceEquivalenceForPowersOfTwo) {
  dophy::common::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t v = rng.next_below(500);
    EXPECT_EQ(golomb_bits(v, 8), rice_bits(v, 3));
  }
}

TEST(Golomb, ZeroDivisorRejected) {
  BitWriter w;
  EXPECT_THROW(golomb_encode(w, 1, 0), std::invalid_argument);
  const std::vector<std::uint8_t> buf{0};
  BitReader r(buf);
  EXPECT_THROW((void)golomb_decode(r, 0), std::invalid_argument);
}

}  // namespace
}  // namespace dophy::coding
