#include "dophy/coding/arith.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dophy/common/rng.hpp"
#include "dophy/common/stats.hpp"

namespace dophy::coding {
namespace {

using dophy::common::Rng;

std::vector<std::uint32_t> random_stream(Rng& rng, const FrequencyModel& model,
                                         std::size_t length) {
  std::vector<std::uint32_t> symbols;
  symbols.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    symbols.push_back(static_cast<std::uint32_t>(
        model.find(static_cast<std::uint32_t>(rng.next_below(model.total())))));
  }
  return symbols;
}

TEST(RangeCoderState, SerializeRoundTrip) {
  RangeCoderState st;
  st.low = 0x12345678;
  st.range = 0x9ABCDEF0;
  const auto bytes = st.serialize();
  const RangeCoderState back = RangeCoderState::deserialize(bytes);
  EXPECT_EQ(st, back);
}

TEST(RangeCoderState, DeserializeRejectsInvalid) {
  EXPECT_THROW((void)RangeCoderState::deserialize(std::vector<std::uint8_t>(5, 0)),
               std::runtime_error);
  RangeCoderState st;
  st.low = 10;
  st.range = kRangeBot - 1;  // below the post-renormalization floor
  const auto bytes = st.serialize();
  EXPECT_THROW((void)RangeCoderState::deserialize(bytes), std::runtime_error);
}

TEST(Range, EmptyStreamFinishEmitsTermination) {
  std::vector<std::uint8_t> out;
  RangeEncoder enc(out);
  enc.finish();
  EXPECT_GE(out.size(), 2u);  // finish pins the code value with 2 bytes
}

TEST(Range, SingleSymbolRoundTrip) {
  StaticModel model(std::vector<std::uint64_t>{10, 1});
  for (std::uint32_t s : {0u, 1u}) {
    std::vector<std::uint8_t> out;
    RangeEncoder enc(out);
    enc.encode(model, s);
    enc.finish();
    RangeDecoder dec(out);
    EXPECT_EQ(dec.decode(model), s);
  }
}

TEST(Range, RoundTripUniformModel) {
  Rng rng(21);
  StaticModel model(16);
  const auto symbols = random_stream(rng, model, 2000);
  std::vector<std::uint8_t> out;
  RangeEncoder enc(out);
  for (const auto s : symbols) enc.encode(model, s);
  enc.finish();
  RangeDecoder dec(out);
  for (const auto s : symbols) EXPECT_EQ(dec.decode(model), s);
}

struct RangeSweepParam {
  std::size_t alphabet;
  std::size_t length;
  std::uint64_t seed;
};

class RangeRoundTrip : public ::testing::TestWithParam<RangeSweepParam> {};

TEST_P(RangeRoundTrip, SkewedStaticModel) {
  const auto param = GetParam();
  Rng rng(param.seed);
  // Geometric-ish skew resembling retransmission counts.
  std::vector<std::uint64_t> counts(param.alphabet);
  std::uint64_t c = 1 << 20;
  for (auto& v : counts) {
    v = c + rng.next_below(c / 2 + 1);
    c = c / 3 + 1;
  }
  StaticModel model(counts);
  const auto symbols = random_stream(rng, model, param.length);

  std::vector<std::uint8_t> out;
  RangeEncoder enc(out);
  for (const auto s : symbols) enc.encode(model, s);
  enc.finish();

  RangeDecoder dec(out);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    ASSERT_EQ(dec.decode(model), symbols[i]) << "position " << i;
  }
  EXPECT_FALSE(dec.likely_truncated());
}

TEST_P(RangeRoundTrip, AdaptiveModelSync) {
  const auto param = GetParam();
  Rng rng(param.seed ^ 0xABCD);
  AdaptiveModel enc_model(param.alphabet);
  AdaptiveModel dec_model(param.alphabet);
  std::vector<std::uint32_t> symbols;
  for (std::size_t i = 0; i < param.length; ++i) {
    // Skewed source: symbol 0 with p=0.7, else uniform.
    symbols.push_back(rng.bernoulli(0.7)
                          ? 0u
                          : 1u + static_cast<std::uint32_t>(
                                     rng.next_below(param.alphabet - 1)));
  }
  std::vector<std::uint8_t> out;
  RangeEncoder enc(out);
  for (const auto s : symbols) {
    enc.encode(enc_model, s);
    enc_model.update(s);
  }
  enc.finish();

  RangeDecoder dec(out);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    const auto s = dec.decode(dec_model);
    dec_model.update(s);
    ASSERT_EQ(s, symbols[i]) << "position " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RangeRoundTrip,
    ::testing::Values(RangeSweepParam{2, 100, 1}, RangeSweepParam{2, 5000, 2},
                      RangeSweepParam{4, 1000, 3}, RangeSweepParam{8, 1000, 4},
                      RangeSweepParam{16, 2000, 5}, RangeSweepParam{100, 3000, 6},
                      RangeSweepParam{256, 1000, 7}, RangeSweepParam{3, 10000, 8}),
    [](const auto& suite_info) {
      return "a" + std::to_string(suite_info.param.alphabet) + "_n" +
             std::to_string(suite_info.param.length) + "_s" + std::to_string(suite_info.param.seed);
    });

TEST(Range, CompressionWithinEntropyMargin) {
  Rng rng(33);
  // Heavily skewed: H ~ 0.88 bits/symbol.
  StaticModel model(std::vector<std::uint64_t>{800, 100, 60, 40});
  const std::size_t n = 20000;
  const auto symbols = random_stream(rng, model, n);
  std::vector<std::uint8_t> out;
  RangeEncoder enc(out);
  double ideal_bits = 0.0;
  for (const auto s : symbols) {
    ideal_bits += model.ideal_bits(s);
    enc.encode(model, s);
  }
  enc.finish();
  // Byte granularity plus the carryless clamp cost a fraction of a percent
  // of coding loss (measured ~0.002 bits/symbol) plus termination bytes.
  EXPECT_LE(static_cast<double>(out.size() * 8), ideal_bits * 1.005 + 64.0);
  EXPECT_GE(static_cast<double>(out.size() * 8), ideal_bits - 1.0);
}

TEST(Range, ResumedEncoderMatchesOneShot) {
  Rng rng(44);
  StaticModel model(std::vector<std::uint64_t>{500, 200, 100, 50, 10});
  const auto symbols = random_stream(rng, model, 300);

  // One-shot.
  std::vector<std::uint8_t> one;
  RangeEncoder enc_one(one);
  for (const auto s : symbols) enc_one.encode(model, s);
  enc_one.finish();

  // Suspend/resume after every single symbol (the per-hop pattern).
  std::vector<std::uint8_t> resumed;
  RangeCoderState state;
  for (const auto s : symbols) {
    RangeEncoder enc(resumed, state);
    enc.encode(model, s);
    state = enc.suspend();
  }
  {
    RangeEncoder enc(resumed, state);
    enc.finish();
  }

  EXPECT_EQ(one, resumed);
}

TEST(Range, ResumeAcrossMixedModels) {
  // Hops alternate between an id model and a retx model, as in Dophy.
  Rng rng(55);
  StaticModel ids(std::vector<std::uint64_t>{5, 10, 40, 5, 20});
  StaticModel retx(std::vector<std::uint64_t>{70, 20, 7, 3});
  std::vector<std::pair<std::uint32_t, std::uint32_t>> hops;
  for (int i = 0; i < 50; ++i) {
    hops.emplace_back(static_cast<std::uint32_t>(rng.next_below(5)),
                      static_cast<std::uint32_t>(rng.next_below(4)));
  }
  std::vector<std::uint8_t> out;
  RangeCoderState state;
  for (const auto& [id, r] : hops) {
    RangeEncoder enc(out, state);
    enc.encode(ids, id);
    enc.encode(retx, r);
    state = enc.suspend();
  }
  {
    RangeEncoder enc(out, state);
    enc.finish();
  }
  RangeDecoder dec(out);
  for (const auto& [id, r] : hops) {
    EXPECT_EQ(dec.decode(ids), id);
    EXPECT_EQ(dec.decode(retx), r);
  }
}

TEST(Range, DecoderStartByteOffset) {
  StaticModel model(4);
  std::vector<std::uint8_t> out = {0xAA, 0xBB, 0xCC};  // unrelated header bytes
  RangeEncoder enc(out);
  enc.encode(model, 2);
  enc.encode(model, 1);
  enc.finish();
  RangeDecoder dec(out, 3);
  EXPECT_EQ(dec.decode(model), 2u);
  EXPECT_EQ(dec.decode(model), 1u);
  EXPECT_FALSE(dec.likely_truncated());
}

TEST(Range, DecoderByteLimitStopsReads) {
  StaticModel model(4);
  std::vector<std::uint8_t> out;
  RangeEncoder enc(out);
  for (int i = 0; i < 64; ++i) enc.encode(model, static_cast<std::size_t>(i % 4));
  enc.finish();
  // Append trailing junk the limit must fence off.
  std::vector<std::uint8_t> padded = out;
  padded.insert(padded.end(), 8, 0xFF);
  RangeDecoder dec(padded, 0, out.size());
  for (int i = 0; i < 64; ++i) EXPECT_EQ(dec.decode(model), static_cast<std::size_t>(i % 4));
  EXPECT_LE(dec.bytes_consumed(), out.size());
}

TEST(Range, TruncatedStreamDoesNotCrash) {
  Rng rng(66);
  StaticModel model(8);
  const auto symbols = random_stream(rng, model, 100);
  std::vector<std::uint8_t> out;
  RangeEncoder enc(out);
  for (const auto s : symbols) enc.encode(model, s);
  enc.finish();

  // Decode from a truncated buffer: must either produce symbols or throw,
  // never crash / loop forever — and the zero-fill tail must trip the
  // truncation heuristic if the decode runs to completion.
  std::vector<std::uint8_t> truncated(out.begin(),
                                      out.begin() + static_cast<std::ptrdiff_t>(out.size() / 2));
  RangeDecoder dec(truncated);
  int decoded = 0;
  bool threw = false;
  try {
    for (std::size_t i = 0; i < symbols.size(); ++i) {
      (void)dec.decode(model);
      ++decoded;
    }
  } catch (const std::exception&) {
    threw = true;
  }
  EXPECT_LE(decoded, static_cast<int>(symbols.size()));
  EXPECT_TRUE(threw || dec.likely_truncated());
}

TEST(Range, CompleteStreamNeverFlagsTruncation) {
  // fill_bytes() on a full decode is exactly the termination slack: 0 or 2.
  Rng rng(77);
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    StaticModel model(2 + seed % 30);
    const auto symbols = random_stream(rng, model, 1 + seed * 7);
    std::vector<std::uint8_t> out;
    RangeEncoder enc(out);
    for (const auto s : symbols) enc.encode(model, s);
    enc.finish();
    RangeDecoder dec(out);
    for (const auto s : symbols) ASSERT_EQ(dec.decode(model), s);
    ASSERT_FALSE(dec.likely_truncated()) << "seed " << seed;
    ASSERT_TRUE(dec.fill_bytes() == 0 || dec.fill_bytes() == 2) << "seed " << seed;
  }
}

TEST(Range, EncodeAfterFinishThrows) {
  StaticModel model(4);
  std::vector<std::uint8_t> out;
  RangeEncoder enc(out);
  enc.finish();
  EXPECT_THROW(enc.encode(model, 0), std::logic_error);
}

TEST(Range, OutOfAlphabetSymbolRejected) {
  StaticModel model(2);
  std::vector<std::uint8_t> out;
  RangeEncoder enc(out);
  EXPECT_THROW(enc.encode(model, 5), std::out_of_range);
}

TEST(Range, LongSingleSymbolRunCompressesHard) {
  StaticModel model(std::vector<std::uint64_t>{60000, 1});
  std::vector<std::uint8_t> out;
  RangeEncoder enc(out);
  const std::size_t n = 10000;
  for (std::size_t i = 0; i < n; ++i) enc.encode(model, 0);
  enc.finish();
  // p(0) ~ 1 - 2^-16, so the whole run should cost well under 1 bit/symbol.
  EXPECT_LT(out.size() * 8, n / 100);
  RangeDecoder dec(out);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(dec.decode(model), 0u);
}

TEST(Range, ModelAtCoderTotalBoundary) {
  // A model whose total sits exactly at the coder's 2^16 cap must still
  // round-trip, including its rarest symbol.
  std::vector<std::uint64_t> counts{(1u << 16) - 3, 1, 1, 1};
  StaticModel model(counts);
  ASSERT_LE(model.total(), 1u << 16);
  ASSERT_GT(model.total(), (1u << 16) - 16);  // quantization keeps it near the cap
  std::vector<std::uint8_t> out;
  RangeEncoder enc(out);
  const std::vector<std::size_t> symbols{0, 3, 0, 1, 0, 2, 0, 0, 3};
  for (const auto s : symbols) enc.encode(model, s);
  enc.finish();
  RangeDecoder dec(out);
  for (const auto s : symbols) EXPECT_EQ(dec.decode(model), s);
}

TEST(Range, BytesConsumedTracksReads) {
  StaticModel model(4);
  std::vector<std::uint8_t> out;
  RangeEncoder enc(out);
  for (int i = 0; i < 50; ++i) enc.encode(model, static_cast<std::size_t>(i % 4));
  enc.finish();
  RangeDecoder dec(out);
  for (int i = 0; i < 50; ++i) (void)dec.decode(model);
  EXPECT_LE(dec.bytes_consumed(), out.size());
  EXPECT_GT(dec.bytes_consumed(), 50u / 8);  // 2 bits/symbol alphabet
}

TEST(Range, VirtualAndFastPathsAgree) {
  // decode(const StaticModel&) and decode(const FrequencyModel&) must walk
  // the stream identically — the tomo pipeline uses the fast path, the codec
  // harness the virtual one.
  Rng rng(88);
  StaticModel model(std::vector<std::uint64_t>{900, 60, 25, 10, 4, 1});
  const auto symbols = random_stream(rng, model, 500);
  std::vector<std::uint8_t> out;
  RangeEncoder enc(out);
  for (const auto s : symbols) enc.encode(model, s);
  enc.finish();
  RangeDecoder fast(out);
  RangeDecoder virt(out);
  const FrequencyModel& as_virtual = model;
  for (const auto s : symbols) {
    ASSERT_EQ(fast.decode(model), s);
    ASSERT_EQ(virt.decode(as_virtual), s);
  }
  EXPECT_EQ(fast.bytes_consumed(), virt.bytes_consumed());
}

TEST(Range, DecodePathStopsAtTerminal) {
  StaticModel ids(std::vector<std::uint64_t>{5, 10, 40, 5, 20});
  StaticModel retx(std::vector<std::uint64_t>{70, 20, 7, 3});
  const std::uint32_t terminal = 0;
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> hops = {
      {3, 1}, {2, 0}, {4, 2}, {terminal, 0}};
  std::vector<std::uint8_t> out;
  RangeEncoder enc(out);
  for (const auto& [id, r] : hops) {
    enc.encode(ids, id);
    enc.encode(retx, r);
  }
  enc.finish();

  std::vector<PathSymbol> decoded;
  RangeDecoder dec(out);
  EXPECT_TRUE(decode_path(dec, ids, retx, terminal, 16, decoded));
  ASSERT_EQ(decoded.size(), hops.size());
  for (std::size_t i = 0; i < hops.size(); ++i) {
    EXPECT_EQ(decoded[i].receiver, hops[i].first);
    EXPECT_EQ(decoded[i].retx, hops[i].second);
  }
}

TEST(Range, DecodePathHonorsMaxHops) {
  StaticModel ids(4);
  StaticModel retx(4);
  std::vector<std::uint8_t> out;
  RangeEncoder enc(out);
  for (int i = 0; i < 10; ++i) {
    enc.encode(ids, 1);  // never the terminal
    enc.encode(retx, 0);
  }
  enc.finish();
  std::vector<PathSymbol> decoded;
  RangeDecoder dec(out);
  EXPECT_FALSE(decode_path(dec, ids, retx, /*terminal=*/3, /*max_hops=*/5, decoded));
  EXPECT_EQ(decoded.size(), 5u);
}

TEST(Range, SuspendedStateIsCompact) {
  EXPECT_EQ(RangeCoderState::kSerializedSize, 8u);
}

TEST(Range, WireVersionIsPinned) {
  // Streams are not compatible across coder generations; the version byte in
  // model dissemination / fixtures must say which coder wrote them.
  EXPECT_EQ(kCodecWireVersion, 2);
}

}  // namespace
}  // namespace dophy::coding
