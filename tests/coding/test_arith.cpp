#include "dophy/coding/arith.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dophy/common/rng.hpp"
#include "dophy/common/stats.hpp"

namespace dophy::coding {
namespace {

using dophy::common::BitWriter;
using dophy::common::Rng;

std::vector<std::uint32_t> random_stream(Rng& rng, const FrequencyModel& model,
                                         std::size_t length) {
  std::vector<std::uint32_t> symbols;
  symbols.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    symbols.push_back(static_cast<std::uint32_t>(
        model.find(static_cast<std::uint32_t>(rng.next_below(model.total())))));
  }
  return symbols;
}

TEST(ArithCoderState, SerializeRoundTrip) {
  ArithCoderState st;
  st.low = 0x12345678;
  st.high = 0x9ABCDEF0;
  st.pending = 777;
  const auto bytes = st.serialize();
  const ArithCoderState back = ArithCoderState::deserialize(bytes);
  EXPECT_EQ(st, back);
}

TEST(ArithCoderState, DeserializeRejectsInvalid) {
  EXPECT_THROW((void)ArithCoderState::deserialize(std::vector<std::uint8_t>(5, 0)),
               std::runtime_error);
  ArithCoderState st;
  st.low = 10;
  st.high = 5;  // low > high
  const auto bytes = st.serialize();
  EXPECT_THROW((void)ArithCoderState::deserialize(bytes), std::runtime_error);
}

TEST(Arith, EmptyStreamFinishDecodesNothing) {
  BitWriter w;
  ArithmeticEncoder enc(w);
  enc.finish();
  EXPECT_GE(w.bit_count(), 1u);  // finish emits the disambiguating bits
}

TEST(Arith, SingleSymbolRoundTrip) {
  StaticModel model(std::vector<std::uint64_t>{10, 1});
  for (std::uint32_t s : {0u, 1u}) {
    BitWriter w;
    ArithmeticEncoder enc(w);
    enc.encode(model, s);
    enc.finish();
    ArithmeticDecoder dec(w.bytes(), 0, w.bit_count());
    EXPECT_EQ(dec.decode(model), s);
  }
}

TEST(Arith, RoundTripUniformModel) {
  Rng rng(21);
  StaticModel model(16);
  const auto symbols = random_stream(rng, model, 2000);
  BitWriter w;
  ArithmeticEncoder enc(w);
  for (const auto s : symbols) enc.encode(model, s);
  enc.finish();
  ArithmeticDecoder dec(w.bytes(), 0, w.bit_count());
  for (const auto s : symbols) EXPECT_EQ(dec.decode(model), s);
}

struct ArithSweepParam {
  std::size_t alphabet;
  std::size_t length;
  std::uint64_t seed;
};

class ArithRoundTrip : public ::testing::TestWithParam<ArithSweepParam> {};

TEST_P(ArithRoundTrip, SkewedStaticModel) {
  const auto param = GetParam();
  Rng rng(param.seed);
  // Geometric-ish skew resembling retransmission counts.
  std::vector<std::uint64_t> counts(param.alphabet);
  std::uint64_t c = 1 << 20;
  for (auto& v : counts) {
    v = c + rng.next_below(c / 2 + 1);
    c = c / 3 + 1;
  }
  StaticModel model(counts);
  const auto symbols = random_stream(rng, model, param.length);

  BitWriter w;
  ArithmeticEncoder enc(w);
  for (const auto s : symbols) enc.encode(model, s);
  enc.finish();

  ArithmeticDecoder dec(w.bytes(), 0, w.bit_count());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    ASSERT_EQ(dec.decode(model), symbols[i]) << "position " << i;
  }
}

TEST_P(ArithRoundTrip, AdaptiveModelSync) {
  const auto param = GetParam();
  Rng rng(param.seed ^ 0xABCD);
  AdaptiveModel enc_model(param.alphabet);
  AdaptiveModel dec_model(param.alphabet);
  std::vector<std::uint32_t> symbols;
  for (std::size_t i = 0; i < param.length; ++i) {
    // Skewed source: symbol 0 with p=0.7, else uniform.
    symbols.push_back(rng.bernoulli(0.7)
                          ? 0u
                          : 1u + static_cast<std::uint32_t>(
                                     rng.next_below(param.alphabet - 1)));
  }
  BitWriter w;
  ArithmeticEncoder enc(w);
  for (const auto s : symbols) {
    enc.encode(enc_model, s);
    enc_model.update(s);
  }
  enc.finish();

  ArithmeticDecoder dec(w.bytes(), 0, w.bit_count());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    const auto s = dec.decode(dec_model);
    dec_model.update(s);
    ASSERT_EQ(s, symbols[i]) << "position " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ArithRoundTrip,
    ::testing::Values(ArithSweepParam{2, 100, 1}, ArithSweepParam{2, 5000, 2},
                      ArithSweepParam{4, 1000, 3}, ArithSweepParam{8, 1000, 4},
                      ArithSweepParam{16, 2000, 5}, ArithSweepParam{100, 3000, 6},
                      ArithSweepParam{256, 1000, 7}, ArithSweepParam{3, 10000, 8}),
    [](const auto& suite_info) {
      return "a" + std::to_string(suite_info.param.alphabet) + "_n" +
             std::to_string(suite_info.param.length) + "_s" + std::to_string(suite_info.param.seed);
    });

TEST(Arith, CompressionWithinEntropyMargin) {
  Rng rng(33);
  // Heavily skewed: H ~ 0.88 bits/symbol.
  StaticModel model(std::vector<std::uint64_t>{800, 100, 60, 40});
  const std::size_t n = 20000;
  const auto symbols = random_stream(rng, model, n);
  BitWriter w;
  ArithmeticEncoder enc(w);
  double ideal_bits = 0.0;
  for (const auto s : symbols) {
    ideal_bits += model.ideal_bits(s);
    enc.encode(model, s);
  }
  enc.finish();
  // Arithmetic coding overhead is O(1) bits for the whole stream.
  EXPECT_LE(static_cast<double>(w.bit_count()), ideal_bits + 16.0);
  EXPECT_GE(static_cast<double>(w.bit_count()), ideal_bits - 1.0);
}

TEST(Arith, ResumedEncoderMatchesOneShot) {
  Rng rng(44);
  StaticModel model(std::vector<std::uint64_t>{500, 200, 100, 50, 10});
  const auto symbols = random_stream(rng, model, 300);

  // One-shot.
  BitWriter one;
  ArithmeticEncoder enc_one(one);
  for (const auto s : symbols) enc_one.encode(model, s);
  enc_one.finish();

  // Suspend/resume after every single symbol (the per-hop pattern).
  BitWriter resumed;
  ArithCoderState state;
  for (const auto s : symbols) {
    ArithmeticEncoder enc(resumed, state);
    enc.encode(model, s);
    state = enc.suspend();
  }
  {
    ArithmeticEncoder enc(resumed, state);
    enc.finish();
  }

  EXPECT_EQ(one.bit_count(), resumed.bit_count());
  EXPECT_EQ(one.bytes(), resumed.bytes());
}

TEST(Arith, ResumeAcrossMixedModels) {
  // Hops alternate between an id model and a retx model, as in Dophy.
  Rng rng(55);
  StaticModel ids(std::vector<std::uint64_t>{5, 10, 40, 5, 20});
  StaticModel retx(std::vector<std::uint64_t>{70, 20, 7, 3});
  std::vector<std::pair<std::uint32_t, std::uint32_t>> hops;
  for (int i = 0; i < 50; ++i) {
    hops.emplace_back(static_cast<std::uint32_t>(rng.next_below(5)),
                      static_cast<std::uint32_t>(rng.next_below(4)));
  }
  BitWriter w;
  ArithCoderState state;
  for (const auto& [id, r] : hops) {
    ArithmeticEncoder enc(w, state);
    enc.encode(ids, id);
    enc.encode(retx, r);
    state = enc.suspend();
  }
  {
    ArithmeticEncoder enc(w, state);
    enc.finish();
  }
  ArithmeticDecoder dec(w.bytes(), 0, w.bit_count());
  for (const auto& [id, r] : hops) {
    EXPECT_EQ(dec.decode(ids), id);
    EXPECT_EQ(dec.decode(retx), r);
  }
}

TEST(Arith, DecoderStartBitOffset) {
  StaticModel model(4);
  BitWriter w;
  w.put_bits(0b101, 3);  // unrelated prefix (e.g. header bits)
  ArithmeticEncoder enc(w);
  enc.encode(model, 2);
  enc.encode(model, 1);
  enc.finish();
  ArithmeticDecoder dec(w.bytes(), 3, w.bit_count());
  EXPECT_EQ(dec.decode(model), 2u);
  EXPECT_EQ(dec.decode(model), 1u);
}

TEST(Arith, TruncatedStreamDoesNotCrash) {
  Rng rng(66);
  StaticModel model(8);
  const auto symbols = random_stream(rng, model, 100);
  BitWriter w;
  ArithmeticEncoder enc(w);
  for (const auto s : symbols) enc.encode(model, s);
  enc.finish();

  // Decode from a truncated buffer: must either produce symbols or throw,
  // never crash / loop forever.
  std::vector<std::uint8_t> truncated(w.bytes().begin(),
                                      w.bytes().begin() +
                                          static_cast<std::ptrdiff_t>(w.byte_count() / 2));
  ArithmeticDecoder dec(truncated);
  int decoded = 0;
  try {
    for (std::size_t i = 0; i < symbols.size(); ++i) {
      (void)dec.decode(model);
      ++decoded;
    }
  } catch (const std::exception&) {
    // acceptable
  }
  EXPECT_LE(decoded, static_cast<int>(symbols.size()));
}

TEST(Arith, EncodeAfterFinishThrows) {
  StaticModel model(4);
  BitWriter w;
  ArithmeticEncoder enc(w);
  enc.finish();
  EXPECT_THROW(enc.encode(model, 0), std::logic_error);
}

TEST(Arith, ZeroLengthAlphabetSymbolRejected) {
  // A model always has freq >= 1 by construction; verify encoder guards the
  // contract anyway via a handcrafted adaptive model boundary.
  StaticModel model(2);
  BitWriter w;
  ArithmeticEncoder enc(w);
  EXPECT_THROW(enc.encode(model, 5), std::out_of_range);
}

TEST(Arith, LongSingleSymbolRunCompressesHard) {
  StaticModel model(std::vector<std::uint64_t>{60000, 1});
  BitWriter w;
  ArithmeticEncoder enc(w);
  const std::size_t n = 10000;
  for (std::size_t i = 0; i < n; ++i) enc.encode(model, 0);
  enc.finish();
  // p(0) ~ 1 - 2^-16, so the whole run should cost well under 1 bit/symbol.
  EXPECT_LT(w.bit_count(), n / 100);
  ArithmeticDecoder dec(w.bytes(), 0, w.bit_count());
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(dec.decode(model), 0u);
}

TEST(Arith, ModelAtCoderTotalBoundary) {
  // A model whose total sits exactly at the coder's 2^16 cap must still
  // round-trip, including its rarest symbol.
  std::vector<std::uint64_t> counts{(1u << 16) - 3, 1, 1, 1};
  StaticModel model(counts);
  ASSERT_LE(model.total(), 1u << 16);
  ASSERT_GT(model.total(), (1u << 16) - 16);  // quantization keeps it near the cap
  BitWriter w;
  ArithmeticEncoder enc(w);
  const std::vector<std::size_t> symbols{0, 3, 0, 1, 0, 2, 0, 0, 3};
  for (const auto s : symbols) enc.encode(model, s);
  enc.finish();
  ArithmeticDecoder dec(w.bytes(), 0, w.bit_count());
  for (const auto s : symbols) EXPECT_EQ(dec.decode(model), s);
}

TEST(Arith, BitsConsumedTracksReads) {
  StaticModel model(4);
  BitWriter w;
  ArithmeticEncoder enc(w);
  for (int i = 0; i < 50; ++i) enc.encode(model, static_cast<std::size_t>(i % 4));
  enc.finish();
  ArithmeticDecoder dec(w.bytes(), 0, w.bit_count());
  for (int i = 0; i < 50; ++i) (void)dec.decode(model);
  EXPECT_LE(dec.bits_consumed(), w.bit_count());
  EXPECT_GT(dec.bits_consumed(), 50u);  // 2 bits/symbol alphabet
}

TEST(Arith, SuspendedStateIsCompact) {
  EXPECT_EQ(ArithCoderState::kSerializedSize, 10u);
}

}  // namespace
}  // namespace dophy::coding
