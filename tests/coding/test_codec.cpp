#include "dophy/coding/codec.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "dophy/common/rng.hpp"
#include "dophy/common/stats.hpp"

namespace dophy::coding {
namespace {

/// Geometric-like symbol stream resembling aggregated retransmission counts.
std::vector<std::uint32_t> retx_stream(dophy::common::Rng& rng, std::uint32_t alphabet,
                                       std::size_t n, double p_loss) {
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t attempts = rng.geometric_trials(1.0 - p_loss);
    out.push_back(std::min(attempts - 1, alphabet - 1));
  }
  return out;
}

std::vector<std::uint64_t> count_symbols(const std::vector<std::uint32_t>& symbols,
                                         std::uint32_t alphabet) {
  std::vector<std::uint64_t> counts(alphabet, 0);
  for (const auto s : symbols) ++counts[s];
  return counts;
}

struct CodecCase {
  std::string label;
  std::function<std::unique_ptr<Codec>(const std::vector<std::uint64_t>&, std::uint32_t)> make;
};

class CodecRoundTrip : public ::testing::TestWithParam<CodecCase> {};

TEST_P(CodecRoundTrip, GeometricStreams) {
  dophy::common::Rng rng(77);
  for (const double p : {0.05, 0.2, 0.5}) {
    for (const std::uint32_t alphabet : {2u, 4u, 8u}) {
      const auto symbols = retx_stream(rng, alphabet, 2000, p);
      const auto counts = count_symbols(symbols, alphabet);
      auto codec = GetParam().make(counts, alphabet);
      std::vector<std::uint8_t> bytes;
      const std::size_t bits = codec->encode(symbols, bytes);
      EXPECT_GT(bits, 0u);
      EXPECT_LE((bits + 7) / 8, bytes.size() + 1);
      const auto decoded = codec->decode(bytes, symbols.size());
      ASSERT_EQ(decoded, symbols) << GetParam().label << " p=" << p
                                  << " alphabet=" << alphabet;
    }
  }
}

TEST_P(CodecRoundTrip, EmptyStream) {
  auto codec = GetParam().make({4, 3, 2, 1}, 4);
  std::vector<std::uint8_t> bytes;
  (void)codec->encode({}, bytes);
  EXPECT_TRUE(codec->decode(bytes, 0).empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecRoundTrip,
    ::testing::Values(
        CodecCase{"fixed", [](const auto&, std::uint32_t a) { return make_fixed_width_codec(a); }},
        CodecCase{"gamma", [](const auto&, std::uint32_t) { return make_elias_gamma_codec(); }},
        CodecCase{"rice0", [](const auto&, std::uint32_t) { return make_rice_codec(0); }},
        CodecCase{"rice1", [](const auto&, std::uint32_t) { return make_rice_codec(1); }},
        CodecCase{"huffman",
                  [](const auto& c, std::uint32_t) { return make_huffman_codec(c); }},
        CodecCase{"arith_static",
                  [](const auto& c, std::uint32_t) { return make_static_arith_codec(c); }},
        CodecCase{"arith_adaptive",
                  [](const auto&, std::uint32_t a) { return make_adaptive_arith_codec(a); }}),
    [](const auto& suite_info) { return suite_info.param.label; });

TEST(CodecComparison, ArithmeticBeatsPrefixCodesOnSkewedData) {
  dophy::common::Rng rng(88);
  const std::uint32_t alphabet = 4;
  const auto symbols = retx_stream(rng, alphabet, 20000, 0.1);  // ~90% symbol 0
  const auto counts = count_symbols(symbols, alphabet);

  auto measure = [&](Codec& codec) {
    std::vector<std::uint8_t> bytes;
    return static_cast<double>(codec.encode(symbols, bytes)) /
           static_cast<double>(symbols.size());
  };

  const double arith = measure(*make_static_arith_codec(counts));
  const double huffman = measure(*make_huffman_codec(counts));
  const double fixed = measure(*make_fixed_width_codec(alphabet));
  const double entropy = dophy::common::entropy_bits(counts);

  // Arithmetic hugs the entropy; Huffman pays the >= 1 bit/symbol floor.
  EXPECT_LT(arith, entropy + 0.05);
  EXPECT_GE(huffman, 1.0);
  EXPECT_LT(arith, huffman);
  EXPECT_LT(huffman, fixed + 1e-9);
}

TEST(CodecComparison, AdaptiveApproachesStaticWithoutTraining) {
  dophy::common::Rng rng(99);
  const std::uint32_t alphabet = 4;
  const auto symbols = retx_stream(rng, alphabet, 20000, 0.15);
  const auto counts = count_symbols(symbols, alphabet);

  std::vector<std::uint8_t> bytes;
  const double adaptive =
      static_cast<double>(make_adaptive_arith_codec(alphabet)->encode(symbols, bytes)) /
      static_cast<double>(symbols.size());
  const double trained =
      static_cast<double>(make_static_arith_codec(counts)->encode(symbols, bytes)) /
      static_cast<double>(symbols.size());
  EXPECT_LT(adaptive, trained + 0.1);  // learns the distribution on the fly
}

TEST(CodecNames, Distinct) {
  EXPECT_EQ(make_rice_codec(2)->name(), "rice-k2");
  EXPECT_EQ(make_fixed_width_codec(8)->name(), "fixed3bit");
  EXPECT_EQ(make_elias_gamma_codec()->name(), "elias-gamma");
  EXPECT_EQ(make_huffman_codec({1, 1})->name(), "huffman");
  EXPECT_EQ(make_static_arith_codec({1, 1})->name(), "arith-static");
  EXPECT_EQ(make_adaptive_arith_codec(2)->name(), "arith-adaptive");
}

}  // namespace
}  // namespace dophy::coding
