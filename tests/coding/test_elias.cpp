#include "dophy/coding/elias.hpp"

#include <gtest/gtest.h>

#include "dophy/common/rng.hpp"

namespace dophy::coding {
namespace {

using dophy::common::BitReader;
using dophy::common::BitWriter;

TEST(EliasGamma, KnownCodewords) {
  // gamma(1) = "1", gamma(2) = "010", gamma(3) = "011", gamma(4) = "00100".
  BitWriter w;
  elias_gamma_encode(w, 1);
  EXPECT_EQ(w.bit_count(), 1u);
  EXPECT_EQ(w.bytes()[0] >> 7, 1u);

  BitWriter w2;
  elias_gamma_encode(w2, 4);
  EXPECT_EQ(w2.bit_count(), 5u);
  EXPECT_EQ(w2.bytes()[0] >> 3, 0b00100u);
}

TEST(EliasGamma, BitLengthFormula) {
  EXPECT_EQ(elias_gamma_bits(1), 1u);
  EXPECT_EQ(elias_gamma_bits(2), 3u);
  EXPECT_EQ(elias_gamma_bits(3), 3u);
  EXPECT_EQ(elias_gamma_bits(4), 5u);
  EXPECT_EQ(elias_gamma_bits(255), 15u);
}

TEST(EliasGamma, RoundTripRange) {
  BitWriter w;
  for (std::uint64_t v = 1; v <= 1000; ++v) elias_gamma_encode(w, v);
  BitReader r(w.bytes(), w.bit_count());
  for (std::uint64_t v = 1; v <= 1000; ++v) EXPECT_EQ(elias_gamma_decode(r), v);
}

TEST(EliasGamma, RoundTripLargeValues) {
  dophy::common::Rng rng(1);
  BitWriter w;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t v = 1 + (rng.next_u64() >> (1 + rng.next_below(60)));
    values.push_back(v);
    elias_gamma_encode(w, v);
  }
  BitReader r(w.bytes(), w.bit_count());
  for (const auto v : values) EXPECT_EQ(elias_gamma_decode(r), v);
}

TEST(EliasGamma, ZeroRejected) {
  BitWriter w;
  EXPECT_THROW(elias_gamma_encode(w, 0), std::invalid_argument);
  EXPECT_EQ(elias_gamma_bits(0), 0u);
}

TEST(EliasGamma, MalformedAllZerosThrows) {
  const std::vector<std::uint8_t> zeros(10, 0);
  BitReader r(zeros);
  EXPECT_THROW((void)elias_gamma_decode(r), std::exception);
}

TEST(EliasDelta, RoundTripRange) {
  BitWriter w;
  for (std::uint64_t v = 1; v <= 1000; ++v) elias_delta_encode(w, v);
  BitReader r(w.bytes(), w.bit_count());
  for (std::uint64_t v = 1; v <= 1000; ++v) EXPECT_EQ(elias_delta_decode(r), v);
}

TEST(EliasDelta, ShorterThanGammaForLargeValues) {
  EXPECT_LT(elias_delta_bits(1000000), elias_gamma_bits(1000000));
}

TEST(EliasDelta, BitLengthMatchesEncoding) {
  for (std::uint64_t v : {1ull, 2ull, 17ull, 100ull, 65536ull}) {
    BitWriter w;
    elias_delta_encode(w, v);
    EXPECT_EQ(w.bit_count(), elias_delta_bits(v));
  }
}

TEST(EliasGamma, BitLengthMatchesEncoding) {
  for (std::uint64_t v : {1ull, 2ull, 17ull, 100ull, 65536ull}) {
    BitWriter w;
    elias_gamma_encode(w, v);
    EXPECT_EQ(w.bit_count(), elias_gamma_bits(v));
  }
}

}  // namespace
}  // namespace dophy::coding
