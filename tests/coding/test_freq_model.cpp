#include "dophy/coding/freq_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "dophy/common/rng.hpp"

namespace dophy::coding {
namespace {

void check_model_invariants(const FrequencyModel& m) {
  std::uint32_t cum = 0;
  for (std::size_t s = 0; s < m.symbol_count(); ++s) {
    EXPECT_EQ(m.cum(s), cum);
    EXPECT_GE(m.freq(s), 1u) << "symbol " << s << " must stay codable";
    cum += m.freq(s);
  }
  EXPECT_EQ(m.total(), cum);
  EXPECT_LE(m.total(), kMaxModelTotal);
  // find() inverts the cumulative mapping everywhere.
  for (std::size_t s = 0; s < m.symbol_count(); ++s) {
    EXPECT_EQ(m.find(m.cum(s)), s);
    EXPECT_EQ(m.find(m.cum(s) + m.freq(s) - 1), s);
  }
}

TEST(StaticModel, UniformConstruction) {
  StaticModel m(8);
  EXPECT_EQ(m.symbol_count(), 8u);
  for (std::size_t s = 0; s < 8; ++s) EXPECT_EQ(m.freq(s), 1u);
  check_model_invariants(m);
}

TEST(StaticModel, ProportionalToCounts) {
  StaticModel m(std::vector<std::uint64_t>{100, 50, 25, 25});
  EXPECT_GT(m.freq(0), m.freq(1));
  EXPECT_GT(m.freq(1), m.freq(2));
  EXPECT_NEAR(static_cast<double>(m.freq(0)) / m.freq(1), 2.0, 0.1);
  check_model_invariants(m);
}

TEST(StaticModel, ZeroCountsGetFloorOne) {
  StaticModel m(std::vector<std::uint64_t>{1000, 0, 0});
  EXPECT_GE(m.freq(1), 1u);
  EXPECT_GE(m.freq(2), 1u);
  check_model_invariants(m);
}

TEST(StaticModel, AllZeroCountsUniform) {
  StaticModel m(std::vector<std::uint64_t>{0, 0, 0, 0});
  for (std::size_t s = 0; s < 4; ++s) EXPECT_EQ(m.freq(s), 1u);
}

TEST(StaticModel, HugeCountsQuantized) {
  StaticModel m(std::vector<std::uint64_t>{1ull << 50, 1ull << 49, 1});
  EXPECT_LE(m.total(), kMaxModelTotal);
  check_model_invariants(m);
}

TEST(StaticModel, SerializeRoundTrip) {
  StaticModel m(std::vector<std::uint64_t>{7, 1, 300, 42, 0, 9});
  const auto bytes = m.serialize();
  const StaticModel back = StaticModel::deserialize(bytes);
  EXPECT_EQ(m, back);
  check_model_invariants(back);
}

TEST(StaticModel, DeserializeRejectsGarbage) {
  EXPECT_THROW((void)StaticModel::deserialize({}), std::exception);
  const std::vector<std::uint8_t> zero_symbols{0};
  EXPECT_THROW((void)StaticModel::deserialize(zero_symbols), std::exception);
}

TEST(StaticModel, InvalidConstruction) {
  EXPECT_THROW(StaticModel(0), std::invalid_argument);
  EXPECT_THROW(StaticModel(static_cast<std::size_t>(kMaxModelTotal) + 1),
               std::invalid_argument);
}

TEST(StaticModel, FindOutOfRangeThrows) {
  StaticModel m(4);
  EXPECT_THROW((void)m.find(m.total()), std::out_of_range);
}

TEST(AdaptiveModel, StartsUniform) {
  AdaptiveModel m(10);
  for (std::size_t s = 0; s < 10; ++s) EXPECT_EQ(m.freq(s), 1u);
  check_model_invariants(m);
}

TEST(AdaptiveModel, UpdateIncreasesFrequency) {
  AdaptiveModel m(4, 32);
  const auto before = m.freq(2);
  m.update(2);
  EXPECT_EQ(m.freq(2), before + 32);
  check_model_invariants(m);
}

TEST(AdaptiveModel, RescaleKeepsSymbolsCodable) {
  AdaptiveModel m(4, 64);
  for (int i = 0; i < 5000; ++i) m.update(0);
  check_model_invariants(m);
  EXPECT_GT(m.freq(0), m.freq(1));
  EXPECT_GE(m.freq(3), 1u);
  EXPECT_LE(m.total(), kMaxModelTotal);
}

TEST(AdaptiveModel, TracksDistributionShift) {
  dophy::common::Rng rng(3);
  AdaptiveModel m(4, 32);
  for (int i = 0; i < 2000; ++i) m.update(0);
  for (int i = 0; i < 6000; ++i) m.update(3);
  EXPECT_GT(m.freq(3), m.freq(0));
}

TEST(AdaptiveModel, InvalidArgs) {
  EXPECT_THROW(AdaptiveModel(0), std::invalid_argument);
  EXPECT_THROW(AdaptiveModel(4, 0), std::invalid_argument);
  AdaptiveModel m(4);
  EXPECT_THROW(m.update(4), std::out_of_range);
}

TEST(QuantizeCounts, PreservesTotalBound) {
  dophy::common::Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.next_below(300));
    std::vector<std::uint64_t> counts(n);
    for (auto& c : counts) c = rng.next_below(1ull << rng.next_below(40));
    const auto freqs = quantize_counts(counts, kMaxModelTotal);
    const std::uint64_t total =
        std::accumulate(freqs.begin(), freqs.end(), std::uint64_t{0});
    EXPECT_LE(total, kMaxModelTotal);
    for (const auto f : freqs) EXPECT_GE(f, 1u);
  }
}

TEST(QuantizeCounts, RejectsImpossible) {
  EXPECT_THROW((void)quantize_counts({}, 100), std::invalid_argument);
  EXPECT_THROW((void)quantize_counts(std::vector<std::uint64_t>(10, 1), 5),
               std::invalid_argument);
}

TEST(FrequencyModel, IdealBitsMatchesProbability) {
  StaticModel m(std::vector<std::uint64_t>{3, 1});
  // freq ratio 3:1 -> p(0)=0.75, p(1)=0.25 (approximately, post quantization)
  EXPECT_NEAR(m.ideal_bits(0), -std::log2(0.75), 0.05);
  EXPECT_NEAR(m.ideal_bits(1), 2.0, 0.1);
}

}  // namespace
}  // namespace dophy::coding
