#include "dophy/coding/varint.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "dophy/common/rng.hpp"

namespace dophy::coding {
namespace {

TEST(Varint, SmallValuesSingleByte) {
  for (std::uint64_t v : {0ull, 1ull, 127ull}) {
    std::vector<std::uint8_t> buf;
    write_varint(buf, v);
    EXPECT_EQ(buf.size(), 1u);
    std::size_t off = 0;
    EXPECT_EQ(read_varint(buf, off), v);
    EXPECT_EQ(off, 1u);
  }
}

TEST(Varint, BoundaryValues) {
  for (std::uint64_t v : std::vector<std::uint64_t>{
           128, 16383, 16384, 1ull << 32, std::numeric_limits<std::uint64_t>::max()}) {
    std::vector<std::uint8_t> buf;
    write_varint(buf, v);
    EXPECT_EQ(buf.size(), varint_size(v));
    std::size_t off = 0;
    EXPECT_EQ(read_varint(buf, off), v);
  }
}

TEST(Varint, SizeMatchesEncoding) {
  EXPECT_EQ(varint_size(0), 1u);
  EXPECT_EQ(varint_size(127), 1u);
  EXPECT_EQ(varint_size(128), 2u);
  EXPECT_EQ(varint_size(std::numeric_limits<std::uint64_t>::max()), 10u);
}

TEST(Varint, SequencesRoundTrip) {
  dophy::common::Rng rng(2);
  std::vector<std::uint64_t> values;
  std::vector<std::uint8_t> buf;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_u64() >> rng.next_below(64);
    values.push_back(v);
    write_varint(buf, v);
  }
  std::size_t off = 0;
  for (const std::uint64_t v : values) EXPECT_EQ(read_varint(buf, off), v);
  EXPECT_EQ(off, buf.size());
}

TEST(Varint, TruncatedThrows) {
  std::vector<std::uint8_t> buf;
  write_varint(buf, 1u << 20);
  buf.pop_back();
  std::size_t off = 0;
  EXPECT_THROW((void)read_varint(buf, off), std::runtime_error);
}

TEST(Varint, OverlongThrows) {
  const std::vector<std::uint8_t> buf(11, 0x80);
  std::size_t off = 0;
  EXPECT_THROW((void)read_varint(buf, off), std::runtime_error);
}

TEST(Varint, EmptyBufferThrows) {
  std::size_t off = 0;
  EXPECT_THROW((void)read_varint({}, off), std::runtime_error);
}

}  // namespace
}  // namespace dophy::coding
