// Golden wire vectors: every codec encodes a fixed-seed corpus and the
// resulting bytes are pinned as in-tree fixtures (tests/coding/golden/
// <codec>.bin).  Any change to a codec's emitted bytes — intentional or not —
// trips this suite, forcing a conscious wire-version decision.
//
// Fixture format: [1 byte wire version][payload bytes].
// Regenerate after an intentional wire change with
//   DOPHY_GOLDEN_REGEN=1 ./test_coding --gtest_filter='*GoldenWire*'
// and commit the updated .bin files alongside the version bump.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "dophy/coding/arith.hpp"
#include "dophy/coding/codec.hpp"
#include "dophy/common/rng.hpp"

#ifndef DOPHY_GOLDEN_WIRE_DIR
#error "build must define DOPHY_GOLDEN_WIRE_DIR (see tests/CMakeLists.txt)"
#endif

namespace dophy::coding {
namespace {

constexpr std::uint32_t kAlphabet = 8;
constexpr std::size_t kCorpusLength = 512;
constexpr std::uint64_t kCorpusSeed = 20260809;

bool regen_mode() { return std::getenv("DOPHY_GOLDEN_REGEN") != nullptr; }

std::string fixture_path(const std::string& codec_name) {
  return std::string(DOPHY_GOLDEN_WIRE_DIR) + "/" + codec_name + ".bin";
}

/// The pinned corpus: geometric retransmission-count symbols, fixed seed.
const std::vector<std::uint32_t>& corpus() {
  static const std::vector<std::uint32_t> symbols = [] {
    dophy::common::Rng rng(kCorpusSeed);
    std::vector<std::uint32_t> s;
    s.reserve(kCorpusLength);
    for (std::size_t i = 0; i < kCorpusLength; ++i) {
      s.push_back(std::min(rng.geometric_trials(0.75) - 1, kAlphabet - 1));
    }
    return s;
  }();
  return symbols;
}

std::vector<std::uint64_t> corpus_counts() {
  std::vector<std::uint64_t> counts(kAlphabet, 1);
  for (const auto s : corpus()) ++counts[s];
  return counts;
}

struct GoldenCase {
  std::string name;        ///< fixture file stem
  std::uint8_t wire_version;
  std::unique_ptr<Codec> (*make)();
};

std::vector<std::uint8_t> read_fixture(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_fixture(const std::string& path, std::uint8_t version,
                   const std::vector<std::uint8_t>& payload) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write fixture " << path;
  out.put(static_cast<char>(version));
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
}

class GoldenWire : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenWire, EncodedBytesMatchPinnedFixture) {
  const auto& param = GetParam();
  auto codec = param.make();
  std::vector<std::uint8_t> payload;
  (void)codec->encode(corpus(), payload);

  const std::string path = fixture_path(param.name);
  if (regen_mode()) {
    write_fixture(path, param.wire_version, payload);
    std::printf("golden-wire: regenerated %s (%zu bytes)\n", path.c_str(), payload.size());
    return;
  }

  const auto fixture = read_fixture(path);
  ASSERT_FALSE(fixture.empty()) << "missing fixture " << path
                                << " — run with DOPHY_GOLDEN_REGEN=1 to create it";
  ASSERT_EQ(fixture[0], param.wire_version) << param.name << ": wire version drifted";
  const std::vector<std::uint8_t> pinned(fixture.begin() + 1, fixture.end());
  EXPECT_EQ(payload, pinned)
      << param.name << ": emitted bytes changed; if intentional, bump the wire "
      << "version and regenerate with DOPHY_GOLDEN_REGEN=1";
}

TEST_P(GoldenWire, PinnedFixtureDecodesToCorpus) {
  if (regen_mode()) GTEST_SKIP() << "regen run";
  const auto& param = GetParam();
  const auto fixture = read_fixture(fixture_path(param.name));
  ASSERT_FALSE(fixture.empty());
  const std::vector<std::uint8_t> payload(fixture.begin() + 1, fixture.end());
  auto codec = param.make();
  const DecodeOutcome outcome = codec->try_decode(payload, corpus().size());
  ASSERT_TRUE(outcome.ok()) << param.name << ": " << to_string(outcome.error);
  EXPECT_EQ(outcome.symbols, corpus()) << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, GoldenWire,
    ::testing::Values(
        GoldenCase{"fixed", 2, [] { return make_fixed_width_codec(kAlphabet); }},
        GoldenCase{"gamma", 2, [] { return make_elias_gamma_codec(); }},
        GoldenCase{"rice1", 2, [] { return make_rice_codec(1); }},
        GoldenCase{"huffman", 2, [] { return make_huffman_codec(corpus_counts()); }},
        GoldenCase{"arith_static", 2, [] { return make_static_arith_codec(corpus_counts()); }},
        GoldenCase{"arith_adaptive", 2, [] { return make_adaptive_arith_codec(kAlphabet); }},
        GoldenCase{"legacy_arith_static", 1,
                   [] { return make_legacy_static_arith_codec(corpus_counts()); }},
        GoldenCase{"legacy_arith_adaptive", 1,
                   [] { return make_legacy_adaptive_arith_codec(kAlphabet); }}),
    [](const auto& suite_info) { return suite_info.param.name; });

TEST(GoldenWireMeta, RangeCoderVersionMatchesFixtures) {
  // The arith fixtures above pin version 2; keep the header constant honest.
  EXPECT_EQ(kCodecWireVersion, 2u);
}

}  // namespace
}  // namespace dophy::coding
