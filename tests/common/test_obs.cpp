// dophy::obs unit tests: metrics registry (interning, cross-thread merge,
// histogram bucketing, deltas), phase timers, the JSON writer/parser, and
// the JSONL event trace round-trip.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dophy/obs/json.hpp"
#include "dophy/obs/metrics.hpp"
#include "dophy/obs/timer.hpp"
#include "dophy/obs/trace.hpp"

namespace dophy::obs {
namespace {

// --- Registry ---------------------------------------------------------------

TEST(Registry, CounterInterningIsIdempotent) {
  Registry reg;
  const auto a = reg.counter("x");
  const auto b = reg.counter("x");
  a.inc(2);
  b.inc(3);
  EXPECT_EQ(reg.snapshot().counters.at("x"), 5u);
}

TEST(Registry, KindMismatchThrows) {
  Registry reg;
  (void)reg.counter("metric");
  EXPECT_THROW((void)reg.gauge("metric"), std::logic_error);
  EXPECT_THROW((void)reg.histogram("metric", {1, 2}), std::logic_error);
}

TEST(Registry, BadHistogramBoundsThrow) {
  Registry reg;
  EXPECT_THROW((void)reg.histogram("empty", {}), std::logic_error);
  EXPECT_THROW((void)reg.histogram("nonmono", {1, 1}), std::logic_error);
  EXPECT_THROW((void)reg.histogram("decreasing", {4, 2}), std::logic_error);
}

TEST(Registry, CountersMergeAcrossThreads) {
  Registry reg;
  const auto c = reg.counter("threads.total");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.snapshot().counters.at("threads.total"), kThreads * kPerThread);
}

TEST(Registry, HistogramBucketing) {
  Registry reg;
  const auto h = reg.histogram("h", {1, 2, 4});
  for (const std::uint64_t v : {0u, 1u, 2u, 3u, 4u, 9u}) h.observe(v);

  const auto snap = reg.snapshot().histograms.at("h");
  ASSERT_EQ(snap.bounds, (std::vector<std::uint64_t>{1, 2, 4}));
  // Buckets are inclusive upper bounds: {0,1} | {2} | {3,4} | overflow {9}.
  ASSERT_EQ(snap.counts, (std::vector<std::uint64_t>{2, 1, 2, 1}));
  EXPECT_EQ(snap.total, 6u);
  EXPECT_EQ(snap.sum, 19u);
  EXPECT_DOUBLE_EQ(snap.mean(), 19.0 / 6.0);
}

TEST(Registry, GaugeLastWriteWins) {
  Registry reg;
  const auto g = reg.gauge("g");
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauges.at("g"), -2.25);
}

TEST(Registry, DeltaSince) {
  Registry reg;
  const auto c = reg.counter("c");
  const auto h = reg.histogram("h", {10});
  const auto g = reg.gauge("g");
  c.inc(5);
  h.observe(3);
  g.set(1.0);

  const auto base = reg.snapshot();
  c.inc(3);
  h.observe(20);
  g.set(7.0);
  const auto delta = reg.snapshot().delta_since(base);

  EXPECT_EQ(delta.counters.at("c"), 3u);
  EXPECT_EQ(delta.histograms.at("h").counts, (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(delta.histograms.at("h").total, 1u);
  EXPECT_EQ(delta.histograms.at("h").sum, 20u);
  // Gauges are point-in-time readings, not accumulators.
  EXPECT_DOUBLE_EQ(delta.gauges.at("g"), 7.0);
}

TEST(Registry, DisableDropsUpdates) {
  Registry reg;
  const auto c = reg.counter("c");
  const auto h = reg.histogram("h", {1});
  EXPECT_TRUE(reg.metrics_enabled());
  c.inc(2);
  reg.set_enabled(false);
  c.inc(100);
  h.observe(5);
  reg.set_enabled(true);
  c.inc(3);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 5u);
  EXPECT_EQ(snap.histograms.at("h").total, 0u);
}

TEST(Registry, ResetZeroes) {
  Registry reg;
  const auto c = reg.counter("c");
  const auto h = reg.histogram("h", {1});
  c.inc(4);
  h.observe(1);
  reg.reset();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 0u);
  EXPECT_EQ(snap.histograms.at("h").total, 0u);
  // Handles stay valid after a reset.
  c.inc();
  EXPECT_EQ(reg.snapshot().counters.at("c"), 1u);
}

TEST(Registry, ManyMetricsSpanChunks) {
  // More slots than one 512-slot chunk to exercise chunk allocation.
  Registry reg;
  std::vector<Counter> counters;
  counters.reserve(700);
  for (int i = 0; i < 700; ++i) {
    counters.push_back(reg.counter("c" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < counters.size(); ++i) {
    counters[i].inc(static_cast<std::uint64_t>(i));
  }
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("c0"), 0u);
  EXPECT_EQ(snap.counters.at("c511"), 511u);
  EXPECT_EQ(snap.counters.at("c512"), 512u);
  EXPECT_EQ(snap.counters.at("c699"), 699u);
}

TEST(Registry, SnapshotToJsonIsFlatlyParseableSections) {
  Registry reg;
  reg.counter("a").inc(2);
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a\":2"), std::string::npos);
}

// --- Timers -----------------------------------------------------------------

TEST(Timer, RecordsElapsedIntoProfile) {
  PhaseProfile profile;
  {
    ObsTimer t(profile, "phase");
    EXPECT_GE(t.elapsed_s(), 0.0);
  }
  ASSERT_EQ(profile.calls().at("phase"), 1u);
  EXPECT_GE(profile.seconds().at("phase"), 0.0);
}

TEST(Timer, StopIsIdempotent) {
  PhaseProfile profile;
  {
    ObsTimer t(profile, "p");
    t.stop();
    t.stop();  // second stop and the destructor must not double-record
  }
  EXPECT_EQ(profile.calls().at("p"), 1u);
}

TEST(Timer, ElapsedIsMonotonic) {
  PhaseProfile profile;
  ObsTimer t(profile, "p");
  const double a = t.elapsed_s();
  const double b = t.elapsed_s();
  EXPECT_GE(b, a);
  t.stop();
}

TEST(Timer, ProfileMergeSums) {
  PhaseProfile a, b;
  a.add("x", 1.0);
  b.add("x", 2.0);
  b.add("y", 3.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.seconds().at("x"), 3.0);
  EXPECT_DOUBLE_EQ(a.seconds().at("y"), 3.0);
  EXPECT_EQ(a.calls().at("x"), 2u);
}

TEST(Timer, GlobalPhasesMergeAndReset) {
  reset_global_phases();
  PhaseProfile p;
  p.add("g", 0.5);
  merge_global_phases(p);
  merge_global_phases(p);
  EXPECT_DOUBLE_EQ(global_phases().seconds().at("g"), 1.0);
  reset_global_phases();
  EXPECT_TRUE(global_phases().seconds().empty());
}

// --- JSON -------------------------------------------------------------------

TEST(Json, WriterProducesNestedJson) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("do\"phy\n");
  w.key("n").value(std::uint64_t{42});
  w.key("neg").value(std::int64_t{-7});
  w.key("ok").value(true);
  w.key("list").begin_array().value(std::uint64_t{1}).value(std::uint64_t{2}).end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"do\\\"phy\\n\",\"n\":42,\"neg\":-7,\"ok\":true,\"list\":[1,2]}");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_object();
  w.key("bad").value(std::numeric_limits<double>::quiet_NaN());
  w.end_object();
  EXPECT_EQ(w.str(), "{\"bad\":null}");
}

TEST(Json, ParseFlatObjectRoundTrip) {
  const auto parsed =
      parse_flat_json_object(R"({"ev":"packet_fate","t":123,"pi":3.5,"up":true,"s":"a\"b"})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at("ev"), "packet_fate");
  EXPECT_EQ(parsed->at("t"), "123");
  EXPECT_EQ(parsed->at("pi"), "3.5");
  EXPECT_EQ(parsed->at("up"), "true");
  EXPECT_EQ(parsed->at("s"), "a\"b");
}

TEST(Json, ParseRejectsNestedAndMalformed) {
  EXPECT_FALSE(parse_flat_json_object(R"({"a":{"b":1}})").has_value());
  EXPECT_FALSE(parse_flat_json_object(R"({"a":[1]})").has_value());
  EXPECT_FALSE(parse_flat_json_object("not json").has_value());
  EXPECT_FALSE(parse_flat_json_object(R"({"a":1)").has_value());
}

TEST(Json, RecursiveParserHandlesNestedDocuments) {
  const auto doc = parse_json(
      R"({"metrics":{"counters":{"a":3},"histograms":{"h":{"total":7,"buckets":[1,2,4]}}},)"
      R"("ok":true,"name":"run \"x\"","none":null})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const auto* metrics = doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  const auto* counters = metrics->find("counters");
  ASSERT_NE(counters, nullptr);
  const auto* a = counters->find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->is_number());
  EXPECT_DOUBLE_EQ(a->number, 3.0);
  const auto* buckets = metrics->find("histograms")->find("h")->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  ASSERT_EQ(buckets->array.size(), 3u);
  EXPECT_DOUBLE_EQ(buckets->array[2].number, 4.0);
  EXPECT_TRUE(doc->find("ok")->is_bool());
  EXPECT_TRUE(doc->find("ok")->boolean);
  EXPECT_EQ(doc->find("name")->string, "run \"x\"");
  EXPECT_TRUE(doc->find("none")->is_null());
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(Json, RecursiveParserRejectsGarbage) {
  EXPECT_FALSE(parse_json("").has_value());
  EXPECT_FALSE(parse_json("{").has_value());
  EXPECT_FALSE(parse_json(R"({"a":1} trailing)").has_value());
  EXPECT_FALSE(parse_json(R"({"a":})").has_value());
  EXPECT_FALSE(parse_json(R"([1,2,)").has_value());
  // Depth cap: 100 nested arrays exceeds the 64-level limit.
  std::string deep(100, '[');
  deep.append(100, ']');
  EXPECT_FALSE(parse_json(deep).has_value());
}

// --- Event trace ------------------------------------------------------------

TEST(Trace, JsonlRoundTripThroughSink) {
  EventTrace trace;
  std::vector<std::string> lines;
  trace.set_sink([&](std::string_view line) { lines.emplace_back(line); });
  trace.enable(EventKind::kPacketFate);

  const ScopedRunContext ctx(77);
  trace.event(EventKind::kPacketFate, 123456)
      .u64("origin", 9)
      .str("fate", "delivered")
      .f64("x", 1.5)
      .boolean("late", false);

  // Emission is batched per thread; flush() drains the buffer to the sink.
  trace.flush();
  ASSERT_EQ(lines.size(), 1u);
  const auto parsed = parse_flat_json_object(lines[0]);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at("ev"), "packet_fate");
  EXPECT_EQ(parsed->at("t"), "123456");
  EXPECT_EQ(parsed->at("run"), "77");
  EXPECT_EQ(parsed->at("origin"), "9");
  EXPECT_EQ(parsed->at("fate"), "delivered");
  EXPECT_EQ(parsed->at("late"), "false");
  EXPECT_EQ(trace.emitted_count(), 1u);
}

TEST(Trace, MaskTogglesKinds) {
  EventTrace trace;
  EXPECT_FALSE(trace.enabled(EventKind::kParentChange));
  trace.enable(EventKind::kParentChange);
  EXPECT_TRUE(trace.enabled(EventKind::kParentChange));
  EXPECT_FALSE(trace.enabled(EventKind::kTrickleTx));
  trace.enable_all();
  for (std::uint32_t k = 0; k < static_cast<std::uint32_t>(EventKind::kCount); ++k) {
    EXPECT_TRUE(trace.enabled(static_cast<EventKind>(k)));
  }
  trace.disable_all();
  EXPECT_FALSE(trace.enabled(EventKind::kParentChange));
}

TEST(Trace, EventKindNames) {
  EXPECT_EQ(to_string(EventKind::kPacketFate), "packet_fate");
  EXPECT_EQ(to_string(EventKind::kArqExhausted), "arq_exhausted");
  EXPECT_EQ(to_string(EventKind::kParentChange), "parent_change");
  EXPECT_EQ(to_string(EventKind::kQueueOverflow), "queue_overflow");
  EXPECT_EQ(to_string(EventKind::kNodeChurn), "node_churn");
  EXPECT_EQ(to_string(EventKind::kTrickleTx), "trickle_tx");
  EXPECT_EQ(to_string(EventKind::kTrickleReset), "trickle_reset");
  EXPECT_EQ(to_string(EventKind::kModelUpdate), "model_update");
  EXPECT_EQ(to_string(EventKind::kDecodeFailure), "decode_failure");
  EXPECT_EQ(to_string(EventKind::kSpan), "span");
}

TEST(Trace, BatchedEmissionPreservesOrderAndFlushesOnThreshold) {
  EventTrace trace;
  std::vector<std::string> lines;
  trace.set_sink([&](std::string_view line) { lines.emplace_back(line); });
  trace.enable(EventKind::kPacketFate);

  const ScopedRunContext ctx(1);
  // Two full batches plus a partial one: the first 2*kFlushLines records
  // reach the sink on their own once each buffer fills; the tail needs an
  // explicit flush.
  constexpr std::uint64_t kTotal = 2 * 256 + 17;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    trace.event(EventKind::kPacketFate, i).u64("seq", i);
  }
  EXPECT_EQ(lines.size(), 2u * 256u);  // threshold-crossing auto-flushes
  trace.flush();
  ASSERT_EQ(lines.size(), kTotal);
  EXPECT_EQ(trace.emitted_count(), kTotal);

  // Single-writer order survives batching.
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    const auto parsed = parse_flat_json_object(lines[i]);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->at("seq"), std::to_string(i));
  }
}

TEST(Trace, FlushOnCloseAndDropWithoutDestination) {
  EventTrace trace;
  std::vector<std::string> lines;
  trace.set_sink([&](std::string_view line) { lines.emplace_back(line); });
  trace.enable(EventKind::kPacketFate);
  trace.event(EventKind::kPacketFate, 1).u64("seq", 1);
  EXPECT_TRUE(lines.empty());  // buffered, below threshold
  trace.close();               // close() drains the buffer first
  EXPECT_EQ(lines.size(), 1u);

  // With no sink or file attached, records are dropped without buffering.
  trace.event(EventKind::kPacketFate, 2).u64("seq", 2);
  trace.flush();
  EXPECT_EQ(lines.size(), 1u);
  EXPECT_EQ(trace.emitted_count(), 1u);
}

TEST(Trace, RunContextRestoredByScope) {
  EventTrace::set_run_context(1);
  {
    const ScopedRunContext ctx(42);
    EXPECT_EQ(EventTrace::run_context(), 42u);
    {
      const ScopedRunContext inner(43);
      EXPECT_EQ(EventTrace::run_context(), 43u);
    }
    EXPECT_EQ(EventTrace::run_context(), 42u);
  }
  EXPECT_EQ(EventTrace::run_context(), 1u);
}

}  // namespace
}  // namespace dophy::obs
