// DedupeWindow: open-addressed sliding-window duplicate detector.  The
// reference model is the classic unordered_set + FIFO queue; the table must
// give identical membership answers through growth, eviction
// (backward-shift deletion), and clear().

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "dophy/common/dedupe_window.hpp"
#include "dophy/common/rng.hpp"

namespace {

using dophy::common::DedupeWindow;

// Reference implementation: membership over the most recent `window` keys.
class ModelWindow {
 public:
  explicit ModelWindow(std::size_t window) : window_(window) {}

  bool check_and_insert(std::uint64_t key) {
    if (set_.count(key) != 0) return true;
    set_.insert(key);
    order_.push_back(key);
    if (order_.size() > window_) {
      set_.erase(order_.front());
      order_.pop_front();
    }
    return false;
  }

 private:
  std::size_t window_;
  std::unordered_set<std::uint64_t> set_;
  std::deque<std::uint64_t> order_;
};

TEST(DedupeWindowTest, FirstInsertThenDuplicate) {
  DedupeWindow w(8);
  EXPECT_FALSE(w.check_and_insert(42));
  EXPECT_TRUE(w.check_and_insert(42));
  EXPECT_EQ(w.size(), 1u);
}

TEST(DedupeWindowTest, EvictsOldestPastCapacity) {
  DedupeWindow w(3);
  EXPECT_FALSE(w.check_and_insert(1));
  EXPECT_FALSE(w.check_and_insert(2));
  EXPECT_FALSE(w.check_and_insert(3));
  EXPECT_FALSE(w.check_and_insert(4));  // evicts 1
  EXPECT_EQ(w.size(), 3u);
  EXPECT_FALSE(w.check_and_insert(1));  // 1 forgotten — inserts again
  EXPECT_TRUE(w.check_and_insert(3));
  EXPECT_TRUE(w.check_and_insert(4));
}

// Growth preserves membership: insert far more distinct keys than the
// initial 16-slot table holds and confirm every in-window key still answers
// "seen" while all evicted keys answer "new".
TEST(DedupeWindowTest, MembershipSurvivesGrowth) {
  constexpr std::size_t kWindow = 600;  // several doublings past 16 slots
  DedupeWindow w(kWindow);
  for (std::uint64_t k = 0; k < kWindow; ++k) {
    EXPECT_FALSE(w.check_and_insert(k * 2654435761u));
  }
  EXPECT_EQ(w.size(), kWindow);
  for (std::uint64_t k = 0; k < kWindow; ++k) {
    EXPECT_TRUE(w.check_and_insert(k * 2654435761u)) << "lost key " << k;
  }
}

TEST(DedupeWindowTest, ClearForgetsEverything) {
  DedupeWindow w(16);
  for (std::uint64_t k = 0; k < 10; ++k) ASSERT_FALSE(w.check_and_insert(k));
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  for (std::uint64_t k = 0; k < 10; ++k) EXPECT_FALSE(w.check_and_insert(k));
}

// Randomized differential test against the set+deque model: duplicates and
// evictions interleave across multiple growth boundaries.
TEST(DedupeWindowTest, MatchesReferenceModelUnderRandomTraffic) {
  for (const std::size_t window : {1u, 2u, 7u, 64u, 300u}) {
    DedupeWindow w(window);
    ModelWindow model(window);
    dophy::common::Rng rng(0x5eedu + window);
    for (int i = 0; i < 20000; ++i) {
      // Narrow key range forces frequent duplicates and re-insertions of
      // previously evicted keys.
      const std::uint64_t key = rng.next_u64() % (4 * window + 3);
      ASSERT_EQ(w.check_and_insert(key), model.check_and_insert(key))
          << "window=" << window << " step=" << i << " key=" << key;
    }
  }
}

}  // namespace
