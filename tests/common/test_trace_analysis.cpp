// dophy_trace analysis library: trace summarization (drop causes, per-hop
// latency percentiles, per-link retries, span accounting) and run-report
// diffing with thresholds.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "dophy/obs/trace_analysis.hpp"

namespace dophy::obs {
namespace {

const char* const kTrace =
    R"({"ev":"span","t":5,"run":1,"op":"b","id":1,"kind":"pkt"})"
    "\n"
    R"({"ev":"span","t":40,"run":1,"op":"x","id":2,"kind":"hop","dur":10,"from":3,"to":2,"attempts":2,"ok":true})"
    "\n"
    R"({"ev":"span","t":80,"run":1,"op":"x","id":3,"kind":"hop","dur":30,"from":3,"to":2,"attempts":4,"ok":false})"
    "\n"
    R"({"ev":"span","t":100,"run":1,"op":"e","id":1})"
    "\n"
    R"({"ev":"packet_fate","t":100,"run":1,"origin":4,"fate":"delivered","hops":2,"created":10})"
    "\n"
    R"({"ev":"packet_fate","t":300,"run":1,"origin":5,"fate":"delivered","hops":2,"created":100})"
    "\n"
    R"({"ev":"packet_fate","t":500,"run":1,"origin":6,"fate":"delivered","hops":3,"created":100})"
    "\n"
    R"({"ev":"packet_fate","t":600,"run":1,"origin":7,"fate":"dropped_retries","hops":1,"created":200})"
    "\n"
    "garbage line\n";

TEST(TraceAnalysis, SummaryAggregatesFatesLatenciesAndRetries) {
  std::istringstream in(kTrace);
  const auto s = summarize_trace(in);

  EXPECT_EQ(s.lines, 9u);
  EXPECT_EQ(s.unparseable, 1u);
  EXPECT_EQ(s.event_counts.at("span"), 4u);
  EXPECT_EQ(s.event_counts.at("packet_fate"), 4u);
  EXPECT_EQ(s.fate_counts.at("delivered"), 3u);
  EXPECT_EQ(s.fate_counts.at("dropped_retries"), 1u);
  EXPECT_EQ(s.spans_begun, 1u);
  EXPECT_EQ(s.spans_ended, 1u);

  // Dropped packets contribute no latency sample; delivered latencies are
  // t - created: 90 and 200 at 2 hops, 400 at 3 hops; key 0 = all.
  ASSERT_TRUE(s.latency_by_hops.count(2));
  EXPECT_EQ(s.latency_by_hops.at(2).count, 2u);
  EXPECT_EQ(s.latency_by_hops.at(2).p50, 90u);
  EXPECT_EQ(s.latency_by_hops.at(2).max, 200u);
  EXPECT_EQ(s.latency_by_hops.at(3).count, 1u);
  EXPECT_EQ(s.latency_by_hops.at(3).p99, 400u);
  EXPECT_EQ(s.latency_by_hops.at(0).count, 3u);
  EXPECT_DOUBLE_EQ(s.latency_by_hops.at(0).mean, (90.0 + 200.0 + 400.0) / 3.0);

  // Both hop intervals ride link 3->2; one burned its whole ARQ budget.
  const auto link = std::make_pair(std::uint64_t{3}, std::uint64_t{2});
  ASSERT_TRUE(s.link_retries.count(link));
  EXPECT_EQ(s.link_retries.at(link).exchanges, 2u);
  EXPECT_EQ(s.link_retries.at(link).failures, 1u);
  EXPECT_DOUBLE_EQ(s.link_retries.at(link).mean_attempts(), 3.0);
  EXPECT_EQ(s.link_retries.at(link).attempts_max, 4u);

  std::ostringstream out;
  print_trace_summary(out, s);
  const std::string text = out.str();
  EXPECT_NE(text.find("Packet fates"), std::string::npos);
  EXPECT_NE(text.find("End-to-end latency by hop count"), std::string::npos);
  EXPECT_NE(text.find("Per-link ARQ retries"), std::string::npos);
  EXPECT_NE(text.find("3->2"), std::string::npos);
  EXPECT_NE(text.find("spans: 1 begun, 1 ended"), std::string::npos);
}

const char* const kReportA =
    R"({"phase_seconds":{"measure":10.0},"metrics":{)"
    R"("counters":{"sim.packets.delivered":1000,"tomo.model.updates":50},)"
    R"("histograms":{"sim.e2e.latency_us":{"total":1000,"sum":5}}}})";

const char* const kReportB =
    R"({"phase_seconds":{"measure":10.5},"metrics":{)"
    R"("counters":{"sim.packets.delivered":1200,"tomo.model.updates":50},)"
    R"("histograms":{"sim.e2e.latency_us":{"total":1005,"sum":5}}}})";

TEST(TraceAnalysis, DiffFlagsOnlyChangesPastThreshold) {
  const auto diff = diff_reports(kReportA, kReportB, {.threshold_pct = 10.0});
  ASSERT_TRUE(diff.error.empty());
  EXPECT_TRUE(diff.any_exceeded);  // delivered moved +20%

  bool saw_delivered = false;
  bool saw_updates = false;
  bool saw_phase = false;
  bool saw_hist = false;
  for (const auto& row : diff.rows) {
    if (row.name == "sim.packets.delivered") {
      saw_delivered = true;
      EXPECT_EQ(row.section, "counter");
      EXPECT_NEAR(row.change_pct, 20.0, 1e-9);
      EXPECT_TRUE(row.exceeded);
    } else if (row.name == "tomo.model.updates") {
      saw_updates = true;
      EXPECT_FALSE(row.exceeded);  // unchanged
    } else if (row.name == "measure") {
      saw_phase = true;
      EXPECT_EQ(row.section, "phase_s");
      EXPECT_FALSE(row.exceeded);  // +5% under the 10% threshold
    } else if (row.name == "sim.e2e.latency_us") {
      saw_hist = true;
      EXPECT_EQ(row.section, "histogram_total");
      EXPECT_FALSE(row.exceeded);  // +0.5%
    }
  }
  EXPECT_TRUE(saw_delivered);
  EXPECT_TRUE(saw_updates);
  EXPECT_TRUE(saw_phase);
  EXPECT_TRUE(saw_hist);

  // The same pair passes with a looser threshold.
  EXPECT_FALSE(diff_reports(kReportA, kReportB, {.threshold_pct = 25.0}).any_exceeded);
}

TEST(TraceAnalysis, DiffFlagsAppearingAndVanishingMetrics) {
  const char* const a = R"({"metrics":{"counters":{"x":5}}})";
  const char* const b = R"({"metrics":{"counters":{"y":5}}})";
  const auto diff = diff_reports(a, b, {.threshold_pct = 1000.0});
  ASSERT_TRUE(diff.error.empty());
  ASSERT_EQ(diff.rows.size(), 2u);
  EXPECT_TRUE(diff.rows[0].exceeded);  // x vanished
  EXPECT_TRUE(diff.rows[1].exceeded);  // y appeared
  EXPECT_TRUE(diff.any_exceeded);
}

TEST(TraceAnalysis, DiffReportsParseErrors) {
  EXPECT_FALSE(diff_reports("not json", kReportB).error.empty());
  EXPECT_FALSE(diff_reports(kReportA, "{broken").error.empty());
  std::ostringstream out;
  print_report_diff(out, diff_reports("not json", kReportB));
  EXPECT_NE(out.str().find("error:"), std::string::npos);
}

}  // namespace
}  // namespace dophy::obs
