#include "dophy/common/fenwick.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "dophy/common/rng.hpp"

namespace dophy::common {
namespace {

TEST(Fenwick, EmptyTree) {
  FenwickTree t(0);
  EXPECT_EQ(t.total(), 0u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(Fenwick, SingleSlot) {
  FenwickTree t(1);
  t.add(0, 5);
  EXPECT_EQ(t.get(0), 5u);
  EXPECT_EQ(t.total(), 5u);
  EXPECT_EQ(t.find_by_cumulative(0), 0u);
  EXPECT_EQ(t.find_by_cumulative(4), 0u);
}

TEST(Fenwick, PrefixSums) {
  FenwickTree t(5);
  for (std::size_t i = 0; i < 5; ++i) t.add(i, static_cast<std::int64_t>(i + 1));
  // freqs: 1 2 3 4 5
  EXPECT_EQ(t.prefix_sum(0), 0u);
  EXPECT_EQ(t.prefix_sum(1), 1u);
  EXPECT_EQ(t.prefix_sum(3), 6u);
  EXPECT_EQ(t.prefix_sum(5), 15u);
  EXPECT_EQ(t.total(), 15u);
}

TEST(Fenwick, GetSingle) {
  FenwickTree t(8);
  t.add(3, 7);
  t.add(6, 2);
  EXPECT_EQ(t.get(3), 7u);
  EXPECT_EQ(t.get(6), 2u);
  EXPECT_EQ(t.get(0), 0u);
}

TEST(Fenwick, NegativeDelta) {
  FenwickTree t(4);
  t.add(2, 10);
  t.add(2, -4);
  EXPECT_EQ(t.get(2), 6u);
}

TEST(Fenwick, FindByCumulativeBoundaries) {
  FenwickTree t(4);
  // freqs: 3 0 2 5 -> intervals [0,3) [3,3) [3,5) [5,10)
  t.add(0, 3);
  t.add(2, 2);
  t.add(3, 5);
  EXPECT_EQ(t.find_by_cumulative(0), 0u);
  EXPECT_EQ(t.find_by_cumulative(2), 0u);
  EXPECT_EQ(t.find_by_cumulative(3), 2u);  // zero-freq slot 1 skipped
  EXPECT_EQ(t.find_by_cumulative(4), 2u);
  EXPECT_EQ(t.find_by_cumulative(5), 3u);
  EXPECT_EQ(t.find_by_cumulative(9), 3u);
  EXPECT_THROW((void)t.find_by_cumulative(10), std::out_of_range);
}

TEST(Fenwick, OutOfRangeThrows) {
  FenwickTree t(3);
  EXPECT_THROW(t.add(3, 1), std::out_of_range);
  EXPECT_THROW((void)t.prefix_sum(4), std::out_of_range);
}

TEST(Fenwick, ResetClears) {
  FenwickTree t(3);
  t.add(1, 9);
  t.reset(5);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.total(), 0u);
}

TEST(Fenwick, RandomizedAgainstReference) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.next_below(60));
    FenwickTree t(n);
    std::vector<std::uint64_t> ref(n, 0);
    for (int op = 0; op < 200; ++op) {
      const std::size_t idx = static_cast<std::size_t>(rng.next_below(n));
      const std::int64_t delta = static_cast<std::int64_t>(rng.next_below(20));
      t.add(idx, delta);
      ref[idx] += static_cast<std::uint64_t>(delta);
    }
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(t.prefix_sum(i), cum);
      EXPECT_EQ(t.get(i), ref[i]);
      cum += ref[i];
    }
    EXPECT_EQ(t.total(), cum);
    // Every cumulative target maps to the slot whose interval contains it.
    if (cum > 0) {
      for (int probe = 0; probe < 50; ++probe) {
        const std::uint64_t target = rng.next_below(cum);
        const std::size_t slot = t.find_by_cumulative(target);
        EXPECT_LE(t.prefix_sum(slot), target);
        EXPECT_GT(t.prefix_sum(slot + 1), target);
      }
    }
  }
}

}  // namespace
}  // namespace dophy::common
