#include "dophy/common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dophy/common/rng.hpp"

namespace dophy::common {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(5);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(1.0, 3.0);
    whole.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Quantile, LinearInterpolation) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(Quantile, EmptyThrows) {
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
}

TEST(Quantile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(quantile({9.0, 1.0, 5.0}, 0.5), 5.0);
}

TEST(Ecdf, MonotoneAndComplete) {
  const auto cdf = ecdf({3.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].first, 1.0);
  EXPECT_NEAR(cdf[0].second, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].second, 1.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(Pearson, DegenerateInputs) {
  EXPECT_EQ(pearson({1.0}, {2.0}), 0.0);
  EXPECT_EQ(pearson({1, 1, 1}, {2, 3, 4}), 0.0);  // zero variance
  EXPECT_EQ(pearson({1, 2}, {1, 2, 3}), 0.0);     // size mismatch
}

TEST(Spearman, MonotoneNonlinear) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{1, 8, 27, 64, 125};  // monotone => rho = 1
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Spearman, HandlesTies) {
  const std::vector<double> x{1, 2, 2, 3};
  const std::vector<double> y{10, 20, 20, 30};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Entropy, UniformAndDegenerate) {
  EXPECT_NEAR(entropy_bits({1, 1, 1, 1}), 2.0, 1e-12);
  EXPECT_NEAR(entropy_bits({5, 0, 0, 0}), 0.0, 1e-12);
  EXPECT_EQ(entropy_bits({0, 0}), 0.0);
}

TEST(Entropy, KnownSkewed) {
  // p = (0.5, 0.25, 0.25) -> H = 1.5 bits.
  EXPECT_NEAR(entropy_bits({2, 1, 1}), 1.5, 1e-12);
}

TEST(KlDivergence, ZeroForIdentical) {
  EXPECT_NEAR(kl_divergence_bits({3, 2, 5}, {3, 2, 5}), 0.0, 1e-12);
  EXPECT_NEAR(kl_divergence_bits({6, 4, 10}, {3, 2, 5}), 0.0, 1e-12);  // scale-invariant
}

TEST(KlDivergence, PositiveAndAsymmetric) {
  const double ab = kl_divergence_bits({9, 1}, {5, 5});
  const double ba = kl_divergence_bits({5, 5}, {9, 1});
  EXPECT_GT(ab, 0.0);
  EXPECT_GT(ba, 0.0);
  EXPECT_NE(ab, ba);
}

TEST(KlDivergence, SizeMismatchThrows) {
  EXPECT_THROW((void)kl_divergence_bits({1, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  Rng rng(6);
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.normal());
  for (int i = 0; i < 1000; ++i) large.add(rng.normal());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

}  // namespace
}  // namespace dophy::common
