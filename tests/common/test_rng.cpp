#include "dophy/common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace dophy::common {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitMixKnownValue) {
  // Reference value of SplitMix64 from the canonical implementation.
  std::uint64_t state = 0;
  const std::uint64_t v = splitmix64(state);
  EXPECT_EQ(state, 0x9e3779b97f4a7c15ULL);
  EXPECT_EQ(v, 0xe220a8397b1dcdafULL);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 33}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliRate) {
  Rng rng(7);
  for (double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) hits += rng.bernoulli(p);
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.02);
  }
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, GeometricTrialsMean) {
  Rng rng(9);
  for (double p : {0.2, 0.5, 0.8}) {
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += rng.geometric_trials(p);
    EXPECT_NEAR(sum / n, 1.0 / p, 0.05 / p);
  }
}

TEST(Rng, GeometricTrialsSupport) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.geometric_trials(0.3), 1u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric_trials(1.0), 1u);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  const double lambda = 2.5;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(12);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(3.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, PoissonMean) {
  Rng rng(13);
  for (double lambda : {0.5, 5.0, 50.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.poisson(lambda);
    EXPECT_NEAR(sum / n, lambda, 0.05 * lambda + 0.05);
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(14);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng forked = a.fork();
  // Forked stream differs from the parent's continuation.
  Rng b(42);
  (void)b.next_u64();  // parent consumed one draw when forking
  EXPECT_NE(forked.next_u64(), b.next_u64());
}

TEST(Rng, ForkDeterministic) {
  Rng a(42);
  Rng b(42);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(15);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleMovesElements) {
  Rng rng(16);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  rng.shuffle(v);
  int displaced = 0;
  for (int i = 0; i < 100; ++i) displaced += v[static_cast<std::size_t>(i)] != i;
  EXPECT_GT(displaced, 50);
}

TEST(Rng, UniformRange) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

}  // namespace
}  // namespace dophy::common
