#include "dophy/common/bitio.hpp"

#include <gtest/gtest.h>

#include "dophy/common/rng.hpp"

namespace dophy::common {
namespace {

TEST(BitWriter, EmptyWriter) {
  BitWriter w;
  EXPECT_EQ(w.bit_count(), 0u);
  EXPECT_EQ(w.byte_count(), 0u);
  EXPECT_TRUE(w.bytes().empty());
}

TEST(BitWriter, SingleBits) {
  BitWriter w;
  w.put_bit(true);
  w.put_bit(false);
  w.put_bit(true);
  EXPECT_EQ(w.bit_count(), 3u);
  EXPECT_EQ(w.byte_count(), 1u);
  EXPECT_EQ(w.bytes()[0], 0b10100000);
}

TEST(BitWriter, MsbFirstWithinByte) {
  BitWriter w;
  w.put_bits(0xA5, 8);
  EXPECT_EQ(w.bytes()[0], 0xA5);
}

TEST(BitWriter, MultiBytePattern) {
  BitWriter w;
  w.put_bits(0x1234, 16);
  ASSERT_EQ(w.byte_count(), 2u);
  EXPECT_EQ(w.bytes()[0], 0x12);
  EXPECT_EQ(w.bytes()[1], 0x34);
}

TEST(BitWriter, UnalignedSpill) {
  BitWriter w;
  w.put_bits(0b101, 3);
  w.put_bits(0b11111111, 8);
  EXPECT_EQ(w.bit_count(), 11u);
  EXPECT_EQ(w.bytes()[0], 0b10111111);
  EXPECT_EQ(w.bytes()[1], 0b11100000);
}

TEST(BitWriter, ZeroCountIsNoop) {
  BitWriter w;
  w.put_bits(0xFFFF, 0);
  EXPECT_EQ(w.bit_count(), 0u);
}

TEST(BitWriter, RejectsOverlongCount) {
  BitWriter w;
  EXPECT_THROW(w.put_bits(0, 65), std::invalid_argument);
}

TEST(BitWriter, TakeResets) {
  BitWriter w;
  w.put_bits(0xAB, 8);
  const auto bytes = w.take();
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_EQ(w.bit_count(), 0u);
  w.put_bit(true);
  EXPECT_EQ(w.bytes()[0], 0x80);
}

TEST(BitReader, RoundTripAligned) {
  BitWriter w;
  w.put_bits(0xDEADBEEF, 32);
  BitReader r(w.bytes());
  EXPECT_EQ(r.get_bits(32), 0xDEADBEEFu);
}

TEST(BitReader, RoundTripRandomChunks) {
  Rng rng(99);
  BitWriter w;
  std::vector<std::pair<std::uint64_t, unsigned>> chunks;
  for (int i = 0; i < 500; ++i) {
    const unsigned count = 1 + static_cast<unsigned>(rng.next_below(64));
    const std::uint64_t value =
        count == 64 ? rng.next_u64() : rng.next_u64() & ((1ull << count) - 1);
    chunks.emplace_back(value, count);
    w.put_bits(value, count);
  }
  BitReader r(w.bytes(), w.bit_count());
  for (const auto& [value, count] : chunks) {
    EXPECT_EQ(r.get_bits(count), value);
  }
  EXPECT_TRUE(r.exhausted());
}

TEST(BitReader, ThrowsPastEnd) {
  BitWriter w;
  w.put_bits(0xFF, 8);
  BitReader r(w.bytes());
  (void)r.get_bits(8);
  EXPECT_THROW((void)r.get_bit(), std::out_of_range);
}

TEST(BitReader, BitLimitTighterThanBuffer) {
  BitWriter w;
  w.put_bits(0xFFFF, 16);
  BitReader r(w.bytes(), 10);
  (void)r.get_bits(10);
  EXPECT_THROW((void)r.get_bit(), std::out_of_range);
}

TEST(BitReader, PositionAndRemaining) {
  BitWriter w;
  w.put_bits(0, 20);
  BitReader r(w.bytes(), 20);
  EXPECT_EQ(r.remaining(), 20u);
  (void)r.get_bits(7);
  EXPECT_EQ(r.position(), 7u);
  EXPECT_EQ(r.remaining(), 13u);
}

TEST(BitReader, EmptyStreamExhausted) {
  BitReader r(std::span<const std::uint8_t>{});
  EXPECT_TRUE(r.exhausted());
  EXPECT_THROW((void)r.get_bit(), std::out_of_range);
}

TEST(BitIo, PaddingBitsAreZero) {
  BitWriter w;
  w.put_bit(true);
  EXPECT_EQ(w.bytes()[0], 0x80);
}

}  // namespace
}  // namespace dophy::common
