#include "dophy/common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dophy::common {
namespace {

TEST(Table, BasicLayout) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1);
  t.row().cell("b").cell(2.5, 1);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
}

TEST(Table, TitlePrinted) {
  Table t({"x"});
  t.row().cell(1);
  std::ostringstream os;
  t.print(os, "My Title");
  EXPECT_EQ(os.str().rfind("## My Title", 0), 0u);
}

TEST(Table, CellBeforeRowThrows) {
  Table t({"x"});
  EXPECT_THROW(t.cell("v"), std::logic_error);
}

TEST(Table, OverfullRowThrows) {
  Table t({"x"});
  t.row().cell(1);
  EXPECT_THROW(t.cell(2), std::logic_error);
}

TEST(Table, EmptyHeadersThrow) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.row().cell("plain").cell("with,comma");
  t.row().cell("with\"quote").cell("x");
  std::ostringstream os;
  t.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, CsvHeaderRow) {
  Table t({"h1", "h2"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "h1,h2\n");
}

TEST(Table, IntegerOverloads) {
  Table t({"a"});
  t.row().cell(std::size_t{7});
  t.row().cell(std::int64_t{-3});
  t.row().cell(std::uint16_t{9});
  EXPECT_EQ(t.row_count(), 3u);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
}

}  // namespace
}  // namespace dophy::common
