// Latency-histogram tests: log2 bucketing agreement with the generic
// lower_bound histogram, quantile-estimation accuracy properties on
// uniform / exponential / adversarial samples, and bound validation.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include "dophy/obs/metrics.hpp"

namespace dophy::obs {
namespace {

TEST(LatencyHistogram, Log2BoundsShape) {
  EXPECT_EQ(log2_bounds(1), (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(log2_bounds(4), (std::vector<std::uint64_t>{1, 2, 4, 8}));
  const auto full = log2_bounds(64);
  EXPECT_EQ(full.size(), 64u);
  EXPECT_EQ(full.back(), std::uint64_t{1} << 63);
  EXPECT_THROW((void)log2_bounds(0), std::invalid_argument);
  EXPECT_THROW((void)log2_bounds(65), std::invalid_argument);
}

TEST(LatencyHistogram, BucketCountMismatchThrows) {
  Registry reg;
  (void)reg.latency_histogram("lat", 40);
  EXPECT_NO_THROW((void)reg.latency_histogram("lat", 40));
  EXPECT_THROW((void)reg.latency_histogram("lat", 30), std::logic_error);
}

// The bit_width fast path must bucket exactly like the generic lower_bound
// histogram over the same log2 bounds — every boundary and off-by-one value.
TEST(LatencyHistogram, AgreesWithGenericLog2Histogram) {
  Registry reg;
  const auto fast = reg.latency_histogram("fast", 40);
  const auto slow = reg.histogram("slow", log2_bounds(40));

  std::vector<std::uint64_t> values = {0, 1, 2, 3, 4, 5, 7, 8, 9};
  for (std::uint32_t k = 4; k <= 41; ++k) {
    const std::uint64_t p = std::uint64_t{1} << k;
    values.push_back(p - 1);
    values.push_back(p);
    values.push_back(p + 1);  // k=39..41 exercise the overflow bucket
  }
  for (const auto v : values) {
    fast.observe(v);
    slow.observe(v);
  }

  const auto snap = reg.snapshot();
  const auto& f = snap.histograms.at("fast");
  const auto& s = snap.histograms.at("slow");
  EXPECT_EQ(f.bounds, s.bounds);
  EXPECT_EQ(f.counts, s.counts);
  EXPECT_EQ(f.total, s.total);
  EXPECT_EQ(f.sum, s.sum);
}

// Exact quantile of a sample vector, nearest-rank (matches the histogram's
// 1-based rank convention).
std::uint64_t exact_quantile(std::vector<std::uint64_t> samples, double q) {
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(samples.size()))));
  return samples[rank - 1];
}

// A log2 bucket spans (2^(k-1), 2^k]; the interpolated estimate and the true
// sample sit in the same bucket, so the estimate is off by at most the bucket
// width: est in [true/2, 2*true].
void expect_within_bucket_error(const HistogramSnapshot& snap,
                                const std::vector<std::uint64_t>& samples, double q) {
  const double est = snap.quantile(q);
  const auto truth = static_cast<double>(exact_quantile(samples, q));
  EXPECT_GE(est, truth / 2.0) << "q=" << q;
  EXPECT_LE(est, truth * 2.0) << "q=" << q;
}

TEST(LatencyHistogram, QuantileAccuracyUniform) {
  Registry reg;
  const auto h = reg.latency_histogram("u", 40);
  std::mt19937_64 rng(1234);
  std::uniform_int_distribution<std::uint64_t> dist(1, 1'000'000);
  std::vector<std::uint64_t> samples;
  samples.reserve(50'000);
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t v = dist(rng);
    samples.push_back(v);
    h.observe(v);
  }
  const auto snap = reg.snapshot().histograms.at("u");
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    expect_within_bucket_error(snap, samples, q);
  }
}

TEST(LatencyHistogram, QuantileAccuracyExponential) {
  Registry reg;
  const auto h = reg.latency_histogram("e", 40);
  std::mt19937_64 rng(99);
  std::exponential_distribution<double> dist(1.0 / 50'000.0);
  std::vector<std::uint64_t> samples;
  samples.reserve(50'000);
  for (int i = 0; i < 50'000; ++i) {
    const auto v = static_cast<std::uint64_t>(dist(rng)) + 1;
    samples.push_back(v);
    h.observe(v);
  }
  const auto snap = reg.snapshot().histograms.at("e");
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    expect_within_bucket_error(snap, samples, q);
  }
}

TEST(LatencyHistogram, QuantileAdversarialPointMass) {
  // All mass at one value: every quantile must land inside that value's
  // bucket, including a value sitting exactly on a power-of-two bound.
  for (const std::uint64_t v : {std::uint64_t{7}, std::uint64_t{1024}}) {
    Registry reg;
    const auto h = reg.latency_histogram("p", 40);
    for (int i = 0; i < 1000; ++i) h.observe(v);
    const auto snap = reg.snapshot().histograms.at("p");
    const double lo = v <= 1 ? 0.0 : static_cast<double>(std::uint64_t{1} << (std::bit_width(v - 1) - 1));
    const double hi = static_cast<double>(std::uint64_t{1} << std::bit_width(v - 1));
    for (const double q : {0.0, 0.5, 0.99, 1.0}) {
      const double est = snap.quantile(q);
      EXPECT_GT(est, lo) << "v=" << v << " q=" << q;
      EXPECT_LE(est, hi) << "v=" << v << " q=" << q;
    }
  }
}

TEST(LatencyHistogram, QuantileAdversarialBimodalAndOverflow) {
  Registry reg;
  // Tiny histogram so the overflow bucket is reachable: bounds {1,2,4,8}.
  const auto h = reg.latency_histogram("b", 4);
  for (int i = 0; i < 900; ++i) h.observe(3);    // bucket (2,4]
  for (int i = 0; i < 100; ++i) h.observe(100);  // overflow (> 8)
  const auto snap = reg.snapshot().histograms.at("b");
  // p50 sits in the low mode.
  EXPECT_GT(snap.quantile(0.5), 2.0);
  EXPECT_LE(snap.quantile(0.5), 4.0);
  // p99 has crossed into the overflow bucket, whose synthetic upper edge is
  // 2 * bounds.back() = 16.
  EXPECT_GT(snap.quantile(0.99), 8.0);
  EXPECT_LE(snap.quantile(0.99), 16.0);
}

TEST(LatencyHistogram, QuantileEmptyAndDegenerate) {
  Registry reg;
  const auto h = reg.latency_histogram("d", 4);
  EXPECT_DOUBLE_EQ(reg.snapshot().histograms.at("d").quantile(0.5), 0.0);
  h.observe(0);  // 0 and 1 share the first bucket (0, 1]
  const auto snap = reg.snapshot().histograms.at("d");
  EXPECT_GT(snap.quantile(0.5), 0.0);
  EXPECT_LE(snap.quantile(0.5), 1.0);
}

}  // namespace
}  // namespace dophy::obs
