#include "dophy/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

namespace dophy::common {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, WorkerCountDefaultsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, ResultsIndependentOfWorkerCount) {
  auto compute = [](std::size_t workers) {
    ThreadPool pool(workers);
    std::vector<double> out(64);
    parallel_for(pool, out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5;
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(4));
}

TEST(ParallelFor, SequentialReuse) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  parallel_for(pool, 10, [&](std::size_t) { total.fetch_add(1); });
  parallel_for(pool, 20, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 30);
}

TEST(GlobalPool, SingletonIdentity) {
  EXPECT_EQ(&global_pool(), &global_pool());
}

TEST(ThreadPool, SubmitAfterShutdownIsDefinedNoop) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.shutdown();
  const int before = counter.load();
  pool.submit([&counter] { counter.fetch_add(100); });  // dropped, not queued
  pool.wait_idle();                                     // returns immediately
  EXPECT_EQ(counter.load(), before);
  pool.shutdown();  // idempotent
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.shutdown();
  EXPECT_EQ(counter.load(), 50);
}

TEST(SmallTask, InlinesSmallCapturesAndBoxesLargeOnes) {
  int hit = 0;
  SmallTask small([&hit] { hit = 1; });
  EXPECT_TRUE(static_cast<bool>(small));
  small();
  EXPECT_EQ(hit, 1);

  // A capture larger than the inline buffer must still work (heap box).
  std::array<std::uint64_t, 16> big{};
  big[15] = 7;
  std::uint64_t out = 0;
  SmallTask boxed([big, &out] { out = big[15]; });
  boxed();
  EXPECT_EQ(out, 7u);
}

TEST(SmallTask, MoveTransfersOwnership) {
  auto payload = std::make_unique<int>(42);
  int seen = 0;
  SmallTask a([p = std::move(payload), &seen] { seen = *p; });
  SmallTask b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  SmallTask c;
  c = std::move(b);
  c();
  EXPECT_EQ(seen, 42);
}

TEST(SmallTask, DestroysCaptureWithoutInvocation) {
  auto tracker = std::make_shared<int>(0);
  EXPECT_EQ(tracker.use_count(), 1);
  {
    SmallTask t([tracker] { (void)tracker; });
    EXPECT_EQ(tracker.use_count(), 2);
  }
  EXPECT_EQ(tracker.use_count(), 1);
}

TEST(SmallTask, PoolRunsMoveOnlyTasks) {
  // std::function cannot hold move-only callables; SmallTask storage lets
  // submit() accept them directly.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int i = 0; i < 8; ++i) {
    auto p = std::make_unique<int>(i);
    pool.submit(SmallTask([p = std::move(p), &total] { total.fetch_add(*p); }));
  }
  pool.wait_idle();
  EXPECT_EQ(total.load(), 0 + 1 + 2 + 3 + 4 + 5 + 6 + 7);
}

}  // namespace
}  // namespace dophy::common
