#include "dophy/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace dophy::common {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, WorkerCountDefaultsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, ResultsIndependentOfWorkerCount) {
  auto compute = [](std::size_t workers) {
    ThreadPool pool(workers);
    std::vector<double> out(64);
    parallel_for(pool, out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5;
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(4));
}

TEST(ParallelFor, SequentialReuse) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  parallel_for(pool, 10, [&](std::size_t) { total.fetch_add(1); });
  parallel_for(pool, 20, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 30);
}

TEST(GlobalPool, SingletonIdentity) {
  EXPECT_EQ(&global_pool(), &global_pool());
}

}  // namespace
}  // namespace dophy::common
