// Logger: sink capture, level filtering, and thread-safety of concurrent
// logf calls racing a sink swap (the TSan CI job exercises the latter).

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dophy/common/logging.hpp"

namespace dophy::common {
namespace {

/// Restores the global logger's level and default sink after each test.
class LoggerTest : public ::testing::Test {
 protected:
  void SetUp() override { prev_level_ = Logger::instance().level(); }
  void TearDown() override {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(prev_level_);
  }

 private:
  LogLevel prev_level_ = LogLevel::kWarn;
};

TEST_F(LoggerTest, SinkCapturesFormattedMessages) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  Logger::instance().set_level(LogLevel::kDebug);
  Logger::instance().set_sink([&](LogLevel level, std::string_view msg) {
    captured.emplace_back(level, std::string(msg));
  });

  DOPHY_INFO("value is %d", 42);
  DOPHY_WARN("%s happened", "overflow");
  Logger::instance().log(LogLevel::kError, "plain");

  ASSERT_EQ(captured.size(), 3u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured[0].second, "value is 42");
  EXPECT_EQ(captured[1].first, LogLevel::kWarn);
  EXPECT_EQ(captured[1].second, "overflow happened");
  EXPECT_EQ(captured[2].first, LogLevel::kError);
  EXPECT_EQ(captured[2].second, "plain");
}

TEST_F(LoggerTest, LevelThresholdFilters) {
  std::vector<std::string> captured;
  Logger::instance().set_sink(
      [&](LogLevel, std::string_view msg) { captured.emplace_back(msg); });

  Logger::instance().set_level(LogLevel::kWarn);
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kDebug));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kError));
  DOPHY_DEBUG("suppressed %d", 1);
  DOPHY_INFO("suppressed %d", 2);
  DOPHY_ERROR("kept");
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "kept");

  Logger::instance().set_level(LogLevel::kOff);
  DOPHY_ERROR("also suppressed");
  EXPECT_EQ(captured.size(), 1u);
}

TEST_F(LoggerTest, ConcurrentLogfWithSinkSwap) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 400;
  std::atomic<std::uint64_t> delivered{0};
  auto counting_sink = [&](LogLevel, std::string_view) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  };

  Logger::instance().set_level(LogLevel::kInfo);
  Logger::instance().set_sink(counting_sink);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        DOPHY_INFO("thread %d message %d", t, i);
      }
    });
  }
  // Race sink swaps against the loggers; both sinks count into `delivered`,
  // so every message lands exactly once regardless of interleaving.
  for (int swap = 0; swap < 50; ++swap) {
    Logger::instance().set_sink(counting_sink);
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(delivered.load(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(LogLevel, Names) {
  EXPECT_EQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_EQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_EQ(to_string(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace dophy::common
