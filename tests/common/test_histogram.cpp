#include "dophy/common/histogram.hpp"

#include <gtest/gtest.h>

namespace dophy::common {
namespace {

TEST(Histogram, EmptyState) {
  Histogram h(10);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.count(3), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.to_string(), "");
}

TEST(Histogram, BasicCounting) {
  Histogram h(4);
  h.add(0);
  h.add(1);
  h.add(1);
  h.add(4);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.overflow_count(), 0u);
}

TEST(Histogram, OverflowBucket) {
  Histogram h(3);
  h.add(4);
  h.add(100);
  EXPECT_EQ(h.overflow_count(), 2u);
  EXPECT_EQ(h.count(7), 2u);  // any out-of-range query reports overflow
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(5);
  h.add(2, 10);
  EXPECT_EQ(h.count(2), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(Histogram, Mean) {
  Histogram h(10);
  h.add(1);
  h.add(3);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, QuantileScan) {
  Histogram h(10);
  for (int i = 0; i < 90; ++i) h.add(1);
  for (int i = 0; i < 10; ++i) h.add(8);
  EXPECT_EQ(h.quantile(0.5), 1u);
  EXPECT_EQ(h.quantile(0.95), 8u);
}

TEST(Histogram, MergeMatchingLayout) {
  Histogram a(4), b(4);
  a.add(1);
  b.add(1);
  b.add(9);
  a.merge(b);
  EXPECT_EQ(a.count(1), 2u);
  EXPECT_EQ(a.overflow_count(), 1u);
  EXPECT_EQ(a.total(), 3u);
}

TEST(Histogram, MergeMismatchThrows) {
  Histogram a(4), b(5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Histogram, ClearResets) {
  Histogram h(4);
  h.add(2);
  h.add(9);
  h.clear();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.overflow_count(), 0u);
}

TEST(Histogram, ToStringFormat) {
  Histogram h(3);
  h.add(0, 12);
  h.add(2, 7);
  h.add(9);
  EXPECT_EQ(h.to_string(), "0:12 2:7 >3:1");
}

}  // namespace
}  // namespace dophy::common
