// Differential campaign: the streaming ShardedLinkEstimator must produce the
// same per-link state as the batch tomo::LinkLossEstimator for every
// observation multiset — under arbitrary interleavings (permuted within
// epochs; decay makes cross-epoch order semantic), mid-stream
// snapshot/restore, duplicated observations, and decode-level faults.
//
// 200 fuzzed scenarios; on divergence the failing scenario is greedily
// shrunk (dophy_check style: drop one op at a time while the failure
// reproduces) so the report shows a minimal witness, not a 150-op dump.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "dophy/common/rng.hpp"
#include "dophy/sink/incremental_mle.hpp"
#include "dophy/tomo/link_inference.hpp"

namespace dophy::sink {
namespace {

using dophy::common::Rng;
using dophy::net::LinkKey;
using dophy::net::NodeId;
using dophy::tomo::HopObservation;
using dophy::tomo::LinkLossEstimator;

struct Op {
  enum class Kind : std::uint8_t { kObserve, kEndEpoch, kSnapshotRestore };
  Kind kind = Kind::kObserve;
  LinkKey link;
  std::uint32_t attempts = 1;  // raw transmission count (>= K means censored)
};

struct Scenario {
  std::uint32_t k = 4;
  double decay = 1.0;
  double prior_a = 0.0;
  double prior_b = 0.0;
  std::uint64_t shuffle_seed = 0;
  std::vector<Op> ops;
};

Scenario generate(std::uint64_t seed) {
  Rng rng(seed);
  Scenario s;
  const std::uint32_t ks[] = {2, 3, 4, 8};
  s.k = ks[rng.next_below(4)];
  const double decays[] = {1.0, 1.0, 0.9, 0.5};  // bias toward the exact case
  s.decay = decays[rng.next_below(4)];
  if (rng.bernoulli(0.3)) {
    s.prior_a = 1.0;
    s.prior_b = 0.3;
  }
  s.shuffle_seed = rng.next_u64();
  const std::size_t node_count = 4 + rng.next_below(12);
  const std::size_t op_count = 1 + rng.next_below(150);
  s.ops.reserve(op_count);
  for (std::size_t i = 0; i < op_count; ++i) {
    Op op;
    const std::size_t roll = rng.next_below(100);
    if (roll < 88) {
      op.kind = Op::Kind::kObserve;
      op.link.from = static_cast<NodeId>(1 + rng.next_below(node_count));
      op.link.to = static_cast<NodeId>(rng.next_below(node_count));
      op.attempts = 1 + static_cast<std::uint32_t>(rng.next_below(s.k + 4));
      if (rng.bernoulli(0.15)) {  // duplicate pressure: repeat a hot link
        op.link = LinkKey{1, 0};
        op.attempts = 2;
      }
    } else if (roll < 94) {
      op.kind = Op::Kind::kEndEpoch;
    } else {
      op.kind = Op::Kind::kSnapshotRestore;
    }
    s.ops.push_back(op);
  }
  return s;
}

HopObservation to_observation(std::uint32_t attempts, std::uint32_t k) {
  HopObservation obs;
  obs.censored = attempts >= k;
  obs.attempts = obs.censored ? k : attempts;
  return obs;
}

/// Runs one scenario both ways and compares; returns a description of the
/// first divergence, or nullopt on agreement.
std::optional<std::string> run_scenario(const Scenario& s) {
  LinkLossEstimator batch(s.k, s.decay);
  ShardedLinkEstimator inc(s.k, s.decay, /*shard_count=*/4);
  if (s.prior_a > 0.0 || s.prior_b > 0.0) {
    batch.set_beta_prior(s.prior_a, s.prior_b);
    inc.set_beta_prior(s.prior_a, s.prior_b);
  }

  // Batch side consumes ops in authored order.  The incremental side
  // consumes each epoch's observations in a permuted order (cross-epoch
  // order is semantic once decay < 1, so the permutation never crosses an
  // EndEpoch; snapshot/restore points also stay put).
  Rng shuffle_rng(s.shuffle_seed);
  std::size_t segment_begin = 0;
  std::vector<Op> permuted = s.ops;
  auto close_segment = [&](std::size_t end) {
    for (std::size_t n = end - segment_begin; n > 1; --n) {  // Fisher-Yates on the segment
      const auto j = static_cast<std::size_t>(shuffle_rng.next_below(n));
      std::swap(permuted[segment_begin + n - 1], permuted[segment_begin + j]);
    }
    segment_begin = end + 1;
  };
  for (std::size_t i = 0; i < permuted.size(); ++i) {
    if (permuted[i].kind != Op::Kind::kObserve) close_segment(i);
  }
  close_segment(permuted.size());

  for (const Op& op : s.ops) {
    switch (op.kind) {
      case Op::Kind::kObserve:
        batch.observe(op.link, to_observation(op.attempts, s.k));
        break;
      case Op::Kind::kEndEpoch:
        batch.end_epoch();
        break;
      case Op::Kind::kSnapshotRestore:
        break;  // batch has no snapshot concept
    }
  }
  for (const Op& op : permuted) {
    switch (op.kind) {
      case Op::Kind::kObserve:
        inc.observe(op.link, to_observation(op.attempts, s.k));
        break;
      case Op::Kind::kEndEpoch:
        inc.end_epoch();
        break;
      case Op::Kind::kSnapshotRestore: {
        auto restored = ShardedLinkEstimator::restore_json(inc.snapshot_json());
        if (!restored) return "snapshot_json did not restore";
        // Priors, decay and K ride in the snapshot — nothing to re-apply.
        inc = std::move(*restored);
        break;
      }
    }
  }

  const auto batch_links = batch.all_estimates();
  const auto inc_links = inc.all_estimates();
  if (batch_links.size() != inc_links.size()) {
    std::ostringstream msg;
    msg << "link count: batch " << batch_links.size() << " vs incremental "
        << inc_links.size();
    return msg.str();
  }
  const bool exact = s.decay >= 1.0;  // integral stats: order-exact
  for (std::size_t i = 0; i < batch_links.size(); ++i) {
    const auto& [bk, be] = batch_links[i];
    const auto& [ik, ie] = inc_links[i];
    std::ostringstream at;
    at << "link " << bk.from << "->" << bk.to << ": ";
    if (bk != ik) return at.str() + "link sets differ";
    const auto* bs = batch.stats(bk);
    const auto is = inc.stats(ik);
    if (bs == nullptr || !is) return at.str() + "stats missing";
    if (exact && !(*bs == *is)) return at.str() + "sufficient statistics differ";
    const double delta = std::max({std::fabs(be.loss - ie.loss),
                                   std::fabs(be.stderr_ - ie.stderr_),
                                   std::fabs(be.samples - ie.samples)});
    if (delta > 1e-12) {
      std::ostringstream msg;
      msg << at.str() << "estimate delta " << delta << " > 1e-12";
      return msg.str();
    }
  }
  return std::nullopt;
}

std::string render(const Scenario& s) {
  std::ostringstream out;
  out << "K=" << s.k << " decay=" << s.decay << " prior=(" << s.prior_a << "," << s.prior_b
      << ") ops:";
  for (const Op& op : s.ops) {
    switch (op.kind) {
      case Op::Kind::kObserve:
        out << " obs(" << op.link.from << "->" << op.link.to << ",t=" << op.attempts << ")";
        break;
      case Op::Kind::kEndEpoch:
        out << " epoch";
        break;
      case Op::Kind::kSnapshotRestore:
        out << " snap";
        break;
    }
  }
  return out.str();
}

/// Greedy shrink: repeatedly drop single ops while the divergence persists.
Scenario shrink(Scenario failing) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < failing.ops.size(); ++i) {
      Scenario candidate = failing;
      candidate.ops.erase(candidate.ops.begin() + static_cast<std::ptrdiff_t>(i));
      if (run_scenario(candidate)) {
        failing = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return failing;
}

TEST(IncrementalMleDifferential, TwoHundredFuzzedScenarios) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const Scenario scenario = generate(seed);
    const auto failure = run_scenario(scenario);
    if (failure) {
      const Scenario minimal = shrink(scenario);
      const auto minimal_failure = run_scenario(minimal);
      FAIL() << "seed " << seed << ": " << *failure << "\nshrunk ("
             << minimal.ops.size() << " ops): "
             << (minimal_failure ? *minimal_failure : std::string("?")) << "\n"
             << render(minimal);
    }
  }
}

TEST(IncrementalMleDifferential, SnapshotRestoreIsIdentityMidStream) {
  // Deterministic spot-check independent of the fuzz loop: heavy decay, a
  // prior, snapshot/restore between every epoch.
  Scenario s;
  s.k = 4;
  s.decay = 0.5;
  s.prior_a = 1.0;
  s.prior_b = 0.3;
  s.shuffle_seed = 99;
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (std::uint32_t t = 1; t <= 6; ++t) {
      s.ops.push_back({Op::Kind::kObserve, LinkKey{2, 1}, t});
      s.ops.push_back({Op::Kind::kObserve, LinkKey{1, 0}, 7 - t});
    }
    s.ops.push_back({Op::Kind::kSnapshotRestore, {}, 0});
    s.ops.push_back({Op::Kind::kEndEpoch, {}, 0});
  }
  EXPECT_EQ(run_scenario(s), std::nullopt);
}

TEST(IncrementalMleDifferential, AllCensoredBoundaryAgrees) {
  Scenario s;
  s.k = 3;
  for (int i = 0; i < 10; ++i) {
    s.ops.push_back({Op::Kind::kObserve, LinkKey{5, 0}, 9});  // always censored
  }
  EXPECT_EQ(run_scenario(s), std::nullopt);

  ShardedLinkEstimator inc(3);
  for (int i = 0; i < 10; ++i) inc.observe(LinkKey{5, 0}, to_observation(9, 3));
  const auto est = inc.estimate(LinkKey{5, 0});
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->loss, 1.0 - 1.0 / 3.0, 1e-12);  // boundary convention
  EXPECT_EQ(est->stderr_, 1.0);
}

TEST(ShardedLinkEstimator, RejectsInvalidConfig) {
  EXPECT_THROW(ShardedLinkEstimator(1), std::invalid_argument);
  EXPECT_THROW(ShardedLinkEstimator(4, 0.0), std::invalid_argument);
  EXPECT_THROW(ShardedLinkEstimator(4, 1.5), std::invalid_argument);
  ShardedLinkEstimator est(4);
  EXPECT_THROW(est.set_beta_prior(-1.0, 0.0), std::invalid_argument);
}

TEST(ShardedLinkEstimator, RestoreRejectsMalformedSnapshots) {
  EXPECT_FALSE(ShardedLinkEstimator::restore_json("not json").has_value());
  EXPECT_FALSE(ShardedLinkEstimator::restore_json("{}").has_value());
  EXPECT_FALSE(
      ShardedLinkEstimator::restore_json(R"({"format":"wrong","k":4})").has_value());
  // Negative counts are rejected, not silently ingested.
  EXPECT_FALSE(ShardedLinkEstimator::restore_json(
                   R"({"format":"dophy-sink-snapshot-v1","k":4,"decay":"1",)"
                   R"("prior_a":"0","prior_b":"0","shards":4,)"
                   R"("links":[{"from":1,"to":0,"u":"-1","a":"2","c":"0"}]})")
                   .has_value());
}

TEST(ShardedLinkEstimator, MergedPartitionsEqualSingleFold) {
  // The consumer-group model: observations split round-robin across three
  // partitions (different shard layouts), merged into a fresh estimator,
  // must be bit-identical to one estimator that saw everything — the
  // additive GeometricSuffStats::merge is exact on integral statistics.
  ShardedLinkEstimator whole(4, 1.0, 4);
  ShardedLinkEstimator part_a(4, 1.0, 1);
  ShardedLinkEstimator part_b(4, 1.0, 8);
  ShardedLinkEstimator part_c(4, 1.0, 16);
  ShardedLinkEstimator* parts[] = {&part_a, &part_b, &part_c};
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const LinkKey link{static_cast<NodeId>(1 + rng.next_below(9)),
                       static_cast<NodeId>(rng.next_below(9))};
    const auto obs = to_observation(1 + static_cast<std::uint32_t>(rng.next_below(8)), 4);
    whole.observe(link, obs);
    parts[i % 3]->observe(link, obs);
  }
  ShardedLinkEstimator merged(4, 1.0, 4);
  for (ShardedLinkEstimator* part : parts) merged.merge_from(*part);
  EXPECT_EQ(merged.snapshot_json(), whole.snapshot_json());  // bit-equal state
}

TEST(ShardedLinkEstimator, SnapshotIsCanonicalAcrossShardLayouts) {
  // The same link state snapshotted from different shard counts serializes
  // identically except for the recorded shard count; restoring across
  // layouts preserves every estimate exactly.
  ShardedLinkEstimator a(4, 1.0, 1);
  ShardedLinkEstimator b(4, 1.0, 16);
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const LinkKey link{static_cast<NodeId>(1 + rng.next_below(9)),
                       static_cast<NodeId>(rng.next_below(9))};
    const auto obs = to_observation(1 + static_cast<std::uint32_t>(rng.next_below(8)), 4);
    a.observe(link, obs);
    b.observe(link, obs);
  }
  auto restored = ShardedLinkEstimator::restore_json(a.snapshot_json());
  ASSERT_TRUE(restored.has_value());
  const auto ea = restored->all_estimates();
  const auto eb = b.all_estimates();
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].first, eb[i].first);
    EXPECT_EQ(ea[i].second.loss, eb[i].second.loss);
    EXPECT_EQ(ea[i].second.stderr_, eb[i].second.stderr_);
  }
}

}  // namespace
}  // namespace dophy::sink
