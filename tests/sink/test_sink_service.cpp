// SinkService end-to-end tests against synthesized (no-network) packet
// streams: the running service must reproduce the batch decode + estimate
// path exactly — including under duplicated and fault-mutated reports,
// mid-stream snapshot/restore into a fresh service, and lossy overflow
// policies.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dophy/common/rng.hpp"
#include "dophy/fault/injector.hpp"
#include "dophy/obs/json.hpp"
#include "dophy/sink/service.hpp"
#include "dophy/tomo/dophy_decoder.hpp"
#include "dophy/tomo/dophy_encoder.hpp"
#include "dophy/tomo/link_inference.hpp"
#include "dophy/tomo/measurement.hpp"

namespace dophy::sink {
namespace {

using dophy::common::Rng;
using dophy::net::kSinkId;
using dophy::net::NodeId;
using dophy::net::Packet;
using dophy::tomo::DophyDecoder;
using dophy::tomo::DophyInstrumentation;
using dophy::tomo::LinkLossEstimator;
using dophy::tomo::SymbolMapper;

constexpr std::size_t kNodes = 30;
constexpr std::uint32_t kK = 4;

struct Hop {
  NodeId receiver;
  std::uint32_t attempts;
};

/// Applies a hop sequence through the instrumentation as the simulator would.
Packet make_packet(DophyInstrumentation& instr, NodeId origin, const std::vector<Hop>& hops) {
  Packet packet;
  packet.origin = origin;
  packet.seq = 1;
  instr.on_origin(packet, origin, 0);
  NodeId sender = origin;
  for (const Hop& hop : hops) {
    instr.on_hop_received(packet, hop.receiver, sender, hop.attempts, 0);
    sender = hop.receiver;
  }
  return packet;
}

/// A reproducible stream of delivered packets ending at the sink.
std::vector<StreamRecord> make_stream(DophyInstrumentation& instr, std::uint64_t seed,
                                      std::size_t count, double warmup_fraction = 0.0) {
  Rng rng(seed);
  std::vector<StreamRecord> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto origin = static_cast<NodeId>(1 + rng.next_below(kNodes - 1));
    std::vector<Hop> hops;
    const std::size_t len = 1 + rng.next_below(5);
    for (std::size_t h = 0; h + 1 < len; ++h) {
      hops.push_back({static_cast<NodeId>(1 + rng.next_below(kNodes - 1)),
                      1 + static_cast<std::uint32_t>(rng.next_below(kK + 3))});
    }
    hops.push_back({kSinkId, 1 + static_cast<std::uint32_t>(rng.next_below(kK + 3))});
    StreamRecord rec;
    rec.kind = StreamRecord::Kind::kReport;
    rec.report.packet = make_packet(instr, origin, hops);
    rec.report.recv_time = static_cast<dophy::net::SimTime>(i);
    rec.report.in_measure = rng.next_double() >= warmup_fraction;
    records.push_back(std::move(rec));
    if (rng.bernoulli(0.1)) records.push_back(records.back());  // duplicate delivery
  }
  return records;
}

SinkServiceConfig base_config() {
  SinkServiceConfig config;
  config.node_count = kNodes;
  config.censor_threshold = kK;
  return config;
}

/// Batch reference: same decoder configuration, same estimator math, fed
/// synchronously in stream order.
LinkLossEstimator batch_reference(const std::vector<StreamRecord>& records,
                                  bool include_warmup = false,
                                  std::uint64_t* decode_failures = nullptr) {
  const SymbolMapper mapper(kK);
  dophy::tomo::ModelStore store;
  store.install(dophy::tomo::ModelSet::bootstrap(kNodes, mapper.alphabet_size()));
  DophyDecoder decoder(store, mapper);
  LinkLossEstimator batch(kK);
  std::uint64_t failures = 0;
  for (const StreamRecord& rec : records) {
    const auto decoded = decoder.decode(rec.report.packet);
    if (!decoded) {
      ++failures;
      continue;
    }
    if (rec.report.in_measure || include_warmup) batch.observe_path(*decoded);
  }
  if (decode_failures != nullptr) *decode_failures = failures;
  return batch;
}

void expect_matches_batch(const SinkService& service, const LinkLossEstimator& batch) {
  const auto batch_links = batch.all_estimates();
  const auto sink_links = service.all_estimates();
  ASSERT_EQ(batch_links.size(), sink_links.size());
  for (std::size_t i = 0; i < batch_links.size(); ++i) {
    ASSERT_EQ(batch_links[i].first, sink_links[i].first);
    const auto* bs = batch.stats(batch_links[i].first);
    const auto is = service.link_stats(sink_links[i].first);
    ASSERT_NE(bs, nullptr);
    ASSERT_TRUE(is.has_value());
    EXPECT_TRUE(*bs == *is) << "link " << batch_links[i].first.from << "->"
                            << batch_links[i].first.to;
    EXPECT_EQ(batch_links[i].second.loss, sink_links[i].second.loss);
    EXPECT_EQ(batch_links[i].second.stderr_, sink_links[i].second.stderr_);
  }
}

TEST(SinkService, MatchesBatchEstimatorExactly) {
  const SymbolMapper mapper(kK);
  DophyInstrumentation instr(kNodes, mapper);
  const auto records = make_stream(instr, 11, 400);
  const LinkLossEstimator batch = batch_reference(records);

  SinkService service(base_config());
  service.start();
  for (const StreamRecord& rec : records) {
    ASSERT_TRUE(service.submit(0, rec));
  }
  service.wait_idle();
  expect_matches_batch(service, batch);
  service.stop();

  const SinkServiceStats stats = service.stats();
  EXPECT_EQ(stats.reports_processed, records.size());
  EXPECT_EQ(stats.reports_decoded, records.size());  // clean stream: all decode
  EXPECT_EQ(stats.decode_failures, 0u);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_EQ(stats.queue.accepted, records.size());
  EXPECT_EQ(stats.queue.dropped, 0u);
}

TEST(SinkService, WarmupReportsAreSkippedUnlessOptedIn) {
  const SymbolMapper mapper(kK);
  DophyInstrumentation instr(kNodes, mapper);
  const auto records = make_stream(instr, 23, 200, /*warmup_fraction=*/0.4);

  {
    SinkService service(base_config());
    service.start();
    for (const StreamRecord& rec : records) ASSERT_TRUE(service.submit(0, rec));
    service.wait_idle();
    expect_matches_batch(service, batch_reference(records, /*include_warmup=*/false));
  }
  {
    SinkServiceConfig config = base_config();
    config.ingest_warmup = true;
    SinkService service(config);
    service.start();
    for (const StreamRecord& rec : records) ASSERT_TRUE(service.submit(0, rec));
    service.wait_idle();
    expect_matches_batch(service, batch_reference(records, /*include_warmup=*/true));
  }
}

/// Feeds `records` round-robin across `producers` lanes from one thread
/// (the canonical assignment without installs) and waits until drained.
void feed_round_robin(SinkService& service, const std::vector<StreamRecord>& records,
                      std::size_t producers) {
  std::size_t lane = 0;
  for (const StreamRecord& rec : records) {
    ASSERT_TRUE(service.submit(lane, rec));
    lane = (lane + 1) % producers;
  }
  service.wait_idle();
}

TEST(SinkService, ConsumerCountsAreBitEqual) {
  // The tentpole invariant: consumer counts 1, 2, and 4 (shard-affine
  // lane partitions) produce bit-identical merged sufficient statistics —
  // equal to each other and to the batch reference.
  const SymbolMapper mapper(kK);
  DophyInstrumentation instr(kNodes, mapper);
  const auto records = make_stream(instr, 131, 600);
  const LinkLossEstimator batch = batch_reference(records);

  const std::size_t kProducers = 4;
  for (const std::size_t consumers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    SinkServiceConfig config = base_config();
    config.producers = kProducers;
    config.consumers = consumers;
    SinkService service(config);
    ASSERT_EQ(service.config().consumers, consumers);
    service.start();
    feed_round_robin(service, records, kProducers);
    expect_matches_batch(service, batch);
    service.stop();
    const SinkServiceStats stats = service.stats();
    EXPECT_EQ(stats.reports_processed, records.size());
    EXPECT_EQ(stats.decode_failures, 0u);
  }
}

TEST(SinkService, ConsumerCountExceedingLanesIsClamped) {
  SinkServiceConfig config = base_config();
  config.producers = 2;
  config.consumers = 8;
  SinkService service(config);
  EXPECT_EQ(service.config().consumers, 2u);  // a consumer needs an owned lane
}

TEST(SinkService, MultiConsumerSnapshotEqualsSingleConsumerSnapshot) {
  // Durable snapshots must not leak the consumer partitioning: the merged
  // estimator document a 4-consumer service writes equals the 1-consumer one
  // byte-for-byte (links are sorted, merge is exact integral addition).
  const SymbolMapper mapper(kK);
  DophyInstrumentation instr(kNodes, mapper);
  const auto records = make_stream(instr, 149, 400);

  auto run = [&](std::size_t consumers) {
    SinkServiceConfig config = base_config();
    config.producers = 4;
    config.consumers = consumers;
    SinkService service(config);
    service.start();
    feed_round_robin(service, records, 4);
    std::string snap = service.snapshot_json();
    service.stop();
    return snap;
  };
  const std::string single = run(1);
  const std::string quad = run(4);
  // The documents differ only in the recorded consumer count.
  const auto strip = [](std::string s) {
    const auto pos = s.find("\"consumers\":");
    const auto end = s.find(',', pos);
    return s.erase(pos, end - pos + 1);
  };
  EXPECT_EQ(strip(single), strip(quad));
}

TEST(SinkService, FaultMutatedReportsCannotDiverge) {
  // Corrupt / truncate / drop a third of the stream through the injector's
  // own mutation kernel.  Whatever the decoder makes of a mutated report,
  // batch and service must make the same thing of it.
  const SymbolMapper mapper(kK);
  DophyInstrumentation instr(kNodes, mapper);
  auto records = make_stream(instr, 37, 300);
  Rng rng(99);
  for (StreamRecord& rec : records) {
    const std::size_t roll = rng.next_below(9);
    if (roll > 2) continue;
    const dophy::fault::FaultKind kind = roll == 0   ? dophy::fault::FaultKind::kReportDrop
                                         : roll == 1 ? dophy::fault::FaultKind::kReportTruncate
                                                     : dophy::fault::FaultKind::kReportCorrupt;
    (void)dophy::fault::mutate_blob(rec.report.packet.blob, kind, rng);
  }

  std::uint64_t batch_failures = 0;
  const LinkLossEstimator batch = batch_reference(records, false, &batch_failures);
  EXPECT_GT(batch_failures, 0u);  // the mutations actually broke something

  SinkService service(base_config());
  service.start();
  for (const StreamRecord& rec : records) ASSERT_TRUE(service.submit(0, rec));
  service.wait_idle();
  expect_matches_batch(service, batch);
  service.stop();
  EXPECT_EQ(service.stats().decode_failures, batch_failures);
}

TEST(SinkService, MidStreamSnapshotRestoresIntoFreshService) {
  const SymbolMapper mapper(kK);
  DophyInstrumentation instr(kNodes, mapper);
  const auto records = make_stream(instr, 53, 300);
  const LinkLossEstimator batch = batch_reference(records);
  const std::size_t cut = records.size() / 2;

  std::string snapshot;
  {
    SinkService first(base_config());
    first.start();
    for (std::size_t i = 0; i < cut; ++i) ASSERT_TRUE(first.submit(0, records[i]));
    first.wait_idle();
    snapshot = first.snapshot_json();
    first.stop();
  }

  // The snapshot is a well-formed versioned document.
  const auto doc = dophy::obs::parse_json(snapshot);
  ASSERT_TRUE(doc.has_value());
  const auto* format = doc->find("format");
  ASSERT_NE(format, nullptr);
  EXPECT_EQ(format->string, "dophy-sink-service-snapshot-v2");
  const auto* lanes = doc->find("lane_processed");
  ASSERT_NE(lanes, nullptr);
  ASSERT_TRUE(lanes->is_array());
  ASSERT_EQ(lanes->array.size(), 1u);  // single-lane config
  EXPECT_EQ(static_cast<std::size_t>(lanes->array[0].number), cut);

  SinkService second(base_config());
  ASSERT_TRUE(second.restore_snapshot(snapshot));
  second.start();
  for (std::size_t i = cut; i < records.size(); ++i) {
    ASSERT_TRUE(second.submit(0, records[i]));
  }
  second.wait_idle();
  expect_matches_batch(second, batch);
}

TEST(SinkService, RestoreRejectsMalformedAndRunning) {
  SinkService service(base_config());
  EXPECT_FALSE(service.restore_snapshot("not json"));
  EXPECT_FALSE(service.restore_snapshot("{}"));
  EXPECT_FALSE(service.restore_snapshot(R"({"format":"wrong","estimator":{}})"));

  // K mismatch between snapshot and service config.
  SinkServiceConfig other = base_config();
  other.censor_threshold = 8;
  SinkService donor(other);
  const std::string snapshot = donor.snapshot_json();
  EXPECT_FALSE(service.restore_snapshot(snapshot));

  SinkService running(base_config());
  running.start();
  EXPECT_FALSE(running.restore_snapshot(running.snapshot_json()));
  running.stop();
}

TEST(SinkService, DropNewestShedsUnderOverflowButKeepsExactness) {
  const SymbolMapper mapper(kK);
  DophyInstrumentation instr(kNodes, mapper);
  const auto records = make_stream(instr, 71, 200);

  SinkServiceConfig config = base_config();
  config.queue_capacity = 16;
  config.overflow_policy = OverflowPolicy::kDropNewest;
  SinkService service(config);
  // No consumer yet: only the first ring-capacity submits are accepted.
  std::vector<StreamRecord> accepted;
  for (const StreamRecord& rec : records) {
    if (service.submit(0, rec)) accepted.push_back(rec);
  }
  EXPECT_EQ(accepted.size(), 16u);
  service.start();
  service.wait_idle();
  service.stop();

  const SinkServiceStats stats = service.stats();
  EXPECT_EQ(stats.queue.dropped, records.size() - accepted.size());
  EXPECT_EQ(stats.reports_processed, accepted.size());
  // The estimate over the accepted prefix is still exactly the batch answer.
  expect_matches_batch(service, batch_reference(accepted));
}

TEST(SinkService, StopWithoutStartDrainsSynchronously) {
  const SymbolMapper mapper(kK);
  DophyInstrumentation instr(kNodes, mapper);
  const auto records = make_stream(instr, 83, 50);
  SinkService service(base_config());
  for (const StreamRecord& rec : records) ASSERT_TRUE(service.submit(0, rec));
  service.stop();  // never started: accepted records must still be processed
  expect_matches_batch(service, batch_reference(records));
  EXPECT_FALSE(service.submit(0, records[0]));  // stopped: submits fail
}

TEST(SinkService, RejectsInvalidConfig) {
  SinkServiceConfig config;  // node_count unset
  EXPECT_THROW(SinkService{config}, std::invalid_argument);
  config.node_count = 5;
  config.decode_batch = 0;
  EXPECT_THROW(SinkService{config}, std::invalid_argument);
  config.decode_batch = 64;
  config.consumers = 0;
  EXPECT_THROW(SinkService{config}, std::invalid_argument);
}

}  // namespace
}  // namespace dophy::sink
