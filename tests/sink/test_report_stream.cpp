// Round-trip and rejection tests for the recorded sink stream format.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "dophy/sink/report_stream.hpp"

namespace dophy::sink {
namespace {

StreamRecord report_record(std::uint16_t origin, std::uint16_t seq) {
  StreamRecord rec;
  rec.kind = StreamRecord::Kind::kReport;
  rec.report.recv_time = 123456789;
  rec.report.in_measure = (seq % 2) == 0;
  auto& p = rec.report.packet;
  p.origin = origin;
  p.seq = seq;
  p.hop_count = 3;
  p.blob.bytes = {0x00, 0xff, 0x5a, static_cast<std::uint8_t>(seq)};
  p.blob.logical_bits = 29;
  p.blob.state = {};
  p.blob.state[0] = 0xab;
  p.blob.state[1] = 0xcd;
  p.blob.state_size = 2;
  p.blob.model_version = 4;
  p.blob.truncated = (seq % 3) == 0;
  p.blob.dropped = false;
  return rec;
}

ReportStream sample_stream() {
  ReportStream stream;
  stream.node_count = 17;
  stream.censor_threshold = 4;
  stream.max_hops = 12;
  StreamRecord install;
  install.kind = StreamRecord::Kind::kModelInstall;
  install.model_bytes = {0xde, 0xad, 0xbe, 0xef, 0x01};
  stream.records.push_back(install);
  for (std::uint16_t seq = 0; seq < 5; ++seq) {
    stream.records.push_back(report_record(static_cast<std::uint16_t>(seq + 1), seq));
  }
  return stream;
}

void expect_equal(const ReportStream& a, const ReportStream& b) {
  EXPECT_EQ(a.node_count, b.node_count);
  EXPECT_EQ(a.censor_threshold, b.censor_threshold);
  EXPECT_EQ(a.max_hops, b.max_hops);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const StreamRecord& x = a.records[i];
    const StreamRecord& y = b.records[i];
    ASSERT_EQ(x.kind, y.kind) << "record " << i;
    if (x.kind == StreamRecord::Kind::kModelInstall) {
      EXPECT_EQ(x.model_bytes, y.model_bytes) << "record " << i;
      continue;
    }
    EXPECT_EQ(x.report.recv_time, y.report.recv_time) << "record " << i;
    EXPECT_EQ(x.report.in_measure, y.report.in_measure) << "record " << i;
    const auto& p = x.report.packet;
    const auto& q = y.report.packet;
    EXPECT_EQ(p.origin, q.origin);
    EXPECT_EQ(p.seq, q.seq);
    EXPECT_EQ(p.hop_count, q.hop_count);
    EXPECT_EQ(p.blob.bytes, q.blob.bytes);
    EXPECT_EQ(p.blob.logical_bits, q.blob.logical_bits);
    EXPECT_EQ(p.blob.state_size, q.blob.state_size);
    for (std::size_t b_i = 0; b_i < p.blob.state_size; ++b_i) {
      EXPECT_EQ(p.blob.state[b_i], q.blob.state[b_i]);
    }
    EXPECT_EQ(p.blob.model_version, q.blob.model_version);
    EXPECT_EQ(p.blob.truncated, q.blob.truncated);
    EXPECT_EQ(p.blob.dropped, q.blob.dropped);
  }
}

TEST(HexCodec, RoundTripsAndMarksEmpty) {
  const std::uint8_t data[] = {0x00, 0x0f, 0xf0, 0xff};
  EXPECT_EQ(to_hex(data, 4), "000ff0ff");
  EXPECT_EQ(to_hex(data, 0), "-");
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(from_hex("000ff0ff", out));
  EXPECT_EQ(out, std::vector<std::uint8_t>({0x00, 0x0f, 0xf0, 0xff}));
  ASSERT_TRUE(from_hex("-", out));
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(from_hex("AbCd", out));  // upper-case accepted on input
  EXPECT_EQ(out, std::vector<std::uint8_t>({0xab, 0xcd}));
  EXPECT_FALSE(from_hex("abc", out));   // odd length
  EXPECT_FALSE(from_hex("zz", out));    // non-hex digit
}

TEST(ReportStream, SerializeParseRoundTrip) {
  const ReportStream stream = sample_stream();
  const std::string text = stream.serialize();
  EXPECT_EQ(text.rfind("dophy-report-stream v1\n", 0), 0u);
  const auto parsed = ReportStream::parse(text);
  ASSERT_TRUE(parsed.has_value());
  expect_equal(stream, *parsed);
  EXPECT_EQ(parsed->report_count(), 5u);
}

TEST(ReportStream, EmptyPayloadAndDroppedReportRoundTrip) {
  ReportStream stream;
  stream.node_count = 3;
  StreamRecord rec;
  rec.kind = StreamRecord::Kind::kReport;
  rec.report.packet.origin = 2;
  rec.report.packet.blob.dropped = true;  // faulted in transit: empty payload
  stream.records.push_back(rec);
  const auto parsed = ReportStream::parse(stream.serialize());
  ASSERT_TRUE(parsed.has_value());
  expect_equal(stream, *parsed);
}

TEST(ReportStream, ParseSkipsCommentsAndBlankLines) {
  const std::string text =
      "dophy-report-stream v1\n"
      "# recorded by a test\n"
      "\n"
      "H 5 4 10\n"
      "M deadbeef\n";
  const auto parsed = ReportStream::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->node_count, 5u);
  EXPECT_EQ(parsed->censor_threshold, 4u);
  EXPECT_EQ(parsed->max_hops, 10u);
  ASSERT_EQ(parsed->records.size(), 1u);
  EXPECT_EQ(parsed->records[0].model_bytes.size(), 4u);
}

TEST(ReportStream, RejectsMalformedInput) {
  EXPECT_FALSE(ReportStream::parse("").has_value());
  EXPECT_FALSE(ReportStream::parse("wrong-magic\nH 1 2 3\n").has_value());
  // Missing header line entirely.
  EXPECT_FALSE(ReportStream::parse("dophy-report-stream v1\nM dead\n").has_value());
  // Unknown record tag.
  EXPECT_FALSE(
      ReportStream::parse("dophy-report-stream v1\nH 1 2 3\nX what\n").has_value());
  // Truncated report line.
  EXPECT_FALSE(
      ReportStream::parse("dophy-report-stream v1\nH 1 2 3\nR 1 2 3\n").has_value());
  // Odd-length hex payload.
  EXPECT_FALSE(ReportStream::parse("dophy-report-stream v1\nH 1 2 3\nM abc\n").has_value());
  // state_size disagreeing with the state hex payload.
  EXPECT_FALSE(
      ReportStream::parse(
          "dophy-report-stream v1\nH 1 2 3\nR 1 1 1 0 1 8 0 4 0 0 ab cdef\n")
          .has_value());
  // state_size exceeding the fixed in-packet state array (16 bytes).
  std::string oversized = "dophy-report-stream v1\nH 1 2 3\nR 1 1 1 0 1 8 0 17 0 0 ";
  oversized += std::string(34, 'a');
  oversized += " -\n";
  EXPECT_FALSE(ReportStream::parse(oversized).has_value());
}

TEST(ReportStream, FileSaveLoadRoundTrip) {
  const ReportStream stream = sample_stream();
  const std::string path = ::testing::TempDir() + "dophy_sink_stream_test.txt";
  ASSERT_TRUE(stream.save(path));
  const auto loaded = ReportStream::load(path);
  ASSERT_TRUE(loaded.has_value());
  expect_equal(stream, *loaded);
  std::remove(path.c_str());
  EXPECT_FALSE(ReportStream::load(path).has_value());  // gone: IO failure path
}

}  // namespace
}  // namespace dophy::sink
