// Concurrency battery for the sink's bounded MPSC ingest queue: per-producer
// FIFO under concurrent drain, overflow accounting under kDropNewest, kBlock
// backpressure (block_waits, close() waking blocked producers), and the
// shutdown-drain guarantee that accepted records are never lost.  The suite
// carries the `sink` ctest label so CI runs it under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dophy/sink/ingest_queue.hpp"

namespace dophy::sink {
namespace {

StreamRecord make_record(std::uint16_t lane, std::uint64_t seq) {
  StreamRecord rec;
  rec.kind = StreamRecord::Kind::kReport;
  rec.report.packet.origin = lane;
  rec.report.packet.seq = static_cast<std::uint16_t>(seq);
  return rec;
}

TEST(IngestQueue, RoundsCapacityUpToPowerOfTwo) {
  IngestQueue q(5, 1);
  EXPECT_EQ(q.capacity_per_producer(), 8u);
  IngestQueue q2(0, 1);
  EXPECT_EQ(q2.capacity_per_producer(), 2u);  // minimum
  EXPECT_EQ(q2.producer_count(), 1u);
}

TEST(IngestQueue, SingleLaneFifo) {
  IngestQueue q(64, 1);
  for (std::uint64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(q.push(0, make_record(0, i)));
  }
  EXPECT_EQ(q.depth(), 40u);
  std::vector<StreamRecord> out;
  EXPECT_EQ(q.drain_into(out, 1000), 40u);
  ASSERT_EQ(out.size(), 40u);
  for (std::uint64_t i = 0; i < 40; ++i) {
    EXPECT_EQ(out[i].report.packet.seq, i);
  }
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_EQ(q.stats().accepted, 40u);
  EXPECT_EQ(q.stats().dropped, 0u);
}

TEST(IngestQueue, ConsumerGroupPartitionsLanes) {
  // Lane i belongs to consumer i % consumers; a drain only ever sees the
  // caller's owned lanes.
  IngestQueue q(64, 4, OverflowPolicy::kBlock, /*consumers=*/2);
  EXPECT_EQ(q.consumer_count(), 2u);
  EXPECT_EQ(q.owned_lanes(0), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(q.owned_lanes(1), (std::vector<std::size_t>{1, 3}));
  for (std::uint16_t lane = 0; lane < 4; ++lane) {
    for (std::uint64_t i = 0; i < 5; ++i) ASSERT_TRUE(q.push(lane, make_record(lane, i)));
  }
  EXPECT_EQ(q.depth(), 20u);
  EXPECT_EQ(q.depth_for(0), 10u);
  EXPECT_EQ(q.depth_for(1), 10u);
  std::vector<StreamRecord> out0;
  std::vector<StreamRecord> out1;
  EXPECT_EQ(q.drain_into(out0, 1000, 0), 10u);
  EXPECT_EQ(q.drain_into(out1, 1000, 1), 10u);
  for (const StreamRecord& rec : out0) EXPECT_EQ(rec.report.packet.origin % 2, 0);
  for (const StreamRecord& rec : out1) EXPECT_EQ(rec.report.packet.origin % 2, 1);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(IngestQueue, ConsumerGroupKeepsPerLaneFifoUnderConcurrentDrain) {
  constexpr std::size_t kLanes = 4;
  constexpr std::size_t kConsumers = 2;
  constexpr std::uint64_t kPerLane = 4000;
  IngestQueue q(64, kLanes, OverflowPolicy::kBlock, kConsumers);

  std::vector<std::thread> producers;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    producers.emplace_back([&, lane] {
      for (std::uint64_t i = 0; i < kPerLane; ++i) {
        ASSERT_TRUE(q.push(lane, make_record(static_cast<std::uint16_t>(lane), i)));
      }
    });
  }
  std::vector<std::vector<StreamRecord>> drained(kConsumers);
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      std::vector<StreamRecord> batch;
      while (true) {
        batch.clear();
        if (q.drain_into(batch, 128, c) == 0) {
          if (!q.wait_nonempty(c)) break;
          continue;
        }
        drained[c].insert(drained[c].end(), batch.begin(), batch.end());
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  // Every record lands with its lane's consumer, in lane FIFO order.
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    std::vector<std::uint64_t> next_seq(kLanes, 0);
    for (const StreamRecord& rec : drained[c]) {
      const auto lane = static_cast<std::size_t>(rec.report.packet.origin);
      EXPECT_EQ(lane % kConsumers, c);
      // 16-bit seq wraps; compare against the expected wrapped value.
      EXPECT_EQ(rec.report.packet.seq, static_cast<std::uint16_t>(next_seq[lane]));
      ++next_seq[lane];
    }
    total += drained[c].size();
  }
  EXPECT_EQ(total, kLanes * kPerLane);
}

TEST(IngestQueue, ConsumerWithoutLanesDrainsNothing) {
  IngestQueue q(8, 1, OverflowPolicy::kBlock, /*consumers=*/1);
  // consumers > producers is the service's job to clamp; the queue API
  // itself rejects only consumers == 0.
  EXPECT_THROW(IngestQueue(8, 1, OverflowPolicy::kBlock, 0), std::invalid_argument);
}

TEST(IngestQueue, DrainRespectsMaxItems) {
  IngestQueue q(64, 2);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(q.push(0, make_record(0, i)));
    ASSERT_TRUE(q.push(1, make_record(1, i)));
  }
  std::vector<StreamRecord> out;
  EXPECT_EQ(q.drain_into(out, 7), 7u);
  EXPECT_EQ(out.size(), 7u);
  EXPECT_EQ(q.depth(), 13u);
  EXPECT_EQ(q.drain_into(out, 1000), 13u);
  EXPECT_EQ(out.size(), 20u);
}

TEST(IngestQueue, DropNewestCountsOverflow) {
  IngestQueue q(8, 1, OverflowPolicy::kDropNewest);
  std::size_t accepted = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    if (q.push(0, make_record(0, i))) ++accepted;
  }
  EXPECT_EQ(accepted, 8u);  // ring full after capacity pushes, no consumer
  const IngestQueueStats stats = q.stats();
  EXPECT_EQ(stats.accepted, 8u);
  EXPECT_EQ(stats.dropped, 92u);
  EXPECT_EQ(stats.block_waits, 0u);
  // The survivors are the oldest (drop-newest, not drop-oldest).
  std::vector<StreamRecord> out;
  EXPECT_EQ(q.drain_into(out, 1000), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(out[i].report.packet.seq, i);
  }
}

TEST(IngestQueue, MultiProducerPerLaneFifoUnderConcurrentDrain) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  IngestQueue q(64, kProducers, OverflowPolicy::kBlock);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t lane = 0; lane < kProducers; ++lane) {
    producers.emplace_back([&q, lane] {
      for (std::uint64_t seq = 0; seq < kPerProducer; ++seq) {
        ASSERT_TRUE(q.push(lane, make_record(static_cast<std::uint16_t>(lane), seq)));
      }
    });
  }

  std::vector<StreamRecord> got;
  got.reserve(kProducers * kPerProducer);
  std::vector<StreamRecord> batch;
  while (got.size() < kProducers * kPerProducer) {
    batch.clear();
    if (q.drain_into(batch, 256) == 0) {
      std::this_thread::yield();
      continue;
    }
    got.insert(got.end(), batch.begin(), batch.end());
  }
  for (auto& t : producers) t.join();

  // Every record arrived exactly once, and each lane's sequence numbers are
  // strictly increasing in drain order (per-producer FIFO contract).
  std::vector<std::uint64_t> next_seq(kProducers, 0);
  for (const StreamRecord& rec : got) {
    const auto lane = rec.report.packet.origin;
    ASSERT_LT(lane, kProducers);
    EXPECT_EQ(rec.report.packet.seq, next_seq[lane]);
    ++next_seq[lane];
  }
  for (std::size_t lane = 0; lane < kProducers; ++lane) {
    EXPECT_EQ(next_seq[lane], kPerProducer);
  }
  EXPECT_EQ(q.stats().accepted, kProducers * kPerProducer);
  EXPECT_EQ(q.stats().dropped, 0u);
}

TEST(IngestQueue, BlockPolicyAppliesBackpressureWithoutLoss) {
  constexpr std::uint64_t kItems = 2000;
  IngestQueue q(4, 1, OverflowPolicy::kBlock);  // tiny ring: forces waits
  std::thread producer([&q] {
    for (std::uint64_t seq = 0; seq < kItems; ++seq) {
      ASSERT_TRUE(q.push(0, make_record(0, seq)));
    }
  });

  std::vector<StreamRecord> got;
  std::vector<StreamRecord> batch;
  while (got.size() < kItems) {
    batch.clear();
    if (q.drain_into(batch, 3) == 0) {
      if (!q.wait_nonempty()) break;
      continue;
    }
    got.insert(got.end(), batch.begin(), batch.end());
  }
  producer.join();

  ASSERT_EQ(got.size(), kItems);
  for (std::uint64_t seq = 0; seq < kItems; ++seq) {
    EXPECT_EQ(got[seq].report.packet.seq, seq);
  }
  const IngestQueueStats stats = q.stats();
  EXPECT_EQ(stats.accepted, kItems);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_GT(stats.block_waits, 0u);  // a 4-slot ring must have stalled
}

TEST(IngestQueue, CloseWakesBlockedProducer) {
  IngestQueue q(2, 1, OverflowPolicy::kBlock);
  ASSERT_TRUE(q.push(0, make_record(0, 0)));
  ASSERT_TRUE(q.push(0, make_record(0, 1)));

  std::atomic<int> result{-1};
  std::thread producer([&] {
    result.store(q.push(0, make_record(0, 2)) ? 1 : 0);  // blocks: ring is full
  });
  // Give the producer time to reach the wait; close() must release it.
  while (q.stats().block_waits == 0) std::this_thread::yield();
  q.close();
  producer.join();
  EXPECT_EQ(result.load(), 0);  // woke with "rejected", not a lost accept

  // Already-accepted items survive the close.
  std::vector<StreamRecord> out;
  EXPECT_EQ(q.drain_into(out, 100), 2u);
  EXPECT_FALSE(q.wait_nonempty());  // closed and drained
}

TEST(IngestQueue, PushAfterCloseFailsFast) {
  IngestQueue q(8, 1);
  ASSERT_TRUE(q.push(0, make_record(0, 0)));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(0, make_record(0, 1)));
  EXPECT_EQ(q.stats().accepted, 1u);
}

TEST(IngestQueue, ShutdownDrainKeepsAcceptedRecords) {
  constexpr std::size_t kProducers = 3;
  IngestQueue q(16, kProducers);
  std::vector<std::thread> producers;
  for (std::size_t lane = 0; lane < kProducers; ++lane) {
    producers.emplace_back([&q, lane] {
      for (std::uint64_t seq = 0; seq < 10; ++seq) {
        ASSERT_TRUE(q.push(lane, make_record(static_cast<std::uint16_t>(lane), seq)));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();

  // wait_nonempty() keeps returning true until the rings are empty.
  std::vector<StreamRecord> out;
  while (q.wait_nonempty()) {
    if (q.drain_into(out, 7) == 0) break;
  }
  EXPECT_EQ(out.size(), kProducers * 10u);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(IngestQueue, WaitNonemptyBlocksUntilPush) {
  IngestQueue q(8, 1);
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(q.push(0, make_record(0, 7)));
  });
  EXPECT_TRUE(q.wait_nonempty());  // parked until the delayed push lands
  producer.join();
  std::vector<StreamRecord> out;
  EXPECT_EQ(q.drain_into(out, 10), 1u);
  EXPECT_EQ(out[0].report.packet.seq, 7u);
}

}  // namespace
}  // namespace dophy::sink
