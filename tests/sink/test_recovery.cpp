// Crash-recovery suite: the SnapshotWriter's atomic publish protocol
// (tmp + rename + retention), recovery's tolerance of torn and corrupt
// candidates, and the end-to-end exactness claim — a service rebuilt from
// the last snapshot plus a stream-tail replay equals the uninterrupted run
// bit-for-bit, including when the snapshot was captured concurrently with
// the feed (the in-process equivalent of kill -9 mid-stream).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dophy/common/rng.hpp"
#include "dophy/obs/json.hpp"
#include "dophy/sink/snapshot_writer.hpp"
#include "dophy/sink/stream_feed.hpp"
#include "dophy/tomo/dophy_decoder.hpp"
#include "dophy/tomo/dophy_encoder.hpp"
#include "dophy/tomo/link_inference.hpp"
#include "dophy/tomo/measurement.hpp"

namespace dophy::sink {
namespace {

namespace fs = std::filesystem;
using dophy::common::Rng;
using dophy::net::kSinkId;
using dophy::net::NodeId;
using dophy::net::Packet;
using dophy::tomo::DophyDecoder;
using dophy::tomo::DophyInstrumentation;
using dophy::tomo::LinkLossEstimator;
using dophy::tomo::ModelSet;
using dophy::tomo::ModelStore;
using dophy::tomo::SymbolMapper;

constexpr std::size_t kNodes = 24;
constexpr std::uint32_t kK = 4;

/// Fresh per-test directory under the gtest temp root.
fs::path make_dir(const char* name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

struct Hop {
  NodeId receiver;
  std::uint32_t attempts;
};

Packet make_packet(DophyInstrumentation& instr, NodeId origin, const std::vector<Hop>& hops) {
  Packet packet;
  packet.origin = origin;
  packet.seq = 1;
  instr.on_origin(packet, origin, 0);
  NodeId sender = origin;
  for (const Hop& hop : hops) {
    instr.on_hop_received(packet, hop.receiver, sender, hop.attempts, 0);
    sender = hop.receiver;
  }
  return packet;
}

/// A synthesized recorded stream: `count` delivered reports with model
/// installs spliced in every `install_every` reports (0 = none).  Installs
/// re-publish the bootstrap models under a fresh version number, so decode
/// results are unchanged but the install / lane-0 accounting paths run.
ReportStream make_stream(std::uint64_t seed, std::size_t count, std::size_t install_every = 0) {
  const SymbolMapper mapper(kK);
  DophyInstrumentation instr(kNodes, mapper);
  Rng rng(seed);
  ReportStream stream;
  stream.node_count = kNodes;
  stream.censor_threshold = kK;
  std::uint8_t next_version = 1;
  for (std::size_t i = 0; i < count; ++i) {
    if (install_every > 0 && i > 0 && i % install_every == 0) {
      ModelSet set = ModelSet::bootstrap(kNodes, mapper.alphabet_size());
      set.version = next_version++;
      StreamRecord install;
      install.kind = StreamRecord::Kind::kModelInstall;
      install.model_bytes = set.serialize();
      stream.records.push_back(std::move(install));
    }
    const auto origin = static_cast<NodeId>(1 + rng.next_below(kNodes - 1));
    std::vector<Hop> hops;
    const std::size_t len = 1 + rng.next_below(5);
    for (std::size_t h = 0; h + 1 < len; ++h) {
      hops.push_back({static_cast<NodeId>(1 + rng.next_below(kNodes - 1)),
                      1 + static_cast<std::uint32_t>(rng.next_below(kK + 3))});
    }
    hops.push_back({kSinkId, 1 + static_cast<std::uint32_t>(rng.next_below(kK + 3))});
    StreamRecord rec;
    rec.kind = StreamRecord::Kind::kReport;
    rec.report.packet = make_packet(instr, origin, hops);
    rec.report.recv_time = static_cast<dophy::net::SimTime>(i);
    stream.records.push_back(std::move(rec));
  }
  return stream;
}

SinkServiceConfig make_config(std::size_t producers, std::size_t consumers) {
  SinkServiceConfig config;
  config.node_count = kNodes;
  config.censor_threshold = kK;
  config.producers = producers;
  config.consumers = consumers;
  return config;
}

/// Whole-stream batch decode, install-aware — mirrors `dophy_sink verify`.
LinkLossEstimator batch_reference(const ReportStream& stream) {
  ModelStore store;
  const SymbolMapper mapper(stream.censor_threshold);
  store.install(ModelSet::bootstrap(stream.node_count, mapper.alphabet_size()));
  DophyDecoder decoder(store, mapper, stream.max_hops);
  LinkLossEstimator batch(stream.censor_threshold);
  for (const StreamRecord& rec : stream.records) {
    if (rec.kind == StreamRecord::Kind::kModelInstall) {
      store.install(ModelSet::deserialize(rec.model_bytes));
      continue;
    }
    const auto decoded = decoder.decode(rec.report.packet);
    if (decoded && rec.report.in_measure) batch.observe_path(*decoded);
  }
  return batch;
}

void expect_matches_batch(const SinkService& service, const LinkLossEstimator& batch) {
  const auto batch_links = batch.all_estimates();
  const auto sink_links = service.all_estimates();
  ASSERT_EQ(batch_links.size(), sink_links.size());
  for (std::size_t i = 0; i < batch_links.size(); ++i) {
    ASSERT_EQ(batch_links[i].first, sink_links[i].first);
    const auto* bs = batch.stats(batch_links[i].first);
    const auto is = service.link_stats(sink_links[i].first);
    ASSERT_NE(bs, nullptr);
    ASSERT_TRUE(is.has_value());
    EXPECT_TRUE(*bs == *is) << "link " << batch_links[i].first.from << "->"
                            << batch_links[i].first.to;
    EXPECT_EQ(batch_links[i].second.loss, sink_links[i].second.loss);
    EXPECT_EQ(batch_links[i].second.stderr_, sink_links[i].second.stderr_);
  }
}

/// Single-pass canonical feed of `stream` (fresh pacing state, unpaced).
std::uint64_t feed_all(SinkService& service, const ReportStream& stream, std::size_t producers,
                       const StreamFeedOptions& options = {}) {
  std::vector<std::uint64_t> lane_sent(producers, 0);
  return feed_stream(service, stream, producers, lane_sent,
                     std::chrono::steady_clock::now(), options);
}

void write_file(const fs::path& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  ASSERT_TRUE(out.good());
}

/// Completed snapshot file names in `dir`, sorted.
std::set<std::string> completed_snapshots(const fs::path& dir) {
  std::set<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (snapshot_sequence(name).has_value()) names.insert(name);
  }
  return names;
}

TEST(SnapshotNaming, SequenceParsing) {
  EXPECT_EQ(snapshot_sequence("snapshot-000000042.json"), 42u);
  EXPECT_EQ(snapshot_sequence("snapshot-0.json"), 0u);
  // .tmp leftovers from a crashed writer are not snapshots.
  EXPECT_FALSE(snapshot_sequence("snapshot-000000042.json.tmp").has_value());
  EXPECT_FALSE(snapshot_sequence("snapshot-.json").has_value());
  EXPECT_FALSE(snapshot_sequence("snapshot-12.txt").has_value());
  EXPECT_FALSE(snapshot_sequence("other.json").has_value());
  EXPECT_FALSE(snapshot_sequence("snapshot-12x.json").has_value());
}

TEST(SnapshotWriter, PublishesAtomicallyAndPrunes) {
  const fs::path dir = make_dir("writer_prune");
  const ReportStream stream = make_stream(7, 120);

  SinkService service(make_config(1, 1));
  service.start();
  SnapshotWriter writer(service, {dir.string(), /*interval_s=*/0.0, /*retain=*/2});
  writer.start();  // interval 0: timer disabled, write_now() only

  // Four manual checkpoints with fresh state between them.
  for (std::size_t quarter = 0; quarter < 4; ++quarter) {
    ReportStream slice;
    slice.node_count = stream.node_count;
    slice.censor_threshold = stream.censor_threshold;
    for (std::size_t i = quarter * 30; i < (quarter + 1) * 30; ++i) {
      slice.records.push_back(stream.records[i]);
    }
    (void)feed_all(service, slice, 1);
    service.wait_idle();
    ASSERT_TRUE(writer.write_now());
  }
  writer.stop();
  service.stop();

  const SnapshotWriterStats stats = writer.stats();
  EXPECT_EQ(stats.written, 4u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(fs::path(stats.last_path).filename(), "snapshot-000000003.json");

  // Retention kept exactly the newest two; nothing torn left behind.
  EXPECT_EQ(completed_snapshots(dir),
            (std::set<std::string>{"snapshot-000000002.json", "snapshot-000000003.json"}));
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
  EXPECT_EQ(fs::path(*latest_snapshot(dir.string())).filename(), "snapshot-000000003.json");

  // The published document restores the exact service state.
  const auto recovered = load_latest_snapshot(dir.string());
  ASSERT_TRUE(recovered.has_value());
  SinkService restored(make_config(1, 1));
  ASSERT_TRUE(restored.restore_snapshot(recovered->json));
  expect_matches_batch(restored, batch_reference(stream));
}

TEST(SnapshotWriter, SequenceResumesAcrossRestart) {
  const fs::path dir = make_dir("writer_resume");
  const ReportStream stream = make_stream(9, 40);
  {
    SinkService service(make_config(1, 1));
    service.start();
    (void)feed_all(service, stream, 1);
    service.wait_idle();
    SnapshotWriter writer(service, {dir.string(), 0.0, 8});
    ASSERT_TRUE(writer.write_now());
    ASSERT_TRUE(writer.write_now());
    service.stop();
  }
  {
    // A restarted writer keeps appending to the same history instead of
    // clobbering snapshot-000000000.json.
    SinkService service(make_config(1, 1));
    SnapshotWriter writer(service, {dir.string(), 0.0, 8});
    ASSERT_TRUE(writer.write_now());
  }
  EXPECT_EQ(completed_snapshots(dir),
            (std::set<std::string>{"snapshot-000000000.json", "snapshot-000000001.json",
                                   "snapshot-000000002.json"}));
}

TEST(SnapshotWriter, TimerPublishesWithoutManualCalls) {
  const fs::path dir = make_dir("writer_timer");
  SinkService service(make_config(1, 1));
  service.start();
  SnapshotWriter writer(service, {dir.string(), /*interval_s=*/0.02, /*retain=*/4});
  writer.start();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (writer.stats().written == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  writer.stop();
  service.stop();
  EXPECT_GE(writer.stats().written, 1u);
  EXPECT_FALSE(completed_snapshots(dir).empty());
}

TEST(SnapshotRecovery, IgnoresTmpLeftoversAndCorruptFiles) {
  const fs::path dir = make_dir("recovery_skip");
  const ReportStream stream = make_stream(13, 60);

  SinkService service(make_config(1, 1));
  service.start();
  (void)feed_all(service, stream, 1);
  service.wait_idle();
  SnapshotWriter writer(service, {dir.string(), 0.0, 8});
  ASSERT_TRUE(writer.write_now());  // snapshot-000000000.json, the one good file
  service.stop();

  // A crashed writer's torn temp file, a corrupt completed file with a
  // higher sequence, and a well-formed document of the wrong format — all
  // newer-looking than the good snapshot, all skipped.
  write_file(dir / "snapshot-000000009.json.tmp", "{\"format\":\"dophy-sink-");
  write_file(dir / "snapshot-000000007.json", "not json at all");
  write_file(dir / "snapshot-000000005.json", R"({"format":"something-else"})");

  // latest_snapshot picks purely by name; load_latest_snapshot validates.
  EXPECT_EQ(fs::path(*latest_snapshot(dir.string())).filename(), "snapshot-000000007.json");
  const auto recovered = load_latest_snapshot(dir.string());
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(fs::path(recovered->path).filename(), "snapshot-000000000.json");
  EXPECT_EQ(recovered->producers, 1u);
  ASSERT_EQ(recovered->lane_processed.size(), 1u);
  EXPECT_EQ(recovered->lane_processed[0], stream.records.size());

  SinkService restored(make_config(1, 1));
  ASSERT_TRUE(restored.restore_snapshot(recovered->json));
  expect_matches_batch(restored, batch_reference(stream));

  // A directory with only garbage yields no snapshot rather than a bad one.
  const fs::path junk = make_dir("recovery_junk");
  write_file(junk / "snapshot-000000001.json", "junk");
  EXPECT_FALSE(load_latest_snapshot(junk.string()).has_value());
  EXPECT_FALSE(load_latest_snapshot((junk / "missing").string()).has_value());
}

TEST(SnapshotRecovery, KillMidStreamRecoveryIsExact) {
  // The headline crash-recovery claim, in-process: feed a prefix, snapshot,
  // "kill" (drop the service), then rebuild from the snapshot and replay the
  // tail under the canonical lane assignment.  The cut is deliberately not a
  // multiple of the producer count (uneven per-lane cursors) and leaves one
  // install in the prefix and one in the tail.
  const fs::path dir = make_dir("recovery_kill");
  const std::size_t kProducers = 3;
  const ReportStream full = make_stream(21, 400, /*install_every=*/150);
  const std::size_t cut = 211;  // records (reports + installs), mid-stream

  ReportStream prefix;
  prefix.node_count = full.node_count;
  prefix.censor_threshold = full.censor_threshold;
  prefix.records.assign(full.records.begin(),
                        full.records.begin() + static_cast<std::ptrdiff_t>(cut));

  {
    SinkService service(make_config(kProducers, 2));
    service.start();
    (void)feed_all(service, prefix, kProducers);
    service.wait_idle();
    SnapshotWriter writer(service, {dir.string(), 0.0, 4});
    ASSERT_TRUE(writer.write_now());
    // No orderly stop: the service object is simply destroyed, as a crash
    // would leave it.  (~SinkService drains, but the snapshot on disk is the
    // only state recovery gets to see.)
  }

  const auto recovered = load_latest_snapshot(dir.string());
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->producers, kProducers);
  ASSERT_EQ(recovered->lane_processed.size(), kProducers);
  std::uint64_t in_snapshot = 0;
  for (const auto count : recovered->lane_processed) in_snapshot += count;
  EXPECT_EQ(in_snapshot, cut);
  // Lane assignment is positional, so a cut that is not a lane-count
  // multiple leaves uneven cursors.
  EXPECT_NE(recovered->lane_processed[0], recovered->lane_processed[kProducers - 1]);

  SinkService rebuilt(make_config(kProducers, 2));
  ASSERT_TRUE(rebuilt.restore_snapshot(recovered->json));
  rebuilt.start();
  StreamFeedOptions options;
  options.lane_skip = &recovered->lane_processed;
  const std::uint64_t tail = feed_all(rebuilt, full, kProducers, options);
  rebuilt.wait_idle();
  rebuilt.stop();
  EXPECT_EQ(in_snapshot + tail, full.records.size());

  // Exact against the batch decode of the whole stream...
  expect_matches_batch(rebuilt, batch_reference(full));
  // ...and bit-identical to a service that never crashed.
  SinkService uninterrupted(make_config(kProducers, 2));
  uninterrupted.start();
  (void)feed_all(uninterrupted, full, kProducers);
  uninterrupted.wait_idle();
  uninterrupted.stop();
  EXPECT_EQ(rebuilt.snapshot_json(), uninterrupted.snapshot_json());
}

TEST(SnapshotRecovery, ConcurrentSnapshotsReplayExactly) {
  // Snapshots captured while the feed is running land at arbitrary cut
  // points (mid-batch, uneven lanes, possibly between an install's brackets).
  // Every one of them must recover: restore + tail replay with the
  // snapshot's own cursor equals the uninterrupted run.
  const fs::path dir = make_dir("recovery_concurrent");
  const std::size_t kProducers = 4;
  const ReportStream full = make_stream(33, 500, /*install_every=*/120);

  {
    SinkService service(make_config(kProducers, 2));
    service.start();
    SnapshotWriter writer(service, {dir.string(), 0.0, 64});
    std::thread feeder([&] { (void)feed_all(service, full, kProducers); });
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(writer.write_now());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    feeder.join();
    service.wait_idle();
    ASSERT_TRUE(writer.write_now());  // final checkpoint: full-stream state
    service.stop();
  }

  const LinkLossEstimator batch = batch_reference(full);
  std::size_t replayed = 0;
  for (const std::string& name : completed_snapshots(dir)) {
    std::ifstream in(dir / name, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string json = buffer.str();
    const auto doc = dophy::obs::parse_json(json);
    ASSERT_TRUE(doc.has_value()) << name;
    const auto* lanes = doc->find("lane_processed");
    ASSERT_NE(lanes, nullptr) << name;
    std::vector<std::uint64_t> cursor;
    for (const auto& lane : lanes->array) {
      cursor.push_back(static_cast<std::uint64_t>(lane.number));
    }
    ASSERT_EQ(cursor.size(), kProducers) << name;

    SinkService rebuilt(make_config(kProducers, 2));
    ASSERT_TRUE(rebuilt.restore_snapshot(json)) << name;
    rebuilt.start();
    StreamFeedOptions options;
    options.lane_skip = &cursor;
    (void)feed_all(rebuilt, full, kProducers, options);
    rebuilt.wait_idle();
    rebuilt.stop();
    expect_matches_batch(rebuilt, batch);
    ++replayed;
  }
  EXPECT_GE(replayed, 2u);  // at least one mid-stream cut plus the final one
}

TEST(SnapshotRecovery, RestoreRejectsMismatchedLaneLayout) {
  // The per-lane cursor only means something under the producer layout that
  // wrote it; restoring into a service with a different lane count must fail
  // instead of silently replaying the wrong tail.
  const ReportStream stream = make_stream(41, 60);
  SinkService donor(make_config(3, 1));
  donor.start();
  (void)feed_all(donor, stream, 3);
  donor.wait_idle();
  const std::string snapshot = donor.snapshot_json();
  donor.stop();

  SinkService two_lanes(make_config(2, 1));
  EXPECT_FALSE(two_lanes.restore_snapshot(snapshot));
  SinkService three_lanes(make_config(3, 1));
  EXPECT_TRUE(three_lanes.restore_snapshot(snapshot));
  expect_matches_batch(three_lanes, batch_reference(stream));
}

}  // namespace
}  // namespace dophy::sink
