// Differential PDES campaign (ctest -L pdes): for hundreds of fuzzed
// ScenarioSpecs, the LP-partitioned engine must produce ledger-exact
// identical results at every thread count — parallel(T) == parallel(1) for
// T in {2, 4, 8} — plus a statistical cross-check against the legacy serial
// engine.  A divergence is greedily shrunk (shorter run, fewer nodes, fewer
// dynamics) before reporting, so the failure message carries the smallest
// reproducing spec.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "dophy/check/ground_truth.hpp"
#include "dophy/check/scenario_gen.hpp"
#include "dophy/net/network.hpp"

namespace dophy::net {
namespace {

constexpr std::size_t kSeeds = 200;
constexpr std::size_t kLpCount = 8;
constexpr std::uint32_t kMaxWarmupS = 10;
constexpr std::uint32_t kMaxMeasureS = 20;

/// Order-independent ledger; identical across thread counts iff the two runs
/// executed the same simulation.
struct LedgerObserver final : NetworkObserver {
  dophy::check::GroundTruth ledger;
  void on_generated(const Packet&, SimTime) override { ledger.record_generated(); }
  void on_transmission(NodeId sender, NodeId receiver, std::uint32_t attempts,
                       std::uint32_t first_rx, bool delivered, bool channel_used,
                       SimTime) override {
    if (channel_used) {
      ledger.record_exchange(LinkKey{sender, receiver}, attempts, first_rx, delivered);
    }
  }
  void on_arrival(const Packet&, NodeId receiver, NodeId, std::uint64_t dedupe_key, bool,
                  SimTime) override {
    ledger.record_arrival(receiver, dedupe_key);
  }
  void on_parent_change(NodeId, SimTime) override {}
  void on_finished(const Packet&, PacketFate fate, SimTime) override {
    ledger.record_finished(fate);
  }
};

struct RunDigest {
  dophy::check::GroundTruth ledger;
  NetworkStats stats;
  std::uint64_t executed = 0;
  std::uint64_t windows = 0;
  std::uint64_t remote_msgs = 0;
};

dophy::check::ScenarioSpec capped(dophy::check::ScenarioSpec spec) {
  spec.warmup_s = std::min(spec.warmup_s, kMaxWarmupS);
  spec.measure_s = std::min(spec.measure_s, kMaxMeasureS);
  return spec;
}

RunDigest run_spec(const dophy::check::ScenarioSpec& spec, std::size_t lp_count,
                   std::size_t threads) {
  NetworkConfig cfg = dophy::check::make_config(spec).net;
  cfg.collect_outcomes = false;
  // The default 30 s source start-delay would outlast the capped runs and
  // leave the campaign vacuous (beacons only); start traffic immediately.
  cfg.traffic.start_delay_s = 1.0;
  cfg.pdes.lp_count = lp_count;
  cfg.pdes.threads = threads;
  Network net(cfg);
  LedgerObserver obs;
  net.set_observer(&obs);
  net.run_for(static_cast<double>(spec.warmup_s + spec.measure_s));
  RunDigest d;
  d.ledger = std::move(obs.ledger);
  d.stats = net.stats();
  d.executed = net.executed_events();
  d.windows = net.window_count();
  d.remote_msgs = net.remote_message_count();
  return d;
}

/// First differing field, or nullopt when ledger-exact identical.
std::optional<std::string> diff(const RunDigest& a, const RunDigest& b) {
  auto field = [](const char* name, std::uint64_t x, std::uint64_t y)
      -> std::optional<std::string> {
    if (x == y) return std::nullopt;
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s: %llu != %llu", name,
                  static_cast<unsigned long long>(x), static_cast<unsigned long long>(y));
    return std::string(buf);
  };
  if (auto d = field("generated", a.ledger.generated(), b.ledger.generated())) return d;
  if (auto d = field("finished", a.ledger.finished(), b.ledger.finished())) return d;
  if (auto d = field("attempts", a.ledger.total_attempts(), b.ledger.total_attempts()))
    return d;
  for (int fate = 0; fate < 5; ++fate) {
    if (auto d = field("fate", a.ledger.fate_count(static_cast<PacketFate>(fate)),
                       b.ledger.fate_count(static_cast<PacketFate>(fate))))
      return d;
  }
  if (auto d = field("ledger_links", a.ledger.links().size(), b.ledger.links().size()))
    return d;
  for (const auto& [key, tally] : a.ledger.links()) {
    const auto* other = b.ledger.find_link(key);
    if (other == nullptr) return "ledger link missing";
    if (tally.attempts != other->attempts || tally.exchanges != other->exchanges ||
        tally.failed_exchanges != other->failed_exchanges ||
        tally.min_losses != other->min_losses || tally.max_losses != other->max_losses) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "link %u->%u tallies differ",
                    static_cast<unsigned>(key.from), static_cast<unsigned>(key.to));
      return std::string(buf);
    }
  }
  if (auto d = field("stats.generated", a.stats.packets_generated, b.stats.packets_generated))
    return d;
  if (auto d = field("stats.delivered", a.stats.packets_delivered, b.stats.packets_delivered))
    return d;
  if (auto d = field("stats.retries", a.stats.dropped_retries, b.stats.dropped_retries))
    return d;
  if (auto d = field("stats.noroute", a.stats.dropped_noroute, b.stats.dropped_noroute))
    return d;
  if (auto d = field("stats.ttl", a.stats.dropped_ttl, b.stats.dropped_ttl)) return d;
  if (auto d = field("stats.queue", a.stats.dropped_queue, b.stats.dropped_queue)) return d;
  if (auto d = field("stats.tx", a.stats.data_tx_attempts, b.stats.data_tx_attempts)) return d;
  if (auto d = field("stats.rx", a.stats.data_rx_frames, b.stats.data_rx_frames)) return d;
  if (auto d = field("stats.ctrl_rx", a.stats.control_rx_frames, b.stats.control_rx_frames))
    return d;
  if (auto d = field("stats.beacons", a.stats.beacons_sent, b.stats.beacons_sent)) return d;
  if (auto d = field("stats.parents", a.stats.parent_changes, b.stats.parent_changes))
    return d;
  if (auto d = field("stats.failures", a.stats.node_failures, b.stats.node_failures)) return d;
  if (auto d = field("executed", a.executed, b.executed)) return d;
  if (auto d = field("windows", a.windows, b.windows)) return d;
  if (auto d = field("remote_msgs", a.remote_msgs, b.remote_msgs)) return d;
  return std::nullopt;
}

bool diverges(const dophy::check::ScenarioSpec& spec, std::size_t threads) {
  const RunDigest base = run_spec(spec, kLpCount, 1);
  const RunDigest par = run_spec(spec, kLpCount, threads);
  return diff(base, par).has_value();
}

/// Greedy shrink: keep any single-field reduction that still reproduces the
/// divergence at `threads`; stop at a fixpoint.
dophy::check::ScenarioSpec shrink(dophy::check::ScenarioSpec spec, std::size_t threads) {
  bool progress = true;
  while (progress) {
    progress = false;
    std::vector<dophy::check::ScenarioSpec> candidates;
    if (spec.measure_s > 5) {
      auto c = spec;
      c.measure_s /= 2;
      candidates.push_back(c);
    }
    if (spec.warmup_s > 1) {
      auto c = spec;
      c.warmup_s /= 2;
      candidates.push_back(c);
    }
    if (spec.nodes > 10) {
      auto c = spec;
      c.nodes = std::max<std::uint32_t>(10, c.nodes / 2);
      candidates.push_back(c);
    }
    if (spec.churn) {
      auto c = spec;
      c.churn = false;
      candidates.push_back(c);
    }
    if (spec.dynamics) {
      auto c = spec;
      c.dynamics = false;
      candidates.push_back(c);
    }
    if (spec.opportunism) {
      auto c = spec;
      c.opportunism = false;
      candidates.push_back(c);
    }
    if (spec.loss_kind != 0) {
      auto c = spec;
      c.loss_kind = 0;
      candidates.push_back(c);
    }
    for (const auto& c : candidates) {
      if (diverges(c, threads)) {
        spec = c;
        progress = true;
        break;
      }
    }
  }
  return spec;
}

TEST(PdesDifferential, ParallelEqualsSerialEquivalentAcrossThreadCounts) {
  const std::size_t thread_counts[] = {2, 4, 8};
  std::uint64_t total_generated = 0;
  std::uint64_t total_remote = 0;
  for (std::size_t seed = 1; seed <= kSeeds; ++seed) {
    const auto spec = capped(dophy::check::generate_scenario(seed));
    const RunDigest base = run_spec(spec, kLpCount, 1);
    total_generated += base.ledger.generated();
    total_remote += base.remote_msgs;
    for (const std::size_t threads : thread_counts) {
      const RunDigest par = run_spec(spec, kLpCount, threads);
      const auto divergence = diff(base, par);
      if (divergence) {
        const auto small = shrink(spec, threads);
        FAIL() << "PDES divergence at T=" << threads << " (" << *divergence << ")\n"
               << "  spec:   " << dophy::check::to_string(spec) << "\n"
               << "  shrunk: " << dophy::check::to_string(small);
      }
    }
  }
  // Vacuity guard: a campaign that never generates traffic or never crosses
  // an LP boundary compares nothing and proves nothing.
  EXPECT_GT(total_generated, 1000u);
  EXPECT_GT(total_remote, 1000u);
}

TEST(PdesDifferential, ParallelStatisticallyMatchesLegacySerial) {
  // Cut-edge semantics make K>1 an approximation of the serial engine; the
  // delivery ratios must still agree closely in aggregate.
  double abs_sum = 0.0, signed_sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t seed = 1; seed <= 25; ++seed) {
    const auto spec = capped(dophy::check::generate_scenario(seed));
    const RunDigest serial = run_spec(spec, 1, 1);
    if (serial.stats.packets_generated == 0) continue;
    const RunDigest pdes = run_spec(spec, kLpCount, 2);
    if (pdes.stats.packets_generated == 0) continue;
    const double d = serial.stats.delivery_ratio() - pdes.stats.delivery_ratio();
    abs_sum += std::abs(d);
    signed_sum += d;
    ++counted;
  }
  ASSERT_GT(counted, 10u);
  EXPECT_LT(abs_sum / static_cast<double>(counted), 0.08);
  EXPECT_LT(std::abs(signed_sum) / static_cast<double>(counted), 0.05);
}

}  // namespace
}  // namespace dophy::net
