#include "dophy/tomo/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dophy::tomo {
namespace {

LinkScore score(double est, double truth, std::uint64_t attempts = 100) {
  LinkScore s;
  s.estimated = est;
  s.truth = truth;
  s.truth_attempts = attempts;
  return s;
}

TEST(Metrics, EmptyScores) {
  const auto s = summarize_scores({}, 10);
  EXPECT_EQ(s.links_scored, 0u);
  EXPECT_EQ(s.mae, 0.0);
  EXPECT_EQ(s.coverage, 0.0);
}

TEST(Metrics, AbsError) {
  EXPECT_DOUBLE_EQ(score(0.3, 0.1).abs_error(), 0.2);
  EXPECT_DOUBLE_EQ(score(0.1, 0.3).abs_error(), 0.2);
}

TEST(Metrics, PerfectEstimates) {
  std::vector<LinkScore> scores{score(0.1, 0.1), score(0.5, 0.5), score(0.9, 0.9)};
  const auto s = summarize_scores(scores, 3);
  EXPECT_DOUBLE_EQ(s.mae, 0.0);
  EXPECT_DOUBLE_EQ(s.rmse, 0.0);
  EXPECT_DOUBLE_EQ(s.coverage, 1.0);
  EXPECT_NEAR(s.spearman, 1.0, 1e-12);
}

TEST(Metrics, KnownErrors) {
  std::vector<LinkScore> scores{score(0.2, 0.1), score(0.1, 0.4)};
  const auto s = summarize_scores(scores, 4);
  EXPECT_DOUBLE_EQ(s.mae, 0.2);  // (0.1 + 0.3) / 2
  EXPECT_NEAR(s.rmse, std::sqrt((0.01 + 0.09) / 2), 1e-12);
  EXPECT_DOUBLE_EQ(s.max_abs, 0.3);
  EXPECT_DOUBLE_EQ(s.coverage, 0.5);
}

TEST(Metrics, RelativeErrorSkipsZeroTruth) {
  std::vector<LinkScore> scores{score(0.2, 0.0), score(0.2, 0.1)};
  const auto s = summarize_scores(scores, 2);
  EXPECT_DOUBLE_EQ(s.mean_rel, 0.5);  // only the second contributes: 0.1/0.1=1 -> /2
}

TEST(Metrics, QuantilesOrdered) {
  std::vector<LinkScore> scores;
  for (int i = 1; i <= 100; ++i) {
    scores.push_back(score(0.0, static_cast<double>(i) / 100.0));
  }
  const auto s = summarize_scores(scores, 100);
  EXPECT_LE(s.p50_abs, s.p90_abs);
  EXPECT_LE(s.p90_abs, s.max_abs);
  EXPECT_NEAR(s.p50_abs, 0.505, 0.02);
}

TEST(Metrics, AbsErrorsExtraction) {
  std::vector<LinkScore> scores{score(0.2, 0.1), score(0.5, 0.9)};
  const auto errs = abs_errors(scores);
  ASSERT_EQ(errs.size(), 2u);
  EXPECT_DOUBLE_EQ(errs[0], 0.1);
  EXPECT_NEAR(errs[1], 0.4, 1e-12);
}

TEST(Metrics, SpearmanReflectsRankQuality) {
  // Estimates that invert the ranking score negative correlation.
  std::vector<LinkScore> scores{score(0.9, 0.1), score(0.5, 0.5), score(0.1, 0.9)};
  const auto s = summarize_scores(scores, 3);
  EXPECT_LT(s.spearman, -0.9);
}

}  // namespace
}  // namespace dophy::tomo
