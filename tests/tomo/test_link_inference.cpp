#include "dophy/tomo/link_inference.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dophy/common/rng.hpp"
#include "dophy/tomo/geometric_mle.hpp"

namespace dophy::tomo {
namespace {

using dophy::net::LinkKey;

HopObservation obs(std::uint32_t attempts, bool censored = false) {
  return HopObservation{attempts, censored};
}

TEST(LinkLossEstimator, NoObservationsNoEstimate) {
  LinkLossEstimator est(4);
  EXPECT_FALSE(est.estimate(LinkKey{1, 2}).has_value());
  EXPECT_TRUE(est.all_estimates().empty());
}

TEST(LinkLossEstimator, PerfectLinkZeroLoss) {
  LinkLossEstimator est(4);
  for (int i = 0; i < 100; ++i) est.observe(LinkKey{1, 2}, obs(1));
  const auto e = est.estimate(LinkKey{1, 2});
  ASSERT_TRUE(e.has_value());
  EXPECT_NEAR(e->loss, 0.0, 1e-6);
}

TEST(LinkLossEstimator, UncensoredMleMatchesGeometric) {
  dophy::common::Rng rng(1);
  for (const double p : {0.1, 0.3, 0.6}) {
    LinkLossEstimator est(100);  // huge K: effectively no censoring
    for (int i = 0; i < 50000; ++i) {
      est.observe(LinkKey{1, 2}, obs(rng.geometric_trials(1.0 - p)));
    }
    const auto e = est.estimate(LinkKey{1, 2});
    ASSERT_TRUE(e.has_value());
    EXPECT_NEAR(e->loss, p, 0.01) << "p=" << p;
  }
}

TEST(LinkLossEstimator, CensoredMleUnbiased) {
  // The whole point of symbol aggregation: censoring at K=4 must NOT bias
  // the estimate even for lossy links where censoring is common.
  dophy::common::Rng rng(2);
  const std::uint32_t k = 4;
  for (const double p : {0.2, 0.5, 0.7}) {
    LinkLossEstimator est(k);
    for (int i = 0; i < 50000; ++i) {
      const std::uint32_t t = rng.geometric_trials(1.0 - p);
      est.observe(LinkKey{1, 2}, t >= k ? obs(k, true) : obs(t));
    }
    const auto e = est.estimate(LinkKey{1, 2});
    ASSERT_TRUE(e.has_value());
    EXPECT_NEAR(e->loss, p, 0.012) << "p=" << p;
  }
}

TEST(LinkLossEstimator, AllCensoredGivesConservativeBound) {
  LinkLossEstimator est(4);
  for (int i = 0; i < 50; ++i) est.observe(LinkKey{3, 4}, obs(4, true));
  const auto e = est.estimate(LinkKey{3, 4});
  ASSERT_TRUE(e.has_value());
  EXPECT_NEAR(e->loss, 0.75, 1e-9);  // 1 - 1/K
  EXPECT_GE(e->stderr_, 0.5);
}

TEST(LinkLossEstimator, StderrShrinksWithSamples) {
  dophy::common::Rng rng(3);
  LinkLossEstimator small(4), large(4);
  for (int i = 0; i < 20; ++i) {
    small.observe(LinkKey{1, 2}, obs(rng.geometric_trials(0.7)));
  }
  for (int i = 0; i < 20000; ++i) {
    large.observe(LinkKey{1, 2}, obs(rng.geometric_trials(0.7)));
  }
  EXPECT_GT(small.estimate(LinkKey{1, 2})->stderr_,
            10.0 * large.estimate(LinkKey{1, 2})->stderr_);
}

TEST(LinkLossEstimator, ObservePathFansOutToLinks) {
  LinkLossEstimator est(4);
  DecodedPath path;
  path.origin = 1;
  path.hops.push_back({1, 2, obs(1)});
  path.hops.push_back({2, 3, obs(2)});
  path.hops.push_back({3, 0, obs(1)});
  est.observe_path(path);
  EXPECT_EQ(est.link_count(), 3u);
  EXPECT_TRUE(est.estimate(LinkKey{2, 3}).has_value());
}

TEST(LinkLossEstimator, DecayTracksShift) {
  dophy::common::Rng rng(4);
  LinkLossEstimator tracker(4, 0.5);
  // Phase 1: excellent link.
  for (int i = 0; i < 5000; ++i) {
    tracker.observe(LinkKey{1, 2}, obs(rng.geometric_trials(0.98)));
  }
  // Phase 2: degraded to 50% loss, with epoch decay between batches.
  for (int epoch = 0; epoch < 12; ++epoch) {
    tracker.end_epoch();
    for (int i = 0; i < 500; ++i) {
      const std::uint32_t t = rng.geometric_trials(0.5);
      tracker.observe(LinkKey{1, 2}, t >= 4 ? obs(4, true) : obs(t));
    }
  }
  const auto e = tracker.estimate(LinkKey{1, 2});
  ASSERT_TRUE(e.has_value());
  EXPECT_NEAR(e->loss, 0.5, 0.05);

  // A cumulative estimator stays anchored to the stale phase.
  LinkLossEstimator cumulative(4, 1.0);
  dophy::common::Rng rng2(4);
  for (int i = 0; i < 5000; ++i) {
    cumulative.observe(LinkKey{1, 2}, obs(rng2.geometric_trials(0.98)));
  }
  for (int i = 0; i < 6000; ++i) {
    const std::uint32_t t = rng2.geometric_trials(0.5);
    cumulative.observe(LinkKey{1, 2}, t >= 4 ? obs(4, true) : obs(t));
  }
  EXPECT_LT(cumulative.estimate(LinkKey{1, 2})->loss, 0.45);
}

TEST(LinkLossEstimator, AllEstimatesSortedByKey) {
  LinkLossEstimator est(4);
  est.observe(LinkKey{9, 1}, obs(1));
  est.observe(LinkKey{2, 3}, obs(1));
  est.observe(LinkKey{2, 1}, obs(1));
  const auto all = est.all_estimates();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_TRUE(all[0].first < all[1].first && all[1].first < all[2].first);
}

TEST(LinkLossEstimator, InvalidConstruction) {
  EXPECT_THROW(LinkLossEstimator(1), std::invalid_argument);
  EXPECT_THROW(LinkLossEstimator(4, 0.0), std::invalid_argument);
  EXPECT_THROW(LinkLossEstimator(4, 1.5), std::invalid_argument);
}

TEST(LinkLossEstimator, BayesianPosteriorMeanConsistent) {
  // With lots of data the posterior mean converges to the MLE / truth.
  dophy::common::Rng rng(5);
  LinkLossEstimator bayes(4);
  bayes.set_beta_prior(2.0, 0.4);
  for (int i = 0; i < 50000; ++i) {
    const std::uint32_t t = rng.geometric_trials(0.7);
    bayes.observe(LinkKey{1, 2}, t >= 4 ? obs(4, true) : obs(t));
  }
  EXPECT_NEAR(bayes.estimate(LinkKey{1, 2})->loss, 0.3, 0.015);
}

TEST(LinkLossEstimator, BayesianPriorRegularizesThinLinks) {
  // One censored observation: the MLE pegs at the boundary (1 - 1/K); the
  // prior pulls toward its mean instead.
  LinkLossEstimator mle(4);
  LinkLossEstimator bayes(4);
  bayes.set_beta_prior(4.0, 1.0);  // prior mean success 0.8 -> loss 0.2
  mle.observe(LinkKey{1, 2}, obs(4, true));
  bayes.observe(LinkKey{1, 2}, obs(4, true));
  EXPECT_NEAR(mle.estimate(LinkKey{1, 2})->loss, 0.75, 1e-9);
  EXPECT_LT(bayes.estimate(LinkKey{1, 2})->loss, 0.55);
}

TEST(LinkLossEstimator, BayesianPriorRejectsNegative) {
  LinkLossEstimator est(4);
  EXPECT_THROW(est.set_beta_prior(-1.0, 0.0), std::invalid_argument);
}

TEST(LinkLossEstimator, WaldIntervalRoughlyCalibrated) {
  // Property: the +-2 stderr interval should contain the true loss in
  // roughly 95% of independent replications (allow a generous band).
  dophy::common::Rng rng(6);
  const double p = 0.35;
  int covered = 0;
  const int reps = 300;
  for (int r = 0; r < reps; ++r) {
    LinkLossEstimator est(4);
    for (int i = 0; i < 400; ++i) {
      const std::uint32_t t = rng.geometric_trials(1.0 - p);
      est.observe(LinkKey{1, 2}, t >= 4 ? obs(4, true) : obs(t));
    }
    const auto e = est.estimate(LinkKey{1, 2});
    covered += std::abs(e->loss - p) <= 2.0 * e->stderr_;
  }
  const double coverage = static_cast<double>(covered) / reps;
  EXPECT_GT(coverage, 0.88);
  EXPECT_LE(coverage, 1.0);
}

TEST(LinkLossEstimator, ClosedFormMatchesBruteForceLikelihood) {
  // Golden check of the censored-geometric MLE: grid-search the
  // log-likelihood and confirm the closed form lands on the maximum.
  dophy::common::Rng rng(7);
  const std::uint32_t k = 4;
  std::vector<std::pair<std::uint32_t, bool>> data;  // (attempts, censored)
  LinkLossEstimator est(k);
  for (int i = 0; i < 3000; ++i) {
    const std::uint32_t t = rng.geometric_trials(0.55);
    const bool censored = t >= k;
    data.emplace_back(censored ? k : t, censored);
    est.observe(LinkKey{1, 2}, obs(censored ? k : t, censored));
  }
  auto log_lik = [&](double q) {
    double ll = 0.0;
    for (const auto& [t, censored] : data) {
      if (censored) {
        ll += static_cast<double>(k - 1) * std::log(1.0 - q);
      } else {
        ll += std::log(q) + static_cast<double>(t - 1) * std::log(1.0 - q);
      }
    }
    return ll;
  };
  double best_q = 0.0, best_ll = -1e300;
  for (double q = 0.001; q < 0.9995; q += 0.0005) {
    const double ll = log_lik(q);
    if (ll > best_ll) {
      best_ll = ll;
      best_q = q;
    }
  }
  const auto e = est.estimate(LinkKey{1, 2});
  ASSERT_TRUE(e.has_value());
  EXPECT_NEAR(1.0 - e->loss, best_q, 0.001);
}

TEST(LinkLossEstimator, ClearResets) {
  LinkLossEstimator est(4);
  est.observe(LinkKey{1, 2}, obs(1));
  est.clear();
  EXPECT_EQ(est.link_count(), 0u);
  EXPECT_FALSE(est.estimate(LinkKey{1, 2}).has_value());
}

TEST(LinkLossEstimator, MinimumCensorThresholdBoundary) {
  // K = 2 is the smallest legal threshold: every attempt count >= 2 is
  // censored, so the all-censored boundary sits at loss = 1 - 1/2.
  LinkLossEstimator est(2);
  EXPECT_EQ(est.censor_threshold(), 2u);
  for (int i = 0; i < 10; ++i) est.observe(LinkKey{1, 2}, obs(2, true));
  const auto e = est.estimate(LinkKey{1, 2});
  ASSERT_TRUE(e.has_value());
  EXPECT_NEAR(e->loss, 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(e->stderr_, 1.0);

  // One uncensored success moves the MLE off the boundary.
  est.observe(LinkKey{1, 2}, obs(1));
  const auto e2 = est.estimate(LinkKey{1, 2});
  EXPECT_LT(e2->loss, 1.0);
  EXPECT_LT(e2->stderr_, 1.0);
}

TEST(LinkLossEstimator, NeverCensoredAtMaxThreshold) {
  // K above every attempt count: censoring never fires and the MLE reduces
  // to the plain geometric estimate U / sum(t).
  LinkLossEstimator est(1000);
  est.observe(LinkKey{1, 2}, obs(2));
  est.observe(LinkKey{1, 2}, obs(2));
  const auto e = est.estimate(LinkKey{1, 2});
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e->loss, 0.5);  // q = 2 / 4
}

TEST(LinkLossEstimator, StatsAccessorExposesSufficientStatistics) {
  LinkLossEstimator est(4);
  EXPECT_EQ(est.stats(LinkKey{1, 2}), nullptr);
  est.observe(LinkKey{1, 2}, obs(3));
  est.observe(LinkKey{1, 2}, obs(4, true));
  const GeometricSuffStats* s = est.stats(LinkKey{1, 2});
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->uncensored, 1.0);
  EXPECT_EQ(s->attempts_sum, 3.0);
  EXPECT_EQ(s->censored, 1.0);
  // The estimate is exactly the shared closed form over those stats.
  const auto direct = estimate_censored_geometric(*s, 4);
  const auto via = est.estimate(LinkKey{1, 2});
  ASSERT_TRUE(via.has_value());
  EXPECT_EQ(via->loss, direct.loss);
  EXPECT_EQ(via->stderr_, direct.stderr_);
}

TEST(LinkLossEstimator, FullyDecayedGhostLinksDisappear) {
  // A link whose mass decays below the support threshold must stop being
  // reported — by estimate() and by all_estimates() alike.
  LinkLossEstimator est(4, 0.1);
  est.observe(LinkKey{1, 2}, obs(1));
  ASSERT_TRUE(est.estimate(LinkKey{1, 2}).has_value());
  est.end_epoch();  // mass 0.1 < 0.5
  EXPECT_FALSE(est.estimate(LinkKey{1, 2}).has_value());
  EXPECT_TRUE(est.all_estimates().empty());
  // New observations revive it.
  est.observe(LinkKey{1, 2}, obs(2));
  EXPECT_TRUE(est.estimate(LinkKey{1, 2}).has_value());
}

}  // namespace
}  // namespace dophy::tomo
