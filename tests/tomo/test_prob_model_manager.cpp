#include "dophy/tomo/prob_model_manager.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "dophy/common/rng.hpp"

namespace dophy::tomo {
namespace {

DecodedPath skewed_path(dophy::common::Rng& rng, std::size_t node_count) {
  DecodedPath path;
  path.origin = 5;
  // Relays concentrate on low ids; counts mostly 1.
  const std::size_t len = 1 + rng.next_below(4);
  dophy::net::NodeId sender = path.origin;
  for (std::size_t i = 0; i < len; ++i) {
    DecodedHop hop;
    hop.sender = sender;
    hop.receiver = static_cast<dophy::net::NodeId>(
        i + 1 == len ? 0 : 1 + rng.next_below(node_count / 4));
    hop.observation.attempts = rng.bernoulli(0.8) ? 1u : 2u;
    hop.observation.censored = false;
    path.hops.push_back(hop);
    sender = hop.receiver;
  }
  return path;
}

struct Harness {
  SymbolMapper mapper{4};
  std::vector<ModelSet> published;
  ModelUpdateConfig config;
  std::unique_ptr<ProbModelManager> manager;

  explicit Harness(ModelUpdateConfig cfg) : config(cfg) {
    manager = std::make_unique<ProbModelManager>(
        config, 20, mapper, [this](const ModelSet& set) { published.push_back(set); });
  }
};

TEST(ProbModelManager, StaticPolicyNeverPublishes) {
  ModelUpdateConfig cfg;
  cfg.policy = ModelUpdateConfig::Policy::kStatic;
  Harness h(cfg);
  dophy::common::Rng rng(1);
  for (int i = 0; i < 500; ++i) h.manager->observe(skewed_path(rng, 20));
  for (int t = 1; t <= 10; ++t) h.manager->on_tick(t * 1000000);
  EXPECT_TRUE(h.published.empty());
  EXPECT_EQ(h.manager->deployed_version(), 0);
}

TEST(ProbModelManager, PeriodicPublishesWithEnoughSamples) {
  ModelUpdateConfig cfg;
  cfg.policy = ModelUpdateConfig::Policy::kPeriodic;
  cfg.min_hop_samples = 100;
  Harness h(cfg);
  dophy::common::Rng rng(2);
  for (int i = 0; i < 200; ++i) h.manager->observe(skewed_path(rng, 20));
  h.manager->on_tick(1000000);
  EXPECT_EQ(h.published.size(), 1u);
  EXPECT_EQ(h.published[0].version, 1);
  EXPECT_EQ(h.manager->deployed_version(), 1);
}

TEST(ProbModelManager, PeriodicSkipsThinWindows) {
  ModelUpdateConfig cfg;
  cfg.policy = ModelUpdateConfig::Policy::kPeriodic;
  cfg.min_hop_samples = 1000;
  Harness h(cfg);
  dophy::common::Rng rng(3);
  for (int i = 0; i < 10; ++i) h.manager->observe(skewed_path(rng, 20));
  h.manager->on_tick(1000000);
  EXPECT_TRUE(h.published.empty());
}

TEST(ProbModelManager, PublishedModelReflectsObservations) {
  ModelUpdateConfig cfg;
  cfg.policy = ModelUpdateConfig::Policy::kPeriodic;
  cfg.min_hop_samples = 10;
  Harness h(cfg);
  dophy::common::Rng rng(4);
  for (int i = 0; i < 1000; ++i) h.manager->observe(skewed_path(rng, 20));
  h.manager->on_tick(1000000);
  ASSERT_EQ(h.published.size(), 1u);
  const auto& retx = h.published[0].retx_model;
  // Counts are ~80% ones: symbol 0 must dominate symbol 3.
  EXPECT_GT(retx.freq(0), 10u * retx.freq(3));
  // Ids concentrate below node_count/4.
  const auto& ids = h.published[0].id_model;
  EXPECT_GT(ids.freq(1), ids.freq(15));
}

TEST(ProbModelManager, KlDropsAfterPublish) {
  ModelUpdateConfig cfg;
  cfg.policy = ModelUpdateConfig::Policy::kPeriodic;
  cfg.min_hop_samples = 10;
  Harness h(cfg);
  dophy::common::Rng rng(5);
  for (int i = 0; i < 1000; ++i) h.manager->observe(skewed_path(rng, 20));
  const double kl_before = h.manager->current_kl_bits();
  EXPECT_GT(kl_before, 0.3);  // skewed vs uniform bootstrap
  h.manager->on_tick(1000000);
  // New window under the freshly fitted model: KL near zero.
  dophy::common::Rng rng2(5);
  for (int i = 0; i < 1000; ++i) h.manager->observe(skewed_path(rng2, 20));
  EXPECT_LT(h.manager->current_kl_bits(), 0.2 * kl_before);
}

TEST(ProbModelManager, AdaptivePublishesOnlyWhenWorthwhile) {
  ModelUpdateConfig cfg;
  cfg.policy = ModelUpdateConfig::Policy::kAdaptive;
  cfg.min_hop_samples = 50;
  cfg.adaptive_horizon_s = 600.0;

  // Case 1: skewed traffic at high rate -> savings dwarf the flood cost.
  Harness busy(cfg);
  dophy::common::Rng rng(6);
  for (int i = 0; i < 5000; ++i) busy.manager->observe(skewed_path(rng, 20));
  busy.manager->on_tick(10 * 1000000);  // 10s window -> high hop rate
  EXPECT_EQ(busy.published.size(), 1u);

  // Case 2: same distribution as deployed (uniform-ish) -> KL ~ 0, no update.
  Harness idle(cfg);
  dophy::common::Rng rng2(7);
  for (int i = 0; i < 200; ++i) {
    DecodedPath p;
    p.origin = 3;
    DecodedHop hop;
    hop.sender = 3;
    // Uniform receiver ids and uniform-ish symbols match the bootstrap.
    hop.receiver = static_cast<dophy::net::NodeId>(rng2.next_below(20));
    hop.observation.attempts = 1 + static_cast<std::uint32_t>(rng2.next_below(3));
    p.hops.push_back(hop);
    idle.manager->observe(p);
  }
  idle.manager->on_tick(600 * 1000000);  // low rate, tiny KL
  EXPECT_TRUE(idle.published.empty());
}

TEST(ProbModelManager, VersionsIncrementAcrossUpdates) {
  ModelUpdateConfig cfg;
  cfg.policy = ModelUpdateConfig::Policy::kPeriodic;
  cfg.min_hop_samples = 10;
  Harness h(cfg);
  dophy::common::Rng rng(8);
  for (int round = 1; round <= 3; ++round) {
    for (int i = 0; i < 100; ++i) h.manager->observe(skewed_path(rng, 20));
    h.manager->on_tick(round * 1000000);
  }
  ASSERT_EQ(h.published.size(), 3u);
  EXPECT_EQ(h.published[0].version, 1);
  EXPECT_EQ(h.published[1].version, 2);
  EXPECT_EQ(h.published[2].version, 3);
  EXPECT_EQ(h.manager->stats().updates_published, 3u);
}

TEST(ProbModelManager, IdModelFrozenWhenDisabled) {
  ModelUpdateConfig cfg;
  cfg.policy = ModelUpdateConfig::Policy::kPeriodic;
  cfg.min_hop_samples = 10;
  cfg.update_id_model = false;
  Harness h(cfg);
  dophy::common::Rng rng(9);
  for (int i = 0; i < 500; ++i) h.manager->observe(skewed_path(rng, 20));
  h.manager->on_tick(1000000);
  ASSERT_EQ(h.published.size(), 1u);
  // Id model stays uniform (deployed counts all 1).
  const auto& ids = h.published[0].id_model;
  for (std::size_t s = 1; s < ids.symbol_count(); ++s) {
    EXPECT_EQ(ids.freq(s), ids.freq(0));
  }
}

TEST(ProbModelManager, RejectsBadConstruction) {
  const SymbolMapper mapper(4);
  ModelUpdateConfig cfg;
  EXPECT_THROW(ProbModelManager(cfg, 1, mapper, [](const ModelSet&) {}),
               std::invalid_argument);
  EXPECT_THROW(ProbModelManager(cfg, 20, mapper, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace dophy::tomo
