// Unit tests for the shared censored-geometric sufficient-statistic kernel —
// the math both the batch LinkLossEstimator and the streaming sink estimator
// evaluate.  Covers the accumulation identities (merge == sequential, order
// invariance while integral), the decay/ghost boundary, and hand-computed
// closed forms including the all-censored and zero-observation edges.

#include <gtest/gtest.h>

#include <cmath>

#include "dophy/tomo/geometric_mle.hpp"

namespace dophy::tomo {
namespace {

HopObservation obs(std::uint32_t attempts, bool censored = false) {
  return HopObservation{attempts, censored};
}

TEST(GeometricSuffStats, ObserveAccumulatesIntegralCounts) {
  GeometricSuffStats s;
  s.observe(obs(3));
  s.observe(obs(1));
  s.observe(obs(4, true));
  EXPECT_EQ(s.uncensored, 2.0);
  EXPECT_EQ(s.attempts_sum, 4.0);
  EXPECT_EQ(s.censored, 1.0);
  EXPECT_EQ(s.total(), 3.0);
  EXPECT_TRUE(s.has_support());
}

TEST(GeometricSuffStats, MergeEqualsSequentialAccumulation) {
  GeometricSuffStats whole, left, right;
  const std::uint32_t attempts[] = {1, 3, 2, 4, 4, 1, 2, 5};
  for (std::size_t i = 0; i < 8; ++i) {
    const auto o = obs(attempts[i], attempts[i] >= 4);
    whole.observe(o);
    (i < 4 ? left : right).observe(o);
  }
  left.merge(right);
  EXPECT_TRUE(left == whole);  // exact: shard merge loses nothing
}

TEST(GeometricSuffStats, AccumulationOrderIsIrrelevantWhileIntegral) {
  GeometricSuffStats forward, backward;
  const std::uint32_t attempts[] = {7, 1, 3, 4, 2, 6, 5, 1, 1, 4};
  for (std::size_t i = 0; i < 10; ++i) forward.observe(obs(attempts[i], attempts[i] >= 4));
  for (std::size_t i = 10; i-- > 0;) backward.observe(obs(attempts[i], attempts[i] >= 4));
  EXPECT_TRUE(forward == backward);
}

TEST(GeometricSuffStats, DecayScalesAndEventuallyDropsSupport) {
  GeometricSuffStats s;
  s.observe(obs(3));
  s.observe(obs(4, true));
  s.decay(0.5);
  EXPECT_EQ(s.uncensored, 0.5);
  EXPECT_EQ(s.attempts_sum, 1.5);
  EXPECT_EQ(s.censored, 0.5);
  EXPECT_TRUE(s.has_support());  // total exactly 1.0
  s.decay(0.25);
  EXPECT_FALSE(s.has_support());  // fully-decayed ghost: total 0.25 < 0.5
}

TEST(EstimateCensoredGeometric, MatchesHandComputedMle) {
  // U = 3 uncensored with attempts {1, 2, 4}; C = 2 censored at K = 4.
  GeometricSuffStats s;
  s.observe(obs(1));
  s.observe(obs(2));
  s.observe(obs(4));
  s.observe(obs(4, true));
  s.observe(obs(4, true));
  const LinkEstimate e = estimate_censored_geometric(s, 4);
  const double q = 3.0 / (7.0 + 2.0 * 3.0);  // U / (sum t + C(K-1))
  EXPECT_DOUBLE_EQ(e.loss, 1.0 - q);
  EXPECT_DOUBLE_EQ(e.samples, 5.0);
  // Wald stderr from the observed Fisher information.
  const double failures = (7.0 - 3.0) + 2.0 * 3.0;
  const double info = 3.0 / (q * q) + failures / ((1.0 - q) * (1.0 - q));
  EXPECT_DOUBLE_EQ(e.stderr_, 1.0 / std::sqrt(info));
}

TEST(EstimateCensoredGeometric, PerfectLinkHasZeroLoss) {
  GeometricSuffStats s;
  for (int i = 0; i < 10; ++i) s.observe(obs(1));
  const LinkEstimate e = estimate_censored_geometric(s, 4);
  EXPECT_DOUBLE_EQ(e.loss, 0.0);  // q = U / sum t = 1
  EXPECT_GT(e.stderr_, 0.0);
}

TEST(EstimateCensoredGeometric, AllCensoredReportsConservativeBoundary) {
  for (const std::uint32_t k : {2u, 4u, 16u}) {
    GeometricSuffStats s;
    for (int i = 0; i < 5; ++i) s.observe(obs(k, true));
    const LinkEstimate e = estimate_censored_geometric(s, k);
    EXPECT_DOUBLE_EQ(e.loss, 1.0 - 1.0 / static_cast<double>(k)) << "K=" << k;
    EXPECT_DOUBLE_EQ(e.stderr_, 1.0) << "K=" << k;
    EXPECT_DOUBLE_EQ(e.samples, 5.0) << "K=" << k;
  }
}

TEST(EstimateCensoredGeometric, ZeroObservationsAreTheCallersGuard) {
  // Empty stats take the all-censored branch (uncensored == 0); front-ends
  // must consult has_support() before reporting, which is false here.
  const GeometricSuffStats s;
  EXPECT_FALSE(s.has_support());
  const LinkEstimate e = estimate_censored_geometric(s, 4);
  EXPECT_DOUBLE_EQ(e.samples, 0.0);
  EXPECT_DOUBLE_EQ(e.stderr_, 1.0);
}

TEST(EstimateCensoredGeometric, PosteriorMeanMatchesConjugateUpdate) {
  // Beta(a, b) prior on q; geometric likelihood is conjugate:
  // posterior mean q = (U + a) / (sum t + C(K-1) + a + b).
  GeometricSuffStats s;
  s.observe(obs(2));
  s.observe(obs(4, true));
  const double a = 1.5, b = 0.5;
  const LinkEstimate e = estimate_censored_geometric(s, 4, a, b);
  const double q = (1.0 + a) / (2.0 + 3.0 + a + b);
  EXPECT_DOUBLE_EQ(e.loss, 1.0 - q);
  EXPECT_GT(e.stderr_, 0.0);
}

TEST(EstimateCensoredGeometric, PriorDominatesEmptyStatsAndWashesOut) {
  // No data: the posterior mean is the prior mean.  Lots of data: the prior
  // contribution becomes negligible relative to the MLE.
  const GeometricSuffStats empty;
  const LinkEstimate prior_only = estimate_censored_geometric(empty, 4, 4.0, 1.0);
  EXPECT_NEAR(prior_only.loss, 1.0 - 4.0 / 5.0, 1e-12);

  GeometricSuffStats heavy;
  for (int i = 0; i < 100000; ++i) heavy.observe(obs(2));  // q = 0.5 exactly
  const LinkEstimate with_prior = estimate_censored_geometric(heavy, 4, 4.0, 1.0);
  const LinkEstimate mle = estimate_censored_geometric(heavy, 4);
  EXPECT_NEAR(with_prior.loss, mle.loss, 1e-4);
}

TEST(EstimateCensoredGeometric, LossStaysInUnitInterval) {
  // Degenerate but representable stat blocks must never escape [0, 1].
  GeometricSuffStats s;
  s.observe(obs(1));
  s.decay(1e-6);  // tiny residual mass
  for (const double prior : {0.0, 1.0}) {
    const LinkEstimate e = estimate_censored_geometric(s, 2, prior, prior);
    EXPECT_GE(e.loss, 0.0);
    EXPECT_LE(e.loss, 1.0);
  }
}

}  // namespace
}  // namespace dophy::tomo
