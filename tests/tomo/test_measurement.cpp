#include "dophy/tomo/measurement.hpp"

#include <gtest/gtest.h>

namespace dophy::tomo {
namespace {

TEST(ModelSet, BootstrapUniform) {
  const ModelSet set = ModelSet::bootstrap(10, 4);
  EXPECT_EQ(set.version, 0);
  EXPECT_EQ(set.id_model.symbol_count(), 10u);
  EXPECT_EQ(set.retx_model.symbol_count(), 4u);
  for (std::size_t s = 0; s < 10; ++s) EXPECT_EQ(set.id_model.freq(s), 1u);
}

TEST(ModelSet, SerializeRoundTrip) {
  ModelSet set(7, dophy::coding::StaticModel(std::vector<std::uint64_t>{5, 2, 9}),
               dophy::coding::StaticModel(std::vector<std::uint64_t>{100, 20, 5, 1}));
  const auto bytes = set.serialize();
  EXPECT_EQ(bytes.size(), set.wire_size());
  const ModelSet back = ModelSet::deserialize(bytes);
  EXPECT_EQ(back.version, 7);
  EXPECT_EQ(back.id_model, set.id_model);
  EXPECT_EQ(back.retx_model, set.retx_model);
}

TEST(ModelSet, DeserializeRejectsTruncation) {
  ModelSet set = ModelSet::bootstrap(5, 4);
  auto bytes = set.serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW((void)ModelSet::deserialize(bytes), std::exception);
  EXPECT_THROW((void)ModelSet::deserialize({}), std::exception);
}

TEST(ModelSet, WireSizeSmall) {
  // A 100-node model set must stay dissemination-friendly (one or two
  // 802.15.4 frames).
  const ModelSet set = ModelSet::bootstrap(100, 4);
  EXPECT_LT(set.wire_size(), 250u);
}

TEST(ModelStore, InstallAndFind) {
  ModelStore store;
  store.install(ModelSet::bootstrap(5, 4));
  EXPECT_EQ(store.current_version(), 0);
  EXPECT_NE(store.find(0), nullptr);
  EXPECT_EQ(store.find(3), nullptr);
}

TEST(ModelStore, CurrentVersionTracksLatestInstall) {
  ModelStore store;
  store.install(ModelSet::bootstrap(5, 4));
  ModelSet v1(1, dophy::coding::StaticModel(5), dophy::coding::StaticModel(4));
  store.install(v1);
  EXPECT_EQ(store.current_version(), 1);
  EXPECT_NE(store.find(0), nullptr);  // history retained
}

TEST(ModelStore, EvictsOldestBeyondCapacity) {
  ModelStore store(3);
  for (std::uint8_t v = 0; v < 5; ++v) {
    store.install(ModelSet(v, dophy::coding::StaticModel(5), dophy::coding::StaticModel(4)));
  }
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.find(0), nullptr);
  EXPECT_EQ(store.find(1), nullptr);
  EXPECT_NE(store.find(2), nullptr);
  EXPECT_NE(store.find(4), nullptr);
  EXPECT_EQ(store.current_version(), 4);
}

TEST(ModelStore, VersionWraparoundPrefersNewest) {
  ModelStore store(4);
  // Two installs with the same version tag (e.g. after uint8 wrap): find
  // must return the newer one.
  ModelSet old_v3(3, dophy::coding::StaticModel(5), dophy::coding::StaticModel(4));
  ModelSet new_v3(3, dophy::coding::StaticModel(std::vector<std::uint64_t>{9, 1, 1, 1, 1}),
                  dophy::coding::StaticModel(4));
  store.install(old_v3);
  store.install(new_v3);
  const ModelSet* found = store.find(3);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->id_model, new_v3.id_model);
}

TEST(ModelStore, EmptyStoreThrows) {
  ModelStore store;
  EXPECT_THROW((void)store.current_version(), std::logic_error);
  EXPECT_THROW(ModelStore(0), std::invalid_argument);
}

}  // namespace
}  // namespace dophy::tomo
