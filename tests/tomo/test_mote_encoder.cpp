// Mote-constrained encoder: bit-exact equivalence with the host coder, RAM
// bounds, and graceful budget behavior.

#include "dophy/mote/mote_encoder.hpp"

#include <gtest/gtest.h>

#include "dophy/coding/arith.hpp"
#include "dophy/coding/freq_model.hpp"
#include "dophy/common/bitio.hpp"
#include "dophy/common/rng.hpp"

namespace dophy::mote {
namespace {

using dophy::coding::RangeDecoder;
using dophy::coding::RangeEncoder;
using dophy::coding::StaticModel;

MoteModel load_mote(const StaticModel& host) {
  const auto wire = host.serialize();
  MoteModel model{};
  EXPECT_EQ(model.load(wire.data(), wire.size()), Status::kOk);
  return model;
}

TEST(MoteModel, LoadMatchesHostCumulatives) {
  const StaticModel host(std::vector<std::uint64_t>{500, 120, 33, 7, 0, 90});
  const MoteModel mote = load_mote(host);
  ASSERT_EQ(mote.count, host.symbol_count());
  EXPECT_EQ(mote.total(), host.total());
  for (std::size_t s = 0; s < host.symbol_count(); ++s) {
    EXPECT_EQ(mote.cum[s], host.cum(s)) << "symbol " << s;
  }
}

TEST(MoteModel, LoadRejectsGarbage) {
  MoteModel model{};
  EXPECT_EQ(model.load(nullptr, 0), Status::kBadModel);
  const std::uint8_t zero_count[] = {0x00};
  EXPECT_EQ(model.load(zero_count, 1), Status::kBadModel);
  const std::uint8_t truncated[] = {0x03, 0x05};  // promises 3 freqs, has 1
  EXPECT_EQ(model.load(truncated, 2), Status::kBadModel);
}

TEST(MoteEncoder, ByteExactWithHostEncoder) {
  dophy::common::Rng rng(31);
  const StaticModel ids(std::vector<std::uint64_t>{40, 10, 30, 5, 5, 20, 1, 9});
  const StaticModel retx(std::vector<std::uint64_t>{85, 10, 3, 2});
  const MoteModel mote_ids = load_mote(ids);
  const MoteModel mote_retx = load_mote(retx);

  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t hops = 1 + rng.next_below(8);

    MotePacketState state{};
    mote_on_origin(state, 3);
    std::vector<std::uint8_t> host_bytes;
    RangeEncoder host(host_bytes);

    for (std::size_t h = 0; h < hops; ++h) {
      const auto id = static_cast<std::uint16_t>(rng.next_below(8));
      const auto r = static_cast<std::uint16_t>(rng.next_below(4));
      ASSERT_EQ(mote_append_hop(state, mote_ids, mote_retx, id, r), Status::kOk);
      host.encode(ids, id);
      host.encode(retx, r);
    }
    ASSERT_EQ(mote_finish(state), Status::kOk);
    host.finish();

    ASSERT_EQ(state.byte_len, host_bytes.size()) << "trial " << trial;
    for (std::size_t b = 0; b < host_bytes.size(); ++b) {
      ASSERT_EQ(state.stream[b], host_bytes[b]) << "trial " << trial << " byte " << b;
    }
  }
}

TEST(MoteEncoder, StreamDecodableByStandardSinkDecoder) {
  dophy::common::Rng rng(32);
  const StaticModel retx(std::vector<std::uint64_t>{70, 20, 7, 3});
  const MoteModel mote_retx = load_mote(retx);

  MotePacketState state{};
  mote_on_origin(state, 1);
  std::vector<std::uint16_t> symbols;
  for (int i = 0; i < 20; ++i) {
    const auto s = static_cast<std::uint16_t>(rng.next_below(4));
    symbols.push_back(s);
    ASSERT_EQ(mote_encode_symbol(state, mote_retx, s), Status::kOk);
  }
  ASSERT_EQ(mote_finish(state), Status::kOk);

  const std::vector<std::uint8_t> bytes(state.stream, state.stream + state.byte_len);
  RangeDecoder dec(bytes);
  for (const auto s : symbols) EXPECT_EQ(dec.decode(retx), s);
}

TEST(MoteEncoder, BudgetExhaustionPoisonsState) {
  // A nearly uniform model costs ~3 bits/symbol; kMaxStreamBytes * 8 bits
  // fill after ~100 symbols, and the state must flag truncation cleanly.
  const StaticModel model(std::vector<std::uint64_t>{1, 1, 1, 1, 1, 1, 1, 1});
  const MoteModel mote = load_mote(model);
  MotePacketState state{};
  mote_on_origin(state, 0);
  dophy::common::Rng rng(33);
  Status status = Status::kOk;
  int encoded = 0;
  for (int i = 0; i < 400 && status == Status::kOk; ++i) {
    status = mote_encode_symbol(state, mote, static_cast<std::uint16_t>(rng.next_below(8)));
    if (status == Status::kOk) ++encoded;
  }
  EXPECT_EQ(status, Status::kBudget);
  EXPECT_TRUE(state.truncated);
  EXPECT_GT(encoded, 80);
  // Once poisoned, everything is refused.
  EXPECT_EQ(mote_encode_symbol(state, mote, 0), Status::kTruncated);
  EXPECT_EQ(mote_finish(state), Status::kTruncated);
}

TEST(MoteEncoder, BadSymbolRejectedWithoutStateChange) {
  const StaticModel model(std::vector<std::uint64_t>{3, 1});
  const MoteModel mote = load_mote(model);
  MotePacketState state{};
  mote_on_origin(state, 0);
  ASSERT_EQ(mote_encode_symbol(state, mote, 0), Status::kOk);
  const std::uint16_t bytes_before = state.byte_len;
  EXPECT_EQ(mote_encode_symbol(state, mote, 7), Status::kBadSymbol);
  EXPECT_EQ(state.byte_len, bytes_before);
}

TEST(MoteModel, LoadFuzzNeverCrashes) {
  dophy::common::Rng rng(34);
  MoteModel model{};
  int loaded_ok = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    std::uint8_t bytes[32];
    const std::size_t size = rng.next_below(sizeof bytes);
    for (std::size_t i = 0; i < size; ++i) {
      bytes[i] = static_cast<std::uint8_t>(rng.next_below(256));
    }
    if (model.load(bytes, size) == Status::kOk) {
      ++loaded_ok;
      // Whatever loaded must be internally consistent.
      EXPECT_GE(model.count, 1u);
      EXPECT_LE(model.count, kMaxModelSymbols);
      for (std::uint16_t s = 0; s < model.count; ++s) {
        EXPECT_LT(model.cum[s], model.cum[s + 1]);
      }
    }
  }
  // Random bytes occasionally form a valid model; most must not.
  EXPECT_LT(loaded_ok, 3000);
}

TEST(MoteEncoder, RamBudgetIsMoteSized) {
  // Packet state rides in the packet buffer; model tables are the dominant
  // static cost.  For a 100-node deployment: id model + retx model must fit
  // comfortably in TelosB-class RAM next to the OS and the network stack.
  EXPECT_LE(sizeof(MotePacketState), 64u);
  EXPECT_LE(sizeof(MoteModel), (kMaxModelSymbols + 1) * 4 + 8);
  // Two models (256-symbol ids + counts, upper bounds): ~2 KB of the ~10 KB
  // a TelosB offers — comfortably deployable.
  EXPECT_LE(2 * sizeof(MoteModel), 4200u);
}

}  // namespace
}  // namespace dophy::mote
