#include "dophy/tomo/symbol_mapper.hpp"

#include <gtest/gtest.h>

namespace dophy::tomo {
namespace {

TEST(SymbolMapper, ExactSymbolsBelowThreshold) {
  SymbolMapper m(4);
  EXPECT_EQ(m.to_symbol(1), 0u);
  EXPECT_EQ(m.to_symbol(2), 1u);
  EXPECT_EQ(m.to_symbol(3), 2u);
  EXPECT_FALSE(m.is_censored(0));
  EXPECT_FALSE(m.is_censored(2));
}

TEST(SymbolMapper, CensoredAtAndAboveThreshold) {
  SymbolMapper m(4);
  EXPECT_EQ(m.to_symbol(4), 3u);
  EXPECT_EQ(m.to_symbol(5), 3u);
  EXPECT_EQ(m.to_symbol(100), 3u);
  EXPECT_TRUE(m.is_censored(3));
}

TEST(SymbolMapper, AlphabetSizeEqualsThreshold) {
  for (std::uint32_t k = 2; k <= 16; ++k) {
    SymbolMapper m(k);
    EXPECT_EQ(m.alphabet_size(), k);
  }
}

TEST(SymbolMapper, ToAttemptsInvertsUncensored) {
  SymbolMapper m(6);
  for (std::uint32_t attempts = 1; attempts < 6; ++attempts) {
    EXPECT_EQ(m.to_attempts(m.to_symbol(attempts)), attempts);
  }
  // Censored symbol returns the lower bound K.
  EXPECT_EQ(m.to_attempts(5), 6u);
}

TEST(SymbolMapper, MinimalThreshold) {
  SymbolMapper m(2);  // symbols: {exactly 1, >= 2}
  EXPECT_EQ(m.to_symbol(1), 0u);
  EXPECT_EQ(m.to_symbol(2), 1u);
  EXPECT_TRUE(m.is_censored(1));
}

TEST(SymbolMapper, InvalidInputs) {
  EXPECT_THROW(SymbolMapper(0), std::invalid_argument);
  EXPECT_THROW(SymbolMapper(1), std::invalid_argument);
  SymbolMapper m(4);
  EXPECT_THROW((void)m.to_symbol(0), std::invalid_argument);
  EXPECT_THROW((void)m.is_censored(4), std::out_of_range);
  EXPECT_THROW((void)m.to_attempts(4), std::out_of_range);
}

}  // namespace
}  // namespace dophy::tomo
