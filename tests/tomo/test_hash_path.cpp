// Hash-based path-recovery mode: instrumentation + graph-search decoder.

#include <gtest/gtest.h>

#include "dophy/common/rng.hpp"
#include "dophy/net/topology.hpp"
#include "dophy/tomo/hash_path.hpp"

namespace dophy::tomo {
namespace {

using dophy::net::kSinkId;
using dophy::net::NodeId;
using dophy::net::Packet;
using dophy::net::Topology;
using dophy::net::TopologyConfig;

Topology test_topology(std::uint64_t seed = 1, std::size_t nodes = 40) {
  TopologyConfig cfg;
  cfg.node_count = nodes;
  cfg.field_size = 120.0;
  cfg.comm_range = 40.0;
  dophy::common::Rng rng(seed);
  return Topology::generate(cfg, rng);
}

/// Walks a real neighbor-graph path from `origin` toward the sink (greedy
/// BFS-descent) and pushes it through the instrumentation.
std::pair<Packet, std::vector<NodeId>> make_packet(HashPathInstrumentation& instr,
                                                   const Topology& topo, NodeId origin,
                                                   dophy::common::Rng& rng) {
  const auto hops_to_sink = topo.hops_to_sink();
  Packet packet;
  packet.origin = origin;
  instr.on_origin(packet, origin, 0);

  std::vector<NodeId> path;
  NodeId current = origin;
  while (current != kSinkId) {
    // Move to a neighbor strictly closer to the sink (always exists).
    std::vector<NodeId> closer;
    for (const NodeId n : topo.neighbors(current)) {
      if (hops_to_sink[n] < hops_to_sink[current]) closer.push_back(n);
    }
    const NodeId next = closer[rng.next_below(closer.size())];
    const auto attempts = 1 + static_cast<std::uint32_t>(rng.next_below(5));
    ++packet.hop_count;  // the simulator increments before instrumenting
    instr.on_hop_received(packet, next, current, attempts, 0);
    path.push_back(next);
    current = next;
  }
  return {std::move(packet), std::move(path)};
}

TEST(HashPathStep, OrderSensitive) {
  const auto h1 = hash_path_step(hash_path_step(0, 3), 7);
  const auto h2 = hash_path_step(hash_path_step(0, 7), 3);
  EXPECT_NE(h1, h2);
  EXPECT_LE(h1, kPathHashMask);
}

TEST(HashPath, RoundTripRecoversExactPaths) {
  const auto topo = test_topology(2);
  const SymbolMapper mapper(4);
  HashPathInstrumentation instr(topo.node_count(), mapper);
  HashPathDecoder decoder(instr.store(kSinkId), mapper, topo);
  dophy::common::Rng rng(3);

  int recovered = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const NodeId origin = static_cast<NodeId>(1 + rng.next_below(topo.node_count() - 1));
    auto [packet, true_path] = make_packet(instr, topo, origin, rng);
    const auto decoded = decoder.decode(packet);
    ASSERT_TRUE(decoded.has_value()) << "trial " << trial;
    ASSERT_EQ(decoded->hops.size(), true_path.size());
    bool exact = true;
    for (std::size_t i = 0; i < true_path.size(); ++i) {
      exact &= decoded->hops[i].receiver == true_path[i];
    }
    recovered += exact;
  }
  // 24-bit hashes may very occasionally collide onto a wrong path; nearly
  // all must recover exactly.
  EXPECT_GE(recovered, 297);
  EXPECT_EQ(decoder.stats().search_failures, 0u);
}

TEST(HashPath, CountsSurviveWithCensoring) {
  const auto topo = test_topology(4);
  const SymbolMapper mapper(4);
  HashPathInstrumentation instr(topo.node_count(), mapper);
  HashPathDecoder decoder(instr.store(kSinkId), mapper, topo);
  dophy::common::Rng rng(5);

  for (int trial = 0; trial < 100; ++trial) {
    const NodeId origin = static_cast<NodeId>(1 + rng.next_below(topo.node_count() - 1));
    // Reimplement the walk but remember attempts.
    const auto hops_to_sink = topo.hops_to_sink();
    Packet packet;
    packet.origin = origin;
    instr.on_origin(packet, origin, 0);
    std::vector<std::uint32_t> attempts_list;
    NodeId current = origin;
    while (current != kSinkId) {
      std::vector<NodeId> closer;
      for (const NodeId n : topo.neighbors(current)) {
        if (hops_to_sink[n] < hops_to_sink[current]) closer.push_back(n);
      }
      const NodeId next = closer[rng.next_below(closer.size())];
      const auto attempts = 1 + static_cast<std::uint32_t>(rng.next_below(8));
      attempts_list.push_back(attempts);
      ++packet.hop_count;
      instr.on_hop_received(packet, next, current, attempts, 0);
      current = next;
    }
    const auto decoded = decoder.decode(packet);
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(decoded->hops.size(), attempts_list.size());
    for (std::size_t i = 0; i < attempts_list.size(); ++i) {
      EXPECT_EQ(decoded->hops[i].observation.attempts, std::min(attempts_list[i], 4u));
      EXPECT_EQ(decoded->hops[i].observation.censored, attempts_list[i] >= 4);
    }
  }
}

TEST(HashPath, FixedOverheadIndependentOfIds) {
  // The finalized blob is hash (3B) + count stream: for an L-hop path with
  // mostly 1-attempt hops the whole field stays small and does NOT grow with
  // the id alphabet.
  const auto topo = test_topology(6, 40);
  const SymbolMapper mapper(4);
  HashPathInstrumentation instr(topo.node_count(), mapper);
  dophy::common::Rng rng(7);
  const auto [packet, path] = make_packet(instr, topo, static_cast<NodeId>(39), rng);
  EXPECT_GE(packet.blob.logical_bits, kPathHashBits);
  EXPECT_LT(packet.blob.logical_bits, kPathHashBits + 24u + 8u * path.size());
}

TEST(HashPath, UnknownVersionFails) {
  const auto topo = test_topology(8);
  const SymbolMapper mapper(4);
  HashPathInstrumentation instr(topo.node_count(), mapper);
  HashPathDecoder decoder(instr.store(kSinkId), mapper, topo);
  dophy::common::Rng rng(9);
  auto [packet, path] = make_packet(instr, topo, static_cast<NodeId>(5), rng);
  packet.blob.model_version = 77;
  EXPECT_FALSE(decoder.decode(packet).has_value());
  EXPECT_EQ(decoder.stats().decode_failures, 1u);
}

TEST(HashPath, CorruptHashFailsSearch) {
  const auto topo = test_topology(10);
  const SymbolMapper mapper(4);
  HashPathInstrumentation instr(topo.node_count(), mapper);
  HashPathDecoder decoder(instr.store(kSinkId), mapper, topo);
  dophy::common::Rng rng(11);
  auto [packet, path] = make_packet(instr, topo, static_cast<NodeId>(7), rng);
  packet.blob.bytes[0] ^= 0xFF;  // clobber the hash
  const auto decoded = decoder.decode(packet);
  // Either no path matches (search failure) or, astronomically rarely, a
  // colliding path does; both are handled.
  if (!decoded) {
    EXPECT_GE(decoder.stats().search_failures, 1u);
  }
}

TEST(HashPath, SearchBudgetBoundsWork) {
  const auto topo = test_topology(12, 60);
  const SymbolMapper mapper(4);
  HashPathInstrumentation instr(topo.node_count(), mapper);
  // A pathological 1-candidate budget must fail cleanly, never hang.
  HashPathDecoder decoder(instr.store(kSinkId), mapper, topo, /*search_budget=*/1);
  dophy::common::Rng rng(13);
  auto [packet, path] = make_packet(instr, topo, static_cast<NodeId>(30), rng);
  if (path.size() > 1) {
    EXPECT_FALSE(decoder.decode(packet).has_value());
    EXPECT_EQ(decoder.stats().search_failures, 1u);
  }
}

TEST(HashPath, ZeroHopPacketRejected) {
  const auto topo = test_topology(14);
  const SymbolMapper mapper(4);
  HashPathInstrumentation instr(topo.node_count(), mapper);
  HashPathDecoder decoder(instr.store(kSinkId), mapper, topo);
  Packet packet;
  packet.origin = 3;
  packet.hop_count = 0;
  instr.on_origin(packet, 3, 0);
  EXPECT_FALSE(decoder.decode(packet).has_value());
}

}  // namespace
}  // namespace dophy::tomo
