// End-to-end tests of the in-packet encoder + sink decoder pair, without the
// network: hops are applied manually so every path/count combination can be
// exercised deterministically.

#include <gtest/gtest.h>

#include "dophy/common/rng.hpp"
#include "dophy/tomo/dophy_decoder.hpp"
#include "dophy/tomo/dophy_encoder.hpp"

namespace dophy::tomo {
namespace {

using dophy::net::kSinkId;
using dophy::net::NodeId;
using dophy::net::Packet;

struct Hop {
  NodeId receiver;
  std::uint32_t attempts;
};

/// Applies a hop sequence through the instrumentation as the simulator would.
Packet make_packet(DophyInstrumentation& instr, NodeId origin, const std::vector<Hop>& hops) {
  Packet packet;
  packet.origin = origin;
  packet.seq = 1;
  instr.on_origin(packet, origin, 0);
  NodeId sender = origin;
  for (const Hop& hop : hops) {
    instr.on_hop_received(packet, hop.receiver, sender, hop.attempts, 0);
    sender = hop.receiver;
  }
  return packet;
}

TEST(EncoderDecoder, SingleHopRoundTrip) {
  const SymbolMapper mapper(4);
  DophyInstrumentation instr(10, mapper);
  DophyDecoder decoder(instr.store(kSinkId), mapper);

  const Packet packet = make_packet(instr, 3, {{kSinkId, 2}});
  const auto decoded = decoder.decode(packet);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->origin, 3);
  ASSERT_EQ(decoded->hops.size(), 1u);
  EXPECT_EQ(decoded->hops[0].sender, 3);
  EXPECT_EQ(decoded->hops[0].receiver, kSinkId);
  EXPECT_EQ(decoded->hops[0].observation.attempts, 2u);
  EXPECT_FALSE(decoded->hops[0].observation.censored);
}

TEST(EncoderDecoder, MultiHopPathReconstruction) {
  const SymbolMapper mapper(4);
  DophyInstrumentation instr(20, mapper);
  DophyDecoder decoder(instr.store(kSinkId), mapper);

  const std::vector<Hop> hops{{7, 1}, {12, 3}, {4, 1}, {kSinkId, 2}};
  const Packet packet = make_packet(instr, 15, hops);
  const auto decoded = decoder.decode(packet);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->hops.size(), hops.size());
  NodeId sender = 15;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    EXPECT_EQ(decoded->hops[i].sender, sender);
    EXPECT_EQ(decoded->hops[i].receiver, hops[i].receiver);
    EXPECT_EQ(decoded->hops[i].observation.attempts, hops[i].attempts);
    sender = hops[i].receiver;
  }
}

TEST(EncoderDecoder, CensoredCountsSurviveWithLowerBound) {
  const SymbolMapper mapper(4);
  DophyInstrumentation instr(10, mapper);
  DophyDecoder decoder(instr.store(kSinkId), mapper);

  const Packet packet = make_packet(instr, 2, {{5, 9}, {kSinkId, 4}});
  const auto decoded = decoder.decode(packet);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->hops[0].observation.censored);
  EXPECT_EQ(decoded->hops[0].observation.attempts, 4u);  // lower bound K
  EXPECT_TRUE(decoded->hops[1].observation.censored);
}

TEST(EncoderDecoder, RandomizedPathsSweep) {
  dophy::common::Rng rng(42);
  const SymbolMapper mapper(4);
  DophyInstrumentation instr(50, mapper);
  DophyDecoder decoder(instr.store(kSinkId), mapper);

  for (int trial = 0; trial < 500; ++trial) {
    const NodeId origin = 1 + static_cast<NodeId>(rng.next_below(49));
    std::vector<Hop> hops;
    const std::size_t len = 1 + rng.next_below(10);
    for (std::size_t i = 0; i + 1 < len; ++i) {
      hops.push_back({static_cast<NodeId>(1 + rng.next_below(49)),
                      1 + static_cast<std::uint32_t>(rng.next_below(8))});
    }
    hops.push_back({kSinkId, 1 + static_cast<std::uint32_t>(rng.next_below(8))});

    const Packet packet = make_packet(instr, origin, hops);
    const auto decoded = decoder.decode(packet);
    ASSERT_TRUE(decoded.has_value()) << "trial " << trial;
    ASSERT_EQ(decoded->hops.size(), hops.size());
    for (std::size_t i = 0; i < hops.size(); ++i) {
      EXPECT_EQ(decoded->hops[i].receiver, hops[i].receiver);
      const auto expect_attempts = std::min(hops[i].attempts, 4u);
      EXPECT_EQ(decoded->hops[i].observation.attempts, expect_attempts);
      EXPECT_EQ(decoded->hops[i].observation.censored, hops[i].attempts >= 4);
    }
  }
  EXPECT_EQ(decoder.stats().decode_failures, 0u);
  EXPECT_EQ(decoder.stats().packets_decoded, 500u);
}

TEST(EncoderDecoder, CompactEncoding) {
  // With a learned skewed model, 6 hops of (id, count=1) must cost far less
  // than the naive 6 * (6-bit id + 3-bit count) = 54 bits.
  const SymbolMapper mapper(4);
  DophyInstrumentation instr(50, mapper);

  // Teach a strongly skewed model: relay set {1..5}, counts mostly 1.
  std::vector<std::uint64_t> id_counts(50, 1);
  for (NodeId id = 1; id <= 5; ++id) id_counts[id] = 4000;
  id_counts[kSinkId] = 4000;
  ModelSet learned(1, dophy::coding::StaticModel(id_counts),
                   dophy::coding::StaticModel(std::vector<std::uint64_t>{900, 70, 20, 10}));
  for (NodeId n = 0; n < 50; ++n) instr.install(n, learned);

  const Packet packet =
      make_packet(instr, 9, {{1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}, {kSinkId, 1}});
  // Byte-aligned range coder: ~17 bits of entropy lands in a handful of
  // renorm bytes plus the 2-byte termination.
  EXPECT_LT(packet.blob.logical_bits, 64u);

  DophyDecoder decoder(instr.store(kSinkId), mapper);
  const auto decoded = decoder.decode(packet);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->hops.size(), 6u);
}

TEST(EncoderDecoder, ModelVersionStampedAtOrigin) {
  const SymbolMapper mapper(4);
  DophyInstrumentation instr(10, mapper);
  // Install v1 everywhere.
  ModelSet v1(1, dophy::coding::StaticModel(10), dophy::coding::StaticModel(4));
  for (NodeId n = 0; n < 10; ++n) instr.install(n, v1);

  const Packet packet = make_packet(instr, 2, {{kSinkId, 1}});
  EXPECT_EQ(packet.blob.model_version, 1);
  DophyDecoder decoder(instr.store(kSinkId), mapper);
  EXPECT_TRUE(decoder.decode(packet).has_value());
}

TEST(EncoderDecoder, MixedVersionsInFlight) {
  // Old-version packets decode with the old model even after an update.
  const SymbolMapper mapper(4);
  DophyInstrumentation instr(10, mapper);
  DophyDecoder decoder(instr.store(kSinkId), mapper);

  const Packet old_packet = make_packet(instr, 2, {{5, 2}, {kSinkId, 1}});

  ModelSet v1(1, dophy::coding::StaticModel(std::vector<std::uint64_t>{50, 9, 9, 9, 9, 1, 1, 1, 1, 1}),
              dophy::coding::StaticModel(std::vector<std::uint64_t>{20, 4, 2, 1}));
  for (NodeId n = 0; n < 10; ++n) instr.install(n, v1);

  const Packet new_packet = make_packet(instr, 2, {{5, 2}, {kSinkId, 1}});
  EXPECT_EQ(old_packet.blob.model_version, 0);
  EXPECT_EQ(new_packet.blob.model_version, 1);

  const auto old_decoded = decoder.decode(old_packet);
  const auto new_decoded = decoder.decode(new_packet);
  ASSERT_TRUE(old_decoded.has_value());
  ASSERT_TRUE(new_decoded.has_value());
  EXPECT_EQ(old_decoded->hops[0].observation.attempts, 2u);
  EXPECT_EQ(new_decoded->hops[0].observation.attempts, 2u);
}

TEST(EncoderDecoder, UnknownVersionFailsCleanly) {
  const SymbolMapper mapper(4);
  DophyInstrumentation instr(10, mapper);
  DophyDecoder decoder(instr.store(kSinkId), mapper);

  Packet packet = make_packet(instr, 2, {{kSinkId, 1}});
  packet.blob.model_version = 99;
  EXPECT_FALSE(decoder.decode(packet).has_value());
  EXPECT_EQ(decoder.stats().decode_failures, 1u);
}

TEST(EncoderDecoder, UnfinalizedBlobRejected) {
  const SymbolMapper mapper(4);
  DophyInstrumentation instr(10, mapper);
  DophyDecoder decoder(instr.store(kSinkId), mapper);

  // Path that never reaches the sink: state trailer still present.
  const Packet packet = make_packet(instr, 2, {{5, 1}, {7, 2}});
  EXPECT_NE(packet.blob.state_size, 0);
  EXPECT_FALSE(decoder.decode(packet).has_value());
}

TEST(EncoderDecoder, CorruptStreamFailsCleanly) {
  const SymbolMapper mapper(4);
  DophyInstrumentation instr(10, mapper);
  DophyDecoder decoder(instr.store(kSinkId), mapper, /*max_hops=*/8);

  Packet packet = make_packet(instr, 2, {{5, 1}, {kSinkId, 2}});
  // Flip bits: decoding must terminate (failure or bounded-length path).
  for (auto& b : packet.blob.bytes) b = static_cast<std::uint8_t>(~b);
  const auto decoded = decoder.decode(packet);
  if (decoded.has_value()) {
    EXPECT_LE(decoded->hops.size(), 8u);
  }
}

TEST(EncoderDecoder, EncoderStatsAccumulate) {
  const SymbolMapper mapper(4);
  DophyInstrumentation instr(10, mapper);
  (void)make_packet(instr, 1, {{2, 1}, {kSinkId, 1}});
  (void)make_packet(instr, 3, {{kSinkId, 2}});
  EXPECT_EQ(instr.stats().packets_originated, 2u);
  EXPECT_EQ(instr.stats().hops_encoded, 3u);
  EXPECT_GT(instr.stats().total_bits_appended, 0u);
  EXPECT_GT(instr.stats().mean_bits_per_hop(), 0.0);
}

TEST(EncoderDecoder, PayloadBudgetTruncatesLongPaths) {
  const SymbolMapper mapper(4);
  // Budget fits the 11-byte header + a few hops of stream.
  DophyInstrumentation instr(30, mapper, /*max_wire_bytes=*/20);
  DophyDecoder decoder(instr.store(kSinkId), mapper);

  // A short path fits and decodes.
  const Packet short_packet = make_packet(instr, 5, {{3, 1}, {kSinkId, 1}});
  EXPECT_FALSE(short_packet.blob.truncated);
  EXPECT_TRUE(decoder.decode(short_packet).has_value());

  // A very long path exceeds the budget, gets flagged, and is rejected at
  // the sink instead of decoding into a wrong path.
  std::vector<Hop> long_hops;
  for (NodeId n = 1; n <= 25; ++n) long_hops.push_back({n, 8});
  long_hops.push_back({kSinkId, 8});
  const Packet long_packet = make_packet(instr, 26, long_hops);
  EXPECT_TRUE(long_packet.blob.truncated);
  EXPECT_FALSE(decoder.decode(long_packet).has_value());
  EXPECT_GT(instr.stats().truncated_hops, 0u);
}

TEST(EncoderDecoder, TruncationStopsAllLaterAppends) {
  const SymbolMapper mapper(4);
  DophyInstrumentation instr(30, mapper, /*max_wire_bytes=*/16);
  Packet packet;
  packet.origin = 9;
  instr.on_origin(packet, 9, 0);
  // First hops fit; once the flag trips, the stream must stop growing.
  std::uint32_t frozen_bits = 0;
  for (NodeId n = 1; n <= 12; ++n) {
    instr.on_hop_received(packet, n, static_cast<NodeId>(n - 1), 2, 0);
    if (packet.blob.truncated && frozen_bits == 0) {
      frozen_bits = packet.blob.logical_bits;
    }
    if (frozen_bits > 0) {
      EXPECT_EQ(packet.blob.logical_bits, frozen_bits);
    }
  }
  EXPECT_TRUE(packet.blob.truncated);
}

TEST(EncoderDecoder, UnlimitedBudgetNeverTruncates) {
  const SymbolMapper mapper(4);
  DophyInstrumentation instr(30, mapper);
  std::vector<Hop> hops;
  for (NodeId n = 1; n <= 25; ++n) hops.push_back({n, 8});
  hops.push_back({kSinkId, 1});
  const Packet packet = make_packet(instr, 26, hops);
  EXPECT_FALSE(packet.blob.truncated);
  EXPECT_EQ(instr.stats().truncated_hops, 0u);
}

TEST(EncoderDecoder, DecoderFuzzNeverCrashes) {
  // Random byte soup with random headers must either decode into a bounded
  // path or fail cleanly — never crash, hang, or throw out of decode().
  dophy::common::Rng rng(1234);
  const SymbolMapper mapper(4);
  DophyInstrumentation instr(30, mapper);
  DophyDecoder decoder(instr.store(kSinkId), mapper, /*max_hops=*/16);

  std::uint64_t decoded_ok = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    Packet packet;
    packet.origin = static_cast<NodeId>(rng.next_below(30));
    packet.blob.model_version = static_cast<std::uint8_t>(rng.next_below(3));
    packet.blob.state_size = rng.bernoulli(0.1) ? 8 : 0;
    const std::size_t len = rng.next_below(24);
    packet.blob.bytes.resize(len);
    for (auto& b : packet.blob.bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
    packet.blob.logical_bits =
        static_cast<std::uint32_t>(rng.next_below(8 * len + 16));
    const auto decoded = decoder.decode(packet);
    if (decoded) {
      ++decoded_ok;
      EXPECT_LE(decoded->hops.size(), 16u);
      EXPECT_EQ(decoded->hops.back().receiver, kSinkId);
    }
  }
  // Some random streams will happen to decode; most must not.
  EXPECT_LT(decoded_ok, 1500u);
}

TEST(EncoderDecoder, UninstrumentedBlobCostsNothing) {
  Packet packet;
  EXPECT_EQ(packet.blob.wire_bytes(), 0u);
}

TEST(EncoderDecoder, WireBytesAccounting) {
  const SymbolMapper mapper(4);
  DophyInstrumentation instr(10, mapper);
  Packet packet;
  packet.origin = 1;
  instr.on_origin(packet, 1, 0);
  const auto origin_bytes = packet.blob.wire_bytes();
  EXPECT_GE(origin_bytes, 11u);  // 8B coder state + version + byte count
  instr.on_hop_received(packet, 5, 1, 1, 0);
  EXPECT_GE(packet.blob.wire_bytes(), origin_bytes);
}

}  // namespace
}  // namespace dophy::tomo
