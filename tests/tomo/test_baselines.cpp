// Baseline correctness tests: on their home turf (static tree, no path
// churn, known per-packet outcomes) the traditional estimators must recover
// packet-level link success well — their failure in the paper's setting
// comes from the setting, not from a broken implementation.

#include <gtest/gtest.h>

#include <cmath>

#include "dophy/common/rng.hpp"
#include "dophy/tomo/baseline/delivery_ratio.hpp"
#include "dophy/tomo/baseline/em_tomography.hpp"
#include "dophy/tomo/baseline/inputs.hpp"
#include "dophy/tomo/baseline/nnls_tomography.hpp"

namespace dophy::tomo::baseline {
namespace {

using dophy::net::kInvalidNode;
using dophy::net::kSinkId;
using dophy::net::LinkKey;
using dophy::net::NodeId;

TEST(Inputs, PacketSuccessToAttemptLoss) {
  // m=1: identity on failure probability.
  EXPECT_DOUBLE_EQ(packet_success_to_attempt_loss(0.7, 1), 0.3);
  // m=8 and perfect delivery: zero loss.
  EXPECT_DOUBLE_EQ(packet_success_to_attempt_loss(1.0, 8), 0.0);
  // Exact inversion: p=0.5 with m=3 -> S = 1 - 0.125 = 0.875.
  EXPECT_NEAR(packet_success_to_attempt_loss(0.875, 3), 0.5, 1e-12);
  // Clamped inputs.
  EXPECT_DOUBLE_EQ(packet_success_to_attempt_loss(1.2, 4), 0.0);
  EXPECT_DOUBLE_EQ(packet_success_to_attempt_loss(-0.2, 1), 1.0);
}

TEST(Inputs, ChaseParentsWellFormedChain) {
  // 0 <- 1 <- 2 <- 3 (parent_of[i] points downstream).
  std::vector<NodeId> parent_of{kInvalidNode, 0, 1, 2};
  const auto path = chase_parents(parent_of, 3);
  EXPECT_EQ(path, (std::vector<NodeId>{2, 1, 0}));
  EXPECT_EQ(chase_parents(parent_of, 1), (std::vector<NodeId>{0}));
}

TEST(Inputs, ChaseParentsBrokenChain) {
  std::vector<NodeId> parent_of{kInvalidNode, 0, kInvalidNode, 2};
  EXPECT_TRUE(chase_parents(parent_of, 3).empty());
}

TEST(Inputs, ChaseParentsLoopDetected) {
  std::vector<NodeId> parent_of{kInvalidNode, 2, 1, 1};
  EXPECT_TRUE(chase_parents(parent_of, 3).empty());
}

// --- Delivery-ratio tomography ---------------------------------------------

TEST(DeliveryRatio, ExactOnStaticChainWithoutArq) {
  // Chain 3 -> 2 -> 1 -> 0, packet-level link success 0.9 / 0.8 / 0.7,
  // max_attempts=1 so packet loss == attempt loss.
  DeliveryRatioConfig cfg;
  cfg.max_attempts = 1;
  std::vector<PathSample> samples;
  const double s1 = 0.7, s2 = 0.8, s3 = 0.9;
  samples.push_back({1, {0}, 100000, static_cast<std::uint64_t>(100000 * s1)});
  samples.push_back({2, {1, 0}, 100000, static_cast<std::uint64_t>(100000 * s2 * s1)});
  samples.push_back({3, {2, 1, 0}, 100000,
                     static_cast<std::uint64_t>(100000 * s3 * s2 * s1)});
  const auto est = DeliveryRatioTomography(cfg).estimate(samples);
  EXPECT_NEAR(est.at(LinkKey{1, 0}), 1 - s1, 1e-4);
  EXPECT_NEAR(est.at(LinkKey{2, 1}), 1 - s2, 1e-4);
  EXPECT_NEAR(est.at(LinkKey{3, 2}), 1 - s3, 1e-4);
}

TEST(DeliveryRatio, TreeBranching) {
  DeliveryRatioConfig cfg;
  cfg.max_attempts = 1;
  // Two children of node 1.
  std::vector<PathSample> samples;
  samples.push_back({1, {0}, 10000, 9000});
  samples.push_back({2, {1, 0}, 10000, 8100});  // link 2->1 success 0.9
  samples.push_back({3, {1, 0}, 10000, 4500});  // link 3->1 success 0.5
  const auto est = DeliveryRatioTomography(cfg).estimate(samples);
  EXPECT_NEAR(est.at(LinkKey{2, 1}), 0.1, 0.01);
  EXPECT_NEAR(est.at(LinkKey{3, 1}), 0.5, 0.01);
}

TEST(DeliveryRatio, SkipsThinOrigins) {
  DeliveryRatioConfig cfg;
  cfg.min_generated = 100;
  std::vector<PathSample> samples;
  samples.push_back({1, {0}, 5, 5});
  EXPECT_TRUE(DeliveryRatioTomography(cfg).estimate(samples).empty());
}

TEST(DeliveryRatio, ZeroObservationCases) {
  DeliveryRatioConfig cfg;
  cfg.max_attempts = 1;
  cfg.min_generated = 1;
  // No samples at all.
  EXPECT_TRUE(DeliveryRatioTomography(cfg).estimate({}).empty());
  // A window with zero generated packets carries no ratio: it must be
  // skipped without dividing by zero.
  std::vector<PathSample> samples;
  samples.push_back({1, {0}, 0, 0});
  EXPECT_TRUE(DeliveryRatioTomography(cfg).estimate(samples).empty());
  // A sample with no path (origin with no snapshot route) is unusable too.
  samples.clear();
  samples.push_back({1, {}, 1000, 900});
  EXPECT_TRUE(DeliveryRatioTomography(cfg).estimate(samples).empty());
}

TEST(DeliveryRatio, TotalBlackoutClampsToFullLoss) {
  DeliveryRatioConfig cfg;
  cfg.max_attempts = 1;
  cfg.min_generated = 1;
  std::vector<PathSample> samples;
  samples.push_back({1, {0}, 1000, 0});  // nothing ever arrived
  const auto est = DeliveryRatioTomography(cfg).estimate(samples);
  ASSERT_EQ(est.count(LinkKey{1, 0}), 1u);
  EXPECT_DOUBLE_EQ(est.at(LinkKey{1, 0}), 1.0);
}

TEST(DeliveryRatio, ArqMaskingCompressesEstimates) {
  // Same delivery ratios, but interpreted under an 8-attempt MAC: the
  // inferred per-attempt losses become large and poorly separated — the
  // masking effect the paper's comparison hinges on.
  DeliveryRatioConfig cfg;
  cfg.max_attempts = 8;
  std::vector<PathSample> samples;
  samples.push_back({1, {0}, 10000, 9990});
  samples.push_back({2, {1, 0}, 10000, 9970});
  const auto est = DeliveryRatioTomography(cfg).estimate(samples);
  // 1 - D2/D1 ~ 0.002 -> p = 0.002^(1/8) ~ 0.46: wildly above any plausible
  // per-attempt truth near 0.05-0.3.
  EXPECT_GT(est.at(LinkKey{2, 1}), 0.4);
}

// --- NNLS ---------------------------------------------------------------------

TEST(Nnls, RecoversChainLosses) {
  NnlsConfig cfg;
  cfg.max_attempts = 1;
  cfg.min_generated = 10;
  std::vector<PathSample> samples;
  const double s1 = 0.9, s2 = 0.7;
  // Multiple windows with both short and long paths: identifiable system.
  for (int w = 0; w < 4; ++w) {
    samples.push_back({1, {0}, 50000, static_cast<std::uint64_t>(50000 * s1)});
    samples.push_back({2, {1, 0}, 50000, static_cast<std::uint64_t>(50000 * s2 * s1)});
  }
  const auto est = NnlsPathTomography(cfg).estimate(samples);
  EXPECT_NEAR(est.at(LinkKey{1, 0}), 1 - s1, 0.02);
  EXPECT_NEAR(est.at(LinkKey{2, 1}), 1 - s2, 0.02);
}

TEST(Nnls, HandlesPathDiversity) {
  // Node 3 alternates between two parents across windows; NNLS uses both
  // equations (this is its edge over the tree-ratio method).
  NnlsConfig cfg;
  cfg.max_attempts = 1;
  cfg.min_generated = 10;
  std::vector<PathSample> samples;
  const double s10 = 0.9, s20 = 0.8, s31 = 0.95, s32 = 0.6;
  samples.push_back({1, {0}, 100000, static_cast<std::uint64_t>(100000 * s10)});
  samples.push_back({2, {0}, 100000, static_cast<std::uint64_t>(100000 * s20)});
  samples.push_back({3, {1, 0}, 100000, static_cast<std::uint64_t>(100000 * s31 * s10)});
  samples.push_back({3, {2, 0}, 100000, static_cast<std::uint64_t>(100000 * s32 * s20)});
  const auto est = NnlsPathTomography(cfg).estimate(samples);
  EXPECT_NEAR(est.at(LinkKey{3, 1}), 1 - s31, 0.03);
  EXPECT_NEAR(est.at(LinkKey{3, 2}), 1 - s32, 0.03);
}

TEST(Nnls, EmptyInput) {
  NnlsConfig cfg;
  EXPECT_TRUE(NnlsPathTomography(cfg).estimate({}).empty());
}

TEST(Nnls, ZeroObservationAndThinWindowCases) {
  NnlsConfig cfg;
  cfg.max_attempts = 1;
  cfg.min_generated = 100;
  // Zero-generated and below-threshold windows contribute no equations.
  std::vector<PathSample> samples;
  samples.push_back({1, {0}, 0, 0});
  samples.push_back({2, {1, 0}, 99, 50});
  EXPECT_TRUE(NnlsPathTomography(cfg).estimate(samples).empty());
  // At exactly the threshold the window counts.
  samples.push_back({3, {0}, 100, 90});
  const auto est = NnlsPathTomography(cfg).estimate(samples);
  EXPECT_EQ(est.count(LinkKey{3, 0}), 1u);
}

TEST(Nnls, NonNegativeOutputs) {
  NnlsConfig cfg;
  cfg.max_attempts = 1;
  cfg.min_generated = 1;
  std::vector<PathSample> samples;
  // Contradictory equations (child delivers more than parent).
  samples.push_back({1, {0}, 1000, 800});
  samples.push_back({2, {1, 0}, 1000, 950});
  const auto est = NnlsPathTomography(cfg).estimate(samples);
  for (const auto& [key, loss] : est) {
    EXPECT_GE(loss, 0.0);
    EXPECT_LE(loss, 1.0);
  }
}

// --- EM -------------------------------------------------------------------------

TEST(Em, RecoversChainFromPerPacketOutcomes) {
  dophy::common::Rng rng(11);
  EmConfig cfg;
  cfg.max_attempts = 1;
  const double s1 = 0.9, s2 = 0.7;
  std::vector<PacketObservation> packets;
  for (int i = 0; i < 40000; ++i) {
    // Origin 1: path {0}.
    packets.push_back({1, {0}, rng.bernoulli(s1)});
    // Origin 2: path {1, 0}.
    packets.push_back({2, {1, 0}, rng.bernoulli(s2) && rng.bernoulli(s1)});
  }
  const auto est = EmPathTomography(cfg).estimate(packets);
  EXPECT_NEAR(est.at(LinkKey{1, 0}), 1 - s1, 0.02);
  EXPECT_NEAR(est.at(LinkKey{2, 1}), 1 - s2, 0.02);
}

TEST(Em, SharedLinkAcrossOrigins) {
  dophy::common::Rng rng(12);
  EmConfig cfg;
  cfg.max_attempts = 1;
  const double s10 = 0.8, s21 = 0.9, s31 = 0.6;
  std::vector<PacketObservation> packets;
  for (int i = 0; i < 60000; ++i) {
    packets.push_back({2, {1, 0}, rng.bernoulli(s21) && rng.bernoulli(s10)});
    packets.push_back({3, {1, 0}, rng.bernoulli(s31) && rng.bernoulli(s10)});
  }
  const auto est = EmPathTomography(cfg).estimate(packets);
  // Without direct observations of origin 1 the split is only partially
  // identifiable; EM must still attribute more loss to 3->1 than to 2->1.
  EXPECT_GT(est.at(LinkKey{3, 1}), est.at(LinkKey{2, 1}) + 0.1);
}

TEST(Em, PerfectDeliveryGivesZeroLoss) {
  EmConfig cfg;
  cfg.max_attempts = 8;
  std::vector<PacketObservation> packets(1000, PacketObservation{2, {1, 0}, true});
  const auto est = EmPathTomography(cfg).estimate(packets);
  EXPECT_NEAR(est.at(LinkKey{2, 1}), 0.0, 0.05);
  EXPECT_NEAR(est.at(LinkKey{1, 0}), 0.0, 0.05);
}

TEST(Em, EmptyAndDegenerateInputs) {
  EmConfig cfg;
  EXPECT_TRUE(EmPathTomography(cfg).estimate({}).empty());
  std::vector<PacketObservation> no_path{{1, {}, true}};
  EXPECT_TRUE(EmPathTomography(cfg).estimate(no_path).empty());
}

TEST(Em, TotalBlackoutAttributesFullLoss) {
  EmConfig cfg;
  cfg.max_attempts = 1;
  std::vector<PacketObservation> packets(2000, PacketObservation{1, {0}, false});
  const auto est = EmPathTomography(cfg).estimate(packets);
  ASSERT_EQ(est.count(LinkKey{1, 0}), 1u);
  EXPECT_GT(est.at(LinkKey{1, 0}), 0.95);
}

TEST(Baselines, EmAndNnlsAgreeOnIdentifiableSystem) {
  // On a fully identifiable static system with abundant data, the two
  // path-based estimators must land near each other (and the truth).
  dophy::common::Rng rng(21);
  const double s1 = 0.85, s2 = 0.65;
  std::vector<PacketObservation> packets;
  std::vector<PathSample> samples;
  std::uint64_t d1 = 0, d2 = 0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const bool ok1 = rng.bernoulli(s1);
    const bool ok2 = rng.bernoulli(s2) && rng.bernoulli(s1);
    packets.push_back({1, {0}, ok1});
    packets.push_back({2, {1, 0}, ok2});
    d1 += ok1;
    d2 += ok2;
  }
  samples.push_back({1, {0}, static_cast<std::uint64_t>(n), d1});
  samples.push_back({2, {1, 0}, static_cast<std::uint64_t>(n), d2});

  EmConfig em_cfg;
  em_cfg.max_attempts = 1;
  NnlsConfig nnls_cfg;
  nnls_cfg.max_attempts = 1;
  const auto em = EmPathTomography(em_cfg).estimate(packets);
  const auto nnls = NnlsPathTomography(nnls_cfg).estimate(samples);
  for (const auto key : {LinkKey{1, 0}, LinkKey{2, 1}}) {
    EXPECT_NEAR(em.at(key), nnls.at(key), 0.02);
  }
  EXPECT_NEAR(em.at(LinkKey{1, 0}), 1 - s1, 0.02);
  EXPECT_NEAR(nnls.at(LinkKey{2, 1}), 1 - s2, 0.02);
}

TEST(Em, ConvergesWithinIterationBudget) {
  dophy::common::Rng rng(13);
  EmConfig cfg;
  cfg.max_attempts = 1;
  cfg.max_iterations = 200;
  std::vector<PacketObservation> packets;
  for (int i = 0; i < 5000; ++i) {
    packets.push_back({4, {3, 2, 1, 0},
                       rng.bernoulli(0.9) && rng.bernoulli(0.8) && rng.bernoulli(0.95) &&
                           rng.bernoulli(0.85)});
  }
  const auto est = EmPathTomography(cfg).estimate(packets);
  EXPECT_EQ(est.size(), 4u);
  double total_loss = 0.0;
  for (const auto& [key, loss] : est) total_loss += loss;
  // Aggregate loss along the path must match the end-to-end failure mass.
  EXPECT_NEAR(total_loss, (1 - 0.9) + (1 - 0.8) + (1 - 0.95) + (1 - 0.85), 0.1);
}

}  // namespace
}  // namespace dophy::tomo::baseline
