// InvariantChecker tests against live networks: clean runs pass, the
// planted retx-accounting bias is caught by the link-counter cross-check,
// violation recording caps, mid-run install, and install/uninstall hygiene.

#include "dophy/check/invariants.hpp"

#include <gtest/gtest.h>

#include <string>

#include "dophy/net/network.hpp"

namespace dophy::check {
namespace {

using dophy::net::Network;
using dophy::net::NetworkConfig;
using dophy::net::NodeId;

NetworkConfig small_config(std::uint64_t seed = 1) {
  NetworkConfig cfg;
  cfg.topology.node_count = 30;
  cfg.topology.field_size = 100.0;
  cfg.topology.comm_range = 40.0;
  cfg.traffic.data_interval_s = 5.0;
  cfg.traffic.start_delay_s = 20.0;
  cfg.seed = seed;
  return cfg;
}

bool has_kind(const CheckReport& report, const std::string& kind) {
  for (const auto& v : report.violations) {
    if (v.kind == kind) return true;
  }
  return false;
}

TEST(InvariantChecker, CleanRunPasses) {
  Network net(small_config(1));
  InvariantChecker checker;
  checker.install(net);
  net.run_for(300.0);
  const CheckReport report = checker.finalize();
  EXPECT_TRUE(report.passed()) << report.summary();
  EXPECT_TRUE(report.finalized);
  EXPECT_GT(report.events_traced, 1000u);
  EXPECT_GT(report.packets_generated, 1000u);
  EXPECT_GT(report.transmissions, 1000u);
  EXPECT_GT(report.arrivals, 1000u);
  EXPECT_GT(report.links_audited, 10u);
  EXPECT_NE(report.summary().find("PASS"), std::string::npos);
}

TEST(InvariantChecker, PlantedRetxBiasIsCaughtByLinkAudit) {
  Network net(small_config(2));
  CheckConfig config;
  config.debug_retx_bias = 1;  // every exchange over-counts by one frame
  InvariantChecker checker(config);
  checker.install(net);
  net.run_for(200.0);
  const CheckReport report = checker.finalize();
  EXPECT_FALSE(report.passed());
  EXPECT_TRUE(has_kind(report, "link.attempts.mismatch")) << report.summary();
  EXPECT_NE(report.summary().find("FAIL"), std::string::npos);
}

TEST(InvariantChecker, NegativeBiasAlsoCaught) {
  Network net(small_config(3));
  CheckConfig config;
  config.debug_retx_bias = -1;
  InvariantChecker checker(config);
  checker.install(net);
  net.run_for(200.0);
  EXPECT_FALSE(checker.finalize().passed());
}

TEST(InvariantChecker, MaxViolationsCapsRecordingNotCounting) {
  Network net(small_config(4));
  CheckConfig config;
  config.debug_retx_bias = 1;
  config.max_violations = 2;
  InvariantChecker checker(config);
  checker.install(net);
  net.run_for(300.0);
  const CheckReport report = checker.finalize();
  EXPECT_LE(report.violations.size(), 2u);
  // One mismatch per audited link, far more than the recording cap.
  EXPECT_GT(report.violation_count, report.violations.size());
}

TEST(InvariantChecker, ChurnRunStillConserves) {
  auto cfg = small_config(5);
  cfg.churn.enabled = true;
  cfg.churn.churn_fraction = 0.4;
  cfg.churn.mean_up_s = 120.0;
  cfg.churn.mean_down_s = 30.0;
  Network net(cfg);
  InvariantChecker checker;
  checker.install(net);
  net.run_for(900.0);
  const CheckReport report = checker.finalize();
  EXPECT_TRUE(report.passed()) << report.summary();
  EXPECT_GT(net.stats().node_failures, 0u);
}

TEST(InvariantChecker, MidRunInstallAuditsOnlyTheRemainder) {
  Network net(small_config(6));
  net.run_for(150.0);  // unobserved prefix
  InvariantChecker checker;
  checker.install(net);
  net.run_for(300.0);
  const CheckReport report = checker.finalize();
  EXPECT_TRUE(report.passed()) << report.summary();
  EXPECT_GT(report.transmissions, 0u);
  // The ledger only saw the observed window, not the prefix.
  EXPECT_LT(report.packets_generated, net.stats().packets_generated);
}

TEST(InvariantChecker, UninstallDetachesCleanly) {
  Network net(small_config(7));
  {
    InvariantChecker checker;
    checker.install(net);
    net.run_for(60.0);
    checker.uninstall();
    checker.uninstall();  // idempotent
  }
  // Checker destroyed; the network must keep running without hooks.
  net.run_for(60.0);
  EXPECT_GT(net.stats().packets_generated, 0u);
}

TEST(InvariantChecker, DestructorUninstallsWhileNetworkLives) {
  Network net(small_config(8));
  {
    InvariantChecker checker;
    checker.install(net);
    net.run_for(30.0);
  }  // dtor must clear the observer + trace hook
  net.run_for(30.0);
  EXPECT_GT(net.stats().packets_generated, 0u);
}

TEST(InvariantChecker, GlobalToggleRoundTrips) {
  EXPECT_FALSE(global_enabled());
  set_global_enabled(true);
  EXPECT_TRUE(global_enabled());
  set_global_enabled(false);
  EXPECT_FALSE(global_enabled());
}

TEST(InvariantChecker, VerifyDecoderStatsFlagsBenignFailures) {
  CheckConfig config;
  InvariantChecker checker(config);
  checker.verify_decoder_stats(/*decode_failures=*/3, /*path_truncated=*/1,
                               /*missing_model_hops=*/2);
  EXPECT_EQ(checker.report().violation_count, 1u);
  EXPECT_EQ(checker.report().violations.front().kind, "decode.benign_failures");

  InvariantChecker ok(config);
  ok.verify_decoder_stats(0, 0, 0);
  ok.verify_decoder_stats(2, 2, 5);  // truncations explained by missing models
  EXPECT_EQ(ok.report().violation_count, 0u);

  InvariantChecker unexplained(config);
  unexplained.verify_decoder_stats(2, 2, 0);
  EXPECT_EQ(unexplained.report().violations.front().kind,
            "decode.unexplained_truncation");
}

}  // namespace
}  // namespace dophy::check
