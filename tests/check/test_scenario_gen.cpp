// Scenario generator tests: determinism, spec-string round-trip (the repro
// contract), config materialization, and distribution sanity.

#include "dophy/check/scenario_gen.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace dophy::check {
namespace {

TEST(ScenarioGen, DeterministicPerSeed) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    EXPECT_EQ(generate_scenario(seed), generate_scenario(seed));
  }
  EXPECT_NE(generate_scenario(1), generate_scenario(2));
}

TEST(ScenarioGen, FieldsStayInRange) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const ScenarioSpec spec = generate_scenario(seed);
    EXPECT_EQ(spec.seed, seed);
    EXPECT_GE(spec.nodes, 20u);
    EXPECT_LE(spec.nodes, 40u);
    EXPECT_LE(spec.loss_kind, 2);
    EXPECT_LE(spec.fault_level, 2);
    EXPECT_GE(spec.censor_k, 2u);
    EXPECT_LE(spec.censor_k, 8u);
    EXPECT_GE(spec.measure_s, 120u);
    EXPECT_LE(spec.measure_s, 240u);
    if (spec.max_wire_bytes != 0) {
      EXPECT_GE(spec.max_wire_bytes, 24u);
      EXPECT_LE(spec.max_wire_bytes, 64u);
    }
  }
}

TEST(ScenarioGen, CampaignMixesBenignAndAdversarial) {
  std::size_t benign = 0;
  std::set<std::string> distinct;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const ScenarioSpec spec = generate_scenario(seed);
    benign += spec.benign();
    distinct.insert(to_string(spec));
  }
  // Roughly half the scenarios must keep strict decode checking armed, and
  // the generator must not collapse onto a handful of shapes.
  EXPECT_GE(benign, 20u);
  EXPECT_LE(benign, 80u);
  EXPECT_GE(distinct.size(), 95u);
}

TEST(ScenarioGen, ToStringParsesBackExactly) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const ScenarioSpec spec = generate_scenario(seed);
    ScenarioSpec parsed;
    ASSERT_TRUE(parse_spec(to_string(spec), parsed)) << to_string(spec);
    EXPECT_EQ(parsed, spec) << to_string(spec);
  }
}

TEST(ScenarioGen, ParseRejectsMalformedSpecs) {
  ScenarioSpec spec = generate_scenario(7);
  const ScenarioSpec before = spec;
  EXPECT_FALSE(parse_spec("seed", spec));       // no '='
  EXPECT_FALSE(parse_spec("bogus=1", spec));    // unknown key
  EXPECT_FALSE(parse_spec("seed=abc", spec));   // non-numeric
  EXPECT_FALSE(parse_spec("nodes=2", spec));    // out of range
  EXPECT_FALSE(parse_spec("loss=nope", spec));  // bad enum
  EXPECT_FALSE(parse_spec("dyn=2", spec));      // bad bool
  EXPECT_FALSE(parse_spec("seed=1,,nodes=30", spec));
  EXPECT_EQ(spec, before);  // failures leave the spec untouched
}

TEST(ScenarioGen, ParseAcceptsPartialSpecsOverDefaults) {
  ScenarioSpec spec;
  ASSERT_TRUE(parse_spec("seed=42,nodes=25,loss=ge", spec));
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_EQ(spec.nodes, 25u);
  EXPECT_EQ(spec.loss_kind, 1);
  EXPECT_EQ(spec.censor_k, 4u);  // untouched default
}

TEST(ScenarioGen, MakeConfigMatchesSpec) {
  ScenarioSpec spec = generate_scenario(11);
  spec.censor_k = 6;
  spec.hash_mode = true;
  spec.trickle = true;
  spec.max_wire_bytes = 40;
  spec.fault_level = 2;
  const auto config = make_config(spec);
  EXPECT_EQ(config.net.topology.node_count, spec.nodes);
  EXPECT_EQ(config.net.seed, spec.seed);
  EXPECT_DOUBLE_EQ(config.warmup_s, static_cast<double>(spec.warmup_s));
  EXPECT_DOUBLE_EQ(config.measure_s, static_cast<double>(spec.measure_s));
  EXPECT_EQ(config.dophy.censor_threshold, 6u);
  EXPECT_EQ(config.dophy.path_mode, dophy::tomo::PathMode::kHashPath);
  EXPECT_TRUE(config.dophy.use_trickle_dissemination);
  EXPECT_EQ(config.dophy.max_wire_bytes, 40u);
  EXPECT_TRUE(config.faults.enabled);
  EXPECT_FALSE(config.run_baselines);
  EXPECT_TRUE(config.check.enabled);
  EXPECT_FALSE(config.check.strict_decode);  // non-benign spec
}

TEST(ScenarioGen, CodecProfileBiasesTheCodecRegime) {
  std::size_t bursty = 0, high_k = 0, budgeted = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const auto spec = generate_scenario(seed, ScenarioProfile::kCodec);
    // Deterministic: same seed, same spec.
    EXPECT_EQ(spec, generate_scenario(seed, ScenarioProfile::kCodec));
    // Hash mode is off by construction — the id-coding decoder is the
    // component this profile exists to stress.
    EXPECT_FALSE(spec.hash_mode);
    ASSERT_GE(spec.censor_k, 2u);
    ASSERT_LE(spec.censor_k, 8u);
    if (spec.loss_kind != 0) ++bursty;
    if (spec.censor_k >= 6) ++high_k;
    if (spec.max_wire_bytes != 0) ++budgeted;
  }
  // Every scenario uses a non-bernoulli (bursty/drifting) loss process; the
  // other biases are probabilistic but must dominate the mix.
  EXPECT_EQ(bursty, 200u);
  EXPECT_GT(high_k, 100u);
  EXPECT_GT(budgeted, 70u);
}

TEST(ScenarioGen, DefaultProfileMatchesLegacyOverload) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    EXPECT_EQ(generate_scenario(seed), generate_scenario(seed, ScenarioProfile::kDefault));
  }
}

TEST(ScenarioGen, ProfileNamesRoundTrip) {
  ScenarioProfile p{};
  ASSERT_TRUE(parse_profile("codec", p));
  EXPECT_EQ(p, ScenarioProfile::kCodec);
  ASSERT_TRUE(parse_profile("default", p));
  EXPECT_EQ(p, ScenarioProfile::kDefault);
  EXPECT_FALSE(parse_profile("bogus", p));
  EXPECT_EQ(to_string(ScenarioProfile::kCodec), "codec");
}

TEST(ScenarioGen, BenignSpecArmsStrictDecode) {
  ScenarioSpec spec = generate_scenario(11);
  spec.fault_level = 0;
  spec.hash_mode = false;
  spec.trickle = false;
  spec.max_wire_bytes = 0;
  ASSERT_TRUE(spec.benign());
  const auto config = make_config(spec);
  EXPECT_TRUE(config.check.strict_decode);
  EXPECT_FALSE(config.faults.enabled);
}

}  // namespace
}  // namespace dophy::check
