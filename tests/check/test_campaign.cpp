// Campaign driver tests: scenario runs are deterministic and digest-stable,
// the planted retx bias turns into caught-and-shrunk failures, and the
// shrinker minimizes against an arbitrary failure predicate.

#include "dophy/check/campaign.hpp"

#include <gtest/gtest.h>

#include <string>

namespace dophy::check {
namespace {

ScenarioSpec quick_benign_spec(std::uint64_t seed = 3) {
  ScenarioSpec spec;
  spec.seed = seed;
  spec.nodes = 20;
  spec.warmup_s = 60;
  spec.measure_s = 120;
  return spec;  // defaults: benign, k=4, bernoulli loss
}

TEST(Campaign, BenignScenarioPasses) {
  const ScenarioOutcome outcome = run_scenario(quick_benign_spec(), {});
  EXPECT_TRUE(outcome.passed) << outcome.first_violation;
  EXPECT_EQ(outcome.violation_count, 0u);
  EXPECT_GT(outcome.packets_measured, 100u);
  EXPECT_GT(outcome.packets_generated, outcome.packets_measured);
  EXPECT_NE(outcome.digest, 0u);
}

TEST(Campaign, OutcomeDigestIsDeterministic) {
  const ScenarioOutcome a = run_scenario(quick_benign_spec(), {});
  const ScenarioOutcome b = run_scenario(quick_benign_spec(), {});
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_DOUBLE_EQ(a.mae, b.mae);
  const ScenarioOutcome c = run_scenario(quick_benign_spec(4), {});
  EXPECT_NE(a.digest, c.digest);
}

TEST(Campaign, PlantedBiasIsCaughtAndShrunk) {
  CampaignOptions options;
  options.start_seed = 1;
  options.num_seeds = 1;
  options.check.debug_retx_bias = 1;
  options.max_shrink_runs = 12;
  const CampaignResult result = run_campaign(options);
  EXPECT_EQ(result.scenarios_run, 1u);
  EXPECT_EQ(result.failures, 1u);
  EXPECT_FALSE(result.passed());
  ASSERT_EQ(result.repros.size(), 1u);
  const FailureRepro& repro = result.repros.front();
  EXPECT_NE(repro.first_violation.find("link.attempts.mismatch"), std::string::npos)
      << repro.first_violation;
  // The bias fires in every configuration, so the shrinker reaches the
  // fixed-point minimum while the failure persists.
  EXPECT_EQ(repro.shrunk.nodes, 12u);
  EXPECT_EQ(repro.shrunk.measure_s, 120u);
  EXPECT_EQ(repro.shrunk.warmup_s, 60u);
  EXPECT_FALSE(repro.shrunk.trickle);
  EXPECT_FALSE(repro.shrunk.hash_mode);
  EXPECT_EQ(repro.shrunk.fault_level, 0);
  EXPECT_GT(repro.shrink_runs, 0u);
  EXPECT_LE(repro.shrink_runs, options.max_shrink_runs);
}

TEST(Campaign, ShrinkerMinimizesAgainstFailPredicate) {
  CampaignOptions options;
  // "Failure" = topology at least the shrinker's floor; independent of the
  // oracle, and still failing at the minimum so the floor itself is kept.
  options.fail_predicate = [](const ScenarioOutcome& outcome) {
    return outcome.spec.nodes >= 12;
  };
  ScenarioSpec spec = generate_scenario(1);
  ASSERT_GT(spec.nodes, 12u);
  std::size_t runs = 0;
  const ScenarioSpec shrunk = shrink_failure(spec, options, runs);
  EXPECT_EQ(shrunk.nodes, 12u);
  EXPECT_EQ(shrunk.loss_kind, 0);
  EXPECT_FALSE(shrunk.dynamics);
  EXPECT_EQ(shrunk.censor_k, 4u);
  EXPECT_EQ(shrunk.seed, spec.seed);  // the seed itself is never mutated
  EXPECT_GT(runs, 0u);
}

TEST(Campaign, ShrinkRespectsRunBudget) {
  CampaignOptions options;
  options.fail_predicate = [](const ScenarioOutcome&) { return true; };
  options.max_shrink_runs = 3;
  std::size_t runs = 0;
  (void)shrink_failure(generate_scenario(2), options, runs);
  EXPECT_LE(runs, 3u);
}

TEST(Campaign, GloballyArmedFailuresBumpTheProcessTally) {
  // bench --check relies on this chain: global switch installs the checker,
  // a failed finalize bumps the process tally, the bench exits nonzero.
  auto config = make_config(quick_benign_spec(5));
  config.check.enabled = false;      // only the global switch arms it
  config.check.debug_retx_bias = 1;  // planted failure
  set_global_enabled(true);
  const auto before = global_failure_count();
  const auto result = dophy::tomo::run_pipeline(config);
  set_global_enabled(false);
  EXPECT_FALSE(result.check_report.passed());
  EXPECT_EQ(global_failure_count(), before + 1);
}

TEST(Campaign, SmallCampaignDigestStableAcrossRuns) {
  CampaignOptions options;
  options.start_seed = 1;
  options.num_seeds = 3;
  const CampaignResult a = run_campaign(options);
  const CampaignResult b = run_campaign(options);
  EXPECT_TRUE(a.passed()) << (a.repros.empty() ? "" : a.repros.front().first_violation);
  EXPECT_EQ(a.scenarios_run, 3u);
  EXPECT_EQ(a.digest, b.digest);

  CampaignOptions shifted = options;
  shifted.start_seed = 100;
  EXPECT_NE(run_campaign(shifted).digest, a.digest);
}

}  // namespace
}  // namespace dophy::check
