// Metamorphic properties of the tomography stack: transformations of the
// input with a known effect on the output (relabeling, reordering, adding
// data, coarsening the symbol alphabet) checked against synthetic streams.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "dophy/coding/codec.hpp"
#include "dophy/common/rng.hpp"
#include "dophy/net/types.hpp"
#include "dophy/tomo/link_inference.hpp"
#include "dophy/tomo/symbol_mapper.hpp"

namespace dophy::check {
namespace {

using dophy::common::Rng;
using dophy::net::LinkKey;
using dophy::net::NodeId;
using dophy::tomo::HopObservation;
using dophy::tomo::LinkLossEstimator;
using dophy::tomo::SymbolMapper;

/// Geometric(1 - p) attempt count, capped at the MAC budget.
std::uint32_t draw_attempts(Rng& rng, double loss, std::uint32_t max_attempts) {
  std::uint32_t attempts = 1;
  while (attempts < max_attempts && rng.next_double() < loss) ++attempts;
  return attempts;
}

struct Sample {
  LinkKey link;
  HopObservation obs;
};

std::vector<Sample> synthetic_samples(std::uint64_t seed, std::uint32_t k,
                                      std::size_t count) {
  Rng rng(seed);
  const LinkKey links[] = {{1, 2}, {2, 3}, {3, 0}, {4, 2}, {5, 3}};
  const double losses[] = {0.1, 0.3, 0.05, 0.5, 0.2};
  std::vector<Sample> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t which = rng.next_below(5);
    const std::uint32_t attempts = draw_attempts(rng, losses[which], 8);
    HopObservation obs;
    obs.censored = attempts >= k;
    obs.attempts = obs.censored ? k : attempts;
    samples.push_back({links[which], obs});
  }
  return samples;
}

TEST(Metamorphic, NodeIdPermutationLeavesEstimatesUnchanged) {
  const auto samples = synthetic_samples(7, 4, 5000);
  // An arbitrary relabeling of the node-id space.
  const auto perm = [](NodeId id) { return static_cast<NodeId>(id * 7 + 3); };

  LinkLossEstimator base(4);
  LinkLossEstimator relabeled(4);
  for (const Sample& s : samples) {
    base.observe(s.link, s.obs);
    relabeled.observe(LinkKey{perm(s.link.from), perm(s.link.to)}, s.obs);
  }
  ASSERT_EQ(base.link_count(), relabeled.link_count());
  for (const auto& [key, est] : base.all_estimates()) {
    const auto other = relabeled.estimate(LinkKey{perm(key.from), perm(key.to)});
    ASSERT_TRUE(other.has_value());
    EXPECT_DOUBLE_EQ(est.loss, other->loss);
    EXPECT_DOUBLE_EQ(est.stderr_, other->stderr_);
    EXPECT_DOUBLE_EQ(est.samples, other->samples);
  }
}

TEST(Metamorphic, ObservationOrderIsIrrelevant) {
  auto samples = synthetic_samples(11, 4, 3000);
  LinkLossEstimator forward(4);
  for (const Sample& s : samples) forward.observe(s.link, s.obs);
  std::reverse(samples.begin(), samples.end());
  LinkLossEstimator backward(4);
  for (const Sample& s : samples) backward.observe(s.link, s.obs);
  // Counts are small integers accumulated into doubles — exactly associative.
  for (const auto& [key, est] : forward.all_estimates()) {
    const auto other = backward.estimate(key);
    ASSERT_TRUE(other.has_value());
    EXPECT_DOUBLE_EQ(est.loss, other->loss);
  }
}

TEST(Metamorphic, AddingObservationsNeverShrinksTheEstimatorsWorld) {
  const auto samples = synthetic_samples(13, 4, 2000);
  LinkLossEstimator est(4);
  std::size_t prev_links = 0;
  double prev_samples = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    est.observe(samples[i].link, samples[i].obs);
    EXPECT_GE(est.link_count(), prev_links);
    prev_links = est.link_count();
    const auto e = est.estimate(samples[i].link);
    ASSERT_TRUE(e.has_value());
    EXPECT_GE(e->loss, 0.0);
    EXPECT_LE(e->loss, 1.0);
    if (i % 100 == 0) {
      double total = 0.0;
      for (const auto& [key, le] : est.all_estimates()) total += le.samples;
      EXPECT_GE(total, prev_samples);
      prev_samples = total;
    }
  }
}

TEST(Metamorphic, SymbolMapperCoarseningIsMonotone) {
  for (std::uint32_t k = 2; k <= 8; ++k) {
    const SymbolMapper mapper(k);
    EXPECT_EQ(mapper.alphabet_size(), k);
    std::uint32_t prev_symbol = 0;
    for (std::uint32_t attempts = 1; attempts <= 12; ++attempts) {
      const std::uint32_t symbol = mapper.to_symbol(attempts);
      EXPECT_GE(symbol, prev_symbol);  // monotone in attempts
      prev_symbol = symbol;
      if (attempts < k) {
        EXPECT_FALSE(mapper.is_censored(symbol));
        EXPECT_EQ(mapper.to_attempts(symbol), attempts);  // exact roundtrip
      } else {
        EXPECT_TRUE(mapper.is_censored(symbol));
        EXPECT_EQ(mapper.to_attempts(symbol), k);  // lower bound
      }
    }
  }
}

/// Empirical Shannon entropy (bits/symbol) of the K-mapped attempt stream.
double symbol_entropy(const std::vector<std::uint32_t>& attempts, std::uint32_t k) {
  const SymbolMapper mapper(k);
  std::map<std::uint32_t, std::size_t> histogram;
  for (const std::uint32_t a : attempts) ++histogram[mapper.to_symbol(a)];
  double entropy = 0.0;
  for (const auto& [symbol, count] : histogram) {
    const double p = static_cast<double>(count) / static_cast<double>(attempts.size());
    entropy -= p * std::log2(p);
  }
  return entropy;
}

TEST(Metamorphic, LargerKTradesBitsForInformation) {
  Rng rng(17);
  std::vector<std::uint32_t> attempts;
  for (int i = 0; i < 20000; ++i) attempts.push_back(draw_attempts(rng, 0.35, 8));

  // The K-symbol stream is a deterministic coarsening of the (K+1)-symbol
  // stream, so its empirical entropy (the count-bits cost) never increases
  // as K shrinks...
  double prev_entropy = -1.0;
  std::size_t prev_censored = attempts.size() + 1;
  for (std::uint32_t k = 2; k <= 8; ++k) {
    const double entropy = symbol_entropy(attempts, k);
    EXPECT_GE(entropy + 1e-12, prev_entropy) << "k=" << k;
    prev_entropy = entropy;
    const SymbolMapper mapper(k);
    std::size_t censored = 0;
    for (const std::uint32_t a : attempts) {
      censored += mapper.is_censored(mapper.to_symbol(a));
    }
    EXPECT_LT(censored, prev_censored) << "k=" << k;  // strictly fewer at 0.35 loss
    prev_censored = censored;
  }

  // ...and the censored-MLE recovered from the richer alphabet is at least
  // as close to the truth (generous slack: both are consistent, the coarse
  // one just throws information away).
  const double true_loss = 0.35;
  auto recovered_error = [&](std::uint32_t k) {
    const SymbolMapper mapper(k);
    LinkLossEstimator est(k);
    for (const std::uint32_t a : attempts) {
      HopObservation obs;
      obs.censored = a >= k;
      obs.attempts = obs.censored ? k : a;
      est.observe(LinkKey{1, 2}, obs);
    }
    return std::abs(est.estimate(LinkKey{1, 2})->loss - true_loss);
  };
  EXPECT_LE(recovered_error(8), recovered_error(2) + 0.02);
}

TEST(Metamorphic, CodecsRoundTripEveryGeneratedStream) {
  Rng rng(23);
  const std::uint32_t k = 4;
  const SymbolMapper mapper(k);
  std::vector<std::uint64_t> counts(k, 1);

  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint32_t> symbols;
    const std::size_t length = 1 + rng.next_below(64);
    for (std::size_t i = 0; i < length; ++i) {
      const std::uint32_t symbol =
          mapper.to_symbol(draw_attempts(rng, 0.3, 8));
      symbols.push_back(symbol);
      ++counts[symbol];
    }
    std::vector<std::unique_ptr<dophy::coding::Codec>> codecs;
    codecs.push_back(dophy::coding::make_fixed_width_codec(k));
    codecs.push_back(dophy::coding::make_elias_gamma_codec());
    codecs.push_back(dophy::coding::make_rice_codec(1));
    codecs.push_back(dophy::coding::make_huffman_codec(counts));
    codecs.push_back(dophy::coding::make_static_arith_codec(counts));
    codecs.push_back(dophy::coding::make_adaptive_arith_codec(k));
    for (const auto& codec : codecs) {
      std::vector<std::uint8_t> bytes;
      codec->encode(symbols, bytes);
      const auto outcome = codec->try_decode(bytes, symbols.size());
      ASSERT_TRUE(outcome.ok())
          << codec->name() << " trial " << trial << ": " << to_string(outcome.error);
      EXPECT_EQ(outcome.symbols, symbols) << codec->name() << " trial " << trial;
    }
  }
}

}  // namespace
}  // namespace dophy::check
