// GroundTruth ledger unit tests: loss-interval arithmetic, the exact dedupe
// set, fate counting, and conservation underflow detection.

#include "dophy/check/ground_truth.hpp"

#include <gtest/gtest.h>

namespace dophy::check {
namespace {

using dophy::net::LinkKey;
using dophy::net::PacketFate;

TEST(GroundTruth, DeliveredExchangeBoundsLossesByFirstRx) {
  GroundTruth ledger;
  // 5 frames on the air, receiver first heard frame 3: frames 1-2 were lost
  // for sure, frames 4-5 (post-first-reception duplicates) are ambiguous.
  ledger.record_exchange(LinkKey{1, 2}, /*attempts=*/5, /*first_rx=*/3,
                         /*delivered=*/true);
  const LinkTally* tally = ledger.find_link(LinkKey{1, 2});
  ASSERT_NE(tally, nullptr);
  EXPECT_EQ(tally->attempts, 5u);
  EXPECT_EQ(tally->exchanges, 1u);
  EXPECT_EQ(tally->failed_exchanges, 0u);
  EXPECT_EQ(tally->min_losses, 2u);  // f - 1
  EXPECT_EQ(tally->max_losses, 4u);  // n - 1
  EXPECT_EQ(ledger.total_attempts(), 5u);
}

TEST(GroundTruth, FirstFrameHeardHasZeroGuaranteedLosses) {
  GroundTruth ledger;
  ledger.record_exchange(LinkKey{1, 2}, 1, 1, true);
  const LinkTally* tally = ledger.find_link(LinkKey{1, 2});
  ASSERT_NE(tally, nullptr);
  EXPECT_EQ(tally->min_losses, 0u);
  EXPECT_EQ(tally->max_losses, 0u);  // single frame, heard: nothing lost
}

TEST(GroundTruth, FailedExchangeLosesEveryFrame) {
  GroundTruth ledger;
  ledger.record_exchange(LinkKey{3, 4}, 8, 0, false);
  const LinkTally* tally = ledger.find_link(LinkKey{3, 4});
  ASSERT_NE(tally, nullptr);
  EXPECT_EQ(tally->failed_exchanges, 1u);
  EXPECT_EQ(tally->min_losses, 8u);
  EXPECT_EQ(tally->max_losses, 8u);
}

TEST(GroundTruth, TalliesAccumulatePerDirectedLink) {
  GroundTruth ledger;
  ledger.record_exchange(LinkKey{1, 2}, 3, 1, true);
  ledger.record_exchange(LinkKey{1, 2}, 2, 2, true);
  ledger.record_exchange(LinkKey{2, 1}, 4, 0, false);  // reverse direction
  const LinkTally* fwd = ledger.find_link(LinkKey{1, 2});
  ASSERT_NE(fwd, nullptr);
  EXPECT_EQ(fwd->attempts, 5u);
  EXPECT_EQ(fwd->exchanges, 2u);
  EXPECT_EQ(fwd->min_losses, 1u);  // 0 + 1
  EXPECT_EQ(fwd->max_losses, 3u);  // 2 + 1
  const LinkTally* rev = ledger.find_link(LinkKey{2, 1});
  ASSERT_NE(rev, nullptr);
  EXPECT_EQ(rev->attempts, 4u);
  EXPECT_EQ(ledger.total_attempts(), 9u);
  EXPECT_EQ(ledger.find_link(LinkKey{5, 6}), nullptr);
}

TEST(GroundTruth, ExactDedupeSetDetectsRepeats) {
  GroundTruth ledger;
  EXPECT_FALSE(ledger.record_arrival(2, 0xABCDu));  // first admission
  EXPECT_TRUE(ledger.record_arrival(2, 0xABCDu));   // exact repeat
  EXPECT_FALSE(ledger.record_arrival(3, 0xABCDu));  // same key, other node
  EXPECT_FALSE(ledger.record_arrival(2, 0xABCEu));  // other key, same node
}

TEST(GroundTruth, ConservationTracksLivePackets) {
  GroundTruth ledger;
  ledger.record_generated();
  ledger.record_generated();
  EXPECT_EQ(ledger.generated(), 2u);
  EXPECT_EQ(ledger.live_packets(), 2u);
  EXPECT_TRUE(ledger.record_finished(PacketFate::kDelivered));
  EXPECT_TRUE(ledger.record_finished(PacketFate::kDroppedTtl));
  EXPECT_EQ(ledger.finished(), 2u);
  EXPECT_EQ(ledger.live_packets(), 0u);
  EXPECT_EQ(ledger.fate_count(PacketFate::kDelivered), 1u);
  EXPECT_EQ(ledger.fate_count(PacketFate::kDroppedTtl), 1u);
  EXPECT_EQ(ledger.fate_count(PacketFate::kDroppedQueue), 0u);
}

TEST(GroundTruth, FinishUnderflowReturnsFalse) {
  GroundTruth ledger;
  EXPECT_FALSE(ledger.record_finished(PacketFate::kDelivered));
  ledger.record_generated();
  EXPECT_TRUE(ledger.record_finished(PacketFate::kDroppedRetries));
  EXPECT_FALSE(ledger.record_finished(PacketFate::kDroppedRetries));
}

}  // namespace
}  // namespace dophy::check
