// dophy::fault unit tests: plan generation determinism, and the injector's
// end-to-end effect on a live network (crash/reboot, sink outage, link
// blackout, clock skew, report mutation windows, trace/metrics emission).

#include "dophy/fault/fault_plan.hpp"
#include "dophy/fault/injector.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dophy/net/network.hpp"
#include "dophy/obs/trace.hpp"

namespace dophy::fault {
namespace {

using dophy::net::kSinkId;
using dophy::net::Network;
using dophy::net::NetworkConfig;
using dophy::net::NodeId;
using dophy::net::Packet;
using dophy::net::SimTime;

FaultPlanConfig storm_config(std::uint64_t seed = 7) {
  FaultPlanConfig cfg;
  cfg.enabled = true;
  cfg.seed = seed;
  cfg.start_s = 100.0;
  cfg.horizon_s = 3600.0;
  cfg.node_crashes_per_hour = 5.0;
  cfg.sink_outages_per_hour = 1.0;
  cfg.link_blackouts_per_hour = 6.0;
  cfg.clock_skews_per_hour = 3.0;
  cfg.report_corrupt_prob = 0.05;
  cfg.report_truncate_prob = 0.05;
  cfg.report_drop_prob = 0.05;
  return cfg;
}

TEST(FaultPlan, GenerateIsDeterministic) {
  const auto a = FaultPlan::generate(storm_config(), 50);
  const auto b = FaultPlan::generate(storm_config(), 50);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.events(), b.events());
  // A different seed yields a different storm.
  const auto c = FaultPlan::generate(storm_config(99), 50);
  EXPECT_NE(a.events(), c.events());
}

TEST(FaultPlan, DisabledOrDegenerateIsEmpty) {
  FaultPlanConfig cfg = storm_config();
  cfg.enabled = false;
  EXPECT_TRUE(FaultPlan::generate(cfg, 50).empty());
  EXPECT_TRUE(FaultPlan::generate(storm_config(), 1).empty());
  FaultPlanConfig zero;
  zero.enabled = true;  // enabled but all rates zero
  EXPECT_TRUE(FaultPlan::generate(zero, 50).empty());
}

TEST(FaultPlan, GeneratedEventsAreSane) {
  const auto cfg = storm_config();
  const auto plan = FaultPlan::generate(cfg, 40);
  ASSERT_FALSE(plan.empty());
  int report_windows = 0;
  double prev_time = -1.0;
  for (const FaultEvent& e : plan.events()) {
    EXPECT_GE(e.at_s, cfg.start_s);
    EXPECT_LE(e.at_s, cfg.start_s + cfg.horizon_s);
    EXPECT_GE(e.at_s, prev_time);  // finalize() sorted by time
    prev_time = e.at_s;
    switch (e.kind) {
      case FaultKind::kNodeCrash:
        EXPECT_GE(e.node, 1);  // never the sink
        EXPECT_LT(e.node, 40);
        break;
      case FaultKind::kSinkOutage:
        EXPECT_EQ(e.node, kSinkId);
        break;
      case FaultKind::kClockSkew:
        EXPECT_GT(e.magnitude, 1.0 - cfg.clock_skew_max - 1e-9);
        EXPECT_LT(e.magnitude, 1.0 + cfg.clock_skew_max + 1e-9);
        break;
      case FaultKind::kReportCorrupt:
      case FaultKind::kReportTruncate:
      case FaultKind::kReportDrop:
        ++report_windows;
        EXPECT_GT(e.magnitude, 0.0);
        break;
      case FaultKind::kLinkBlackout:
        EXPECT_NE(e.node, e.peer);
        break;
    }
  }
  EXPECT_EQ(report_windows, 3);  // one window per configured probability
}

TEST(FaultPlan, BuilderFinalizeSortsByTime) {
  FaultPlan plan;
  plan.add_clock_skew(50.0, 3, 1.02)
      .add_node_crash(10.0, 2, 30.0)
      .add_sink_outage(30.0, 5.0);
  plan.finalize();
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kNodeCrash);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kSinkOutage);
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kClockSkew);
}

TEST(FaultKindNames, Distinct) {
  EXPECT_EQ(to_string(FaultKind::kNodeCrash), "node_crash");
  EXPECT_EQ(to_string(FaultKind::kSinkOutage), "sink_outage");
  EXPECT_EQ(to_string(FaultKind::kLinkBlackout), "link_blackout");
  EXPECT_EQ(to_string(FaultKind::kClockSkew), "clock_skew");
  EXPECT_EQ(to_string(FaultKind::kReportCorrupt), "report_corrupt");
  EXPECT_EQ(to_string(FaultKind::kReportTruncate), "report_truncate");
  EXPECT_EQ(to_string(FaultKind::kReportDrop), "report_drop");
}

// --- Injector against a live network ----------------------------------------

NetworkConfig small_net(std::uint64_t seed = 1) {
  NetworkConfig cfg;
  cfg.topology.node_count = 30;
  cfg.topology.field_size = 100.0;
  cfg.topology.comm_range = 40.0;
  cfg.traffic.data_interval_s = 5.0;
  cfg.traffic.start_delay_s = 20.0;
  cfg.seed = seed;
  return cfg;
}

TEST(FaultInjector, CrashAndRebootToggleLiveness) {
  Network net(small_net());
  FaultPlan plan;
  plan.add_node_crash(10.0, 5, 30.0);
  FaultInjector injector(net, std::move(plan), 1);
  injector.arm();

  net.run_for(15.0);
  EXPECT_FALSE(net.node(5).alive());
  net.run_for(30.0);  // t=45 > 10+30
  EXPECT_TRUE(net.node(5).alive());
  EXPECT_EQ(injector.stats().node_crashes, 1u);
  EXPECT_EQ(injector.stats().node_reboots, 1u);
  EXPECT_EQ(injector.stats().events_executed, 1u);
}

TEST(FaultInjector, SinkOutageAndRecovery) {
  Network net(small_net());
  FaultPlan plan;
  plan.add_sink_outage(10.0, 20.0);
  FaultInjector injector(net, std::move(plan), 1);
  injector.arm();

  net.run_for(15.0);
  EXPECT_FALSE(net.node(kSinkId).alive());
  net.run_for(20.0);
  EXPECT_TRUE(net.node(kSinkId).alive());
  EXPECT_EQ(injector.stats().sink_outages, 1u);
}

TEST(FaultInjector, BlackoutOpensAndClosesARealLink) {
  Network net(small_net());
  // Pick a real radio edge so the blackout needs no resolution.
  const auto neighbors = net.topology().neighbors(1);
  ASSERT_FALSE(neighbors.empty());
  const NodeId peer = neighbors[0];

  FaultPlan plan;
  plan.add_link_blackout(10.0, 1, peer, 25.0);
  FaultInjector injector(net, std::move(plan), 1);
  injector.arm();

  net.run_for(15.0);
  EXPECT_TRUE(net.link(1, peer).blackout());
  EXPECT_TRUE(net.link(peer, 1).blackout());  // reverse path jammed too
  net.run_for(30.0);
  EXPECT_FALSE(net.link(1, peer).blackout());
  EXPECT_FALSE(net.link(peer, 1).blackout());
  EXPECT_EQ(injector.stats().link_blackouts, 1u);
}

TEST(FaultInjector, BlackoutResolvesNonEdgePairsToARealLink) {
  Network net(small_net());
  // Find a pair with no radio edge.
  NodeId from = dophy::net::kInvalidNode;
  NodeId to = dophy::net::kInvalidNode;
  for (NodeId a = 1; a < 30 && from == dophy::net::kInvalidNode; ++a) {
    for (NodeId b = 1; b < 30; ++b) {
      if (a != b && net.find_link(a, b) == nullptr) {
        from = a;
        to = b;
        break;
      }
    }
  }
  ASSERT_NE(from, dophy::net::kInvalidNode) << "topology is a clique?";

  FaultPlan plan;
  plan.add_link_blackout(10.0, from, to, 20.0);
  FaultInjector injector(net, std::move(plan), 1);
  injector.arm();
  net.run_for(15.0);

  // Some real edge out of `from` must be blacked out.
  bool any = false;
  for (const NodeId n : net.topology().neighbors(from)) {
    any = any || net.link(from, n).blackout();
  }
  EXPECT_TRUE(any);
}

TEST(FaultInjector, ClockSkewSetsNodeFactor) {
  Network net(small_net());
  FaultPlan plan;
  plan.add_clock_skew(10.0, 7, 1.04);
  FaultInjector injector(net, std::move(plan), 1);
  injector.arm();
  net.run_for(15.0);
  EXPECT_DOUBLE_EQ(net.node(7).clock_factor(), 1.04);
  EXPECT_EQ(injector.stats().clock_skews, 1u);
}

/// Minimal measurement layer so delivered packets carry a non-empty blob
/// for the report-mutation windows to chew on.
class StubInstrumentation final : public dophy::net::PacketInstrumentation {
 public:
  void on_origin(Packet& packet, NodeId, SimTime) override {
    packet.blob.bytes = {0xAB, 0xCD, 0xEF, 0x12};
    packet.blob.logical_bits = 32;
  }
  void on_hop_received(Packet&, NodeId, NodeId, std::uint32_t, SimTime) override {}
};

TEST(FaultInjector, ReportDropWindowStripsEveryDeliveredBlob) {
  StubInstrumentation instr;
  Network net(small_net(), &instr);
  FaultPlan plan;
  plan.add_report_fault(0.0, FaultKind::kReportDrop, 1.0);  // open-ended window
  FaultInjector injector(net, std::move(plan), 1);
  injector.arm();

  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  net.set_delivery_handler([&](const Packet& packet, SimTime) {
    ++delivered;
    dropped += packet.blob.dropped ? 1 : 0;
    EXPECT_TRUE(packet.blob.bytes.empty());
  });
  net.run_for(300.0);
  ASSERT_GT(delivered, 100u);
  EXPECT_EQ(dropped, delivered);
  EXPECT_EQ(injector.stats().reports_dropped, delivered);
}

TEST(FaultInjector, TruncateWindowShortensBuffersButKeepsBitLength) {
  StubInstrumentation instr;
  Network net(small_net(), &instr);
  FaultPlan plan;
  plan.add_report_fault(0.0, FaultKind::kReportTruncate, 1.0);
  FaultInjector injector(net, std::move(plan), 1);
  injector.arm();

  std::uint64_t delivered = 0;
  net.set_delivery_handler([&](const Packet& packet, SimTime) {
    ++delivered;
    EXPECT_LT(packet.blob.bytes.size(), 4u);
    EXPECT_EQ(packet.blob.logical_bits, 32u);  // wire-truncation is detectable
  });
  net.run_for(300.0);
  ASSERT_GT(delivered, 100u);
  EXPECT_EQ(injector.stats().reports_truncated, delivered);
}

TEST(FaultInjector, EmitsTraceEventsAndIsDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    auto& tr = dophy::obs::EventTrace::global();
    std::vector<std::string> lines;
    tr.set_sink([&lines](std::string_view line) { lines.emplace_back(line); });
    tr.enable(dophy::obs::EventKind::kFaultInject);

    StubInstrumentation instr;
    Network net(small_net(seed), &instr);
    FaultPlanConfig cfg = storm_config();
    cfg.start_s = 0.0;
    cfg.horizon_s = 400.0;
    cfg.node_crashes_per_hour = 40.0;
    cfg.link_blackouts_per_hour = 40.0;
    FaultInjector injector(net, FaultPlan::generate(cfg, net.node_count()), seed);
    injector.arm();
    net.run_for(400.0);

    tr.disable_all();
    tr.close();
    struct Out {
      FaultStats stats;
      std::vector<std::string> lines;
      std::uint64_t delivered;
    };
    return Out{injector.stats(), std::move(lines), net.stats().packets_delivered};
  };

  const auto a = run_once(3);
  const auto b = run_once(3);
  EXPECT_GT(a.stats.events_executed, 0u);
  EXPECT_FALSE(a.lines.empty());
  EXPECT_NE(a.lines.front().find("fault_inject"), std::string::npos);
  // Bit-reproducible: same seeds, same chaos, same outcomes, same trace.
  EXPECT_EQ(a.stats.events_executed, b.stats.events_executed);
  EXPECT_EQ(a.stats.reports_mutated(), b.stats.reports_mutated());
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.lines, b.lines);
}

}  // namespace
}  // namespace dophy::fault
