// Injector scheduling tests against scripted (non-generated) plans: ordering
// of overlapping crash/reboot pairs, sequential sink-outage windows, exact
// counting of report corruption inside a bounded window, and the
// events-executed accounting contract (recoveries excluded).

#include "dophy/fault/fault_plan.hpp"
#include "dophy/fault/injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "dophy/net/network.hpp"

namespace dophy::fault {
namespace {

using dophy::net::kSecond;
using dophy::net::kSinkId;
using dophy::net::Network;
using dophy::net::NetworkConfig;
using dophy::net::NodeId;
using dophy::net::Packet;
using dophy::net::SimTime;

NetworkConfig small_net(std::uint64_t seed = 1) {
  NetworkConfig cfg;
  cfg.topology.node_count = 30;
  cfg.topology.field_size = 100.0;
  cfg.topology.comm_range = 40.0;
  cfg.traffic.data_interval_s = 5.0;
  cfg.traffic.start_delay_s = 20.0;
  cfg.seed = seed;
  return cfg;
}

TEST(FaultInjectorScript, OverlappingCrashesRebootInScriptedOrder) {
  Network net(small_net());
  FaultPlan plan;
  // Node 5 is down over [10, 50); node 6's crash nests inside it, [20, 30).
  plan.add_node_crash(10.0, 5, 40.0).add_node_crash(20.0, 6, 10.0);
  FaultInjector injector(net, std::move(plan), 1);
  injector.arm();

  net.run_for(15.0);  // t=15: only the outer crash has fired
  EXPECT_FALSE(net.node(5).alive());
  EXPECT_TRUE(net.node(6).alive());
  net.run_for(10.0);  // t=25: both down
  EXPECT_FALSE(net.node(5).alive());
  EXPECT_FALSE(net.node(6).alive());
  net.run_for(10.0);  // t=35: the nested crash rebooted first
  EXPECT_FALSE(net.node(5).alive());
  EXPECT_TRUE(net.node(6).alive());
  net.run_for(20.0);  // t=55: both back
  EXPECT_TRUE(net.node(5).alive());
  EXPECT_TRUE(net.node(6).alive());

  EXPECT_EQ(injector.stats().node_crashes, 2u);
  EXPECT_EQ(injector.stats().node_reboots, 2u);
  EXPECT_EQ(injector.stats().events_executed, 2u);
}

TEST(FaultInjectorScript, SequentialSinkOutageWindows) {
  Network net(small_net());
  FaultPlan plan;
  plan.add_sink_outage(10.0, 10.0).add_sink_outage(40.0, 10.0);
  FaultInjector injector(net, std::move(plan), 1);
  injector.arm();

  net.run_for(15.0);  // inside window 1
  EXPECT_FALSE(net.node(kSinkId).alive());
  net.run_for(10.0);  // t=25: between the windows
  EXPECT_TRUE(net.node(kSinkId).alive());
  net.run_for(20.0);  // t=45: inside window 2
  EXPECT_FALSE(net.node(kSinkId).alive());
  net.run_for(10.0);  // t=55: recovered for good
  EXPECT_TRUE(net.node(kSinkId).alive());

  EXPECT_EQ(injector.stats().sink_outages, 2u);
  EXPECT_EQ(injector.stats().events_executed, 2u);
}

TEST(FaultInjectorScript, EventsExecutedMatchesScriptedPlanSize) {
  Network net(small_net());
  const auto neighbors = net.topology().neighbors(1);
  ASSERT_FALSE(neighbors.empty());

  FaultPlan plan;
  plan.add_node_crash(10.0, 3, 20.0)
      .add_sink_outage(15.0, 5.0)
      .add_link_blackout(20.0, 1, neighbors[0], 10.0)
      .add_clock_skew(25.0, 7, 1.03);
  const std::size_t scripted = 4;
  FaultInjector injector(net, std::move(plan), 1);
  injector.arm();
  net.run_for(60.0);

  // Every scripted action fired exactly once; timed recoveries (reboot,
  // sink restore, blackout lift) are not counted as executed events.
  EXPECT_EQ(injector.stats().events_executed, scripted);
  EXPECT_EQ(injector.stats().node_crashes, 1u);
  EXPECT_EQ(injector.stats().node_reboots, 1u);
  EXPECT_EQ(injector.stats().sink_outages, 1u);
  EXPECT_EQ(injector.stats().link_blackouts, 1u);
  EXPECT_EQ(injector.stats().clock_skews, 1u);
}

/// Minimal measurement layer so delivered packets carry a non-empty blob
/// for the corruption window to chew on.
class StubInstrumentation final : public dophy::net::PacketInstrumentation {
 public:
  void on_origin(Packet& packet, NodeId, SimTime) override {
    packet.blob.bytes = {0xAB, 0xCD, 0xEF, 0x12};
    packet.blob.logical_bits = 32;
  }
  void on_hop_received(Packet&, NodeId, NodeId, std::uint32_t, SimTime) override {}
};

TEST(FaultInjectorScript, CorruptWindowCountsExactlyTheDeliveriesInside) {
  StubInstrumentation instr;
  Network net(small_net(), &instr);
  FaultPlan plan;
  // Corrupt every report delivered in [100 s, 200 s); exclusive upper edge.
  plan.add_report_fault(100.0, FaultKind::kReportCorrupt, 1.0, 100.0);
  FaultInjector injector(net, std::move(plan), 1);
  injector.arm();

  const std::vector<std::uint8_t> pristine = {0xAB, 0xCD, 0xEF, 0x12};
  const SimTime window_open = static_cast<SimTime>(100) * kSecond;
  const SimTime window_close = static_cast<SimTime>(200) * kSecond;
  std::uint64_t in_window = 0;
  std::uint64_t outside = 0;
  std::uint64_t mutated = 0;
  net.set_delivery_handler([&](const Packet& packet, SimTime now) {
    // Corruption flips bits in place: length and the logical bit count
    // survive either way.
    EXPECT_EQ(packet.blob.bytes.size(), pristine.size());
    EXPECT_EQ(packet.blob.logical_bits, 32u);
    const bool inside = now >= window_open && now < window_close;
    ++(inside ? in_window : outside);
    mutated += packet.blob.bytes != pristine ? 1u : 0u;
    if (!inside) {
      // Outside the window the blob must arrive untouched.
      EXPECT_EQ(packet.blob.bytes, pristine);
    }
  });
  net.run_for(300.0);

  ASSERT_GT(in_window, 50u);
  ASSERT_GT(outside, 50u);
  EXPECT_EQ(injector.stats().reports_corrupted, in_window);
  // An even number of flips can theoretically cancel out, so `mutated` may
  // fall a hair short of `in_window` — but never exceed it.
  EXPECT_LE(mutated, in_window);
  EXPECT_GT(mutated, in_window / 2);
  EXPECT_EQ(injector.stats().events_executed, 1u);
}

}  // namespace
}  // namespace dophy::fault
