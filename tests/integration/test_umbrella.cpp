// Compile-level test: the umbrella header must pull in the whole public API
// cleanly (this TU fails to build if any header breaks self-containment).

#include "dophy/dophy.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, PublicApiReachable) {
  // Touch one symbol from each subsystem so linkage is exercised too.
  dophy::common::Rng rng(1);
  EXPECT_GE(rng.next_double(), 0.0);

  dophy::coding::StaticModel model(4);
  EXPECT_EQ(model.symbol_count(), 4u);

  const auto cfg = dophy::eval::default_pipeline(25, 3);
  EXPECT_EQ(cfg.net.topology.node_count, 25u);

  const dophy::tomo::SymbolMapper mapper(cfg.dophy.censor_threshold);
  EXPECT_EQ(mapper.alphabet_size(), 4u);

  dophy::net::NetworkStats stats;
  EXPECT_EQ(dophy::net::estimate_energy(stats).total_mj(), 0.0);
}

}  // namespace
