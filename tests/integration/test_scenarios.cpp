// Scenario-preset and multi-trial-runner integration tests.

#include <gtest/gtest.h>

#include "dophy/eval/report.hpp"
#include "dophy/eval/runner.hpp"
#include "dophy/eval/scenario.hpp"

namespace dophy::eval {
namespace {

TEST(Scenario, DefaultPipelineShape) {
  const auto cfg = default_pipeline(100, 9);
  EXPECT_EQ(cfg.net.topology.node_count, 100u);
  EXPECT_GT(cfg.net.topology.field_size, 100.0);
  EXPECT_EQ(cfg.net.mac.max_attempts, 8u);
  EXPECT_EQ(cfg.dophy.censor_threshold, 4u);
}

TEST(Scenario, FieldScalesWithNodeCount) {
  const auto small = default_pipeline(50, 1);
  const auto large = default_pipeline(200, 1);
  // Constant density: field area grows linearly with node count.
  EXPECT_NEAR(large.net.topology.field_size / small.net.topology.field_size, 2.0, 0.05);
}

TEST(Scenario, SummaryScenariosDistinct) {
  const auto scenarios = summary_scenarios(40, 3);
  ASSERT_EQ(scenarios.size(), 6u);
  EXPECT_EQ(scenarios[0].name, "static");
  EXPECT_EQ(scenarios[0].config.net.loss.kind, dophy::net::LossConfig::Kind::kBernoulli);
  EXPECT_EQ(scenarios[1].config.net.loss.kind, dophy::net::LossConfig::Kind::kDrifting);
  EXPECT_GT(scenarios[1].config.net.loss.drift_shuffle_spread, 0.0);
  EXPECT_EQ(scenarios[2].config.net.loss.kind,
            dophy::net::LossConfig::Kind::kGilbertElliott);
  EXPECT_GT(scenarios[3].config.net.loss.drift_amplitude, 0.0);
  EXPECT_EQ(scenarios[4].name, "churn");
  EXPECT_TRUE(scenarios[4].config.net.churn.enabled);
  EXPECT_EQ(scenarios[5].name, "opportunistic");
  EXPECT_GT(scenarios[5].config.net.routing.opportunistic_fraction, 0.0);
}

TEST(Runner, AggregatesTrials) {
  auto cfg = default_pipeline(30, 0);
  cfg.warmup_s = 150.0;
  cfg.measure_s = 450.0;
  cfg.net.traffic.data_interval_s = 5.0;
  const auto result = run_trials(cfg, 3, /*base_seed=*/100);
  EXPECT_EQ(result.method("dophy").mae.count(), 3u);
  EXPECT_GT(result.bits_per_packet.mean(), 0.0);
  EXPECT_GT(result.delivery_ratio.mean(), 0.8);
  EXPECT_TRUE(result.runs.empty());
}

TEST(Runner, KeepRunsRetainsResults) {
  auto cfg = default_pipeline(25, 0);
  cfg.warmup_s = 100.0;
  cfg.measure_s = 300.0;
  cfg.run_baselines = false;
  const auto result = run_trials(cfg, 2, 7, /*keep_runs=*/true);
  EXPECT_EQ(result.runs.size(), 2u);
  EXPECT_THROW((void)result.method("nope"), std::out_of_range);
}

TEST(Runner, SeedsProduceDistinctTrials) {
  auto cfg = default_pipeline(25, 0);
  cfg.warmup_s = 100.0;
  cfg.measure_s = 300.0;
  cfg.run_baselines = false;
  const auto result = run_trials(cfg, 3, 50, true);
  // Different seeds -> different packet counts (with overwhelming probability).
  EXPECT_FALSE(result.runs[0].packets_measured == result.runs[1].packets_measured &&
               result.runs[1].packets_measured == result.runs[2].packets_measured);
}

TEST(Report, MethodComparisonPrints) {
  auto cfg = default_pipeline(25, 0);
  cfg.warmup_s = 100.0;
  cfg.measure_s = 300.0;
  const auto result = run_trials(cfg, 2, 11);
  std::ostringstream os;
  print_method_comparison(os, "test", result);
  const std::string out = os.str();
  EXPECT_NE(out.find("dophy"), std::string::npos);
  EXPECT_NE(out.find("em"), std::string::npos);
  EXPECT_NE(out.find("±"), std::string::npos);
}

TEST(Report, MethodOrderPrefersDophyFirst) {
  auto cfg = default_pipeline(25, 0);
  cfg.warmup_s = 100.0;
  cfg.measure_s = 300.0;
  const auto result = run_trials(cfg, 1, 13);
  const auto order = method_order(result);
  ASSERT_FALSE(order.empty());
  EXPECT_EQ(order.front(), "dophy");
}

TEST(Report, FormatCiHasUncertainty) {
  dophy::common::RunningStats s;
  s.add(1.0);
  EXPECT_EQ(format_ci(s, 2), "1.00");
  s.add(2.0);
  EXPECT_NE(format_ci(s, 2).find("±"), std::string::npos);
}

}  // namespace
}  // namespace dophy::eval
