// Perfetto exporter: a golden JSONL trace (one packet's full lifecycle plus
// a phase profile) must convert to well-formed Chrome-trace-event JSON —
// parseable, envelope fields on every event, async b/e pairs matched by id,
// and nothing from the source lines dropped.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>

#include "dophy/obs/json.hpp"
#include "dophy/obs/perfetto.hpp"
#include "dophy/obs/timer.hpp"

namespace dophy::obs {
namespace {

// One delivered packet as the instrumentation emits it: begin, one hop
// interval, decode instant, causal links, end, and the packet_fate event.
const char* const kGoldenTrace =
    R"({"ev":"span","t":100,"run":7,"op":"b","id":1,"kind":"pkt","origin":4,"seq":0})"
    "\n"
    R"({"ev":"span","t":150,"run":7,"op":"x","id":2,"kind":"hop","dur":50,"from":4,"to":2,"attempts":1,"ok":true})"
    "\n"
    R"({"ev":"span","t":150,"run":7,"op":"l","id":1,"to":2})"
    "\n"
    R"({"ev":"span","t":200,"run":7,"op":"i","id":3,"kind":"decode","origin":4,"hops":2})"
    "\n"
    R"({"ev":"span","t":200,"run":7,"op":"l","id":1,"to":3})"
    "\n"
    R"({"ev":"span","t":200,"run":7,"op":"e","id":1,"fate":"delivered","hops":2})"
    "\n"
    R"({"ev":"packet_fate","t":200,"run":7,"origin":4,"seq":0,"fate":"delivered","hops":2,"created":100})"
    "\n";

TEST(Perfetto, GoldenTraceExportsWellFormedTraceEventJson) {
  std::istringstream in(kGoldenTrace);
  std::ostringstream out;
  PhaseProfile phases;
  phases.add("warmup", 0.25);
  phases.add("measure", 1.0);

  // 7 source lines + 2 phase slices + 2 process_name metadata records
  // (run 7 and the synthetic pid-0 phase track).
  EXPECT_EQ(export_perfetto(in, out, &phases), 11u);

  const auto doc = parse_json(out.str());
  ASSERT_TRUE(doc.has_value()) << out.str();
  ASSERT_TRUE(doc->is_object());
  const auto* unit = doc->find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->string, "ms");

  const auto* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 11u);

  std::map<std::uint64_t, std::uint64_t> async_begins;  // id -> count
  std::map<std::uint64_t, std::uint64_t> async_ends;
  std::uint64_t slices = 0;
  std::uint64_t instants = 0;
  std::uint64_t metadata = 0;

  for (const auto& e : events->array) {
    ASSERT_TRUE(e.is_object());
    // Envelope every trace-event consumer requires.
    for (const char* key : {"ph", "name", "ts", "pid"}) {
      ASSERT_NE(e.find(key), nullptr) << "missing " << key;
    }
    ASSERT_TRUE(e.find("ph")->is_string());
    ASSERT_TRUE(e.find("ts")->is_number());
    ASSERT_TRUE(e.find("pid")->is_number());
    const std::string ph = e.find("ph")->string;
    if (ph == "b") {
      ++async_begins[static_cast<std::uint64_t>(e.find("id")->number)];
    } else if (ph == "e") {
      ++async_ends[static_cast<std::uint64_t>(e.find("id")->number)];
    } else if (ph == "X") {
      ++slices;
      ASSERT_NE(e.find("dur"), nullptr);
      EXPECT_TRUE(e.find("dur")->is_number());
    } else if (ph == "i") {
      ++instants;
      ASSERT_NE(e.find("s"), nullptr);  // scoped instants need "s"
    } else if (ph == "M") {
      ++metadata;
      EXPECT_EQ(e.find("name")->string, "process_name");
      ASSERT_NE(e.find("args"), nullptr);
      EXPECT_NE(e.find("args")->find("name"), nullptr);
    }
  }

  // Async begin/end pairs match by id, one end per begin.
  EXPECT_EQ(async_begins, async_ends);
  EXPECT_EQ(async_begins.size(), 1u);
  EXPECT_EQ(async_begins.count(1), 1u);
  EXPECT_EQ(slices, 3u);    // hop interval + two phase slices
  EXPECT_EQ(instants, 4u);  // decode + two links + packet_fate
  EXPECT_EQ(metadata, 2u);

  // The hop interval keeps its payload: tid = transmitting node, dur, and
  // the unconsumed fields moved into args.
  bool saw_hop = false;
  for (const auto& e : events->array) {
    if (e.find("name")->string != "hop") continue;
    saw_hop = true;
    EXPECT_DOUBLE_EQ(e.find("tid")->number, 4.0);
    EXPECT_DOUBLE_EQ(e.find("dur")->number, 50.0);
    const auto* args = e.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_NE(args->find("attempts"), nullptr);
    EXPECT_NE(args->find("ok"), nullptr);
  }
  EXPECT_TRUE(saw_hop);

  // The end event repeats the begin's name so viewers can pair them.
  for (const auto& e : events->array) {
    if (e.find("ph")->string == "e") EXPECT_EQ(e.find("name")->string, "pkt");
  }
}

TEST(Perfetto, SkipsGarbageLinesAndEmptyInput) {
  {
    std::istringstream in("not json\n\n{\"no_ev\":1}\n");
    std::ostringstream out;
    EXPECT_EQ(export_perfetto(in, out, nullptr), 0u);
    const auto doc = parse_json(out.str());
    ASSERT_TRUE(doc.has_value());
    EXPECT_TRUE(doc->find("traceEvents")->array.empty());
  }
  {
    std::istringstream in("");
    std::ostringstream out;
    EXPECT_EQ(export_perfetto(in, out, nullptr), 0u);
    ASSERT_TRUE(parse_json(out.str()).has_value());
  }
}

}  // namespace
}  // namespace dophy::obs
