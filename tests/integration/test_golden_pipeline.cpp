// Golden-trace regression tests: fixed-seed pipeline runs pinned to known
// results.  These are change detectors — any edit to the simulator, codec,
// decoder, or fault layer that shifts end-to-end behavior shows up here as a
// precise diff rather than a vague "accuracy got worse somewhere".
//
// Tolerances are deliberately loose (a few percent) so a compiler or libm
// swap does not trip them, while real regressions (delivery collapse, decode
// failures, accuracy loss, fault accounting drift) land far outside the band.
//
// To regenerate after an *intentional* behavior change:
//   DOPHY_GOLDEN_CAPTURE=1 ./test_integration --gtest_filter='Golden*'
// and paste the printed block over the golden constants below.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "dophy/common/thread_pool.hpp"
#include "dophy/eval/runner.hpp"
#include "dophy/eval/scenario.hpp"
#include "dophy/tomo/pipeline.hpp"

namespace dophy::tomo {
namespace {

constexpr std::uint64_t kGoldenSeed = 90;

PipelineConfig golden_config() {
  auto cfg = dophy::eval::default_pipeline(40, kGoldenSeed);
  cfg.warmup_s = 200.0;
  cfg.measure_s = 900.0;
  cfg.net.traffic.data_interval_s = 5.0;
  return cfg;
}

PipelineConfig faulted_config() {
  auto cfg = golden_config();
  dophy::eval::add_faults(cfg, 0.6);
  return cfg;
}

bool capture_mode() { return std::getenv("DOPHY_GOLDEN_CAPTURE") != nullptr; }

/// Checks `actual` against the pinned value within a relative band (plus a
/// small absolute floor for near-zero goldens).
void expect_close(double actual, double golden, double rel_tol, const char* what) {
  if (capture_mode()) {
    std::printf("  %-28s %.6f\n", what, actual);
    return;
  }
  const double tol = std::max(1e-4, rel_tol * std::abs(golden));
  EXPECT_NEAR(actual, golden, tol) << what;
}

void expect_count(std::uint64_t actual, double golden, double rel_tol, const char* what) {
  expect_close(static_cast<double>(actual), golden, rel_tol, what);
}

// --- Golden constants (captured with the recipe above) ----------------------

// Benign fixed-seed run: default 40-node pipeline, 900 s window.
constexpr double kGoldPacketsMeasured = 6810;
constexpr double kGoldDeliveryRatio = 0.970085;
constexpr double kGoldMeanBitsPerPacket = 47.609985;
constexpr double kGoldMeanPathLength = 6.949927;
constexpr double kGoldActiveLinks = 66;
constexpr double kGoldPacketsDecoded = 7470;
constexpr double kGoldDophyMae = 0.013158;
constexpr double kGoldDeliveryRatioMae = 0.224160;
constexpr double kGoldEmMae = 0.232305;

// Faulted run: same seed, add_faults(intensity=0.6).
constexpr double kGoldFaultEventsPlanned = 5;
constexpr double kGoldFaultEventsExecuted = 5;
constexpr double kGoldReportsMutated = 260;
constexpr double kGoldFaultDecodeFailures = 248;
constexpr double kGoldFaultDeliveryRatio = 0.964684;
constexpr double kGoldFaultDophyMae = 0.016145;

TEST(GoldenPipeline, BenignRunMatchesPinnedResults) {
  const auto result = run_pipeline(golden_config());
  if (capture_mode()) std::printf("golden: benign seed=%llu\n", (unsigned long long)kGoldenSeed);

  expect_count(result.packets_measured, kGoldPacketsMeasured, 0.03, "packets_measured");
  expect_close(result.delivery_ratio_in_window, kGoldDeliveryRatio, 0.02, "delivery_ratio");
  expect_close(result.mean_bits_per_packet, kGoldMeanBitsPerPacket, 0.05,
               "mean_bits_per_packet");
  expect_close(result.mean_path_length, kGoldMeanPathLength, 0.05, "mean_path_length");
  expect_count(result.active_links, kGoldActiveLinks, 0.05, "active_links");
  expect_count(result.decoder_stats.packets_decoded, kGoldPacketsDecoded, 0.03,
               "packets_decoded");
  expect_close(result.method("dophy").summary.mae, kGoldDophyMae, 0.25, "dophy_mae");
  expect_close(result.method("delivery-ratio").summary.mae, kGoldDeliveryRatioMae, 0.25,
               "delivery_ratio_mae");
  expect_close(result.method("em").summary.mae, kGoldEmMae, 0.25, "em_mae");

  // Structural invariants that hold regardless of the pinned numbers.
  EXPECT_EQ(result.decoder_stats.decode_failures, 0u);
  EXPECT_EQ(result.fault_stats.events_executed, 0u);
  EXPECT_EQ(result.fault_events_planned, 0u);
}

TEST(GoldenPipeline, FaultedRunMatchesPinnedResults) {
  const auto result = run_pipeline(faulted_config());
  if (capture_mode()) std::printf("golden: faulted seed=%llu\n", (unsigned long long)kGoldenSeed);

  expect_count(result.fault_events_planned, kGoldFaultEventsPlanned, 0.01,
               "fault_events_planned");
  expect_count(result.fault_stats.events_executed, kGoldFaultEventsExecuted, 0.05,
               "fault_events_executed");
  expect_count(result.fault_stats.reports_mutated(), kGoldReportsMutated, 0.15,
               "reports_mutated");
  expect_count(result.decoder_stats.decode_failures, kGoldFaultDecodeFailures, 0.15,
               "decode_failures");
  expect_close(result.delivery_ratio_in_window, kGoldFaultDeliveryRatio, 0.05,
               "delivery_ratio");
  expect_close(result.method("dophy").summary.mae, kGoldFaultDophyMae, 0.3, "dophy_mae");

  if (capture_mode()) return;
  // Every mutated report must be accounted for: either it decoded anyway
  // (corruption can land in dead bits) or it is a typed decode failure —
  // never a crash, never an unexplained disappearance.
  const auto& d = result.decoder_stats;
  EXPECT_EQ(d.decode_failures, d.reports_lost + d.unknown_model_version + d.unfinalized +
                                   d.path_truncated + d.wire_truncated + d.malformed_stream +
                                   d.invalid_hop + d.no_sink_terminal);
  EXPECT_GT(d.reports_lost, 0u);  // the drop window fired
  // Chaos degrades delivery below the benign run's level.
  EXPECT_LT(result.delivery_ratio_in_window, kGoldDeliveryRatio);
}

TEST(GoldenPipeline, MetricsSnapshotCarriesExpectedSchemaKeys) {
  // The --metrics-json surface: eval::run_trials aggregates the registry
  // delta; downstream tooling depends on these key names.
  auto cfg = faulted_config();
  cfg.measure_s = 400.0;
  cfg.run_baselines = false;
  const auto agg = dophy::eval::run_trials(cfg, 1, kGoldenSeed);

  for (const char* key :
       {"eval.trials", "sim.packets.generated", "sim.packets.delivered",
        "tomo.decode.ok", "fault.events", "fault.node.crashes", "fault.link.blackouts",
        "fault.report.dropped"}) {
    EXPECT_TRUE(agg.metrics.counters.count(key)) << "missing metrics key: " << key;
  }
  EXPECT_GT(agg.metrics.counters.at("fault.events"), 0u);
  // Decode failures under chaos surface in the aggregate too.
  EXPECT_GT(agg.decode_failure_rate.mean(), 0.0);
}

TEST(GoldenPipeline, FaultedRunIsBitReproducible) {
  // The acceptance bar for the fault subsystem: a fixed-seed faulted run is
  // exactly reproducible — same plan, same executions, same mutations, same
  // decode outcomes, same estimates.
  auto cfg = faulted_config();
  cfg.measure_s = 500.0;
  cfg.run_baselines = false;
  const auto a = run_pipeline(cfg);
  const auto b = run_pipeline(cfg);
  EXPECT_EQ(a.fault_events_planned, b.fault_events_planned);
  EXPECT_EQ(a.fault_stats.events_executed, b.fault_stats.events_executed);
  EXPECT_EQ(a.fault_stats.reports_mutated(), b.fault_stats.reports_mutated());
  EXPECT_EQ(a.decoder_stats.decode_failures, b.decoder_stats.decode_failures);
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_DOUBLE_EQ(a.method("dophy").summary.mae, b.method("dophy").summary.mae);
}

TEST(GoldenPipeline, FaultMetricsDeterministicAcrossPoolSizes) {
  // Scheduling must not touch fault accounting: the aggregated fault.*
  // counter delta from a faulted trial batch is identical whether trials run
  // serially or on a wide pool.
  auto cfg = faulted_config();
  cfg.measure_s = 400.0;
  cfg.run_baselines = false;
  dophy::common::ThreadPool serial(1);
  dophy::common::ThreadPool wide(3);
  const auto a = dophy::eval::run_trials(cfg, 3, 77, /*keep_runs=*/false, &serial);
  const auto b = dophy::eval::run_trials(cfg, 3, 77, /*keep_runs=*/false, &wide);
  EXPECT_EQ(a.metrics.counters, b.metrics.counters);
  EXPECT_GT(a.metrics.counters.at("fault.events"), 0u);
}

}  // namespace
}  // namespace dophy::tomo
