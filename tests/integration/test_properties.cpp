// Parameterized cross-module property sweeps: invariants that must hold for
// any seed / parameterization, run at small scale so the whole file stays
// fast.

#include <gtest/gtest.h>

#include "dophy/common/rng.hpp"
#include "dophy/eval/scenario.hpp"
#include "dophy/tomo/link_inference.hpp"
#include "dophy/tomo/pipeline.hpp"

namespace dophy::tomo {
namespace {

// --- Pipeline invariants across seeds ----------------------------------------

class PipelineSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineSeedSweep, CoreInvariantsHold) {
  auto cfg = dophy::eval::default_pipeline(35, GetParam());
  cfg.warmup_s = 200.0;
  cfg.measure_s = 700.0;
  cfg.net.traffic.data_interval_s = 5.0;
  const auto result = run_pipeline(cfg);

  // Invariant 1: ARQ keeps end-to-end delivery high.
  EXPECT_GT(result.delivery_ratio_in_window, 0.85);
  // Invariant 2: decoding is exact — no decode failures in id mode with the
  // abstract flood.
  EXPECT_EQ(result.decoder_stats.decode_failures, 0u);
  // Invariant 3: every estimate and truth is a probability.
  for (const auto& method : result.methods) {
    for (const auto& s : method.scores) {
      EXPECT_GE(s.estimated, 0.0);
      EXPECT_LE(s.estimated, 1.0);
      EXPECT_GE(s.truth, 0.0);
      EXPECT_LE(s.truth, 1.0);
    }
  }
  // Invariant 4: Dophy beats every baseline on MAE.
  const double dophy_mae = result.method("dophy").summary.mae;
  for (const auto& name : {"delivery-ratio", "nnls", "em"}) {
    const auto& summary = result.method(name).summary;
    if (summary.links_scored == 0) continue;
    EXPECT_LT(dophy_mae, summary.mae) << name << " seed " << GetParam();
  }
  // Invariant 5: overhead is bits-per-hop scale, not bytes.
  EXPECT_LT(result.encoder_stats.mean_bits_per_hop(), 14.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSeedSweep,
                         ::testing::Values(11u, 23u, 37u, 59u, 71u));

// --- Censored-MLE consistency grid ---------------------------------------------

struct MleCase {
  double loss;
  std::uint32_t k;
};

class CensoredMleGrid : public ::testing::TestWithParam<MleCase> {};

TEST_P(CensoredMleGrid, ConvergesToTruth) {
  const auto param = GetParam();
  dophy::common::Rng rng(777 + param.k);
  LinkLossEstimator est(param.k);
  for (int i = 0; i < 60000; ++i) {
    const std::uint32_t t = rng.geometric_trials(1.0 - param.loss);
    est.observe(dophy::net::LinkKey{1, 2},
                t >= param.k ? HopObservation{param.k, true} : HopObservation{t, false});
  }
  const auto e = est.estimate(dophy::net::LinkKey{1, 2});
  ASSERT_TRUE(e.has_value());
  EXPECT_NEAR(e->loss, param.loss, 0.015)
      << "p=" << param.loss << " K=" << param.k;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CensoredMleGrid,
    ::testing::Values(MleCase{0.05, 2}, MleCase{0.05, 4}, MleCase{0.05, 8},
                      MleCase{0.3, 2}, MleCase{0.3, 4}, MleCase{0.3, 8},
                      MleCase{0.6, 2}, MleCase{0.6, 4}, MleCase{0.6, 8},
                      MleCase{0.8, 3}, MleCase{0.8, 6}),
    [](const auto& suite_info) {
      return "p" + std::to_string(static_cast<int>(suite_info.param.loss * 100)) + "_K" +
             std::to_string(suite_info.param.k);
    });

// --- Aggregation-threshold invariance of the pipeline ----------------------------

class AggregationSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AggregationSweep, AccuracyRobustToK) {
  auto cfg = dophy::eval::default_pipeline(30, 99);
  cfg.dophy.censor_threshold = GetParam();
  cfg.warmup_s = 200.0;
  cfg.measure_s = 800.0;
  cfg.net.traffic.data_interval_s = 5.0;
  cfg.run_baselines = false;
  const auto result = run_pipeline(cfg);
  EXPECT_LT(result.method("dophy").summary.mae, 0.06) << "K=" << GetParam();
  EXPECT_GT(result.method("dophy").summary.spearman, 0.9) << "K=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Ks, AggregationSweep, ::testing::Values(2u, 3u, 4u, 6u, 8u));

// --- Fault-plan sweeps: chaos must degrade gracefully, never break invariants --

class FaultSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultSeedSweep, InvariantsHoldUnderChaos) {
  auto cfg = dophy::eval::default_pipeline(35, GetParam());
  cfg.warmup_s = 200.0;
  cfg.measure_s = 700.0;
  cfg.net.traffic.data_interval_s = 5.0;
  dophy::eval::add_faults(cfg, 1.0);  // full storm
  const auto result = run_pipeline(cfg);

  // Invariant 1: the storm actually happened and is fully accounted.
  EXPECT_GT(result.fault_stats.events_executed, 0u);
  EXPECT_LE(result.fault_stats.events_executed, result.fault_events_planned);
  // Invariant 2: no decode ever produced garbage — failures are typed and the
  // per-kind counters sum exactly to the total.
  const auto& d = result.decoder_stats;
  EXPECT_EQ(d.decode_failures, d.reports_lost + d.unknown_model_version + d.unfinalized +
                                   d.path_truncated + d.wire_truncated + d.malformed_stream +
                                   d.invalid_hop + d.no_sink_terminal);
  // Invariant 3: every surviving estimate is still a probability.
  for (const auto& method : result.methods) {
    for (const auto& s : method.scores) {
      EXPECT_GE(s.estimated, 0.0);
      EXPECT_LE(s.estimated, 1.0);
      EXPECT_GE(s.truth, 0.0);
      EXPECT_LE(s.truth, 1.0);
    }
  }
  // Invariant 4: accuracy degrades gracefully — Dophy loses samples to
  // mutated reports, not correctness on the paths it still decodes.
  EXPECT_LT(result.method("dophy").summary.mae, 0.12) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSeedSweep, ::testing::Values(5u, 17u, 43u));

TEST(FaultIntensitySweep, DeliveryDegradesMonotonically) {
  // At a fixed seed, cranking the chaos dial must not *improve* the network:
  // delivery at each intensity stays within a hair of the previous level or
  // below it (exact monotonicity is too strict — rerouting around a crashed
  // node can incidentally dodge a lossy link).
  double prev = 1.0;
  std::uint64_t prev_mutations = 0;
  for (const double intensity : {0.0, 0.5, 1.0}) {
    auto cfg = dophy::eval::default_pipeline(35, 7);
    cfg.warmup_s = 200.0;
    cfg.measure_s = 700.0;
    cfg.net.traffic.data_interval_s = 5.0;
    cfg.run_baselines = false;
    dophy::eval::add_faults(cfg, intensity);
    const auto result = run_pipeline(cfg);
    EXPECT_LT(result.delivery_ratio_in_window, prev + 0.02)
        << "delivery improved at intensity " << intensity;
    prev = result.delivery_ratio_in_window;
    // Report mutations scale with the dial (strictly, since probs scale).
    EXPECT_GE(result.fault_stats.reports_mutated(), prev_mutations);
    prev_mutations = result.fault_stats.reports_mutated();
    if (intensity == 0.0) {
      EXPECT_EQ(result.fault_events_planned, 0u);
    } else {
      EXPECT_GT(result.fault_events_planned, 0u);
    }
  }
}

}  // namespace
}  // namespace dophy::tomo
