// Span lifecycle integration: run the full pipeline with SpanTrace enabled
// and check the causal-span invariants on the emitted JSONL —
//
//   * every span end matches exactly one begin (no orphan or double ends),
//   * every finished packet's span is closed (begun pkt spans minus ended
//     pkt spans equals the packets still in flight at the simulation cutoff),
//   * every causal link references span ids that exist in the trace,
//   * all five span kinds from the packet -> decode -> model chain appear.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "dophy/eval/scenario.hpp"
#include "dophy/obs/json.hpp"
#include "dophy/obs/span.hpp"
#include "dophy/obs/trace.hpp"
#include "dophy/tomo/pipeline.hpp"

namespace dophy::obs {
namespace {

dophy::tomo::PipelineConfig tiny_config(std::uint64_t seed) {
  auto cfg = dophy::eval::default_pipeline(30, seed);
  cfg.warmup_s = 100.0;
  cfg.measure_s = 400.0;
  cfg.net.traffic.data_interval_s = 5.0;
  cfg.dophy.update.check_interval_s = 60.0;
  cfg.dophy.update.min_hop_samples = 100;
  cfg.run_baselines = false;
  return cfg;
}

TEST(SpanTrace, PipelineSpansPairAndLink) {
  auto& trace = EventTrace::global();
  std::vector<std::string> lines;
  std::mutex lines_mutex;
  trace.set_sink([&](std::string_view line) {
    const std::lock_guard<std::mutex> lock(lines_mutex);
    lines.emplace_back(line);
  });
  trace.enable(EventKind::kSpan);
  trace.enable(EventKind::kPacketFate);
  SpanTrace::global().set_enabled(true);

  (void)dophy::tomo::run_pipeline(tiny_config(33));

  SpanTrace::global().set_enabled(false);
  trace.disable_all();
  trace.set_sink(nullptr);  // flushes buffered lines to the old sink first

  std::map<std::uint64_t, std::string> begun;   // id -> kind (op "b")
  std::set<std::uint64_t> ended;                // op "e" ids
  std::set<std::uint64_t> all_ids;              // b/i/x ids, link targets
  std::vector<std::pair<std::uint64_t, std::uint64_t>> links;
  std::set<std::string> kinds;
  std::uint64_t packet_fates = 0;
  std::uint64_t double_ends = 0;

  for (const auto& line : lines) {
    const auto parsed = parse_flat_json_object(line);
    ASSERT_TRUE(parsed.has_value()) << "unparseable trace line: " << line;
    if (parsed->at("ev") == "packet_fate") {
      ++packet_fates;
      continue;
    }
    if (parsed->at("ev") != "span") continue;
    const std::string op = parsed->at("op");
    const std::uint64_t id = std::stoull(parsed->at("id"));
    if (op == "b") {
      kinds.insert(parsed->at("kind"));
      ASSERT_TRUE(begun.emplace(id, parsed->at("kind")).second)
          << "span id " << id << " begun twice";
      all_ids.insert(id);
    } else if (op == "e") {
      if (!ended.insert(id).second) ++double_ends;
    } else if (op == "i" || op == "x") {
      kinds.insert(parsed->at("kind"));
      all_ids.insert(id);
    } else if (op == "l") {
      links.emplace_back(id, std::stoull(parsed->at("to")));
    }
  }

  ASSERT_FALSE(begun.empty());
  EXPECT_EQ(double_ends, 0u);

  // Every end matches a begin.
  for (const std::uint64_t id : ended) {
    EXPECT_TRUE(begun.count(id)) << "span id " << id << " ended but never begun";
  }

  // Every finished packet closes its span: the pkt spans left open are
  // exactly the packets still in flight at the simulation cutoff.
  std::uint64_t pkt_begun = 0;
  std::uint64_t pkt_ended = 0;
  std::uint64_t window_begun = 0;
  std::uint64_t window_ended = 0;
  for (const auto& [id, kind] : begun) {
    if (kind == "pkt") {
      ++pkt_begun;
      if (ended.count(id)) ++pkt_ended;
    } else if (kind == "model_window") {
      ++window_begun;
      if (ended.count(id)) ++window_ended;
    }
  }
  ASSERT_GT(packet_fates, 0u);
  EXPECT_EQ(pkt_ended, packet_fates);
  EXPECT_GE(pkt_begun, pkt_ended);
  // At most the cutoff-open model window is unclosed.
  EXPECT_LE(window_begun - window_ended, 1u);
  EXPECT_GT(window_begun, 0u);

  // Links resolve: both endpoints name span ids that exist in the trace.
  ASSERT_FALSE(links.empty());
  for (const auto& [from, to] : links) {
    EXPECT_TRUE(all_ids.count(from)) << "link from unknown span " << from;
    EXPECT_TRUE(all_ids.count(to)) << "link to unknown span " << to;
  }

  // The full causal chain is present.
  for (const char* kind : {"pkt", "hop", "decode", "model_window", "model_update"}) {
    EXPECT_TRUE(kinds.count(kind)) << "missing span kind " << kind;
  }
}

TEST(SpanTrace, DisabledSpansLeaveNoRecordsAndZeroIds) {
  auto& trace = EventTrace::global();
  std::vector<std::string> lines;
  std::mutex lines_mutex;
  trace.set_sink([&](std::string_view line) {
    const std::lock_guard<std::mutex> lock(lines_mutex);
    lines.emplace_back(line);
  });
  trace.enable(EventKind::kSpan);
  ASSERT_FALSE(SpanTrace::global().enabled());

  (void)dophy::tomo::run_pipeline(tiny_config(34));

  trace.disable_all();
  trace.set_sink(nullptr);

  // Only kSpan was enabled and SpanTrace was off, so nothing at all is
  // emitted — the disabled path is one relaxed load + branch per call site.
  EXPECT_TRUE(lines.empty());
}

}  // namespace
}  // namespace dophy::obs
