// Full-pipeline integration tests: network + in-packet encoding + sink
// decoding + inference + baselines, scored against simulator ground truth.
// Scenarios are kept small so the whole file runs in a few seconds.

#include <gtest/gtest.h>

#include "dophy/eval/scenario.hpp"
#include "dophy/tomo/dophy_decoder.hpp"
#include "dophy/tomo/dophy_encoder.hpp"
#include "dophy/tomo/pipeline.hpp"

namespace dophy::tomo {
namespace {

PipelineConfig small_config(std::uint64_t seed) {
  auto cfg = dophy::eval::default_pipeline(40, seed);
  cfg.warmup_s = 200.0;
  cfg.measure_s = 900.0;
  cfg.net.traffic.data_interval_s = 5.0;
  return cfg;
}

TEST(Pipeline, DophyAccurateOnStaticNetwork) {
  const auto result = run_pipeline(small_config(1));
  const auto& dophy = result.method("dophy").summary;
  EXPECT_GT(result.packets_measured, 3000u);
  EXPECT_GT(result.active_links, 30u);
  EXPECT_LT(dophy.mae, 0.03);
  EXPECT_GT(dophy.spearman, 0.9);
  EXPECT_GT(dophy.coverage, 0.8);
}

TEST(Pipeline, DophyBeatsAllBaselines) {
  const auto result = run_pipeline(small_config(2));
  const double dophy_mae = result.method("dophy").summary.mae;
  for (const auto& name : {"delivery-ratio", "nnls", "em"}) {
    EXPECT_LT(dophy_mae * 3.0, result.method(name).summary.mae)
        << "baseline " << name << " unexpectedly competitive";
  }
}

TEST(Pipeline, DophyRobustUnderDynamics) {
  auto cfg = small_config(3);
  dophy::eval::add_dynamics(cfg, 200.0, 0.15);
  const auto result = run_pipeline(cfg);
  EXPECT_GT(result.parent_changes_in_window, 50u);  // routing actually churned
  EXPECT_LT(result.method("dophy").summary.mae, 0.05);
  EXPECT_GT(result.method("dophy").summary.spearman, 0.85);
}

TEST(Pipeline, DecodeFailuresRare) {
  const auto result = run_pipeline(small_config(4));
  const auto& d = result.decoder_stats;
  EXPECT_GT(d.packets_decoded, 1000u);
  EXPECT_LT(static_cast<double>(d.decode_failures),
            0.01 * static_cast<double>(d.packets_decoded));
}

TEST(Pipeline, OverheadIsAFewBitsPerHop) {
  const auto result = run_pipeline(small_config(5));
  const double bits_per_hop = result.encoder_stats.mean_bits_per_hop();
  EXPECT_GT(bits_per_hop, 1.0);
  EXPECT_LT(bits_per_hop, 12.0);  // well under the naive 6-bit id + 3-bit count
  EXPECT_GT(result.mean_bits_per_packet, 0.0);
}

TEST(Pipeline, ModelUpdatesReduceEncodingCost) {
  auto with_updates = small_config(6);
  with_updates.dophy.update.policy = ModelUpdateConfig::Policy::kPeriodic;

  auto without_updates = small_config(6);
  without_updates.dophy.update.policy = ModelUpdateConfig::Policy::kStatic;

  const auto updated = run_pipeline(with_updates);
  const auto frozen = run_pipeline(without_updates);
  EXPECT_GT(updated.manager_stats.updates_published, 0u);
  EXPECT_EQ(frozen.manager_stats.updates_published, 0u);
  EXPECT_LT(updated.mean_bits_per_packet, frozen.mean_bits_per_packet * 0.9);
}

TEST(Pipeline, DeterministicForSeed) {
  const auto a = run_pipeline(small_config(7));
  const auto b = run_pipeline(small_config(7));
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_DOUBLE_EQ(a.method("dophy").summary.mae, b.method("dophy").summary.mae);
  EXPECT_DOUBLE_EQ(a.mean_bits_per_packet, b.mean_bits_per_packet);
}

TEST(Pipeline, BaselinesCanBeDisabled) {
  auto cfg = small_config(8);
  cfg.run_baselines = false;
  cfg.measure_s = 300.0;
  const auto result = run_pipeline(cfg);
  EXPECT_EQ(result.methods.size(), 1u);
  EXPECT_THROW((void)result.method("em"), std::out_of_range);
}

TEST(Pipeline, AggregationThresholdTradesOverheadForNothingMuch) {
  // K=2 (1-bit symbols + censoring) must cost fewer bits than K=8 while the
  // censored MLE keeps accuracy in the same ballpark.
  auto k2 = small_config(9);
  k2.dophy.censor_threshold = 2;
  auto k8 = small_config(9);
  k8.dophy.censor_threshold = 8;
  const auto r2 = run_pipeline(k2);
  const auto r8 = run_pipeline(k8);
  EXPECT_LT(r2.encoder_stats.mean_bits_per_hop(), r8.encoder_stats.mean_bits_per_hop());
  EXPECT_LT(r2.method("dophy").summary.mae, 0.06);
}

TEST(Pipeline, GroundTruthWindowingSane) {
  const auto result = run_pipeline(small_config(10));
  for (const auto& s : result.method("dophy").scores) {
    EXPECT_GE(s.truth, 0.0);
    EXPECT_LE(s.truth, 1.0);
    EXPECT_GE(s.estimated, 0.0);
    EXPECT_LE(s.estimated, 1.0);
    EXPECT_GE(s.truth_attempts, 30u);  // min_truth_attempts enforced
  }
}

TEST(Pipeline, SurvivesNodeChurn) {
  auto cfg = small_config(12);
  dophy::eval::add_churn(cfg, /*fraction=*/0.3, /*up_s=*/300.0, /*down_s=*/60.0);
  const auto result = run_pipeline(cfg);
  EXPECT_GT(result.net_stats.node_failures, 3u);
  // Paths route around dead nodes; decoded paths stay exact, so accuracy
  // holds on the links that carried traffic.
  EXPECT_LT(result.method("dophy").summary.mae, 0.06);
  EXPECT_GT(result.method("dophy").summary.spearman, 0.85);
}

TEST(Pipeline, BayesianPriorVariantRuns) {
  auto cfg = small_config(13);
  cfg.dophy.prior_successes = 2.0;
  cfg.dophy.prior_failures = 0.4;
  cfg.measure_s = 600.0;
  cfg.run_baselines = false;
  const auto result = run_pipeline(cfg);
  EXPECT_LT(result.method("dophy").summary.mae, 0.05);
}

TEST(Pipeline, LatencyTracked) {
  auto cfg = small_config(14);
  cfg.measure_s = 600.0;
  cfg.run_baselines = false;
  // run_pipeline owns the network; verify via packets measured + sane means
  // from a direct network run instead.
  dophy::net::Network net(cfg.net);
  net.run_for(600.0);
  EXPECT_GT(net.traces().latency().count(), 100u);
  EXPECT_GT(net.traces().latency().mean(), 0.0);
  EXPECT_LT(net.traces().latency().mean(), 10.0);  // seconds
  EXPECT_GE(net.traces().hop_count().mean(), 1.0);
}

TEST(Pipeline, AccurateUnderOpportunisticForwarding) {
  // Per-packet forwarder randomization is the extreme of "dynamic path
  // selection" — consecutive packets from one origin take different routes.
  // Dophy decodes each packet's actual path, so accuracy must hold (and
  // coverage even improves: more links carry traffic).
  auto cfg = small_config(16);
  dophy::eval::add_opportunism(cfg, 0.4);
  const auto result = run_pipeline(cfg);
  EXPECT_LT(result.method("dophy").summary.mae, 0.04);
  EXPECT_GT(result.method("dophy").summary.spearman, 0.9);
  EXPECT_GT(result.active_links, 40u);  // traffic spread over more links
  const double dophy_mae = result.method("dophy").summary.mae;
  EXPECT_LT(dophy_mae * 3.0, result.method("em").summary.mae);
}

TEST(Pipeline, HashPathModeWorksOnSmallNetworks) {
  auto cfg = small_config(15);
  cfg.dophy.path_mode = PathMode::kHashPath;
  cfg.measure_s = 600.0;
  cfg.run_baselines = false;
  const auto result = run_pipeline(cfg);
  EXPECT_GT(result.decoder_stats.packets_decoded, 500u);
  // On a 40-node network nearly every packet resolves and accuracy matches
  // id-coding territory.
  EXPECT_LT(result.method("dophy").summary.mae, 0.06);
  EXPECT_GT(result.hash_candidates_per_packet, 0.0);
}

TEST(Pipeline, DecodedPathsExactlyMatchGroundTruth) {
  // The core exactness property, end to end: for every delivered packet the
  // sink's decoded (path, counts) must equal the simulator's ground truth —
  // across a real run with dynamics, not hand-built hops.
  auto cfg = small_config(17);
  dophy::eval::add_dynamics(cfg, 200.0, 0.15);
  cfg.measure_s = 600.0;

  const dophy::tomo::SymbolMapper mapper(cfg.dophy.censor_threshold);
  DophyInstrumentation instr(cfg.net.topology.node_count, mapper);
  dophy::net::Network net(cfg.net, &instr);
  DophyDecoder decoder(instr.store(dophy::net::kSinkId), mapper);

  std::uint64_t checked = 0;
  net.set_delivery_handler([&](const dophy::net::Packet& packet, dophy::net::SimTime) {
    const auto decoded = decoder.decode(packet);
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(decoded->hops.size(), packet.true_hops.size());
    for (std::size_t i = 0; i < packet.true_hops.size(); ++i) {
      const auto& truth = packet.true_hops[i];
      const auto& got = decoded->hops[i];
      ASSERT_EQ(got.sender, truth.sender);
      ASSERT_EQ(got.receiver, truth.receiver);
      const auto expected_attempts =
          std::min(truth.attempts_to_first_rx, cfg.dophy.censor_threshold);
      ASSERT_EQ(got.observation.attempts, expected_attempts);
      ASSERT_EQ(got.observation.censored,
                truth.attempts_to_first_rx >= cfg.dophy.censor_threshold);
    }
    ++checked;
  });
  net.run_for(900.0);
  EXPECT_GT(checked, 2000u);
}

TEST(Pipeline, PayloadBudgetDropsOnlyLongPaths) {
  auto cfg = small_config(18);
  cfg.dophy.max_wire_bytes = 24;  // tight: deep paths will truncate
  cfg.measure_s = 600.0;
  cfg.run_baselines = false;
  const auto result = run_pipeline(cfg);
  // Some samples lost to the budget, but what decodes is still accurate.
  EXPECT_GT(result.encoder_stats.truncated_hops, 0u);
  EXPECT_GT(result.packets_measured, 500u);
  EXPECT_LT(result.method("dophy").summary.mae, 0.05);
}

TEST(Pipeline, TruthTailScoringFavorsTrackerUnderShift) {
  // With re-randomizing link qualities and recent-truth scoring, a tracking
  // estimator must beat the cumulative MLE; with whole-window truth the
  // ordering flips (the cumulative estimator matches the window average).
  auto make = [](double decay, double tail) {
    auto cfg = dophy::eval::default_pipeline(35, 44);
    dophy::eval::add_dynamics(cfg, 250.0, 0.25);
    cfg.warmup_s = 200.0;
    cfg.measure_s = 1000.0;
    cfg.net.traffic.data_interval_s = 5.0;
    cfg.dophy.tracker_decay = decay;
    cfg.truth_tail_fraction = tail;
    cfg.run_baselines = false;
    return run_pipeline(cfg).method("dophy").summary.mae;
  };
  const double cumulative_recent = make(1.0, 0.25);
  const double tracker_recent = make(0.6, 0.25);
  EXPECT_LT(tracker_recent, cumulative_recent);
}

TEST(Pipeline, EpochSeriesTracksConvergence) {
  auto cfg = small_config(19);
  cfg.measure_s = 600.0;
  cfg.snapshot_interval_s = 60.0;
  cfg.collect_epoch_series = true;
  cfg.run_baselines = false;
  const auto result = run_pipeline(cfg);
  ASSERT_GE(result.epoch_series.size(), 8u);
  // Time strictly increases; packets and scored links are non-decreasing.
  for (std::size_t i = 1; i < result.epoch_series.size(); ++i) {
    EXPECT_GT(result.epoch_series[i].t_s, result.epoch_series[i - 1].t_s);
    EXPECT_GE(result.epoch_series[i].packets, result.epoch_series[i - 1].packets);
  }
  EXPECT_GE(result.epoch_series.back().links_scored, 20u);
  // The last point's error is in the converged regime.
  EXPECT_LT(result.epoch_series.back().mae, 0.05);
  // Disabled by default.
  auto plain = small_config(19);
  plain.measure_s = 300.0;
  plain.run_baselines = false;
  EXPECT_TRUE(run_pipeline(plain).epoch_series.empty());
}

TEST(Pipeline, EndToEndDeliveryStaysHigh) {
  const auto result = run_pipeline(small_config(11));
  // ARQ keeps end-to-end delivery high — exactly why e2e tomography starves.
  EXPECT_GT(result.delivery_ratio_in_window, 0.9);
}

}  // namespace
}  // namespace dophy::tomo
