// Observability integration: the pipeline's structured event trace, the
// deterministic metric aggregation of eval::run_trials across different
// thread-pool sizes, and the machine-readable run report.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "dophy/common/thread_pool.hpp"
#include "dophy/eval/runner.hpp"
#include "dophy/eval/scenario.hpp"
#include "dophy/obs/report.hpp"
#include "dophy/obs/trace.hpp"
#include "dophy/tomo/pipeline.hpp"

namespace dophy::obs {
namespace {

dophy::tomo::PipelineConfig tiny_config(std::uint64_t seed) {
  auto cfg = dophy::eval::default_pipeline(30, seed);
  cfg.warmup_s = 100.0;
  cfg.measure_s = 400.0;
  cfg.net.traffic.data_interval_s = 5.0;
  cfg.dophy.update.check_interval_s = 60.0;
  cfg.dophy.update.min_hop_samples = 100;
  cfg.run_baselines = false;
  return cfg;
}

TEST(ObsReport, RunTrialsMetricsDeterministicAcrossPoolSizes) {
  const auto cfg = tiny_config(10);
  dophy::common::ThreadPool serial(1);
  dophy::common::ThreadPool wide(3);

  const auto a = dophy::eval::run_trials(cfg, 3, 99, /*keep_runs=*/false, &serial);
  const auto b = dophy::eval::run_trials(cfg, 3, 99, /*keep_runs=*/false, &wide);

  // Counters and histograms in the batch delta are sums of per-trial
  // (seed-determined) increments, so scheduling must not change them.
  EXPECT_EQ(a.metrics.counters, b.metrics.counters);
  EXPECT_EQ(a.metrics.histograms, b.metrics.histograms);

  EXPECT_EQ(a.metrics.counters.at("eval.trials"), 3u);
  EXPECT_GT(a.metrics.counters.at("sim.packets.generated"), 0u);
  EXPECT_GT(a.metrics.counters.at("sim.packets.delivered"), 0u);
  EXPECT_GT(a.metrics.counters.at("tomo.model.updates"), 0u);
  EXPECT_GT(a.metrics.histograms.at("sim.path.hops").total, 0u);

  // The log2 latency histograms participate in the same deterministic delta
  // (they are sim-time derived, so identical across pool sizes via the
  // EXPECT_EQ above) and must actually collect samples.
  EXPECT_GT(a.metrics.histograms.at("sim.e2e.latency_us").total, 0u);
  EXPECT_GT(a.metrics.histograms.at("sim.hop.retry_delay_us").total, 0u);
  EXPECT_GT(a.metrics.histograms.at("tomo.decode.latency_us").total, 0u);
  // And their quantiles are sane: p99 never below p50.
  const auto& e2e = a.metrics.histograms.at("sim.e2e.latency_us");
  EXPECT_GE(e2e.quantile(0.99), e2e.quantile(0.5));
  EXPECT_GT(e2e.quantile(0.5), 0.0);

  // Phase wall-clock timings exist per trial even though they are (rightly)
  // not part of the deterministic registry.
  EXPECT_EQ(a.phase_seconds.at("warmup").count(), 3u);
  EXPECT_EQ(a.phase_seconds.at("measure").count(), 3u);
}

TEST(ObsReport, PipelineTraceProducesParseableJsonl) {
  auto& trace = EventTrace::global();
  std::vector<std::string> lines;
  std::mutex lines_mutex;
  trace.set_sink([&](std::string_view line) {
    const std::lock_guard<std::mutex> lock(lines_mutex);
    lines.emplace_back(line);
  });
  trace.enable_all();

  const std::uint64_t seed = 21;
  const auto result = dophy::tomo::run_pipeline(tiny_config(seed));

  trace.disable_all();
  trace.set_sink(nullptr);

  ASSERT_FALSE(lines.empty());
  std::set<std::string> kinds;
  for (const auto& line : lines) {
    const auto parsed = parse_flat_json_object(line);
    ASSERT_TRUE(parsed.has_value()) << "unparseable trace line: " << line;
    ASSERT_TRUE(parsed->count("ev"));
    ASSERT_TRUE(parsed->count("t"));
    ASSERT_TRUE(parsed->count("run"));
    EXPECT_EQ(parsed->at("run"), std::to_string(seed));
    kinds.insert(parsed->at("ev"));
  }
  EXPECT_TRUE(kinds.count("packet_fate"));
  EXPECT_TRUE(kinds.count("parent_change"));
  EXPECT_TRUE(kinds.count("model_update"));

  // The pipeline also reports where its wall time went.
  EXPECT_TRUE(result.phase_seconds.count("warmup"));
  EXPECT_TRUE(result.phase_seconds.count("measure"));
  EXPECT_TRUE(result.phase_seconds.count("decode"));
  EXPECT_TRUE(result.phase_seconds.count("score"));
}

TEST(ObsReport, TraceFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "dophy_trace_test.jsonl";
  auto& trace = EventTrace::global();
  ASSERT_TRUE(trace.open_file(path));
  trace.enable(EventKind::kModelUpdate);
  trace.event(EventKind::kModelUpdate, 42).u64("version", 1);
  trace.disable_all();
  trace.close();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const auto parsed = parse_flat_json_object(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at("ev"), "model_update");
  EXPECT_EQ(parsed->at("version"), "1");
  std::remove(path.c_str());
}

TEST(ObsReport, RunReportWritesSchemaStableJson) {
  RunReport report;
  report.bench = "test_bench";
  report.title = "A \"quoted\" title";
  report.config["trials"] = "3";
  TableSection section;
  section.title = "t";
  section.columns = {"a", "b"};
  section.rows = {{"1", "2"}, {"3", "4"}};
  report.tables.push_back(section);
  report.phase_seconds["warmup"] = 1.25;
  report.metrics.counters["c"] = 7;

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"bench\":\"test_bench\""), std::string::npos);
  EXPECT_NE(json.find("\"A \\\"quoted\\\" title\""), std::string::npos);
  EXPECT_NE(json.find("\"git\":"), std::string::npos);
  EXPECT_NE(json.find("\"warmup\":1.25"), std::string::npos);
  EXPECT_NE(json.find("\"c\":7"), std::string::npos);
  EXPECT_NE(json.find("[\"1\",\"2\"]"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');

  const std::string path = ::testing::TempDir() + "dophy_report_test.json";
  ASSERT_TRUE(write_report_file(report, path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), json + "\n");
  std::remove(path.c_str());

  EXPECT_FALSE(git_describe().empty());
}

}  // namespace
}  // namespace dophy::obs
