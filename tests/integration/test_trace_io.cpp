#include "dophy/eval/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "dophy/eval/scenario.hpp"
#include "dophy/net/network.hpp"

namespace dophy::eval {
namespace {

using dophy::net::PacketFate;
using dophy::net::PacketOutcome;

std::vector<PacketOutcome> simulated_outcomes(std::uint64_t seed) {
  auto cfg = default_pipeline(30, seed);
  dophy::net::Network net(cfg.net);
  net.run_for(400.0);
  return net.traces().outcomes();
}

TEST(TraceIo, RoundTripPreservesRecords) {
  const auto outcomes = simulated_outcomes(1);
  ASSERT_GT(outcomes.size(), 500u);

  std::stringstream buffer;
  EXPECT_EQ(write_trace(buffer, outcomes), outcomes.size());
  const auto back = read_trace(buffer);
  ASSERT_EQ(back.size(), outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(back[i].packet.origin, outcomes[i].packet.origin);
    EXPECT_EQ(back[i].packet.seq, outcomes[i].packet.seq);
    EXPECT_EQ(back[i].packet.created_at, outcomes[i].packet.created_at);
    EXPECT_EQ(back[i].finished_at, outcomes[i].finished_at);
    EXPECT_EQ(back[i].fate, outcomes[i].fate);
    ASSERT_EQ(back[i].packet.true_hops.size(), outcomes[i].packet.true_hops.size());
    for (std::size_t h = 0; h < outcomes[i].packet.true_hops.size(); ++h) {
      EXPECT_EQ(back[i].packet.true_hops[h].sender,
                outcomes[i].packet.true_hops[h].sender);
      EXPECT_EQ(back[i].packet.true_hops[h].receiver,
                outcomes[i].packet.true_hops[h].receiver);
      EXPECT_EQ(back[i].packet.true_hops[h].attempts_to_first_rx,
                outcomes[i].packet.true_hops[h].attempts_to_first_rx);
    }
  }
}

TEST(TraceIo, OfflineEstimatesMatchLiveData) {
  const auto outcomes = simulated_outcomes(2);
  std::stringstream buffer;
  (void)write_trace(buffer, outcomes);
  const auto back = read_trace(buffer);

  const auto live = offline_link_estimates(outcomes, 4);
  const auto offline = offline_link_estimates(back, 4);
  ASSERT_EQ(live.size(), offline.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i].first, offline[i].first);
    EXPECT_DOUBLE_EQ(live[i].second, offline[i].second);
  }
  EXPECT_GT(live.size(), 20u);
}

TEST(TraceIo, MalformedInputThrows) {
  std::stringstream bad1("1,2,3\n");
  EXPECT_THROW((void)read_trace(bad1), std::runtime_error);
  std::stringstream bad2("1,2,3,4,nonsense,\n");
  EXPECT_THROW((void)read_trace(bad2), std::runtime_error);
  std::stringstream bad3("1,2,3,4,delivered,brokenhop\n");
  EXPECT_THROW((void)read_trace(bad3), std::runtime_error);
}

TEST(TraceIo, EmptyAndCommentsSkipped) {
  std::stringstream buffer("# header\n\n# more\n");
  EXPECT_TRUE(read_trace(buffer).empty());
}

TEST(TraceIo, DroppedPacketsExcludedFromEstimates) {
  PacketOutcome dropped;
  dropped.fate = PacketFate::kDroppedRetries;
  dropped.packet.true_hops.push_back({1, 2, 3, 3, 0});
  const auto est = offline_link_estimates({dropped}, 4);
  EXPECT_TRUE(est.empty());
}

}  // namespace
}  // namespace dophy::eval
