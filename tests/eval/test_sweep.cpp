// Integration tests for the sweep engine, run against a synthetic (cheap)
// experiment: cold/warm cache behavior, --force, shard union/disjointness,
// and resume-after-kill (a deleted cache entry recomputes exactly one cell).

#include "dophy/eval/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <set>
#include <sstream>
#include <string>

#include "dophy/eval/cache.hpp"
#include "dophy/eval/experiment.hpp"

namespace {

using dophy::eval::Cell;
using dophy::eval::ExperimentRun;
using dophy::eval::ExperimentSpec;
using dophy::eval::ResultCache;
using dophy::eval::SweepContext;
using dophy::eval::SweepOptions;

std::atomic<int>& compute_count() {
  static std::atomic<int> count{0};
  return count;
}

/// A 6-cell synthetic experiment whose compute is deterministic in the cell
/// label and counts invocations.
ExperimentSpec synthetic_spec() {
  ExperimentSpec spec;
  spec.id = "synthetic";
  spec.figure = "S1";
  spec.claim = "test fixture";
  spec.axes = "k in {0..5}";
  spec.title = "synthetic sweep";
  spec.output_stem = "synthetic_out";
  spec.default_trials = 2;
  spec.default_nodes = 10;
  spec.columns = {"k", "twice"};
  spec.expected = "\nExpected shape: monotone.\n";
  spec.make_cells = [](const SweepContext& ctx) {
    std::vector<Cell> cells;
    for (int k = 0; k < 6; ++k) {
      Cell cell;
      cell.label = "k=" + std::to_string(k);
      cell.key.set("experiment", "synthetic")
          .set("cell", cell.label)
          .set("k", k)
          .set("trials", static_cast<std::uint64_t>(ctx.trials))
          .set("quick", ctx.quick);
      cell.compute = [k](const dophy::eval::CellContext&) {
        compute_count().fetch_add(1);
        dophy::eval::RowSet rows;
        rows.row().cell(k).cell(2 * k);
        return rows;
      };
      cells.push_back(std::move(cell));
    }
    return cells;
  };
  return spec;
}

std::string fresh_dir(const std::string& tag) {
  const auto dir = std::filesystem::path(testing::TempDir()) / ("dophy-sweep-" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

std::vector<std::vector<std::string>> expected_rows() {
  std::vector<std::vector<std::string>> rows;
  for (int k = 0; k < 6; ++k) rows.push_back({std::to_string(k), std::to_string(2 * k)});
  return rows;
}

TEST(Sweep, UncachedComputesEveryCellInGridOrder) {
  const auto spec = synthetic_spec();
  compute_count().store(0);
  const auto run = dophy::eval::run_experiment(spec, SweepOptions{});
  EXPECT_EQ(compute_count().load(), 6);
  EXPECT_EQ(run.cells_total, 6u);
  EXPECT_EQ(run.cells_owned, 6u);
  EXPECT_EQ(run.cells_computed, 6u);
  EXPECT_EQ(run.cache_hits, 0u);
  EXPECT_EQ(run.rows, expected_rows());
  EXPECT_NE(run.spec_hash, 0u);
}

TEST(Sweep, WarmRunIsAllHitsAndIdentical) {
  const auto spec = synthetic_spec();
  ResultCache cache(fresh_dir("warm"), "v1");
  SweepOptions opts;
  opts.cache = &cache;

  compute_count().store(0);
  const auto cold = dophy::eval::run_experiment(spec, opts);
  EXPECT_EQ(cold.cells_computed, 6u);
  EXPECT_EQ(compute_count().load(), 6);

  const auto warm = dophy::eval::run_experiment(spec, opts);
  EXPECT_EQ(compute_count().load(), 6) << "warm run must not recompute";
  EXPECT_EQ(warm.cache_hits, 6u);
  EXPECT_EQ(warm.cells_computed, 0u);
  EXPECT_EQ(warm.rows, cold.rows);
  EXPECT_EQ(warm.spec_hash, cold.spec_hash);
}

TEST(Sweep, ContextChangesMissTheCache) {
  const auto spec = synthetic_spec();
  ResultCache cache(fresh_dir("ctx"), "v1");
  SweepOptions opts;
  opts.cache = &cache;
  (void)dophy::eval::run_experiment(spec, opts);

  SweepOptions more_trials = opts;
  more_trials.trials = 5;
  const auto rerun = dophy::eval::run_experiment(spec, more_trials);
  EXPECT_EQ(rerun.cache_hits, 0u);
  EXPECT_EQ(rerun.cells_computed, 6u);
}

TEST(Sweep, ForceRecomputesButRefreshesTheStore) {
  const auto spec = synthetic_spec();
  ResultCache cache(fresh_dir("force"), "v1");
  SweepOptions opts;
  opts.cache = &cache;
  (void)dophy::eval::run_experiment(spec, opts);

  compute_count().store(0);
  SweepOptions force = opts;
  force.force = true;
  const auto forced = dophy::eval::run_experiment(spec, force);
  EXPECT_EQ(compute_count().load(), 6);
  EXPECT_EQ(forced.cache_hits, 0u);

  // The forced results were stored: a plain run is warm again.
  const auto warm = dophy::eval::run_experiment(spec, opts);
  EXPECT_EQ(warm.cache_hits, 6u);
}

TEST(Sweep, ShardUnionEqualsUnshardedAndIsDisjoint) {
  const auto spec = synthetic_spec();
  SweepOptions s0;
  s0.shard_index = 0;
  s0.shard_count = 2;
  SweepOptions s1;
  s1.shard_index = 1;
  s1.shard_count = 2;

  const auto r0 = dophy::eval::run_experiment(spec, s0);
  const auto r1 = dophy::eval::run_experiment(spec, s1);
  EXPECT_EQ(r0.cells_owned + r1.cells_owned, 6u);

  std::set<std::vector<std::string>> seen;
  for (const auto& row : r0.rows) EXPECT_TRUE(seen.insert(row).second);
  for (const auto& row : r1.rows) EXPECT_TRUE(seen.insert(row).second) << "overlap";
  std::set<std::vector<std::string>> want;
  for (const auto& row : expected_rows()) want.insert(row);
  EXPECT_EQ(seen, want);

  EXPECT_THROW(
      {
        SweepOptions bad;
        bad.shard_index = 2;
        bad.shard_count = 2;
        (void)dophy::eval::run_experiment(spec, bad);
      },
      std::invalid_argument);
}

TEST(Sweep, ResumeAfterKillRecomputesOnlyTheMissingCell) {
  // Simulates an interrupted sweep: one cache entry vanishes (the cell that
  // was mid-flight when the process died); the re-run must recompute exactly
  // that cell and replay the rest.
  const auto spec = synthetic_spec();
  ResultCache cache(fresh_dir("resume"), "v1");
  SweepOptions opts;
  opts.cache = &cache;
  const auto cold = dophy::eval::run_experiment(spec, opts);
  ASSERT_EQ(cold.cells_computed, 6u);

  const auto cells = spec.make_cells(SweepContext{.trials = spec.default_trials,
                                                  .nodes = spec.default_nodes,
                                                  .quick = false});
  ASSERT_TRUE(std::filesystem::remove(cache.entry_path(cache.key_of(cells[3].key))));

  compute_count().store(0);
  const auto resumed = dophy::eval::run_experiment(spec, opts);
  EXPECT_EQ(compute_count().load(), 1);
  EXPECT_EQ(resumed.cache_hits, 5u);
  EXPECT_EQ(resumed.cells_computed, 1u);
  EXPECT_EQ(resumed.rows, cold.rows);
}

TEST(Sweep, SimThreadsBypassesTheCacheAndSaysSo) {
  // --sim-threads > 1 must neither read nor write the serial result store
  // (parallel-engine results are lp_count-dependent) — and the manifest must
  // record the bypass instead of looking like a cold cache.
  const auto spec = synthetic_spec();
  ResultCache cache(fresh_dir("bypass"), "v1");
  SweepOptions opts;
  opts.cache = &cache;
  (void)dophy::eval::run_experiment(spec, opts);  // warm the store

  compute_count().store(0);
  SweepOptions pdes = opts;
  pdes.sim_threads = 2;
  auto run = dophy::eval::run_experiment(spec, pdes);
  EXPECT_EQ(compute_count().load(), 6) << "bypass must not read the serial store";
  EXPECT_EQ(run.cache_hits, 0u);
  EXPECT_TRUE(run.cache_bypassed);
  EXPECT_NE(run.cache_bypass_reason.find("sim_threads"), std::string::npos);
  EXPECT_EQ(cache.stats().stores, 6u) << "bypass must not write the serial store";

  std::vector<ExperimentRun> runs;
  runs.push_back(std::move(run));
  const auto manifest =
      dophy::eval::manifest_json(runs, pdes, dophy::obs::MetricsSnapshot{}, 1.0);
  EXPECT_NE(manifest.find("\"cache_bypassed\":true"), std::string::npos);
  EXPECT_NE(manifest.find("\"cache_bypass_reason\":"), std::string::npos);

  // A serial run without a configured cache is not a "bypass" — there was
  // nothing to bypass — so the manifest stays clean.
  auto uncached = dophy::eval::run_experiment(spec, SweepOptions{});
  EXPECT_FALSE(uncached.cache_bypassed);
  std::vector<ExperimentRun> uncached_runs;
  uncached_runs.push_back(std::move(uncached));
  const auto clean = dophy::eval::manifest_json(uncached_runs, SweepOptions{},
                                                dophy::obs::MetricsSnapshot{}, 1.0);
  EXPECT_EQ(clean.find("cache_bypassed"), std::string::npos);
}

TEST(Sweep, PrintRunMatchesLegacyShape) {
  const auto spec = synthetic_spec();
  const auto run = dophy::eval::run_experiment(spec, SweepOptions{});
  std::ostringstream table;
  dophy::eval::print_run(table, run, /*csv=*/false);
  EXPECT_NE(table.str().find(spec.title), std::string::npos);
  EXPECT_NE(table.str().find("Expected shape: monotone."), std::string::npos);

  std::ostringstream csv;
  dophy::eval::print_run(csv, run, /*csv=*/true);
  EXPECT_NE(csv.str().find("k,twice"), std::string::npos);
  EXPECT_NE(csv.str().find("5,10"), std::string::npos);
}

TEST(Sweep, RunReportAndManifestCarryTheAccounting) {
  const auto spec = synthetic_spec();
  ResultCache cache(fresh_dir("manifest"), "v1");
  SweepOptions opts;
  opts.cache = &cache;
  auto run = dophy::eval::run_experiment(spec, opts);

  const auto report = dophy::eval::make_run_report(run);
  EXPECT_EQ(report.bench, "synthetic_out");
  EXPECT_EQ(report.title, spec.title);
  ASSERT_EQ(report.tables.size(), 1u);
  EXPECT_EQ(report.tables[0].rows, run.rows);
  EXPECT_EQ(report.config.at("trials"), "2");

  std::vector<ExperimentRun> runs;
  runs.push_back(std::move(run));
  const auto manifest =
      dophy::eval::manifest_json(runs, opts, dophy::obs::MetricsSnapshot{}, 1.5);
  EXPECT_NE(manifest.find("\"id\":\"synthetic\""), std::string::npos);
  EXPECT_NE(manifest.find("\"cells_computed\":6"), std::string::npos);
  EXPECT_NE(manifest.find("\"stores\":6"), std::string::npos);
  EXPECT_NE(manifest.find("\"metrics\":"), std::string::npos);

  // The manifest must be one well-formed JSON document: balanced braces and
  // brackets outside string literals, nothing after the root object.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < manifest.size(); ++i) {
    const char c = manifest[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      ASSERT_GE(depth, 0) << "unbalanced at offset " << i;
      if (depth == 0) {
        EXPECT_EQ(manifest.substr(i + 1), "\n") << "content after root object";
      }
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

}  // namespace
