// Unit tests for the experiment registry: the built-in catalog is complete
// and well-formed, lookups work by id and legacy stem, and every spec's grid
// has distinct, fully-keyed cells.

#include "dophy/eval/experiment.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "dophy/eval/sweep.hpp"

namespace {

using dophy::eval::ExperimentRegistry;
using dophy::eval::ExperimentSpec;
using dophy::eval::SweepContext;

TEST(Registry, BuiltinCatalogIsComplete) {
  const auto& registry = ExperimentRegistry::builtin();
  EXPECT_EQ(registry.size(), 17u);

  std::set<std::string> ids, stems, figures;
  for (const auto& spec : registry.all()) {
    EXPECT_FALSE(spec.id.empty());
    EXPECT_FALSE(spec.figure.empty());
    EXPECT_FALSE(spec.claim.empty());
    EXPECT_FALSE(spec.axes.empty());
    EXPECT_FALSE(spec.title.empty());
    EXPECT_FALSE(spec.output_stem.empty());
    EXPECT_FALSE(spec.columns.empty());
    EXPECT_FALSE(spec.expected.empty());
    EXPECT_GT(spec.default_trials, 0u);
    EXPECT_GT(spec.default_nodes, 0u);
    EXPECT_TRUE(spec.make_cells != nullptr);
    ids.insert(spec.id);
    stems.insert(spec.output_stem);
    figures.insert(spec.figure);
  }
  EXPECT_EQ(ids.size(), registry.size());    // ids unique
  EXPECT_EQ(stems.size(), registry.size());  // stems unique
  EXPECT_TRUE(figures.count("F1"));
  EXPECT_TRUE(figures.count("F6"));
  EXPECT_TRUE(figures.count("T1"));
  EXPECT_TRUE(figures.count("A5"));
  EXPECT_TRUE(figures.count("A6"));
}

TEST(Registry, FindsByIdAndByLegacyStem) {
  const auto& registry = ExperimentRegistry::builtin();
  const auto* by_id = registry.find("f6-accuracy-dynamics");
  ASSERT_NE(by_id, nullptr);
  const auto* by_stem = registry.find("fig_accuracy_dynamics");
  EXPECT_EQ(by_id, by_stem);
  EXPECT_EQ(registry.find("no-such-experiment"), nullptr);
}

TEST(Registry, RejectsDuplicatesAndIncompleteSpecs) {
  ExperimentRegistry registry;
  ExperimentSpec spec;
  spec.id = "dup";
  spec.output_stem = "dup_out";
  spec.make_cells = [](const SweepContext&) { return std::vector<dophy::eval::Cell>{}; };
  registry.add(spec);
  EXPECT_THROW(registry.add(spec), std::invalid_argument);

  ExperimentSpec no_cells;
  no_cells.id = "no-cells";
  EXPECT_THROW(registry.add(no_cells), std::invalid_argument);
}

TEST(Registry, EveryGridCellIsDistinctAndKeyed) {
  const SweepContext ctx{.trials = 2, .nodes = 40, .quick = true};
  for (const auto& spec : ExperimentRegistry::builtin().all()) {
    const auto cells = spec.make_cells(ctx);
    ASSERT_FALSE(cells.empty()) << spec.id;
    std::set<std::string> labels;
    std::set<std::uint64_t> hashes;
    for (const auto& cell : cells) {
      EXPECT_FALSE(cell.label.empty()) << spec.id;
      EXPECT_TRUE(cell.compute != nullptr) << spec.id;
      EXPECT_GT(cell.key.field_count(), 3u) << spec.id << "/" << cell.label;
      labels.insert(cell.label);
      hashes.insert(cell.key.hash());
    }
    EXPECT_EQ(labels.size(), cells.size()) << spec.id << ": duplicate cell labels";
    EXPECT_EQ(hashes.size(), cells.size()) << spec.id << ": duplicate cell keys";
  }
}

TEST(Registry, GridKeysAreDeterministicAndParamSensitive) {
  const auto* spec = ExperimentRegistry::builtin().find("f6-accuracy-dynamics");
  ASSERT_NE(spec, nullptr);
  const SweepContext ctx{.trials = 2, .nodes = 40, .quick = true};
  const auto a = spec->make_cells(ctx);
  const auto b = spec->make_cells(ctx);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key.hash(), b[i].key.hash());
  }
  SweepContext more_trials = ctx;
  more_trials.trials = 3;
  const auto c = spec->make_cells(more_trials);
  EXPECT_NE(a[0].key.hash(), c[0].key.hash());
  SweepContext quick_off = ctx;
  quick_off.quick = false;
  const auto d = spec->make_cells(quick_off);
  EXPECT_NE(a[0].key.hash(), d[0].key.hash());
}

TEST(Catalog, MarkdownListsEveryExperiment) {
  const auto& registry = ExperimentRegistry::builtin();
  const auto markdown = dophy::eval::catalog_markdown(registry);
  const auto text = dophy::eval::catalog_text(registry);
  for (const auto& spec : registry.all()) {
    EXPECT_NE(markdown.find("`" + spec.id + "`"), std::string::npos) << spec.id;
    EXPECT_NE(markdown.find(spec.output_stem), std::string::npos) << spec.id;
    EXPECT_NE(text.find(spec.id), std::string::npos) << spec.id;
  }
}

}  // namespace
