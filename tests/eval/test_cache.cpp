// Unit tests for the content-addressed result cache: FNV vectors, canonical
// key order-independence, config/seed/version invalidation, store/load
// round-trips, and corrupt-entry fallback.

#include "dophy/eval/cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "dophy/eval/experiment.hpp"
#include "dophy/eval/scenario.hpp"
#include "dophy/tomo/pipeline.hpp"

namespace {

using dophy::eval::CachedCell;
using dophy::eval::CanonicalKey;
using dophy::eval::ResultCache;

std::string fresh_dir(const std::string& tag) {
  const auto dir = std::filesystem::path(testing::TempDir()) / ("dophy-cache-" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(Fnv1a64, MatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(dophy::eval::fnv1a64(""), dophy::eval::kFnvOffsetBasis);
  EXPECT_EQ(dophy::eval::fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(dophy::eval::fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64, ChainsAcrossCalls) {
  const auto once = dophy::eval::fnv1a64("foobar");
  const auto chained = dophy::eval::fnv1a64("bar", dophy::eval::fnv1a64("foo"));
  EXPECT_EQ(once, chained);
}

TEST(CanonicalKey, OrderIndependent) {
  CanonicalKey a;
  a.set("alpha", 1.5).set("beta", std::uint64_t{7}).set("gamma", "x");
  CanonicalKey b;
  b.set("gamma", "x").set("beta", std::uint64_t{7}).set("alpha", 1.5);
  EXPECT_EQ(a.canonical(), b.canonical());
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(CanonicalKey, LastWriteWins) {
  CanonicalKey key;
  key.set("field", "old").set("field", "new");
  EXPECT_EQ(key.field_count(), 1u);
  EXPECT_NE(key.canonical().find("field=new"), std::string::npos);
}

TEST(CanonicalKey, DistinguishesValueTypesAndValues) {
  CanonicalKey a;
  a.set("x", true);
  CanonicalKey b;
  b.set("x", false);
  EXPECT_NE(a.hash(), b.hash());

  CanonicalKey c;
  c.set("x", 0.25);
  CanonicalKey d;
  d.set("x", 0.250001);
  EXPECT_NE(c.hash(), d.hash());
}

TEST(Canonicalize, ConfigFieldChangesInvalidate) {
  const auto base = dophy::eval::default_pipeline(40, 7);
  CanonicalKey base_key;
  dophy::eval::canonicalize_into(base, base_key);
  ASSERT_GT(base_key.field_count(), 30u);  // the whole config is enumerated

  auto mutate = [&](auto&& fn) {
    auto cfg = dophy::eval::default_pipeline(40, 7);
    fn(cfg);
    CanonicalKey key;
    dophy::eval::canonicalize_into(cfg, key);
    return key.hash();
  };

  EXPECT_NE(base_key.hash(), mutate([](auto& c) { c.net.seed += 1; }));
  EXPECT_NE(base_key.hash(), mutate([](auto& c) { c.measure_s += 1.0; }));
  EXPECT_NE(base_key.hash(), mutate([](auto& c) { c.dophy.censor_threshold += 1; }));
  EXPECT_NE(base_key.hash(), mutate([](auto& c) { c.net.loss.loss_scale *= 2.0; }));
  EXPECT_NE(base_key.hash(), mutate([](auto& c) { c.run_baselines = !c.run_baselines; }));
  EXPECT_NE(base_key.hash(), mutate([](auto& c) { c.truth_tail_fraction = 0.125; }));

  // And an untouched rebuild matches exactly.
  EXPECT_EQ(base_key.hash(), mutate([](auto&) {}));
}

TEST(Canonicalize, CellKeySeedAndTrialChangesInvalidate) {
  const auto cfg = dophy::eval::default_pipeline(40, 7);
  const auto base = dophy::eval::pipeline_cell_key("exp", "cell", cfg, 3, 100);
  EXPECT_NE(base.hash(),
            dophy::eval::pipeline_cell_key("exp", "cell", cfg, 4, 100).hash());
  EXPECT_NE(base.hash(),
            dophy::eval::pipeline_cell_key("exp", "cell", cfg, 3, 101).hash());
  EXPECT_NE(base.hash(),
            dophy::eval::pipeline_cell_key("exp", "other", cfg, 3, 100).hash());
  EXPECT_EQ(base.hash(),
            dophy::eval::pipeline_cell_key("exp", "cell", cfg, 3, 100).hash());
}

TEST(ResultCache, StoreLoadRoundTrip) {
  ResultCache cache(fresh_dir("roundtrip"), "v1");
  CanonicalKey key;
  key.set("experiment", "e").set("cell", "c");

  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);

  CachedCell cell;
  cell.experiment = "e";
  cell.cell = "c";
  cell.rows = {{"1", "2.5", "label"}, {"4", "-", "with \"quotes\" and ,comma"}};
  cell.wall_seconds = 1.25;
  ASSERT_TRUE(cache.store(key, cell));
  EXPECT_EQ(cache.stats().stores, 1u);

  const auto loaded = cache.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->experiment, "e");
  EXPECT_EQ(loaded->cell, "c");
  EXPECT_EQ(loaded->rows, cell.rows);
  EXPECT_DOUBLE_EQ(loaded->wall_seconds, 1.25);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ResultCache, VersionTagInvalidates) {
  const auto dir = fresh_dir("version");
  CanonicalKey key;
  key.set("experiment", "e").set("cell", "c");
  CachedCell cell;
  cell.rows = {{"1"}};
  {
    ResultCache cache(dir, "build-A");
    ASSERT_TRUE(cache.store(key, cell));
    EXPECT_TRUE(cache.load(key).has_value());
  }
  ResultCache newer(dir, "build-B");
  EXPECT_FALSE(newer.load(key).has_value());
  EXPECT_EQ(newer.stats().hits, 0u);
}

TEST(ResultCache, CorruptEntryFallsBackToMiss) {
  ResultCache cache(fresh_dir("corrupt"), "v1");
  CanonicalKey key;
  key.set("experiment", "e").set("cell", "c");
  CachedCell cell;
  cell.rows = {{"1", "2"}};
  ASSERT_TRUE(cache.store(key, cell));

  // Truncate/garble the entry on disk.
  {
    std::ofstream out(cache.entry_path(cache.key_of(key)));
    out << "{\"schema\": \"not a cache entry";
  }
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);

  // Recompute-and-store heals the entry.
  ASSERT_TRUE(cache.store(key, cell));
  const auto healed = cache.load(key);
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(healed->rows, cell.rows);
}

TEST(ResultCache, MismatchedCanonicalIsRejected) {
  // A hash collision (or hand-edited file) must not replay the wrong cell:
  // entries embed the full canonical form and are verified on load.
  ResultCache cache(fresh_dir("collision"), "v1");
  CanonicalKey a;
  a.set("experiment", "e").set("cell", "a");
  CachedCell cell;
  cell.rows = {{"1"}};
  ASSERT_TRUE(cache.store(a, cell));

  CanonicalKey b;
  b.set("experiment", "e").set("cell", "b");
  // Simulate a collision by copying a's entry file onto b's path.
  std::filesystem::copy_file(cache.entry_path(cache.key_of(a)),
                             cache.entry_path(cache.key_of(b)));
  EXPECT_FALSE(cache.load(b).has_value());
  EXPECT_GE(cache.stats().corrupt, 1u);
}

}  // namespace
