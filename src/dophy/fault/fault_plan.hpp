#pragma once

// Deterministic fault schedules.  A FaultPlan is a time-sorted list of fault
// events — node crash/reboot, sink outage, link blackout bursts, clock skew,
// and report corruption/truncation/drop windows — either scripted by hand
// (the builder API) or generated from rate parameters and a seed.  Plans are
// pure data: generating the same config with the same seed yields the same
// events bit-for-bit, independent of any simulator state, so a faulty run is
// exactly as reproducible as a benign one.

#include <cstdint>
#include <string_view>
#include <vector>

#include "dophy/net/types.hpp"

namespace dophy::fault {

enum class FaultKind : std::uint8_t {
  kNodeCrash,      ///< node goes down for `duration_s`, then reboots
  kSinkOutage,     ///< the sink goes deaf for `duration_s`
  kLinkBlackout,   ///< directed link loses every frame for `duration_s`
  kClockSkew,      ///< node's periodic activity stretches by `magnitude`
  kReportCorrupt,  ///< window: delivered reports get `magnitude` prob bit flips
  kReportTruncate, ///< window: delivered reports lose their tail bytes
  kReportDrop,     ///< window: delivered reports are stripped entirely
};

[[nodiscard]] std::string_view to_string(FaultKind kind) noexcept;

/// One scheduled fault.  `at_s` is seconds from simulation start; faults with
/// a duration implicitly schedule their own recovery.
struct FaultEvent {
  double at_s = 0.0;
  FaultKind kind = FaultKind::kNodeCrash;
  dophy::net::NodeId node = dophy::net::kInvalidNode;  ///< crash/skew target
  dophy::net::NodeId peer = dophy::net::kInvalidNode;  ///< blackout: link node->peer
  double duration_s = 0.0;   ///< outage/blackout/window length (0 = permanent)
  /// Kind-specific intensity: clock skew factor (e.g. 1.02 = 2% slow),
  /// report corrupt/truncate/drop probability per delivered report.
  double magnitude = 0.0;

  [[nodiscard]] bool operator==(const FaultEvent&) const noexcept = default;
};

/// Rates for generated chaos plans.  All rates are per simulated hour of the
/// plan horizon; the generator draws event times uniformly over the horizon
/// (after `start_s`) from its own seeded Rng.
struct FaultPlanConfig {
  bool enabled = false;
  std::uint64_t seed = 1;        ///< plan stream; independent of the sim seed
  double start_s = 0.0;          ///< no faults before this time (e.g. warm-up)
  double horizon_s = 3600.0;     ///< plan covers [start_s, start_s + horizon_s)

  double node_crashes_per_hour = 0.0;
  double crash_duration_s = 60.0;

  double sink_outages_per_hour = 0.0;
  double sink_outage_duration_s = 20.0;

  double link_blackouts_per_hour = 0.0;
  double blackout_duration_s = 30.0;

  double clock_skews_per_hour = 0.0;
  double clock_skew_max = 0.05;  ///< |factor - 1| drawn uniformly up to this

  /// One window each covering the whole horizon when the probability is > 0.
  double report_corrupt_prob = 0.0;   ///< per delivered report
  double report_truncate_prob = 0.0;
  double report_drop_prob = 0.0;
};

/// A complete, validated fault schedule.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Scripted plans: append events in any order, then `finalize()`.
  FaultPlan& add(FaultEvent event);
  FaultPlan& add_node_crash(double at_s, dophy::net::NodeId node, double down_s);
  FaultPlan& add_sink_outage(double at_s, double down_s);
  FaultPlan& add_link_blackout(double at_s, dophy::net::NodeId from, dophy::net::NodeId to,
                               double duration_s);
  FaultPlan& add_clock_skew(double at_s, dophy::net::NodeId node, double factor);
  FaultPlan& add_report_fault(double at_s, FaultKind kind, double probability,
                              double duration_s = 0.0);

  /// Sorts events by (time, kind, node, peer) — the injector requires a
  /// deterministic execution order.  Idempotent.
  void finalize();

  /// Generates a chaos plan from rates.  Node targets are drawn uniformly
  /// from [1, node_count); blackout links from the node id space (the
  /// injector skips pairs with no radio edge).  Deterministic in
  /// (config, node_count).
  [[nodiscard]] static FaultPlan generate(const FaultPlanConfig& config,
                                          std::size_t node_count);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept { return events_; }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

 private:
  std::vector<FaultEvent> events_;
  bool finalized_ = false;
};

}  // namespace dophy::fault
