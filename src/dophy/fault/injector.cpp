#include "dophy/fault/injector.hpp"

#include <algorithm>
#include <limits>

#include "dophy/common/logging.hpp"
#include "dophy/obs/metrics.hpp"
#include "dophy/obs/trace.hpp"

namespace dophy::fault {

using dophy::net::kInvalidNode;
using dophy::net::kSecond;
using dophy::net::kSinkId;
using dophy::net::NodeId;
using dophy::net::Packet;
using dophy::net::SimTime;

namespace {

constexpr SimTime kOpenEnded = std::numeric_limits<SimTime>::max();

/// Interned once; all injectors share these registry handles.
struct FaultMetrics {
  dophy::obs::Counter events;
  dophy::obs::Counter node_crashes, node_reboots, sink_outages;
  dophy::obs::Counter link_blackouts, clock_skews;
  dophy::obs::Counter reports_corrupted, reports_truncated, reports_dropped;

  static const FaultMetrics& get() {
    static const FaultMetrics m;
    return m;
  }

 private:
  FaultMetrics() {
    auto& r = dophy::obs::Registry::global();
    events = r.counter("fault.events");
    node_crashes = r.counter("fault.node.crashes");
    node_reboots = r.counter("fault.node.reboots");
    sink_outages = r.counter("fault.sink.outages");
    link_blackouts = r.counter("fault.link.blackouts");
    clock_skews = r.counter("fault.clock.skews");
    reports_corrupted = r.counter("fault.report.corrupted");
    reports_truncated = r.counter("fault.report.truncated");
    reports_dropped = r.counter("fault.report.dropped");
  }
};

[[nodiscard]] SimTime seconds_to_ticks(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

[[nodiscard]] bool is_report_fault(FaultKind kind) noexcept {
  return kind == FaultKind::kReportCorrupt || kind == FaultKind::kReportTruncate ||
         kind == FaultKind::kReportDrop;
}

}  // namespace

FaultInjector::FaultInjector(dophy::net::Network& net, FaultPlan plan,
                             std::uint64_t mutation_seed)
    : net_(&net), plan_(std::move(plan)), rng_(mutation_seed ^ 0x6d757461746fULL) {
  plan_.finalize();
}

void FaultInjector::arm() {
  if (armed_ || plan_.empty()) return;
  armed_ = true;
  const SimTime base = net_->sim().now();
  bool has_report_faults = false;
  for (const FaultEvent& event : plan_.events()) {
    has_report_faults = has_report_faults || is_report_fault(event.kind);
    const SimTime at = std::max(base, base + seconds_to_ticks(event.at_s));
    // The plan outlives the queue (same owner as the injector), so the event
    // payload holds a raw pointer; FaultPlan never reallocates post-arm.
    dophy::net::Event ev;
    ev.fn = &event_trampoline;
    ev.target = this;
    ev.kind = dophy::net::EventKind::kFaultAction;
    ev.payload.fault.plan_event = &event;
    net_->sim().schedule_event_at(at, ev);
  }
  if (has_report_faults) {
    net_->set_report_mutator(
        [this](Packet& packet, SimTime now) { mutate_report(packet, now); });
  }
}

void FaultInjector::event_trampoline(void* target, const dophy::net::Event& ev) {
  auto* self = static_cast<FaultInjector*>(target);
  if (ev.kind == dophy::net::EventKind::kFaultAction) {
    self->execute(*static_cast<const FaultEvent*>(ev.payload.fault.plan_event));
  } else {
    self->recover(static_cast<RecoveryOp>(ev.payload.fault_recovery.op),
                  ev.payload.fault_recovery.a, ev.payload.fault_recovery.b);
  }
}

void FaultInjector::schedule_recovery(SimTime at, RecoveryOp op, NodeId a, NodeId b) {
  dophy::net::Event ev;
  ev.fn = &event_trampoline;
  ev.target = this;
  ev.kind = dophy::net::EventKind::kFaultRecovery;
  ev.payload.fault_recovery.a = a;
  ev.payload.fault_recovery.b = b;
  ev.payload.fault_recovery.op = static_cast<std::uint8_t>(op);
  net_->sim().schedule_event_at(at, ev);
}

void FaultInjector::recover(RecoveryOp op, NodeId a, NodeId b) {
  switch (op) {
    case RecoveryOp::kNodeReboot:
      net_->set_node_alive(a, true);
      ++stats_.node_reboots;
      FaultMetrics::get().node_reboots.inc();
      break;
    case RecoveryOp::kSinkRestore:
      net_->set_node_alive(kSinkId, true);
      break;
    case RecoveryOp::kBlackoutLift:
      apply_blackout(a, b, false);
      break;
  }
}

void FaultInjector::trace_event(const FaultEvent& event) const {
  auto& tr = dophy::obs::EventTrace::global();
  if (!tr.enabled(dophy::obs::EventKind::kFaultInject)) return;
  auto builder = tr.event(dophy::obs::EventKind::kFaultInject,
                          static_cast<std::uint64_t>(net_->sim().now()));
  builder.str("kind", to_string(event.kind));
  if (event.node != kInvalidNode) builder.u64("node", event.node);
  if (event.peer != kInvalidNode) builder.u64("peer", event.peer);
  if (event.duration_s > 0.0) builder.f64("duration_s", event.duration_s);
  if (event.magnitude != 0.0) builder.f64("magnitude", event.magnitude);
}

void FaultInjector::execute(const FaultEvent& event) {
  const auto& m = FaultMetrics::get();
  const SimTime now = net_->sim().now();
  const SimTime recovery =
      event.duration_s > 0.0 ? now + seconds_to_ticks(event.duration_s) : kOpenEnded;

  switch (event.kind) {
    case FaultKind::kNodeCrash: {
      if (event.node == kInvalidNode || event.node >= net_->node_count() ||
          event.node == kSinkId) {
        return;  // plan targets a node this topology does not have
      }
      net_->set_node_alive(event.node, false);
      ++stats_.node_crashes;
      m.node_crashes.inc();
      if (recovery != kOpenEnded) {
        schedule_recovery(recovery, RecoveryOp::kNodeReboot, event.node, kInvalidNode);
      }
      break;
    }
    case FaultKind::kSinkOutage: {
      net_->set_node_alive(kSinkId, false);
      ++stats_.sink_outages;
      m.sink_outages.inc();
      if (recovery != kOpenEnded) {
        schedule_recovery(recovery, RecoveryOp::kSinkRestore, kSinkId, kInvalidNode);
      }
      break;
    }
    case FaultKind::kLinkBlackout: {
      apply_blackout(event.node, event.peer, true);
      ++stats_.link_blackouts;
      m.link_blackouts.inc();
      if (recovery != kOpenEnded) {
        schedule_recovery(recovery, RecoveryOp::kBlackoutLift, event.node, event.peer);
      }
      break;
    }
    case FaultKind::kClockSkew: {
      if (event.node == kInvalidNode || event.node >= net_->node_count()) return;
      net_->set_clock_factor(event.node, event.magnitude);
      ++stats_.clock_skews;
      m.clock_skews.inc();
      break;
    }
    case FaultKind::kReportCorrupt:
    case FaultKind::kReportTruncate:
    case FaultKind::kReportDrop: {
      windows_.push_back({event.kind, event.magnitude, recovery});
      break;
    }
  }

  ++stats_.events_executed;
  m.events.inc();
  trace_event(event);
  DOPHY_DEBUG("fault %s executed at t=%llu us",
              std::string(to_string(event.kind)).c_str(),
              static_cast<unsigned long long>(now));
}

void FaultInjector::apply_blackout(NodeId from, NodeId to, bool active) {
  if (from == kInvalidNode || from >= net_->node_count()) return;
  // The plan draws (from, to) from the raw id space; resolve it to a real
  // radio edge so generated chaos always lands on an existing link.
  if (net_->find_link(from, to) == nullptr) {
    const auto neighbors = net_->topology().neighbors(from);
    if (neighbors.empty()) return;
    to = neighbors[to % neighbors.size()];
  }
  net_->link(from, to).set_blackout(active);
  if (net_->find_link(to, from) != nullptr) {
    net_->link(to, from).set_blackout(active);  // jam the reverse path too
  }
}

void FaultInjector::mutate_report(Packet& packet, SimTime now) {
  if (packet.blob.wire_bytes() == 0) return;  // no measurement layer riding
  const auto& m = FaultMetrics::get();
  auto& tr = dophy::obs::EventTrace::global();
  const auto note = [&](const char* what, dophy::obs::Counter counter,
                        std::uint64_t& stat) {
    ++stat;
    counter.inc();
    if (tr.enabled(dophy::obs::EventKind::kFaultInject)) {
      tr.event(dophy::obs::EventKind::kFaultInject, static_cast<std::uint64_t>(now))
          .str("kind", what)
          .u64("origin", packet.origin)
          .u64("seq", packet.seq);
    }
  };

  for (const ReportWindow& window : windows_) {
    if (now >= window.until) continue;
    if (!rng_.bernoulli(window.probability)) continue;
    if (!mutate_blob(packet.blob, window.kind, rng_)) continue;
    switch (window.kind) {
      case FaultKind::kReportDrop:
        note("report_drop", m.reports_dropped, stats_.reports_dropped);
        break;
      case FaultKind::kReportTruncate:
        note("report_truncate", m.reports_truncated, stats_.reports_truncated);
        break;
      case FaultKind::kReportCorrupt:
        note("report_corrupt", m.reports_corrupted, stats_.reports_corrupted);
        break;
      default:
        break;
    }
  }
}

bool mutate_blob(dophy::net::MeasurementBlob& blob, FaultKind kind,
                 dophy::common::Rng& rng) {
  switch (kind) {
    case FaultKind::kReportDrop:
      if (blob.dropped) return false;
      blob.bytes.clear();
      blob.logical_bits = 0;
      blob.state_size = 0;
      blob.dropped = true;
      return true;
    case FaultKind::kReportTruncate: {
      if (blob.bytes.empty()) return false;
      const std::size_t cut = 1 + rng.next_below(blob.bytes.size());
      blob.bytes.resize(blob.bytes.size() - cut);
      return true;
    }
    case FaultKind::kReportCorrupt: {
      if (blob.bytes.empty()) return false;
      const std::size_t flips = 1 + rng.next_below(3);
      for (std::size_t i = 0; i < flips; ++i) {
        const std::size_t bit = rng.next_below(blob.bytes.size() * 8);
        blob.bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      return true;
    }
    default:
      return false;
  }
}

}  // namespace dophy::fault
