#include "dophy/fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>

#include "dophy/common/rng.hpp"

namespace dophy::fault {

using dophy::net::kSinkId;
using dophy::net::NodeId;

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNodeCrash: return "node_crash";
    case FaultKind::kSinkOutage: return "sink_outage";
    case FaultKind::kLinkBlackout: return "link_blackout";
    case FaultKind::kClockSkew: return "clock_skew";
    case FaultKind::kReportCorrupt: return "report_corrupt";
    case FaultKind::kReportTruncate: return "report_truncate";
    case FaultKind::kReportDrop: return "report_drop";
  }
  return "?";
}

FaultPlan& FaultPlan::add(FaultEvent event) {
  events_.push_back(event);
  finalized_ = false;
  return *this;
}

FaultPlan& FaultPlan::add_node_crash(double at_s, NodeId node, double down_s) {
  return add({at_s, FaultKind::kNodeCrash, node, dophy::net::kInvalidNode, down_s, 0.0});
}

FaultPlan& FaultPlan::add_sink_outage(double at_s, double down_s) {
  return add({at_s, FaultKind::kSinkOutage, kSinkId, dophy::net::kInvalidNode, down_s, 0.0});
}

FaultPlan& FaultPlan::add_link_blackout(double at_s, NodeId from, NodeId to,
                                        double duration_s) {
  return add({at_s, FaultKind::kLinkBlackout, from, to, duration_s, 0.0});
}

FaultPlan& FaultPlan::add_clock_skew(double at_s, NodeId node, double factor) {
  return add({at_s, FaultKind::kClockSkew, node, dophy::net::kInvalidNode, 0.0, factor});
}

FaultPlan& FaultPlan::add_report_fault(double at_s, FaultKind kind, double probability,
                                       double duration_s) {
  return add({at_s, kind, dophy::net::kInvalidNode, dophy::net::kInvalidNode, duration_s,
              probability});
}

void FaultPlan::finalize() {
  if (finalized_) return;
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.at_s != b.at_s) return a.at_s < b.at_s;
                     if (a.kind != b.kind) return a.kind < b.kind;
                     if (a.node != b.node) return a.node < b.node;
                     return a.peer < b.peer;
                   });
  finalized_ = true;
}

FaultPlan FaultPlan::generate(const FaultPlanConfig& config, std::size_t node_count) {
  FaultPlan plan;
  if (!config.enabled || node_count < 2) {
    plan.finalize();
    return plan;
  }
  dophy::common::Rng rng(config.seed ^ 0x6661756c74ULL);  // "fault"
  const double hours = std::max(0.0, config.horizon_s) / 3600.0;

  // Each category draws its count, then its event parameters, from the same
  // stream in a fixed order — the plan is a pure function of (config, N).
  const auto draw_count = [&](double per_hour) -> std::uint32_t {
    const double mean = per_hour * hours;
    return mean <= 0.0 ? 0u : rng.poisson(mean);
  };
  const auto draw_time = [&] {
    return config.start_s + rng.uniform(0.0, std::max(1e-9, config.horizon_s));
  };
  const auto draw_node = [&]() -> NodeId {
    return static_cast<NodeId>(1 + rng.next_below(node_count - 1));
  };

  const std::uint32_t crashes = draw_count(config.node_crashes_per_hour);
  for (std::uint32_t i = 0; i < crashes; ++i) {
    plan.add_node_crash(draw_time(), draw_node(), config.crash_duration_s);
  }

  const std::uint32_t outages = draw_count(config.sink_outages_per_hour);
  for (std::uint32_t i = 0; i < outages; ++i) {
    plan.add_sink_outage(draw_time(), config.sink_outage_duration_s);
  }

  const std::uint32_t blackouts = draw_count(config.link_blackouts_per_hour);
  for (std::uint32_t i = 0; i < blackouts; ++i) {
    // Directed pair; the injector resolves it to the nearest real radio edge.
    const NodeId from = static_cast<NodeId>(rng.next_below(node_count));
    NodeId to = static_cast<NodeId>(rng.next_below(node_count));
    if (to == from) to = static_cast<NodeId>((to + 1) % node_count);
    plan.add_link_blackout(draw_time(), from, to, config.blackout_duration_s);
  }

  const std::uint32_t skews = draw_count(config.clock_skews_per_hour);
  for (std::uint32_t i = 0; i < skews; ++i) {
    const double offset = rng.uniform(-config.clock_skew_max, config.clock_skew_max);
    plan.add_clock_skew(draw_time(), draw_node(), 1.0 + offset);
  }

  if (config.report_corrupt_prob > 0.0) {
    plan.add_report_fault(config.start_s, FaultKind::kReportCorrupt,
                          config.report_corrupt_prob, config.horizon_s);
  }
  if (config.report_truncate_prob > 0.0) {
    plan.add_report_fault(config.start_s, FaultKind::kReportTruncate,
                          config.report_truncate_prob, config.horizon_s);
  }
  if (config.report_drop_prob > 0.0) {
    plan.add_report_fault(config.start_s, FaultKind::kReportDrop,
                          config.report_drop_prob, config.horizon_s);
  }

  plan.finalize();
  return plan;
}

}  // namespace dophy::fault
