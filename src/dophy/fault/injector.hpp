#pragma once

// Executes a FaultPlan against a live Network: schedules every event on the
// simulator clock, flips the corresponding injection hooks (node liveness,
// link blackout, clock factor, report mutation), and emits obs::trace events
// plus registry counters so every injected fault is visible in run reports.
//
// The injector owns its own Rng (seeded from the plan config) for report
// mutations, which are drawn in simulation order — a fixed (plan, sim seed)
// pair reproduces the same faulted run bit-for-bit on any thread-pool size,
// because each pipeline's simulation is single-threaded.

#include <cstdint>

#include "dophy/common/rng.hpp"
#include "dophy/fault/fault_plan.hpp"
#include "dophy/net/network.hpp"

namespace dophy::fault {

struct FaultStats {
  std::uint64_t events_executed = 0;   ///< plan events fired (recoveries excluded)
  std::uint64_t node_crashes = 0;
  std::uint64_t node_reboots = 0;
  std::uint64_t sink_outages = 0;
  std::uint64_t link_blackouts = 0;
  std::uint64_t clock_skews = 0;
  std::uint64_t reports_corrupted = 0;
  std::uint64_t reports_truncated = 0;
  std::uint64_t reports_dropped = 0;

  [[nodiscard]] std::uint64_t reports_mutated() const noexcept {
    return reports_corrupted + reports_truncated + reports_dropped;
  }
};

/// Applies one report-fault kind to a measurement blob in place, drawing any
/// randomness from `rng`; returns true when the blob changed (a drop on an
/// already-dropped blob, or a truncate/corrupt on an empty one, is a no-op).
/// This is the exact mutation the armed injector applies to in-flight
/// reports — exposed so stream-level tests (e.g. the sink differential
/// campaign) corrupt recorded reports through the same code path.
[[nodiscard]] bool mutate_blob(dophy::net::MeasurementBlob& blob, FaultKind kind,
                               dophy::common::Rng& rng);

class FaultInjector {
 public:
  /// Binds `plan` to `net`.  Event times are relative to the simulator clock
  /// at `arm()` time.  The injector must outlive the network's event queue
  /// (scheduled callbacks capture `this`).
  FaultInjector(dophy::net::Network& net, FaultPlan plan, std::uint64_t mutation_seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every plan event and, when the plan contains report faults,
  /// installs the network's report mutator.  Call once.
  void arm();

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  /// Timed recovery variants carried in a kFaultRecovery event payload.
  enum class RecoveryOp : std::uint8_t { kNodeReboot, kSinkRestore, kBlackoutLift };

  /// Plan actions and recoveries ride the simulator as typed
  /// kFaultAction/kFaultRecovery records — no captured lambdas.
  static void event_trampoline(void* target, const dophy::net::Event& ev);
  void schedule_recovery(dophy::net::SimTime at, RecoveryOp op, dophy::net::NodeId a,
                         dophy::net::NodeId b);
  void recover(RecoveryOp op, dophy::net::NodeId a, dophy::net::NodeId b);

  void execute(const FaultEvent& event);
  void trace_event(const FaultEvent& event) const;
  void apply_blackout(dophy::net::NodeId from, dophy::net::NodeId to, bool active);
  void mutate_report(dophy::net::Packet& packet, dophy::net::SimTime now);

  struct ReportWindow {
    FaultKind kind;
    double probability;
    dophy::net::SimTime until;  ///< exclusive; max() = open-ended
  };

  dophy::net::Network* net_;
  FaultPlan plan_;
  dophy::common::Rng rng_;
  std::vector<ReportWindow> windows_;
  FaultStats stats_;
  bool armed_ = false;
};

}  // namespace dophy::fault
