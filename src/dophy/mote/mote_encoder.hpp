#pragma once

// Mote-constrained reference implementation of Dophy's node-side encoder.
//
// The paper implements Dophy on TinyOS (TelosB-class motes: ~10 KB RAM, no
// heap, no exceptions, nesC/C).  This module demonstrates that the node-side
// hot path — install a disseminated model, stamp a packet at the origin,
// resume/append/suspend per hop — fits those constraints:
//
//   * no dynamic allocation (fixed-size arrays, compile-time capacities),
//   * no exceptions (every operation returns a status code),
//   * integer-only arithmetic,
//   * RAM budget enforced by static_asserts and tests.
//
// Equivalence with the full-featured dophy::tomo encoder is bit-exact and
// property-tested: the streams a mote produces are decodable by the standard
// sink decoder.

#include <cstddef>
#include <cstdint>

namespace dophy::mote {

/// Compile-time capacities (TelosB-sized).
inline constexpr std::size_t kMaxModelSymbols = 256;  ///< id alphabet bound
inline constexpr std::size_t kMaxStreamBytes = 40;    ///< in-packet budget
inline constexpr std::size_t kMaxRetxSymbols = 16;

enum class Status : std::uint8_t {
  kOk = 0,
  kBadModel,       ///< malformed serialized model
  kBadSymbol,      ///< symbol outside the model's alphabet
  kBudget,         ///< stream would exceed kMaxStreamBytes
  kTruncated,      ///< packet already poisoned; nothing appended
};

/// Quantized frequency table in fixed storage.  Mirrors
/// dophy::coding::StaticModel bit-for-bit (same wire format, same cumulative
/// layout) so both sides code identically.
struct MoteModel {
  /// cum[s] = freq mass below s; 32-bit because totals may be exactly 2^16.
  std::uint32_t cum[kMaxModelSymbols + 1];
  std::uint16_t count;  ///< symbols in the alphabet

  /// Parses the StaticModel wire format (varint count, varint freqs).
  /// Returns kBadModel on truncation/overflow; no allocation.
  Status load(const std::uint8_t* bytes, std::size_t size);

  std::uint32_t total() const { return cum[count]; }
};

/// Per-packet measurement state as it would live in a packet buffer: the
/// partially emitted stream plus the suspended range-coder registers
/// (low/range pair, mirroring dophy::coding::RangeCoderState).
struct MotePacketState {
  std::uint8_t stream[kMaxStreamBytes];
  std::uint16_t byte_len;
  std::uint32_t low;
  std::uint32_t range;
  std::uint8_t model_version;
  bool truncated;
};

/// Initializes packet state at the origin (fresh registers, empty stream).
void mote_on_origin(MotePacketState& state, std::uint8_t model_version);

/// Appends one range-coded symbol under `model`.  On kBudget the state
/// is marked truncated (matching the host encoder's poisoning semantics).
Status mote_encode_symbol(MotePacketState& state, const MoteModel& model,
                          std::uint16_t symbol);

/// Terminates the stream (sink-side final hop).  After this no more symbols
/// may be appended.
Status mote_finish(MotePacketState& state);

/// Convenience for the per-hop operation: encode receiver id then the
/// aggregated retransmission symbol.
Status mote_append_hop(MotePacketState& state, const MoteModel& id_model,
                       const MoteModel& retx_model, std::uint16_t receiver_id,
                       std::uint16_t retx_symbol);

// The whole per-packet state must stay pocket-sized.
static_assert(sizeof(MotePacketState) <= kMaxStreamBytes + 16,
              "packet state must fit alongside a data payload");

}  // namespace dophy::mote
