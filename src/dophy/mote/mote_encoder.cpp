#include "dophy/mote/mote_encoder.hpp"

namespace dophy::mote {

namespace {

constexpr std::uint32_t kTop = 0xFFFFFFFFu;
constexpr std::uint32_t kHalf = 0x80000000u;
constexpr std::uint32_t kQuarter = 0x40000000u;
constexpr std::uint32_t kThreeQuarters = kHalf + kQuarter;

/// LEB128 read without exceptions; returns false on truncation/overlong.
bool read_varint(const std::uint8_t* bytes, std::size_t size, std::size_t& offset,
                 std::uint32_t& value) {
  value = 0;
  std::uint8_t shift = 0;
  for (std::uint8_t i = 0; i < 5; ++i) {
    if (offset >= size) return false;
    const std::uint8_t b = bytes[offset++];
    value |= static_cast<std::uint32_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return true;
    shift = static_cast<std::uint8_t>(shift + 7);
  }
  return false;
}

/// Appends one bit to the packet stream; false if the budget is exhausted.
bool put_bit(MotePacketState& state, bool bit) {
  const std::uint16_t byte_index = static_cast<std::uint16_t>(state.bit_len >> 3);
  if (byte_index >= kMaxStreamBytes) return false;
  if (bit) {
    state.stream[byte_index] = static_cast<std::uint8_t>(
        state.stream[byte_index] | (0x80u >> (state.bit_len & 7)));
  } else {
    state.stream[byte_index] = static_cast<std::uint8_t>(
        state.stream[byte_index] & ~(0x80u >> (state.bit_len & 7)));
  }
  ++state.bit_len;
  return true;
}

bool emit_with_pending(MotePacketState& state, bool bit) {
  if (!put_bit(state, bit)) return false;
  while (state.pending > 0) {
    if (!put_bit(state, !bit)) return false;
    --state.pending;
  }
  return true;
}

}  // namespace

Status MoteModel::load(const std::uint8_t* bytes, std::size_t size) {
  std::size_t offset = 0;
  std::uint32_t n = 0;
  if (!read_varint(bytes, size, offset, n)) return Status::kBadModel;
  if (n == 0 || n > kMaxModelSymbols) return Status::kBadModel;
  count = static_cast<std::uint16_t>(n);
  std::uint32_t running = 0;
  cum[0] = 0;
  for (std::uint32_t s = 0; s < n; ++s) {
    std::uint32_t freq = 0;
    if (!read_varint(bytes, size, offset, freq)) return Status::kBadModel;
    if (freq == 0) return Status::kBadModel;
    running += freq;
    if (running > 0x10000) return Status::kBadModel;  // coder cap is 2^16
    cum[s + 1] = running;
  }
  return Status::kOk;
}

void mote_on_origin(MotePacketState& state, std::uint8_t model_version) {
  for (std::size_t i = 0; i < kMaxStreamBytes; ++i) state.stream[i] = 0;
  state.bit_len = 0;
  state.low = 0;
  state.high = kTop;
  state.pending = 0;
  state.model_version = model_version;
  state.truncated = false;
}

Status mote_encode_symbol(MotePacketState& state, const MoteModel& model,
                          std::uint16_t symbol) {
  if (state.truncated) return Status::kTruncated;
  if (symbol >= model.count) return Status::kBadSymbol;

  const std::uint64_t total = model.total();
  const std::uint64_t cum_lo = model.cum[symbol];
  const std::uint64_t cum_hi = model.cum[symbol + 1];

  // Snapshot so a budget failure leaves the state untouched (the packet is
  // then poisoned, matching the host encoder).
  const MotePacketState saved = state;

  const std::uint64_t range =
      static_cast<std::uint64_t>(state.high) - state.low + 1;
  state.high =
      static_cast<std::uint32_t>(state.low + (range * cum_hi) / total - 1);
  state.low = static_cast<std::uint32_t>(state.low + (range * cum_lo) / total);

  for (;;) {
    if (state.high < kHalf) {
      if (!emit_with_pending(state, false)) {
        state = saved;
        state.truncated = true;
        return Status::kBudget;
      }
    } else if (state.low >= kHalf) {
      if (!emit_with_pending(state, true)) {
        state = saved;
        state.truncated = true;
        return Status::kBudget;
      }
      state.low -= kHalf;
      state.high -= kHalf;
    } else if (state.low >= kQuarter && state.high < kThreeQuarters) {
      ++state.pending;
      state.low -= kQuarter;
      state.high -= kQuarter;
    } else {
      break;
    }
    state.low <<= 1;
    state.high = (state.high << 1) | 1u;
  }
  return Status::kOk;
}

Status mote_finish(MotePacketState& state) {
  if (state.truncated) return Status::kTruncated;
  ++state.pending;
  const bool bit = state.low >= kQuarter;
  if (!emit_with_pending(state, bit)) {
    state.truncated = true;
    return Status::kBudget;
  }
  return Status::kOk;
}

Status mote_append_hop(MotePacketState& state, const MoteModel& id_model,
                       const MoteModel& retx_model, std::uint16_t receiver_id,
                       std::uint16_t retx_symbol) {
  const Status id_status = mote_encode_symbol(state, id_model, receiver_id);
  if (id_status != Status::kOk) return id_status;
  return mote_encode_symbol(state, retx_model, retx_symbol);
}

}  // namespace dophy::mote
