#include "dophy/mote/mote_encoder.hpp"

namespace dophy::mote {

namespace {

// Range-coder thresholds; must match dophy::coding::kRangeTop/kRangeBot so
// mote and host emit identical bytes.
constexpr std::uint32_t kTop = 1u << 24;
constexpr std::uint32_t kBot = 1u << 16;

/// LEB128 read without exceptions; returns false on truncation/overlong.
bool read_varint(const std::uint8_t* bytes, std::size_t size, std::size_t& offset,
                 std::uint32_t& value) {
  value = 0;
  std::uint8_t shift = 0;
  for (std::uint8_t i = 0; i < 5; ++i) {
    if (offset >= size) return false;
    const std::uint8_t b = bytes[offset++];
    value |= static_cast<std::uint32_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return true;
    shift = static_cast<std::uint8_t>(shift + 7);
  }
  return false;
}

/// Appends one byte to the packet stream; false if the budget is exhausted.
bool put_byte(MotePacketState& state, std::uint8_t byte) {
  if (state.byte_len >= kMaxStreamBytes) return false;
  state.stream[state.byte_len++] = byte;
  return true;
}

/// Mirror of the host coder's renormalization condition (see
/// dophy::coding::RangeEncoder): emit the top byte while no carry can reach
/// it, clamping range at 2^16 underflow.
bool needs_renorm(std::uint32_t low, std::uint32_t& range) {
  if ((low ^ (low + range)) < kTop) return true;
  if (range < kBot) {
    range = (0u - low) & (kBot - 1);
    return true;
  }
  return false;
}

}  // namespace

Status MoteModel::load(const std::uint8_t* bytes, std::size_t size) {
  std::size_t offset = 0;
  std::uint32_t n = 0;
  if (!read_varint(bytes, size, offset, n)) return Status::kBadModel;
  if (n == 0 || n > kMaxModelSymbols) return Status::kBadModel;
  count = static_cast<std::uint16_t>(n);
  std::uint32_t running = 0;
  cum[0] = 0;
  for (std::uint32_t s = 0; s < n; ++s) {
    std::uint32_t freq = 0;
    if (!read_varint(bytes, size, offset, freq)) return Status::kBadModel;
    if (freq == 0) return Status::kBadModel;
    running += freq;
    if (running > 0x10000) return Status::kBadModel;  // coder cap is 2^16
    cum[s + 1] = running;
  }
  return Status::kOk;
}

void mote_on_origin(MotePacketState& state, std::uint8_t model_version) {
  for (std::size_t i = 0; i < kMaxStreamBytes; ++i) state.stream[i] = 0;
  state.byte_len = 0;
  state.low = 0;
  state.range = 0xFFFFFFFFu;
  state.model_version = model_version;
  state.truncated = false;
}

Status mote_encode_symbol(MotePacketState& state, const MoteModel& model,
                          std::uint16_t symbol) {
  if (state.truncated) return Status::kTruncated;
  if (symbol >= model.count) return Status::kBadSymbol;

  // Snapshot so a budget failure leaves the registers untouched (the packet
  // is then poisoned, matching the host encoder).
  const std::uint32_t saved_low = state.low;
  const std::uint32_t saved_range = state.range;
  const std::uint16_t saved_len = state.byte_len;

  const std::uint32_t r = state.range / model.total();
  state.low += r * model.cum[symbol];
  state.range = r * (model.cum[symbol + 1] - model.cum[symbol]);
  while (needs_renorm(state.low, state.range)) {
    if (!put_byte(state, static_cast<std::uint8_t>(state.low >> 24))) {
      state.low = saved_low;
      state.range = saved_range;
      state.byte_len = saved_len;
      state.truncated = true;
      return Status::kBudget;
    }
    state.low <<= 8;
    state.range <<= 8;
  }
  return Status::kOk;
}

Status mote_finish(MotePacketState& state) {
  if (state.truncated) return Status::kTruncated;
  // Mirror of RangeEncoder::finish(): round low up to a 2^16 multiple (two
  // bytes pin the code value), or emit all four bytes when no multiple fits.
  const std::uint64_t low = state.low;
  const std::uint64_t end = low + state.range;
  const std::uint64_t v = (low + 0xFFFFull) & ~0xFFFFull;
  const std::uint16_t saved_len = state.byte_len;
  bool ok;
  if (v < (1ull << 32)) {
    ok = put_byte(state, static_cast<std::uint8_t>(v >> 24)) &&
         put_byte(state, static_cast<std::uint8_t>(v >> 16));
  } else {
    const std::uint64_t x = end - 1;
    ok = put_byte(state, static_cast<std::uint8_t>(x >> 24)) &&
         put_byte(state, static_cast<std::uint8_t>(x >> 16)) &&
         put_byte(state, static_cast<std::uint8_t>(x >> 8)) &&
         put_byte(state, static_cast<std::uint8_t>(x));
  }
  if (!ok) {
    state.byte_len = saved_len;
    state.truncated = true;
    return Status::kBudget;
  }
  return Status::kOk;
}

Status mote_append_hop(MotePacketState& state, const MoteModel& id_model,
                       const MoteModel& retx_model, std::uint16_t receiver_id,
                       std::uint16_t retx_symbol) {
  const Status id_status = mote_encode_symbol(state, id_model, receiver_id);
  if (id_status != Status::kOk) return id_status;
  return mote_encode_symbol(state, retx_model, retx_symbol);
}

}  // namespace dophy::mote
