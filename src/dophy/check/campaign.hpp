#pragma once

// Campaign driver: runs N seeded scenarios through the full pipeline with
// the invariant oracle armed, shrinks any failure to a minimal spec, and
// folds every run into one deterministic digest (so a "golden campaign"
// test can pin the exact behavior of the whole stack across refactors).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dophy/check/check.hpp"
#include "dophy/check/scenario_gen.hpp"

namespace dophy::check {

/// Result of one scenario run (pipeline + oracle verdict).
struct ScenarioOutcome {
  ScenarioSpec spec;
  bool passed = false;
  std::uint64_t violation_count = 0;
  std::string first_violation;  ///< "[kind] message", or the exception text
  std::uint64_t digest = 0;     ///< FNV-1a over spec + stable run counters
  std::uint64_t packets_measured = 0;
  std::uint64_t packets_generated = 0;
  double mae = 0.0;
};

/// A failure plus its shrunk minimal form.
struct FailureRepro {
  ScenarioSpec original;
  ScenarioSpec shrunk;
  std::string first_violation;
  std::size_t shrink_runs = 0;  ///< pipeline runs the shrinker spent
};

struct CampaignOptions {
  std::uint64_t start_seed = 1;
  std::size_t num_seeds = 50;
  /// Scenario-space bias (see ScenarioProfile); affects generation only,
  /// not checking or shrinking.
  ScenarioProfile profile = ScenarioProfile::kDefault;
  bool shrink = true;
  std::size_t max_shrink_runs = 40;
  /// Per-run checker knobs (strict_decode, max_violations, debug_retx_bias
  /// for the oracle self-test).  `enabled` is forced on.
  CheckConfig check;
  /// Test hook: extra failure verdict OR-ed with the oracle's.  Used by the
  /// shrinker tests to make "failure" a function of the spec alone.
  std::function<bool(const ScenarioOutcome&)> fail_predicate;
  /// Progress/diagnostic sink (one line per call); null = silent.
  std::function<void(const std::string&)> log;
};

struct CampaignResult {
  std::size_t scenarios_run = 0;
  std::size_t failures = 0;
  std::uint64_t digest = 0;  ///< combined over all scenarios, order-sensitive
  std::vector<FailureRepro> repros;

  [[nodiscard]] bool passed() const noexcept { return failures == 0; }
};

/// Runs one spec end to end.  Never throws: pipeline exceptions become a
/// failed outcome with the exception text as the violation.
[[nodiscard]] ScenarioOutcome run_scenario(const ScenarioSpec& spec,
                                           const CampaignOptions& options);

/// Greedily simplifies a failing spec (drop trickle, hash, faults, churn,
/// dynamics, shrink topology and windows...) while the failure persists.
/// `runs_used` returns the pipeline runs spent.
[[nodiscard]] ScenarioSpec shrink_failure(const ScenarioSpec& spec,
                                          const CampaignOptions& options,
                                          std::size_t& runs_used);

[[nodiscard]] CampaignResult run_campaign(const CampaignOptions& options);

}  // namespace dophy::check
