#pragma once

// Randomized scenario generation for check campaigns.  A ScenarioSpec is a
// small, fully-explicit description of one pipeline run — every knob the
// fuzzer varies is a spec field, so a failing scenario reproduces from its
// printed spec string alone (shrinking mutates specs beyond what any single
// seed generates, so the seed by itself is not a sufficient repro).

#include <cstdint>
#include <string>
#include <string_view>

#include "dophy/tomo/pipeline.hpp"

namespace dophy::check {

struct ScenarioSpec {
  std::uint64_t seed = 1;        ///< pipeline/net seed
  std::uint32_t nodes = 30;      ///< topology size (incl. sink)
  std::uint8_t loss_kind = 0;    ///< 0 bernoulli, 1 gilbert-elliott, 2 drifting
  bool dynamics = false;         ///< link-quality re-randomization
  bool churn = false;            ///< node failure/recovery process
  bool opportunism = false;      ///< per-packet forwarder selection
  std::uint8_t fault_level = 0;  ///< 0 none, 1 mild chaos, 2 full storm
  std::uint32_t censor_k = 4;    ///< symbol-aggregation K
  bool hash_mode = false;        ///< kHashPath instead of kIdCoding
  bool trickle = false;          ///< real Trickle dissemination
  std::uint32_t max_wire_bytes = 0;  ///< per-frame measurement budget (0 = unlimited)
  std::uint32_t warmup_s = 90;
  std::uint32_t measure_s = 240;

  [[nodiscard]] bool operator==(const ScenarioSpec&) const noexcept = default;

  /// True when every strict-oracle precondition holds: id-coding, no faults,
  /// unlimited wire budget, abstract dissemination.  The campaign only arms
  /// bit-exact decode comparison on benign specs.
  [[nodiscard]] bool benign() const noexcept {
    return fault_level == 0 && !hash_mode && !trickle && max_wire_bytes == 0;
  }
};

/// Campaign flavor: which corner of the scenario space the generator biases
/// toward.  Profiles only reweight field distributions — every spec any
/// profile emits is a valid ScenarioSpec and reproduces the same way.
enum class ScenarioProfile : std::uint8_t {
  kDefault = 0,  ///< broad mix (half benign, half hostile)
  kCodec,        ///< codec stress: bursty losses -> long retry runs, high
                 ///< censor K, tight wire budgets; hash mode off so the
                 ///< range-coder decode path is always the one under test
};

/// Parses a profile name ("default" | "codec"); false on unknown names.
[[nodiscard]] bool parse_profile(std::string_view name, ScenarioProfile& out);
[[nodiscard]] std::string_view to_string(ScenarioProfile profile) noexcept;

/// Derives a spec deterministically from `seed` (which also becomes the
/// pipeline seed).  Field distributions are weighted so roughly half the
/// scenarios are benign enough for strict decode checking while the rest
/// exercise faults, hash paths, wire budgets, and Trickle.
[[nodiscard]] ScenarioSpec generate_scenario(std::uint64_t seed);

/// Profile-biased variant; kDefault is identical to the overload above.
[[nodiscard]] ScenarioSpec generate_scenario(std::uint64_t seed, ScenarioProfile profile);

/// Materializes the spec into a runnable pipeline config (baselines off,
/// checker armed).
[[nodiscard]] dophy::tomo::PipelineConfig make_config(const ScenarioSpec& spec);

/// Compact one-line form, e.g. "seed=7,nodes=24,loss=ge,dyn=1,...".  The
/// exact string `dophy_check --repro` accepts.
[[nodiscard]] std::string to_string(const ScenarioSpec& spec);

/// Parses the to_string form; returns false (spec untouched) on malformed
/// input or unknown keys.
[[nodiscard]] bool parse_spec(std::string_view text, ScenarioSpec& spec);

}  // namespace dophy::check
