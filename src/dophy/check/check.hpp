#pragma once

// dophy::check — runtime-toggleable correctness oracle.
//
// The simulator owns the ground truth (every loss draw, every queue, every
// routing decision), so conservation identities between what the network did
// and what the tomography layer reports are *exactly* checkable.  This
// module records the authoritative tallies into a GroundTruth ledger
// (ground_truth.hpp), validates invariants as the run progresses and at
// end-of-run (invariants.hpp), and drives randomized metamorphic campaigns
// over generated scenarios (scenario_gen.hpp, campaign.hpp).
//
// Everything here is passive and off by default: with checks disabled the
// only cost is one null-pointer branch per observer hook site.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace dophy::check {

struct CheckConfig {
  /// Master switch; a disabled config never installs an observer.
  bool enabled = false;
  /// Compare decoded paths bit-exactly against the ledger when the run is
  /// benign (no faults, id-coding, unlimited wire budget).
  bool strict_decode = true;
  /// Violations recorded verbatim before the report switches to counting
  /// only (a broken identity tends to fire once per packet).
  std::size_t max_violations = 32;
  /// Oracle self-test: bias added to every observed attempt count, modeling
  /// a retx-accounting off-by-one.  The checker *must* flag a nonzero bias —
  /// `dophy_check --selftest` and the campaign tests rely on it.
  std::int32_t debug_retx_bias = 0;
};

/// One failed invariant.  `kind` is a stable dotted identifier (e.g.
/// "link.attempts.mismatch"), `message` the human-readable detail.
struct Violation {
  std::string kind;
  std::string message;
  std::int64_t at_us = 0;  ///< simulation time when detected
};

struct CheckReport {
  std::vector<Violation> violations;    ///< first max_violations, verbatim
  std::uint64_t violation_count = 0;    ///< total, including unrecorded

  // Audit volume (how much work the oracle actually did).
  std::uint64_t events_traced = 0;      ///< simulator events seen by the hook
  std::uint64_t packets_generated = 0;
  std::uint64_t packets_finished = 0;
  std::uint64_t transmissions = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t dedupe_window_misses = 0;  ///< window expiry re-admissions (legal)
  std::uint64_t parent_changes = 0;
  std::uint64_t routing_cycles_seen = 0;   ///< transient loops (expected, not violations)
  std::uint64_t decoded_paths_verified = 0;
  std::uint64_t links_audited = 0;
  bool finalized = false;

  [[nodiscard]] bool passed() const noexcept { return violation_count == 0; }

  /// One-line human summary ("check: PASS, 1234 tx / 56 links audited" or
  /// "check: FAIL (3 violations, first: ...").
  [[nodiscard]] std::string summary() const;
};

/// Process-wide enable, so a CLI flag (bench `--check`) can arm the checker
/// inside every pipeline it runs without threading config through each
/// call site.  OR-ed with PipelineConfig::check.enabled.
void set_global_enabled(bool enabled) noexcept;
[[nodiscard]] bool global_enabled() noexcept;

/// Process-wide failure tally for globally-armed runs: the pipeline bumps
/// it for every finalized report with violations, and bench `--check`
/// turns a nonzero count into a nonzero exit at process end (the result
/// tables alone would hide a failed oracle).
void note_global_failure() noexcept;
[[nodiscard]] std::uint64_t global_failure_count() noexcept;

}  // namespace dophy::check
