#pragma once

// Authoritative per-run ledger maintained from the simulator's observer
// hooks.  The ledger is pure bookkeeping — it accumulates what the network
// *actually did* (per-link ARQ tallies with exact loss bounds, packet fate
// counts, the exact set of dedupe keys ever admitted) so the InvariantChecker
// can compare it against the network's own counters and the decoder's output.
//
// Loss accounting is interval arithmetic, not a point estimate: a delivered
// exchange whose winning frame carried attempt counter `f` out of `n` frames
// lost exactly `f - 1` of the first `f` frames, while the `n - f` duplicate
// frames after the first reception may each have been lost or heard (the
// receiver ACKs every copy; the sender retries only on ACK loss).  So the
// true per-link loss count lies in [f - 1, n - 1] for delivered exchanges and
// equals `n` for failed ones — bounds the checker can hold the Link's
// empirical counters to *exactly*.

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "dophy/net/trace.hpp"
#include "dophy/net/types.hpp"

namespace dophy::check {

/// Per-directed-link ARQ tallies.
struct LinkTally {
  std::uint64_t attempts = 0;          ///< data frames put on the air
  std::uint64_t exchanges = 0;         ///< ARQ exchanges resolved
  std::uint64_t failed_exchanges = 0;  ///< budget exhausted, nothing heard
  std::uint64_t min_losses = 0;        ///< lower bound on frames lost
  std::uint64_t max_losses = 0;        ///< upper bound on frames lost
};

class GroundTruth {
 public:
  /// A packet entered the network at its origin.
  void record_generated() noexcept { ++generated_; ++live_packets_; }

  /// Mid-run installs: packets already queued or in flight at install time
  /// are live without ever being record_generated() here, so the checker
  /// seeds the live count with the network's snapshot.
  void set_initial_live(std::uint64_t live) noexcept { live_packets_ = live; }

  /// A channel-using ARQ exchange was resolved.  `first_rx` is the attempt
  /// index of the first frame the receiver heard (0 when !delivered).
  void record_exchange(dophy::net::LinkKey link, std::uint32_t attempts,
                       std::uint32_t first_rx, bool delivered);

  /// A packet copy was admitted at `receiver` under `dedupe_key`.  Returns
  /// true when the exact set had already admitted this (receiver, key) pair —
  /// i.e. the node's bounded DedupeWindow *should* have flagged a duplicate
  /// (it may legally miss one after window expiry; it must never invent one).
  bool record_arrival(dophy::net::NodeId receiver, std::uint64_t dedupe_key);

  /// A packet's life ended.  Returns false on conservation underflow (more
  /// packets finished than were ever generated).
  bool record_finished(dophy::net::PacketFate fate) noexcept;

  [[nodiscard]] const LinkTally* find_link(dophy::net::LinkKey key) const noexcept;
  [[nodiscard]] const std::unordered_map<dophy::net::LinkKey, LinkTally,
                                         dophy::net::LinkKeyHash>&
  links() const noexcept {
    return links_;
  }

  [[nodiscard]] std::uint64_t generated() const noexcept { return generated_; }
  [[nodiscard]] std::uint64_t finished() const noexcept { return finished_; }
  /// Packets generated but not yet finished (must equal queued + in-flight).
  [[nodiscard]] std::uint64_t live_packets() const noexcept { return live_packets_; }
  [[nodiscard]] std::uint64_t fate_count(dophy::net::PacketFate fate) const noexcept {
    return fates_[static_cast<std::size_t>(fate)];
  }
  [[nodiscard]] std::uint64_t total_attempts() const noexcept { return total_attempts_; }

 private:
  std::unordered_map<dophy::net::LinkKey, LinkTally, dophy::net::LinkKeyHash> links_;
  /// Exact dedupe-key set: (receiver << 48) | dedupe_key; dedupe_key itself
  /// is (flow_key << 16) | hop_count = 48 bits, so the pack is lossless.
  std::unordered_set<std::uint64_t> seen_;
  std::uint64_t fates_[5] = {0, 0, 0, 0, 0};
  std::uint64_t generated_ = 0;
  std::uint64_t finished_ = 0;
  std::uint64_t live_packets_ = 0;
  std::uint64_t total_attempts_ = 0;
};

}  // namespace dophy::check
