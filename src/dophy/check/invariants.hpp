#pragma once

// InvariantChecker: the active half of the oracle.  Installs itself as the
// Network's passive observer plus the Simulator's event-trace hook, feeds a
// GroundTruth ledger, validates per-event invariants as the run progresses,
// and audits the end-of-run conservation identities in finalize().
//
// What is checked (and why it is *exact*, not statistical):
//  - event dispatch order: (time, seq) strictly increasing — the engine's
//    total-order contract;
//  - every ARQ exchange: attempt counts within the MAC budget, first-rx
//    index consistent with delivery, dead-receiver exchanges never touch
//    the channel, endpoints are radio neighbors;
//  - per-link accounting: the ledger's attempt sum equals the Link's own
//    data_attempts counter delta exactly, and the Link's loss counter delta
//    lies inside the ledger's [min, max] loss interval;
//  - dedupe: the bounded DedupeWindow may forget (window expiry) but must
//    never invent a duplicate — checked against an exact key set;
//  - packet conservation: generated == finished + live, and live equals
//    queued + in-flight at finalize;
//  - fate/stat cross-checks: NetworkStats deltas equal the ledger's tallies;
//  - hop traces: every finished packet's true_hops form a connected path
//    with monotone timestamps and fate-consistent shape;
//  - routing sanity: a re-selected parent is never self, always a topology
//    neighbor, and the sink never selects one.  Transient routing *loops*
//    are expected CTP behavior (the datapath TTL + inconsistency detection
//    handle them), so cycles are counted, not flagged;
//  - decoded paths (fed by the pipeline in benign runs): bit-exact match
//    against the packet's ground-truth hops under K-censoring semantics.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "dophy/check/check.hpp"
#include "dophy/check/ground_truth.hpp"
#include "dophy/net/network.hpp"

namespace dophy::check {

class InvariantChecker final : public dophy::net::NetworkObserver {
 public:
  explicit InvariantChecker(const CheckConfig& config = {});
  ~InvariantChecker() override;

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  /// Hooks into `net` (observer + simulator trace hook) and snapshots every
  /// counter the finalize() identities difference against, so installing
  /// mid-run audits only the remainder.  The checker must outlive the
  /// network or be uninstall()ed first.
  void install(dophy::net::Network& net);
  void uninstall() noexcept;

  // NetworkObserver ----------------------------------------------------------
  void on_generated(const dophy::net::Packet& packet, dophy::net::SimTime now) override;
  void on_transmission(dophy::net::NodeId sender, dophy::net::NodeId receiver,
                       std::uint32_t attempts, std::uint32_t attempts_to_first_rx,
                       bool delivered, bool channel_used,
                       dophy::net::SimTime now) override;
  void on_arrival(const dophy::net::Packet& packet, dophy::net::NodeId receiver,
                  dophy::net::NodeId sender, std::uint64_t dedupe_key, bool duplicate,
                  dophy::net::SimTime now) override;
  void on_parent_change(dophy::net::NodeId node, dophy::net::SimTime now) override;
  void on_finished(const dophy::net::Packet& packet, dophy::net::PacketFate fate,
                   dophy::net::SimTime now) override;

  // Decode-side oracle -------------------------------------------------------
  /// Plain-data view of one decoded hop (keeps this library independent of
  /// dophy::tomo; the pipeline adapts its DecodedHop into this).
  struct DecodedHopView {
    dophy::net::NodeId sender = dophy::net::kInvalidNode;
    dophy::net::NodeId receiver = dophy::net::kInvalidNode;
    std::uint32_t attempts = 0;
    bool censored = false;
  };

  /// Compares a successfully decoded path against the packet's ground-truth
  /// hops: same origin, same hop sequence, and per-hop K-censoring semantics
  /// (attempts < K decode exactly; attempts >= K decode as censored-at-K).
  /// Only meaningful for benign id-coding runs — the caller gates on that.
  void verify_decoded_path(const dophy::net::Packet& packet,
                           dophy::net::NodeId decoded_origin,
                           std::span<const DecodedHopView> hops, std::uint32_t censor_k);

  /// End-of-run decoder audit for benign runs: every decode failure must be
  /// a path truncation, and truncations are only legal when the encoder
  /// reported hops without the stamped model (missing_model_hops > 0).
  void verify_decoder_stats(std::uint64_t decode_failures, std::uint64_t path_truncated,
                            std::uint64_t missing_model_hops);

  /// Runs the end-of-run identities and returns the sealed report.
  [[nodiscard]] CheckReport finalize();

  [[nodiscard]] const CheckReport& report() const noexcept { return report_; }
  [[nodiscard]] const GroundTruth& ledger() const noexcept { return ledger_; }
  [[nodiscard]] const CheckConfig& config() const noexcept { return config_; }

  void add_violation(std::string kind, std::string message);

 private:
  struct PendingTx {
    dophy::net::NodeId receiver = dophy::net::kInvalidNode;
    bool delivered = false;
    bool consumed = false;
  };

  static void trace_hook(void* ctx, dophy::net::SimTime time, std::uint64_t seq,
                         dophy::net::EventKind kind);

  /// Walks the parent chain from `node`; counts a transient cycle when the
  /// sink is unreachable within node_count steps.
  void audit_parent_chain(dophy::net::NodeId node);

  CheckConfig config_;
  dophy::net::Network* net_ = nullptr;
  GroundTruth ledger_;
  CheckReport report_;

  // Install-time snapshots (identities audit the installed window only).
  std::unordered_map<dophy::net::LinkKey, dophy::net::Link::Snapshot,
                     dophy::net::LinkKeyHash>
      link_start_;
  dophy::net::NetworkStats stats_start_;
  std::uint64_t duplicates_start_ = 0;

  /// One outstanding unicast per sender (radio is half-duplex), so arrivals
  /// pair with transmissions through a per-sender slot.
  std::vector<PendingTx> pending_;

  dophy::net::SimTime last_event_time_ = -1;
  std::uint64_t last_event_seq_ = 0;
  /// Transmissions already in flight at install time: each may land one
  /// arrival that legitimately has no observed sending exchange.
  std::uint64_t grace_arrivals_ = 0;
  std::uint32_t max_attempts_ = 0;
  std::uint16_t max_hops_ = 0;
};

}  // namespace dophy::check
