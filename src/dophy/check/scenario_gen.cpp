#include "dophy/check/scenario_gen.hpp"

#include <charconv>
#include <sstream>

#include "dophy/common/rng.hpp"
#include "dophy/eval/scenario.hpp"

namespace dophy::check {

namespace {

constexpr std::uint64_t kSpecStream = 0x5ec5'7e41'9c0f'feedULL;
constexpr std::uint64_t kCodecStream = 0xc0de'c0de'5eed'beefULL;

const char* loss_name(std::uint8_t kind) {
  switch (kind) {
    case 1: return "ge";
    case 2: return "drift";
    default: return "bern";
  }
}

bool parse_loss(std::string_view value, std::uint8_t& out) {
  if (value == "bern") { out = 0; return true; }
  if (value == "ge") { out = 1; return true; }
  if (value == "drift") { out = 2; return true; }
  return false;
}

bool parse_u64(std::string_view value, std::uint64_t& out) {
  const auto* end = value.data() + value.size();
  const auto res = std::from_chars(value.data(), end, out);
  return res.ec == std::errc{} && res.ptr == end;
}

bool parse_bool(std::string_view value, bool& out) {
  if (value == "0") { out = false; return true; }
  if (value == "1") { out = true; return true; }
  return false;
}

}  // namespace

ScenarioSpec generate_scenario(std::uint64_t seed) {
  dophy::common::Rng rng(seed ^ kSpecStream);
  ScenarioSpec spec;
  spec.seed = seed;
  spec.nodes = 20 + static_cast<std::uint32_t>(rng.next_below(21));  // [20, 40]
  spec.loss_kind = static_cast<std::uint8_t>(rng.next_below(3));
  spec.dynamics = rng.bernoulli(0.35);
  spec.churn = rng.bernoulli(0.30);
  spec.opportunism = rng.bernoulli(0.25);
  const double fault_draw = rng.next_double();
  spec.fault_level = fault_draw < 0.5 ? 0 : (fault_draw < 0.8 ? 1 : 2);
  spec.censor_k = 2 + static_cast<std::uint32_t>(rng.next_below(7));  // [2, 8]
  spec.hash_mode = rng.bernoulli(0.20);
  spec.trickle = rng.bernoulli(0.20);
  spec.max_wire_bytes =
      rng.bernoulli(0.20) ? 24 + static_cast<std::uint32_t>(rng.next_below(41)) : 0;
  spec.warmup_s = 90;
  spec.measure_s = 120 + static_cast<std::uint32_t>(rng.next_below(3)) * 60;  // 120..240
  return spec;
}

ScenarioSpec generate_scenario(std::uint64_t seed, ScenarioProfile profile) {
  if (profile == ScenarioProfile::kDefault) return generate_scenario(seed);

  // Codec stress: every knob that shapes the range coder's input or wire
  // handling is pushed toward its hard regime.
  dophy::common::Rng rng(seed ^ kCodecStream);
  ScenarioSpec spec = generate_scenario(seed);
  // Gilbert-Elliott bursts (sometimes drifting) make retry counts pile onto
  // the censored symbol in long runs — the skewed-loss regime where the
  // coder's clamp and the censored tail both work hardest.
  spec.loss_kind = rng.bernoulli(0.70) ? 1 : 2;
  // Bias censoring high: symbol alphabets of 6-8 with heavy tail mass.
  spec.censor_k = rng.bernoulli(0.65)
                      ? 6 + static_cast<std::uint32_t>(rng.next_below(3))   // {6,7,8}
                      : 2 + static_cast<std::uint32_t>(rng.next_below(4));  // {2..5}
  // Id-coding only: the hash-path decoder never touches the id model, so
  // hash scenarios would waste codec-campaign seeds.
  spec.hash_mode = false;
  // Tight budgets exercise mid-path truncation poisoning and sink rejection.
  spec.max_wire_bytes =
      rng.bernoulli(0.50) ? 16 + static_cast<std::uint32_t>(rng.next_below(25)) : 0;
  // Report mutation (bit flips, truncation) drives the decoder's typed-error
  // paths; keep a benign share so strict decode comparison still runs.
  const double fault_draw = rng.next_double();
  spec.fault_level = fault_draw < 0.4 ? 0 : (fault_draw < 0.75 ? 1 : 2);
  return spec;
}

bool parse_profile(std::string_view name, ScenarioProfile& out) {
  if (name == "default") { out = ScenarioProfile::kDefault; return true; }
  if (name == "codec") { out = ScenarioProfile::kCodec; return true; }
  return false;
}

std::string_view to_string(ScenarioProfile profile) noexcept {
  return profile == ScenarioProfile::kCodec ? "codec" : "default";
}

dophy::tomo::PipelineConfig make_config(const ScenarioSpec& spec) {
  auto config = dophy::eval::default_pipeline(spec.nodes, spec.seed);
  config.warmup_s = spec.warmup_s;
  config.measure_s = spec.measure_s;
  config.snapshot_interval_s = 60.0;
  config.run_baselines = false;  // the oracle audits the pipeline, not MAE races
  config.min_truth_attempts = 10;

  switch (spec.loss_kind) {
    case 1: dophy::eval::make_bursty(config); break;
    case 2: dophy::eval::make_drifting(config, 0.05, 300.0); break;
    default: break;
  }
  // Dynamics after the loss kind: it switches the process to kDrifting with
  // shuffle enabled, which is exactly the parent-churn generator we want.
  if (spec.dynamics) dophy::eval::add_dynamics(config, 90.0, 0.15);
  if (spec.churn) dophy::eval::add_churn(config, 0.15, 240.0, 45.0);
  if (spec.opportunism) dophy::eval::add_opportunism(config, 0.15);
  if (spec.fault_level > 0) {
    dophy::eval::add_faults(config, spec.fault_level == 1 ? 0.3 : 1.0);
  }

  config.dophy.censor_threshold = spec.censor_k;
  config.dophy.path_mode = spec.hash_mode ? dophy::tomo::PathMode::kHashPath
                                          : dophy::tomo::PathMode::kIdCoding;
  config.dophy.max_wire_bytes = spec.max_wire_bytes;
  config.dophy.use_trickle_dissemination = spec.trickle;

  config.check.enabled = true;
  config.check.strict_decode = spec.benign();
  return config;
}

std::string to_string(const ScenarioSpec& spec) {
  std::ostringstream os;
  os << "seed=" << spec.seed << ",nodes=" << spec.nodes
     << ",loss=" << loss_name(spec.loss_kind) << ",dyn=" << spec.dynamics
     << ",churn=" << spec.churn << ",opp=" << spec.opportunism
     << ",faults=" << static_cast<unsigned>(spec.fault_level)
     << ",k=" << spec.censor_k << ",hash=" << spec.hash_mode
     << ",trickle=" << spec.trickle << ",wire=" << spec.max_wire_bytes
     << ",warmup=" << spec.warmup_s << ",measure=" << spec.measure_s;
  return os.str();
}

bool parse_spec(std::string_view text, ScenarioSpec& spec) {
  ScenarioSpec out;
  std::string_view rest = text;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view pair =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) return false;
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value = pair.substr(eq + 1);

    std::uint64_t u = 0;
    bool b = false;
    if (key == "seed") {
      if (!parse_u64(value, u)) return false;
      out.seed = u;
    } else if (key == "nodes") {
      if (!parse_u64(value, u) || u < 4 || u > 10000) return false;
      out.nodes = static_cast<std::uint32_t>(u);
    } else if (key == "loss") {
      if (!parse_loss(value, out.loss_kind)) return false;
    } else if (key == "dyn") {
      if (!parse_bool(value, b)) return false;
      out.dynamics = b;
    } else if (key == "churn") {
      if (!parse_bool(value, b)) return false;
      out.churn = b;
    } else if (key == "opp") {
      if (!parse_bool(value, b)) return false;
      out.opportunism = b;
    } else if (key == "faults") {
      if (!parse_u64(value, u) || u > 2) return false;
      out.fault_level = static_cast<std::uint8_t>(u);
    } else if (key == "k") {
      if (!parse_u64(value, u) || u < 2 || u > 64) return false;
      out.censor_k = static_cast<std::uint32_t>(u);
    } else if (key == "hash") {
      if (!parse_bool(value, b)) return false;
      out.hash_mode = b;
    } else if (key == "trickle") {
      if (!parse_bool(value, b)) return false;
      out.trickle = b;
    } else if (key == "wire") {
      if (!parse_u64(value, u) || u > 65535) return false;
      out.max_wire_bytes = static_cast<std::uint32_t>(u);
    } else if (key == "warmup") {
      if (!parse_u64(value, u) || u == 0 || u > 86400) return false;
      out.warmup_s = static_cast<std::uint32_t>(u);
    } else if (key == "measure") {
      if (!parse_u64(value, u) || u == 0 || u > 86400) return false;
      out.measure_s = static_cast<std::uint32_t>(u);
    } else {
      return false;
    }
  }
  spec = out;
  return true;
}

}  // namespace dophy::check
