#include "dophy/check/check.hpp"

#include <sstream>

namespace dophy::check {

namespace {
std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_failures{0};
}  // namespace

void set_global_enabled(bool enabled) noexcept {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool global_enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void note_global_failure() noexcept {
  g_failures.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t global_failure_count() noexcept {
  return g_failures.load(std::memory_order_relaxed);
}

std::string CheckReport::summary() const {
  std::ostringstream os;
  if (passed()) {
    os << "check: PASS (" << transmissions << " tx, " << arrivals << " arrivals, "
       << links_audited << " links, " << decoded_paths_verified << " decoded paths audited)";
  } else {
    os << "check: FAIL (" << violation_count << " violation"
       << (violation_count == 1 ? "" : "s");
    if (!violations.empty()) {
      os << ", first: [" << violations.front().kind << "] " << violations.front().message;
    }
    os << ")";
  }
  return os.str();
}

}  // namespace dophy::check
