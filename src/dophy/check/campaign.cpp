#include "dophy/check/campaign.hpp"

#include <cmath>
#include <exception>
#include <sstream>
#include <utility>

#include "dophy/tomo/pipeline.hpp"

namespace dophy::check {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_mix(std::uint64_t hash, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (i * 8)) & 0xFF;
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t fnv_mix_str(std::uint64_t hash, const std::string& text) noexcept {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

bool outcome_failed(const ScenarioOutcome& outcome, const CampaignOptions& options) {
  if (!outcome.passed) return true;
  return options.fail_predicate && options.fail_predicate(outcome);
}

}  // namespace

ScenarioOutcome run_scenario(const ScenarioSpec& spec, const CampaignOptions& options) {
  ScenarioOutcome outcome;
  outcome.spec = spec;

  dophy::tomo::PipelineConfig config = make_config(spec);
  config.check = options.check;
  config.check.enabled = true;
  config.check.strict_decode = options.check.strict_decode && spec.benign();

  try {
    const dophy::tomo::PipelineResult result = dophy::tomo::run_pipeline(config);
    const CheckReport& report = result.check_report;
    outcome.passed = report.passed();
    outcome.violation_count = report.violation_count;
    if (!report.violations.empty()) {
      outcome.first_violation =
          "[" + report.violations.front().kind + "] " + report.violations.front().message;
    }
    outcome.packets_measured = result.packets_measured;
    outcome.packets_generated = result.net_stats.packets_generated;

    std::uint64_t digest = fnv_mix_str(kFnvOffset, to_string(spec));
    digest = fnv_mix(digest, report.violation_count);
    digest = fnv_mix(digest, result.packets_measured);
    digest = fnv_mix(digest, result.net_stats.packets_generated);
    digest = fnv_mix(digest, result.net_stats.packets_delivered);
    digest = fnv_mix(digest, result.net_stats.parent_changes);
    digest = fnv_mix(digest, result.decoder_stats.packets_decoded);
    digest = fnv_mix(digest, result.decoder_stats.decode_failures);
    for (const auto& method : result.methods) {
      if (method.name == "dophy") {
        outcome.mae = method.summary.mae;
        // Fixed-seed runs are bit-identical, so hashing the scaled MAE is
        // stable; llround avoids platform printf differences.
        digest = fnv_mix(digest,
                         static_cast<std::uint64_t>(std::llround(method.summary.mae * 1e9)));
      }
    }
    outcome.digest = digest;
  } catch (const std::exception& e) {
    outcome.passed = false;
    outcome.violation_count = 1;
    outcome.first_violation = std::string("[exception] ") + e.what();
    outcome.digest = fnv_mix_str(fnv_mix_str(kFnvOffset, to_string(spec)), e.what());
  }
  return outcome;
}

ScenarioSpec shrink_failure(const ScenarioSpec& spec, const CampaignOptions& options,
                            std::size_t& runs_used) {
  // Ordered simplification transforms; each returns false when it cannot
  // simplify the spec further.
  using Transform = bool (*)(ScenarioSpec&);
  static constexpr Transform kTransforms[] = {
      [](ScenarioSpec& s) { return std::exchange(s.trickle, false); },
      [](ScenarioSpec& s) { return std::exchange(s.hash_mode, false); },
      [](ScenarioSpec& s) {
        return std::exchange(s.max_wire_bytes, 0U) != 0;
      },
      [](ScenarioSpec& s) {
        return std::exchange(s.fault_level, static_cast<std::uint8_t>(0)) != 0;
      },
      [](ScenarioSpec& s) { return std::exchange(s.opportunism, false); },
      [](ScenarioSpec& s) { return std::exchange(s.churn, false); },
      [](ScenarioSpec& s) { return std::exchange(s.dynamics, false); },
      [](ScenarioSpec& s) {
        return std::exchange(s.loss_kind, static_cast<std::uint8_t>(0)) != 0;
      },
      [](ScenarioSpec& s) {
        if (s.censor_k == 4) return false;
        s.censor_k = 4;
        return true;
      },
      [](ScenarioSpec& s) {
        if (s.measure_s <= 120) return false;
        s.measure_s = 120;
        return true;
      },
      [](ScenarioSpec& s) {
        if (s.nodes <= 20) return false;
        s.nodes = 20;
        return true;
      },
      [](ScenarioSpec& s) {
        if (s.nodes <= 12) return false;
        s.nodes = 12;
        return true;
      },
      [](ScenarioSpec& s) {
        if (s.warmup_s <= 60) return false;
        s.warmup_s = 60;
        return true;
      },
  };

  ScenarioSpec best = spec;
  runs_used = 0;
  bool progressed = true;
  while (progressed && runs_used < options.max_shrink_runs) {
    progressed = false;
    for (const Transform transform : kTransforms) {
      if (runs_used >= options.max_shrink_runs) break;
      ScenarioSpec candidate = best;
      if (!transform(candidate)) continue;
      ++runs_used;
      const ScenarioOutcome outcome = run_scenario(candidate, options);
      if (outcome_failed(outcome, options)) {
        best = candidate;
        progressed = true;
        if (options.log) {
          options.log("shrink: kept " + to_string(best));
        }
      }
    }
  }
  return best;
}

CampaignResult run_campaign(const CampaignOptions& options) {
  CampaignResult result;
  result.digest = kFnvOffset;
  for (std::size_t i = 0; i < options.num_seeds; ++i) {
    const std::uint64_t seed = options.start_seed + i;
    const ScenarioSpec spec = generate_scenario(seed, options.profile);
    const ScenarioOutcome outcome = run_scenario(spec, options);
    ++result.scenarios_run;
    result.digest = fnv_mix(result.digest, outcome.digest);

    if (outcome_failed(outcome, options)) {
      ++result.failures;
      FailureRepro repro;
      repro.original = spec;
      repro.first_violation = outcome.first_violation;
      if (options.log) {
        options.log("FAIL seed=" + std::to_string(seed) + " " + outcome.first_violation);
      }
      if (options.shrink) {
        repro.shrunk = shrink_failure(spec, options, repro.shrink_runs);
      } else {
        repro.shrunk = spec;
      }
      result.repros.push_back(std::move(repro));
    } else if (options.log && (i + 1) % 25 == 0) {
      std::ostringstream os;
      os << "ok " << (i + 1) << "/" << options.num_seeds;
      options.log(os.str());
    }
  }
  return result;
}

}  // namespace dophy::check
