#include "dophy/check/ground_truth.hpp"

namespace dophy::check {

void GroundTruth::record_exchange(dophy::net::LinkKey link, std::uint32_t attempts,
                                  std::uint32_t first_rx, bool delivered) {
  LinkTally& tally = links_[link];
  tally.attempts += attempts;
  total_attempts_ += attempts;
  ++tally.exchanges;
  if (delivered) {
    // Frames before the first reception were lost; duplicates after it are
    // individually unknowable from the sender side.
    tally.min_losses += first_rx > 0 ? first_rx - 1 : 0;
    tally.max_losses += attempts > 0 ? attempts - 1 : 0;
  } else {
    ++tally.failed_exchanges;
    tally.min_losses += attempts;
    tally.max_losses += attempts;
  }
}

bool GroundTruth::record_arrival(dophy::net::NodeId receiver, std::uint64_t dedupe_key) {
  const std::uint64_t key = (static_cast<std::uint64_t>(receiver) << 48) | dedupe_key;
  return !seen_.insert(key).second;
}

bool GroundTruth::record_finished(dophy::net::PacketFate fate) noexcept {
  ++finished_;
  ++fates_[static_cast<std::size_t>(fate)];
  if (live_packets_ == 0) return false;
  --live_packets_;
  return true;
}

const LinkTally* GroundTruth::find_link(dophy::net::LinkKey key) const noexcept {
  const auto it = links_.find(key);
  return it == links_.end() ? nullptr : &it->second;
}

}  // namespace dophy::check
