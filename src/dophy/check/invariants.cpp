#include "dophy/check/invariants.hpp"

#include <algorithm>
#include <sstream>

namespace dophy::check {

using dophy::net::kInvalidNode;
using dophy::net::kSinkId;
using dophy::net::LinkKey;
using dophy::net::Network;
using dophy::net::NodeId;
using dophy::net::Packet;
using dophy::net::PacketFate;
using dophy::net::SimTime;

InvariantChecker::InvariantChecker(const CheckConfig& config) : config_(config) {}

InvariantChecker::~InvariantChecker() { uninstall(); }

void InvariantChecker::install(Network& net) {
  net_ = &net;
  link_start_.clear();
  for (const LinkKey key : net.link_keys()) {
    link_start_.emplace(key, net.link(key.from, key.to).snapshot());
  }
  stats_start_ = net.stats();
  duplicates_start_ = 0;
  std::uint64_t queued_now = 0;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const auto& node = net.node(static_cast<NodeId>(i));
    duplicates_start_ += node.stats().duplicates_discarded;
    queued_now += node.queue_depth();
  }
  // Mid-run install: packets already live and transmissions already in the
  // air predate the ledger; seed conservation and arrival pairing with the
  // network's exact snapshot so the audit covers only the observed window.
  ledger_.set_initial_live(queued_now + net.inflight_count());
  grace_arrivals_ = net.inflight_count();
  pending_.assign(net.node_count(), PendingTx{});
  max_attempts_ = net.config().mac.max_attempts;
  max_hops_ = net.config().traffic.max_hops;
  last_event_time_ = -1;
  last_event_seq_ = 0;
  net.set_observer(this);
  net.sim().set_trace_hook(&InvariantChecker::trace_hook, this);
}

void InvariantChecker::uninstall() noexcept {
  if (net_ == nullptr) return;
  net_->set_observer(nullptr);
  net_->sim().set_trace_hook(nullptr, nullptr);
  net_ = nullptr;
}

void InvariantChecker::add_violation(std::string kind, std::string message) {
  ++report_.violation_count;
  if (report_.violations.size() < config_.max_violations) {
    Violation v;
    v.kind = std::move(kind);
    v.message = std::move(message);
    v.at_us = net_ != nullptr ? net_->sim().now() : 0;
    report_.violations.push_back(std::move(v));
  }
}

void InvariantChecker::trace_hook(void* ctx, SimTime time, std::uint64_t seq,
                                  dophy::net::EventKind /*kind*/) {
  auto* self = static_cast<InvariantChecker*>(ctx);
  ++self->report_.events_traced;
  if (time < self->last_event_time_ ||
      (time == self->last_event_time_ && seq <= self->last_event_seq_)) {
    std::ostringstream os;
    os << "event (t=" << time << ", seq=" << seq << ") dispatched after (t="
       << self->last_event_time_ << ", seq=" << self->last_event_seq_ << ")";
    self->add_violation("events.order", os.str());
  }
  self->last_event_time_ = time;
  self->last_event_seq_ = seq;
}

void InvariantChecker::on_generated(const Packet& packet, SimTime /*now*/) {
  ledger_.record_generated();
  ++report_.packets_generated;
  if (packet.origin == kInvalidNode || packet.hop_count != 0 || !packet.true_hops.empty()) {
    std::ostringstream os;
    os << "fresh packet malformed: origin=" << packet.origin
       << " hop_count=" << packet.hop_count << " true_hops=" << packet.true_hops.size();
    add_violation("generated.malformed", os.str());
  }
}

void InvariantChecker::on_transmission(NodeId sender, NodeId receiver,
                                       std::uint32_t attempts,
                                       std::uint32_t attempts_to_first_rx, bool delivered,
                                       bool channel_used, SimTime /*now*/) {
  ++report_.transmissions;
  if (!net_->topology().are_neighbors(sender, receiver)) {
    std::ostringstream os;
    os << "exchange " << sender << "->" << receiver << " has no radio edge";
    add_violation("tx.not_neighbor", os.str());
  }
  if (channel_used) {
    if (attempts < 1 || attempts > max_attempts_) {
      std::ostringstream os;
      os << "exchange " << sender << "->" << receiver << " used " << attempts
         << " attempts (budget " << max_attempts_ << ")";
      add_violation("tx.attempts.range", os.str());
    }
    if (delivered && (attempts_to_first_rx < 1 || attempts_to_first_rx > attempts)) {
      std::ostringstream os;
      os << "delivered exchange " << sender << "->" << receiver << " first_rx="
         << attempts_to_first_rx << " outside [1, " << attempts << "]";
      add_violation("tx.first_rx.range", os.str());
    }
    if (!delivered && attempts_to_first_rx != 0) {
      std::ostringstream os;
      os << "failed exchange " << sender << "->" << receiver
         << " carries first_rx=" << attempts_to_first_rx;
      add_violation("tx.first_rx.nonzero", os.str());
    }
    // debug_retx_bias models a retx-accounting off-by-one inside the oracle
    // itself; the link-counter cross-check in finalize() must catch it.
    const std::int64_t biased =
        static_cast<std::int64_t>(attempts) + config_.debug_retx_bias;
    ledger_.record_exchange(LinkKey{sender, receiver},
                            static_cast<std::uint32_t>(std::max<std::int64_t>(biased, 0)),
                            attempts_to_first_rx, delivered);
  } else {
    // Dead receiver: the ARQ budget burns without touching the channel.
    if (delivered || attempts != max_attempts_) {
      std::ostringstream os;
      os << "dead-receiver exchange " << sender << "->" << receiver
         << " delivered=" << delivered << " attempts=" << attempts;
      add_violation("tx.dead_receiver", os.str());
    }
  }
  pending_[sender] = PendingTx{receiver, delivered, false};
}

void InvariantChecker::on_arrival(const Packet& packet, NodeId receiver, NodeId sender,
                                  std::uint64_t dedupe_key, bool duplicate,
                                  SimTime /*now*/) {
  ++report_.arrivals;
  const std::uint64_t expected_key =
      (static_cast<std::uint64_t>(packet.flow_key()) << 16) | packet.hop_count;
  if (dedupe_key != expected_key) {
    std::ostringstream os;
    os << "dedupe key " << dedupe_key << " != (flow_key << 16 | hop_count) = "
       << expected_key;
    add_violation("arrival.dedupe_key", os.str());
  }
  PendingTx& pending = pending_[sender];
  if (!pending.delivered || pending.receiver != receiver || pending.consumed) {
    // Senders are half-duplex, so an exchange in flight at install time is
    // exactly one legitimately unobserved arrival per sender.
    if (grace_arrivals_ > 0) {
      --grace_arrivals_;
    } else {
      std::ostringstream os;
      os << "arrival " << sender << "->" << receiver
         << " does not pair with the sender's last exchange (receiver="
         << pending.receiver << " delivered=" << pending.delivered
         << " consumed=" << pending.consumed << ")";
      add_violation("arrival.unpaired", os.str());
    }
  }
  pending.consumed = true;

  const bool exact_duplicate = ledger_.record_arrival(receiver, dedupe_key);
  if (duplicate) {
    ++report_.duplicates;
    // The bounded window may forget (expiry), but a duplicate verdict for a
    // key the exact set never admitted means dedupe dropped a unique packet.
    if (!exact_duplicate) {
      std::ostringstream os;
      os << "node " << receiver << " flagged never-seen key " << dedupe_key
         << " as duplicate (unique packet dropped)";
      add_violation("dedupe.false_positive", os.str());
    }
  } else if (exact_duplicate) {
    ++report_.dedupe_window_misses;
  }
}

void InvariantChecker::on_parent_change(NodeId node, SimTime /*now*/) {
  ++report_.parent_changes;
  if (node == kSinkId) {
    add_violation("routing.sink_parent", "the sink re-selected a parent");
    return;
  }
  const NodeId parent = net_->node(node).routing().parent();
  if (parent == node) {
    std::ostringstream os;
    os << "node " << node << " selected itself as parent";
    add_violation("routing.self_parent", os.str());
  } else if (parent != kInvalidNode && !net_->topology().are_neighbors(node, parent)) {
    std::ostringstream os;
    os << "node " << node << " selected non-neighbor parent " << parent;
    add_violation("routing.non_neighbor_parent", os.str());
  }
  audit_parent_chain(node);
}

void InvariantChecker::audit_parent_chain(NodeId node) {
  // Transient loops are legal CTP behavior (stale advertisements); they are
  // counted so campaigns can report dynamics, never flagged.
  NodeId cursor = node;
  for (std::size_t steps = 0; steps <= net_->node_count(); ++steps) {
    const NodeId parent = net_->node(cursor).routing().parent();
    if (parent == kInvalidNode || parent == kSinkId) return;
    cursor = parent;
  }
  ++report_.routing_cycles_seen;
}

void InvariantChecker::on_finished(const Packet& packet, PacketFate fate,
                                   SimTime /*now*/) {
  ++report_.packets_finished;
  if (!ledger_.record_finished(fate)) {
    add_violation("conservation.finish_underflow",
                  "more packets finished than were generated");
  }

  const auto& hops = packet.true_hops;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const auto& hop = hops[i];
    if (hop.attempts_to_first_rx < 1 || hop.attempts_to_first_rx > hop.total_attempts ||
        hop.total_attempts > max_attempts_) {
      std::ostringstream os;
      os << "hop " << i << " (" << hop.sender << "->" << hop.receiver
         << ") first_rx=" << hop.attempts_to_first_rx
         << " total=" << hop.total_attempts << " budget=" << max_attempts_;
      add_violation("hops.attempt_fields", os.str());
    }
    if (i == 0 && hop.sender != packet.origin) {
      std::ostringstream os;
      os << "first hop sender " << hop.sender << " != origin " << packet.origin;
      add_violation("hops.chain", os.str());
    }
    if (i > 0 && hop.sender != hops[i - 1].receiver) {
      std::ostringstream os;
      os << "hop " << i << " sender " << hop.sender << " != previous receiver "
         << hops[i - 1].receiver;
      add_violation("hops.chain", os.str());
    }
    if (i > 0 && hop.at < hops[i - 1].at) {
      std::ostringstream os;
      os << "hop " << i << " time " << hop.at << " precedes hop " << i - 1 << " time "
         << hops[i - 1].at;
      add_violation("hops.time", os.str());
    }
    if (hop.at < packet.created_at) {
      std::ostringstream os;
      os << "hop " << i << " time " << hop.at << " precedes creation "
         << packet.created_at;
      add_violation("hops.time", os.str());
    }
    if (hop.receiver == kSinkId && i + 1 != hops.size()) {
      add_violation("hops.sink_mid", "packet passed through the sink mid-path");
    }
  }

  bool shape_ok = true;
  switch (fate) {
    case PacketFate::kDelivered:
      shape_ok = !hops.empty() && hops.back().receiver == kSinkId &&
                 packet.hop_count == hops.size();
      break;
    case PacketFate::kDroppedTtl:
      // The TTL guard fires on the increment *before* the hop is recorded.
      shape_ok = packet.hop_count == static_cast<std::uint16_t>(max_hops_ + 1) &&
                 hops.size() == max_hops_;
      break;
    case PacketFate::kDroppedRetries:
    case PacketFate::kDroppedNoRoute:
    case PacketFate::kDroppedQueue:
      shape_ok = packet.hop_count == hops.size();
      break;
  }
  if (!shape_ok) {
    std::ostringstream os;
    os << "fate " << to_string(fate) << " with hop_count=" << packet.hop_count
       << " true_hops=" << hops.size();
    add_violation("hops.fate_shape", os.str());
  }
}

void InvariantChecker::verify_decoded_path(const Packet& packet, NodeId decoded_origin,
                                           std::span<const DecodedHopView> hops,
                                           std::uint32_t censor_k) {
  ++report_.decoded_paths_verified;
  if (decoded_origin != packet.origin) {
    std::ostringstream os;
    os << "decoded origin " << decoded_origin << " != true origin " << packet.origin;
    add_violation("decode.origin", os.str());
    return;
  }
  if (hops.size() != packet.true_hops.size()) {
    std::ostringstream os;
    os << "decoded " << hops.size() << " hops, ground truth has "
       << packet.true_hops.size();
    add_violation("decode.path_length", os.str());
    return;
  }
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const auto& truth = packet.true_hops[i];
    const auto& decoded = hops[i];
    if (decoded.sender != truth.sender || decoded.receiver != truth.receiver) {
      std::ostringstream os;
      os << "hop " << i << " decoded " << decoded.sender << "->" << decoded.receiver
         << ", truth " << truth.sender << "->" << truth.receiver;
      add_violation("decode.hop_endpoints", os.str());
      continue;
    }
    const std::uint32_t true_first = truth.attempts_to_first_rx;
    if (true_first >= censor_k) {
      if (!decoded.censored || decoded.attempts != censor_k) {
        std::ostringstream os;
        os << "hop " << i << " true first_rx=" << true_first << " (>= K=" << censor_k
           << ") decoded as attempts=" << decoded.attempts
           << " censored=" << decoded.censored;
        add_violation("decode.retx", os.str());
      }
    } else if (decoded.censored || decoded.attempts != true_first) {
      std::ostringstream os;
      os << "hop " << i << " true first_rx=" << true_first
         << " decoded as attempts=" << decoded.attempts
         << " censored=" << decoded.censored;
      add_violation("decode.retx", os.str());
    }
  }
}

void InvariantChecker::verify_decoder_stats(std::uint64_t decode_failures,
                                            std::uint64_t path_truncated,
                                            std::uint64_t missing_model_hops) {
  if (decode_failures != path_truncated) {
    std::ostringstream os;
    os << decode_failures - std::min(decode_failures, path_truncated)
       << " benign-run decode failures are not path truncations (failures="
       << decode_failures << " truncated=" << path_truncated << ")";
    add_violation("decode.benign_failures", os.str());
  }
  if (path_truncated > 0 && missing_model_hops == 0) {
    std::ostringstream os;
    os << path_truncated
       << " truncated paths but the encoder never lacked a model version";
    add_violation("decode.unexplained_truncation", os.str());
  }
}

CheckReport InvariantChecker::finalize() {
  if (net_ != nullptr && !report_.finalized) {
    // Per-link accounting: attempts must match the Link's counter delta
    // exactly; the loss delta must sit inside the ledger's bounds.
    for (const auto& [key, start] : link_start_) {
      const auto& link = net_->link(key.from, key.to);
      const std::uint64_t delta_attempts = link.data_attempts() - start.attempts;
      const std::uint64_t delta_losses = link.data_losses() - start.losses;
      const LinkTally* tally = ledger_.find_link(key);
      const LinkTally zero{};
      const LinkTally& t = tally != nullptr ? *tally : zero;
      if (delta_attempts != 0 || t.attempts != 0) ++report_.links_audited;
      if (delta_attempts != t.attempts) {
        std::ostringstream os;
        os << "link " << key.from << "->" << key.to << " counted " << delta_attempts
           << " data attempts, ledger recorded " << t.attempts;
        add_violation("link.attempts.mismatch", os.str());
      }
      if (delta_losses < t.min_losses || delta_losses > t.max_losses) {
        std::ostringstream os;
        os << "link " << key.from << "->" << key.to << " counted " << delta_losses
           << " losses outside ledger bounds [" << t.min_losses << ", " << t.max_losses
           << "]";
        add_violation("link.losses.bounds", os.str());
      }
    }

    // Packet conservation: whatever was generated and has not finished must
    // be sitting in a forwarding queue or the in-flight slab right now.
    std::uint64_t queued = 0;
    std::uint64_t duplicates_now = 0;
    for (std::size_t i = 0; i < net_->node_count(); ++i) {
      const auto& node = net_->node(static_cast<NodeId>(i));
      queued += node.queue_depth();
      duplicates_now += node.stats().duplicates_discarded;
    }
    const std::uint64_t live_expected =
        queued + static_cast<std::uint64_t>(net_->inflight_count());
    if (ledger_.live_packets() != live_expected) {
      std::ostringstream os;
      os << "ledger holds " << ledger_.live_packets() << " live packets; network holds "
         << queued << " queued + " << net_->inflight_count() << " in flight";
      add_violation("conservation.live", os.str());
    }

    // NetworkStats deltas vs the ledger (both sides observed independently).
    const dophy::net::NetworkStats stats = net_->stats();
    const auto check_stat = [&](const char* kind, std::uint64_t got,
                                std::uint64_t expected) {
      if (got != expected) {
        std::ostringstream os;
        os << "network counted " << got << ", ledger recorded " << expected;
        add_violation(kind, os.str());
      }
    };
    check_stat("stats.generated", stats.packets_generated - stats_start_.packets_generated,
               ledger_.generated());
    check_stat("stats.delivered", stats.packets_delivered - stats_start_.packets_delivered,
               ledger_.fate_count(PacketFate::kDelivered));
    check_stat("stats.dropped_retries",
               stats.dropped_retries - stats_start_.dropped_retries,
               ledger_.fate_count(PacketFate::kDroppedRetries));
    check_stat("stats.dropped_noroute",
               stats.dropped_noroute - stats_start_.dropped_noroute,
               ledger_.fate_count(PacketFate::kDroppedNoRoute));
    check_stat("stats.dropped_ttl", stats.dropped_ttl - stats_start_.dropped_ttl,
               ledger_.fate_count(PacketFate::kDroppedTtl));
    check_stat("stats.dropped_queue", stats.dropped_queue - stats_start_.dropped_queue,
               ledger_.fate_count(PacketFate::kDroppedQueue));
    check_stat("stats.parent_changes", stats.parent_changes - stats_start_.parent_changes,
               report_.parent_changes);
    check_stat("stats.duplicates", duplicates_now - duplicates_start_,
               report_.duplicates);
    check_stat("stats.data_attempts",
               stats.data_tx_attempts - stats_start_.data_tx_attempts,
               ledger_.total_attempts());
  }
  report_.finalized = true;
  return report_;
}

}  // namespace dophy::check
