#pragma once

// Wire-version-1 integer arithmetic coder (Witten–Neal–Cleary construction,
// 32-bit registers, bit-at-a-time renormalization), preserved verbatim from
// the original implementation when the hot path moved to the byte-oriented
// range coder in arith.hpp.
//
// This coder is kept compiled for two reasons:
//   * the differential codec test battery (tests/coding/
//     test_range_differential.cpp) property-tests the new coder against it
//     on identical symbol streams, and
//   * the interleaved A/B microbenchmarks in bench/micro_codec.cpp measure
//     both coders in one process so the speedup claim stays reproducible.
//
// It is NOT reachable from the tomo pipeline: packets only ever carry
// wire-version-2 streams (see kCodecWireVersion in arith.hpp).

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "dophy/common/bitio.hpp"
#include "dophy/coding/freq_model.hpp"

namespace dophy::coding::legacy {

/// Suspended encoder registers.  `pending` counts carry-straddling bits not
/// yet emitted; it is bounded by the number of symbols encoded so far, which
/// packet-scale streams keep far below 2^16.
struct ArithCoderState {
  std::uint64_t low = 0;
  std::uint64_t high = 0xFFFFFFFFull;
  std::uint16_t pending = 0;

  static constexpr std::size_t kSerializedSize = 10;
  [[nodiscard]] std::array<std::uint8_t, kSerializedSize> serialize() const noexcept;
  [[nodiscard]] static ArithCoderState deserialize(std::span<const std::uint8_t> bytes);
  [[nodiscard]] bool operator==(const ArithCoderState&) const noexcept = default;
};

class ArithmeticEncoder {
 public:
  /// Fresh stream writing into `out` (which may already hold earlier,
  /// unrelated bits; the coder only appends).
  explicit ArithmeticEncoder(dophy::common::BitWriter& out) noexcept;

  /// Resumes from a suspended state.  `out` must contain the bits the
  /// original encoder had emitted (byte-exact continuation is the caller's
  /// contract).
  ArithmeticEncoder(dophy::common::BitWriter& out, const ArithCoderState& state) noexcept;

  /// Encodes `symbol`; does NOT call model.update() — callers that want
  /// adaptivity update explicitly so encode/decode stay symmetric.
  void encode(const FrequencyModel& model, std::size_t symbol);

  /// Captures the register state for in-packet transport.  The encoder stays
  /// usable; typically the caller suspends and drops it.
  [[nodiscard]] ArithCoderState suspend() const noexcept { return state_; }

  /// Terminates the stream (emits 1–2 disambiguating bits plus pendings).
  /// The encoder must not be used afterwards.
  void finish();

 private:
  void emit_bit_with_pending(bool bit);

  dophy::common::BitWriter* out_;
  ArithCoderState state_;
  bool finished_ = false;
};

class ArithmeticDecoder {
 public:
  /// Decodes from `data`, starting at `start_bit`, reading at most
  /// `bit_limit` bits total (SIZE_MAX = whole buffer).  Reads past the
  /// logical end are treated as zero bits, as the finish() convention
  /// requires.
  explicit ArithmeticDecoder(std::span<const std::uint8_t> data, std::size_t start_bit = 0,
                             std::size_t bit_limit = SIZE_MAX);

  /// Decodes one symbol under `model` (no update; see encoder note).
  [[nodiscard]] std::size_t decode(const FrequencyModel& model);

  /// Bits consumed from the underlying stream (excludes virtual zero-fill).
  [[nodiscard]] std::size_t bits_consumed() const noexcept { return consumed_; }

  /// Virtual zero bits consumed past the logical end of the stream.
  [[nodiscard]] std::size_t fill_bits() const noexcept { return fill_; }

  /// Truncation heuristic.  Decoding a properly finish()ed stream to its
  /// exact symbol count reads at most 32 + renormalization-shift bits, and
  /// the encoder emitted at least shifts + 1 bits — so legitimate zero-fill
  /// is bounded by 31 bits.  Reaching 32 fill bits means the stream ended
  /// earlier than a complete encoding could have: the buffer was cut.
  [[nodiscard]] bool likely_truncated() const noexcept { return fill_ >= 32; }

 private:
  [[nodiscard]] bool next_bit() noexcept;

  dophy::common::BitReader reader_;
  std::uint64_t low_ = 0;
  std::uint64_t high_ = 0xFFFFFFFFull;
  std::uint64_t value_ = 0;
  std::size_t consumed_ = 0;
  std::size_t fill_ = 0;
};

}  // namespace dophy::coding::legacy
