#include "dophy/coding/arith.hpp"

#include <algorithm>
#include <stdexcept>

namespace dophy::coding {

namespace {

// Shared renormalization condition.  One byte moves per iteration:
//   * top bytes of low and low+range agree -> no future carry can change the
//     byte, shift it out;
//   * range underflowed kRangeBot while the interval still straddles a 2^24
//     boundary -> clamp range to the distance to the next 2^16 boundary
//     (carryless underflow handling), then shift.  The clamp never yields
//     zero: model totals are capped at kRangeBot, so a state with
//     low = 0 mod 2^16 and range < kRangeBot cannot straddle a boundary and
//     takes the first branch instead.
inline bool needs_renorm(std::uint32_t low, std::uint32_t& range) noexcept {
  if ((low ^ (low + range)) < kRangeTop) return true;
  if (range < kRangeBot) {
    range = (0u - low) & (kRangeBot - 1);
    return true;
  }
  return false;
}

}  // namespace

std::array<std::uint8_t, RangeCoderState::kSerializedSize> RangeCoderState::serialize()
    const noexcept {
  return {
      static_cast<std::uint8_t>(low >> 24),   static_cast<std::uint8_t>(low >> 16),
      static_cast<std::uint8_t>(low >> 8),    static_cast<std::uint8_t>(low),
      static_cast<std::uint8_t>(range >> 24), static_cast<std::uint8_t>(range >> 16),
      static_cast<std::uint8_t>(range >> 8),  static_cast<std::uint8_t>(range),
  };
}

RangeCoderState RangeCoderState::deserialize(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kSerializedSize) {
    throw std::runtime_error("RangeCoderState::deserialize: truncated");
  }
  RangeCoderState st;
  st.low = (static_cast<std::uint32_t>(bytes[0]) << 24) |
           (static_cast<std::uint32_t>(bytes[1]) << 16) |
           (static_cast<std::uint32_t>(bytes[2]) << 8) | static_cast<std::uint32_t>(bytes[3]);
  st.range = (static_cast<std::uint32_t>(bytes[4]) << 24) |
             (static_cast<std::uint32_t>(bytes[5]) << 16) |
             (static_cast<std::uint32_t>(bytes[6]) << 8) | static_cast<std::uint32_t>(bytes[7]);
  // Suspended states are always post-renormalization (range >= kRangeBot);
  // anything below the floor cannot have come from a real encoder.
  if (st.range < kRangeBot) {
    throw std::runtime_error("RangeCoderState::deserialize: invalid registers");
  }
  return st;
}

RangeEncoder::RangeEncoder(std::vector<std::uint8_t>& out) noexcept : out_(&out) {}

RangeEncoder::RangeEncoder(std::vector<std::uint8_t>& out, const RangeCoderState& state) noexcept
    : out_(&out), state_(state) {}

void RangeEncoder::encode(const FrequencyModel& model, std::size_t symbol) {
  std::uint32_t cum_lo = 0;
  std::uint32_t freq = 0;
  model.interval(symbol, cum_lo, freq);
  if (freq == 0) throw std::invalid_argument("RangeEncoder: zero-frequency symbol");
  encode_interval(cum_lo, freq, model.total());
}

void RangeEncoder::encode(const StaticModel& model, std::size_t symbol) {
  const std::span<const std::uint32_t> cum = model.cum_table();
  if (symbol + 1 >= cum.size()) throw std::out_of_range("RangeEncoder::encode: bad symbol");
  encode_interval(cum[symbol], cum[symbol + 1] - cum[symbol], model.total());
}

void RangeEncoder::encode(const AdaptiveModel& model, std::size_t symbol) {
  std::uint32_t cum_lo = 0;
  std::uint32_t freq = 0;
  model.interval(symbol, cum_lo, freq);  // direct call: AdaptiveModel is final
  encode_interval(cum_lo, freq, model.total());
}

void RangeEncoder::encode_interval(std::uint32_t cum_lo, std::uint32_t freq,
                                   std::uint32_t total) {
  if (finished_) throw std::logic_error("RangeEncoder::encode after finish");
  std::uint32_t low = state_.low;
  std::uint32_t range = state_.range;
  const std::uint32_t r = range / total;  // >= 1: range >= kRangeBot >= total
  low += r * cum_lo;
  range = r * freq;
  while (needs_renorm(low, range)) {
    out_->push_back(static_cast<std::uint8_t>(low >> 24));
    low <<= 8;
    range <<= 8;
  }
  state_.low = low;
  state_.range = range;
}

void RangeEncoder::finish() {
  if (finished_) return;
  finished_ = true;
  const std::uint64_t low = state_.low;
  const std::uint64_t end = low + state_.range;  // exact; <= 2^32
  // Round low up to a 2^16 multiple: with range >= kRangeBot that value
  // always falls inside [low, end), and its trailing two zero bytes are
  // exactly what the decoder's zero-fill supplies — so emitting just the top
  // two bytes pins the code value.
  const std::uint64_t v = (low + 0xFFFFull) & ~0xFFFFull;
  if (v < (1ull << 32)) {
    out_->push_back(static_cast<std::uint8_t>(v >> 24));
    out_->push_back(static_cast<std::uint8_t>(v >> 16));
  } else {
    // low > 2^32 - 2^16: no 2^16 multiple fits in 32 bits; emit the full
    // final code value instead (end - 1 is always inside the interval).
    const std::uint64_t x = end - 1;
    out_->push_back(static_cast<std::uint8_t>(x >> 24));
    out_->push_back(static_cast<std::uint8_t>(x >> 16));
    out_->push_back(static_cast<std::uint8_t>(x >> 8));
    out_->push_back(static_cast<std::uint8_t>(x));
  }
}

RangeDecoder::RangeDecoder(std::span<const std::uint8_t> data, std::size_t start_byte,
                           std::size_t byte_limit)
    : data_(data), pos_(start_byte), end_(std::min(data.size(), byte_limit)) {
  if (pos_ > end_) pos_ = end_;
  for (int i = 0; i < 4; ++i) code_ = (code_ << 8) | next_byte();
}

std::uint8_t RangeDecoder::next_byte() noexcept {
  if (pos_ < end_) {
    ++consumed_;
    return data_[pos_++];
  }
  ++fill_;
  return 0;
}

std::uint32_t RangeDecoder::scaled_value(std::uint32_t total) {
  div_ = range_ / total;
  const std::uint32_t scaled = (code_ - low_) / div_;
  // A well-formed stream always lands in [0, total): the encoder's code value
  // sits in [low, low + r*total).  Landing in the truncation dead zone
  // [r*total, range) or beyond means the bytes were corrupted.
  if (scaled >= total) {
    throw std::runtime_error("RangeDecoder: corrupt stream (value outside model span)");
  }
  return scaled;
}

void RangeDecoder::consume(std::uint32_t r, std::uint32_t cum_lo, std::uint32_t freq) {
  low_ += r * cum_lo;
  range_ = r * freq;
  while (needs_renorm(low_, range_)) {
    code_ = (code_ << 8) | next_byte();
    low_ <<= 8;
    range_ <<= 8;
  }
}

std::size_t RangeDecoder::decode(const FrequencyModel& model) {
  const std::uint32_t scaled = scaled_value(model.total());
  std::uint32_t cum_lo = 0;
  std::uint32_t freq = 0;
  const std::size_t symbol = model.locate(scaled, cum_lo, freq);
  consume(div_, cum_lo, freq);
  return symbol;
}

std::size_t RangeDecoder::decode(const StaticModel& model) {
  const std::uint32_t scaled = scaled_value(model.total());
  const std::size_t symbol = model.locate_fast(scaled);
  const std::span<const std::uint32_t> cum = model.cum_table();
  consume(div_, cum[symbol], cum[symbol + 1] - cum[symbol]);
  return symbol;
}

std::size_t RangeDecoder::decode(const AdaptiveModel& model) {
  const std::uint32_t scaled = scaled_value(model.total());
  std::uint32_t cum_lo = 0;
  std::uint32_t freq = 0;
  const std::size_t symbol = model.locate(scaled, cum_lo, freq);  // direct call
  consume(div_, cum_lo, freq);
  return symbol;
}

bool decode_path(RangeDecoder& dec, const StaticModel& id_model, const StaticModel& retx_model,
                 std::uint32_t terminal, std::size_t max_hops, std::vector<PathSymbol>& out) {
  for (std::size_t hop = 0; hop < max_hops; ++hop) {
    PathSymbol sym;
    sym.receiver = static_cast<std::uint32_t>(dec.decode(id_model));
    sym.retx = static_cast<std::uint32_t>(dec.decode(retx_model));
    out.push_back(sym);
    if (sym.receiver == terminal) return true;
  }
  return false;
}

}  // namespace dophy::coding
