#include "dophy/coding/freq_model.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "dophy/coding/varint.hpp"

namespace dophy::coding {

void FrequencyModel::update(std::size_t /*symbol*/) {}

void FrequencyModel::interval(std::size_t symbol, std::uint32_t& cum_lo,
                              std::uint32_t& freq_out) const {
  cum_lo = cum(symbol);
  freq_out = freq(symbol);
}

std::size_t FrequencyModel::locate(std::uint32_t cum_value, std::uint32_t& cum_lo,
                                   std::uint32_t& freq_out) const {
  const std::size_t symbol = find(cum_value);
  interval(symbol, cum_lo, freq_out);
  return symbol;
}

double FrequencyModel::ideal_bits(std::size_t symbol) const {
  const double p = static_cast<double>(freq(symbol)) / static_cast<double>(total());
  return -std::log2(p);
}

std::vector<std::uint32_t> quantize_counts(const std::vector<std::uint64_t>& counts,
                                           std::uint32_t max_total) {
  if (counts.empty()) throw std::invalid_argument("quantize_counts: empty counts");
  if (max_total < counts.size()) {
    throw std::invalid_argument("quantize_counts: max_total smaller than symbol count");
  }
  const std::uint64_t raw_total =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  std::vector<std::uint32_t> freqs(counts.size(), 1);
  if (raw_total == 0) return freqs;  // degenerate: uniform(1)

  // Scale, floor at 1, then trim from the largest symbols if we overshoot.
  const double scale =
      static_cast<double>(max_total - counts.size()) / static_cast<double>(raw_total);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const auto f = static_cast<std::uint32_t>(
        1.0 + static_cast<double>(counts[i]) * scale);
    freqs[i] = std::max<std::uint32_t>(1, f);
    total += freqs[i];
  }
  while (total > max_total) {
    const auto it = std::max_element(freqs.begin(), freqs.end());
    if (*it <= 1) break;  // cannot shrink further (max_total >= size prevents this)
    const std::uint64_t excess = total - max_total;
    const std::uint32_t cut =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(excess, *it - 1));
    *it -= cut;
    total -= cut;
  }
  return freqs;
}

StaticModel::StaticModel(std::size_t symbol_count) {
  if (symbol_count == 0) throw std::invalid_argument("StaticModel: zero symbols");
  if (symbol_count > kMaxModelTotal) {
    throw std::invalid_argument("StaticModel: too many symbols");
  }
  freqs_.assign(symbol_count, 1);
  rebuild_cum();
}

StaticModel::StaticModel(const std::vector<std::uint64_t>& counts, std::uint32_t max_total) {
  if (max_total > kMaxModelTotal) {
    throw std::invalid_argument("StaticModel: max_total exceeds coder limit");
  }
  freqs_ = quantize_counts(counts, max_total);
  rebuild_cum();
}

void StaticModel::rebuild_cum() {
  cum_.assign(freqs_.size() + 1, 0);
  for (std::size_t i = 0; i < freqs_.size(); ++i) cum_[i + 1] = cum_[i] + freqs_[i];
  total_ = cum_.back();
}

std::uint32_t StaticModel::cum(std::size_t symbol) const {
  if (symbol >= freqs_.size()) throw std::out_of_range("StaticModel::cum");
  return cum_[symbol];
}

std::uint32_t StaticModel::freq(std::size_t symbol) const {
  if (symbol >= freqs_.size()) throw std::out_of_range("StaticModel::freq");
  return freqs_[symbol];
}

std::size_t StaticModel::find(std::uint32_t cum_value) const {
  if (cum_value >= total_) throw std::out_of_range("StaticModel::find");
  return locate_fast(cum_value);
}

void StaticModel::interval(std::size_t symbol, std::uint32_t& cum_lo,
                           std::uint32_t& freq_out) const {
  if (symbol >= freqs_.size()) throw std::out_of_range("StaticModel::interval");
  cum_lo = cum_[symbol];
  freq_out = freqs_[symbol];
}

std::size_t StaticModel::locate(std::uint32_t cum_value, std::uint32_t& cum_lo,
                                std::uint32_t& freq_out) const {
  if (cum_value >= total_) throw std::out_of_range("StaticModel::locate");
  const std::size_t symbol = locate_fast(cum_value);
  cum_lo = cum_[symbol];
  freq_out = freqs_[symbol];
  return symbol;
}

std::vector<std::uint8_t> StaticModel::serialize() const {
  std::vector<std::uint8_t> out;
  write_varint(out, freqs_.size());
  for (const std::uint32_t f : freqs_) write_varint(out, f);
  return out;
}

StaticModel StaticModel::deserialize(std::span<const std::uint8_t> bytes) {
  std::size_t offset = 0;
  const std::uint64_t n = read_varint(bytes, offset);
  if (n == 0 || n > kMaxModelTotal) {
    throw std::runtime_error("StaticModel::deserialize: bad symbol count");
  }
  StaticModel model;
  model.freqs_.resize(static_cast<std::size_t>(n));
  for (auto& f : model.freqs_) {
    const std::uint64_t v = read_varint(bytes, offset);
    if (v == 0 || v > kMaxModelTotal) {
      throw std::runtime_error("StaticModel::deserialize: bad frequency");
    }
    f = static_cast<std::uint32_t>(v);
  }
  model.rebuild_cum();
  if (model.total_ > kMaxModelTotal) {
    throw std::runtime_error("StaticModel::deserialize: total overflow");
  }
  return model;
}

AdaptiveModel::AdaptiveModel(std::size_t symbol_count, std::uint32_t increment)
    : count_(symbol_count), increment_(increment), small_(symbol_count <= kSmallAlphabet) {
  if (symbol_count == 0) throw std::invalid_argument("AdaptiveModel: zero symbols");
  if (increment == 0) throw std::invalid_argument("AdaptiveModel: zero increment");
  if (symbol_count * 2 > kMaxModelTotal) {
    throw std::invalid_argument("AdaptiveModel: too many symbols");
  }
  if (!small_) {
    tree_.reset(symbol_count);
    for (std::size_t i = 0; i < symbol_count; ++i) tree_.add(i, 1);
  }
  freqs_.assign(symbol_count, 1);
  total_ = static_cast<std::uint32_t>(symbol_count);
}

std::uint32_t AdaptiveModel::cum(std::size_t symbol) const {
  if (small_) {
    std::uint32_t sum = 0;
    for (std::size_t i = 0; i < symbol; ++i) sum += freqs_[i];
    return sum;
  }
  return static_cast<std::uint32_t>(tree_.prefix_sum(symbol));
}

std::uint32_t AdaptiveModel::freq(std::size_t symbol) const {
  if (symbol >= count_) throw std::out_of_range("AdaptiveModel::freq");
  return freqs_[symbol];
}

std::size_t AdaptiveModel::find(std::uint32_t cum_value) const {
  if (small_) {
    std::uint32_t lo = 0;
    std::uint32_t fr = 0;
    return locate(cum_value, lo, fr);
  }
  return tree_.find_by_cumulative(cum_value);
}

void AdaptiveModel::interval(std::size_t symbol, std::uint32_t& cum_lo,
                             std::uint32_t& freq_out) const {
  if (symbol >= count_) throw std::out_of_range("AdaptiveModel::interval");
  if (small_) {
    std::uint32_t sum = 0;
    for (std::size_t i = 0; i < symbol; ++i) sum += freqs_[i];
    cum_lo = sum;
  } else {
    cum_lo = static_cast<std::uint32_t>(tree_.prefix_sum(symbol));
  }
  freq_out = freqs_[symbol];
}

std::size_t AdaptiveModel::locate(std::uint32_t cum_value, std::uint32_t& cum_lo,
                                  std::uint32_t& freq_out) const {
  if (small_) {
    std::uint32_t acc = 0;
    std::size_t symbol = 0;
    while (symbol + 1 < count_ && acc + freqs_[symbol] <= cum_value) {
      acc += freqs_[symbol];
      ++symbol;
    }
    cum_lo = acc;
    freq_out = freqs_[symbol];
    return symbol;
  }
  std::uint64_t prefix = 0;
  const std::size_t symbol = tree_.find_with_prefix(cum_value, prefix);
  cum_lo = static_cast<std::uint32_t>(prefix);
  freq_out = freqs_[symbol];
  return symbol;
}

void AdaptiveModel::update(std::size_t symbol) {
  if (symbol >= count_) throw std::out_of_range("AdaptiveModel::update");
  if (total_ + increment_ > kMaxModelTotal) rescale();
  if (!small_) tree_.add(symbol, increment_);
  freqs_[symbol] += increment_;
  total_ += increment_;
}

void AdaptiveModel::rescale() {
  if (!small_) tree_.reset(count_);
  total_ = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    freqs_[i] = std::max<std::uint32_t>(1, freqs_[i] / 2);
    if (!small_) tree_.add(i, freqs_[i]);
    total_ += freqs_[i];
  }
}

}  // namespace dophy::coding
