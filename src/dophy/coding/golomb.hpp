#pragma once

// Golomb and Golomb-Rice codes for non-negative integers.  Rice (m = 2^k) is
// the classic low-cost choice for geometric-ish data on motes, which makes it
// the strongest prefix-code baseline against Dophy's arithmetic coding.

#include <cstdint>

#include "dophy/common/bitio.hpp"

namespace dophy::coding {

/// Encodes `value` >= 0 with Rice parameter `k` (remainder bits).
void rice_encode(dophy::common::BitWriter& out, std::uint64_t value, unsigned k);

/// Decodes one Rice codeword with parameter `k`.
[[nodiscard]] std::uint64_t rice_decode(dophy::common::BitReader& in, unsigned k);

/// Bits the Rice codeword occupies.
[[nodiscard]] std::uint64_t rice_bits(std::uint64_t value, unsigned k) noexcept;

/// Rice parameter minimizing expected length for data with the given mean
/// (standard k = max(0, ceil(log2(ln(2) * mean))) rule).
[[nodiscard]] unsigned optimal_rice_param(double mean) noexcept;

/// General Golomb code with arbitrary divisor m >= 1 (truncated binary
/// remainder).
void golomb_encode(dophy::common::BitWriter& out, std::uint64_t value, std::uint64_t m);

[[nodiscard]] std::uint64_t golomb_decode(dophy::common::BitReader& in, std::uint64_t m);

[[nodiscard]] std::uint64_t golomb_bits(std::uint64_t value, std::uint64_t m) noexcept;

}  // namespace dophy::coding
