#include "dophy/coding/huffman.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace dophy::coding {

namespace {

struct HeapEntry {
  std::uint64_t weight;
  std::uint32_t node;
  // Tie-break on node id for deterministic trees across platforms.
  [[nodiscard]] bool operator>(const HeapEntry& other) const noexcept {
    return weight != other.weight ? weight > other.weight : node > other.node;
  }
};

}  // namespace

HuffmanCode::HuffmanCode(const std::vector<std::uint64_t>& counts) {
  if (counts.empty()) throw std::invalid_argument("HuffmanCode: empty counts");
  const std::size_t n = counts.size();
  lengths_.assign(n, 0);

  if (n == 1) {
    lengths_[0] = 1;  // degenerate alphabet still needs a bit to terminate
    assign_canonical_codes();
    return;
  }

  // Classic two-queue-free heap build over weights floored at 1.
  std::vector<std::uint32_t> parent(2 * n, 0);
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  for (std::size_t i = 0; i < n; ++i) {
    heap.push({counts[i] + 1, static_cast<std::uint32_t>(i)});
  }
  std::uint32_t next_internal = static_cast<std::uint32_t>(n);
  while (heap.size() > 1) {
    const HeapEntry a = heap.top();
    heap.pop();
    const HeapEntry b = heap.top();
    heap.pop();
    parent[a.node] = next_internal;
    parent[b.node] = next_internal;
    heap.push({a.weight + b.weight, next_internal});
    ++next_internal;
  }
  const std::uint32_t root = heap.top().node;
  for (std::size_t i = 0; i < n; ++i) {
    unsigned depth = 0;
    for (std::uint32_t v = static_cast<std::uint32_t>(i); v != root; v = parent[v]) ++depth;
    if (depth > 63) throw std::runtime_error("HuffmanCode: depth overflow");
    lengths_[i] = static_cast<std::uint8_t>(depth);
  }
  assign_canonical_codes();
}

void HuffmanCode::assign_canonical_codes() {
  const std::size_t n = lengths_.size();
  max_length_ = *std::max_element(lengths_.begin(), lengths_.end());
  if (max_length_ > 31) throw std::runtime_error("HuffmanCode: code too long for u32 codes");

  sorted_symbols_.resize(n);
  std::iota(sorted_symbols_.begin(), sorted_symbols_.end(), 0u);
  std::sort(sorted_symbols_.begin(), sorted_symbols_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return lengths_[a] != lengths_[b] ? lengths_[a] < lengths_[b] : a < b;
            });

  std::vector<std::uint32_t> length_count(max_length_ + 1, 0);
  for (const std::uint8_t l : lengths_) ++length_count[l];

  // Canonical assignment: symbols of length 0 (unused) sort first in
  // sorted_symbols_; real codes start at the shortest length.
  first_code_.assign(max_length_ + 2, 0);
  first_index_.assign(max_length_ + 2, 0);
  std::uint32_t idx = length_count[0];
  std::uint32_t code = 0;
  for (unsigned l = 1; l <= max_length_; ++l) {
    code <<= 1;
    first_code_[l] = code;
    first_index_[l] = idx;
    code += length_count[l];
    idx += length_count[l];
  }

  codes_.assign(n, 0);
  std::vector<std::uint32_t> next_code = first_code_;
  for (const std::uint32_t s : sorted_symbols_) {
    const unsigned l = lengths_[s];
    if (l == 0) continue;
    codes_[s] = next_code[l]++;
  }
}

unsigned HuffmanCode::length(std::size_t symbol) const {
  if (symbol >= lengths_.size()) throw std::out_of_range("HuffmanCode::length");
  return lengths_[symbol];
}

double HuffmanCode::expected_length(const std::vector<std::uint64_t>& counts) const {
  if (counts.size() != lengths_.size()) {
    throw std::invalid_argument("HuffmanCode::expected_length: size mismatch");
  }
  const std::uint64_t total =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  if (total == 0) return 0.0;
  double bits = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    bits += static_cast<double>(counts[i]) * static_cast<double>(lengths_[i]);
  }
  return bits / static_cast<double>(total);
}

void HuffmanCode::encode(dophy::common::BitWriter& out, std::size_t symbol) const {
  if (symbol >= lengths_.size()) throw std::out_of_range("HuffmanCode::encode");
  const unsigned l = lengths_[symbol];
  if (l == 0) throw std::logic_error("HuffmanCode::encode: symbol has no code");
  out.put_bits(codes_[symbol], l);
}

std::size_t HuffmanCode::decode(dophy::common::BitReader& in) const {
  std::uint32_t code = 0;
  for (unsigned l = 1; l <= max_length_; ++l) {
    code = (code << 1) | static_cast<std::uint32_t>(in.get_bit());
    const std::uint32_t first = first_code_[l];
    // Number of codes of this length:
    const std::uint32_t count_l =
        (l < max_length_ ? first_index_[l + 1] : static_cast<std::uint32_t>(sorted_symbols_.size())) -
        first_index_[l];
    if (count_l > 0 && code >= first && code < first + count_l) {
      return sorted_symbols_[first_index_[l] + (code - first)];
    }
  }
  throw std::runtime_error("HuffmanCode::decode: malformed codeword");
}

}  // namespace dophy::coding
