#include "dophy/coding/varint.hpp"

#include <stdexcept>

namespace dophy::coding {

void write_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t read_varint(std::span<const std::uint8_t> bytes, std::size_t& offset) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  for (unsigned i = 0; i < 10; ++i) {
    if (offset >= bytes.size()) throw std::runtime_error("read_varint: truncated");
    const std::uint8_t b = bytes[offset++];
    value |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return value;
    shift += 7;
  }
  throw std::runtime_error("read_varint: overlong encoding");
}

std::size_t varint_size(std::uint64_t value) noexcept {
  std::size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

}  // namespace dophy::coding
