#include "dophy/coding/elias.hpp"

#include <bit>
#include <stdexcept>

namespace dophy::coding {

namespace {
[[nodiscard]] unsigned bit_width_u64(std::uint64_t v) noexcept {
  return static_cast<unsigned>(std::bit_width(v));
}
}  // namespace

void elias_gamma_encode(dophy::common::BitWriter& out, std::uint64_t value) {
  if (value == 0) throw std::invalid_argument("elias_gamma_encode: value must be >= 1");
  const unsigned n = bit_width_u64(value);  // number of significant bits
  for (unsigned i = 1; i < n; ++i) out.put_bit(false);
  out.put_bits(value, n);  // leading 1 then the n-1 low bits
}

std::uint64_t elias_gamma_decode(dophy::common::BitReader& in) {
  unsigned zeros = 0;
  while (!in.get_bit()) {
    if (++zeros > 63) throw std::runtime_error("elias_gamma_decode: malformed codeword");
  }
  std::uint64_t value = 1;
  for (unsigned i = 0; i < zeros; ++i) {
    value = (value << 1) | static_cast<std::uint64_t>(in.get_bit());
  }
  return value;
}

unsigned elias_gamma_bits(std::uint64_t value) noexcept {
  if (value == 0) return 0;
  return 2 * bit_width_u64(value) - 1;
}

void elias_delta_encode(dophy::common::BitWriter& out, std::uint64_t value) {
  if (value == 0) throw std::invalid_argument("elias_delta_encode: value must be >= 1");
  const unsigned n = bit_width_u64(value);
  elias_gamma_encode(out, n);
  if (n > 1) out.put_bits(value & ((1ull << (n - 1)) - 1), n - 1);
}

std::uint64_t elias_delta_decode(dophy::common::BitReader& in) {
  const std::uint64_t n = elias_gamma_decode(in);
  if (n == 0 || n > 64) throw std::runtime_error("elias_delta_decode: malformed codeword");
  std::uint64_t value = 1;
  for (std::uint64_t i = 1; i < n; ++i) {
    value = (value << 1) | static_cast<std::uint64_t>(in.get_bit());
  }
  return value;
}

unsigned elias_delta_bits(std::uint64_t value) noexcept {
  if (value == 0) return 0;
  const unsigned n = bit_width_u64(value);
  return elias_gamma_bits(n) + (n - 1);
}

}  // namespace dophy::coding
