#pragma once

// LEB128-style unsigned varints, used for model serialization and packet
// header fields where values are usually tiny.

#include <cstdint>
#include <span>
#include <vector>

namespace dophy::coding {

/// Appends `value` as an unsigned LEB128 varint.
void write_varint(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Reads a varint starting at `offset`; advances `offset` past it.
/// Throws std::runtime_error on truncation or a >10-byte encoding.
[[nodiscard]] std::uint64_t read_varint(std::span<const std::uint8_t> bytes, std::size_t& offset);

/// Size in bytes the varint encoding of `value` occupies.
[[nodiscard]] std::size_t varint_size(std::uint64_t value) noexcept;

}  // namespace dophy::coding
