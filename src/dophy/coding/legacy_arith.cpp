#include "dophy/coding/legacy_arith.hpp"

#include <stdexcept>

namespace dophy::coding::legacy {

namespace {
constexpr std::uint64_t kTop = 0xFFFFFFFFull;      // 2^32 - 1
constexpr std::uint64_t kHalf = 0x80000000ull;     // 2^31
constexpr std::uint64_t kQuarter = 0x40000000ull;  // 2^30
constexpr std::uint64_t kThreeQuarters = kHalf + kQuarter;
}  // namespace

std::array<std::uint8_t, ArithCoderState::kSerializedSize> ArithCoderState::serialize()
    const noexcept {
  std::array<std::uint8_t, kSerializedSize> out{};
  for (unsigned i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(low >> (24 - 8 * i));
  for (unsigned i = 0; i < 4; ++i) out[4 + i] = static_cast<std::uint8_t>(high >> (24 - 8 * i));
  out[8] = static_cast<std::uint8_t>(pending >> 8);
  out[9] = static_cast<std::uint8_t>(pending);
  return out;
}

ArithCoderState ArithCoderState::deserialize(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kSerializedSize) {
    throw std::runtime_error("ArithCoderState::deserialize: truncated");
  }
  ArithCoderState st;
  st.low = 0;
  st.high = 0;
  for (unsigned i = 0; i < 4; ++i) st.low = (st.low << 8) | bytes[i];
  for (unsigned i = 0; i < 4; ++i) st.high = (st.high << 8) | bytes[4 + i];
  st.pending = static_cast<std::uint16_t>((bytes[8] << 8) | bytes[9]);
  if (st.low > st.high || st.high > kTop) {
    throw std::runtime_error("ArithCoderState::deserialize: invalid registers");
  }
  return st;
}

ArithmeticEncoder::ArithmeticEncoder(dophy::common::BitWriter& out) noexcept : out_(&out) {}

ArithmeticEncoder::ArithmeticEncoder(dophy::common::BitWriter& out,
                                     const ArithCoderState& state) noexcept
    : out_(&out), state_(state) {}

void ArithmeticEncoder::emit_bit_with_pending(bool bit) {
  out_->put_bit(bit);
  while (state_.pending > 0) {
    out_->put_bit(!bit);
    --state_.pending;
  }
}

void ArithmeticEncoder::encode(const FrequencyModel& model, std::size_t symbol) {
  if (finished_) throw std::logic_error("ArithmeticEncoder::encode after finish");
  const std::uint64_t total = model.total();
  const std::uint64_t cum_lo = model.cum(symbol);
  const std::uint64_t cum_hi = cum_lo + model.freq(symbol);
  if (cum_hi <= cum_lo) throw std::invalid_argument("ArithmeticEncoder: zero-frequency symbol");

  const std::uint64_t range = state_.high - state_.low + 1;
  state_.high = state_.low + (range * cum_hi) / total - 1;
  state_.low = state_.low + (range * cum_lo) / total;

  for (;;) {
    if (state_.high < kHalf) {
      emit_bit_with_pending(false);
    } else if (state_.low >= kHalf) {
      emit_bit_with_pending(true);
      state_.low -= kHalf;
      state_.high -= kHalf;
    } else if (state_.low >= kQuarter && state_.high < kThreeQuarters) {
      if (state_.pending == 0xFFFF) {
        throw std::overflow_error("ArithmeticEncoder: pending-bit counter overflow");
      }
      ++state_.pending;
      state_.low -= kQuarter;
      state_.high -= kQuarter;
    } else {
      break;
    }
    state_.low <<= 1;
    state_.high = (state_.high << 1) | 1;
  }
}

void ArithmeticEncoder::finish() {
  if (finished_) return;
  finished_ = true;
  // Disambiguate the final interval: low < quarter < half <= high always
  // holds here, so emitting the quarter-pattern suffices.
  ++state_.pending;
  if (state_.low < kQuarter) {
    emit_bit_with_pending(false);
  } else {
    emit_bit_with_pending(true);
  }
}

ArithmeticDecoder::ArithmeticDecoder(std::span<const std::uint8_t> data, std::size_t start_bit,
                                     std::size_t bit_limit)
    : reader_(data, bit_limit) {
  // Skip to the stream start.
  while (start_bit > 0 && !reader_.exhausted()) {
    (void)reader_.get_bit();
    --start_bit;
  }
  for (unsigned i = 0; i < 32; ++i) {
    value_ = (value_ << 1) | static_cast<std::uint64_t>(next_bit());
  }
}

bool ArithmeticDecoder::next_bit() noexcept {
  if (reader_.exhausted()) {
    ++fill_;  // zero-fill past the logical end (see likely_truncated())
    return false;
  }
  ++consumed_;
  return reader_.get_bit();
}

std::size_t ArithmeticDecoder::decode(const FrequencyModel& model) {
  const std::uint64_t total = model.total();
  const std::uint64_t range = high_ - low_ + 1;
  // Invert the encoder's mapping: find the cumulative slot of value_.
  const std::uint64_t scaled = ((value_ - low_ + 1) * total - 1) / range;
  if (scaled >= total) throw std::runtime_error("ArithmeticDecoder: corrupt stream");
  const std::size_t symbol = model.find(static_cast<std::uint32_t>(scaled));

  const std::uint64_t cum_lo = model.cum(symbol);
  const std::uint64_t cum_hi = cum_lo + model.freq(symbol);
  high_ = low_ + (range * cum_hi) / total - 1;
  low_ = low_ + (range * cum_lo) / total;

  for (;;) {
    if (high_ < kHalf) {
      // nothing
    } else if (low_ >= kHalf) {
      low_ -= kHalf;
      high_ -= kHalf;
      value_ -= kHalf;
    } else if (low_ >= kQuarter && high_ < kThreeQuarters) {
      low_ -= kQuarter;
      high_ -= kQuarter;
      value_ -= kQuarter;
    } else {
      break;
    }
    low_ <<= 1;
    high_ = (high_ << 1) | 1;
    value_ = (value_ << 1) | static_cast<std::uint64_t>(next_bit());
  }
  return symbol;
}

}  // namespace dophy::coding::legacy
