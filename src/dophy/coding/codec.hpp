#pragma once

// Uniform stream-codec interface over the project's entropy coders so the
// encoding-overhead experiments (F1/F2) and microbenchmarks (T2) compare all
// schemes through one code path.
//
// Symbols are small non-negative integers (retransmission-count symbols
// after aggregation).  Every codec is self-contained per stream: whatever
// side information it needs (Huffman lengths, Rice parameter, model) is
// derived from the constructor arguments, matching how a deployed scheme
// would be provisioned.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dophy/coding/arith.hpp"
#include "dophy/coding/freq_model.hpp"
#include "dophy/coding/huffman.hpp"

namespace dophy::coding {

/// Typed decode failure.  Hostile (truncated / bit-flipped) buffers must
/// surface as one of these — never as UB, a crash, or silent garbage.
enum class CodecError : std::uint8_t {
  kNone = 0,
  kTruncated,  ///< stream ended before `count` symbols were produced
  kMalformed,  ///< codeword/stream structure invalid (bit flips, bad state)
};

[[nodiscard]] std::string_view to_string(CodecError error) noexcept;

/// Result of a hardened decode: either `count` symbols, or a typed error
/// (on failure `symbols` is unspecified — empty or a partial prefix).
struct DecodeOutcome {
  std::vector<std::uint32_t> symbols;
  CodecError error = CodecError::kNone;

  [[nodiscard]] bool ok() const noexcept { return error == CodecError::kNone; }
  explicit operator bool() const noexcept { return ok(); }
};

class Codec {
 public:
  virtual ~Codec() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Encodes the whole symbol stream; returns the bit length (the padded
  /// byte buffer is in `out`).
  virtual std::size_t encode(const std::vector<std::uint32_t>& symbols,
                             std::vector<std::uint8_t>& out) = 0;

  /// Decodes exactly `count` symbols.  Throws on malformed input (see
  /// try_decode for the non-throwing contract).
  [[nodiscard]] virtual std::vector<std::uint32_t> decode(
      const std::vector<std::uint8_t>& bytes, std::size_t count) = 0;

  /// Hardened decode for untrusted buffers: never throws on bad input,
  /// returns a typed error instead.  The arithmetic codecs additionally run
  /// a truncation check (their streams otherwise decode any prefix to
  /// plausible in-alphabet garbage).
  [[nodiscard]] virtual DecodeOutcome try_decode(const std::vector<std::uint8_t>& bytes,
                                                 std::size_t count);
};

/// Fixed-width binary packing (the "no compression" reference; width chosen
/// to cover the alphabet).
[[nodiscard]] std::unique_ptr<Codec> make_fixed_width_codec(std::uint32_t alphabet_size);

/// Elias gamma over (symbol + 1).
[[nodiscard]] std::unique_ptr<Codec> make_elias_gamma_codec();

/// Golomb-Rice with an explicit parameter.
[[nodiscard]] std::unique_ptr<Codec> make_rice_codec(unsigned k);

/// Canonical Huffman trained on provided counts.
[[nodiscard]] std::unique_ptr<Codec> make_huffman_codec(std::vector<std::uint64_t> counts);

/// Range coding with a trained static model (Dophy's deployed mode,
/// wire version 2).
[[nodiscard]] std::unique_ptr<Codec> make_static_arith_codec(std::vector<std::uint64_t> counts);

/// Range coding with an order-0 adaptive model (self-synchronizing).
[[nodiscard]] std::unique_ptr<Codec> make_adaptive_arith_codec(std::uint32_t alphabet_size);

/// Wire-version-1 bit-oriented arithmetic coder (dophy::coding::legacy),
/// kept for the differential test battery and interleaved A/B benchmarks.
/// Identical model construction to the range-coder variants, so any output
/// difference is the coder itself.
[[nodiscard]] std::unique_ptr<Codec> make_legacy_static_arith_codec(
    std::vector<std::uint64_t> counts);
[[nodiscard]] std::unique_ptr<Codec> make_legacy_adaptive_arith_codec(
    std::uint32_t alphabet_size);

}  // namespace dophy::coding
