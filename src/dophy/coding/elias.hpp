#pragma once

// Elias gamma/delta universal codes.  Used (a) as encoding-overhead baselines
// against Dophy's arithmetic coding and (b) as the escape code for
// non-aggregated transmission counts above the censoring threshold.

#include <cstdint>

#include "dophy/common/bitio.hpp"

namespace dophy::coding {

/// Encodes `value` >= 1 in Elias gamma.
void elias_gamma_encode(dophy::common::BitWriter& out, std::uint64_t value);

/// Decodes one gamma codeword.
[[nodiscard]] std::uint64_t elias_gamma_decode(dophy::common::BitReader& in);

/// Bits a gamma codeword for `value` occupies.
[[nodiscard]] unsigned elias_gamma_bits(std::uint64_t value) noexcept;

/// Encodes `value` >= 1 in Elias delta.
void elias_delta_encode(dophy::common::BitWriter& out, std::uint64_t value);

/// Decodes one delta codeword.
[[nodiscard]] std::uint64_t elias_delta_decode(dophy::common::BitReader& in);

/// Bits a delta codeword for `value` occupies.
[[nodiscard]] unsigned elias_delta_bits(std::uint64_t value) noexcept;

}  // namespace dophy::coding
