#pragma once

// Canonical Huffman coding built from symbol counts.  Serves as the
// "optimal prefix code" baseline: it needs whole bits per symbol, which is
// exactly the deficit arithmetic coding removes for Dophy's highly skewed
// retransmission-count distributions.

#include <cstdint>
#include <vector>

#include "dophy/common/bitio.hpp"

namespace dophy::coding {

class HuffmanCode {
 public:
  /// Builds a canonical code for `counts` (zeros get the longest codes via a
  /// +1 floor so every symbol stays encodable).  Requires >= 1 symbol.
  explicit HuffmanCode(const std::vector<std::uint64_t>& counts);

  [[nodiscard]] std::size_t symbol_count() const noexcept { return lengths_.size(); }

  /// Code length in bits for `symbol`.
  [[nodiscard]] unsigned length(std::size_t symbol) const;

  /// Expected bits/symbol under the build-time distribution.
  [[nodiscard]] double expected_length(const std::vector<std::uint64_t>& counts) const;

  void encode(dophy::common::BitWriter& out, std::size_t symbol) const;
  [[nodiscard]] std::size_t decode(dophy::common::BitReader& in) const;

  /// Code lengths (the canonical representation a receiver needs).
  [[nodiscard]] const std::vector<std::uint8_t>& lengths() const noexcept { return lengths_; }

 private:
  void assign_canonical_codes();

  std::vector<std::uint8_t> lengths_;
  std::vector<std::uint32_t> codes_;  // canonical, MSB-first

  // Canonical decode acceleration: first code value and symbol offset per
  // length, plus symbols sorted by (length, symbol).
  std::vector<std::uint32_t> first_code_;
  std::vector<std::uint32_t> first_index_;
  std::vector<std::uint32_t> sorted_symbols_;
  unsigned max_length_ = 0;
};

}  // namespace dophy::coding
