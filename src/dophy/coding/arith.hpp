#pragma once

// Byte-oriented range coder (Subbotin carryless construction, 32-bit
// registers, whole-byte renormalization) with a *resumable* encoder: the
// register pair serializes into a fixed 8-byte trailer so a partially
// encoded stream can travel inside a packet and the next hop can keep
// appending symbols.  This is the mechanism that lets Dophy accumulate
// per-hop retransmission symbols at a cost of roughly a byte per hop.
//
// Construction notes (see docs in DESIGN.md, "Resumable range coding"):
//
//   * The coder tracks (low, range) as plain uint32.  Encoding a symbol with
//     interval [cum, cum+freq) under total T does
//         r = range / T;  low += r * cum;  range = r * freq;
//     and renormalizes by emitting the top byte of `low` whenever the top
//     bytes of low and low+range agree — i.e. no future carry can change the
//     emitted byte, so the encoder never patches output (carryless).
//   * When range falls below 2^16 while the interval still straddles a
//     2^24 boundary, range is clamped to the distance to the next 2^16
//     boundary (`range = -low & 0xFFFF`), sacrificing < 1 bit of code space
//     to restore the no-carry invariant.  With model totals capped at 2^16
//     (kMaxModelTotal) the clamp can never produce a zero range.
//   * Invariant maintained throughout: low + range <= 2^32 (computed
//     exactly), and range >= 2^16 after every renormalization — which is
//     what makes the 8-byte suspended state self-contained.
//
// This is codec wire version 2.  Version 1 (the bit-at-a-time
// Witten–Neal–Cleary coder) is preserved under dophy::coding::legacy for
// the differential test battery and A/B benchmarks; version-1 streams are
// NOT decodable by this coder and vice versa.  Golden wire fixtures under
// tests/coding/golden/ pin both formats.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "dophy/coding/freq_model.hpp"

namespace dophy::coding {

/// Wire-format version of the streams the range coder produces.  Bumped
/// from 1 when the bit-oriented arithmetic coder was replaced; pipeline
/// goldens and the golden wire fixtures are pinned per version.
inline constexpr std::uint8_t kCodecWireVersion = 2;

/// Renormalization threshold: emit bytes while the top bytes of low and
/// low+range agree (no carry can reach them).
inline constexpr std::uint32_t kRangeTop = 1u << 24;
/// Minimum post-renormalization range.  Model totals are capped at this
/// value (kMaxModelTotal) so `range / total` never truncates to zero.
inline constexpr std::uint32_t kRangeBot = 1u << 16;

/// Suspended encoder registers.  Always a post-renormalization state
/// (range >= kRangeBot), which is what deserialize() validates.
struct RangeCoderState {
  std::uint32_t low = 0;
  std::uint32_t range = 0xFFFFFFFFu;

  static constexpr std::size_t kSerializedSize = 8;
  [[nodiscard]] std::array<std::uint8_t, kSerializedSize> serialize() const noexcept;
  [[nodiscard]] static RangeCoderState deserialize(std::span<const std::uint8_t> bytes);
  [[nodiscard]] bool operator==(const RangeCoderState&) const noexcept = default;
};

class RangeEncoder {
 public:
  /// Fresh stream appending to `out` (which may already hold earlier,
  /// unrelated bytes; the coder only appends).
  explicit RangeEncoder(std::vector<std::uint8_t>& out) noexcept;

  /// Resumes from a suspended state.  `out` must contain the bytes the
  /// original encoder had emitted (byte-exact continuation is the caller's
  /// contract; Dophy stores the packet's byte count alongside the trailer).
  RangeEncoder(std::vector<std::uint8_t>& out, const RangeCoderState& state) noexcept;

  /// Encodes `symbol`; does NOT call model.update() — callers that want
  /// adaptivity update explicitly so encode/decode stay symmetric.
  void encode(const FrequencyModel& model, std::size_t symbol);

  /// Non-virtual fast path for the disseminated static models: interval
  /// lookup inlines against the cumulative table.
  void encode(const StaticModel& model, std::size_t symbol);

  /// Non-virtual fast path for adaptive models (AdaptiveModel is final, so
  /// interval() resolves directly instead of through the vtable).
  void encode(const AdaptiveModel& model, std::size_t symbol);

  /// Raw interval form shared by both overloads; preconditions: freq >= 1,
  /// cum_lo + freq <= total <= kMaxModelTotal.
  void encode_interval(std::uint32_t cum_lo, std::uint32_t freq, std::uint32_t total);

  /// Captures the register state for in-packet transport.  The encoder stays
  /// usable; typically the caller suspends and drops it.
  [[nodiscard]] RangeCoderState suspend() const noexcept { return state_; }

  /// Terminates the stream: emits the 2 disambiguating bytes (4 in a rare
  /// register corner), relying on the decoder's zero-fill for the rest.
  /// The encoder must not be used afterwards.
  void finish();

 private:
  std::vector<std::uint8_t>* out_;
  RangeCoderState state_;
  bool finished_ = false;
};

class RangeDecoder {
 public:
  /// Decodes from `data`, starting at byte `start_byte`, reading at most
  /// `byte_limit` bytes counted from the buffer start (SIZE_MAX = whole
  /// buffer).  Reads past the logical end are treated as zero bytes, as the
  /// finish() convention requires.
  explicit RangeDecoder(std::span<const std::uint8_t> data, std::size_t start_byte = 0,
                        std::size_t byte_limit = SIZE_MAX);

  /// Decodes one symbol under `model` (no update; see encoder note).
  /// Throws std::runtime_error when the code value falls outside the
  /// model's span (corrupt stream).
  [[nodiscard]] std::size_t decode(const FrequencyModel& model);

  /// Non-virtual fast path for static models (inline cumulative search).
  [[nodiscard]] std::size_t decode(const StaticModel& model);

  /// Non-virtual fast path for adaptive models (direct locate(), no vtable).
  [[nodiscard]] std::size_t decode(const AdaptiveModel& model);

  /// Bytes consumed from the underlying stream (excludes virtual zero-fill).
  [[nodiscard]] std::size_t bytes_consumed() const noexcept { return consumed_; }

  /// Virtual zero bytes consumed past the logical end of the stream.
  [[nodiscard]] std::size_t fill_bytes() const noexcept { return fill_; }

  /// Truncation heuristic.  Decoding a properly finish()ed stream to its
  /// exact symbol count reads renormalizations + 4 bytes, and the encoder
  /// emitted renormalizations + 2 bytes (or all 4 in the rare corner) — so
  /// legitimate zero-fill is exactly 0 or 2 bytes.  Reaching 3 fill bytes
  /// means the stream ended earlier than a complete encoding could have:
  /// the buffer was cut.
  [[nodiscard]] bool likely_truncated() const noexcept { return fill_ >= 3; }

 private:
  [[nodiscard]] std::uint8_t next_byte() noexcept;
  [[nodiscard]] std::uint32_t scaled_value(std::uint32_t total);
  void consume(std::uint32_t r, std::uint32_t cum_lo, std::uint32_t freq);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::size_t end_ = 0;
  std::uint32_t low_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::uint32_t code_ = 0;
  std::uint32_t div_ = 0;  ///< range/total carried between scaled_value and consume
  std::size_t consumed_ = 0;
  std::size_t fill_ = 0;
};

/// One decoded hop of a Dophy measurement stream: receiver id symbol plus
/// the aggregated retransmission symbol.
struct PathSymbol {
  std::uint32_t receiver = 0;
  std::uint32_t retx = 0;
};

/// Batched whole-hop-stream decode: reads alternating (receiver-id, retx)
/// symbol pairs from `dec` until `terminal` is decoded as receiver or
/// `max_hops` pairs were produced, appending each pair to `out`.  The whole
/// loop runs on the non-virtual StaticModel fast path — one call per packet
/// instead of two virtual dispatches per hop.  Returns true when the
/// terminal was reached; throws like decode() on corrupt streams.
[[nodiscard]] bool decode_path(RangeDecoder& dec, const StaticModel& id_model,
                               const StaticModel& retx_model, std::uint32_t terminal,
                               std::size_t max_hops, std::vector<PathSymbol>& out);

}  // namespace dophy::coding
