#include "dophy/coding/golomb.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace dophy::coding {

namespace {
constexpr unsigned kMaxUnary = 4096;  // corruption guard for unary runs
}

void rice_encode(dophy::common::BitWriter& out, std::uint64_t value, unsigned k) {
  if (k > 32) throw std::invalid_argument("rice_encode: k too large");
  const std::uint64_t q = value >> k;
  if (q > kMaxUnary) throw std::invalid_argument("rice_encode: value too large for parameter");
  for (std::uint64_t i = 0; i < q; ++i) out.put_bit(true);
  out.put_bit(false);
  if (k > 0) out.put_bits(value & ((1ull << k) - 1), k);
}

std::uint64_t rice_decode(dophy::common::BitReader& in, unsigned k) {
  if (k > 32) throw std::invalid_argument("rice_decode: k too large");
  std::uint64_t q = 0;
  while (in.get_bit()) {
    if (++q > kMaxUnary) throw std::runtime_error("rice_decode: malformed codeword");
  }
  std::uint64_t r = 0;
  if (k > 0) r = in.get_bits(k);
  return (q << k) | r;
}

std::uint64_t rice_bits(std::uint64_t value, unsigned k) noexcept {
  return (value >> k) + 1 + k;
}

unsigned optimal_rice_param(double mean) noexcept {
  if (mean <= 0.0) return 0;
  const double target = std::log2(0.6931471805599453 * mean);
  if (target <= 0.0) return 0;
  const double k = std::ceil(target);
  return k > 32.0 ? 32u : static_cast<unsigned>(k);
}

void golomb_encode(dophy::common::BitWriter& out, std::uint64_t value, std::uint64_t m) {
  if (m == 0) throw std::invalid_argument("golomb_encode: m must be >= 1");
  const std::uint64_t q = value / m;
  const std::uint64_t r = value % m;
  if (q > kMaxUnary) throw std::invalid_argument("golomb_encode: value too large for divisor");
  for (std::uint64_t i = 0; i < q; ++i) out.put_bit(true);
  out.put_bit(false);
  // Truncated binary remainder.
  const unsigned b = static_cast<unsigned>(std::bit_width(m - 1));
  const std::uint64_t cutoff = (1ull << b) - m;
  if (r < cutoff) {
    if (b > 0) out.put_bits(r, b - 1);
  } else {
    out.put_bits(r + cutoff, b);
  }
}

std::uint64_t golomb_decode(dophy::common::BitReader& in, std::uint64_t m) {
  if (m == 0) throw std::invalid_argument("golomb_decode: m must be >= 1");
  std::uint64_t q = 0;
  while (in.get_bit()) {
    if (++q > kMaxUnary) throw std::runtime_error("golomb_decode: malformed codeword");
  }
  const unsigned b = static_cast<unsigned>(std::bit_width(m - 1));
  const std::uint64_t cutoff = (1ull << b) - m;
  std::uint64_t r = 0;
  if (b > 0) {
    r = in.get_bits(b - 1);
    if (r >= cutoff) {
      r = (r << 1) | static_cast<std::uint64_t>(in.get_bit());
      r -= cutoff;
    }
  }
  return q * m + r;
}

std::uint64_t golomb_bits(std::uint64_t value, std::uint64_t m) noexcept {
  if (m == 0) return 0;
  const std::uint64_t q = value / m;
  const std::uint64_t r = value % m;
  const unsigned b = static_cast<unsigned>(std::bit_width(m - 1));
  const std::uint64_t cutoff = (1ull << b) - m;
  const unsigned rbits = (b == 0) ? 0u : (r < cutoff ? b - 1 : b);
  return q + 1 + rbits;
}

}  // namespace dophy::coding
