#pragma once

// Symbol frequency models driving the arithmetic coder.
//
// Dophy disseminates *versioned static models* from the sink (all encoders
// along a path must share the decoder's model bit-for-bit), while offline
// codec comparisons also use a self-synchronizing adaptive model.

#include <cstdint>
#include <span>
#include <vector>

#include "dophy/common/fenwick.hpp"

namespace dophy::coding {

/// Upper bound on a model's total frequency.  The arithmetic coder requires
/// total <= range/4 at minimum renormalized range (2^30), so 2^16 leaves a
/// huge margin while keeping serialized models small.
inline constexpr std::uint32_t kMaxModelTotal = 1u << 16;

/// Interface consumed by ArithmeticEncoder/Decoder.  Cumulative counts are
/// "below": cum(s) = sum of freq(t) for t < s; every symbol must have
/// freq >= 1 so it stays codable.
class FrequencyModel {
 public:
  virtual ~FrequencyModel() = default;

  [[nodiscard]] virtual std::size_t symbol_count() const noexcept = 0;
  [[nodiscard]] virtual std::uint32_t total() const noexcept = 0;
  [[nodiscard]] virtual std::uint32_t cum(std::size_t symbol) const = 0;
  [[nodiscard]] virtual std::uint32_t freq(std::size_t symbol) const = 0;
  /// Symbol whose interval [cum(s), cum(s)+freq(s)) contains `cum_value`.
  [[nodiscard]] virtual std::size_t find(std::uint32_t cum_value) const = 0;
  /// Adapts the model after coding `symbol`; static models ignore it.
  virtual void update(std::size_t symbol);

  /// Ideal code length of `symbol` under this model, in bits.
  [[nodiscard]] double ideal_bits(std::size_t symbol) const;
};

/// Immutable model built from a count vector, quantized so that the total is
/// <= kMaxModelTotal and every symbol keeps frequency >= 1.  Serializable for
/// model dissemination; (de)serialization is bit-exact so every node and the
/// sink agree.
class StaticModel final : public FrequencyModel {
 public:
  /// Uniform model over `symbol_count` symbols.
  explicit StaticModel(std::size_t symbol_count);

  /// Model proportional to `counts` (zeros are bumped to 1), quantized so
  /// the total is <= `max_total`.  Smaller totals give coarser probabilities
  /// but much smaller serialized models — the dissemination-cost knob.
  explicit StaticModel(const std::vector<std::uint64_t>& counts,
                       std::uint32_t max_total = kMaxModelTotal);

  [[nodiscard]] std::size_t symbol_count() const noexcept override { return freqs_.size(); }
  [[nodiscard]] std::uint32_t total() const noexcept override { return total_; }
  [[nodiscard]] std::uint32_t cum(std::size_t symbol) const override;
  [[nodiscard]] std::uint32_t freq(std::size_t symbol) const override;
  [[nodiscard]] std::size_t find(std::uint32_t cum_value) const override;

  /// Compact wire form (varint-coded quantized frequencies).  This is the
  /// payload counted as model-dissemination overhead.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static StaticModel deserialize(std::span<const std::uint8_t> bytes);

  [[nodiscard]] bool operator==(const StaticModel& other) const noexcept {
    return freqs_ == other.freqs_;
  }

 private:
  StaticModel() = default;
  void rebuild_cum();

  std::vector<std::uint32_t> freqs_;
  std::vector<std::uint32_t> cum_;  // cum_[s] = sum below s; size()+1 entries
  std::uint32_t total_ = 0;
};

/// Order-0 adaptive model: starts uniform(1), increments the coded symbol by
/// `increment`, and halves all counts (keeping >= 1) when the total would
/// exceed kMaxModelTotal.  Encoder and decoder stay synchronized by applying
/// identical update() calls.
class AdaptiveModel final : public FrequencyModel {
 public:
  explicit AdaptiveModel(std::size_t symbol_count, std::uint32_t increment = 32);

  [[nodiscard]] std::size_t symbol_count() const noexcept override { return count_; }
  [[nodiscard]] std::uint32_t total() const noexcept override;
  [[nodiscard]] std::uint32_t cum(std::size_t symbol) const override;
  [[nodiscard]] std::uint32_t freq(std::size_t symbol) const override;
  [[nodiscard]] std::size_t find(std::uint32_t cum_value) const override;
  void update(std::size_t symbol) override;

 private:
  void rescale();

  dophy::common::FenwickTree tree_;
  std::size_t count_;
  std::uint32_t increment_;
};

/// Normalizes `counts` to frequencies with total <= max_total and min 1 per
/// symbol.  Shared by StaticModel and tests.
[[nodiscard]] std::vector<std::uint32_t> quantize_counts(const std::vector<std::uint64_t>& counts,
                                                         std::uint32_t max_total);

}  // namespace dophy::coding
