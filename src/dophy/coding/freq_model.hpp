#pragma once

// Symbol frequency models driving the range coder.
//
// Dophy disseminates *versioned static models* from the sink (all encoders
// along a path must share the decoder's model bit-for-bit), while offline
// codec comparisons also use a self-synchronizing adaptive model.
//
// The lookup surface is shaped for the coder's hot path: both directions go
// through one combined virtual call (`interval` when encoding, `locate` when
// decoding) instead of separate total/cum/freq/find calls, and StaticModel
// additionally exposes its cumulative table so the decoder's non-virtual
// fast path can search it inline.

#include <cstdint>
#include <span>
#include <vector>

#include "dophy/common/fenwick.hpp"

namespace dophy::coding {

/// Upper bound on a model's total frequency.  The range coder divides its
/// 32-bit range by the total and renormalizes at 2^16, so totals must stay
/// <= 2^16 for every symbol to keep a non-empty slice; this also keeps
/// serialized models small.
inline constexpr std::uint32_t kMaxModelTotal = 1u << 16;

/// Interface consumed by RangeEncoder/RangeDecoder.  Cumulative counts are
/// "below": cum(s) = sum of freq(t) for t < s; every symbol must have
/// freq >= 1 so it stays codable.
class FrequencyModel {
 public:
  virtual ~FrequencyModel() = default;

  [[nodiscard]] virtual std::size_t symbol_count() const noexcept = 0;
  [[nodiscard]] virtual std::uint32_t total() const noexcept = 0;
  [[nodiscard]] virtual std::uint32_t cum(std::size_t symbol) const = 0;
  [[nodiscard]] virtual std::uint32_t freq(std::size_t symbol) const = 0;
  /// Symbol whose interval [cum(s), cum(s)+freq(s)) contains `cum_value`.
  [[nodiscard]] virtual std::size_t find(std::uint32_t cum_value) const = 0;

  /// Encoder-side combined lookup: writes [cum(symbol), freq(symbol)) into
  /// the out-params in one virtual call.  Default composes cum() + freq().
  virtual void interval(std::size_t symbol, std::uint32_t& cum_lo,
                        std::uint32_t& freq_out) const;

  /// Decoder-side combined lookup: the symbol containing `cum_value` plus
  /// its interval, in one virtual call.  Default composes find() + cum() +
  /// freq(); both concrete models override with a single-pass search.
  [[nodiscard]] virtual std::size_t locate(std::uint32_t cum_value, std::uint32_t& cum_lo,
                                           std::uint32_t& freq_out) const;

  /// Adapts the model after coding `symbol`; static models ignore it.
  virtual void update(std::size_t symbol);

  /// Ideal code length of `symbol` under this model, in bits.
  [[nodiscard]] double ideal_bits(std::size_t symbol) const;
};

/// Immutable model built from a count vector, quantized so that the total is
/// <= kMaxModelTotal and every symbol keeps frequency >= 1.  Serializable for
/// model dissemination; (de)serialization is bit-exact so every node and the
/// sink agree.
class StaticModel final : public FrequencyModel {
 public:
  /// Uniform model over `symbol_count` symbols.
  explicit StaticModel(std::size_t symbol_count);

  /// Model proportional to `counts` (zeros are bumped to 1), quantized so
  /// the total is <= `max_total`.  Smaller totals give coarser probabilities
  /// but much smaller serialized models — the dissemination-cost knob.
  explicit StaticModel(const std::vector<std::uint64_t>& counts,
                       std::uint32_t max_total = kMaxModelTotal);

  [[nodiscard]] std::size_t symbol_count() const noexcept override { return freqs_.size(); }
  [[nodiscard]] std::uint32_t total() const noexcept override { return total_; }
  [[nodiscard]] std::uint32_t cum(std::size_t symbol) const override;
  [[nodiscard]] std::uint32_t freq(std::size_t symbol) const override;
  [[nodiscard]] std::size_t find(std::uint32_t cum_value) const override;
  void interval(std::size_t symbol, std::uint32_t& cum_lo,
                std::uint32_t& freq_out) const override;
  [[nodiscard]] std::size_t locate(std::uint32_t cum_value, std::uint32_t& cum_lo,
                                   std::uint32_t& freq_out) const override;

  /// The cumulative table (symbol_count()+1 entries, cum_table()[0] == 0,
  /// cum_table().back() == total()).  Backing store for the decoder's
  /// non-virtual fast path.
  [[nodiscard]] std::span<const std::uint32_t> cum_table() const noexcept { return cum_; }

  /// Non-virtual single-pass search: the symbol whose interval contains
  /// `cum_value`.  Precondition: cum_value < total().  Linear scan for small
  /// alphabets (retx models are 4–16 symbols), binary search above that.
  [[nodiscard]] std::size_t locate_fast(std::uint32_t cum_value) const noexcept {
    const std::uint32_t* c = cum_.data();
    const std::size_t n = freqs_.size();
    if (n <= 16) {
      std::size_t s = 1;
      while (c[s] <= cum_value) ++s;  // terminates: c[n] == total_ > cum_value
      return s - 1;
    }
    std::size_t lo = 0;
    std::size_t hi = n;
    while (hi - lo > 1) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (c[mid] <= cum_value) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Compact wire form (varint-coded quantized frequencies).  This is the
  /// payload counted as model-dissemination overhead.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static StaticModel deserialize(std::span<const std::uint8_t> bytes);

  [[nodiscard]] bool operator==(const StaticModel& other) const noexcept {
    return freqs_ == other.freqs_;
  }

 private:
  StaticModel() = default;
  void rebuild_cum();

  std::vector<std::uint32_t> freqs_;
  std::vector<std::uint32_t> cum_;  // cum_[s] = sum below s; size()+1 entries
  std::uint32_t total_ = 0;
};

/// Order-0 adaptive model: starts uniform(1), increments the coded symbol by
/// `increment`, and halves all counts (keeping >= 1) when the total would
/// exceed kMaxModelTotal.  Encoder and decoder stay synchronized by applying
/// identical update() calls.
///
/// Prefix sums live in a Fenwick tree; a flat frequency mirror plus a cached
/// total make freq()/total() O(1) and let locate() resolve symbol + interval
/// in one tree descent.  Alphabets of at most kSmallAlphabet symbols (the
/// retransmission-count case: K <= 8) skip the tree entirely — a linear scan
/// over the flat array beats the descent's pointer chasing at that size, and
/// update() collapses to two additions.
class AdaptiveModel final : public FrequencyModel {
 public:
  /// Below this alphabet size prefix sums are linear scans, not tree ops.
  static constexpr std::size_t kSmallAlphabet = 24;

  explicit AdaptiveModel(std::size_t symbol_count, std::uint32_t increment = 32);

  [[nodiscard]] std::size_t symbol_count() const noexcept override { return count_; }
  [[nodiscard]] std::uint32_t total() const noexcept override { return total_; }
  [[nodiscard]] std::uint32_t cum(std::size_t symbol) const override;
  [[nodiscard]] std::uint32_t freq(std::size_t symbol) const override;
  [[nodiscard]] std::size_t find(std::uint32_t cum_value) const override;
  void interval(std::size_t symbol, std::uint32_t& cum_lo,
                std::uint32_t& freq_out) const override;
  [[nodiscard]] std::size_t locate(std::uint32_t cum_value, std::uint32_t& cum_lo,
                                   std::uint32_t& freq_out) const override;
  void update(std::size_t symbol) override;

 private:
  void rescale();

  dophy::common::FenwickTree tree_;   // unused (empty) when small_
  std::vector<std::uint32_t> freqs_;  // flat counts; mirrors tree_ leaves when !small_
  std::size_t count_;
  std::uint32_t increment_;
  std::uint32_t total_ = 0;
  bool small_;
};

/// Normalizes `counts` to frequencies with total <= max_total and min 1 per
/// symbol.  Shared by StaticModel and tests.
[[nodiscard]] std::vector<std::uint32_t> quantize_counts(const std::vector<std::uint64_t>& counts,
                                                         std::uint32_t max_total);

}  // namespace dophy::coding
