#include "dophy/coding/codec.hpp"

#include <bit>
#include <stdexcept>

#include "dophy/common/bitio.hpp"
#include "dophy/coding/elias.hpp"
#include "dophy/coding/golomb.hpp"
#include "dophy/coding/legacy_arith.hpp"

namespace dophy::coding {

std::string_view to_string(CodecError error) noexcept {
  switch (error) {
    case CodecError::kNone: return "none";
    case CodecError::kTruncated: return "truncated";
    case CodecError::kMalformed: return "malformed";
  }
  return "?";
}

// Default hardening: the bit-oriented codecs (fixed/Elias/Rice/Huffman)
// already guard every read — running off the buffer throws std::out_of_range
// (BitReader) and an impossible codeword throws logic/runtime errors — so
// mapping exceptions to the typed error is sufficient.
DecodeOutcome Codec::try_decode(const std::vector<std::uint8_t>& bytes, std::size_t count) {
  DecodeOutcome out;
  try {
    out.symbols = decode(bytes, count);
  } catch (const std::out_of_range&) {
    out.error = CodecError::kTruncated;
  } catch (const std::exception&) {
    out.error = CodecError::kMalformed;
  }
  return out;
}

namespace {

using dophy::common::BitReader;
using dophy::common::BitWriter;

class FixedWidthCodec final : public Codec {
 public:
  explicit FixedWidthCodec(std::uint32_t alphabet_size)
      : width_(alphabet_size <= 1
                   ? 1u
                   : static_cast<unsigned>(std::bit_width(alphabet_size - 1))) {}

  [[nodiscard]] std::string name() const override {
    return "fixed" + std::to_string(width_) + "bit";
  }

  std::size_t encode(const std::vector<std::uint32_t>& symbols,
                     std::vector<std::uint8_t>& out) override {
    BitWriter w;
    for (const std::uint32_t s : symbols) w.put_bits(s, width_);
    const std::size_t bits = w.bit_count();
    out = w.take();
    return bits;
  }

  [[nodiscard]] std::vector<std::uint32_t> decode(const std::vector<std::uint8_t>& bytes,
                                                  std::size_t count) override {
    BitReader r(bytes);
    std::vector<std::uint32_t> symbols;
    symbols.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      symbols.push_back(static_cast<std::uint32_t>(r.get_bits(width_)));
    }
    return symbols;
  }

 private:
  unsigned width_;
};

class EliasGammaCodec final : public Codec {
 public:
  [[nodiscard]] std::string name() const override { return "elias-gamma"; }

  std::size_t encode(const std::vector<std::uint32_t>& symbols,
                     std::vector<std::uint8_t>& out) override {
    BitWriter w;
    for (const std::uint32_t s : symbols) elias_gamma_encode(w, s + 1ull);
    const std::size_t bits = w.bit_count();
    out = w.take();
    return bits;
  }

  [[nodiscard]] std::vector<std::uint32_t> decode(const std::vector<std::uint8_t>& bytes,
                                                  std::size_t count) override {
    BitReader r(bytes);
    std::vector<std::uint32_t> symbols;
    symbols.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      symbols.push_back(static_cast<std::uint32_t>(elias_gamma_decode(r) - 1));
    }
    return symbols;
  }
};

class RiceCodec final : public Codec {
 public:
  explicit RiceCodec(unsigned k) : k_(k) {}

  [[nodiscard]] std::string name() const override { return "rice-k" + std::to_string(k_); }

  std::size_t encode(const std::vector<std::uint32_t>& symbols,
                     std::vector<std::uint8_t>& out) override {
    BitWriter w;
    for (const std::uint32_t s : symbols) rice_encode(w, s, k_);
    const std::size_t bits = w.bit_count();
    out = w.take();
    return bits;
  }

  [[nodiscard]] std::vector<std::uint32_t> decode(const std::vector<std::uint8_t>& bytes,
                                                  std::size_t count) override {
    BitReader r(bytes);
    std::vector<std::uint32_t> symbols;
    symbols.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      symbols.push_back(static_cast<std::uint32_t>(rice_decode(r, k_)));
    }
    return symbols;
  }

 private:
  unsigned k_;
};

class HuffmanCodec final : public Codec {
 public:
  explicit HuffmanCodec(std::vector<std::uint64_t> counts) : code_(counts) {}

  [[nodiscard]] std::string name() const override { return "huffman"; }

  std::size_t encode(const std::vector<std::uint32_t>& symbols,
                     std::vector<std::uint8_t>& out) override {
    BitWriter w;
    for (const std::uint32_t s : symbols) code_.encode(w, s);
    const std::size_t bits = w.bit_count();
    out = w.take();
    return bits;
  }

  [[nodiscard]] std::vector<std::uint32_t> decode(const std::vector<std::uint8_t>& bytes,
                                                  std::size_t count) override {
    BitReader r(bytes);
    std::vector<std::uint32_t> symbols;
    symbols.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      symbols.push_back(static_cast<std::uint32_t>(code_.decode(r)));
    }
    return symbols;
  }

 private:
  HuffmanCode code_;
};

class StaticArithCodec final : public Codec {
 public:
  explicit StaticArithCodec(std::vector<std::uint64_t> counts) : model_(counts) {}

  [[nodiscard]] std::string name() const override { return "arith-static"; }

  std::size_t encode(const std::vector<std::uint32_t>& symbols,
                     std::vector<std::uint8_t>& out) override {
    out.clear();
    RangeEncoder enc(out);
    for (const std::uint32_t s : symbols) enc.encode(model_, s);
    enc.finish();
    return out.size() * 8;
  }

  [[nodiscard]] std::vector<std::uint32_t> decode(const std::vector<std::uint8_t>& bytes,
                                                  std::size_t count) override {
    RangeDecoder dec(bytes);
    std::vector<std::uint32_t> symbols;
    symbols.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      symbols.push_back(static_cast<std::uint32_t>(dec.decode(model_)));
    }
    return symbols;
  }

  // Range-coded streams happily decode a cut buffer into in-alphabet garbage
  // (the zero-fill tail is indistinguishable from data), so the exception
  // mapping alone is not enough: also reject streams whose decode leaned on
  // more virtual fill than any complete encoding could need.
  [[nodiscard]] DecodeOutcome try_decode(const std::vector<std::uint8_t>& bytes,
                                         std::size_t count) override {
    DecodeOutcome out;
    RangeDecoder dec(bytes);
    try {
      out.symbols.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        out.symbols.push_back(static_cast<std::uint32_t>(dec.decode(model_)));
      }
    } catch (const std::exception&) {
      out.error = CodecError::kMalformed;
      return out;
    }
    if (dec.likely_truncated()) out.error = CodecError::kTruncated;
    return out;
  }

 private:
  StaticModel model_;
};

class AdaptiveArithCodec final : public Codec {
 public:
  explicit AdaptiveArithCodec(std::uint32_t alphabet_size) : alphabet_size_(alphabet_size) {}

  [[nodiscard]] std::string name() const override { return "arith-adaptive"; }

  std::size_t encode(const std::vector<std::uint32_t>& symbols,
                     std::vector<std::uint8_t>& out) override {
    AdaptiveModel model(alphabet_size_);
    out.clear();
    RangeEncoder enc(out);
    for (const std::uint32_t s : symbols) {
      enc.encode(model, s);
      model.update(s);
    }
    enc.finish();
    return out.size() * 8;
  }

  [[nodiscard]] std::vector<std::uint32_t> decode(const std::vector<std::uint8_t>& bytes,
                                                  std::size_t count) override {
    AdaptiveModel model(alphabet_size_);
    RangeDecoder dec(bytes);
    std::vector<std::uint32_t> symbols;
    symbols.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t s = dec.decode(model);
      model.update(s);
      symbols.push_back(static_cast<std::uint32_t>(s));
    }
    return symbols;
  }

  // Same truncation rationale as StaticArithCodec::try_decode.
  [[nodiscard]] DecodeOutcome try_decode(const std::vector<std::uint8_t>& bytes,
                                         std::size_t count) override {
    DecodeOutcome out;
    AdaptiveModel model(alphabet_size_);
    RangeDecoder dec(bytes);
    try {
      out.symbols.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t s = dec.decode(model);
        model.update(s);
        out.symbols.push_back(static_cast<std::uint32_t>(s));
      }
    } catch (const std::exception&) {
      out.error = CodecError::kMalformed;
      return out;
    }
    if (dec.likely_truncated()) out.error = CodecError::kTruncated;
    return out;
  }

 private:
  std::uint32_t alphabet_size_;
};

// Wire-v1 codecs over the retired bit-oriented coder.  Differential tests
// pin value-exact equivalence against the range-coder codecs above, and the
// microbenchmarks interleave both for the A/B speedup measurement.

class LegacyStaticArithCodec final : public Codec {
 public:
  explicit LegacyStaticArithCodec(std::vector<std::uint64_t> counts) : model_(counts) {}

  [[nodiscard]] std::string name() const override { return "arith-static-v1"; }

  std::size_t encode(const std::vector<std::uint32_t>& symbols,
                     std::vector<std::uint8_t>& out) override {
    BitWriter w;
    legacy::ArithmeticEncoder enc(w);
    for (const std::uint32_t s : symbols) enc.encode(model_, s);
    enc.finish();
    const std::size_t bits = w.bit_count();
    out = w.take();
    return bits;
  }

  [[nodiscard]] std::vector<std::uint32_t> decode(const std::vector<std::uint8_t>& bytes,
                                                  std::size_t count) override {
    legacy::ArithmeticDecoder dec(bytes);
    std::vector<std::uint32_t> symbols;
    symbols.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      symbols.push_back(static_cast<std::uint32_t>(dec.decode(model_)));
    }
    return symbols;
  }

  [[nodiscard]] DecodeOutcome try_decode(const std::vector<std::uint8_t>& bytes,
                                         std::size_t count) override {
    DecodeOutcome out;
    legacy::ArithmeticDecoder dec(bytes);
    try {
      out.symbols.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        out.symbols.push_back(static_cast<std::uint32_t>(dec.decode(model_)));
      }
    } catch (const std::exception&) {
      out.error = CodecError::kMalformed;
      return out;
    }
    if (dec.likely_truncated()) out.error = CodecError::kTruncated;
    return out;
  }

 private:
  StaticModel model_;
};

class LegacyAdaptiveArithCodec final : public Codec {
 public:
  explicit LegacyAdaptiveArithCodec(std::uint32_t alphabet_size)
      : alphabet_size_(alphabet_size) {}

  [[nodiscard]] std::string name() const override { return "arith-adaptive-v1"; }

  std::size_t encode(const std::vector<std::uint32_t>& symbols,
                     std::vector<std::uint8_t>& out) override {
    AdaptiveModel model(alphabet_size_);
    BitWriter w;
    legacy::ArithmeticEncoder enc(w);
    for (const std::uint32_t s : symbols) {
      enc.encode(model, s);
      model.update(s);
    }
    enc.finish();
    const std::size_t bits = w.bit_count();
    out = w.take();
    return bits;
  }

  [[nodiscard]] std::vector<std::uint32_t> decode(const std::vector<std::uint8_t>& bytes,
                                                  std::size_t count) override {
    AdaptiveModel model(alphabet_size_);
    legacy::ArithmeticDecoder dec(bytes);
    std::vector<std::uint32_t> symbols;
    symbols.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t s = dec.decode(model);
      model.update(s);
      symbols.push_back(static_cast<std::uint32_t>(s));
    }
    return symbols;
  }

  [[nodiscard]] DecodeOutcome try_decode(const std::vector<std::uint8_t>& bytes,
                                         std::size_t count) override {
    DecodeOutcome out;
    AdaptiveModel model(alphabet_size_);
    legacy::ArithmeticDecoder dec(bytes);
    try {
      out.symbols.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t s = dec.decode(model);
        model.update(s);
        out.symbols.push_back(static_cast<std::uint32_t>(s));
      }
    } catch (const std::exception&) {
      out.error = CodecError::kMalformed;
      return out;
    }
    if (dec.likely_truncated()) out.error = CodecError::kTruncated;
    return out;
  }

 private:
  std::uint32_t alphabet_size_;
};

}  // namespace

std::unique_ptr<Codec> make_fixed_width_codec(std::uint32_t alphabet_size) {
  return std::make_unique<FixedWidthCodec>(alphabet_size);
}

std::unique_ptr<Codec> make_elias_gamma_codec() { return std::make_unique<EliasGammaCodec>(); }

std::unique_ptr<Codec> make_rice_codec(unsigned k) { return std::make_unique<RiceCodec>(k); }

std::unique_ptr<Codec> make_huffman_codec(std::vector<std::uint64_t> counts) {
  return std::make_unique<HuffmanCodec>(std::move(counts));
}

std::unique_ptr<Codec> make_static_arith_codec(std::vector<std::uint64_t> counts) {
  return std::make_unique<StaticArithCodec>(std::move(counts));
}

std::unique_ptr<Codec> make_adaptive_arith_codec(std::uint32_t alphabet_size) {
  return std::make_unique<AdaptiveArithCodec>(alphabet_size);
}

std::unique_ptr<Codec> make_legacy_static_arith_codec(std::vector<std::uint64_t> counts) {
  return std::make_unique<LegacyStaticArithCodec>(std::move(counts));
}

std::unique_ptr<Codec> make_legacy_adaptive_arith_codec(std::uint32_t alphabet_size) {
  return std::make_unique<LegacyAdaptiveArithCodec>(alphabet_size);
}

}  // namespace dophy::coding
