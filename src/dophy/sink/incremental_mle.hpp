#pragma once

// Incremental censored-geometric link estimator for the streaming sink.
//
// Per-link sufficient statistics (tomo::GeometricSuffStats) are sharded by
// link hash: an update locks exactly one shard, so sink-side queries
// (estimate / all_estimates / snapshot) can run concurrently with the
// consumer thread without stalling ingest.  Every estimate is produced by
// the same closed form the batch tomo::LinkLossEstimator evaluates
// (tomo::estimate_censored_geometric), and the statistics stay integral
// until a decay is applied — so after the same multiset of observations the
// incremental state equals the batch state bit-for-bit, regardless of
// arrival order or shard layout.  The differential campaign in
// tests/sink/test_incremental_mle.cpp holds this to <= 1e-12 (and exact
// equality on the sufficient statistics).
//
// Snapshots serialize the statistics as %.17g strings (JSON numbers in this
// codebase print as %.9g, which is lossy); restore therefore reproduces the
// exact doubles, making snapshot/restore invisible to the differential test
// even mid-stream and after decay epochs.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dophy/net/types.hpp"
#include "dophy/obs/json.hpp"
#include "dophy/tomo/dophy_decoder.hpp"
#include "dophy/tomo/geometric_mle.hpp"

namespace dophy::sink {

/// Incremental censored-geometric link estimator, sharded by link hash so
/// updates and queries run concurrently (see the file comment).
class ShardedLinkEstimator {
 public:
  /// `censor_threshold` K >= 2; `decay` in (0,1] (1 = cumulative);
  /// `shard_count` >= 1 (rounded up to a power of two).
  explicit ShardedLinkEstimator(std::uint32_t censor_threshold, double decay = 1.0,
                                std::size_t shard_count = 16);

  /// Movable (the shard vector's buffer moves wholesale; mutexes never move
  /// element-wise), not copyable.  Only safe while no thread is updating.
  ShardedLinkEstimator(ShardedLinkEstimator&&) noexcept = default;
  /// Move assignment; same safety contract as the move constructor.
  ShardedLinkEstimator& operator=(ShardedLinkEstimator&&) noexcept = default;

  /// Beta(a, b) prior on per-attempt success; both 0 keeps the plain MLE.
  void set_beta_prior(double a, double b);

  /// Folds one decoded hop observation into the link's statistics.
  void observe(dophy::net::LinkKey link, const tomo::HopObservation& obs);
  /// Folds every hop of a decoded path (observe per link).
  void observe_path(const tomo::DecodedPath& path);

  /// Applies the decay factor to every link (tracking-epoch boundary).
  void end_epoch();

  /// Folds every link of `other` into this estimator through
  /// tomo::GeometricSuffStats::merge — plain addition, exact while the
  /// statistics are integral doubles, so merging per-consumer partitions
  /// reproduces the single-estimator state bit-for-bit.  `other` must not
  /// be concurrently updated; shard layouts may differ.
  void merge_from(const ShardedLinkEstimator& other);

  /// One link's current estimate; nullopt when never observed.
  [[nodiscard]] std::optional<tomo::LinkEstimate> estimate(dophy::net::LinkKey link) const;
  /// Every observed link's estimate, sorted by link key.
  [[nodiscard]] std::vector<std::pair<dophy::net::LinkKey, tomo::LinkEstimate>> all_estimates()
      const;

  /// Copy of one link's raw statistics; nullopt when never observed.
  [[nodiscard]] std::optional<tomo::GeometricSuffStats> stats(dophy::net::LinkKey link) const;

  /// Distinct links observed so far.
  [[nodiscard]] std::size_t link_count() const;
  /// The aggregation threshold K this estimator was built with.
  [[nodiscard]] std::uint32_t censor_threshold() const noexcept { return k_; }
  /// Number of shards (power of two).
  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  /// Drops every link's statistics (configuration kept).
  void clear();

  /// Serializes configuration + every link's statistics.  Consistent when no
  /// update runs concurrently (the service snapshots at batch boundaries).
  [[nodiscard]] std::string snapshot_json() const;

  /// Rebuilds an estimator from snapshot_json() output; nullopt on malformed
  /// input.  The restored estimator is bit-identical to the snapshotted one.
  [[nodiscard]] static std::optional<ShardedLinkEstimator> restore_json(std::string_view json);

  /// Same, from an already-parsed document (e.g. a subtree of a service
  /// snapshot).  Exactness holds because the parser keeps the quoted %.17g
  /// statistics as strings.
  [[nodiscard]] static std::optional<ShardedLinkEstimator> restore(
      const dophy::obs::JsonValue& doc);

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<dophy::net::LinkKey, tomo::GeometricSuffStats, dophy::net::LinkKeyHash>
        links;
  };

  [[nodiscard]] Shard& shard_for(dophy::net::LinkKey link) const;

  std::uint32_t k_;
  double decay_;
  double prior_a_ = 0.0;
  double prior_b_ = 0.0;
  std::size_t shard_mask_;
  mutable std::vector<Shard> shards_;
};

}  // namespace dophy::sink
