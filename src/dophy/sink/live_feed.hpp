#pragma once

// Live mode: the simulator's sink tap feeding an in-process SinkService.
//
// LiveSinkFeed implements tomo::SinkReportTap so it can hang off
// PipelineConfig::live_sink — every model install and packet delivery the
// simulated sink observes is submitted straight into the service's ingest
// queue, replacing the record-to-disk / replay-from-disk loop with the
// paper's actual deployment story: a sink continuously estimating per-link
// loss from live reports.
//
// The feed applies the same canonical rules as stream_feed: simulator-only
// ground truth is stripped from each packet (the service must decode the
// wire form, not peek at the truth), reports fan out round-robin over the
// producer lanes, and installs ride lane 0 double-bracketed with
// wait_idle() so no report encoded under a new model version can drain
// ahead of its install on another lane.  The simulator delivers from one
// thread, so single-threaded round-robin submits respect every lane's
// single-pusher contract.

#include <cstdint>

#include "dophy/sink/service.hpp"
#include "dophy/tomo/pipeline.hpp"

namespace dophy::sink {

/// Feed-side counters (single-writer: the simulator thread).
struct LiveSinkFeedStats {
  std::uint64_t reports_submitted = 0;  ///< deliveries accepted by the queue
  std::uint64_t reports_shed = 0;       ///< deliveries rejected (kDropNewest)
  std::uint64_t installs = 0;           ///< model installs forwarded
};

/// SinkReportTap that submits every simulated sink observation straight
/// into an in-process SinkService (see the file comment).
class LiveSinkFeed final : public tomo::SinkReportTap {
 public:
  /// Binds the feed to `service` (must outlive the feed and be start()ed
  /// before the pipeline runs).  Lanes are taken from the service config.
  explicit LiveSinkFeed(SinkService& service)
      : service_(service), producers_(service.config().producers) {}

  /// Forwards a published model set: wait_idle() bracket, lane-0 submit.
  void on_sink_install(const tomo::ModelSet& set) override;
  /// Forwards a delivery: strips simulator-only ground truth, submits
  /// round-robin onto the next producer lane.
  void on_delivery(const dophy::net::Packet& packet, dophy::net::SimTime now,
                   bool in_measure) override;

  /// Feed-side counters (read from the simulator thread or after the run).
  [[nodiscard]] const LiveSinkFeedStats& stats() const noexcept { return stats_; }

 private:
  SinkService& service_;
  std::size_t producers_;
  std::size_t next_lane_ = 0;
  LiveSinkFeedStats stats_;
};

}  // namespace dophy::sink
