#include "dophy/sink/service.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "dophy/obs/json.hpp"
#include "dophy/obs/metrics.hpp"

namespace dophy::sink {
namespace {

[[nodiscard]] std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct SinkMetrics {
  dophy::obs::LatencyHistogram ingest_latency;
  dophy::obs::Gauge queue_depth;
  dophy::obs::LatencyHistogram mle_update;
  dophy::obs::Counter reports_processed;
  dophy::obs::Counter decode_failures;
  dophy::obs::Counter models_installed;
  dophy::obs::Counter models_rejected;

  static const SinkMetrics& get() {
    static const SinkMetrics m = [] {
      auto& reg = dophy::obs::Registry::global();
      return SinkMetrics{reg.latency_histogram("sink.ingest.latency_us"),
                         reg.gauge("sink.queue.depth"),
                         reg.latency_histogram("sink.mle.update_us"),
                         reg.counter("sink.reports.processed"),
                         reg.counter("sink.decode.failures"),
                         reg.counter("sink.models.installed"),
                         reg.counter("sink.models.rejected")};
    }();
    return m;
  }
};

void accumulate(tomo::DophyDecoderStats& total, const tomo::DophyDecoderStats& part) {
  total.packets_decoded += part.packets_decoded;
  total.decode_failures += part.decode_failures;
  total.reports_lost += part.reports_lost;
  total.unknown_model_version += part.unknown_model_version;
  total.unfinalized += part.unfinalized;
  total.path_truncated += part.path_truncated;
  total.wire_truncated += part.wire_truncated;
  total.malformed_stream += part.malformed_stream;
  total.invalid_hop += part.invalid_hop;
  total.no_sink_terminal += part.no_sink_terminal;
}

}  // namespace

SinkService::SinkService(SinkServiceConfig config)
    : config_(config),
      mapper_(config.censor_threshold),
      store_(),
      queue_(config.queue_capacity, config.producers, config.overflow_policy,
             std::max<std::size_t>(
                 1, std::min(config.consumers,
                             config.producers == 0 ? std::size_t{1} : config.producers))) {
  if (config.node_count == 0) {
    throw std::invalid_argument("SinkService: node_count must be set");
  }
  if (config.decode_batch == 0) {
    throw std::invalid_argument("SinkService: decode_batch must be >= 1");
  }
  if (config.consumers == 0) {
    throw std::invalid_argument("SinkService: consumers must be >= 1");
  }
  // A consumer with no owned lane would have nothing to drain; clamp so the
  // effective count is visible through config().
  config_.consumers = std::max<std::size_t>(1, std::min(config.consumers, config.producers));
  // Same bootstrap the instrumentation side starts from: every stream is
  // decodable from record zero even before its first model install.
  store_.install(tomo::ModelSet::bootstrap(config.node_count, mapper_.alphabet_size()));
  consumers_.reserve(config_.consumers);
  for (std::size_t c = 0; c < config_.consumers; ++c) {
    consumers_.push_back(std::make_unique<Consumer>(store_, mapper_, config_));
    if (config.prior_a > 0.0 || config.prior_b > 0.0) {
      consumers_.back()->estimator.set_beta_prior(config.prior_a, config.prior_b);
    }
  }
  lane_processed_ = std::vector<std::atomic<std::uint64_t>>(config_.producers);
}

SinkService::~SinkService() { stop(); }

void SinkService::start() {
  if (stopped_ || running_.load(std::memory_order_acquire)) return;
  running_.store(true, std::memory_order_release);
  for (std::size_t c = 0; c < consumers_.size(); ++c) {
    consumers_[c]->thread = std::thread([this, c] { consumer_loop(c); });
  }
}

void SinkService::stop() {
  if (stopped_) return;
  stopped_ = true;
  queue_.close();
  bool joined = false;
  for (auto& consumer : consumers_) {
    if (consumer->thread.joinable()) {
      consumer->thread.join();
      joined = true;
    }
  }
  if (!joined) {
    // Never started: drain synchronously so accepted records are not lost.
    std::vector<StreamRecord> batch;
    for (std::size_t c = 0; c < consumers_.size(); ++c) {
      while (queue_.drain_into(batch, config_.decode_batch, c) > 0) {
        process_batch(c, batch);
        batch.clear();
      }
    }
  }
  running_.store(false, std::memory_order_release);
}

bool SinkService::submit(std::size_t producer, StreamRecord record) {
  record.enqueue_ns = now_ns();
  record.lane = static_cast<std::uint32_t>(producer);
  if (!queue_.push(producer, std::move(record))) return false;
  submitted_.fetch_add(1, std::memory_order_release);
  return true;
}

void SinkService::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_cv_.wait(lock, [&] {
    return processed_records_.load(std::memory_order_acquire) >=
           submitted_.load(std::memory_order_acquire);
  });
}

void SinkService::consumer_loop(std::size_t consumer) {
  std::vector<StreamRecord> batch;
  batch.reserve(config_.decode_batch);
  while (true) {
    batch.clear();
    const std::size_t taken = queue_.drain_into(batch, config_.decode_batch, consumer);
    if (taken == 0) {
      if (!queue_.wait_nonempty(consumer)) break;  // closed and fully drained
      continue;
    }
    process_batch(consumer, batch);
  }
}

void SinkService::process_batch(std::size_t consumer, std::vector<StreamRecord>& batch) {
  const SinkMetrics& metrics = SinkMetrics::get();
  Consumer& self = *consumers_[consumer];
  const std::uint64_t batch_start = now_ns();
  // Segmented locking: report runs decode under a shared store-barrier hold;
  // each install takes the barrier exclusively — the cross-consumer
  // synchronization point that quiesces every decode in flight before the
  // store mutates.  Counters (per-lane cursor, processed tallies) are bumped
  // inside the hold so an exclusive snapshot always sees a cursor consistent
  // with the folded estimator state.
  std::size_t i = 0;
  while (i < batch.size()) {
    if (batch[i].kind == StreamRecord::Kind::kModelInstall) {
      StreamRecord& rec = batch[i];
      const std::unique_lock<std::shared_mutex> barrier(store_barrier_);
      try {
        store_.install(tomo::ModelSet::deserialize(rec.model_bytes));
        installed_model_bytes_.push_back(std::move(rec.model_bytes));
        if (installed_model_bytes_.size() > kModelHistory) {
          installed_model_bytes_.erase(installed_model_bytes_.begin());
        }
        models_installed_.fetch_add(1, std::memory_order_relaxed);
        metrics.models_installed.inc();
      } catch (const std::exception&) {
        metrics.models_rejected.inc();  // malformed install: skip, keep going
      }
      lane_processed_[rec.lane].fetch_add(1, std::memory_order_relaxed);
      ++i;
      continue;
    }
    std::uint64_t decoded = 0;
    std::uint64_t reports = 0;
    {
      const std::shared_lock<std::shared_mutex> barrier(store_barrier_);
      for (; i < batch.size() && batch[i].kind == StreamRecord::Kind::kReport; ++i) {
        StreamRecord& rec = batch[i];
        ++reports;
        metrics.reports_processed.inc();
        if (rec.enqueue_ns != 0) {
          metrics.ingest_latency.observe((now_ns() - rec.enqueue_ns) / 1000);
        }
        auto decoded_path = self.decoder.decode(rec.report.packet);
        if (decoded_path) {
          ++decoded;
          if (rec.report.in_measure || config_.ingest_warmup) {
            self.estimator.observe_path(*decoded_path);
          }
        } else {
          metrics.decode_failures.inc();
        }
        lane_processed_[rec.lane].fetch_add(1, std::memory_order_relaxed);
      }
      reports_processed_.fetch_add(reports, std::memory_order_relaxed);
      reports_decoded_.fetch_add(decoded, std::memory_order_relaxed);
    }
  }
  metrics.mle_update.observe((now_ns() - batch_start) / 1000);
  metrics.queue_depth.set(static_cast<double>(queue_.depth()));

  batches_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(idle_mutex_);
    processed_records_.fetch_add(batch.size(), std::memory_order_release);
  }
  idle_cv_.notify_all();
}

std::optional<tomo::GeometricSuffStats> SinkService::link_stats(
    dophy::net::LinkKey link) const {
  std::optional<tomo::GeometricSuffStats> out;
  for (const auto& consumer : consumers_) {
    const auto part = consumer->estimator.stats(link);
    if (!part) continue;
    if (!out) {
      out = *part;
    } else {
      out->merge(*part);
    }
  }
  return out;
}

std::optional<tomo::LinkEstimate> SinkService::estimate(dophy::net::LinkKey link) const {
  const auto stats = link_stats(link);
  if (!stats || !stats->has_support()) return std::nullopt;
  return tomo::estimate_censored_geometric(*stats, config_.censor_threshold, config_.prior_a,
                                           config_.prior_b);
}

std::vector<std::pair<dophy::net::LinkKey, tomo::LinkEstimate>> SinkService::all_estimates()
    const {
  return merged_estimator().all_estimates();
}

std::size_t SinkService::link_count() const { return merged_estimator().link_count(); }

ShardedLinkEstimator SinkService::merged_estimator() const {
  ShardedLinkEstimator merged(config_.censor_threshold, config_.decay, config_.shard_count);
  if (config_.prior_a > 0.0 || config_.prior_b > 0.0) {
    merged.set_beta_prior(config_.prior_a, config_.prior_b);
  }
  for (const auto& consumer : consumers_) {
    merged.merge_from(consumer->estimator);
  }
  return merged;
}

void SinkService::end_epoch() {
  const std::unique_lock<std::shared_mutex> barrier(store_barrier_);
  for (auto& consumer : consumers_) {
    consumer->estimator.end_epoch();
  }
}

SinkServiceStats SinkService::stats() const {
  SinkServiceStats s;
  s.reports_processed = reports_processed_.load(std::memory_order_relaxed);
  s.reports_decoded = reports_decoded_.load(std::memory_order_relaxed);
  s.models_installed = models_installed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.queue = queue_.stats();
  const auto decoder = decoder_stats();
  s.decode_failures = decoder.decode_failures;
  return s;
}

tomo::DophyDecoderStats SinkService::decoder_stats() const {
  const std::unique_lock<std::shared_mutex> barrier(store_barrier_);
  tomo::DophyDecoderStats total;
  for (const auto& consumer : consumers_) {
    accumulate(total, consumer->decoder.stats());
  }
  return total;
}

std::uint64_t SinkService::lane_processed(std::size_t lane) const {
  return lane_processed_.at(lane).load(std::memory_order_acquire);
}

std::string SinkService::snapshot_json() const {
  const std::unique_lock<std::shared_mutex> barrier(store_barrier_);
  dophy::obs::JsonWriter w;
  w.begin_object();
  w.key("format").value("dophy-sink-service-snapshot-v2");
  w.key("producers").value(static_cast<std::uint64_t>(config_.producers));
  w.key("consumers").value(static_cast<std::uint64_t>(config_.consumers));
  w.key("reports_processed").value(reports_processed_.load(std::memory_order_relaxed));
  w.key("reports_decoded").value(reports_decoded_.load(std::memory_order_relaxed));
  w.key("models_installed").value(models_installed_.load(std::memory_order_relaxed));
  // Per-lane stream cursor: how many records of each lane's FIFO subsequence
  // are folded into this snapshot.  Recovery replays each lane's tail from
  // exactly this offset.
  w.key("lane_processed").begin_array();
  for (const auto& lane : lane_processed_) {
    w.value(lane.load(std::memory_order_relaxed));
  }
  w.end_array();
  // Installed model history (oldest first) so a restored service can decode
  // every version the snapshotted one could.
  w.key("models").begin_array();
  for (const auto& bytes : installed_model_bytes_) {
    w.value(std::string_view(to_hex(bytes.data(), bytes.size())));
  }
  w.end_array();
  w.end_object();
  // The estimator document is embedded as pre-rendered JSON; JsonWriter has
  // no raw-splice call, so splice it over the closing brace.  The merge is
  // exact (integral-double addition), so the document equals what a
  // single-consumer run would have written.
  std::string out = w.take();
  out.pop_back();  // trailing '}'
  out += ",\"estimator\":";
  ShardedLinkEstimator merged(config_.censor_threshold, config_.decay, config_.shard_count);
  for (const auto& consumer : consumers_) {
    merged.merge_from(consumer->estimator);
  }
  out += merged.snapshot_json();
  out += '}';
  return out;
}

bool SinkService::restore_snapshot(std::string_view json) {
  if (running_.load(std::memory_order_acquire)) return false;
  const auto doc = dophy::obs::parse_json(json);
  if (!doc || !doc->is_object()) return false;
  const auto* format = doc->find("format");
  if (format == nullptr || !format->is_string() ||
      format->string != "dophy-sink-service-snapshot-v2") {
    return false;
  }
  const auto* estimator = doc->find("estimator");
  if (estimator == nullptr || !estimator->is_object()) return false;
  auto restored = ShardedLinkEstimator::restore(*estimator);
  if (!restored || restored->censor_threshold() != config_.censor_threshold) return false;
  const auto* lanes = doc->find("lane_processed");
  if (lanes != nullptr) {
    // The cursor is only meaningful against the same lane layout; reject a
    // mismatch rather than silently replaying the wrong tails.
    if (!lanes->is_array() || lanes->array.size() != lane_processed_.size()) return false;
    for (std::size_t i = 0; i < lanes->array.size(); ++i) {
      if (!lanes->array[i].is_number() || lanes->array[i].number < 0) return false;
      lane_processed_[i].store(static_cast<std::uint64_t>(lanes->array[i].number),
                               std::memory_order_relaxed);
    }
  }
  const auto* models = doc->find("models");
  if (models != nullptr && models->is_array()) {
    std::vector<std::uint8_t> bytes;
    for (const auto& entry : models->array) {
      if (!entry.is_string() || !from_hex(entry.string, bytes)) return false;
      try {
        store_.install(tomo::ModelSet::deserialize(bytes));
      } catch (const std::exception&) {
        return false;
      }
      installed_model_bytes_.push_back(bytes);
      if (installed_model_bytes_.size() > kModelHistory) {
        installed_model_bytes_.erase(installed_model_bytes_.begin());
      }
    }
  }
  // The merged state lands in consumer 0's partition; the other partitions
  // start empty and refill as the tail replays.  Queries merge across
  // partitions, so placement is invisible to every observer.
  consumers_[0]->estimator = std::move(*restored);
  for (std::size_t c = 1; c < consumers_.size(); ++c) {
    consumers_[c]->estimator.clear();
  }
  const auto* processed = doc->find("reports_processed");
  const auto* decoded = doc->find("reports_decoded");
  const auto* installed = doc->find("models_installed");
  if (processed != nullptr && processed->is_number()) {
    reports_processed_.store(static_cast<std::uint64_t>(processed->number),
                             std::memory_order_relaxed);
  }
  if (decoded != nullptr && decoded->is_number()) {
    reports_decoded_.store(static_cast<std::uint64_t>(decoded->number),
                           std::memory_order_relaxed);
  }
  if (installed != nullptr && installed->is_number()) {
    models_installed_.store(static_cast<std::uint64_t>(installed->number),
                            std::memory_order_relaxed);
  }
  return true;
}

}  // namespace dophy::sink
