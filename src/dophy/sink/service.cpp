#include "dophy/sink/service.hpp"

#include <chrono>
#include <stdexcept>

#include "dophy/obs/json.hpp"
#include "dophy/obs/metrics.hpp"

namespace dophy::sink {
namespace {

[[nodiscard]] std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct SinkMetrics {
  dophy::obs::LatencyHistogram ingest_latency;
  dophy::obs::Gauge queue_depth;
  dophy::obs::LatencyHistogram mle_update;
  dophy::obs::Counter reports_processed;
  dophy::obs::Counter decode_failures;
  dophy::obs::Counter models_installed;
  dophy::obs::Counter models_rejected;

  static const SinkMetrics& get() {
    static const SinkMetrics m = [] {
      auto& reg = dophy::obs::Registry::global();
      return SinkMetrics{reg.latency_histogram("sink.ingest.latency_us"),
                         reg.gauge("sink.queue.depth"),
                         reg.latency_histogram("sink.mle.update_us"),
                         reg.counter("sink.reports.processed"),
                         reg.counter("sink.decode.failures"),
                         reg.counter("sink.models.installed"),
                         reg.counter("sink.models.rejected")};
    }();
    return m;
  }
};

}  // namespace

SinkService::SinkService(SinkServiceConfig config)
    : config_(config),
      mapper_(config.censor_threshold),
      store_(),
      decoder_(store_, mapper_, config.max_hops),
      estimator_(config.censor_threshold, config.decay, config.shard_count),
      queue_(config.queue_capacity, config.producers, config.overflow_policy) {
  if (config.node_count == 0) {
    throw std::invalid_argument("SinkService: node_count must be set");
  }
  if (config.decode_batch == 0) {
    throw std::invalid_argument("SinkService: decode_batch must be >= 1");
  }
  if (config.prior_a > 0.0 || config.prior_b > 0.0) {
    estimator_.set_beta_prior(config.prior_a, config.prior_b);
  }
  // Same bootstrap the instrumentation side starts from: every stream is
  // decodable from record zero even before its first model install.
  store_.install(tomo::ModelSet::bootstrap(config.node_count, mapper_.alphabet_size()));
}

SinkService::~SinkService() { stop(); }

void SinkService::start() {
  if (stopped_ || running_.load(std::memory_order_acquire)) return;
  running_.store(true, std::memory_order_release);
  consumer_ = std::thread([this] { consumer_loop(); });
}

void SinkService::stop() {
  if (stopped_) return;
  stopped_ = true;
  queue_.close();
  if (consumer_.joinable()) {
    consumer_.join();
  } else {
    // Never started: drain synchronously so accepted records are not lost.
    std::vector<StreamRecord> batch;
    while (queue_.drain_into(batch, config_.decode_batch) > 0) {
      process_batch(batch);
      batch.clear();
    }
  }
  running_.store(false, std::memory_order_release);
}

bool SinkService::submit(std::size_t producer, StreamRecord record) {
  record.enqueue_ns = now_ns();
  if (!queue_.push(producer, std::move(record))) return false;
  submitted_.fetch_add(1, std::memory_order_release);
  return true;
}

void SinkService::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_cv_.wait(lock, [&] {
    return processed_records_.load(std::memory_order_acquire) >=
           submitted_.load(std::memory_order_acquire);
  });
}

void SinkService::consumer_loop() {
  std::vector<StreamRecord> batch;
  batch.reserve(config_.decode_batch);
  while (true) {
    batch.clear();
    const std::size_t taken = queue_.drain_into(batch, config_.decode_batch);
    if (taken == 0) {
      if (!queue_.wait_nonempty()) break;  // closed and fully drained
      continue;
    }
    process_batch(batch);
  }
}

void SinkService::process_batch(std::vector<StreamRecord>& batch) {
  const SinkMetrics& metrics = SinkMetrics::get();
  const std::uint64_t batch_start = now_ns();
  std::uint64_t decoded = 0;
  std::uint64_t installed = 0;
  std::uint64_t reports = 0;
  {
    const std::lock_guard<std::mutex> lock(decoder_mutex_);
    for (StreamRecord& rec : batch) {
      if (rec.kind == StreamRecord::Kind::kModelInstall) {
        try {
          store_.install(tomo::ModelSet::deserialize(rec.model_bytes));
          installed_model_bytes_.push_back(std::move(rec.model_bytes));
          if (installed_model_bytes_.size() > kModelHistory) {
            installed_model_bytes_.erase(installed_model_bytes_.begin());
          }
          ++installed;
          metrics.models_installed.inc();
        } catch (const std::exception&) {
          metrics.models_rejected.inc();  // malformed install: skip, keep going
        }
        continue;
      }
      ++reports;
      metrics.reports_processed.inc();
      if (rec.enqueue_ns != 0) {
        metrics.ingest_latency.observe((now_ns() - rec.enqueue_ns) / 1000);
      }
      auto decoded_path = decoder_.decode(rec.report.packet);
      if (!decoded_path) {
        metrics.decode_failures.inc();
        continue;
      }
      ++decoded;
      if (rec.report.in_measure || config_.ingest_warmup) {
        estimator_.observe_path(*decoded_path);
      }
    }
  }
  metrics.mle_update.observe((now_ns() - batch_start) / 1000);
  metrics.queue_depth.set(static_cast<double>(queue_.depth()));

  reports_processed_.fetch_add(reports, std::memory_order_relaxed);
  reports_decoded_.fetch_add(decoded, std::memory_order_relaxed);
  models_installed_.fetch_add(installed, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(idle_mutex_);
    processed_records_.fetch_add(batch.size(), std::memory_order_release);
  }
  idle_cv_.notify_all();
}

std::optional<tomo::LinkEstimate> SinkService::estimate(dophy::net::LinkKey link) const {
  return estimator_.estimate(link);
}

std::vector<std::pair<dophy::net::LinkKey, tomo::LinkEstimate>> SinkService::all_estimates()
    const {
  return estimator_.all_estimates();
}

SinkServiceStats SinkService::stats() const {
  SinkServiceStats s;
  s.reports_processed = reports_processed_.load(std::memory_order_relaxed);
  s.reports_decoded = reports_decoded_.load(std::memory_order_relaxed);
  s.models_installed = models_installed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.queue = queue_.stats();
  const auto decoder = decoder_stats();
  s.decode_failures = decoder.decode_failures;
  return s;
}

tomo::DophyDecoderStats SinkService::decoder_stats() const {
  const std::lock_guard<std::mutex> lock(decoder_mutex_);
  return decoder_.stats();
}

std::string SinkService::snapshot_json() const {
  dophy::obs::JsonWriter w;
  w.begin_object();
  w.key("format").value("dophy-sink-service-snapshot-v1");
  w.key("reports_processed").value(reports_processed_.load(std::memory_order_relaxed));
  w.key("reports_decoded").value(reports_decoded_.load(std::memory_order_relaxed));
  w.key("models_installed").value(models_installed_.load(std::memory_order_relaxed));
  // Installed model history (oldest first) so a restored service can decode
  // every version the snapshotted one could.
  w.key("models").begin_array();
  {
    const std::lock_guard<std::mutex> lock(decoder_mutex_);
    for (const auto& bytes : installed_model_bytes_) {
      w.value(std::string_view(to_hex(bytes.data(), bytes.size())));
    }
  }
  w.end_array();
  w.end_object();
  // The estimator document is embedded as pre-rendered JSON; JsonWriter has
  // no raw-splice call, so splice it over the closing brace.
  std::string out = w.take();
  out.pop_back();  // trailing '}'
  out += ",\"estimator\":";
  out += estimator_.snapshot_json();
  out += '}';
  return out;
}

bool SinkService::restore_snapshot(std::string_view json) {
  if (running_.load(std::memory_order_acquire)) return false;
  const auto doc = dophy::obs::parse_json(json);
  if (!doc || !doc->is_object()) return false;
  const auto* format = doc->find("format");
  if (format == nullptr || !format->is_string() ||
      format->string != "dophy-sink-service-snapshot-v1") {
    return false;
  }
  const auto* estimator = doc->find("estimator");
  if (estimator == nullptr || !estimator->is_object()) return false;
  auto restored = ShardedLinkEstimator::restore(*estimator);
  if (!restored || restored->censor_threshold() != config_.censor_threshold) return false;
  const auto* models = doc->find("models");
  if (models != nullptr && models->is_array()) {
    std::vector<std::uint8_t> bytes;
    for (const auto& entry : models->array) {
      if (!entry.is_string() || !from_hex(entry.string, bytes)) return false;
      try {
        store_.install(tomo::ModelSet::deserialize(bytes));
      } catch (const std::exception&) {
        return false;
      }
      installed_model_bytes_.push_back(bytes);
      if (installed_model_bytes_.size() > kModelHistory) {
        installed_model_bytes_.erase(installed_model_bytes_.begin());
      }
    }
  }
  estimator_ = std::move(*restored);
  const auto* processed = doc->find("reports_processed");
  const auto* decoded = doc->find("reports_decoded");
  const auto* installed = doc->find("models_installed");
  if (processed != nullptr && processed->is_number()) {
    reports_processed_.store(static_cast<std::uint64_t>(processed->number),
                             std::memory_order_relaxed);
  }
  if (decoded != nullptr && decoded->is_number()) {
    reports_decoded_.store(static_cast<std::uint64_t>(decoded->number),
                           std::memory_order_relaxed);
  }
  if (installed != nullptr && installed->is_number()) {
    models_installed_.store(static_cast<std::uint64_t>(installed->number),
                            std::memory_order_relaxed);
  }
  return true;
}

}  // namespace dophy::sink
