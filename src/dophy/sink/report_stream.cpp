#include "dophy/sink/report_stream.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace dophy::sink {
namespace {

constexpr std::string_view kMagic = "dophy-report-stream v1";

[[nodiscard]] int hex_nibble(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(const std::uint8_t* data, std::size_t size) {
  static constexpr char kDigits[] = "0123456789abcdef";
  if (size == 0) return "-";
  std::string out;
  out.reserve(size * 2);
  for (std::size_t i = 0; i < size; ++i) {
    out += kDigits[data[i] >> 4];
    out += kDigits[data[i] & 0xF];
  }
  return out;
}

bool from_hex(std::string_view text, std::vector<std::uint8_t>& out) {
  out.clear();
  if (text == "-") return true;
  if (text.size() % 2 != 0) return false;
  out.reserve(text.size() / 2);
  for (std::size_t i = 0; i < text.size(); i += 2) {
    const int hi = hex_nibble(text[i]);
    const int lo = hex_nibble(text[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return true;
}

std::size_t ReportStream::report_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(records.begin(), records.end(), [](const StreamRecord& r) {
        return r.kind == StreamRecord::Kind::kReport;
      }));
}

std::string ReportStream::serialize() const {
  std::string out;
  out += kMagic;
  out += '\n';
  char header[96];
  std::snprintf(header, sizeof(header), "H %zu %u %u\n", node_count, censor_threshold,
                static_cast<unsigned>(max_hops));
  out += header;
  char buf[160];
  for (const StreamRecord& rec : records) {
    if (rec.kind == StreamRecord::Kind::kModelInstall) {
      out += "M ";
      out += to_hex(rec.model_bytes.data(), rec.model_bytes.size());
      out += '\n';
      continue;
    }
    const dophy::net::Packet& p = rec.report.packet;
    std::snprintf(buf, sizeof(buf), "R %u %u %u %lld %d %u %u %u %d %d ",
                  static_cast<unsigned>(p.origin), static_cast<unsigned>(p.seq),
                  static_cast<unsigned>(p.hop_count),
                  static_cast<long long>(rec.report.recv_time), rec.report.in_measure ? 1 : 0,
                  p.blob.logical_bits, static_cast<unsigned>(p.blob.model_version),
                  static_cast<unsigned>(p.blob.state_size), p.blob.truncated ? 1 : 0,
                  p.blob.dropped ? 1 : 0);
    out += buf;
    out += to_hex(p.blob.state.data(), p.blob.state_size);
    out += ' ';
    out += to_hex(p.blob.bytes.data(), p.blob.bytes.size());
    out += '\n';
  }
  return out;
}

std::optional<ReportStream> ReportStream::parse(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || line != kMagic) return std::nullopt;

  ReportStream stream;
  bool have_header = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "H") {
      unsigned k = 0, hops = 0;
      if (!(fields >> stream.node_count >> k >> hops)) return std::nullopt;
      stream.censor_threshold = k;
      stream.max_hops = static_cast<std::uint16_t>(hops);
      have_header = true;
    } else if (tag == "M") {
      std::string hex;
      if (!(fields >> hex)) return std::nullopt;
      StreamRecord rec;
      rec.kind = StreamRecord::Kind::kModelInstall;
      if (!from_hex(hex, rec.model_bytes)) return std::nullopt;
      stream.records.push_back(std::move(rec));
    } else if (tag == "R") {
      unsigned origin = 0, seq = 0, hop_count = 0, in_measure = 0, logical_bits = 0;
      unsigned model_version = 0, state_size = 0, truncated = 0, dropped = 0;
      long long recv = 0;
      std::string state_hex;
      std::string bytes_hex;
      if (!(fields >> origin >> seq >> hop_count >> recv >> in_measure >> logical_bits >>
            model_version >> state_size >> truncated >> dropped >> state_hex >> bytes_hex)) {
        return std::nullopt;
      }
      StreamRecord rec;
      rec.kind = StreamRecord::Kind::kReport;
      rec.report.recv_time = recv;
      rec.report.in_measure = in_measure != 0;
      dophy::net::Packet& p = rec.report.packet;
      p.origin = static_cast<dophy::net::NodeId>(origin);
      p.seq = static_cast<std::uint16_t>(seq);
      p.hop_count = static_cast<std::uint16_t>(hop_count);
      p.blob.logical_bits = logical_bits;
      p.blob.model_version = static_cast<std::uint8_t>(model_version);
      p.blob.state_size = static_cast<std::uint8_t>(state_size);
      p.blob.truncated = truncated != 0;
      p.blob.dropped = dropped != 0;
      std::vector<std::uint8_t> state_bytes;
      if (!from_hex(state_hex, state_bytes) || state_bytes.size() != state_size ||
          state_bytes.size() > p.blob.state.size()) {
        return std::nullopt;
      }
      std::copy(state_bytes.begin(), state_bytes.end(), p.blob.state.begin());
      if (!from_hex(bytes_hex, p.blob.bytes)) return std::nullopt;
      stream.records.push_back(std::move(rec));
    } else {
      return std::nullopt;
    }
  }
  if (!have_header) return std::nullopt;
  return stream;
}

bool ReportStream::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const std::string text = serialize();
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  return static_cast<bool>(out);
}

std::optional<ReportStream> ReportStream::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

}  // namespace dophy::sink
