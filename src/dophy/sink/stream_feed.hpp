#pragma once

// Canonical stream feeder: the one lane-assignment rule shared by replay,
// crash recovery, and the differential tests.
//
// Reports fan out round-robin over the producer lanes; model installs always
// ride lane 0 and are bracketed with wait_idle() on both sides (per-lane
// FIFO alone would let a report encoded under a just-published model version
// drain ahead of its install on another lane).  Because the assignment is a
// pure function of record index and producer count, a per-lane processed
// cursor (SinkService::lane_processed) identifies exactly which records a
// snapshot already folded — recovery re-runs the same assignment and skips
// that prefix per lane.

#include <chrono>
#include <cstdint>
#include <vector>

#include "dophy/sink/report_stream.hpp"
#include "dophy/sink/service.hpp"

namespace dophy::sink {

/// Tuning for one feed_stream pass.
struct StreamFeedOptions {
  /// Target submit rate in reports/s across all lanes; 0 = unpaced.
  double rate = 0.0;
  /// Submit kModelInstall records (false on repeat passes: the versions are
  /// already installed).
  bool include_installs = true;
  /// Per-lane skip counts (size == producers): the first lane_skip[i]
  /// records *assigned* to lane i are dropped instead of submitted.  This is
  /// the recovery tail-replay cursor — pass the snapshot's lane_processed
  /// array to resume exactly after the folded prefix.  nullptr = feed all.
  const std::vector<std::uint64_t>* lane_skip = nullptr;
};

/// Pushes `stream` through `service` once under the canonical assignment:
/// each lane pushed by its own thread (paced to rate/producers against
/// `start`, with `lane_sent` carrying pacing state across passes), installs
/// double-bracketed with wait_idle().  Returns the number of records
/// actually submitted, installs included (skipped records are not counted;
/// records shed by a kDropNewest queue are counted — the queue stats
/// account the sheds).
std::uint64_t feed_stream(SinkService& service, const ReportStream& stream,
                          std::size_t producers, std::vector<std::uint64_t>& lane_sent,
                          std::chrono::steady_clock::time_point start,
                          const StreamFeedOptions& options = {});

}  // namespace dophy::sink
