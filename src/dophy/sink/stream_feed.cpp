#include "dophy/sink/stream_feed.hpp"

#include <thread>

namespace dophy::sink {

std::uint64_t feed_stream(SinkService& service, const ReportStream& stream,
                          std::size_t producers, std::vector<std::uint64_t>& lane_sent,
                          std::chrono::steady_clock::time_point start,
                          const StreamFeedOptions& options) {
  std::uint64_t submitted = 0;
  std::vector<std::vector<const StreamRecord*>> segment(producers);
  // Records *assigned* per lane so far (installs count toward lane 0): the
  // index a lane_skip cursor is compared against.
  std::vector<std::uint64_t> lane_assigned(producers, 0);
  std::size_t next_lane = 0;

  auto flush_segment = [&] {
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (std::size_t lane = 0; lane < producers; ++lane) {
      if (segment[lane].empty()) continue;
      threads.emplace_back([&, lane] {
        const double lane_rate =
            options.rate > 0.0 ? options.rate / static_cast<double>(producers) : 0.0;
        for (const StreamRecord* rec : segment[lane]) {
          if (lane_rate > 0.0) {
            const auto due =
                start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                static_cast<double>(lane_sent[lane]) / lane_rate));
            std::this_thread::sleep_until(due);
          }
          (void)service.submit(lane, *rec);  // drop policy may shed; accounted
          ++lane_sent[lane];
        }
      });
    }
    for (auto& t : threads) t.join();
    for (auto& lane : segment) {
      submitted += lane.size();
      lane.clear();
    }
  };

  auto skipped = [&](std::size_t lane) {
    const std::uint64_t index = lane_assigned[lane]++;
    return options.lane_skip != nullptr && lane < options.lane_skip->size() &&
           index < (*options.lane_skip)[lane];
  };

  for (const StreamRecord& rec : stream.records) {
    if (rec.kind == StreamRecord::Kind::kModelInstall) {
      if (!options.include_installs) continue;  // repeat passes: versions already live
      if (skipped(0)) continue;  // already folded pre-snapshot (model history restored)
      flush_segment();
      service.wait_idle();  // keep install ordered after every prior report
      (void)service.submit(0, rec);  // kBlock in practice; sheds tracked by queue stats
      ++submitted;
      // ...and processed before any later report: per-lane FIFO alone would
      // let another lane's report (encoded with the just-published version)
      // drain ahead of the install and fail decode.
      service.wait_idle();
      continue;
    }
    const std::size_t lane = next_lane;
    next_lane = (next_lane + 1) % producers;
    if (skipped(lane)) continue;  // pre-snapshot prefix of this lane's FIFO
    segment[lane].push_back(&rec);
  }
  flush_segment();
  return submitted;
}

}  // namespace dophy::sink
