#pragma once

// Long-running sink ingestion service: the decode + estimate path extracted
// from the batch pipeline into a standing server loop.
//
// Producers (radio frontends in a deployment; replay threads here) submit
// StreamRecords into the bounded MPSC IngestQueue; one consumer thread
// drains them in batches, applies model installs in arrival order, decodes
// reports through the shared tomo::DophyDecoder, and folds decoded hops into
// the ShardedLinkEstimator.  Because model installs ride the same queue as
// reports, the consumer is the only thread touching the ModelStore — no
// locking on the decode path, and a replayed stream reproduces the original
// install/report interleaving exactly.
//
// Instrumented via dophy::obs: sink.ingest.latency_us (submit -> processed),
// sink.queue.depth (gauge, sampled per drain), sink.mle.update_us (per-batch
// decode+update time), plus processed/dropped/decode-failure counters.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "dophy/sink/incremental_mle.hpp"
#include "dophy/sink/ingest_queue.hpp"
#include "dophy/sink/report_stream.hpp"
#include "dophy/tomo/dophy_decoder.hpp"
#include "dophy/tomo/measurement.hpp"

namespace dophy::sink {

struct SinkServiceConfig {
  std::size_t node_count = 0;          ///< id alphabet of the recording run
  std::uint32_t censor_threshold = 4;  ///< aggregation K (>= 2)
  std::uint16_t max_hops = 64;         ///< decoder hop bound
  std::size_t producers = 1;
  std::size_t queue_capacity = 4096;  ///< per producer, rounded to a power of two
  OverflowPolicy overflow_policy = OverflowPolicy::kBlock;
  std::size_t decode_batch = 64;  ///< max records drained per consumer cycle
  double decay = 1.0;             ///< estimator epoch decay, (0, 1]
  double prior_a = 0.0;           ///< Beta prior on per-attempt success
  double prior_b = 0.0;
  std::size_t shard_count = 16;
  /// Count warm-up reports (in_measure == false) into the estimator too.
  /// The batch pipeline only scores measurement-window paths, so the
  /// differential tests keep this false.
  bool ingest_warmup = false;
};

struct SinkServiceStats {
  std::uint64_t reports_processed = 0;  ///< reports taken off the queue
  std::uint64_t reports_decoded = 0;    ///< successful decodes
  std::uint64_t decode_failures = 0;
  std::uint64_t models_installed = 0;
  std::uint64_t batches = 0;  ///< consumer drain cycles with work
  IngestQueueStats queue;
};

class SinkService {
 public:
  explicit SinkService(SinkServiceConfig config);
  ~SinkService();

  SinkService(const SinkService&) = delete;
  SinkService& operator=(const SinkService&) = delete;

  /// Spawns the consumer thread.  Idempotent until stop().
  void start();

  /// Closes the queue, drains everything already accepted, joins the
  /// consumer.  After stop() the estimator holds the final state and
  /// submits fail.  Idempotent.
  void stop();

  /// Producer-side submit on lane `producer` (< config.producers).  Returns
  /// false when the record was shed (kDropNewest overflow) or the service is
  /// stopped.
  bool submit(std::size_t producer, StreamRecord record);

  /// Blocks until every record accepted so far has been processed.  Requires
  /// the service to be running (or stopped, in which case it returns
  /// immediately: stop() already drained).
  void wait_idle();

  /// Estimator queries (thread-safe; consistent at batch granularity).
  [[nodiscard]] std::optional<tomo::LinkEstimate> estimate(dophy::net::LinkKey link) const;
  [[nodiscard]] std::vector<std::pair<dophy::net::LinkKey, tomo::LinkEstimate>> all_estimates()
      const;
  [[nodiscard]] const ShardedLinkEstimator& estimator() const noexcept { return estimator_; }

  [[nodiscard]] SinkServiceStats stats() const;
  [[nodiscard]] tomo::DophyDecoderStats decoder_stats() const;
  [[nodiscard]] const SinkServiceConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t queue_depth() const noexcept { return queue_.depth(); }

  /// Point-in-time service snapshot (estimator state + processed counters).
  /// Call while idle (wait_idle() or stopped) for a batch-consistent view.
  [[nodiscard]] std::string snapshot_json() const;

  /// Replaces the estimator state from a snapshot.  Only valid while the
  /// consumer is not running (before start() or after stop()); returns false
  /// on malformed input or config mismatch (K).
  [[nodiscard]] bool restore_snapshot(std::string_view json);

 private:
  void consumer_loop();
  void process_batch(std::vector<StreamRecord>& batch);

  /// ModelStore history depth; also bounds the serialized model sets a
  /// snapshot carries so a restored service can decode the same versions.
  static constexpr std::size_t kModelHistory = 8;

  SinkServiceConfig config_;
  tomo::SymbolMapper mapper_;
  tomo::ModelStore store_;
  tomo::DophyDecoder decoder_;
  /// Wire forms of the installed sets, oldest first, capped at
  /// kModelHistory (consumer-thread only; read under decoder_mutex_).
  std::vector<std::vector<std::uint8_t>> installed_model_bytes_;
  ShardedLinkEstimator estimator_;
  IngestQueue queue_;

  std::thread consumer_;
  std::atomic<bool> running_{false};
  bool stopped_ = false;  ///< start/stop lifecycle guard (API-thread only)

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> processed_records_{0};
  mutable std::mutex idle_mutex_;
  std::condition_variable idle_cv_;

  // Consumer-private tallies, atomically mirrored for stats().
  std::atomic<std::uint64_t> reports_processed_{0};
  std::atomic<std::uint64_t> reports_decoded_{0};
  std::atomic<std::uint64_t> models_installed_{0};
  std::atomic<std::uint64_t> batches_{0};
  mutable std::mutex decoder_mutex_;  ///< guards decoder stats reads vs decode
};

}  // namespace dophy::sink
