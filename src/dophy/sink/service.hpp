#pragma once

// Long-running sink ingestion service: the decode + estimate path extracted
// from the batch pipeline into a standing server loop, scaled across a
// consumer group.
//
// Producers (radio frontends in a deployment; replay threads or the live
// simulator tap here) submit StreamRecords into the bounded IngestQueue; N
// consumer threads drain them in batches with static lane affinity (lane i
// belongs to consumer i % N).  Each consumer owns a private DophyDecoder and
// a private ShardedLinkEstimator, so the decode + fold hot path takes no
// cross-consumer locks: every estimator shard has exactly one writer, and
// queries merge the per-consumer partitions through the exact additive
// GeometricSuffStats::merge.
//
// Model installs are the one cross-consumer synchronization point: the
// ModelStore is shared, and the consumer that dequeues an install takes the
// store barrier (a shared_mutex held shared for every decode segment,
// exclusive for the install) — generalizing the PR 9 single-consumer
// invariant that the consumer is the only thread touching the store mid-run.
// Feeders still bracket installs with wait_idle() so no report encoded under
// a new model version can race ahead of its install on another lane.
//
// Durability: snapshot_json() emits a v2 document carrying the merged
// estimator (%.17g exact), the installed-model history, and a per-lane
// stream cursor (records processed per ingest lane).  Because every lane is
// FIFO, the cursor identifies exactly which prefix of each lane's
// subsequence is folded into the snapshot — the foundation of the
// SnapshotWriter + `dophy_sink recover` crash-recovery path.
//
// Instrumented via dophy::obs: sink.ingest.latency_us (submit -> processed),
// sink.queue.depth (gauge, sampled per drain), sink.mle.update_us (per-batch
// decode+update time), plus processed/dropped/decode-failure counters.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "dophy/sink/incremental_mle.hpp"
#include "dophy/sink/ingest_queue.hpp"
#include "dophy/sink/report_stream.hpp"
#include "dophy/tomo/dophy_decoder.hpp"
#include "dophy/tomo/measurement.hpp"

namespace dophy::sink {

/// Construction-time tuning for a SinkService.
struct SinkServiceConfig {
  std::size_t node_count = 0;          ///< id alphabet of the recording run
  std::uint32_t censor_threshold = 4;  ///< aggregation K (>= 2)
  std::uint16_t max_hops = 64;         ///< decoder hop bound
  std::size_t producers = 1;           ///< ingest lanes (one ring each)
  std::size_t queue_capacity = 4096;  ///< per producer, rounded to a power of two
  OverflowPolicy overflow_policy = OverflowPolicy::kBlock;  ///< full-ring behavior
  std::size_t decode_batch = 64;  ///< max records drained per consumer cycle
  /// Consumer threads; clamped to the producer count (a consumer with no
  /// owned lane would have nothing to drain).
  std::size_t consumers = 1;
  double decay = 1.0;             ///< estimator epoch decay, (0, 1]
  double prior_a = 0.0;           ///< Beta prior on per-attempt success (a)
  double prior_b = 0.0;           ///< Beta prior on per-attempt success (b)
  std::size_t shard_count = 16;   ///< estimator shards per consumer
  /// Count warm-up reports (in_measure == false) into the estimator too.
  /// The batch pipeline only scores measurement-window paths, so the
  /// differential tests keep this false.
  bool ingest_warmup = false;
};

/// Aggregate service counters (consumer tallies + queue stats).
struct SinkServiceStats {
  std::uint64_t reports_processed = 0;  ///< reports taken off the queue
  std::uint64_t reports_decoded = 0;    ///< successful decodes
  std::uint64_t decode_failures = 0;    ///< reports the decoder rejected
  std::uint64_t models_installed = 0;   ///< model-set installs applied
  std::uint64_t batches = 0;  ///< consumer drain cycles with work
  IngestQueueStats queue;     ///< producer-side queue counters
};

/// The standing sink: a bounded ingest queue drained by a shard-affine
/// consumer group whose merged incremental MLE matches the batch pipeline
/// bit-for-bit (see the file comment and docs/SINK.md).
class SinkService {
 public:
  /// Builds the queue, the consumer group state, and the shared ModelStore
  /// (bootstrap model installed).  Consumers start on start().
  explicit SinkService(SinkServiceConfig config);
  /// Stops the service if still running (best effort; prefer stop()).
  ~SinkService();

  SinkService(const SinkService&) = delete;             ///< not copyable
  SinkService& operator=(const SinkService&) = delete;  ///< not copyable

  /// Spawns the consumer threads.  Idempotent until stop().
  void start();

  /// Closes the queue, drains everything already accepted, joins the
  /// consumers.  After stop() the estimators hold the final state and
  /// submits fail.  Idempotent.
  void stop();

  /// Producer-side submit on lane `producer` (< config.producers).  Returns
  /// false when the record was shed (kDropNewest overflow) or the service is
  /// stopped.
  bool submit(std::size_t producer, StreamRecord record);

  /// Blocks until every record accepted so far has been processed.  Requires
  /// the service to be running (or stopped, in which case it returns
  /// immediately: stop() already drained).
  void wait_idle();

  /// One link's estimate.  Thread-safe; consistent at batch granularity
  /// (call wait_idle() first for a quiescent view).  Merges the per-consumer
  /// partitions through the exact GeometricSuffStats::merge.
  [[nodiscard]] std::optional<tomo::LinkEstimate> estimate(dophy::net::LinkKey link) const;
  /// Every observed link's estimate, sorted by link key.  Same consistency
  /// and merge semantics as estimate().
  [[nodiscard]] std::vector<std::pair<dophy::net::LinkKey, tomo::LinkEstimate>> all_estimates()
      const;

  /// Merged raw statistics for one link; nullopt when never observed.
  [[nodiscard]] std::optional<tomo::GeometricSuffStats> link_stats(
      dophy::net::LinkKey link) const;

  /// Distinct links observed across all consumer partitions.
  [[nodiscard]] std::size_t link_count() const;

  /// Full merged estimator (a fresh fold of every consumer partition).
  [[nodiscard]] ShardedLinkEstimator merged_estimator() const;

  /// Applies the configured decay to every consumer partition (tracking-epoch
  /// boundary).  Takes the store barrier, so it is safe while running; call
  /// wait_idle() first to decay a batch-consistent state.
  void end_epoch();

  /// Aggregate counters (consumer tallies + queue stats).
  [[nodiscard]] SinkServiceStats stats() const;
  /// Decoder counters summed across consumers (takes the store barrier).
  [[nodiscard]] tomo::DophyDecoderStats decoder_stats() const;
  /// The effective configuration (after consumer clamping).
  [[nodiscard]] const SinkServiceConfig& config() const noexcept { return config_; }
  /// Approximate records currently queued across all lanes.
  [[nodiscard]] std::size_t queue_depth() const noexcept { return queue_.depth(); }

  /// Records processed so far on ingest lane `lane` — the durable stream
  /// cursor a recovery replays the tail against.
  [[nodiscard]] std::uint64_t lane_processed(std::size_t lane) const;

  /// Durable service snapshot: merged estimator state, installed-model
  /// history, counters, and the per-lane stream cursor.  Takes the store
  /// barrier exclusively, so the document is batch-consistent even while the
  /// consumers are running (in-flight batches finish first).
  [[nodiscard]] std::string snapshot_json() const;

  /// Replaces the estimator state (folded into consumer 0's partition) from
  /// a snapshot.  Only valid while the consumers are not running (before
  /// start() or after stop()); returns false on malformed input or config
  /// mismatch (K, or a per-lane cursor whose lane count differs from
  /// config.producers).
  [[nodiscard]] bool restore_snapshot(std::string_view json);

 private:
  /// Per-consumer decode + fold state.  Each consumer owns its decoder and
  /// estimator partition outright; nothing here is shared across threads.
  struct Consumer {
    Consumer(const tomo::ModelStore& store, const tomo::SymbolMapper& mapper,
             const SinkServiceConfig& config)
        : decoder(store, mapper, config.max_hops),
          estimator(config.censor_threshold, config.decay, config.shard_count) {}
    tomo::DophyDecoder decoder;
    ShardedLinkEstimator estimator;
    std::thread thread;
  };

  void consumer_loop(std::size_t consumer);
  void process_batch(std::size_t consumer, std::vector<StreamRecord>& batch);

  /// ModelStore history depth; also bounds the serialized model sets a
  /// snapshot carries so a restored service can decode the same versions.
  static constexpr std::size_t kModelHistory = 8;

  SinkServiceConfig config_;
  tomo::SymbolMapper mapper_;
  /// Shared across consumers; mutated only under an exclusive store_barrier_
  /// hold (model installs, restore).  Decode segments hold it shared.
  tomo::ModelStore store_;
  /// Wire forms of the installed sets, oldest first, capped at
  /// kModelHistory (guarded by store_barrier_).
  std::vector<std::vector<std::uint8_t>> installed_model_bytes_;
  /// The install barrier: consumers decode under a shared hold; the consumer
  /// applying an install (and any durable snapshot / epoch / stats read)
  /// takes it exclusively, which quiesces every decode + fold in flight.
  mutable std::shared_mutex store_barrier_;

  std::vector<std::unique_ptr<Consumer>> consumers_;
  IngestQueue queue_;

  std::atomic<bool> running_{false};
  bool stopped_ = false;  ///< start/stop lifecycle guard (API-thread only)

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> processed_records_{0};
  mutable std::mutex idle_mutex_;
  std::condition_variable idle_cv_;

  /// Per-lane processed counts (single writer each: the lane's consumer,
  /// bumped inside the store-barrier hold so an exclusive snapshot sees a
  /// cursor consistent with the estimator contents).
  std::vector<std::atomic<std::uint64_t>> lane_processed_;

  // Consumer tallies, bumped inside the store-barrier hold for snapshot
  // consistency, atomically mirrored for stats().
  std::atomic<std::uint64_t> reports_processed_{0};
  std::atomic<std::uint64_t> reports_decoded_{0};
  std::atomic<std::uint64_t> models_installed_{0};
  std::atomic<std::uint64_t> batches_{0};
};

}  // namespace dophy::sink
