#pragma once

// Backpressure-aware bounded multi-producer queue feeding the sink's
// consumer group.
//
// Built as one bounded SPSC ring per producer (the pdes SpscMailbox idiom:
// power-of-two ring, acquire/release head/tail on separate cache lines, no
// hot-path locks) plus a lane-affine consumer drain: with C consumers, lane i
// is owned by consumer i % C, so every ring still has exactly one producer
// and exactly one consumer and the plain SPSC protocol carries over
// unchanged.  A full ring means the producer is outrunning its consumer, and
// the overflow policy decides whether to block (lossless backpressure) or
// shed the newest report (bounded-latency ingest, losses accounted).
//
// Ordering contract: per-lane FIFO, always.  Cross-lane order is whatever
// the drains interleave — the estimator's sufficient statistics are
// order-invariant (see geometric_mle.hpp), so this is enough for exactness.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "dophy/sink/report_stream.hpp"

namespace dophy::sink {

/// What a producer does when its ring is full.
enum class OverflowPolicy : std::uint8_t {
  kBlock,       ///< wait for the consumer (lossless, applies backpressure)
  kDropNewest,  ///< reject the incoming item (lossy, counted per producer)
};

/// Aggregate producer-side counters summed across lanes.
struct IngestQueueStats {
  std::uint64_t accepted = 0;     ///< items that entered a ring
  std::uint64_t dropped = 0;      ///< items shed under kDropNewest
  std::uint64_t block_waits = 0;  ///< pushes that had to wait under kBlock
};

/// Bounded multi-producer ingest queue: one SPSC ring per producer lane,
/// drained by a lane-affine consumer group (see the file comment).
class IngestQueue {
 public:
  /// `capacity` is the per-producer ring size, rounded up to a power of two
  /// (minimum 2).  `producers` fixes the producer lane count for the queue's
  /// lifetime; lane i must only ever be pushed from one thread at a time.
  /// `consumers` partitions the lanes into affinity groups: lane i belongs
  /// to consumer i % consumers, and drain_into / wait_nonempty for consumer
  /// c must only ever be called from one thread at a time.
  IngestQueue(std::size_t capacity, std::size_t producers,
              OverflowPolicy policy = OverflowPolicy::kBlock,
              std::size_t consumers = 1);

  IngestQueue(const IngestQueue&) = delete;             ///< not copyable
  IngestQueue& operator=(const IngestQueue&) = delete;  ///< not copyable

  /// Producer side.  Returns false only when the item was shed (kDropNewest
  /// on a full ring) or the queue is closed.  Under kBlock a full ring waits
  /// for the lane's consumer; close() releases any waiter with a false
  /// return.
  bool push(std::size_t producer, StreamRecord item);

  /// Consumer side: appends up to `max_items` pending records from consumer
  /// `consumer`'s owned lanes to `out` in round-robin lane order (per-lane
  /// FIFO preserved).  Returns the number taken; 0 means every owned ring
  /// was empty at the scan.
  std::size_t drain_into(std::vector<StreamRecord>& out, std::size_t max_items,
                         std::size_t consumer = 0);

  /// Consumer side: blocks until at least one item is pending on one of
  /// consumer `consumer`'s lanes or the queue is closed.  Returns false when
  /// closed *and* the owned lanes are drained empty (shutdown).
  bool wait_nonempty(std::size_t consumer = 0);

  /// Marks the queue closed: subsequent pushes fail fast, blocked producers
  /// wake with a false return, and wait_nonempty() returns false once the
  /// rings are empty.  Already-queued items remain drainable (shutdown must
  /// not lose accepted reports).
  void close();

  /// Whether close() has been called.
  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  /// Approximate total items currently queued across all lanes.
  [[nodiscard]] std::size_t depth() const noexcept;

  /// Approximate items queued on consumer `consumer`'s owned lanes.
  [[nodiscard]] std::size_t depth_for(std::size_t consumer) const noexcept;

  /// Number of producer lanes.
  [[nodiscard]] std::size_t producer_count() const noexcept { return lanes_.size(); }
  /// Number of consumer affinity groups.
  [[nodiscard]] std::size_t consumer_count() const noexcept { return owned_.size(); }
  /// Effective per-lane ring capacity (power of two).
  [[nodiscard]] std::size_t capacity_per_producer() const noexcept { return capacity_; }
  /// The configured overflow policy.
  [[nodiscard]] OverflowPolicy policy() const noexcept { return policy_; }

  /// Lane indices owned by consumer `consumer` (i.e. {i : i % consumers == c}).
  [[nodiscard]] const std::vector<std::size_t>& owned_lanes(std::size_t consumer) const {
    return owned_.at(consumer);
  }

  /// Totals across lanes (each lane counter has a single writer, so the sums
  /// are exact once the producers are quiescent).
  [[nodiscard]] IngestQueueStats stats() const noexcept;

 private:
  struct Lane {
    explicit Lane(std::size_t capacity) : slots(capacity), mask(capacity - 1) {}
    std::vector<StreamRecord> slots;
    std::size_t mask;
    alignas(64) std::atomic<std::size_t> head{0};  ///< consumer cursor
    alignas(64) std::atomic<std::size_t> tail{0};  ///< producer cursor
    alignas(64) std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> block_waits{0};
  };

  /// Per-consumer drain cursor, padded so neighbouring consumers don't
  /// false-share (each cursor has a single owning thread).
  struct Cursor {
    alignas(64) std::size_t next = 0;  ///< index into the owned-lane list
  };

  std::size_t capacity_;
  OverflowPolicy policy_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::vector<std::size_t>> owned_;  ///< consumer -> owned lane ids
  std::vector<Cursor> cursors_;                  ///< consumer-private round-robin cursors
  std::atomic<bool> closed_{false};

  // Sleep/wake edges only; the ring hot path touches at most the two
  // counters.  Producers pair a seq_cst fence after publishing tail with a
  // seq_cst fence after a consumer raises consumers_waiting_ (Dekker-style),
  // so a push can skip the lock+notify whenever every consumer is provably
  // awake.
  std::mutex wait_mutex_;
  std::condition_variable space_cv_;  ///< consumers -> blocked producers
  std::condition_variable items_cv_;  ///< producers -> sleeping consumers
  std::atomic<std::size_t> consumers_waiting_{0};
  std::atomic<std::size_t> producers_waiting_{0};
};

}  // namespace dophy::sink
