#pragma once

// Backpressure-aware bounded MPSC queue feeding the sink's consumer thread.
//
// Built as one bounded SPSC ring per producer (the pdes SpscMailbox idiom:
// power-of-two ring, acquire/release head/tail on separate cache lines, no
// hot-path locks) plus a round-robin consumer drain.  Unlike the mailbox, the
// consumer runs concurrently with the producers — which the plain SPSC
// protocol already supports — so there is no spill vector: a full ring means
// the producer is outrunning the sink, and the overflow policy decides
// whether to block (lossless backpressure) or shed the newest report
// (bounded-latency ingest, losses accounted).
//
// Ordering contract: per-producer FIFO, always.  Cross-producer order is
// whatever the drain interleaves — the estimator's sufficient statistics are
// order-invariant (see geometric_mle.hpp), so this is enough for exactness.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "dophy/sink/report_stream.hpp"

namespace dophy::sink {

/// What a producer does when its ring is full.
enum class OverflowPolicy : std::uint8_t {
  kBlock,       ///< wait for the consumer (lossless, applies backpressure)
  kDropNewest,  ///< reject the incoming item (lossy, counted per producer)
};

struct IngestQueueStats {
  std::uint64_t accepted = 0;     ///< items that entered a ring
  std::uint64_t dropped = 0;      ///< items shed under kDropNewest
  std::uint64_t block_waits = 0;  ///< pushes that had to wait under kBlock
};

class IngestQueue {
 public:
  /// `capacity` is the per-producer ring size, rounded up to a power of two
  /// (minimum 2).  `producers` fixes the producer lane count for the queue's
  /// lifetime; lane i must only ever be pushed from one thread at a time.
  IngestQueue(std::size_t capacity, std::size_t producers,
              OverflowPolicy policy = OverflowPolicy::kBlock);

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  /// Producer side.  Returns false only when the item was shed (kDropNewest
  /// on a full ring) or the queue is closed.  Under kBlock a full ring waits
  /// for the consumer; close() releases any waiter with a false return.
  bool push(std::size_t producer, StreamRecord item);

  /// Consumer side: appends up to `max_items` pending records to `out` in
  /// round-robin lane order (per-lane FIFO preserved).  Returns the number
  /// taken; 0 means every ring was empty at the scan.
  std::size_t drain_into(std::vector<StreamRecord>& out, std::size_t max_items);

  /// Consumer side: blocks until at least one item is pending or the queue
  /// is closed.  Returns false when closed *and* drained empty (shutdown).
  bool wait_nonempty();

  /// Marks the queue closed: subsequent pushes fail fast, blocked producers
  /// wake with a false return, and wait_nonempty() returns false once the
  /// rings are empty.  Already-queued items remain drainable (shutdown must
  /// not lose accepted reports).
  void close();

  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  /// Approximate total items currently queued across all lanes.
  [[nodiscard]] std::size_t depth() const noexcept;

  [[nodiscard]] std::size_t producer_count() const noexcept { return lanes_.size(); }
  [[nodiscard]] std::size_t capacity_per_producer() const noexcept { return capacity_; }
  [[nodiscard]] OverflowPolicy policy() const noexcept { return policy_; }

  /// Totals across lanes (each lane counter has a single writer, so the sums
  /// are exact once the producers are quiescent).
  [[nodiscard]] IngestQueueStats stats() const noexcept;

 private:
  struct Lane {
    explicit Lane(std::size_t capacity) : slots(capacity), mask(capacity - 1) {}
    std::vector<StreamRecord> slots;
    std::size_t mask;
    alignas(64) std::atomic<std::size_t> head{0};  ///< consumer cursor
    alignas(64) std::atomic<std::size_t> tail{0};  ///< producer cursor
    alignas(64) std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> block_waits{0};
  };

  std::size_t capacity_;
  OverflowPolicy policy_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::atomic<bool> closed_{false};
  std::size_t next_lane_ = 0;  ///< consumer-private round-robin cursor

  // Sleep/wake edges only; the ring hot path touches at most the two flags.
  // Producers pair a seq_cst fence after publishing tail with a seq_cst
  // fence after the consumer raises consumer_waiting_ (Dekker-style), so a
  // push can skip the lock+notify whenever the consumer is provably awake.
  std::mutex wait_mutex_;
  std::condition_variable space_cv_;  ///< consumer -> blocked producers
  std::condition_variable items_cv_;  ///< producers -> sleeping consumer
  std::atomic<bool> consumer_waiting_{false};
  std::atomic<std::size_t> producers_waiting_{0};
};

}  // namespace dophy::sink
