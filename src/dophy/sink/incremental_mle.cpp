#include "dophy/sink/incremental_mle.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "dophy/obs/json.hpp"

namespace dophy::sink {

using dophy::net::LinkKey;
using dophy::net::LinkKeyHash;

namespace {

/// %.17g round-trips every finite double exactly through strtod; JSON-quoted
/// so the %.9g number formatter in obs::JsonWriter never touches it.
void exact_double(dophy::obs::JsonWriter& w, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  w.value(std::string_view(buf));
}

[[nodiscard]] bool parse_exact_double(const dophy::obs::JsonValue* v, double& out) {
  if (v == nullptr || !v->is_string()) return false;
  const char* begin = v->string.c_str();
  char* end = nullptr;
  out = std::strtod(begin, &end);
  return end != begin && *end == '\0';
}

}  // namespace

ShardedLinkEstimator::ShardedLinkEstimator(std::uint32_t censor_threshold, double decay,
                                           std::size_t shard_count)
    : k_(censor_threshold), decay_(decay) {
  if (censor_threshold < 2) {
    throw std::invalid_argument("ShardedLinkEstimator: K must be >= 2");
  }
  if (decay <= 0.0 || decay > 1.0) {
    throw std::invalid_argument("ShardedLinkEstimator: decay must be in (0, 1]");
  }
  const std::size_t shards = std::bit_ceil(shard_count < 1 ? std::size_t{1} : shard_count);
  shard_mask_ = shards - 1;
  shards_ = std::vector<Shard>(shards);
}

ShardedLinkEstimator::Shard& ShardedLinkEstimator::shard_for(LinkKey link) const {
  return shards_[LinkKeyHash{}(link)&shard_mask_];
}

void ShardedLinkEstimator::set_beta_prior(double a, double b) {
  if (a < 0.0 || b < 0.0) {
    throw std::invalid_argument("ShardedLinkEstimator::set_beta_prior: negative prior");
  }
  prior_a_ = a;
  prior_b_ = b;
}

void ShardedLinkEstimator::observe(LinkKey link, const tomo::HopObservation& obs) {
  Shard& shard = shard_for(link);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.links[link].observe(obs);
}

void ShardedLinkEstimator::observe_path(const tomo::DecodedPath& path) {
  for (const tomo::DecodedHop& hop : path.hops) {
    observe(LinkKey{hop.sender, hop.receiver}, hop.observation);
  }
}

void ShardedLinkEstimator::end_epoch() {
  if (decay_ >= 1.0) return;
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto& [key, stats] : shard.links) stats.decay(decay_);
  }
}

void ShardedLinkEstimator::merge_from(const ShardedLinkEstimator& other) {
  for (const Shard& src : other.shards_) {
    const std::lock_guard<std::mutex> src_lock(src.mutex);
    for (const auto& [key, stats] : src.links) {
      Shard& dst = shard_for(key);
      const std::lock_guard<std::mutex> dst_lock(dst.mutex);
      dst.links[key].merge(stats);
    }
  }
}

std::optional<tomo::LinkEstimate> ShardedLinkEstimator::estimate(LinkKey link) const {
  const auto stat = stats(link);
  if (!stat || !stat->has_support()) return std::nullopt;
  return tomo::estimate_censored_geometric(*stat, k_, prior_a_, prior_b_);
}

std::vector<std::pair<LinkKey, tomo::LinkEstimate>> ShardedLinkEstimator::all_estimates() const {
  std::vector<std::pair<LinkKey, tomo::LinkEstimate>> out;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, stats] : shard.links) {
      if (!stats.has_support()) continue;
      out.emplace_back(key, tomo::estimate_censored_geometric(stats, k_, prior_a_, prior_b_));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::optional<tomo::GeometricSuffStats> ShardedLinkEstimator::stats(LinkKey link) const {
  const Shard& shard = shard_for(link);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.links.find(link);
  if (it == shard.links.end()) return std::nullopt;
  return it->second;
}

std::size_t ShardedLinkEstimator::link_count() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.links.size();
  }
  return total;
}

void ShardedLinkEstimator::clear() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.links.clear();
  }
}

std::string ShardedLinkEstimator::snapshot_json() const {
  // Links are emitted in sorted key order so equal states serialize to equal
  // documents (snapshot files are diffable artifacts).
  std::vector<std::pair<LinkKey, tomo::GeometricSuffStats>> links;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, stats] : shard.links) links.emplace_back(key, stats);
  }
  std::sort(links.begin(), links.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  dophy::obs::JsonWriter w;
  w.begin_object();
  w.key("format").value("dophy-sink-snapshot-v1");
  w.key("k").value(k_);
  w.key("decay");
  exact_double(w, decay_);
  w.key("prior_a");
  exact_double(w, prior_a_);
  w.key("prior_b");
  exact_double(w, prior_b_);
  w.key("shards").value(static_cast<std::uint64_t>(shards_.size()));
  w.key("links").begin_array();
  for (const auto& [key, stats] : links) {
    w.begin_object();
    w.key("from").value(static_cast<std::uint64_t>(key.from));
    w.key("to").value(static_cast<std::uint64_t>(key.to));
    w.key("u");
    exact_double(w, stats.uncensored);
    w.key("a");
    exact_double(w, stats.attempts_sum);
    w.key("c");
    exact_double(w, stats.censored);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::optional<ShardedLinkEstimator> ShardedLinkEstimator::restore_json(std::string_view json) {
  const auto doc = dophy::obs::parse_json(json);
  if (!doc) return std::nullopt;
  return restore(*doc);
}

std::optional<ShardedLinkEstimator> ShardedLinkEstimator::restore(
    const dophy::obs::JsonValue& parsed) {
  const auto* doc = &parsed;
  if (!doc->is_object()) return std::nullopt;
  const auto* format = doc->find("format");
  if (format == nullptr || !format->is_string() ||
      format->string != "dophy-sink-snapshot-v1") {
    return std::nullopt;
  }
  const auto* k = doc->find("k");
  const auto* shards = doc->find("shards");
  const auto* links = doc->find("links");
  if (k == nullptr || !k->is_number() || k->number < 2 || shards == nullptr ||
      !shards->is_number() || shards->number < 1 || links == nullptr || !links->is_array()) {
    return std::nullopt;
  }
  double decay = 1.0, prior_a = 0.0, prior_b = 0.0;
  if (!parse_exact_double(doc->find("decay"), decay) ||
      !parse_exact_double(doc->find("prior_a"), prior_a) ||
      !parse_exact_double(doc->find("prior_b"), prior_b)) {
    return std::nullopt;
  }
  if (decay <= 0.0 || decay > 1.0 || prior_a < 0.0 || prior_b < 0.0) return std::nullopt;

  ShardedLinkEstimator est(static_cast<std::uint32_t>(k->number), decay,
                           static_cast<std::size_t>(shards->number));
  est.prior_a_ = prior_a;
  est.prior_b_ = prior_b;
  for (const auto& entry : links->array) {
    const auto* from = entry.find("from");
    const auto* to = entry.find("to");
    if (from == nullptr || !from->is_number() || to == nullptr || !to->is_number()) {
      return std::nullopt;
    }
    tomo::GeometricSuffStats stats;
    if (!parse_exact_double(entry.find("u"), stats.uncensored) ||
        !parse_exact_double(entry.find("a"), stats.attempts_sum) ||
        !parse_exact_double(entry.find("c"), stats.censored) || stats.uncensored < 0.0 ||
        stats.attempts_sum < 0.0 || stats.censored < 0.0) {
      return std::nullopt;
    }
    const LinkKey key{static_cast<dophy::net::NodeId>(from->number),
                      static_cast<dophy::net::NodeId>(to->number)};
    Shard& shard = est.shard_for(key);
    shard.links[key] = stats;
  }
  return est;
}

}  // namespace dophy::sink
