#include "dophy/sink/snapshot_writer.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "dophy/obs/json.hpp"

namespace dophy::sink {
namespace fs = std::filesystem;
namespace {

constexpr std::string_view kPrefix = "snapshot-";
constexpr std::string_view kSuffix = ".json";

[[nodiscard]] std::string snapshot_name(std::uint64_t seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "snapshot-%09llu.json",
                static_cast<unsigned long long>(seq));
  return buf;
}

/// All completed snapshots in `directory` as (sequence, path), unsorted.
[[nodiscard]] std::vector<std::pair<std::uint64_t, std::string>> list_snapshots(
    const std::string& directory) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const auto seq = snapshot_sequence(entry.path().filename().string());
    if (seq) out.emplace_back(*seq, entry.path().string());
  }
  return out;
}

/// Atomic publish: tmp write + flush + fsync + rename.
[[nodiscard]] bool write_file_atomic(const std::string& final_path, std::string_view text) {
  const std::string tmp_path = final_path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
                     std::fflush(f) == 0;
#if defined(__unix__) || defined(__APPLE__)
  const bool synced = !wrote || fsync(fileno(f)) == 0;
#else
  const bool synced = true;
#endif
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !synced || !closed) {
    std::error_code ec;
    fs::remove(tmp_path, ec);
    return false;
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    return false;
  }
  return true;
}

}  // namespace

SnapshotWriter::SnapshotWriter(SinkService& service, SnapshotWriterConfig config)
    : service_(service), config_(std::move(config)) {
  if (config_.retain < 1) config_.retain = 1;
  // Resume the sequence after whatever a previous incarnation left behind,
  // so a restarted service appends to the same history.
  for (const auto& [seq, path] : list_snapshots(config_.directory)) {
    next_seq_ = std::max(next_seq_, seq + 1);
  }
}

SnapshotWriter::~SnapshotWriter() { stop(); }

void SnapshotWriter::start() {
  std::error_code ec;
  fs::create_directories(config_.directory, ec);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
  }
  if (config_.interval_s > 0.0) {
    timer_ = std::thread([this] { timer_loop(); });
  }
}

void SnapshotWriter::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    running_ = false;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (timer_.joinable()) timer_.join();
}

void SnapshotWriter::timer_loop() {
  const auto period = std::chrono::duration<double>(config_.interval_s);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_cv_.wait_for(lock, period, [&] { return stop_requested_; })) {
    lock.unlock();
    (void)write_now();
    lock.lock();
  }
}

bool SnapshotWriter::write_now() {
  // Capture outside the writer mutex: snapshot_json() quiesces the service
  // (exclusive store barrier) and must not serialize against stats readers.
  const std::string snapshot = service_.snapshot_json();
  std::uint64_t seq;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    seq = next_seq_++;
  }
  std::error_code ec;
  fs::create_directories(config_.directory, ec);
  const std::string path = (fs::path(config_.directory) / snapshot_name(seq)).string();
  const bool ok = write_file_atomic(path, snapshot);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (ok) {
      ++stats_.written;
      stats_.last_path = path;
    } else {
      ++stats_.failed;
    }
  }
  if (!ok) return false;
  // Retention: unlink completed snapshots beyond the bound, oldest first.
  auto existing = list_snapshots(config_.directory);
  std::sort(existing.begin(), existing.end());
  while (existing.size() > config_.retain) {
    fs::remove(existing.front().second, ec);
    existing.erase(existing.begin());
  }
  return true;
}

SnapshotWriterStats SnapshotWriter::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::optional<std::uint64_t> snapshot_sequence(std::string_view filename) {
  if (filename.size() <= kPrefix.size() + kSuffix.size()) return std::nullopt;
  if (filename.substr(0, kPrefix.size()) != kPrefix) return std::nullopt;
  if (filename.substr(filename.size() - kSuffix.size()) != kSuffix) return std::nullopt;
  const std::string_view digits =
      filename.substr(kPrefix.size(), filename.size() - kPrefix.size() - kSuffix.size());
  if (digits.empty()) return std::nullopt;
  std::uint64_t seq = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return seq;
}

std::optional<std::string> latest_snapshot(const std::string& directory) {
  auto existing = list_snapshots(directory);
  if (existing.empty()) return std::nullopt;
  return std::max_element(existing.begin(), existing.end())->second;
}

std::optional<RecoveredSnapshot> load_latest_snapshot(const std::string& directory) {
  auto existing = list_snapshots(directory);
  std::sort(existing.begin(), existing.end());
  // Newest first; skip anything unreadable or malformed rather than wedge.
  for (auto it = existing.rbegin(); it != existing.rend(); ++it) {
    std::ifstream in(it->second, std::ios::binary);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    RecoveredSnapshot out;
    out.path = it->second;
    out.json = buf.str();
    const auto doc = dophy::obs::parse_json(out.json);
    if (!doc || !doc->is_object()) continue;
    const auto* format = doc->find("format");
    if (format == nullptr || !format->is_string() ||
        format->string != "dophy-sink-service-snapshot-v2") {
      continue;
    }
    const auto* producers = doc->find("producers");
    if (producers == nullptr || !producers->is_number() || producers->number < 1) continue;
    out.producers = static_cast<std::size_t>(producers->number);
    const auto* lanes = doc->find("lane_processed");
    bool lanes_ok = lanes != nullptr && lanes->is_array();
    if (lanes_ok) {
      for (const auto& lane : lanes->array) {
        if (!lane.is_number() || lane.number < 0) {
          lanes_ok = false;
          break;
        }
        out.lane_processed.push_back(static_cast<std::uint64_t>(lane.number));
      }
    }
    if (!lanes_ok || out.lane_processed.size() != out.producers) continue;
    return out;
  }
  return std::nullopt;
}

}  // namespace dophy::sink
