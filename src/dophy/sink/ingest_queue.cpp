#include "dophy/sink/ingest_queue.hpp"

#include <bit>
#include <stdexcept>

namespace dophy::sink {

IngestQueue::IngestQueue(std::size_t capacity, std::size_t producers, OverflowPolicy policy,
                         std::size_t consumers)
    : capacity_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity)), policy_(policy) {
  if (producers == 0) throw std::invalid_argument("IngestQueue: producers must be >= 1");
  if (consumers == 0) throw std::invalid_argument("IngestQueue: consumers must be >= 1");
  lanes_.reserve(producers);
  for (std::size_t i = 0; i < producers; ++i) {
    lanes_.push_back(std::make_unique<Lane>(capacity_));
  }
  // Static lane affinity: lane i belongs to consumer i % consumers.  A
  // consumer beyond the lane count simply owns no lanes and drains nothing.
  owned_.resize(consumers);
  for (std::size_t i = 0; i < producers; ++i) {
    owned_[i % consumers].push_back(i);
  }
  cursors_ = std::vector<Cursor>(consumers);
}

bool IngestQueue::push(std::size_t producer, StreamRecord item) {
  Lane& lane = *lanes_.at(producer);
  for (;;) {
    if (closed_.load(std::memory_order_acquire)) return false;
    const std::size_t tail = lane.tail.load(std::memory_order_relaxed);
    const std::size_t head = lane.head.load(std::memory_order_acquire);
    if (tail - head < lane.slots.size()) {
      lane.slots[tail & lane.mask] = std::move(item);
      lane.tail.store(tail + 1, std::memory_order_release);
      lane.accepted.fetch_add(1, std::memory_order_relaxed);
      // Wake consumers only when one may be sleeping.  The fence pairs with
      // the one in wait_nonempty(): either this push sees the waiting
      // counter, or the consumer's depth_for() check sees the new tail.
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (consumers_waiting_.load(std::memory_order_relaxed) > 0) {
        {
          const std::lock_guard<std::mutex> lock(wait_mutex_);
        }
        items_cv_.notify_all();
      }
      return true;
    }
    if (policy_ == OverflowPolicy::kDropNewest) {
      lane.dropped.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // kBlock: wait until the lane's consumer frees a slot.
    lane.block_waits.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(wait_mutex_);
    producers_waiting_.fetch_add(1, std::memory_order_seq_cst);
    space_cv_.wait(lock, [&] {
      return closed_.load(std::memory_order_acquire) ||
             lane.tail.load(std::memory_order_relaxed) -
                     lane.head.load(std::memory_order_acquire) <
                 lane.slots.size();
    });
    producers_waiting_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

std::size_t IngestQueue::drain_into(std::vector<StreamRecord>& out, std::size_t max_items,
                                    std::size_t consumer) {
  const std::vector<std::size_t>& owned = owned_.at(consumer);
  if (owned.empty()) return 0;
  Cursor& cursor = cursors_[consumer];
  std::size_t taken = 0;
  std::size_t idle_lanes = 0;
  while (taken < max_items && idle_lanes < owned.size()) {
    Lane& lane = *lanes_[owned[cursor.next]];
    cursor.next = (cursor.next + 1) % owned.size();
    std::size_t head = lane.head.load(std::memory_order_relaxed);
    const std::size_t tail = lane.tail.load(std::memory_order_acquire);
    if (head == tail) {
      ++idle_lanes;
      continue;
    }
    idle_lanes = 0;
    while (head != tail && taken < max_items) {
      out.push_back(std::move(lane.slots[head & lane.mask]));
      ++head;
      ++taken;
    }
    lane.head.store(head, std::memory_order_release);
  }
  // Symmetric Dekker pairing: either this load sees a waiting producer, or
  // that producer's predicate (evaluated under the lock, after our
  // head-store) sees the freed slots.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (taken > 0 && policy_ == OverflowPolicy::kBlock &&
      producers_waiting_.load(std::memory_order_relaxed) > 0) {
    {
      const std::lock_guard<std::mutex> lock(wait_mutex_);
    }
    space_cv_.notify_all();
  }
  return taken;
}

bool IngestQueue::wait_nonempty(std::size_t consumer) {
  std::unique_lock<std::mutex> lock(wait_mutex_);
  consumers_waiting_.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  items_cv_.wait(lock, [&] {
    return depth_for(consumer) > 0 || closed_.load(std::memory_order_acquire);
  });
  consumers_waiting_.fetch_sub(1, std::memory_order_relaxed);
  return depth_for(consumer) > 0;
}

void IngestQueue::close() {
  closed_.store(true, std::memory_order_release);
  {
    const std::lock_guard<std::mutex> lock(wait_mutex_);
  }
  space_cv_.notify_all();
  items_cv_.notify_all();
}

std::size_t IngestQueue::depth() const noexcept {
  std::size_t total = 0;
  for (const auto& lane : lanes_) {
    total += lane->tail.load(std::memory_order_acquire) -
             lane->head.load(std::memory_order_acquire);
  }
  return total;
}

std::size_t IngestQueue::depth_for(std::size_t consumer) const noexcept {
  std::size_t total = 0;
  for (const std::size_t i : owned_[consumer]) {
    total += lanes_[i]->tail.load(std::memory_order_acquire) -
             lanes_[i]->head.load(std::memory_order_acquire);
  }
  return total;
}

IngestQueueStats IngestQueue::stats() const noexcept {
  IngestQueueStats s;
  for (const auto& lane : lanes_) {
    s.accepted += lane->accepted.load(std::memory_order_relaxed);
    s.dropped += lane->dropped.load(std::memory_order_relaxed);
    s.block_waits += lane->block_waits.load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace dophy::sink
