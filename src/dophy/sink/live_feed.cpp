#include "dophy/sink/live_feed.hpp"

namespace dophy::sink {

void LiveSinkFeed::on_sink_install(const tomo::ModelSet& set) {
  StreamRecord rec;
  rec.kind = StreamRecord::Kind::kModelInstall;
  rec.model_bytes = set.serialize();
  // Same double bracket as stream_feed: every prior report drains before the
  // install, and the install drains before any later report.
  service_.wait_idle();
  (void)service_.submit(0, std::move(rec));
  service_.wait_idle();
  ++stats_.installs;
}

void LiveSinkFeed::on_delivery(const dophy::net::Packet& packet, dophy::net::SimTime now,
                               bool in_measure) {
  StreamRecord rec;
  rec.kind = StreamRecord::Kind::kReport;
  rec.report.packet = packet;
  rec.report.packet.true_hops.clear();  // simulator-only ground truth
  rec.report.packet.span = 0;
  rec.report.recv_time = now;
  rec.report.in_measure = in_measure;
  const std::size_t lane = next_lane_;
  next_lane_ = (next_lane_ + 1) % producers_;
  if (service_.submit(lane, std::move(rec))) {
    ++stats_.reports_submitted;
  } else {
    ++stats_.reports_shed;
  }
}

}  // namespace dophy::sink
