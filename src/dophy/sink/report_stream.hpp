#pragma once

// Recorded sink-side report streams for the replay driver.
//
// A stream is everything the sink observed during a run, in arrival order:
// model-set installs (the sink's copy of each published version) interleaved
// with delivered packets and their arrival times.  Replaying a stream through
// SinkService reproduces the exact decode + estimator state of the original
// run — the foundation of the incremental-vs-batch differential campaign and
// the throughput benchmarks, neither of which wants to re-run a simulation
// per measurement.
//
// The on-disk form is line-oriented text (one record per line, hex payloads)
// in the spirit of eval/trace_io: diffable, greppable, stable across
// platforms.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dophy/net/packet.hpp"

namespace dophy::sink {

/// Lowercase hex encoding; empty input encodes to "-" (a visible
/// empty-payload marker that survives whitespace-delimited parsing).
[[nodiscard]] std::string to_hex(const std::uint8_t* data, std::size_t size);
/// Inverse of to_hex; false on odd length or a non-hex digit.
[[nodiscard]] bool from_hex(std::string_view text, std::vector<std::uint8_t>& out);

/// One delivered packet as the sink saw it.
struct SinkReport {
  dophy::net::Packet packet;          ///< the delivered packet (wire form)
  dophy::net::SimTime recv_time = 0;  ///< sink arrival time
  /// Whether the delivery fell inside the recording run's measurement window
  /// (warm-up deliveries still update decode stats but not scored estimates).
  bool in_measure = true;
};

/// One stream record: a model install or a report, in sink arrival order.
struct StreamRecord {
  /// Record discriminator.
  enum class Kind : std::uint8_t {
    kModelInstall,  ///< a published model-set version reaching the sink
    kReport,        ///< a delivered packet
  };
  Kind kind = Kind::kReport;  ///< which union-style payload below is live
  /// kModelInstall: the serialized ModelSet (tomo::ModelSet::deserialize).
  std::vector<std::uint8_t> model_bytes;
  /// kReport: the delivered packet.
  SinkReport report;
  /// Transport-only: wall-clock stamp set by SinkService::submit so the
  /// consumer can report queue latency.  Not part of the serialized stream.
  std::uint64_t enqueue_ns = 0;
  /// Transport-only: ingest lane the record was submitted on, stamped by
  /// SinkService::submit so the consumer can advance the per-lane durable
  /// cursor (see SinkService::snapshot_json).  Not serialized.
  std::uint32_t lane = 0;
};

/// A full recorded sink-side stream plus the run parameters a replaying
/// service must match.
struct ReportStream {
  std::size_t node_count = 0;          ///< id alphabet of the recording run
  std::uint32_t censor_threshold = 2;  ///< K used by the recording run
  std::uint16_t max_hops = 64;         ///< decoder hop bound of the recording run
  std::vector<StreamRecord> records;   ///< installs + reports, arrival order

  /// Number of kReport records.
  [[nodiscard]] std::size_t report_count() const noexcept;

  /// Renders the stream as line-oriented text (one record per line).
  [[nodiscard]] std::string serialize() const;
  /// Inverse of serialize(); nullopt on malformed input (bad header,
  /// truncated hex, unknown record tag).
  [[nodiscard]] static std::optional<ReportStream> parse(std::string_view text);

  /// Writes serialize() output to `path`; false on IO failure.
  [[nodiscard]] bool save(const std::string& path) const;
  /// Loads and parses `path`; nullopt on IO or parse failure.
  [[nodiscard]] static std::optional<ReportStream> load(const std::string& path);
};

}  // namespace dophy::sink
