#pragma once

// Durable snapshot streaming for the sink service.
//
// A SnapshotWriter owns a timer thread that periodically captures
// SinkService::snapshot_json() (batch-consistent: the service takes the
// store barrier exclusively) and streams it to a snapshot directory using
// the atomic publish protocol:
//
//   1. write snapshot-<seq>.json.tmp, flush, fsync
//   2. rename(2) it to snapshot-<seq>.json     — atomic on POSIX
//   3. unlink completed snapshots beyond the retention bound, oldest first
//
// A reader therefore never observes a torn document: either the rename
// happened and the file is complete, or the writer died mid-write and left
// only a .tmp, which recovery ignores.  Sequence numbers are monotonic and
// resume from the highest number already present in the directory, so a
// restarted service keeps appending to the same history.
//
// Recovery helpers (latest_snapshot / load_latest_snapshot) pick the
// newest complete snapshot and expose the per-lane stream cursor the
// service embeds — everything `dophy_sink recover` needs to replay the
// stream tail (see stream_feed.hpp).

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "dophy/sink/service.hpp"

namespace dophy::sink {

/// Tuning for a SnapshotWriter.
struct SnapshotWriterConfig {
  /// Snapshot directory (created on start() if missing).
  std::string directory;
  /// Timer period in seconds; <= 0 disables the timer (write_now() only).
  double interval_s = 30.0;
  /// Completed snapshots kept on disk; older ones are unlinked after each
  /// successful publish.  Minimum 1.
  std::size_t retain = 4;
};

/// Writer-side counters (exact: every mutation holds the writer mutex).
struct SnapshotWriterStats {
  std::uint64_t written = 0;   ///< snapshots published (renamed into place)
  std::uint64_t failed = 0;    ///< write/rename failures (service kept running)
  std::string last_path;       ///< most recently published snapshot file
};

/// Timer-driven durable snapshot publisher for a SinkService (see the file
/// comment for the atomic publish protocol).
class SnapshotWriter {
 public:
  /// Binds the writer to `service`; `service` must outlive the writer.
  SnapshotWriter(SinkService& service, SnapshotWriterConfig config);
  /// Stops the timer thread (no final snapshot; see stop()).
  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter&) = delete;             ///< not copyable
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;  ///< not copyable

  /// Creates the directory and spawns the timer thread (no-op when
  /// interval_s <= 0).  Idempotent until stop().
  void start();

  /// Joins the timer thread.  Does not write a final snapshot; call
  /// write_now() first for a shutdown checkpoint.  Idempotent.
  void stop();

  /// Captures and publishes one snapshot immediately (also what the timer
  /// calls).  Returns false when the write or rename failed; the failure is
  /// counted and the service keeps running.
  bool write_now();

  /// Writer-side counters (exact; see SnapshotWriterStats).
  [[nodiscard]] SnapshotWriterStats stats() const;
  /// The configuration the writer was built with.
  [[nodiscard]] const SnapshotWriterConfig& config() const noexcept { return config_; }

 private:
  void timer_loop();

  SinkService& service_;
  SnapshotWriterConfig config_;
  std::uint64_t next_seq_ = 0;

  std::thread timer_;
  bool running_ = false;
  bool stop_requested_ = false;
  mutable std::mutex mutex_;  ///< guards stats_, next_seq_, stop flag
  std::condition_variable stop_cv_;
  SnapshotWriterStats stats_;
};

/// Parses the sequence number out of a snapshot file name
/// ("snapshot-<seq>.json"); nullopt for anything else (including .tmp
/// leftovers from a crashed writer).
[[nodiscard]] std::optional<std::uint64_t> snapshot_sequence(std::string_view filename);

/// Path of the newest complete snapshot in `directory` (highest sequence
/// number, .tmp files ignored); nullopt when none exists.
[[nodiscard]] std::optional<std::string> latest_snapshot(const std::string& directory);

/// A loaded snapshot plus the recovery-relevant fields parsed out of it.
struct RecoveredSnapshot {
  std::string path;  ///< file the document came from
  std::string json;  ///< full document, ready for SinkService::restore_snapshot
  std::size_t producers = 1;  ///< lane layout the snapshotting service ran with
  std::vector<std::uint64_t> lane_processed;  ///< per-lane stream cursor
};

/// Loads and validates the newest complete snapshot in `directory`:
/// corrupt or unparseable candidates are skipped in favour of the next
/// newest, so a torn file (beyond even the .tmp protocol) cannot wedge
/// recovery.  nullopt when no valid snapshot exists.
[[nodiscard]] std::optional<RecoveredSnapshot> load_latest_snapshot(
    const std::string& directory);

}  // namespace dophy::sink
