#include "dophy/eval/cache.hpp"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "dophy/obs/json.hpp"
#include "dophy/obs/metrics.hpp"
#include "dophy/obs/report.hpp"
#include "dophy/tomo/pipeline.hpp"

namespace dophy::eval {

namespace {

constexpr int kCacheFormatVersion = 1;

// Shared handles so every ResultCache instance feeds the same metrics.
const dophy::obs::Counter& hit_counter() {
  static const auto c = dophy::obs::Registry::global().counter("eval.cache.hit");
  return c;
}
const dophy::obs::Counter& miss_counter() {
  static const auto c = dophy::obs::Registry::global().counter("eval.cache.miss");
  return c;
}
const dophy::obs::Counter& store_counter() {
  static const auto c = dophy::obs::Registry::global().counter("eval.cache.store");
  return c;
}
const dophy::obs::Counter& corrupt_counter() {
  static const auto c = dophy::obs::Registry::global().counter("eval.cache.corrupt");
  return c;
}

std::string format_double_field(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

// ---------------------------------------------------------------------------
// Minimal strict JSON reader for cache entries.  Deliberately local: the obs
// JSON parser is flat-object-only, and cache entries nest one array level.
// Any deviation from the expected shape makes the entry "corrupt".

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  [[nodiscard]] bool peek_is(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  [[nodiscard]] bool read_string(std::string& out) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            // Cache entries only escape control characters; encode as UTF-8.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return false;
        }
        continue;
      }
      out.push_back(c);
    }
    return false;  // unterminated
  }

  [[nodiscard]] bool read_number(double& out) {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(text_[pos_]))) digits = true;
      ++pos_;
    }
    if (!digits) return false;
    try {
      out = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (...) {
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Parses one cache entry; nullopt means corrupt.  The expected canonical
/// string is compared so an FNV collision (or a hand-edited file) can never
/// serve a result for different inputs.
std::optional<CachedCell> parse_entry(std::string_view text,
                                      std::string_view expected_canonical,
                                      std::string_view expected_version) {
  JsonReader r(text);
  if (!r.consume('{')) return std::nullopt;

  CachedCell cell;
  double format = 0.0;
  std::string canonical;
  std::string version;
  bool have_rows = false;

  bool first = true;
  while (!r.peek_is('}')) {
    if (!first && !r.consume(',')) return std::nullopt;
    first = false;
    std::string name;
    if (!r.read_string(name) || !r.consume(':')) return std::nullopt;
    if (name == "format") {
      if (!r.read_number(format)) return std::nullopt;
    } else if (name == "canonical") {
      if (!r.read_string(canonical)) return std::nullopt;
    } else if (name == "version") {
      if (!r.read_string(version)) return std::nullopt;
    } else if (name == "experiment") {
      if (!r.read_string(cell.experiment)) return std::nullopt;
    } else if (name == "cell") {
      if (!r.read_string(cell.cell)) return std::nullopt;
    } else if (name == "wall_seconds") {
      if (!r.read_number(cell.wall_seconds)) return std::nullopt;
    } else if (name == "rows") {
      if (!r.consume('[')) return std::nullopt;
      while (!r.peek_is(']')) {
        if (!cell.rows.empty() && !r.consume(',')) return std::nullopt;
        if (!r.consume('[')) return std::nullopt;
        std::vector<std::string> row;
        while (!r.peek_is(']')) {
          if (!row.empty() && !r.consume(',')) return std::nullopt;
          std::string value;
          if (!r.read_string(value)) return std::nullopt;
          row.push_back(std::move(value));
        }
        if (!r.consume(']')) return std::nullopt;
        cell.rows.push_back(std::move(row));
      }
      if (!r.consume(']')) return std::nullopt;
      have_rows = true;
    } else {
      return std::nullopt;  // unknown key: treat as corrupt (strict format)
    }
  }
  if (!r.consume('}') || !r.at_end()) return std::nullopt;

  if (format != kCacheFormatVersion || !have_rows) return std::nullopt;
  if (canonical != expected_canonical || version != expected_version) return std::nullopt;
  return cell;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view data, std::uint64_t state) noexcept {
  for (const char c : data) {
    state ^= static_cast<unsigned char>(c);
    state *= kFnvPrime;
  }
  return state;
}

CanonicalKey& CanonicalKey::set(std::string_view field, std::string_view value) {
  fields_.insert_or_assign(std::string(field), std::string(value));
  return *this;
}

CanonicalKey& CanonicalKey::set(std::string_view field, double value) {
  return set(field, std::string_view(format_double_field(value)));
}

CanonicalKey& CanonicalKey::set(std::string_view field, bool value) {
  return set(field, std::string_view(value ? "1" : "0"));
}

CanonicalKey& CanonicalKey::set(std::string_view field, std::uint64_t value) {
  return set(field, std::string_view(std::to_string(value)));
}

CanonicalKey& CanonicalKey::set(std::string_view field, std::int64_t value) {
  return set(field, std::string_view(std::to_string(value)));
}

std::string CanonicalKey::canonical() const {
  std::string out;
  for (const auto& [field, value] : fields_) {
    out += field;
    out += '=';
    out += value;
    out += '\n';
  }
  return out;
}

std::uint64_t CanonicalKey::hash() const { return fnv1a64(canonical()); }

void canonicalize_into(const dophy::tomo::PipelineConfig& config, CanonicalKey& key) {
  const auto& net = config.net;
  key.set("cfg.net.topology.node_count", static_cast<std::uint64_t>(net.topology.node_count))
      .set("cfg.net.topology.field_size", net.topology.field_size)
      .set("cfg.net.topology.comm_range", net.topology.comm_range)
      .set("cfg.net.topology.layout", static_cast<std::int64_t>(net.topology.layout))
      .set("cfg.net.topology.sink_placement",
           static_cast<std::int64_t>(net.topology.sink_placement))
      .set("cfg.net.topology.max_generation_attempts",
           net.topology.max_generation_attempts);
  key.set("cfg.net.mac.max_attempts", net.mac.max_attempts)
      .set("cfg.net.mac.model_ack_loss", net.mac.model_ack_loss)
      .set("cfg.net.mac.attempt_duration",
           static_cast<std::uint64_t>(net.mac.attempt_duration))
      .set("cfg.net.mac.queue_service_delay",
           static_cast<std::uint64_t>(net.mac.queue_service_delay));
  const auto& est = net.routing.estimator;
  key.set("cfg.net.routing.estimator.data_alpha", est.data_alpha)
      .set("cfg.net.routing.estimator.beacon_alpha", est.beacon_alpha)
      .set("cfg.net.routing.estimator.min_data_samples", est.min_data_samples)
      .set("cfg.net.routing.estimator.initial_etx", est.initial_etx)
      .set("cfg.net.routing.estimator.max_etx", est.max_etx)
      .set("cfg.net.routing.switch_hysteresis", net.routing.switch_hysteresis)
      .set("cfg.net.routing.beacon_interval_s", net.routing.beacon_interval_s)
      .set("cfg.net.routing.beacon_jitter", net.routing.beacon_jitter)
      .set("cfg.net.routing.neighbor_timeout_s", net.routing.neighbor_timeout_s)
      .set("cfg.net.routing.advertise_alpha", net.routing.advertise_alpha)
      .set("cfg.net.routing.opportunistic_fraction", net.routing.opportunistic_fraction);
  key.set("cfg.net.loss.kind", static_cast<std::int64_t>(net.loss.kind))
      .set("cfg.net.loss.noise_spread", net.loss.noise_spread)
      .set("cfg.net.loss.reverse_noise", net.loss.reverse_noise)
      .set("cfg.net.loss.loss_scale", net.loss.loss_scale)
      .set("cfg.net.loss.ge_bad_multiplier", net.loss.ge_bad_multiplier)
      .set("cfg.net.loss.ge_mean_good_s", net.loss.ge_mean_good_s)
      .set("cfg.net.loss.ge_mean_bad_s", net.loss.ge_mean_bad_s)
      .set("cfg.net.loss.drift_amplitude", net.loss.drift_amplitude)
      .set("cfg.net.loss.drift_period_s", net.loss.drift_period_s)
      .set("cfg.net.loss.drift_shuffle_interval_s", net.loss.drift_shuffle_interval_s)
      .set("cfg.net.loss.drift_shuffle_spread", net.loss.drift_shuffle_spread);
  key.set("cfg.net.traffic.data_interval_s", net.traffic.data_interval_s)
      .set("cfg.net.traffic.jitter", net.traffic.jitter)
      .set("cfg.net.traffic.start_delay_s", net.traffic.start_delay_s)
      .set("cfg.net.traffic.queue_capacity",
           static_cast<std::uint64_t>(net.traffic.queue_capacity))
      .set("cfg.net.traffic.max_hops", static_cast<std::uint64_t>(net.traffic.max_hops));
  key.set("cfg.net.churn.enabled", net.churn.enabled)
      .set("cfg.net.churn.churn_fraction", net.churn.churn_fraction)
      .set("cfg.net.churn.mean_up_s", net.churn.mean_up_s)
      .set("cfg.net.churn.mean_down_s", net.churn.mean_down_s);
  key.set("cfg.net.seed", net.seed).set("cfg.net.collect_outcomes", net.collect_outcomes);

  const auto& dophy = config.dophy;
  key.set("cfg.dophy.censor_threshold", dophy.censor_threshold)
      .set("cfg.dophy.update.policy", static_cast<std::int64_t>(dophy.update.policy))
      .set("cfg.dophy.update.check_interval_s", dophy.update.check_interval_s)
      .set("cfg.dophy.update.min_hop_samples", dophy.update.min_hop_samples)
      .set("cfg.dophy.update.adaptive_horizon_s", dophy.update.adaptive_horizon_s)
      .set("cfg.dophy.update.smoothing", dophy.update.smoothing)
      .set("cfg.dophy.update.update_id_model", dophy.update.update_id_model)
      .set("cfg.dophy.update.model_precision", dophy.update.model_precision)
      .set("cfg.dophy.tracker_decay", dophy.tracker_decay)
      .set("cfg.dophy.prior_successes", dophy.prior_successes)
      .set("cfg.dophy.prior_failures", dophy.prior_failures)
      .set("cfg.dophy.path_mode", static_cast<std::int64_t>(dophy.path_mode))
      .set("cfg.dophy.max_wire_bytes", static_cast<std::uint64_t>(dophy.max_wire_bytes))
      .set("cfg.dophy.use_trickle_dissemination", dophy.use_trickle_dissemination)
      .set("cfg.dophy.trickle.i_min_s", dophy.trickle.i_min_s)
      .set("cfg.dophy.trickle.i_max_s", dophy.trickle.i_max_s)
      .set("cfg.dophy.trickle.redundancy_k", dophy.trickle.redundancy_k);

  key.set("cfg.warmup_s", config.warmup_s)
      .set("cfg.measure_s", config.measure_s)
      .set("cfg.snapshot_interval_s", config.snapshot_interval_s)
      .set("cfg.min_truth_attempts", config.min_truth_attempts)
      .set("cfg.truth_tail_fraction", config.truth_tail_fraction)
      .set("cfg.run_baselines", config.run_baselines)
      .set("cfg.validate_decoded_hops", config.validate_decoded_hops)
      .set("cfg.collect_attempt_stream", config.collect_attempt_stream)
      .set("cfg.collect_epoch_series", config.collect_epoch_series);

  const auto& faults = config.faults;
  key.set("cfg.faults.enabled", faults.enabled)
      .set("cfg.faults.seed", faults.seed)
      .set("cfg.faults.start_s", faults.start_s)
      .set("cfg.faults.horizon_s", faults.horizon_s)
      .set("cfg.faults.node_crashes_per_hour", faults.node_crashes_per_hour)
      .set("cfg.faults.crash_duration_s", faults.crash_duration_s)
      .set("cfg.faults.sink_outages_per_hour", faults.sink_outages_per_hour)
      .set("cfg.faults.sink_outage_duration_s", faults.sink_outage_duration_s)
      .set("cfg.faults.link_blackouts_per_hour", faults.link_blackouts_per_hour)
      .set("cfg.faults.blackout_duration_s", faults.blackout_duration_s)
      .set("cfg.faults.clock_skews_per_hour", faults.clock_skews_per_hour)
      .set("cfg.faults.clock_skew_max", faults.clock_skew_max)
      .set("cfg.faults.report_corrupt_prob", faults.report_corrupt_prob)
      .set("cfg.faults.report_truncate_prob", faults.report_truncate_prob)
      .set("cfg.faults.report_drop_prob", faults.report_drop_prob);

  key.set("cfg.check.enabled", config.check.enabled)
      .set("cfg.check.strict_decode", config.check.strict_decode)
      .set("cfg.check.max_violations",
           static_cast<std::uint64_t>(config.check.max_violations))
      .set("cfg.check.debug_retx_bias",
           static_cast<std::int64_t>(config.check.debug_retx_bias));
}

ResultCache::ResultCache(std::string dir, std::string version_tag)
    : dir_(std::move(dir)), version_tag_(std::move(version_tag)) {}

std::string ResultCache::default_version_tag() {
  return std::string(dophy::obs::git_describe()) + ";cache-format=" +
         std::to_string(kCacheFormatVersion);
}

std::uint64_t ResultCache::key_of(const CanonicalKey& key) const {
  return fnv1a64("version=" + version_tag_ + "\n", key.hash());
}

std::string ResultCache::entry_path(std::uint64_t key) const {
  char name[24];
  std::snprintf(name, sizeof name, "%016llx", static_cast<unsigned long long>(key));
  return dir_ + "/" + name + ".json";
}

std::optional<CachedCell> ResultCache::load(const CanonicalKey& key) {
  const auto path = entry_path(key_of(key));
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ++stats_.misses;
    miss_counter().inc();
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto cell = parse_entry(buf.str(), key.canonical(), version_tag_);
  if (!cell) {
    ++stats_.misses;
    ++stats_.corrupt;
    miss_counter().inc();
    corrupt_counter().inc();
    return std::nullopt;
  }
  ++stats_.hits;
  hit_counter().inc();
  return cell;
}

bool ResultCache::store(const CanonicalKey& key, const CachedCell& cell) {
  if (!ensure_dir()) return false;
  dophy::obs::JsonWriter w;
  w.begin_object();
  w.key("format").value(std::int64_t{kCacheFormatVersion});
  w.key("canonical").value(key.canonical());
  w.key("version").value(version_tag_);
  w.key("experiment").value(cell.experiment);
  w.key("cell").value(cell.cell);
  w.key("wall_seconds").value(cell.wall_seconds);
  w.key("rows").begin_array();
  for (const auto& row : cell.rows) {
    w.begin_array();
    for (const auto& value : row) w.value(value);
    w.end_array();
  }
  w.end_array();
  w.end_object();

  const auto path = entry_path(key_of(key));
  const auto tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << w.str();
    if (!out.good()) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  ++stats_.stores;
  store_counter().inc();
  return true;
}

bool ResultCache::ensure_dir() {
  if (dir_ready_) return true;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  dir_ready_ = !ec || std::filesystem::is_directory(dir_);
  return dir_ready_;
}

}  // namespace dophy::eval
