#include "dophy/eval/runner.hpp"

#include <stdexcept>

#include "dophy/common/thread_pool.hpp"

namespace dophy::eval {

const MethodAggregate& MultiTrialResult::method(const std::string& name) const {
  const auto it = methods.find(name);
  if (it == methods.end()) {
    throw std::out_of_range("MultiTrialResult::method: no method named " + name);
  }
  return it->second;
}

MultiTrialResult run_trials(const dophy::tomo::PipelineConfig& base, std::size_t trials,
                            std::uint64_t base_seed, bool keep_runs,
                            dophy::common::ThreadPool* pool) {
  // Registry delta across the batch: counters/histograms only accumulate
  // (per-trial increments are seed-determined), so the delta is independent
  // of which worker ran which trial.
  const dophy::obs::MetricsSnapshot metrics_before =
      dophy::obs::Registry::global().snapshot();

  std::vector<dophy::tomo::PipelineResult> results(trials);
  dophy::common::parallel_for(
      pool != nullptr ? *pool : dophy::common::global_pool(), trials,
      [&](std::size_t i) {
        dophy::tomo::PipelineConfig cfg = base;
        cfg.net.seed = base_seed + i + 1;
        results[i] = dophy::tomo::run_pipeline(cfg);
      });

  MultiTrialResult agg;
  for (auto& r : results) {
    for (const auto& m : r.methods) {
      MethodAggregate& ma = agg.methods[m.name];
      ma.coverage.add(m.summary.coverage);
      // A method that scored zero links has no defined error; folding its
      // zero-initialized summary in would fake perfect accuracy.
      if (m.summary.links_scored == 0) continue;
      ma.mae.add(m.summary.mae);
      ma.rmse.add(m.summary.rmse);
      ma.p90_abs.add(m.summary.p90_abs);
      ma.spearman.add(m.summary.spearman);
    }
    agg.bits_per_packet.add(r.mean_bits_per_packet);
    agg.bits_per_hop.add(r.encoder_stats.mean_bits_per_hop());
    agg.id_bits_per_hop.add(r.encoder_stats.mean_id_bits_per_hop());
    agg.retx_bits_per_hop.add(r.encoder_stats.mean_retx_bits_per_hop());
    agg.path_length.add(r.mean_path_length);
    agg.parent_changes_per_node_hour.add(r.parent_changes_per_node_hour);
    agg.delivery_ratio.add(r.delivery_ratio_in_window);
    agg.control_flood_kb.add(static_cast<double>(r.net_stats.control_flood_bytes) / 1024.0);
    agg.measurement_air_kb.add(static_cast<double>(r.net_stats.measurement_air_bytes) / 1024.0);
    agg.model_updates.add(static_cast<double>(r.manager_stats.updates_published));
    const double decoded = static_cast<double>(r.decoder_stats.packets_decoded);
    const double failed = static_cast<double>(r.decoder_stats.decode_failures);
    agg.decode_failure_rate.add(decoded + failed > 0.0 ? failed / (decoded + failed) : 0.0);
    for (const auto& [phase, seconds] : r.phase_seconds) {
      agg.phase_seconds[phase].add(seconds);
    }
  }
  {
    static const auto c_trials = dophy::obs::Registry::global().counter("eval.trials");
    c_trials.inc(trials);
  }
  agg.metrics = dophy::obs::Registry::global().snapshot().delta_since(metrics_before);
  if (keep_runs) agg.runs = std::move(results);
  return agg;
}

}  // namespace dophy::eval
