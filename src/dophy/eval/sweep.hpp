#pragma once

// Experiment sweep engine: executes an ExperimentSpec's grid of cells with
// content-addressed caching (cache.hpp), optional process-level sharding
// (`--shard i/N`), and thread-level parallelism across cells.  The engine
// owns the orchestration that used to be copy-pasted across the bench/fig_*
// binaries; dophy_bench (tools/) is its CLI.
//
// Execution model: cells whose key hits the cache are replayed from the
// stored rows; the remaining cells run concurrently on the sweep pool, each
// with its Monte-Carlo trials executed inline (nesting a trial parallel_for
// inside a cell task on the same pool would deadlock).  A single miss keeps
// the trial-level parallelism of the legacy binaries instead.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dophy/eval/experiment.hpp"
#include "dophy/obs/report.hpp"

namespace dophy::common {
class ThreadPool;
}

namespace dophy::eval {

/// Sweep-wide execution options resolved by the CLI.
struct SweepOptions {
  std::size_t trials = 0;       ///< 0 = the spec's default_trials
  std::size_t nodes = 0;        ///< 0 = the spec's default_nodes
  bool quick = false;           ///< cut simulated durations ~4x
  std::size_t shard_index = 0;  ///< this process owns cells with index % shard_count == shard_index
  std::size_t shard_count = 1;  ///< 1 = unsharded
  ResultCache* cache = nullptr; ///< null = always compute, never store
  bool force = false;           ///< bypass cache reads (still stores results)
  dophy::common::ThreadPool* pool = nullptr;  ///< null = the process-global pool
  /// >1 = run every simulation on the PDES engine with this many LPs/threads.
  /// Implies a cache bypass (parallel-engine results are lp_count-dependent
  /// and must not mix with the serial store) and shrinks cell-level
  /// parallelism to hardware_concurrency / sim_threads so cells x sim
  /// threads never oversubscribe the machine.  0 or 1 = the serial engine.
  std::size_t sim_threads = 0;
};

/// Outcome of one experiment sweep: the assembled table rows (grid order,
/// owned cells only when sharded) plus cache/compute accounting for the
/// run manifest.
struct ExperimentRun {
  const ExperimentSpec* spec = nullptr;         ///< the spec that was executed
  SweepContext context;                         ///< resolved trials/nodes/quick
  std::vector<std::vector<std::string>> rows;   ///< table rows in grid order
  std::uint64_t spec_hash = 0;    ///< FNV over id + every cell's canonical form
  std::size_t cells_total = 0;    ///< grid size before sharding
  std::size_t cells_owned = 0;    ///< cells this shard executed or replayed
  std::size_t cache_hits = 0;     ///< owned cells replayed from the cache
  std::size_t cells_computed = 0; ///< owned cells computed this run
  double wall_seconds = 0.0;      ///< wall clock of the whole sweep
  /// True when the run neither read nor wrote the result store even though
  /// one was configured (today: sim_threads > 1, whose results are
  /// lp_count-dependent).  Surfaced in the manifest so "0 hits" reads as a
  /// deliberate bypass rather than a cold cache.
  bool cache_bypassed = false;
  std::string cache_bypass_reason;  ///< empty unless cache_bypassed
};

/// Executes `spec` under `opts`; see the file comment for the execution
/// model.  Throws std::invalid_argument on an inconsistent shard spec.
[[nodiscard]] ExperimentRun run_experiment(const ExperimentSpec& spec,
                                           const SweepOptions& opts);

/// Prints the run the way the legacy fig_* binary did: aligned table (or CSV
/// with `csv`) followed by the spec's "Expected shape" trailer.
void print_run(std::ostream& os, const ExperimentRun& run, bool csv);

/// Builds the legacy-compatible obs::RunReport skeleton for the run (bench
/// name, title, config, the result table).  phase_seconds and metrics are
/// global-state snapshots the caller fills in.
[[nodiscard]] dophy::obs::RunReport make_run_report(const ExperimentRun& run);

/// Markdown experiment catalog (id, figure, axes, defaults, outputs, claim)
/// — the generated section of EXPERIMENTS.md; CI diffs this against the
/// committed copy.
[[nodiscard]] std::string catalog_markdown(const ExperimentRegistry& registry);

/// Plain-text catalog for `dophy_bench list` on a terminal.
[[nodiscard]] std::string catalog_text(const ExperimentRegistry& registry);

/// JSON run manifest: spec hashes, per-experiment cache traffic, code
/// version, wall clock, and the metrics delta accumulated over the sweep.
[[nodiscard]] std::string manifest_json(const std::vector<ExperimentRun>& runs,
                                        const SweepOptions& opts,
                                        const dophy::obs::MetricsSnapshot& metrics,
                                        double wall_seconds);

}  // namespace dophy::eval
