#include "dophy/eval/trace_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "dophy/tomo/link_inference.hpp"

namespace dophy::eval {

using dophy::net::HopRecord;
using dophy::net::PacketFate;
using dophy::net::PacketOutcome;

namespace {

const char* fate_name(PacketFate fate) {
  switch (fate) {
    case PacketFate::kDelivered: return "delivered";
    case PacketFate::kDroppedRetries: return "retries";
    case PacketFate::kDroppedNoRoute: return "noroute";
    case PacketFate::kDroppedTtl: return "ttl";
    case PacketFate::kDroppedQueue: return "queue";
  }
  return "?";
}

PacketFate fate_from(const std::string& name) {
  if (name == "delivered") return PacketFate::kDelivered;
  if (name == "retries") return PacketFate::kDroppedRetries;
  if (name == "noroute") return PacketFate::kDroppedNoRoute;
  if (name == "ttl") return PacketFate::kDroppedTtl;
  if (name == "queue") return PacketFate::kDroppedQueue;
  throw std::runtime_error("read_trace: unknown fate '" + name + "'");
}

}  // namespace

std::size_t write_trace(std::ostream& os, const std::vector<PacketOutcome>& outcomes) {
  os << "# dophy-trace v1: origin,seq,created_us,finished_us,fate,hops\n";
  for (const PacketOutcome& o : outcomes) {
    os << o.packet.origin << ',' << o.packet.seq << ',' << o.packet.created_at << ','
       << o.finished_at << ',' << fate_name(o.fate) << ',';
    for (std::size_t i = 0; i < o.packet.true_hops.size(); ++i) {
      const HopRecord& h = o.packet.true_hops[i];
      if (i) os << ';';
      os << h.sender << '>' << h.receiver << ':' << h.attempts_to_first_rx;
    }
    os << '\n';
  }
  return outcomes.size();
}

std::vector<PacketOutcome> read_trace(std::istream& is) {
  std::vector<PacketOutcome> outcomes;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string field;
    PacketOutcome o;
    try {
      std::getline(ls, field, ',');
      o.packet.origin = static_cast<dophy::net::NodeId>(std::stoul(field));
      std::getline(ls, field, ',');
      o.packet.seq = static_cast<std::uint16_t>(std::stoul(field));
      std::getline(ls, field, ',');
      o.packet.created_at = std::stoll(field);
      std::getline(ls, field, ',');
      o.finished_at = std::stoll(field);
      std::getline(ls, field, ',');
      o.fate = fate_from(field);
      std::string hops;
      std::getline(ls, hops);
      std::istringstream hs(hops);
      std::string hop;
      while (std::getline(hs, hop, ';')) {
        if (hop.empty()) continue;
        const auto gt = hop.find('>');
        const auto colon = hop.find(':', gt);
        if (gt == std::string::npos || colon == std::string::npos) {
          throw std::runtime_error("bad hop field");
        }
        HopRecord h;
        h.sender = static_cast<dophy::net::NodeId>(std::stoul(hop.substr(0, gt)));
        h.receiver =
            static_cast<dophy::net::NodeId>(std::stoul(hop.substr(gt + 1, colon - gt - 1)));
        h.attempts_to_first_rx = static_cast<std::uint32_t>(std::stoul(hop.substr(colon + 1)));
        h.total_attempts = h.attempts_to_first_rx;
        o.packet.true_hops.push_back(h);
      }
      o.packet.hop_count = static_cast<std::uint16_t>(o.packet.true_hops.size());
    } catch (const std::exception& e) {
      throw std::runtime_error("read_trace: malformed line " + std::to_string(line_no) +
                               ": " + e.what());
    }
    outcomes.push_back(std::move(o));
  }
  return outcomes;
}

std::vector<std::pair<dophy::net::LinkKey, double>> offline_link_estimates(
    const std::vector<PacketOutcome>& outcomes, std::uint32_t censor_threshold) {
  dophy::tomo::LinkLossEstimator estimator(censor_threshold);
  for (const PacketOutcome& o : outcomes) {
    if (o.fate != PacketFate::kDelivered) continue;
    for (const HopRecord& h : o.packet.true_hops) {
      const bool censored = h.attempts_to_first_rx >= censor_threshold;
      estimator.observe(
          dophy::net::LinkKey{h.sender, h.receiver},
          dophy::tomo::HopObservation{
              censored ? censor_threshold : h.attempts_to_first_rx, censored});
    }
  }
  std::vector<std::pair<dophy::net::LinkKey, double>> out;
  for (const auto& [key, est] : estimator.all_estimates()) {
    out.emplace_back(key, est.loss);
  }
  return out;
}

}  // namespace dophy::eval
