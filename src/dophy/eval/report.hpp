#pragma once

// Shared table-printing helpers for the figure/table benches.

#include <iosfwd>
#include <string>
#include <vector>

#include "dophy/common/table.hpp"
#include "dophy/eval/runner.hpp"

namespace dophy::eval {

/// Standard method ordering for comparison tables.
[[nodiscard]] std::vector<std::string> method_order(const MultiTrialResult& result);

/// Appends "value ± ci95" formatted cell text.
[[nodiscard]] std::string format_ci(const dophy::common::RunningStats& stats,
                                    int precision = 4);

/// One row per method: MAE / p90 / spearman / coverage.
void print_method_comparison(std::ostream& os, const std::string& title,
                             const MultiTrialResult& result);

}  // namespace dophy::eval
