#pragma once

// Content-addressed result cache for the experiment sweep engine.
//
// Every grid cell of an experiment is identified by a *canonical key*: the
// full set of behavior-affecting inputs (pipeline configuration, seed range,
// trial count, experiment/cell identity) serialized as sorted `field=value`
// lines, hashed with FNV-1a together with a code-version tag.  Completed
// cells are stored as one JSON file per key under the cache directory, so
// re-runs, interrupted sweeps (`--resume`) and sharded sweeps (`--shard`)
// skip cells whose result already exists.  A changed config field, seed
// range, trial count, or code version changes the key and therefore misses.
//
// The store is crash-safe (entries are written to a temp file and renamed
// into place) and corruption-tolerant (an unparseable or mismatching entry
// counts as a miss and the cell is recomputed).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dophy::tomo {
struct PipelineConfig;
}

namespace dophy::eval {

/// FNV-1a 64-bit offset basis.
inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ULL;
/// FNV-1a 64-bit prime.
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Hashes `data` with 64-bit FNV-1a, continuing from `state` (pass the
/// default to start a fresh hash; pass a previous result to chain).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data,
                                    std::uint64_t state = kFnvOffsetBasis) noexcept;

/// Order-independent key builder.  Fields are serialized sorted by name, so
/// the canonical form (and hash) is identical regardless of the order in
/// which `set` was called — only the *content* addresses the cache.
class CanonicalKey {
 public:
  /// Sets a string field; the last write to a name wins.
  CanonicalKey& set(std::string_view field, std::string_view value);
  /// Sets a string-literal field (disambiguates from the bool overload).
  CanonicalKey& set(std::string_view field, const char* value) {
    return set(field, std::string_view(value));
  }
  /// Sets a floating-point field (shortest round-trippable decimal form).
  CanonicalKey& set(std::string_view field, double value);
  /// Sets a boolean field (serialized as 0/1).
  CanonicalKey& set(std::string_view field, bool value);
  /// Sets an unsigned integer field.
  CanonicalKey& set(std::string_view field, std::uint64_t value);
  /// Sets a signed integer field.
  CanonicalKey& set(std::string_view field, std::int64_t value);
  /// Sets any other integer field via the fixed-width overloads.
  CanonicalKey& set(std::string_view field, std::uint32_t value) {
    return set(field, static_cast<std::uint64_t>(value));
  }
  /// Sets a size-typed field.
  CanonicalKey& set(std::string_view field, int value) {
    return set(field, static_cast<std::int64_t>(value));
  }

  /// Sorted `field=value` lines, one per field, `\n`-terminated.
  [[nodiscard]] std::string canonical() const;

  /// FNV-1a hash of `canonical()`.
  [[nodiscard]] std::uint64_t hash() const;

  /// Number of fields set so far.
  [[nodiscard]] std::size_t field_count() const noexcept { return fields_.size(); }

 private:
  std::map<std::string, std::string, std::less<>> fields_;
};

/// Serializes every behavior-affecting field of `config` into `key`
/// (prefixed `cfg.`).  Any new PipelineConfig/NetworkConfig field that
/// changes simulation results MUST be added here, or stale cache entries
/// will be returned for configs that differ in that field.
void canonicalize_into(const dophy::tomo::PipelineConfig& config, CanonicalKey& key);

/// Cache traffic counters for one ResultCache instance.  The same events
/// are also published as `eval.cache.*` metrics on the global registry.
struct CacheStats {
  std::uint64_t hits = 0;     ///< lookups answered from the store
  std::uint64_t misses = 0;   ///< lookups with no (valid) entry
  std::uint64_t stores = 0;   ///< entries written
  std::uint64_t corrupt = 0;  ///< entries rejected as unparseable/mismatching
};

/// One cached grid-cell result: the table rows the cell contributed, plus
/// bookkeeping for humans inspecting the store.
struct CachedCell {
  std::string experiment;                           ///< owning experiment id
  std::string cell;                                 ///< cell label (axis point)
  std::vector<std::vector<std::string>> rows;       ///< formatted table rows
  double wall_seconds = 0.0;                        ///< compute cost when stored
};

/// Content-addressed store: one JSON file per key under `dir`.
class ResultCache {
 public:
  /// Opens (and lazily creates) the store at `dir`.  `version_tag` is mixed
  /// into every key so results never survive a code-version change; the
  /// default tag derives from the build's `git describe`.
  explicit ResultCache(std::string dir, std::string version_tag = default_version_tag());

  /// The code-version tag new builds mix into keys (git describe + cache
  /// format version).
  [[nodiscard]] static std::string default_version_tag();

  /// Final cache key for `key`: FNV-1a over its canonical form plus this
  /// store's version tag.
  [[nodiscard]] std::uint64_t key_of(const CanonicalKey& key) const;

  /// Returns the stored cell for `key`, or nullopt on miss.  A present but
  /// corrupt or mismatching entry counts as a miss (and bumps `corrupt`).
  [[nodiscard]] std::optional<CachedCell> load(const CanonicalKey& key);

  /// Writes `cell` under `key` (temp file + atomic rename).  Returns false
  /// on I/O failure — the sweep continues, the cell just stays uncached.
  bool store(const CanonicalKey& key, const CachedCell& cell);

  /// Path of the entry file for `key` (exists only after a store).
  [[nodiscard]] std::string entry_path(std::uint64_t key) const;

  /// Traffic counters accumulated by this instance.
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

  /// Store directory as given at construction.
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Version tag as given at construction.
  [[nodiscard]] const std::string& version_tag() const noexcept { return version_tag_; }

 private:
  [[nodiscard]] bool ensure_dir();

  std::string dir_;
  std::string version_tag_;
  CacheStats stats_;
  bool dir_ready_ = false;
};

}  // namespace dophy::eval
