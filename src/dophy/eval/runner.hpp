#pragma once

// Monte-Carlo trial runner: executes a pipeline config across seeds (in
// parallel) and aggregates per-method accuracy plus overhead metrics with
// confidence intervals.

#include <map>
#include <string>
#include <vector>

#include "dophy/common/stats.hpp"
#include "dophy/obs/metrics.hpp"
#include "dophy/tomo/pipeline.hpp"

namespace dophy::common {
class ThreadPool;
}

namespace dophy::eval {

/// Accuracy statistics for one estimation method, aggregated across trials
/// (each RunningStats holds one sample per trial).
struct MethodAggregate {
  dophy::common::RunningStats mae;       ///< mean absolute error vs ground truth
  dophy::common::RunningStats rmse;      ///< root-mean-square error
  dophy::common::RunningStats p90_abs;   ///< 90th-percentile absolute error
  dophy::common::RunningStats spearman;  ///< rank correlation with ground truth
  dophy::common::RunningStats coverage;  ///< fraction of active links scored
};

/// Everything a figure needs from a Monte-Carlo batch: per-method accuracy,
/// wire/energy overhead, and routing-dynamics statistics, each aggregated
/// across trials with confidence intervals.
struct MultiTrialResult {
  /// Per-method accuracy aggregates, keyed by method name ("dophy", "em", ...).
  std::map<std::string, MethodAggregate> methods;
  dophy::common::RunningStats bits_per_packet;  ///< total measurement bits per packet
  dophy::common::RunningStats bits_per_hop;     ///< total measurement bits per hop
  dophy::common::RunningStats id_bits_per_hop;    ///< path-recording share
  dophy::common::RunningStats retx_bits_per_hop;  ///< retx-count share
  dophy::common::RunningStats path_length;        ///< mean delivered-path hops
  dophy::common::RunningStats parent_changes_per_node_hour;  ///< routing churn rate
  dophy::common::RunningStats delivery_ratio;     ///< end-to-end delivery fraction
  dophy::common::RunningStats control_flood_kb;   ///< model-dissemination bytes
  dophy::common::RunningStats measurement_air_kb;  ///< measurement bytes on the air
  dophy::common::RunningStats model_updates;       ///< probability-model updates
  dophy::common::RunningStats decode_failure_rate;  ///< reports rejected at the sink
  std::vector<dophy::tomo::PipelineResult> runs;  ///< kept when requested

  /// Delta of the global metrics registry across the batch.  Counters and
  /// histograms are sums of per-trial increments, so for a fixed base seed
  /// the snapshot is identical regardless of pool size or scheduling.
  dophy::obs::MetricsSnapshot metrics;

  /// Per-phase wall-clock distribution across trials (one sample per trial).
  std::map<std::string, dophy::common::RunningStats> phase_seconds;

  /// Looks up a method's aggregate; throws std::out_of_range if absent.
  [[nodiscard]] const MethodAggregate& method(const std::string& name) const;
};

/// Runs `trials` pipelines with seeds base_seed+1..base_seed+trials across
/// `pool` (the global thread pool when null); deterministic regardless of
/// scheduling.
[[nodiscard]] MultiTrialResult run_trials(const dophy::tomo::PipelineConfig& base,
                                          std::size_t trials, std::uint64_t base_seed,
                                          bool keep_runs = false,
                                          dophy::common::ThreadPool* pool = nullptr);

}  // namespace dophy::eval
