#pragma once

// Monte-Carlo trial runner: executes a pipeline config across seeds (in
// parallel) and aggregates per-method accuracy plus overhead metrics with
// confidence intervals.

#include <map>
#include <string>
#include <vector>

#include "dophy/common/stats.hpp"
#include "dophy/obs/metrics.hpp"
#include "dophy/tomo/pipeline.hpp"

namespace dophy::common {
class ThreadPool;
}

namespace dophy::eval {

struct MethodAggregate {
  dophy::common::RunningStats mae;
  dophy::common::RunningStats rmse;
  dophy::common::RunningStats p90_abs;
  dophy::common::RunningStats spearman;
  dophy::common::RunningStats coverage;
};

struct MultiTrialResult {
  std::map<std::string, MethodAggregate> methods;
  dophy::common::RunningStats bits_per_packet;
  dophy::common::RunningStats bits_per_hop;
  dophy::common::RunningStats id_bits_per_hop;
  dophy::common::RunningStats retx_bits_per_hop;
  dophy::common::RunningStats path_length;
  dophy::common::RunningStats parent_changes_per_node_hour;
  dophy::common::RunningStats delivery_ratio;
  dophy::common::RunningStats control_flood_kb;
  dophy::common::RunningStats measurement_air_kb;
  dophy::common::RunningStats model_updates;
  dophy::common::RunningStats decode_failure_rate;
  std::vector<dophy::tomo::PipelineResult> runs;  ///< kept when requested

  /// Delta of the global metrics registry across the batch.  Counters and
  /// histograms are sums of per-trial increments, so for a fixed base seed
  /// the snapshot is identical regardless of pool size or scheduling.
  dophy::obs::MetricsSnapshot metrics;

  /// Per-phase wall-clock distribution across trials (one sample per trial).
  std::map<std::string, dophy::common::RunningStats> phase_seconds;

  [[nodiscard]] const MethodAggregate& method(const std::string& name) const;
};

/// Runs `trials` pipelines with seeds base_seed+1..base_seed+trials across
/// `pool` (the global thread pool when null); deterministic regardless of
/// scheduling.
[[nodiscard]] MultiTrialResult run_trials(const dophy::tomo::PipelineConfig& base,
                                          std::size_t trials, std::uint64_t base_seed,
                                          bool keep_runs = false,
                                          dophy::common::ThreadPool* pool = nullptr);

}  // namespace dophy::eval
