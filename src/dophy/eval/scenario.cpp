#include "dophy/eval/scenario.hpp"

#include <cmath>

namespace dophy::eval {

using dophy::tomo::PipelineConfig;

PipelineConfig default_pipeline(std::size_t node_count, std::uint64_t seed) {
  PipelineConfig cfg;
  cfg.net.seed = seed;

  auto& topo = cfg.net.topology;
  topo.node_count = node_count;
  topo.comm_range = 40.0;
  // Field sized for mean degree ~8: area = N * pi R^2 / degree.
  const double area = static_cast<double>(node_count) * 3.14159265358979 *
                      topo.comm_range * topo.comm_range / 8.0;
  topo.field_size = std::sqrt(area);
  topo.layout = dophy::net::Layout::kRandom;
  topo.sink_placement = dophy::net::SinkPlacement::kCorner;

  cfg.net.mac.max_attempts = 8;
  cfg.net.loss.kind = dophy::net::LossConfig::Kind::kBernoulli;
  cfg.net.traffic.data_interval_s = 10.0;
  cfg.net.routing.beacon_interval_s = 10.0;

  cfg.dophy.censor_threshold = 4;
  cfg.dophy.update.policy = dophy::tomo::ModelUpdateConfig::Policy::kPeriodic;
  cfg.dophy.update.check_interval_s = 120.0;

  cfg.warmup_s = 300.0;
  cfg.measure_s = 3600.0;
  cfg.snapshot_interval_s = 60.0;
  return cfg;
}

void add_dynamics(PipelineConfig& config, double interval_s, double spread) {
  config.net.loss.kind = dophy::net::LossConfig::Kind::kDrifting;
  config.net.loss.drift_amplitude = 0.0;
  config.net.loss.drift_shuffle_interval_s = interval_s;
  config.net.loss.drift_shuffle_spread = spread;
}

void make_bursty(PipelineConfig& config) {
  config.net.loss.kind = dophy::net::LossConfig::Kind::kGilbertElliott;
  config.net.loss.ge_bad_multiplier = 4.0;
  config.net.loss.ge_mean_good_s = 120.0;
  config.net.loss.ge_mean_bad_s = 20.0;
}

void make_drifting(PipelineConfig& config, double amplitude, double period_s) {
  config.net.loss.kind = dophy::net::LossConfig::Kind::kDrifting;
  config.net.loss.drift_amplitude = amplitude;
  config.net.loss.drift_period_s = period_s;
  config.dophy.tracker_decay = 0.8;  // track the moving target
}

void add_churn(PipelineConfig& config, double churn_fraction, double mean_up_s,
               double mean_down_s) {
  config.net.churn.enabled = true;
  config.net.churn.churn_fraction = churn_fraction;
  config.net.churn.mean_up_s = mean_up_s;
  config.net.churn.mean_down_s = mean_down_s;
}

void add_opportunism(PipelineConfig& config, double fraction) {
  config.net.routing.opportunistic_fraction = fraction;
}

void add_faults(PipelineConfig& config, double intensity) {
  auto& f = config.faults;
  f.enabled = intensity > 0.0;
  if (!f.enabled) return;
  f.seed = config.net.seed ^ 0xf417ULL;
  f.start_s = config.warmup_s;  // let routing converge before the storm
  f.horizon_s = config.measure_s;
  f.node_crashes_per_hour = 6.0 * intensity;
  f.crash_duration_s = 60.0;
  f.sink_outages_per_hour = 1.0 * intensity;
  f.sink_outage_duration_s = 15.0;
  f.link_blackouts_per_hour = 8.0 * intensity;
  f.blackout_duration_s = 30.0;
  f.clock_skews_per_hour = 4.0 * intensity;
  f.clock_skew_max = 0.05;
  f.report_corrupt_prob = 0.02 * intensity;
  f.report_truncate_prob = 0.02 * intensity;
  f.report_drop_prob = 0.02 * intensity;
}

std::vector<NamedScenario> summary_scenarios(std::size_t node_count, std::uint64_t seed) {
  std::vector<NamedScenario> scenarios;

  scenarios.push_back({"static", default_pipeline(node_count, seed)});

  {
    auto cfg = default_pipeline(node_count, seed);
    add_dynamics(cfg, 300.0, 0.15);
    scenarios.push_back({"dynamic", std::move(cfg)});
  }
  {
    auto cfg = default_pipeline(node_count, seed);
    make_bursty(cfg);
    scenarios.push_back({"bursty", std::move(cfg)});
  }
  {
    auto cfg = default_pipeline(node_count, seed);
    make_drifting(cfg, 0.08, 900.0);
    scenarios.push_back({"drifting", std::move(cfg)});
  }
  {
    auto cfg = default_pipeline(node_count, seed);
    add_churn(cfg, 0.25, 600.0, 90.0);
    scenarios.push_back({"churn", std::move(cfg)});
  }
  {
    auto cfg = default_pipeline(node_count, seed);
    add_opportunism(cfg, 0.35);
    scenarios.push_back({"opportunistic", std::move(cfg)});
  }
  return scenarios;
}

}  // namespace dophy::eval
