#include "dophy/eval/experiment.hpp"

#include <stdexcept>

#include "dophy/common/thread_pool.hpp"
#include "dophy/eval/experiments/registrars.hpp"
#include "dophy/tomo/pipeline.hpp"

namespace dophy::eval {

RowSet::RowRef& RowSet::RowRef::cell(const std::string& value) {
  row_->push_back(value);
  return *this;
}

RowSet::RowRef& RowSet::RowRef::cell(const char* value) {
  row_->push_back(value);
  return *this;
}

RowSet::RowRef& RowSet::RowRef::cell(double value, int precision) {
  row_->push_back(dophy::common::format_double(value, precision));
  return *this;
}

RowSet::RowRef RowSet::row() {
  rows_.emplace_back();
  return RowRef(rows_.back());
}

MultiTrialResult CellContext::run_trials(const dophy::tomo::PipelineConfig& base,
                                         std::size_t trials, std::uint64_t base_seed,
                                         bool keep_runs) const {
  if (sim_threads_ > 1) {
    dophy::tomo::PipelineConfig cfg = base;
    cfg.net.pdes.lp_count = sim_threads_;
    cfg.net.pdes.threads = sim_threads_;
    return dophy::eval::run_trials(cfg, trials, base_seed, keep_runs, trial_pool_);
  }
  return dophy::eval::run_trials(base, trials, base_seed, keep_runs, trial_pool_);
}

ExperimentRegistry& ExperimentRegistry::builtin() {
  static ExperimentRegistry registry = [] {
    ExperimentRegistry r;
    register_builtin_experiments(r);
    return r;
  }();
  return registry;
}

void ExperimentRegistry::add(ExperimentSpec spec) {
  if (spec.id.empty() || !spec.make_cells) {
    throw std::invalid_argument("ExperimentRegistry::add: spec needs an id and make_cells");
  }
  for (const auto& existing : specs_) {
    if (existing.id == spec.id || existing.output_stem == spec.output_stem) {
      throw std::invalid_argument("ExperimentRegistry::add: duplicate experiment " +
                                  spec.id);
    }
  }
  specs_.push_back(std::move(spec));
}

const ExperimentSpec* ExperimentRegistry::find(std::string_view id_or_stem) const {
  for (const auto& spec : specs_) {
    if (spec.id == id_or_stem || spec.output_stem == id_or_stem) return &spec;
  }
  return nullptr;
}

void register_builtin_experiments(ExperimentRegistry& registry) {
  experiments::register_f1_overhead_pathlen(registry);
  experiments::register_f2_overhead_loss(registry);
  experiments::register_f3_aggregation(registry);
  experiments::register_f4_model_update(registry);
  experiments::register_f5_accuracy_packets(registry);
  experiments::register_f5b_convergence(registry);
  experiments::register_f6_accuracy_dynamics(registry);
  experiments::register_f7_accuracy_scale(registry);
  experiments::register_f8_error_cdf(registry);
  experiments::register_f9_faults(registry);
  experiments::register_t1_summary(registry);
  experiments::register_a1_estimator_ablation(registry);
  experiments::register_a2_cost(registry);
  experiments::register_a3_pathmode(registry);
  experiments::register_a4_dissemination(registry);
  experiments::register_a5_detection(registry);
  experiments::register_a6_sink_replay(registry);
}

CanonicalKey pipeline_cell_key(std::string_view experiment_id, std::string_view cell_label,
                               const dophy::tomo::PipelineConfig& config,
                               std::size_t trials, std::uint64_t base_seed) {
  CanonicalKey key;
  key.set("experiment", experiment_id)
      .set("cell", cell_label)
      .set("trials", static_cast<std::uint64_t>(trials))
      .set("seed.base", base_seed);
  canonicalize_into(config, key);
  return key;
}

}  // namespace dophy::eval
