#pragma once

// Packet-trace export/import.  Runs can dump their delivered/dropped packet
// records to a portable text format and analyses can be re-run offline —
// the workflow a deployment would use (collect at the sink, analyze later).
//
// Format: one record per line,
//   origin,seq,created_us,finished_us,fate,hop1_sender>hop1_receiver:attempts;hop2...
// with a `#`-prefixed header. Only simulator-side ground-truth hops are
// stored (the blob is an in-memory artifact of the live decoder path).

#include <iosfwd>
#include <vector>

#include "dophy/net/trace.hpp"

namespace dophy::eval {

/// Writes `outcomes` to `os`; returns the number of records written.
std::size_t write_trace(std::ostream& os,
                        const std::vector<dophy::net::PacketOutcome>& outcomes);

/// Reads records back.  Throws std::runtime_error on malformed input.
[[nodiscard]] std::vector<dophy::net::PacketOutcome> read_trace(std::istream& is);

/// Convenience: per-link (attempts-based) loss estimates computed offline
/// from a trace's ground-truth hops with the censored-geometric MLE at
/// threshold K — lets external traces reuse the sink estimator.
[[nodiscard]] std::vector<std::pair<dophy::net::LinkKey, double>> offline_link_estimates(
    const std::vector<dophy::net::PacketOutcome>& outcomes, std::uint32_t censor_threshold);

}  // namespace dophy::eval
