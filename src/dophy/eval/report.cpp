#include "dophy/eval/report.hpp"

#include <algorithm>
#include <ostream>

namespace dophy::eval {

std::vector<std::string> method_order(const MultiTrialResult& result) {
  static const std::vector<std::string> kPreferred = {"dophy", "delivery-ratio", "nnls", "em"};
  std::vector<std::string> order;
  for (const auto& name : kPreferred) {
    if (result.methods.contains(name)) order.push_back(name);
  }
  for (const auto& [name, agg] : result.methods) {
    if (std::find(order.begin(), order.end(), name) == order.end()) order.push_back(name);
  }
  return order;
}

std::string format_ci(const dophy::common::RunningStats& stats, int precision) {
  std::string out = dophy::common::format_double(stats.mean(), precision);
  if (stats.count() > 1) {
    out += " ±";
    out += dophy::common::format_double(stats.ci95_halfwidth(), precision);
  }
  return out;
}

void print_method_comparison(std::ostream& os, const std::string& title,
                             const MultiTrialResult& result) {
  dophy::common::Table table({"method", "mae", "p90_abs_err", "spearman", "coverage"});
  for (const auto& name : method_order(result)) {
    const MethodAggregate& m = result.method(name);
    table.row()
        .cell(name)
        .cell(format_ci(m.mae))
        .cell(format_ci(m.p90_abs))
        .cell(format_ci(m.spearman, 3))
        .cell(format_ci(m.coverage, 3));
  }
  table.print(os, title);
}

}  // namespace dophy::eval
